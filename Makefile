# eMPTCP reproduction — common tasks.

GO ?= go

.PHONY: all build test short bench bench-json bench-compare profile experiments traces trace-demo fmt vet cover clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Quick iteration: skips the full-size regression experiments.
short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark snapshot (ns/op, B/op, allocs/op per bench).
bench-json:
	$(GO) test -bench=. -benchmem -run=^$$ ./... | $(GO) run ./cmd/benchjson > BENCH.json

# Compare a fresh benchmark run against the committed BENCH.json; fails
# when any benchmark's ns/op regresses by more than 20%.
bench-compare:
	$(GO) test -bench=. -benchmem -run=^$$ ./... | $(GO) run ./cmd/benchjson -baseline BENCH.json

# CPU and allocation profiles of the full experiment suite, for
# `go tool pprof cpu.pprof` / `go tool pprof mem.pprof`.
profile:
	$(GO) run ./cmd/emptcpsim -cpuprofile cpu.pprof -memprofile mem.pprof all > /dev/null
	@echo "wrote cpu.pprof and mem.pprof; inspect with: $(GO) tool pprof cpu.pprof"

# Regenerate every paper table/figure (the EXPERIMENTS.md inputs).
experiments:
	$(GO) run ./cmd/emptcpsim all

traces:
	$(GO) run ./cmd/tracegen -scenario mobility > mobility.tsv
	$(GO) run ./cmd/tracegen -scenario random > random.tsv

# Sample structured trace from the Fig. 8 scenario: JSONL event timeline
# plus per-run aggregate metrics, byte-identical at any -j.
trace-demo:
	$(GO) run ./cmd/emptcpsim -quick -trace fig8-trace.jsonl -metrics fig8-metrics.json fig8

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

cover:
	$(GO) test -cover ./...

clean:
	rm -f mobility.tsv random.tsv fig8-trace.jsonl fig8-metrics.json test_output.txt bench_output.txt cpu.pprof mem.pprof
