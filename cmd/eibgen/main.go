// Command eibgen generates and prints a device's Energy Information Base
// (the paper's Table 2), the Figure 3 relative-efficiency heat map, and
// the Figure 4 finite-transfer operating regions. With -save it also
// writes the table as JSON — the on-device artifact the paper's phones
// would carry.
//
// Usage:
//
//	eibgen [-device s3|n5] [-lte-max Mbps] [-step Mbps] [-save file]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/eib"
	"repro/internal/energy"
	"repro/internal/report"
	"repro/internal/units"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI against the given argument list and streams.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("eibgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	device := fs.String("device", "s3", "device profile: s3 or n5")
	lteMax := fs.Float64("lte-max", 12, "largest LTE throughput row (Mbps)")
	step := fs.Float64("step", 0.5, "LTE grid step (Mbps)")
	saveTo := fs.String("save", "", "also write the generated table as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var d *energy.DeviceProfile
	switch *device {
	case "s3":
		d = energy.GalaxyS3()
	case "n5":
		d = energy.Nexus5()
	default:
		fmt.Fprintf(stderr, "unknown device %q\n", *device)
		return 2
	}

	cfg := eib.DefaultConfig()
	cfg.LTEGridMax = units.MbpsRate(*lteMax)
	cfg.LTEGridStep = units.MbpsRate(*step)
	table := eib.Generate(d, cfg)
	fmt.Fprint(stdout, table.String())
	if *saveTo != "" {
		f, err := os.Create(*saveTo)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := table.Save(f); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "\nsaved to %s\n", *saveTo)
	}

	fmt.Fprintln(stdout)
	h := eib.RelativeEfficiencyHeatmap(d, units.MbpsRate(10), units.MbpsRate(10), 32)
	fmt.Fprint(stdout, report.HeatmapASCII(h.Rel,
		func(i int) string { return fmt.Sprintf("%4.1f Mb", h.LTE[i].Mbit()) },
		"Figure 3 — LTE (rows) × WiFi 0→10 Mbps (cols); darker = both interfaces more efficient"))
	fmt.Fprintf(stdout, "\nfraction of grid where MPTCP is most efficient: %.1f%%\n\n",
		h.MPTCPBestFraction()*100)

	for _, size := range []units.ByteSize{units.MB, 4 * units.MB, 16 * units.MB} {
		r := eib.OperatingRegion(d, size, units.MbpsRate(6), units.MbpsRate(12), 12)
		fmt.Fprintf(stdout, "Figure 4 — %v transfer: MPTCP-best LTE ranges per WiFi rate\n", size)
		for i := range r.WiFi {
			if r.LTEMin[i] != r.LTEMin[i] {
				fmt.Fprintf(stdout, "  WiFi %5.2f Mbps: —\n", r.WiFi[i].Mbit())
			} else {
				fmt.Fprintf(stdout, "  WiFi %5.2f Mbps: LTE in [%.1f, %.1f] Mbps\n",
					r.WiFi[i].Mbit(), r.LTEMin[i], r.LTEMax[i])
			}
		}
		fmt.Fprintln(stdout)
	}
	return 0
}
