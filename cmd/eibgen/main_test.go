package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/eib"
)

func TestGenerateAndPrint(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-lte-max", "4", "-step", "1"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	s := out.String()
	for _, want := range []string{"Energy Information Base", "Galaxy S3", "Figure 3", "Figure 4"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestSaveRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eib.json")
	var out, errb strings.Builder
	if code := run([]string{"-lte-max", "4", "-step", "1", "-save", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	table, err := eib.Load(f)
	if err != nil {
		t.Fatalf("saved table does not load: %v", err)
	}
	if len(table.Entries) != 4 {
		t.Errorf("loaded %d entries, want 4", len(table.Entries))
	}
}

func TestBadDevice(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-device", "pixel"}, &out, &errb); code != 2 {
		t.Errorf("exit %d, want 2", code)
	}
}

func TestSaveToBadPath(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-save", "/nonexistent-dir/x.json"}, &out, &errb); code != 1 {
		t.Errorf("exit %d, want 1", code)
	}
}
