package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/sim
cpu: some CPU
BenchmarkSimKernel-8   	27412988	        42.84 ns/op	       0 B/op	       0 allocs/op
BenchmarkHeapChurn-8   	18321776	        64.73 ns/op	       0 B/op	       0 allocs/op
BenchmarkNoMem         	  100000	      1500 ns/op
PASS
ok  	repro/internal/sim	3.456s
`

func TestParse(t *testing.T) {
	got, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	k := got["BenchmarkSimKernel"]
	if k.NsPerOp != 42.84 || k.BytesPerOp != 0 || k.AllocsPerOp != 0 {
		t.Errorf("SimKernel = %+v", k)
	}
	// No -benchmem columns: memory fields stay zero, ns/op still parses.
	if nm := got["BenchmarkNoMem"]; nm.NsPerOp != 1500 {
		t.Errorf("NoMem = %+v", nm)
	}
	if len(got) != 3 {
		t.Errorf("parsed %d benchmarks, want 3", len(got))
	}
}

func TestRunEmitsValidSortedJSON(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, strings.NewReader(sample), &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	var m map[string]Result
	if err := json.Unmarshal([]byte(out.String()), &m); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if m["BenchmarkHeapChurn"].NsPerOp != 64.73 {
		t.Errorf("HeapChurn = %+v", m["BenchmarkHeapChurn"])
	}
	// Keys must be emitted in sorted order for stable diffs.
	if i, j := strings.Index(out.String(), "HeapChurn"), strings.Index(out.String(), "SimKernel"); i > j {
		t.Error("keys not sorted")
	}
}

func TestRunNoInput(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, strings.NewReader("PASS\n"), &out, &errb); code != 1 {
		t.Errorf("exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "no benchmark") {
		t.Error("missing diagnostic")
	}
}

// writeBaseline records sample-style results as a BENCH.json fixture.
func writeBaseline(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareWithinLimit(t *testing.T) {
	base := writeBaseline(t, `{
  "BenchmarkHeapChurn": {"ns_per_op": 60, "bytes_per_op": 0, "allocs_per_op": 2},
  "BenchmarkSimKernel": {"ns_per_op": 40, "bytes_per_op": 0, "allocs_per_op": 0},
  "BenchmarkVanished": {"ns_per_op": 10, "bytes_per_op": 0, "allocs_per_op": 0}
}`)
	var out, errb strings.Builder
	if code := run([]string{"-baseline", base}, strings.NewReader(sample), &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errb.String(), out.String())
	}
	// 42.84 vs 40 is +7.1%, under the limit; NoMem is added, Vanished
	// gone — both named in the table AND acknowledged by the footer.
	for _, want := range []string{"+7.1%", "(added)", "(vanished)", "2 -> 0",
		"geomean speedup over 2 shared", "1 added (not in geomean)", "1 vanished"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q in:\n%s", want, out.String())
		}
	}
	if strings.Contains(out.String(), "REGRESSED") {
		t.Errorf("unexpected regression mark:\n%s", out.String())
	}
}

// TestCompareAllAdded pins the degenerate comparison where nothing is
// shared: every benchmark is added, the footer says so, and the run
// still succeeds (added benchmarks cannot regress).
func TestCompareAllAdded(t *testing.T) {
	base := writeBaseline(t, `{}`)
	var out, errb strings.Builder
	if code := run([]string{"-baseline", base}, strings.NewReader(sample), &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if got := strings.Count(out.String(), "(added)"); got != 3 {
		t.Errorf("added rows = %d, want 3:\n%s", got, out.String())
	}
	for _, want := range []string{"no shared benchmarks", "3 added (not in geomean)"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q in:\n%s", want, out.String())
		}
	}
}

func TestCompareFailsOnRegression(t *testing.T) {
	base := writeBaseline(t, `{
  "BenchmarkSimKernel": {"ns_per_op": 30, "bytes_per_op": 0, "allocs_per_op": 0}
}`)
	var out, errb strings.Builder
	if code := run([]string{"-baseline", base}, strings.NewReader(sample), &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1\nstdout: %s", code, out.String())
	}
	// 42.84 vs 30 is +42.8%, beyond the 20% limit.
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Errorf("missing REGRESSED mark:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "regression beyond 20%") {
		t.Errorf("missing diagnostic: %s", errb.String())
	}
}

func TestCompareMissingBaselineFile(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-baseline", filepath.Join(t.TempDir(), "nope.json")},
		strings.NewReader(sample), &out, &errb); code != 1 {
		t.Errorf("exit %d, want 1", code)
	}
}

const metricSample = `goos: linux
BenchmarkPacketKernel-8 	    9000	    124783 ns/op	      3135 packets/op	       0 B/op	       0 allocs/op
BenchmarkAblation-8     	       1	1234567 ns/op	         2.408 fluid_s	         2.496 packet_s
PASS
`

func TestParseCustomMetrics(t *testing.T) {
	got, err := parse(strings.NewReader(metricSample))
	if err != nil {
		t.Fatal(err)
	}
	pk := got["BenchmarkPacketKernel"]
	if pk.NsPerOp != 124783 || pk.AllocsPerOp != 0 {
		t.Errorf("PacketKernel = %+v", pk)
	}
	if pk.Metrics["packets/op"] != 3135 {
		t.Errorf("PacketKernel metrics = %v, want packets/op 3135", pk.Metrics)
	}
	ab := got["BenchmarkAblation"]
	if ab.Metrics["fluid_s"] != 2.408 || ab.Metrics["packet_s"] != 2.496 {
		t.Errorf("Ablation metrics = %v", ab.Metrics)
	}
	// Standard units never leak into Metrics.
	for _, unit := range []string{"ns/op", "B/op", "allocs/op"} {
		if _, ok := pk.Metrics[unit]; ok {
			t.Errorf("standard unit %s captured as custom metric", unit)
		}
	}
}

func TestMetricsRoundTripAndOmitted(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, strings.NewReader(metricSample), &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	var m map[string]Result
	if err := json.Unmarshal([]byte(out.String()), &m); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if m["BenchmarkPacketKernel"].Metrics["packets/op"] != 3135 {
		t.Errorf("metrics lost in round trip: %+v", m["BenchmarkPacketKernel"])
	}
	// Entries without custom metrics must omit the field entirely.
	var plain, errp strings.Builder
	run(nil, strings.NewReader(sample), &plain, &errp)
	if strings.Contains(plain.String(), "metrics") {
		t.Errorf("metrics key emitted for benchmarks without custom metrics:\n%s", plain.String())
	}
}

func TestBaselineGateIgnoresMetricDrift(t *testing.T) {
	// The baseline carries wildly different custom metrics; only ns/op
	// may gate the comparison.
	dir := t.TempDir()
	base := filepath.Join(dir, "BENCH.json")
	baseJSON := `{"BenchmarkPacketKernel": {"ns_per_op": 124783, "bytes_per_op": 0, "allocs_per_op": 0, "metrics": {"packets/op": 1}}}`
	if err := os.WriteFile(base, []byte(baseJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	code := run([]string{"-baseline", base}, strings.NewReader(metricSample), &out, &errb)
	if code != 0 {
		t.Fatalf("metric drift failed the gate (exit %d):\n%s%s", code, out.String(), errb.String())
	}
}
