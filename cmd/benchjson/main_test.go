package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/sim
cpu: some CPU
BenchmarkSimKernel-8   	27412988	        42.84 ns/op	       0 B/op	       0 allocs/op
BenchmarkHeapChurn-8   	18321776	        64.73 ns/op	       0 B/op	       0 allocs/op
BenchmarkNoMem         	  100000	      1500 ns/op
PASS
ok  	repro/internal/sim	3.456s
`

func TestParse(t *testing.T) {
	got, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	k := got["BenchmarkSimKernel"]
	if k.NsPerOp != 42.84 || k.BytesPerOp != 0 || k.AllocsPerOp != 0 {
		t.Errorf("SimKernel = %+v", k)
	}
	// No -benchmem columns: memory fields stay zero, ns/op still parses.
	if nm := got["BenchmarkNoMem"]; nm.NsPerOp != 1500 {
		t.Errorf("NoMem = %+v", nm)
	}
	if len(got) != 3 {
		t.Errorf("parsed %d benchmarks, want 3", len(got))
	}
}

func TestRunEmitsValidSortedJSON(t *testing.T) {
	var out, errb strings.Builder
	if code := run(strings.NewReader(sample), &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	var m map[string]Result
	if err := json.Unmarshal([]byte(out.String()), &m); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if m["BenchmarkHeapChurn"].NsPerOp != 64.73 {
		t.Errorf("HeapChurn = %+v", m["BenchmarkHeapChurn"])
	}
	// Keys must be emitted in sorted order for stable diffs.
	if i, j := strings.Index(out.String(), "HeapChurn"), strings.Index(out.String(), "SimKernel"); i > j {
		t.Error("keys not sorted")
	}
}

func TestRunNoInput(t *testing.T) {
	var out, errb strings.Builder
	if code := run(strings.NewReader("PASS\n"), &out, &errb); code != 1 {
		t.Errorf("exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "no benchmark") {
		t.Error("missing diagnostic")
	}
}
