// Command benchjson converts `go test -bench -benchmem` text output on
// stdin into a JSON object on stdout, one entry per benchmark:
//
//	go test -bench=. -benchmem ./... | benchjson > BENCH.json
//
// Each entry maps the benchmark name (GOMAXPROCS suffix stripped) to its
// ns/op, B/op and allocs/op. Benchmarks that appear more than once (e.g.
// from -count) keep the last measurement.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result holds one benchmark line's measurements.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func main() {
	os.Exit(run(os.Stdin, os.Stdout, os.Stderr))
}

func run(stdin io.Reader, stdout, stderr io.Writer) int {
	results, err := parse(stdin)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	if len(results) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark lines on stdin")
		return 1
	}
	// Sorted keys so the file diffs cleanly across regenerations.
	keys := make([]string, 0, len(results))
	for k := range results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("{\n")
	for i, k := range keys {
		enc, _ := json.Marshal(results[k])
		fmt.Fprintf(&b, "  %q: %s", k, enc)
		if i < len(keys)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	io.WriteString(stdout, b.String())
	return 0
}

// parse scans go-test output for benchmark result lines, i.e.
//
//	BenchmarkName-8   1000000   1234 ns/op   56 B/op   7 allocs/op
func parse(r io.Reader) (map[string]Result, error) {
	out := map[string]Result{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		name := f[0]
		// Strip the -GOMAXPROCS suffix go test appends.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var res Result
		seen := false
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "ns/op":
				res.NsPerOp, seen = v, true
			case "B/op":
				res.BytesPerOp = int64(v)
			case "allocs/op":
				res.AllocsPerOp = int64(v)
			}
		}
		if seen {
			out[name] = res
		}
	}
	return out, sc.Err()
}
