// Command benchjson converts `go test -bench -benchmem` text output on
// stdin into a JSON object on stdout, one entry per benchmark:
//
//	go test -bench=. -benchmem ./... | benchjson > BENCH.json
//
// Each entry maps the benchmark name (GOMAXPROCS suffix stripped) to its
// ns/op, B/op and allocs/op, plus any custom b.ReportMetric units (e.g.
// packets/op, fluid_s) under "metrics". Benchmarks that appear more than
// once (e.g. from -count) keep the last measurement.
//
// With -baseline FILE, benchjson instead compares stdin against a
// previously recorded BENCH.json: it prints a per-benchmark delta table
// (ns/op and allocs/op) and exits non-zero when any benchmark's ns/op
// regressed by more than 20%. Custom metrics are recorded, never gated —
// they are model observables (completion times, packet counts), not
// performance. Benchmarks present on only one side are
// listed but never fail the comparison:
//
//	go test -bench=. -benchmem ./... | benchjson -baseline BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result holds one benchmark line's measurements.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Metrics holds custom b.ReportMetric values keyed by unit. JSON maps
	// marshal with sorted keys, so regenerated files diff cleanly.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baseline := fs.String("baseline", "", "compare stdin against this BENCH.json instead of emitting JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	results, err := parse(stdin)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	if len(results) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark lines on stdin")
		return 1
	}
	if *baseline != "" {
		return compare(*baseline, results, stdout, stderr)
	}
	// Sorted keys so the file diffs cleanly across regenerations.
	keys := make([]string, 0, len(results))
	for k := range results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("{\n")
	for i, k := range keys {
		enc, _ := json.Marshal(results[k])
		fmt.Fprintf(&b, "  %q: %s", k, enc)
		if i < len(keys)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	io.WriteString(stdout, b.String())
	return 0
}

// parse scans go-test output for benchmark result lines, i.e.
//
//	BenchmarkName-8   1000000   1234 ns/op   56 B/op   7 allocs/op
func parse(r io.Reader) (map[string]Result, error) {
	out := map[string]Result{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		name := f[0]
		// Strip the -GOMAXPROCS suffix go test appends.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var res Result
		seen := false
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			switch unit := f[i+1]; unit {
			case "ns/op":
				res.NsPerOp, seen = v, true
			case "B/op":
				res.BytesPerOp = int64(v)
			case "allocs/op":
				res.AllocsPerOp = int64(v)
			default:
				// A custom b.ReportMetric unit.
				if res.Metrics == nil {
					res.Metrics = map[string]float64{}
				}
				res.Metrics[unit] = v
			}
		}
		if seen {
			out[name] = res
		}
	}
	return out, sc.Err()
}

// regressionLimit is the ns/op growth beyond which compare fails.
const regressionLimit = 0.20

// compare renders a delta table of results against the baseline file and
// reports failure when any shared benchmark's ns/op regressed beyond the
// limit. New and vanished benchmarks are informational only.
func compare(path string, results map[string]Result, stdout, stderr io.Writer) int {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	base := map[string]Result{}
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(stderr, "benchjson: parsing %s: %v\n", path, err)
		return 1
	}

	names := make([]string, 0, len(results)+len(base))
	for k := range results {
		names = append(names, k)
	}
	for k := range base {
		if _, ok := results[k]; !ok {
			names = append(names, k)
		}
	}
	sort.Strings(names)

	w := len("benchmark")
	for _, n := range names {
		if len(n) > w {
			w = len(n)
		}
	}
	fmt.Fprintf(stdout, "%-*s  %12s  %12s  %8s  %s\n", w, "benchmark", "base ns/op", "new ns/op", "Δns/op", "allocs")
	failed := false
	logSum, shared, added, vanished := 0.0, 0, 0, 0
	for _, n := range names {
		b, inBase := base[n]
		r, inNew := results[n]
		switch {
		case !inBase:
			added++
			fmt.Fprintf(stdout, "%-*s  %12s  %12.1f  %8s  %d (added)\n", w, n, "-", r.NsPerOp, "-", r.AllocsPerOp)
		case !inNew:
			vanished++
			fmt.Fprintf(stdout, "%-*s  %12.1f  %12s  %8s  (vanished)\n", w, n, b.NsPerOp, "-", "-")
		default:
			delta := (r.NsPerOp - b.NsPerOp) / b.NsPerOp
			mark := ""
			if delta > regressionLimit {
				mark = "  REGRESSED"
				failed = true
			}
			fmt.Fprintf(stdout, "%-*s  %12.1f  %12.1f  %+7.1f%%  %d -> %d%s\n",
				w, n, b.NsPerOp, r.NsPerOp, delta*100, b.AllocsPerOp, r.AllocsPerOp, mark)
			if b.NsPerOp > 0 && r.NsPerOp > 0 {
				logSum += math.Log(b.NsPerOp / r.NsPerOp)
				shared++
			}
		}
	}
	// Geometric mean of per-benchmark speedups (base/new): >1.00x means
	// the new run is faster overall, and no single benchmark dominates.
	// Added and vanished benchmarks have no speedup to fold in; name them
	// in the footer so the omission is visible, not silent.
	foot := fmt.Sprintf("geomean speedup over %d shared: %.2fx", shared, math.Exp(logSum/float64(max(shared, 1))))
	if shared == 0 {
		foot = "no shared benchmarks"
	}
	if added > 0 {
		foot += fmt.Sprintf("; %d added (not in geomean)", added)
	}
	if vanished > 0 {
		foot += fmt.Sprintf("; %d vanished", vanished)
	}
	fmt.Fprintf(stdout, "%-*s  %s\n", w, "", foot)
	if failed {
		fmt.Fprintf(stderr, "benchjson: ns/op regression beyond %.0f%% against %s\n", regressionLimit*100, path)
		return 1
	}
	return 0
}
