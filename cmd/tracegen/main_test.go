package main

import (
	"strings"
	"testing"
)

func TestMobilityTrace(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-scenario", "mobility", "-proto", "emptcp"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if lines[0] != "scenario\tprotocol\ttime_s\tenergy_J\twifi_mbps\tlte_mbps" {
		t.Errorf("header = %q", lines[0])
	}
	// 250 s trace at 1 s sampling → ~250 rows.
	if len(lines) < 200 {
		t.Errorf("only %d trace rows", len(lines))
	}
	if !strings.Contains(lines[1], "mobility\teMPTCP") {
		t.Errorf("row = %q", lines[1])
	}
}

func TestRandomTraceSmallFile(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-scenario", "random", "-size", "8", "-proto", "tcpwifi"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if len(strings.Split(out.String(), "\n")) < 3 {
		t.Error("trace too short")
	}
}

func TestMultiAPScenario(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-scenario", "multiap", "-proto", "emptcp"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
}

func TestBadInputs(t *testing.T) {
	cases := [][]string{
		{"-device", "nokia"},
		{"-scenario", "space"},
		{"-proto", "sctp"},
		{"-notaflag"},
	}
	for _, args := range cases {
		var out, errb strings.Builder
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}
