// Command tracegen emits per-run time series as TSV for external
// plotting: the accumulated-energy and throughput traces of the paper's
// Figures 7, 9 and 12.
//
// Usage:
//
//	tracegen [-device s3|n5] [-seed N] [-size MB] -scenario random|background|mobility|multiap [-proto all|mptcp|emptcp|tcpwifi]
//
// Output columns: scenario, protocol, time (s), cumulative energy (J),
// WiFi throughput (Mbps), LTE throughput (Mbps).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/energy"
	"repro/internal/scenario"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI against the given argument list and streams.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	device := fs.String("device", "s3", "device profile: s3 or n5")
	seed := fs.Int64("seed", 0, "run seed")
	sizeMB := fs.Float64("size", 256, "download size in MB")
	scen := fs.String("scenario", "random", "random | background | mobility | multiap")
	proto := fs.String("proto", "all", "all | mptcp | emptcp | tcpwifi")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var d *energy.DeviceProfile
	switch *device {
	case "s3":
		d = energy.GalaxyS3()
	case "n5":
		d = energy.Nexus5()
	default:
		fmt.Fprintf(stderr, "unknown device %q\n", *device)
		return 2
	}

	work := workload.FileDownload{Size: units.ByteSize(*sizeMB) * units.MB}
	var sc scenario.Scenario
	switch *scen {
	case "random":
		sc = scenario.RandomBandwidth(d, work)
	case "background":
		sc = scenario.BackgroundTraffic(d, 2, 0.05, 0.025, work)
	case "mobility":
		sc = scenario.Mobility(d)
	case "multiap":
		sc = scenario.MobilityMultiAP(d)
	default:
		fmt.Fprintf(stderr, "unknown scenario %q\n", *scen)
		return 2
	}

	protos := map[string][]scenario.Protocol{
		"all":     {scenario.MPTCP, scenario.EMPTCP, scenario.TCPWiFi},
		"mptcp":   {scenario.MPTCP},
		"emptcp":  {scenario.EMPTCP},
		"tcpwifi": {scenario.TCPWiFi},
	}[*proto]
	if protos == nil {
		fmt.Fprintf(stderr, "unknown protocol %q\n", *proto)
		return 2
	}

	fmt.Fprintln(stdout, "scenario\tprotocol\ttime_s\tenergy_J\twifi_mbps\tlte_mbps")
	for _, p := range protos {
		r := scenario.Run(sc, p, scenario.Opts{Seed: *seed, Trace: true})
		et := r.EnergyTrace
		for i := range et.T {
			fmt.Fprintf(stdout, "%s\t%s\t%.1f\t%.2f\t%.3f\t%.3f\n",
				*scen, p, et.T[i], et.V[i],
				r.ThroughputTrace[energy.WiFi].V[i],
				r.ThroughputTrace[energy.LTE].V[i])
		}
	}
	return 0
}
