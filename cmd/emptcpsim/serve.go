package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/exp"
	"repro/internal/lockstep"
	"repro/internal/runcache"
)

// logRunStats prints the persistent-store and lockstep counters to
// stderr in the same shape as the single-run -v contract, so serve and
// campaign logs are greppable with the same patterns.
func logRunStats(stderr io.Writer, store *runcache.Store) {
	gets, hits, puts := store.DiskStats()
	lanes, peels := lockstep.Stats()
	fmt.Fprintf(stderr, "runcache store: %d gets, %d hits, %d puts\n", gets, hits, puts)
	fmt.Fprintf(stderr, "lockstep: %d lane runs, %d peeled\n", lanes, peels)
}

// openStore opens the persistent run cache, or returns nil (in-memory
// only) for an empty dir.
func openStore(dir string, stderr io.Writer) (*runcache.Store, int) {
	if dir == "" {
		return nil, 0
	}
	store, err := runcache.OpenStore(dir)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return nil, 1
	}
	return store, 0
}

// runServe is `emptcpsim serve`: the campaign control plane. It blocks
// until SIGINT/SIGTERM, then shuts down gracefully — in-flight
// campaigns are cancelled at a run boundary and every simulated result
// is synced to the cache directory, so a restarted server resumes
// resubmitted campaigns from disk.
func runServe(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("emptcpsim serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8383", "listen address")
	cacheDir := fs.String("cachedir", "", "persistent run-cache directory (empty: in-memory only, no resume)")
	jobs := fs.Int("j", runtime.NumCPU(), "worker count per campaign")
	useLockstep := fs.Bool("lockstep", true, "lane-batch repeated same-scenario runs (same output; 0 disables)")
	token := fs.String("token", "", "require this bearer token on every route except /healthz")
	leaseTTL := fs.Duration("lease-ttl", campaign.DefaultLeaseTTL, "shard-lease expiry for remote workers")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "serve takes no positional arguments (got %q)\n", fs.Args())
		usage(stderr)
		return 2
	}
	if *jobs < 1 {
		fmt.Fprintf(stderr, "-j %d: worker count must be ≥ 1\n", *jobs)
		usage(stderr)
		return 2
	}
	if *leaseTTL <= 0 {
		fmt.Fprintf(stderr, "-lease-ttl %v: must be positive\n", *leaseTTL)
		usage(stderr)
		return 2
	}

	store, code := openStore(*cacheDir, stderr)
	if code != 0 {
		return code
	}
	srv := campaign.NewServerOpts(campaign.Options{
		Disk: store, Jobs: *jobs, NoLockstep: !*useLockstep, LeaseTTL: *leaseTTL,
	})
	srv.SetAuthToken(*token)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, err)
		srv.Close()
		store.Close()
		return 1
	}
	hs := &http.Server{Handler: srv.Handler()}
	cache := *cacheDir
	if cache == "" {
		cache = "in-memory"
	}
	// The listening line goes to stderr: stdout belongs to results.
	fmt.Fprintf(stderr, "emptcpsim serve: listening on http://%s (cache %s, -j %d)\n", ln.Addr(), cache, *jobs)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	exit := 0
	select {
	case <-ctx.Done():
		fmt.Fprintln(stderr, "emptcpsim serve: shutting down")
	case err := <-errc:
		fmt.Fprintln(stderr, err)
		exit = 1
	}
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	hs.Shutdown(sctx)
	if err := srv.Close(); err != nil { // cancels campaigns, syncs cache
		fmt.Fprintln(stderr, err)
		exit = 1
	}
	logRunStats(stderr, store)
	if err := store.Close(); err != nil {
		fmt.Fprintln(stderr, err)
		exit = 1
	}
	return exit
}

// runCampaign is `emptcpsim campaign`: execute one campaign locally
// and write its canonical aggregates. SPEC is a JSON file path, "-"
// for stdin, or the built-in name "wild" (the §5.1 grid; shape it with
// -device/-size/-population/-replicate). With -cachedir the campaign
// reads and extends the same persistent cache `serve` uses, so a local
// -j 1 run is the byte-identical reference for a served campaign.
func runCampaign(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("emptcpsim campaign", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cacheDir := fs.String("cachedir", "", "persistent run-cache directory (empty: none)")
	jobs := fs.Int("j", runtime.NumCPU(), "worker count")
	outFile := fs.String("o", "", "write aggregates to FILE (default stdout)")
	verbose := fs.Bool("v", false, "print run/cache/lockstep statistics to stderr")
	useLockstep := fs.Bool("lockstep", true, "lane-batch repeated same-scenario runs (same output; 0 disables)")
	device := fs.String("device", "s3", "device profile for the wild spec: s3 or n5")
	sizeMB := fs.Float64("size", 16, "download size in MB for the wild spec")
	population := fs.Int("population", 30, "seeds per cell for the wild spec")
	replicate := fs.Int("replicate", 1, "grid replication factor for the wild spec")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "campaign requires exactly one SPEC argument (a JSON file, \"-\", or \"wild\")")
		usage(stderr)
		return 2
	}
	if *jobs < 1 {
		fmt.Fprintf(stderr, "-j %d: worker count must be ≥ 1\n", *jobs)
		usage(stderr)
		return 2
	}

	var spec campaign.Spec
	switch arg := fs.Arg(0); arg {
	case "wild":
		spec = exp.WildSpec(*device, *sizeMB, *population, *replicate)
	default:
		var r io.Reader
		if arg == "-" {
			r = os.Stdin
		} else {
			f, err := os.Open(arg)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			defer f.Close()
			r = f
		}
		dec := json.NewDecoder(r)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			fmt.Fprintf(stderr, "bad campaign spec %s: %v\n", arg, err)
			return 1
		}
	}

	store, code := openStore(*cacheDir, stderr)
	if code != 0 {
		return code
	}
	defer store.Close()

	job, err := campaign.New(spec, campaign.Options{Disk: store, Jobs: *jobs, NoLockstep: !*useLockstep})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	// Ctrl-C cancels at a run boundary; with -cachedir the partial
	// campaign is durable and a re-invocation resumes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			job.Cancel()
		case <-done:
		}
	}()
	err = job.Execute()
	close(done)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if *verbose {
		p := job.Progress()
		fmt.Fprintf(stderr, "campaign %s: %d/%d runs, %d simulated, %d disk hits (hit rate %.4f)\n",
			p.ID, p.RunsDone, p.TotalRuns, p.Simulated, p.DiskHits, p.HitRate)
		logRunStats(stderr, store)
	}
	b, ok := job.Result()
	if !ok {
		fmt.Fprintf(stderr, "campaign %s: cancelled after %d of %d runs (rerun to resume)\n",
			job.ID(), job.Progress().RunsDone, job.Progress().TotalRuns)
		return 1
	}
	if *outFile != "" {
		if err := os.WriteFile(*outFile, b, 0o644); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0
	}
	if _, err := stdout.Write(b); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	return 0
}
