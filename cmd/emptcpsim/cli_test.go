package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestInvalidInvocationsExitNonZero is the CLI exit-code contract, one
// table: every invalid invocation exits non-zero with a usage message
// on stderr and NOTHING on stdout — so `emptcpsim ... > out.json`
// pipelines can trust that a zero exit produced the output and a
// non-zero exit produced none.
func TestInvalidInvocationsExitNonZero(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-bogus"}},
		{"unknown flag with experiment", []string{"-bogus", "fig1"}},
		{"unknown device", []string{"-device", "iphone", "fig1"}},
		{"unknown experiment", []string{"fig99"}},
		{"unknown experiment after valid", []string{"-quick", "fig1", "fig99"}},
		{"zero workers", []string{"-j", "0", "fig1"}},
		{"negative workers", []string{"-j", "-4", "fig1"}},
		{"trace without experiment", []string{"-trace", "x.jsonl"}},
		{"metrics without experiment", []string{"-metrics", "x.json"}},
		{"trace with all", []string{"-quick", "-trace", "x.jsonl", "all"}},
		{"metrics with all", []string{"-quick", "-metrics", "x.json", "all"}},
		{"trace with two experiments", []string{"-quick", "-trace", "x.jsonl", "fig5", "fig8"}},
		{"serve unknown flag", []string{"serve", "-bogus"}},
		{"serve zero workers", []string{"serve", "-j", "0"}},
		{"serve positional arg", []string{"serve", "extra"}},
		{"campaign unknown flag", []string{"campaign", "-bogus"}},
		{"campaign no spec", []string{"campaign"}},
		{"campaign two specs", []string{"campaign", "a.json", "b.json"}},
		{"campaign zero workers", []string{"campaign", "-j", "0", "wild"}},
		{"serve zero lease ttl", []string{"serve", "-lease-ttl", "0s"}},
		{"worker unknown flag", []string{"worker", "-bogus"}},
		{"worker no coordinator", []string{"worker"}},
		{"worker positional arg", []string{"worker", "-coordinator", "http://x", "extra"}},
		{"worker zero jobs", []string{"worker", "-coordinator", "http://x", "-j", "0"}},
		{"worker zero poll", []string{"worker", "-coordinator", "http://x", "-poll", "0s"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb strings.Builder
			code := run(tc.args, &out, &errb)
			if code == 0 {
				t.Errorf("%v: exit 0, want non-zero", tc.args)
			}
			if out.Len() != 0 {
				t.Errorf("%v: stdout not empty:\n%s", tc.args, out.String())
			}
			if errb.Len() == 0 {
				t.Errorf("%v: stderr empty, want a usage message", tc.args)
			}
		})
	}

	// Runtime failures (valid invocation, bad environment) exit 1, still
	// with clean stdout. A regular file as a -cachedir parent makes
	// OpenStore's MkdirAll fail without touching anything real.
	notADir := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(notADir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"campaign missing spec file", []string{"campaign", filepath.Join(t.TempDir(), "no-such-spec.json")}},
		{"campaign malformed spec", []string{"campaign", "-"}}, // stdin is empty/invalid under go test
		{"campaign bad cachedir", []string{"campaign", "-cachedir", filepath.Join(notADir, "sub"), "-population", "1", "wild"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb strings.Builder
			code := run(tc.args, &out, &errb)
			if code != 1 {
				t.Errorf("%v: exit %d, want 1 (stderr: %s)", tc.args, code, errb.String())
			}
			if out.Len() != 0 {
				t.Errorf("%v: stdout not empty:\n%s", tc.args, out.String())
			}
		})
	}
}

func TestHelpExitsZero(t *testing.T) {
	for _, args := range [][]string{{"-h"}, {"serve", "-h"}, {"campaign", "-h"}, {"worker", "-h"}} {
		var out, errb strings.Builder
		if code := run(args, &out, &errb); code != 0 {
			t.Errorf("%v: exit %d, want 0", args, code)
		}
		if out.Len() != 0 {
			t.Errorf("%v: help wrote to stdout:\n%s", args, out.String())
		}
		if !strings.Contains(errb.String(), "Usage") && !strings.Contains(errb.String(), "usage") {
			t.Errorf("%v: no usage text on stderr", args)
		}
	}
}

// tinySpecFile writes a minimal fast campaign spec and returns its path.
func tinySpecFile(t *testing.T, dir string) string {
	t.Helper()
	spec := map[string]any{
		"name": "cli-test", "wifi": []string{"bad"}, "lte": []string{"good"},
		"locations": []string{"wdc"}, "sizes_mb": []float64{0.25},
		"protocols": []string{"emptcp"}, "seeds": map[string]any{"base": 3, "count": 4},
		"shard_size": 2,
	}
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(p, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCampaignSubcommand(t *testing.T) {
	dir := t.TempDir()
	specPath := tinySpecFile(t, dir)

	// -j 1 to stdout is the reference.
	var ref, errb strings.Builder
	if code := run([]string{"campaign", "-j", "1", specPath}, &ref, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(ref.String(), `"spec_digest"`) || !strings.Contains(ref.String(), `"cells"`) {
		t.Fatalf("aggregate JSON malformed:\n%s", ref.String())
	}

	// Parallel + persistent cache: byte-identical to the reference.
	cache := filepath.Join(dir, "cache")
	var par strings.Builder
	errb.Reset()
	if code := run([]string{"campaign", "-j", "4", "-cachedir", cache, "-v", specPath}, &par, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if par.String() != ref.String() {
		t.Errorf("-j 4 + cachedir output differs from -j 1:\n%s\nvs\n%s", par.String(), ref.String())
	}
	if !strings.Contains(errb.String(), "hit rate") {
		t.Errorf("-v wrote no stats to stderr: %s", errb.String())
	}
	// The -v contract also covers the persistent store and lockstep
	// counters (single-run -v prints the in-process analogues).
	if !strings.Contains(errb.String(), "runcache store:") || !strings.Contains(errb.String(), "lockstep:") {
		t.Errorf("-v missing store/lockstep stats on stderr: %s", errb.String())
	}

	// The -lockstep=0 escape hatch is byte-transparent.
	var noLane strings.Builder
	errb.Reset()
	if code := run([]string{"campaign", "-j", "1", "-lockstep=0", specPath}, &noLane, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if noLane.String() != ref.String() {
		t.Errorf("-lockstep=0 output differs from default")
	}

	// Re-run against the warm cache via -o FILE: same bytes, zero
	// simulated.
	outPath := filepath.Join(dir, "agg.json")
	var out2 strings.Builder
	errb.Reset()
	if code := run([]string{"campaign", "-j", "2", "-cachedir", cache, "-v", "-o", outPath, specPath}, &out2, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if out2.Len() != 0 {
		t.Errorf("-o FILE still wrote to stdout:\n%s", out2.String())
	}
	fromFile, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(fromFile) != ref.String() {
		t.Error("warm-cache -o output differs from reference")
	}
	if !strings.Contains(errb.String(), "0 simulated") {
		t.Errorf("warm re-run was not a pure replay: %s", errb.String())
	}

	// The built-in wild spec runs end to end at a tiny population.
	var wild strings.Builder
	errb.Reset()
	if code := run([]string{"campaign", "-population", "1", "-size", "0.25", "-quickish", "wild"}, &wild, &errb); code == 0 {
		t.Fatal("bogus flag accepted")
	}
	errb.Reset()
	wild.Reset()
	if code := run([]string{"campaign", "-population", "1", "-size", "0.25", "wild"}, &wild, &errb); code != 0 {
		t.Fatalf("wild campaign exit %d, stderr: %s", code, errb.String())
	}
	// 4 categories × 3 locations × 3 protocols × 1 seed = 36 runs,
	// 12 cells.
	if got := strings.Count(wild.String(), `"protocol"`); got != 12 {
		t.Errorf("wild campaign produced %d cells, want 12:\n%.400s", got, wild.String())
	}
}
