package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/campaign"
)

// runWorker is `emptcpsim worker`: the pull side of distributed
// campaign execution. It polls the coordinator named by -coordinator
// for running campaigns, leases shards, executes them with the full
// local stack (lockstep lanes, checkpoint fork, its own -cachedir), and
// streams the shard aggregates back. Any number of workers may attach
// to one coordinator at any time; joining, leaving, and crashing never
// change the campaign's output bytes. Each worker needs its own
// -cachedir — the run cache is single-process.
func runWorker(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("emptcpsim worker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	coordinator := fs.String("coordinator", "", "coordinator base URL (required), e.g. http://host:8383")
	cacheDir := fs.String("cachedir", "", "persistent run-cache directory for this worker (empty: none)")
	token := fs.String("token", "", "bearer token, when the coordinator requires one")
	jobs := fs.Int("j", runtime.NumCPU(), "shards to execute concurrently")
	useLockstep := fs.Bool("lockstep", true, "lane-batch repeated same-scenario runs (same output; 0 disables)")
	poll := fs.Duration("poll", 500*time.Millisecond, "idle wait between lease attempts")
	name := fs.String("name", "", "worker name in coordinator lease state (default host/pid)")
	verbose := fs.Bool("v", false, "log each leased shard and completion to stderr")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "worker takes no positional arguments (got %q)\n", fs.Args())
		usage(stderr)
		return 2
	}
	if *coordinator == "" {
		fmt.Fprintln(stderr, "worker requires -coordinator URL")
		usage(stderr)
		return 2
	}
	if *jobs < 1 {
		fmt.Fprintf(stderr, "-j %d: shard concurrency must be ≥ 1\n", *jobs)
		usage(stderr)
		return 2
	}
	if *poll <= 0 {
		fmt.Fprintf(stderr, "-poll %v: must be positive\n", *poll)
		usage(stderr)
		return 2
	}

	store, code := openStore(*cacheDir, stderr)
	if code != 0 {
		return code
	}

	logf := func(string, ...any) {}
	if *verbose {
		l := log.New(stderr, "", log.LstdFlags)
		logf = l.Printf
	}
	w, err := campaign.NewWorker(campaign.WorkerOptions{
		Coordinator:  *coordinator,
		Token:        *token,
		Disk:         store,
		Jobs:         *jobs,
		NoLockstep:   !*useLockstep,
		PollInterval: *poll,
		Name:         *name,
		Logf:         logf,
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		store.Close()
		return 1
	}

	fmt.Fprintf(stderr, "emptcpsim worker: pulling from %s (-j %d)\n", *coordinator, *jobs)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	w.Run(ctx) // returns only on signal

	exit := 0
	fmt.Fprintf(stderr, "emptcpsim worker: done %d shards (%d duplicates, %d leases lost)\n",
		w.ShardsDone.Load(), w.Duplicates.Load(), w.LeasesLost.Load())
	logRunStats(stderr, store)
	if err := store.Close(); err != nil {
		fmt.Fprintln(stderr, err)
		exit = 1
	}
	return exit
}
