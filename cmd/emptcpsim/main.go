// Command emptcpsim regenerates the paper's tables and figures, and
// runs population-scale campaigns locally or as a service.
//
// Usage:
//
//	emptcpsim [-device s3|n5] [-seed N] [-quick] [-csv] [-j N]
//	          [-cache=false] [-nofork] [-v] [-trace FILE] [-metrics FILE]
//	          [-cpuprofile FILE] [-memprofile FILE] [experiment ...]
//	emptcpsim campaign [-cachedir DIR] [-j N] [-o FILE] [-v] (SPEC.json | - | wild)
//	emptcpsim serve [-addr HOST:PORT] [-cachedir DIR] [-j N] [-token T] [-lease-ttl D]
//	emptcpsim worker -coordinator URL [-cachedir DIR] [-j N] [-token T]
//
// With no arguments it lists the available experiments. Pass experiment
// ids ("fig5", "table2", ...) or "all" to run everything in paper order.
// The campaign and serve subcommands are documented in serve.go and in
// the repository README.
// Experiments are independent seeded simulations, so -j runs them (and
// the repeated runs inside each) across N workers; -j 1 is fully
// sequential. Output is byte-identical at any -j.
//
// -trace writes a structured JSONL event timeline (one recorder per
// seeded run, merged in run order) and -metrics writes per-run aggregate
// counters and time series; both require exactly one experiment id so the
// run numbering is meaningful, and both are byte-identical at any -j.
//
// Runs are memoized in a process-wide cache shared by all requested
// experiments, so overlapping grids (shared baselines, repeated ablation
// arms) simulate each distinct run once; output is byte-identical with
// -cache=false. Sweep families additionally share their simulated prefix
// through checkpoint/fork (see internal/scenario.RunSweep); -nofork
// disables that and simulates every sweep point in full — output is
// byte-identical either way. -v prints cache and fork statistics to
// stderr after the run. -cpuprofile and -memprofile write pprof profiles
// of the whole invocation for `go tool pprof`.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/energy"
	"repro/internal/exp"
	"repro/internal/lockstep"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// usage prints the one-screen invocation summary. Every invalid
// invocation routes through here (on stderr) and exits 2 with nothing
// on stdout, so scripts can trust a zero exit + stdout pairing.
func usage(w io.Writer) {
	fmt.Fprintln(w, `usage:
  emptcpsim [flags] [experiment ...|all]   regenerate tables/figures (no args: list)
  emptcpsim campaign [flags] SPEC          run one campaign (SPEC is a file, "-", or "wild")
  emptcpsim serve [flags]                  campaign HTTP service / distributed coordinator
  emptcpsim worker -coordinator URL        pull and execute campaign shards from a coordinator
run "emptcpsim <subcommand> -h" for flags.`)
}

// run executes the CLI against the given argument list and streams.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 {
		switch args[0] {
		case "serve":
			return runServe(args[1:], stdout, stderr)
		case "campaign":
			return runCampaign(args[1:], stdout, stderr)
		case "worker":
			return runWorker(args[1:], stdout, stderr)
		}
	}
	fs := flag.NewFlagSet("emptcpsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	device := fs.String("device", "s3", "device profile: s3 (Galaxy S3) or n5 (Nexus 5)")
	seed := fs.Int64("seed", 0, "base seed for all runs")
	quickMode := fs.Bool("quick", false, "shrink transfer sizes and repetition counts (~10x faster)")
	csvMode := fs.Bool("csv", false, "emit result tables as CSV instead of aligned text")
	jobs := fs.Int("j", runtime.NumCPU(), "worker count for parallel runs (1 = sequential)")
	traceFile := fs.String("trace", "", "write a JSONL trace-event timeline to FILE (single experiment only)")
	metricsFile := fs.String("metrics", "", "write per-run JSON metrics to FILE (single experiment only)")
	useCache := fs.Bool("cache", true, "memoize identical runs across experiments")
	noFork := fs.Bool("nofork", false, "disable checkpoint/fork prefix sharing for sweeps (same output, slower)")
	useLockstep := fs.Bool("lockstep", true, "lane-batch repeated same-scenario runs (same output; 0 disables)")
	verbose := fs.Bool("v", false, "print cache, fork, and lockstep statistics to stderr")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to FILE")
	memProfile := fs.String("memprofile", "", "write an allocation profile to FILE on exit")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0 // asked-for help is not an error
		}
		return 2
	}
	if *jobs < 1 {
		fmt.Fprintf(stderr, "-j %d: worker count must be ≥ 1\n", *jobs)
		usage(stderr)
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // profile live objects, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, err)
			}
		}()
	}

	cfg := exp.Config{BaseSeed: *seed, Quick: *quickMode, Jobs: *jobs, NoFork: *noFork, NoLockstep: !*useLockstep}
	if *useCache {
		cfg.Cache = scenario.NewRunCache()
	}
	switch *device {
	case "s3":
		cfg.Device = energy.GalaxyS3()
	case "n5":
		cfg.Device = energy.Nexus5()
	default:
		fmt.Fprintf(stderr, "unknown device %q (want s3 or n5)\n", *device)
		usage(stderr)
		return 2
	}

	rest := fs.Args()
	if len(rest) == 0 {
		if *traceFile != "" || *metricsFile != "" {
			// Silently listing experiments would drop the requested
			// trace on the floor; that's an invalid invocation, not a
			// listing.
			fmt.Fprintln(stderr, "-trace/-metrics require exactly one experiment id")
			usage(stderr)
			return 2
		}
		fmt.Fprintln(stdout, "available experiments:")
		for _, e := range exp.All() {
			fmt.Fprintf(stdout, "  %-14s %s\n", e.ID, e.Title)
		}
		fmt.Fprintln(stdout, "\nrun with: emptcpsim [flags] <id>... | all")
		return 0
	}

	var ids []string
	if len(rest) == 1 && rest[0] == "all" {
		ids = exp.IDs()
	} else {
		ids = rest
	}

	// Validate every id before running anything, so a typo late in the
	// list fails fast instead of after minutes of simulation.
	es := make([]*exp.Experiment, len(ids))
	for i, id := range ids {
		if es[i] = exp.ByID(id); es[i] == nil {
			fmt.Fprintf(stderr, "unknown experiment %q; run without arguments for the list\n", id)
			usage(stderr)
			return 2
		}
	}

	if *traceFile != "" || *metricsFile != "" {
		// One experiment keeps run numbering deterministic: batches are
		// reserved by that experiment's orchestration alone, not racing
		// with other experiments on the pool.
		if len(es) != 1 {
			// "all" lands here too: it expands to every experiment, which
			// would make the run numbering meaningless.
			fmt.Fprintln(stderr, "-trace/-metrics require exactly one experiment id")
			usage(stderr)
			return 2
		}
		cfg.Trace = &trace.Collector{
			WantEvents:  *traceFile != "",
			WantMetrics: *metricsFile != "",
		}
	}

	// Each experiment renders its section into a buffer on the worker
	// pool; sections are written out in request order, so the transcript
	// is byte-identical to a sequential run (modulo wall times).
	sections := runner.Map(runner.New(*jobs), len(es), func(i int) string {
		e := es[i]
		var b strings.Builder
		fmt.Fprintf(&b, "=== %s — %s\n", e.ID, e.Title)
		fmt.Fprintf(&b, "paper: %s\n\n", e.Paper)
		start := time.Now()
		out := e.Run(cfg)
		if *csvMode {
			b.WriteString(out.CSV())
		} else {
			b.WriteString(out.String())
		}
		fmt.Fprintf(&b, "(%s wall time)\n\n", time.Since(start).Round(time.Millisecond))
		return b.String()
	})
	for _, s := range sections {
		io.WriteString(stdout, s)
	}
	if cfg.Trace != nil {
		if err := exportTrace(cfg.Trace, *traceFile, *metricsFile); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	if *verbose {
		// Stats go to stderr so stdout stays byte-identical for goldens.
		hits, misses, waits := cfg.Cache.FlightStats()
		trees, forks := scenario.ForkStats()
		lanes, peels := lockstep.Stats()
		fmt.Fprintf(stderr, "runcache: %d hits, %d misses, %d single-flight waits\n", hits, misses, waits)
		fmt.Fprintf(stderr, "sweep forks: %d trees, %d forked runs\n", trees, forks)
		fmt.Fprintf(stderr, "lockstep: %d lane runs, %d peeled\n", lanes, peels)
	}
	return 0
}

// exportTrace writes the collected per-run timelines and metrics.
func exportTrace(c *trace.Collector, traceFile, metricsFile string) error {
	write := func(path string, render func(io.Writer) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := render(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if traceFile != "" {
		if err := write(traceFile, c.WriteJSONL); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
	}
	if metricsFile != "" {
		if err := write(metricsFile, c.WriteMetrics); err != nil {
			return fmt.Errorf("writing metrics: %w", err)
		}
	}
	return nil
}
