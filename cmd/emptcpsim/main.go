// Command emptcpsim regenerates the paper's tables and figures.
//
// Usage:
//
//	emptcpsim [-device s3|n5] [-seed N] [-quick] [-csv] [experiment ...]
//
// With no arguments it lists the available experiments. Pass experiment
// ids ("fig5", "table2", ...) or "all" to run everything in paper order.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/energy"
	"repro/internal/exp"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI against the given argument list and streams.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("emptcpsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	device := fs.String("device", "s3", "device profile: s3 (Galaxy S3) or n5 (Nexus 5)")
	seed := fs.Int64("seed", 0, "base seed for all runs")
	quickMode := fs.Bool("quick", false, "shrink transfer sizes and repetition counts (~10x faster)")
	csvMode := fs.Bool("csv", false, "emit result tables as CSV instead of aligned text")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := exp.Config{BaseSeed: *seed, Quick: *quickMode}
	switch *device {
	case "s3":
		cfg.Device = energy.GalaxyS3()
	case "n5":
		cfg.Device = energy.Nexus5()
	default:
		fmt.Fprintf(stderr, "unknown device %q (want s3 or n5)\n", *device)
		return 2
	}

	rest := fs.Args()
	if len(rest) == 0 {
		fmt.Fprintln(stdout, "available experiments:")
		for _, e := range exp.All() {
			fmt.Fprintf(stdout, "  %-14s %s\n", e.ID, e.Title)
		}
		fmt.Fprintln(stdout, "\nrun with: emptcpsim [flags] <id>... | all")
		return 0
	}

	var ids []string
	if len(rest) == 1 && rest[0] == "all" {
		ids = exp.IDs()
	} else {
		ids = rest
	}

	for _, id := range ids {
		e := exp.ByID(id)
		if e == nil {
			fmt.Fprintf(stderr, "unknown experiment %q; run without arguments for the list\n", id)
			return 2
		}
		fmt.Fprintf(stdout, "=== %s — %s\n", e.ID, e.Title)
		fmt.Fprintf(stdout, "paper: %s\n\n", e.Paper)
		start := time.Now()
		out := e.Run(cfg)
		if *csvMode {
			fmt.Fprint(stdout, out.CSV())
		} else {
			fmt.Fprint(stdout, out.String())
		}
		fmt.Fprintf(stdout, "(%s wall time)\n\n", time.Since(start).Round(time.Millisecond))
	}
	return 0
}
