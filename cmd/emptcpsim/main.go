// Command emptcpsim regenerates the paper's tables and figures.
//
// Usage:
//
//	emptcpsim [-device s3|n5] [-seed N] [-quick] [-csv] [-j N] [experiment ...]
//
// With no arguments it lists the available experiments. Pass experiment
// ids ("fig5", "table2", ...) or "all" to run everything in paper order.
// Experiments are independent seeded simulations, so -j runs them (and
// the repeated runs inside each) across N workers; -j 1 is fully
// sequential. Output is byte-identical at any -j.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/energy"
	"repro/internal/exp"
	"repro/internal/runner"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI against the given argument list and streams.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("emptcpsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	device := fs.String("device", "s3", "device profile: s3 (Galaxy S3) or n5 (Nexus 5)")
	seed := fs.Int64("seed", 0, "base seed for all runs")
	quickMode := fs.Bool("quick", false, "shrink transfer sizes and repetition counts (~10x faster)")
	csvMode := fs.Bool("csv", false, "emit result tables as CSV instead of aligned text")
	jobs := fs.Int("j", runtime.NumCPU(), "worker count for parallel runs (1 = sequential)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := exp.Config{BaseSeed: *seed, Quick: *quickMode, Jobs: *jobs}
	switch *device {
	case "s3":
		cfg.Device = energy.GalaxyS3()
	case "n5":
		cfg.Device = energy.Nexus5()
	default:
		fmt.Fprintf(stderr, "unknown device %q (want s3 or n5)\n", *device)
		return 2
	}

	rest := fs.Args()
	if len(rest) == 0 {
		fmt.Fprintln(stdout, "available experiments:")
		for _, e := range exp.All() {
			fmt.Fprintf(stdout, "  %-14s %s\n", e.ID, e.Title)
		}
		fmt.Fprintln(stdout, "\nrun with: emptcpsim [flags] <id>... | all")
		return 0
	}

	var ids []string
	if len(rest) == 1 && rest[0] == "all" {
		ids = exp.IDs()
	} else {
		ids = rest
	}

	// Validate every id before running anything, so a typo late in the
	// list fails fast instead of after minutes of simulation.
	es := make([]*exp.Experiment, len(ids))
	for i, id := range ids {
		if es[i] = exp.ByID(id); es[i] == nil {
			fmt.Fprintf(stderr, "unknown experiment %q; run without arguments for the list\n", id)
			return 2
		}
	}

	// Each experiment renders its section into a buffer on the worker
	// pool; sections are written out in request order, so the transcript
	// is byte-identical to a sequential run (modulo wall times).
	sections := runner.Map(runner.New(*jobs), len(es), func(i int) string {
		e := es[i]
		var b strings.Builder
		fmt.Fprintf(&b, "=== %s — %s\n", e.ID, e.Title)
		fmt.Fprintf(&b, "paper: %s\n\n", e.Paper)
		start := time.Now()
		out := e.Run(cfg)
		if *csvMode {
			b.WriteString(out.CSV())
		} else {
			b.WriteString(out.String())
		}
		fmt.Fprintf(&b, "(%s wall time)\n\n", time.Since(start).Round(time.Millisecond))
		return b.String()
	})
	for _, s := range sections {
		io.WriteString(stdout, s)
	}
	return 0
}
