package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListExperiments(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"fig1", "fig17", "ext-streaming", "available experiments"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("listing missing %q", want)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-quick", "fig1"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Figure 1") || !strings.Contains(out.String(), "Samsung Galaxy S3") {
		t.Errorf("fig1 output wrong:\n%s", out.String())
	}
}

func TestRunCSVMode(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-quick", "-csv", "fig1"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "Device,WiFi,3G,LTE") {
		t.Errorf("CSV output wrong:\n%s", out.String())
	}
}

func TestNexus5Device(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-device", "n5", "-quick", "table2"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "Energy Information Base") {
		t.Error("table2 output missing")
	}
}

func TestBadDevice(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-device", "iphone"}, &out, &errb); code != 2 {
		t.Errorf("exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown device") {
		t.Error("missing error message")
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"fig99"}, &out, &errb); code != 2 {
		t.Errorf("exit %d, want 2", code)
	}
}

func TestBadFlag(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-bogus"}, &out, &errb); code != 2 {
		t.Errorf("exit %d, want 2", code)
	}
}

func TestRunAllQuick(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-quick", "all"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	// Every registered experiment must have produced a section.
	for _, id := range []string{"=== fig5", "=== fig16", "=== ext-sweep", "=== fig11"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("all-run missing %q", id)
		}
	}
}

func TestJobsFlagDeterministic(t *testing.T) {
	norm := func(s string) string {
		// Wall-time lines vary run to run; drop them before comparing.
		var b strings.Builder
		for _, ln := range strings.Split(s, "\n") {
			if strings.HasSuffix(ln, "wall time)") {
				continue
			}
			b.WriteString(ln)
			b.WriteString("\n")
		}
		return b.String()
	}
	var seq, par, errb strings.Builder
	if code := run([]string{"-quick", "-j", "1", "fig8", "fig14"}, &seq, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if code := run([]string{"-quick", "-j", "8", "fig8", "fig14"}, &par, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if norm(seq.String()) != norm(par.String()) {
		t.Errorf("-j 1 and -j 8 outputs differ:\n--- j1 ---\n%s\n--- j8 ---\n%s", seq.String(), par.String())
	}
}

func TestUnknownExperimentFailsBeforeRunning(t *testing.T) {
	// A bad id anywhere in the list must fail upfront: nothing from the
	// valid leading experiment may reach stdout.
	var out, errb strings.Builder
	if code := run([]string{"-quick", "fig1", "fig99"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if out.Len() != 0 {
		t.Errorf("stdout should be empty on upfront validation failure, got:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "fig99") {
		t.Error("error message should name the bad id")
	}
}

func TestTraceFlagsWriteFiles(t *testing.T) {
	dir := t.TempDir()
	tf := filepath.Join(dir, "trace.jsonl")
	mf := filepath.Join(dir, "metrics.json")
	var out, errb strings.Builder
	if code := run([]string{"-quick", "-trace", tf, "-metrics", mf, "fig8"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	ev, err := os.ReadFile(tf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(ev), `{"run":0,`) {
		t.Errorf("trace file should start with run 0: %.80s", ev)
	}
	mx, err := os.ReadFile(mf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(mx), `"counters":{`) {
		t.Errorf("metrics file missing counters: %.80s", mx)
	}
}

func TestTraceFlagsByteIdenticalAcrossJobs(t *testing.T) {
	dir := t.TempDir()
	paths := map[string]string{}
	for _, j := range []string{"1", "4"} {
		tf := filepath.Join(dir, "trace-j"+j+".jsonl")
		var out, errb strings.Builder
		if code := run([]string{"-quick", "-j", j, "-trace", tf, "fig8"}, &out, &errb); code != 0 {
			t.Fatalf("-j %s exit %d, stderr: %s", j, code, errb.String())
		}
		paths[j] = tf
	}
	e1, err := os.ReadFile(paths["1"])
	if err != nil {
		t.Fatal(err)
	}
	e4, err := os.ReadFile(paths["4"])
	if err != nil {
		t.Fatal(err)
	}
	if len(e1) == 0 {
		t.Fatal("empty trace file")
	}
	if string(e1) != string(e4) {
		t.Error("trace files differ between -j 1 and -j 4")
	}
}

func TestTraceRequiresSingleExperiment(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-quick", "-trace", "/tmp/x.jsonl", "fig5", "fig8"}, &out, &errb); code != 2 {
		t.Errorf("exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "exactly one experiment") {
		t.Errorf("missing error message, got: %s", errb.String())
	}
}

func TestTraceUnwritableFile(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-quick", "-trace", "/nonexistent-dir/x.jsonl", "fig8"}, &out, &errb); code != 1 {
		t.Errorf("exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "writing trace") {
		t.Errorf("missing error message, got: %s", errb.String())
	}
}
