package main

import (
	"strings"
	"testing"
)

func TestListExperiments(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"fig1", "fig17", "ext-streaming", "available experiments"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("listing missing %q", want)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-quick", "fig1"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Figure 1") || !strings.Contains(out.String(), "Samsung Galaxy S3") {
		t.Errorf("fig1 output wrong:\n%s", out.String())
	}
}

func TestRunCSVMode(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-quick", "-csv", "fig1"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "Device,WiFi,3G,LTE") {
		t.Errorf("CSV output wrong:\n%s", out.String())
	}
}

func TestNexus5Device(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-device", "n5", "-quick", "table2"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "Energy Information Base") {
		t.Error("table2 output missing")
	}
}

func TestBadDevice(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-device", "iphone"}, &out, &errb); code != 2 {
		t.Errorf("exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown device") {
		t.Error("missing error message")
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"fig99"}, &out, &errb); code != 2 {
		t.Errorf("exit %d, want 2", code)
	}
}

func TestBadFlag(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-bogus"}, &out, &errb); code != 2 {
		t.Errorf("exit %d, want 2", code)
	}
}

func TestRunAllQuick(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-quick", "all"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	// Every registered experiment must have produced a section.
	for _, id := range []string{"=== fig5", "=== fig16", "=== ext-sweep", "=== fig11"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("all-run missing %q", id)
		}
	}
}
