// Benchmarks regenerating every table and figure in the paper's
// evaluation (one per experiment id, DESIGN.md §3), plus ablation benches
// for the design decisions called out in DESIGN.md §4. Each bench runs the
// experiment in Quick mode and reports its headline metrics through
// b.ReportMetric, so `go test -bench=. -benchmem` both exercises and
// summarizes the whole reproduction.
package emptcp_test

import (
	"testing"

	emptcp "repro"
	"repro/internal/eib"
	"repro/internal/energy"
	"repro/internal/exp"
	"repro/internal/link"
	"repro/internal/mptcp"
	"repro/internal/ptcp"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/simrng"
	"repro/internal/tcp"
	"repro/internal/units"
	"repro/internal/workload"
)

// mptcpNew builds a default-option connection for the ablation benches.
func mptcpNew(eng *sim.Engine, src *simrng.Source) *mptcp.Connection {
	return mptcp.New(eng, src, mptcp.DefaultOptions())
}

// benchExperiment runs one registered experiment per iteration and
// reports the named metrics.
func benchExperiment(b *testing.B, id string, metrics ...string) {
	b.Helper()
	e := exp.ByID(id)
	if e == nil {
		b.Fatalf("experiment %q not registered", id)
	}
	var out *exp.Output
	for i := 0; i < b.N; i++ {
		out = e.Run(exp.Config{Quick: true})
	}
	for _, m := range metrics {
		if v, ok := out.Metrics[m]; ok {
			b.ReportMetric(v, m)
		}
	}
}

func BenchmarkFig1FixedOverheads(b *testing.B) {
	benchExperiment(b, "fig1", "s3_lte_J", "n5_lte_J")
}

func BenchmarkTable1Devices(b *testing.B) {
	benchExperiment(b, "table1")
}

func BenchmarkFig3Heatmap(b *testing.B) {
	benchExperiment(b, "fig3", "mptcp_best_fraction")
}

func BenchmarkTable2EIB(b *testing.B) {
	benchExperiment(b, "table2", "t2_err_pct_lte1.0")
}

func BenchmarkFig4Regions(b *testing.B) {
	benchExperiment(b, "fig4", "area_1MB", "area_16MB")
}

func BenchmarkFig5StaticGoodWiFi(b *testing.B) {
	benchExperiment(b, "fig5", "emptcp_energy_vs_mptcp_pct", "emptcp_energy_vs_tcpwifi_pct")
}

func BenchmarkFig6StaticBadWiFi(b *testing.B) {
	benchExperiment(b, "fig6", "emptcp_energy_vs_mptcp_pct", "emptcp_time_vs_tcpwifi_pct")
}

func BenchmarkFig7RandomBWTrace(b *testing.B) {
	benchExperiment(b, "fig7", "energy_eMPTCP", "energy_MPTCP")
}

func BenchmarkFig8RandomBW(b *testing.B) {
	benchExperiment(b, "fig8", "emptcp_energy_vs_mptcp_pct", "emptcp_time_vs_mptcp_pct")
}

func BenchmarkFig9BackgroundTrace(b *testing.B) {
	benchExperiment(b, "fig9", "lte_active_frac_eMPTCP", "lte_active_frac_MPTCP")
}

func BenchmarkFig10Background(b *testing.B) {
	benchExperiment(b, "fig10", "emptcp_energy_pct_n2_loff0.025")
}

func BenchmarkFig12MobilityTrace(b *testing.B) {
	benchExperiment(b, "fig12", "emptcp_switches")
}

func BenchmarkFig13Mobility(b *testing.B) {
	benchExperiment(b, "fig13", "emptcp_jpb_vs_mptcp_pct", "emptcp_down_vs_mptcp_pct")
}

func BenchmarkSec46Baselines(b *testing.B) {
	benchExperiment(b, "sec46", "mdp_always_wifi_only", "emptcp_down_vs_wififirst_pct")
}

func BenchmarkFig14Categorise(b *testing.B) {
	benchExperiment(b, "fig14", "category_agreement_frac")
}

func BenchmarkFig15SmallFiles(b *testing.B) {
	benchExperiment(b, "fig15", "fig15_emptcp_energy_pct_gg", "fig15_emptcp_energy_pct_bb")
}

func BenchmarkFig16LargeFiles(b *testing.B) {
	benchExperiment(b, "fig16", "fig16_emptcp_energy_pct_gg", "fig16_emptcp_energy_pct_bb")
}

func BenchmarkFig17WebBrowsing(b *testing.B) {
	benchExperiment(b, "fig17", "mptcp_energy_vs_emptcp_pct", "emptcp_latency_vs_mptcp_pct")
}

// --- Ablation benches (DESIGN.md §4) ---

// BenchmarkAblationAdditiveModel shows why counting the device base once
// matters: a naive additive model (base charged per radio) collapses the
// Figure 3 V-region to near nothing.
func BenchmarkAblationAdditiveModel(b *testing.B) {
	calibrated := energy.GalaxyS3()
	additive := energy.GalaxyS3()
	// Fold the device base into each radio: using both now double-pays it.
	additive.Radios[energy.WiFi].Base += additive.DeviceBase
	additive.Radios[energy.LTE].Base += additive.DeviceBase
	additive.DeviceBase = 0
	var fracCal, fracAdd float64
	for i := 0; i < b.N; i++ {
		fracCal = eib.RelativeEfficiencyHeatmap(calibrated, units.MbpsRate(10), units.MbpsRate(10), 24).MPTCPBestFraction()
		fracAdd = eib.RelativeEfficiencyHeatmap(additive, units.MbpsRate(10), units.MbpsRate(10), 24).MPTCPBestFraction()
	}
	b.ReportMetric(fracCal*100, "Vregion_calibrated_pct")
	b.ReportMetric(fracAdd*100, "Vregion_additive_pct")
}

// BenchmarkAblationHysteresis sweeps the §3.4 safety factor and counts
// path-set switches when the predicted WiFi throughput jitters ±5% around
// the WiFi-only threshold — measurement noise on a steady link. Without
// the safety factor the decision flaps on every sample; with the paper's
// 10% it never moves. (In the full closed loop additional damping emerges
// from prediction smoothing and the decay of the suspended interface's
// estimate; this bench isolates the decision rule itself.)
func BenchmarkAblationHysteresis(b *testing.B) {
	lte := units.MbpsRate(9)
	run := func(safety float64) int {
		cfgEIB := eib.DefaultConfig()
		cfgEIB.SafetyFactor = safety
		table := eib.Generate(energy.GalaxyS3(), cfgEIB)
		_, t2 := table.Thresholds(lte)
		current := energy.Both
		switches := 0
		for i := 0; i < 200; i++ {
			f := 0.95
			if i%2 == 1 {
				f = 1.05
			}
			next := table.Decide(current, units.BitRate(float64(t2)*f), lte)
			if next != current {
				switches++
				current = next
			}
		}
		return switches
	}
	var s0, s10, s30 int
	for i := 0; i < b.N; i++ {
		s0, s10, s30 = run(0), run(0.10), run(0.30)
	}
	b.ReportMetric(float64(s0), "switches_safety0")
	b.ReportMetric(float64(s10), "switches_safety10pct")
	b.ReportMetric(float64(s30), "switches_safety30pct")
}

// BenchmarkAblationKappa sweeps the delayed-establishment byte threshold
// on a small-file workload: with κ=0 every 256 KB download pays the LTE
// fixed cost; with the paper's 1 MB none do.
func BenchmarkAblationKappa(b *testing.B) {
	run := func(kappa units.ByteSize) float64 {
		sc := scenario.Wild(energy.GalaxyS3(), scenario.Good, scenario.Good, scenario.WDC,
			workload.FileDownload{Size: 256 * units.KB})
		// Scenario runs eMPTCP with the default core config; emulate the
		// κ sweep by comparing against MPTCP (κ=0 is standard MPTCP
		// behaviour for establishment).
		p := scenario.EMPTCP
		if kappa == 0 {
			p = scenario.MPTCP
		}
		total := 0.0
		for seed := int64(0); seed < 3; seed++ {
			total += scenario.Run(sc, p, scenario.Opts{Seed: seed}).Energy.Joules()
		}
		return total / 3
	}
	var eKappa0, eKappa1MB float64
	for i := 0; i < b.N; i++ {
		eKappa0, eKappa1MB = run(0), run(units.MB)
	}
	b.ReportMetric(eKappa0, "energy_J_kappa0")
	b.ReportMetric(eKappa1MB, "energy_J_kappa1MB")
}

// BenchmarkAblationFastReuse compares resumed-subflow behaviour with and
// without eMPTCP's §3.6 modification (no RFC 2861 cwnd reset).
func BenchmarkAblationFastReuse(b *testing.B) {
	run := func(disableReset bool) units.ByteSize {
		eng := sim.New()
		src := simrng.New(11)
		// A long-RTT path (an overseas server, §5's Singapore deployment)
		// makes the slow-start restart visibly expensive.
		path := &tcp.Path{Name: "lte", Capacity: link.NewConstant(units.MbpsRate(9)), BaseRTT: 0.28}
		cfg := tcp.DefaultConfig()
		cfg.DisableIdleCwndReset = disableReset
		conn := mptcpNew(eng, src)
		sf := conn.AddSubflow("lte", energy.LTE, path, &cfg, 0)
		conn.Download(units.GB, nil)
		eng.RunUntil(10)
		sf.Suspend()
		eng.RunUntil(40) // idle well past the RTO
		sf.Resume()
		before := sf.BytesDelivered
		eng.RunUntil(42) // two seconds after resume
		return sf.BytesDelivered - before
	}
	var slow, fast units.ByteSize
	for i := 0; i < b.N; i++ {
		slow, fast = run(false), run(true)
	}
	b.ReportMetric(slow.Megabytes(), "resume2s_MB_standard")
	b.ReportMetric(fast.Megabytes(), "resume2s_MB_fastreuse")
}

// BenchmarkRunThroughput measures raw simulator speed: simulated seconds
// per wall second for a full eMPTCP scenario run.
func BenchmarkRunThroughput(b *testing.B) {
	sc := emptcp.RandomBandwidth(emptcp.GalaxyS3(), emptcp.FileDownload{Size: 64 * emptcp.MB})
	var elapsed float64
	for i := 0; i < b.N; i++ {
		r := emptcp.Run(sc, emptcp.EMPTCP, emptcp.Opts{Seed: int64(i)})
		elapsed += r.Elapsed
	}
	b.ReportMetric(elapsed/float64(b.N), "simsec/op")
}

func BenchmarkExtStreaming(b *testing.B) {
	benchExperiment(b, "ext-streaming", "emptcp_energy_vs_mptcp_pct")
}

func BenchmarkExtUpload(b *testing.B) {
	benchExperiment(b, "ext-upload", "upload_premium_pct_eMPTCP")
}

func BenchmarkExtDevices(b *testing.B) {
	benchExperiment(b, "ext-devices", "emptcp_energy_J_s3", "emptcp_energy_J_n5")
}

func BenchmarkExtPredictor(b *testing.B) {
	benchExperiment(b, "ext-predictor", "hw_over_lastvalue_mobili")
}

// BenchmarkAblationWeakSignal enables the optional weak-signal WiFi power
// model (disabled in the default profiles; EXPERIMENTS.md D1) and re-runs
// the Figure 8 comparison: with slow WiFi drawing extra power, waiting
// out bad phases on WiFi alone stops being energy-free and eMPTCP's
// energy moves below TCP-over-WiFi's, the paper's direction.
func BenchmarkAblationWeakSignal(b *testing.B) {
	run := func(enable bool) (emJ, twJ float64) {
		dev := energy.GalaxyS3()
		if enable {
			dev.Radios[energy.WiFi].WeakSignalNominal = units.MbpsRate(12)
			dev.Radios[energy.WiFi].WeakSignalPenalty = units.MilliwattPower(500)
		}
		sc := scenario.RandomBandwidth(dev, workload.FileDownload{Size: 64 * units.MB})
		for seed := int64(0); seed < 3; seed++ {
			em := scenario.Run(sc, scenario.EMPTCP, scenario.Opts{Seed: seed})
			tw := scenario.Run(sc, scenario.TCPWiFi, scenario.Opts{Seed: seed})
			emJ += em.Energy.Joules()
			twJ += tw.Energy.Joules()
		}
		return emJ / 3, twJ / 3
	}
	var offRatio, onRatio float64
	for i := 0; i < b.N; i++ {
		em0, tw0 := run(false)
		em1, tw1 := run(true)
		offRatio = em0 / tw0 * 100
		onRatio = em1 / tw1 * 100
	}
	b.ReportMetric(offRatio, "emptcp_vs_tcpwifi_pct_default")
	b.ReportMetric(onRatio, "emptcp_vs_tcpwifi_pct_weaksignal")
}

// BenchmarkAblationFluidVsPacket validates DESIGN.md §4.1: the fluid-round
// TCP model agrees with a packet-level SACK-Reno reference on completion
// time while being orders of magnitude cheaper to simulate.
func BenchmarkAblationFluidVsPacket(b *testing.B) {
	const mbps, rtt = 10.0, 0.05
	size := 16 * units.MB
	var fluidT, packetT float64
	var packetEvents int
	for i := 0; i < b.N; i++ {
		engP := sim.New()
		engP.Horizon = 600
		pres := ptcp.Run(engP, ptcp.DefaultConfig(), ptcp.Link{
			Rate: units.MbpsRate(mbps), OneWayDelay: rtt / 2, QueuePackets: 64,
		}, size)
		packetT = pres.FinishedAt
		packetEvents = pres.Packets

		engF := sim.New()
		engF.Horizon = 600
		src := simrng.New(1)
		path := &tcp.Path{Name: "x", Capacity: link.NewConstant(units.MbpsRate(mbps)), BaseRTT: rtt}
		conn := mptcpNew(engF, src)
		sf := conn.AddSubflow("f", energy.WiFi, path, nil, 0)
		done := 0.0
		conn.Download(size, func(at float64) { done = at; engF.Stop() })
		engF.Run()
		fluidT = done
		_ = sf
	}
	b.ReportMetric(fluidT, "fluid_s")
	b.ReportMetric(packetT, "packet_s")
	b.ReportMetric(float64(packetEvents), "packet_events")
}

func BenchmarkExtMultiAP(b *testing.B) {
	benchExperiment(b, "ext-multiap", "emptcp_lteJ_single", "emptcp_lteJ_multi")
}

func BenchmarkExt3G(b *testing.B) {
	benchExperiment(b, "ext-3g", "emptcp_energy_J_LTE", "emptcp_energy_J_3G")
}

func BenchmarkExtSweep(b *testing.B) {
	benchExperiment(b, "ext-sweep", "energy_J_kappa64KB", "energy_J_kappa1024KB")
}

// --- Sweep-family benches: checkpoint/fork prefix sharing ---
//
// Each pair runs the same sweep grid with and without the fork executor
// (scenario.RunSweep vs one full scenario.Run per point). Outputs are
// bit-identical (FuzzForkedRunEquivalence); the pair measures only the
// wall-clock effect of never re-simulating a shared prefix.

// benchSweep measures one sweep family. With forked=false every point
// simulates in full, the pre-fork behaviour.
func benchSweep(b *testing.B, forked bool, base scenario.Scenario, points []scenario.SweepPoint) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		seed := int64(i % 4)
		if forked {
			scenario.RunSweep(base, points, scenario.EMPTCP, scenario.Opts{Seed: seed})
			continue
		}
		for j := range points {
			scenario.Run(points[j].Scenario, scenario.EMPTCP, scenario.Opts{Seed: seed})
		}
	}
}

// sweepKappaGrid is the κ family in the regime the paper's delayed-
// establishment argument targets: thresholds comparable to the transfer
// size, so establishment lands late in the run (long shared prefix) and
// the largest thresholds are never reached at all (full reuse).
func sweepKappaGrid() (scenario.Scenario, []scenario.SweepPoint) {
	sc := scenario.StaticLab(energy.GalaxyS3(), 4, 4.5, workload.FileDownload{Size: 4 * units.MB})
	return scenario.KappaSweep(sc, []units.ByteSize{
		1 * units.MB, 2 * units.MB, 3 * units.MB, 4 * units.MB,
		6 * units.MB, 8 * units.MB, 12 * units.MB, 16 * units.MB,
	})
}

func BenchmarkSweepKappaForked(b *testing.B) {
	base, points := sweepKappaGrid()
	benchSweep(b, true, base, points)
}

func BenchmarkSweepKappaUnforked(b *testing.B) {
	base, points := sweepKappaGrid()
	benchSweep(b, false, base, points)
}

// sweepTauGrid is the τ family on a bad-WiFi download sized so the
// escape timers fire in the back half of the run. τ is the fork
// executor's hardest family — every variant diverges at its own timer
// and re-simulates the event-dense post-establishment tail — so this
// pair mostly documents that forking never loses, while the κ and
// safety pairs show the prefix-sharing win.
func sweepTauGrid() (scenario.Scenario, []scenario.SweepPoint) {
	sc := scenario.StaticLab(energy.GalaxyS3(), 0.5, 4.5, workload.FileDownload{Size: 2 * units.MB})
	return scenario.TauSweep(sc, []float64{5, 6, 7, 8, 9, 10, 11, 12})
}

func BenchmarkSweepTauForked(b *testing.B) {
	base, points := sweepTauGrid()
	benchSweep(b, true, base, points)
}

func BenchmarkSweepTauUnforked(b *testing.B) {
	base, points := sweepTauGrid()
	benchSweep(b, false, base, points)
}

// sweepSafetyGrid is the hysteresis safety-factor family: on steady
// links most factors make the same path-usage decisions, so most points
// collapse into the shared prefix entirely.
func sweepSafetyGrid() (scenario.Scenario, []scenario.SweepPoint) {
	sc := scenario.StaticLab(energy.GalaxyS3(), 4, 4.5, workload.FileDownload{Size: 4 * units.MB})
	return scenario.SafetySweep(sc, []float64{0, 0.05, 0.10, 0.15, 0.20, 0.30, 0.45, 0.60})
}

func BenchmarkSweepSafetyForked(b *testing.B) {
	base, points := sweepSafetyGrid()
	benchSweep(b, true, base, points)
}

func BenchmarkSweepSafetyUnforked(b *testing.B) {
	base, points := sweepSafetyGrid()
	benchSweep(b, false, base, points)
}

func BenchmarkExtHOL(b *testing.B) {
	benchExperiment(b, "ext-hol", "completion_s_unlimited")
}

func BenchmarkExtBattery(b *testing.B) {
	benchExperiment(b, "ext-battery", "battery_pct_MPTCP", "battery_pct_eMPTCP")
}
