// Quickstart: download one 16 MB file over a good-WiFi / good-LTE
// environment with the three protocols the paper compares, and print
// energy and download time — the minimal end-to-end use of the library.
package main

import (
	"fmt"

	emptcp "repro"
)

func main() {
	device := emptcp.GalaxyS3()
	fmt.Printf("device: %s\n\n", device.Name)

	sc := emptcp.StaticLab(device, 12, 9, emptcp.FileDownload{Size: 16 * emptcp.MB})
	fmt.Printf("scenario: %s — 16 MB download\n\n", sc.Name)

	fmt.Printf("%-16s %12s %14s %10s\n", "protocol", "energy", "download time", "LTE used")
	for _, p := range []emptcp.Protocol{emptcp.MPTCP, emptcp.EMPTCP, emptcp.TCPWiFi} {
		res := emptcp.Run(sc, p, emptcp.Opts{Seed: 1})
		fmt.Printf("%-16s %12s %12.1f s %10v\n", p, res.Energy, res.CompletionTime, res.LTEUsed)
	}

	fmt.Println("\neMPTCP detects that WiFi alone is the most energy-efficient path")
	fmt.Println("and never pays the LTE promotion and tail overheads.")
}
