// Mobility walks the paper's Figure 11 route (a loop through the UMass CS
// building) for 250 seconds while bulk-downloading, and prints a live view
// of what eMPTCP does: the WiFi throughput as the walker moves, the
// controller's path-set decisions, and the final per-byte energy
// comparison of Figure 13.
package main

import (
	"fmt"
	"strings"

	emptcp "repro"
)

func main() {
	device := emptcp.GalaxyS3()
	sc := emptcp.Mobility(device)
	fmt.Printf("scenario: %s\n\n", sc.Name)

	res := emptcp.Run(sc, emptcp.EMPTCP, emptcp.Opts{Seed: 3, Trace: true})

	fmt.Println("WiFi throughput along the route (Mbps, one row per 10 s):")
	wifi := res.ThroughputTrace[emptcp.WiFi]
	for t := 10.0; t <= 250; t += 10 {
		v := wifi.At(t)
		bar := strings.Repeat("█", int(v))
		fmt.Printf("  t=%3.0fs %5.1f %s\n", t, v, bar)
	}

	fmt.Println("\neMPTCP path-set decisions:")
	for _, d := range res.Decisions {
		fmt.Printf("  t=%6.1fs → %v\n", d.At, d.Set)
	}

	fmt.Println("\nFigure 13 comparison over the same 250 s walk:")
	fmt.Printf("%-16s %12s %16s %12s\n", "protocol", "energy (J)", "downloaded (MB)", "µJ per byte")
	for _, p := range []emptcp.Protocol{emptcp.MPTCP, emptcp.EMPTCP, emptcp.TCPWiFi} {
		r := emptcp.Run(sc, p, emptcp.Opts{Seed: 3})
		fmt.Printf("%-16s %12.1f %16.1f %12.2f\n",
			p, r.Energy.Joules(), r.Downloaded.Megabytes(), r.JPerByte*1e6)
	}

	fmt.Println("\neMPTCP rides WiFi while the walker is near the AP, brings LTE up")
	fmt.Println("for the out-of-range excursions, and suspends it again on return —")
	fmt.Println("without ever losing the WiFi association that would be WiFi-First's")
	fmt.Println("only trigger.")
}
