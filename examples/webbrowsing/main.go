// Webbrowsing reproduces the §5.4 case study interactively: the CNN home
// page (107 objects) loaded over six parallel connections with each
// protocol, ten iterations, reporting energy and page-load latency — the
// workload where eMPTCP's delayed subflow establishment shines because no
// object ever justifies waking the LTE radio.
package main

import (
	"fmt"

	emptcp "repro"
)

func main() {
	device := emptcp.GalaxyS3()
	sc := emptcp.WebBrowsing(device)
	fmt.Printf("scenario: %s\n", sc.Name)
	fmt.Printf("page model: 107 objects over 6 persistent connections, all <256 KB\n\n")

	const runs = 10
	fmt.Printf("%-16s %14s %14s %10s\n", "protocol", "energy (J)", "latency (s)", "LTE used")
	for _, p := range []emptcp.Protocol{emptcp.MPTCP, emptcp.EMPTCP, emptcp.TCPWiFi} {
		var energy, latency float64
		lteRuns := 0
		for seed := int64(0); seed < runs; seed++ {
			res := emptcp.Run(sc, p, emptcp.Opts{Seed: seed})
			energy += res.Energy.Joules()
			latency += res.CompletionTime
			if res.LTEUsed {
				lteRuns++
			}
		}
		fmt.Printf("%-16s %14.2f %14.2f %6d/%d\n", p, energy/runs, latency/runs, lteRuns, runs)
	}

	fmt.Println("\nMPTCP opens an LTE subflow on every one of its six connections and")
	fmt.Println("pays the promotion and an 11.5 s tail for objects that WiFi delivers")
	fmt.Println("in milliseconds; eMPTCP holds every cellular subflow back.")
}
