// Streaming explores the paper's stated future work (§7): paced video
// playout, where the player fetches a chunk every couple of seconds and
// idles in between. Those idle gaps are poison for an always-on cellular
// subflow — each one drips tail energy — and exactly the case eMPTCP's
// idle-postponement rule (§3.5) was designed for.
package main

import (
	"fmt"

	emptcp "repro"
	"repro/internal/core"
)

func main() {
	device := emptcp.GalaxyS3()
	stream := emptcp.DefaultStreaming()
	fmt.Printf("stream: %d chunks × %v every %.0f s (%.0f s of video at ~4 Mbps)\n\n",
		stream.Chunks, stream.ChunkSize, stream.ChunkInterval, stream.Duration())

	for _, wifi := range []float64{12, 3} {
		sc := emptcp.StaticLab(device, wifi, 4.5, stream)
		fmt.Printf("--- WiFi %.0f Mbps, LTE 4.5 Mbps ---\n", wifi)
		fmt.Printf("%-16s %12s %14s %12s\n", "protocol", "energy (J)", "completion (s)", "LTE used")
		for _, p := range []emptcp.Protocol{emptcp.MPTCP, emptcp.EMPTCP, emptcp.TCPWiFi} {
			res := emptcp.Run(sc, p, emptcp.Opts{Seed: 5})
			fmt.Printf("%-16s %12.1f %14.1f %12v\n",
				p, res.Energy.Joules(), res.CompletionTime, res.LTEUsed)
		}
		fmt.Println()
	}

	fmt.Println("At 12 Mbps the stream is WiFi-trivial: MPTCP still drags the LTE radio")
	fmt.Println("through promotion and endless tail time; eMPTCP never wakes it.")
	fmt.Println()
	// The library's MinRate extension fixes the 3 Mbps case: a rate floor
	// at the video bitrate overrides per-byte efficiency when playout
	// would starve.
	floored := emptcp.StaticLab(device, 3, 4.5, stream)
	cfg := core.DefaultConfig()
	cfg.MinRate = emptcp.Mbit(4.2)
	floored.CoreConfig = &cfg
	res := emptcp.Run(floored, emptcp.EMPTCP, emptcp.Opts{Seed: 5})
	fmt.Printf("--- WiFi 3 Mbps with eMPTCP MinRate=4.2 Mbps (extension) ---\n")
	fmt.Printf("%-16s %12.1f %14.1f %12v\n\n", "eMPTCP+floor", res.Energy.Joules(), res.CompletionTime, res.LTEUsed)

	fmt.Println("At 3 Mbps — below the 4 Mbps video bitrate — the story shows why the")
	fmt.Println("paper defers streaming to future work: eMPTCP's objective is energy")
	fmt.Println("per byte, not playout deadlines, so after its τ timer opens LTE it")
	fmt.Println("promptly suspends it again (WiFi at 3 Mbps is per-byte cheaper) and")
	fmt.Println("the stream rebuffers almost as badly as TCP over WiFi. Only MPTCP,")
	fmt.Println("which ignores energy, keeps playout real-time. The MinRate floor")
	fmt.Println("above is this library's answer: timeliness overrides efficiency")
	fmt.Println("whenever the selected paths cannot hold the video bitrate.")
}
