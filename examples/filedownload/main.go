// Filedownload sweeps download sizes and WiFi bandwidths across protocols,
// reproducing the lab methodology of §4 and §5.3: it shows where each
// strategy wins, including the small-file regime where delayed subflow
// establishment saves the whole cellular fixed cost and the bad-WiFi
// regime where multipath pays off.
package main

import (
	"fmt"

	emptcp "repro"
)

func main() {
	device := emptcp.GalaxyS3()
	protos := []emptcp.Protocol{emptcp.MPTCP, emptcp.EMPTCP, emptcp.TCPWiFi}

	fmt.Println("=== size sweep at good WiFi (12 Mbps) and LTE 9 Mbps ===")
	fmt.Printf("%-10s %-16s %10s %12s %8s\n", "size", "protocol", "energy J", "time s", "J/MB")
	for _, sizeMB := range []float64{0.25, 1, 4, 16, 64} {
		size := emptcp.ByteSize(sizeMB) * emptcp.MB
		for _, p := range protos {
			sc := emptcp.StaticLab(device, 12, 9, emptcp.FileDownload{Size: size})
			res := emptcp.Run(sc, p, emptcp.Opts{Seed: 7})
			fmt.Printf("%-10v %-16s %10.1f %12.2f %8.2f\n",
				size, p, res.Energy.Joules(), res.CompletionTime,
				res.Energy.Joules()/res.Downloaded.Megabytes())
		}
		fmt.Println()
	}

	fmt.Println("=== WiFi bandwidth sweep, 16 MB download, LTE 9 Mbps ===")
	fmt.Printf("%-12s %-16s %10s %12s %9s\n", "wifi Mbps", "protocol", "energy J", "time s", "LTE used")
	for _, wifi := range []float64{0.5, 2, 6, 12, 18} {
		for _, p := range protos {
			sc := emptcp.StaticLab(device, wifi, 9, emptcp.FileDownload{Size: 16 * emptcp.MB})
			res := emptcp.Run(sc, p, emptcp.Opts{Seed: 7})
			fmt.Printf("%-12.1f %-16s %10.1f %12.1f %9v\n",
				wifi, p, res.Energy.Joules(), res.CompletionTime, res.LTEUsed)
		}
		fmt.Println()
	}
	fmt.Println("watch eMPTCP's LTE column flip off as WiFi crosses the EIB threshold")
}
