// Package core implements eMPTCP, the paper's contribution (§3): an
// energy-aware MPTCP that monitors path characteristics at run time and
// dynamically chooses paths by per-byte energy efficiency.
//
// Four components extend the regular MPTCP machinery (Figure 2):
//
//   - the bandwidth predictor (§3.2) samples per-interface subflow
//     throughput at an interval derived from the establishment RTT and
//     forecasts it with Holt-Winters;
//   - the energy information base (§3.3, package eib) holds the
//     offline-computed transition thresholds indexed by LTE throughput;
//   - the path usage controller (§3.4) queries both and switches the
//     interface set with a 10 % hysteresis safety factor, suspending and
//     resuming the LTE subflow via MP_PRIO;
//   - delayed subflow establishment (§3.5) keeps the cellular subflow
//     down for small transfers (κ bytes), with a τ-second escape timer for
//     slow WiFi (equation 1) and an idle-connection postponement rule.
//
// It requires no user intervention and no changes to applications: the
// controller attaches to an mptcp.Connection and drives everything from
// its periodic tick.
package core

import (
	"math"

	"repro/internal/eib"
	"repro/internal/energy"
	"repro/internal/forecast"
	"repro/internal/mptcp"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/trace"
	"repro/internal/units"
)

// Config carries eMPTCP's tunables, defaulting to the values of §4.1.
type Config struct {
	// Kappa is the WiFi byte count below which the cellular subflow is
	// not established (1 MB in the paper: MPTCP is rarely more energy
	// efficient than single-path TCP below that, Figure 4).
	Kappa units.ByteSize
	// Tau is the establishment escape timer in seconds (3 s in §4.1).
	Tau float64
	// InitialAssumedRate seeds the predictor for interfaces that have
	// never been activated, so the path gets probed (§3.2, "e.g. 5
	// Mbps").
	InitialAssumedRate units.BitRate
	// MinSampleInterval floors the predictor sampling interval δ; δ is
	// otherwise the subflow establishment RTT (§3.2).
	MinSampleInterval float64
	// PredictorAlpha/PredictorBeta are the Holt-Winters smoothing
	// parameters.
	PredictorAlpha float64
	PredictorBeta  float64
	// MinRate, when positive, makes the controller rate-aware (an
	// extension toward the paper's §7 streaming future work): whenever
	// the selected path set's predicted aggregate throughput falls below
	// MinRate while data is outstanding, the controller adds paths
	// regardless of per-byte efficiency — energy optimization must not
	// starve a real-time workload. Zero (the default, and the paper's
	// behaviour) disables it.
	MinRate units.BitRate
}

// DefaultConfig returns the paper's parameter choices.
func DefaultConfig() Config {
	return Config{
		Kappa:              1 * units.MB,
		Tau:                3.0,
		InitialAssumedRate: units.MbpsRate(5),
		MinSampleInterval:  0.2,
		PredictorAlpha:     0.5,
		PredictorBeta:      0.2,
	}
}

// RequiredTau evaluates equation 1: the smallest τ that lets the predictor
// collect phi samples after the WiFi subflow's slow start stabilizes,
// given available WiFi throughput bw, initial window winit and RTT rtt.
func RequiredTau(bw units.BitRate, rtt float64, winit units.ByteSize, phi int) float64 {
	if bw <= 0 || rtt <= 0 || winit <= 0 {
		return 0
	}
	perRTT := units.ByteSize(bw.BytesPerSecond() * rtt)
	return rtt * (math.Log2(float64(perRTT+winit)/float64(winit)) + float64(phi))
}

// RadioControl lets the controller power radios up before using them; the
// scenario layer implements it over the energy.Accountant.
type RadioControl interface {
	// Activate requests the radio for iface and returns the delay before
	// data can flow (the cellular promotion).
	Activate(iface energy.Interface) (delay float64)
}

// nopRadio is used when no radio control is supplied (pure transport
// tests).
type nopRadio struct{}

func (nopRadio) Activate(energy.Interface) float64 { return 0 }

// predictor wraps one interface's sampling state.
type predictor struct {
	hw        *forecast.HoltWinters
	lastBytes units.ByteSize
	seeded    bool
}

// Controller is the eMPTCP engine attached to one MPTCP connection.
type Controller struct {
	cfg   Config
	eng   *sim.Engine
	conn  *mptcp.Connection
	table *eib.Table
	radio RadioControl

	// EstablishLTE is called exactly once, when the controller decides to
	// bring the cellular subflow up; the scenario layer supplies it and
	// returns the new subflow. The extraDelay argument carries the radio
	// promotion delay to pass to AddSubflow.
	establishLTE func(extraDelay float64) *tcp.Subflow

	wifiSF *tcp.Subflow
	lteSF  *tcp.Subflow

	preds      [energy.NumInterfaces]*predictor
	current    energy.PathSet
	tauFired   bool
	tauEv      sim.Event // pending τ escape timer, for ForceTauFired
	started    float64
	ticker     *sim.Ticker
	hadBacklog bool // connection had outstanding data at the last tick

	// Probe, when non-nil, receives one TickRecord per controller tick.
	// Probing is observation-only: every value in the record is computed
	// from pure reads (predictor forecasts, EIB lookups, idle windows), so
	// a probed run executes bit-identically to an unprobed one. The
	// sweep-fork executor uses the records to locate the first tick where
	// a swept parameter would change the controller's decision.
	Probe func(TickRecord)

	// Switches counts path-set changes (for the hysteresis ablation).
	Switches int
	// Decisions records the controller's path-set decision history as
	// (time, set) pairs when Record is true.
	Record    bool
	Decisions []Decision
}

// Decision is one recorded path-usage decision.
type Decision struct {
	At  float64
	Set energy.PathSet
}

// New attaches an eMPTCP controller to conn. wifiSF is the default-primary
// WiFi subflow (§3.6: WiFi is the default interface since it is more
// energy efficient and has negligible fixed costs). establishLTE is
// invoked when delayed establishment decides to open the cellular subflow;
// radio may be nil when no radio model is in play.
func New(eng *sim.Engine, cfg Config, table *eib.Table, conn *mptcp.Connection,
	wifiSF *tcp.Subflow, radio RadioControl,
	establishLTE func(extraDelay float64) *tcp.Subflow) *Controller {

	if cfg.Kappa < 0 || cfg.Tau < 0 || cfg.MinSampleInterval <= 0 {
		panic("core: invalid config")
	}
	if radio == nil {
		radio = nopRadio{}
	}
	c := &Controller{
		cfg:          cfg,
		eng:          eng,
		conn:         conn,
		table:        table,
		radio:        radio,
		establishLTE: establishLTE,
		wifiSF:       wifiSF,
		current:      energy.WiFiOnly,
		started:      eng.Now(),
	}
	for i := range c.preds {
		c.preds[i] = &predictor{hw: forecast.NewHoltWinters(cfg.PredictorAlpha, cfg.PredictorBeta)}
	}
	// Never-activated interfaces are assumed to have non-zero throughput.
	c.preds[energy.LTE].hw.Seed(float64(cfg.InitialAssumedRate.Mbit()))

	// The sampling interval δ follows the establishment RTT (§3.2).
	delta := cfg.MinSampleInterval
	if wifiSF != nil && wifiSF.HandshakeRTT > delta {
		delta = wifiSF.HandshakeRTT
	}
	c.ticker = eng.Tick(delta, c.tick)
	if cfg.Tau > 0 {
		c.tauEv = eng.After(cfg.Tau, func() { c.tauFired = true })
	} else {
		c.tauFired = true
	}
	return c
}

// Stop halts the controller's ticker.
func (c *Controller) Stop() { c.ticker.Stop() }

// Current returns the path set the controller last selected.
func (c *Controller) Current() energy.PathSet { return c.current }

// LTEEstablished reports whether the cellular subflow has been opened.
func (c *Controller) LTEEstablished() bool { return c.lteSF != nil }

// PredictedWiFi returns the forecast WiFi throughput.
func (c *Controller) PredictedWiFi() units.BitRate {
	return c.predicted(energy.WiFi)
}

// PredictedLTE returns the forecast LTE throughput.
func (c *Controller) PredictedLTE() units.BitRate {
	return c.predicted(energy.LTE)
}

func (c *Controller) predicted(iface energy.Interface) units.BitRate {
	v := c.preds[iface].hw.Predict(1)
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	return units.MbpsRate(v)
}

// tick is the controller's heartbeat: sample throughputs, feed the
// predictors, then run delayed establishment or path usage control.
func (c *Controller) tick() {
	c.sample()
	c.hadBacklog = c.conn.Outstanding() > 0
	if c.lteSF == nil {
		c.maybeEstablishLTE()
		return
	}
	c.controlPathUsage()
}

// sample measures each interface's throughput since the last tick and
// feeds the predictor. Suspended or absent interfaces contribute no
// sample: the predictor keeps its old observations, exactly the
// deactivated-interface rule of §3.2.
func (c *Controller) sample() {
	c.observe(energy.WiFi, c.wifiSF)
	c.observe(energy.LTE, c.lteSF)
}

func (c *Controller) observe(iface energy.Interface, sf *tcp.Subflow) {
	if sf == nil || sf.State() != tcp.Established || sf.Suspended() {
		return
	}
	p := c.preds[iface]
	delta := sf.BytesDelivered - p.lastBytes
	p.lastBytes = sf.BytesDelivered
	if !p.seeded {
		// Skip the first partial interval after (re)activation.
		p.seeded = true
		return
	}
	// Application-limited windows (no backlog through the whole window:
	// HTTP gaps, paced streaming, a request arriving mid-window) say
	// nothing about the path and must not drag the estimate down. A low
	// sample with data outstanding end-to-end is real: the path has
	// degraded.
	if !c.hadBacklog || c.conn.Outstanding() <= 0 {
		return
	}
	mbps := delta.Bits() / c.ticker.Interval() / 1e6
	p.hw.Observe(mbps)
}

// maybeEstablishLTE implements delayed subflow establishment (§3.5).
func (c *Controller) maybeEstablishLTE() {
	wifiBytes := units.ByteSize(0)
	if c.wifiSF != nil {
		wifiBytes = c.wifiSF.BytesDelivered
	}
	// Neither κ bytes nor the τ timer yet: keep waiting. A probe still
	// wants the full record, and everything below the gate is a pure read.
	gate := wifiBytes >= c.cfg.Kappa || c.tauFired
	if !gate && c.Probe == nil {
		return
	}
	// Idle connections never trigger cellular establishment, even after
	// τ (HTTP holds connections open in idle states).
	idleWindow := c.cfg.MinSampleInterval
	if c.wifiSF != nil && c.wifiSF.SRTT() > idleWindow {
		idleWindow = c.wifiSF.SRTT()
	}
	idle := c.conn.IdleFor(idleWindow)
	// Even past κ, postpone while measured WiFi throughput is large
	// enough that WiFi-only beats using both — unless a rate floor is
	// configured and WiFi alone cannot hold it.
	wifi := c.PredictedWiFi()
	lte := c.PredictedLTE()
	holdsFloor := c.cfg.MinRate <= 0 || wifi >= c.cfg.MinRate
	wifiOnly := c.table.Best(wifi, lte) == energy.WiFiOnly
	establish := gate && !idle && !(wifiOnly && holdsFloor)
	if c.Probe != nil {
		c.Probe(TickRecord{
			At:          c.eng.Now(),
			WiFiBytes:   wifiBytes,
			TauFired:    c.tauFired,
			Idle:        idle,
			Wifi:        wifi,
			LTE:         lte,
			EIBWiFiOnly: wifiOnly,
			HoldsFloor:  holdsFloor,
			Established: establish,
			Current:     c.current,
			Backlog:     c.conn.Outstanding(),
		})
	}
	if !establish {
		return
	}
	delay := c.radio.Activate(energy.LTE)
	c.lteSF = c.establishLTE(delay)
	c.setPathSet(energy.Both)
	// The first throughput sample after establishment covers a partial
	// interval; resync the byte counter.
	c.preds[energy.LTE].lastBytes = 0
	c.preds[energy.LTE].seeded = false
}

// controlPathUsage implements the §3.4 controller: query the EIB with the
// predicted throughputs and apply the decision through MP_PRIO.
func (c *Controller) controlPathUsage() {
	wifi := c.PredictedWiFi()
	lte := c.PredictedLTE()
	next := c.table.Decide(c.current, wifi, lte)
	next = c.enforceMinRate(next, wifi, lte)
	if c.Probe != nil {
		c.Probe(TickRecord{
			At:          c.eng.Now(),
			TauFired:    c.tauFired,
			Wifi:        wifi,
			LTE:         lte,
			Established: true,
			Control:     true,
			Current:     c.current,
			Next:        next,
			Backlog:     c.conn.Outstanding(),
		})
	}
	if next == c.current {
		return
	}
	c.apply(next)
}

// enforceMinRate overrides an energy-optimal decision that would starve a
// rate-constrained workload (Config.MinRate).
func (c *Controller) enforceMinRate(next energy.PathSet, wifi, lte units.BitRate) energy.PathSet {
	if c.cfg.MinRate <= 0 || c.conn.Outstanding() <= 0 {
		return next
	}
	agg := units.BitRate(0)
	if next.UseWiFi {
		agg += wifi
	}
	if next.UseLTE {
		agg += lte
	}
	if agg >= c.cfg.MinRate {
		return next
	}
	// Falling behind: open everything we have.
	return energy.Both
}

// apply moves the connection to the given path set.
func (c *Controller) apply(next energy.PathSet) {
	lteWasSuspended := c.lteSF.Suspended()
	switch next {
	case energy.WiFiOnly:
		c.conn.SetBackup(c.lteSF, true)
		c.resumeWiFi()
	case energy.LTEOnly:
		c.resumeLTE(lteWasSuspended)
		c.wifiSF.Suspend()
	default: // Both
		c.resumeWiFi()
		c.resumeLTE(lteWasSuspended)
	}
	c.setPathSet(next)
}

func (c *Controller) resumeWiFi() {
	if c.wifiSF.Suspended() {
		c.radio.Activate(energy.WiFi)
		c.conn.SetBackup(c.wifiSF, false)
	}
}

// resumeLTE lifts MP_PRIO from the LTE subflow, waiting out the radio
// promotion when the radio had demoted to idle. The subflow skips the
// RFC 2861 window reset and is re-probed immediately (its configuration
// carries DisableIdleCwndReset; §3.6's fast-reuse).
func (c *Controller) resumeLTE(wasSuspended bool) {
	if !wasSuspended {
		return
	}
	delay := c.radio.Activate(energy.LTE)
	sf := c.lteSF
	if delay <= 0 {
		c.conn.SetBackup(sf, false)
		return
	}
	c.eng.After(delay, func() { c.conn.SetBackup(sf, false) })
	// Resync sampling over the gap.
	c.preds[energy.LTE].seeded = false
	c.preds[energy.LTE].lastBytes = sf.BytesDelivered
}

func (c *Controller) setPathSet(ps energy.PathSet) {
	if ps == c.current {
		return
	}
	if rec := c.eng.Recorder(); rec != nil {
		rec.Record(trace.Event{
			T: c.eng.Now(), Kind: trace.KindPathSet,
			From: c.current.String(), To: ps.String(),
		})
	}
	c.current = ps
	c.Switches++
	if c.Record {
		c.Decisions = append(c.Decisions, Decision{At: c.eng.Now(), Set: ps})
	}
}
