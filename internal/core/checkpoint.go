package core

import (
	"repro/internal/eib"
	"repro/internal/energy"
	"repro/internal/units"
)

// TickRecord is the controller's view of one tick, emitted through
// Controller.Probe. Pre-establishment ticks carry the delayed-establishment
// inputs; post-establishment ticks (Control true) carry the path-usage
// decision. The sweep-fork executor replays these records offline against
// a variant parameterisation to find the first tick whose outcome would
// differ — the divergence point.
type TickRecord struct {
	At          float64
	WiFiBytes   units.ByteSize
	TauFired    bool
	Idle        bool
	Wifi        units.BitRate
	LTE         units.BitRate
	EIBWiFiOnly bool
	HoldsFloor  bool
	// Established reports this tick's establishment decision on
	// pre-establishment ticks, and stays true on Control ticks.
	Established bool
	// Control marks a post-establishment path-usage tick.
	Control bool
	Current energy.PathSet
	// Next is the path set the §3.4 controller selected (Control ticks).
	Next    energy.PathSet
	Backlog units.ByteSize
}

// SetKappa overrides the delayed-establishment byte threshold in place.
// The fork executor applies it to a restored controller at the divergence
// barrier; κ is only read on pre-establishment ticks, so the shared prefix
// is unaffected by construction.
func (c *Controller) SetKappa(k units.ByteSize) { c.cfg.Kappa = k }

// ForceTauFired marks the τ escape timer as elapsed and cancels the
// pending timer event. A fork whose τ is shorter than the base run's
// diverges at a tick where the base timer has not yet fired — the variant
// behaves as if its own (already elapsed) timer had, and the base timer
// must never fire inside the fork.
func (c *Controller) ForceTauFired() {
	c.tauFired = true
	c.tauEv.Cancel()
}

// SetTable swaps the energy information base. Table.Best (the only
// pre-establishment query) is independent of the hysteresis safety factor,
// so forks sweeping SafetyFactor share the prefix up to the first
// post-establishment decision that differs.
func (c *Controller) SetTable(t *eib.Table) { c.table = t }

// Table returns the controller's energy information base.
func (c *Controller) Table() *eib.Table { return c.table }

// predState is one predictor's saved sampling state.
type predState struct {
	level     float64
	trend     float64
	n         int
	lastBytes units.ByteSize
	seeded    bool
}

// CtlSnapshot is a reusable copy of a Controller's mutable state,
// including the swept tunables (config, EIB table) so restoring undoes a
// previous fork's mutation.
type CtlSnapshot struct {
	cfg        Config
	table      *eib.Table
	current    energy.PathSet
	tauFired   bool
	hadBacklog bool
	lteSF      bool // whether the cellular subflow existed
	switches   int
	nDecisions int
	preds      [energy.NumInterfaces]predState
}

// Snapshot saves the controller's state into s.
func (c *Controller) Snapshot(s *CtlSnapshot) {
	s.cfg = c.cfg
	s.table = c.table
	s.current = c.current
	s.tauFired = c.tauFired
	s.hadBacklog = c.hadBacklog
	s.lteSF = c.lteSF != nil
	s.switches = c.Switches
	s.nDecisions = len(c.Decisions)
	for i, p := range c.preds {
		st := &s.preds[i]
		st.level, st.trend, st.n = p.hw.State()
		st.lastBytes = p.lastBytes
		st.seeded = p.seeded
	}
}

// Restore reinstates a snapshot taken from this controller. The fork
// executor only checkpoints before the cellular subflow exists (divergence
// barriers precede establishment or the subflow survives across them), so
// restoring to a pre-establishment snapshot clears lteSF and the next
// establishment re-derives it; a post-establishment snapshot keeps the
// pointer, which the tcp arena restore rewinds in place.
func (c *Controller) Restore(s *CtlSnapshot) {
	c.cfg = s.cfg
	c.table = s.table
	c.current = s.current
	c.tauFired = s.tauFired
	c.hadBacklog = s.hadBacklog
	if !s.lteSF {
		c.lteSF = nil
	}
	c.Switches = s.switches
	c.Decisions = c.Decisions[:s.nDecisions]
	for i, p := range c.preds {
		st := &s.preds[i]
		p.hw.SetState(st.level, st.trend, st.n)
		p.lastBytes = st.lastBytes
		p.seeded = st.seeded
	}
}
