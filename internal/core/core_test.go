package core

import (
	"math"
	"testing"

	"repro/internal/eib"
	"repro/internal/energy"
	"repro/internal/link"
	"repro/internal/mptcp"
	"repro/internal/sim"
	"repro/internal/simrng"
	"repro/internal/tcp"
	"repro/internal/units"
)

// rig assembles a WiFi-primary connection with a controller and an
// establishable LTE path, mirroring what the scenario layer does.
type rig struct {
	eng      *sim.Engine
	conn     *mptcp.Connection
	ctl      *Controller
	wifiProc *link.Trace
	wifiSF   *tcp.Subflow
	ltePath  *tcp.Path
	radio    *fakeRadio
}

type fakeRadio struct {
	activations map[energy.Interface]int
	delay       float64
}

func (r *fakeRadio) Activate(i energy.Interface) float64 {
	if r.activations == nil {
		r.activations = map[energy.Interface]int{}
	}
	r.activations[i]++
	if i.IsCellular() {
		return r.delay
	}
	return 0
}

// newRig builds the rig. wifiPoints drives WiFi bandwidth; LTE is constant.
func newRig(t *testing.T, cfg Config, wifiPoints []link.Breakpoint, lteMbps float64) *rig {
	t.Helper()
	eng := sim.New()
	src := simrng.New(77)
	r := &rig{eng: eng, radio: &fakeRadio{delay: 0.26}}
	r.wifiProc = link.NewTrace(eng, wifiPoints)
	wifiPath := &tcp.Path{Name: "wifi", Capacity: r.wifiProc, BaseRTT: 0.03}
	r.ltePath = &tcp.Path{Name: "lte", Capacity: link.NewConstant(units.MbpsRate(lteMbps)), BaseRTT: 0.07}

	r.conn = mptcp.New(eng, src, mptcp.DefaultOptions())
	r.wifiSF = r.conn.AddSubflow("wifi", energy.WiFi, wifiPath, nil, 0)
	r.radio.Activate(energy.WiFi)

	// The controller attaches once WiFi is established; run the handshake.
	eng.RunUntil(0.1)
	lteCfg := tcp.DefaultConfig()
	lteCfg.DisableIdleCwndReset = true // §3.6 fast-reuse
	table := eib.Generate(energy.GalaxyS3(), eib.DefaultConfig())
	r.ctl = New(eng, cfg, table, r.conn, r.wifiSF, r.radio, func(extraDelay float64) *tcp.Subflow {
		return r.conn.AddSubflow("lte", energy.LTE, r.ltePath, &lteCfg, extraDelay)
	})
	r.ctl.Record = true
	return r
}

func constWiFi(mbps float64) []link.Breakpoint {
	return []link.Breakpoint{{At: 0, Rate: units.MbpsRate(mbps)}}
}

func TestRequiredTauEquation1(t *testing.T) {
	// With RW = 0.2 s, BW = 10 Mbps, Winit = 10 segments ≈ 14.6 KB,
	// φ = 10, equation 1 gives ≈ 2.8 s — the paper derives ≥ 2.67 s for
	// its setting and picks τ = 3 s.
	tau := RequiredTau(units.MbpsRate(10), 0.2, 14600, 10)
	if tau < 2.0 || tau > 3.5 {
		t.Errorf("RequiredTau = %v, want ≈ 2.7", tau)
	}
	if RequiredTau(0, 0.2, 14600, 10) != 0 {
		t.Error("zero bandwidth should yield 0")
	}
	// τ grows with φ and with RTT.
	if RequiredTau(units.MbpsRate(10), 0.2, 14600, 20) <= tau {
		t.Error("more samples should need a larger τ")
	}
	if RequiredTau(units.MbpsRate(10), 0.4, 14600, 10) <= tau {
		t.Error("larger RTT should need a larger τ")
	}
}

// Small transfer over good WiFi: the download finishes below κ, so the LTE
// subflow must never be established (§5.2's headline behaviour).
func TestSmallTransferNeverOpensLTE(t *testing.T) {
	r := newRig(t, DefaultConfig(), constWiFi(15), 9)
	done := -1.0
	r.conn.Download(256*units.KB, func(at float64) { done = at })
	r.eng.Horizon = 30
	r.eng.Run()
	if done < 0 {
		t.Fatal("download did not complete")
	}
	if r.ctl.LTEEstablished() {
		t.Error("256 KB over good WiFi should never open LTE")
	}
	if r.radio.activations[energy.LTE] != 0 {
		t.Error("LTE radio was activated")
	}
}

// Large transfer over good WiFi: even past κ, WiFi-only is more efficient,
// so establishment stays postponed (§3.5, §4.2 static good WiFi).
func TestGoodWiFiPostponesLTEIndefinitely(t *testing.T) {
	r := newRig(t, DefaultConfig(), constWiFi(15), 9)
	r.conn.Download(64*units.MB, nil)
	r.eng.Horizon = 60
	r.eng.Run()
	if r.ctl.LTEEstablished() {
		t.Error("fast WiFi should keep LTE closed for the whole download")
	}
	if r.ctl.Current() != energy.WiFiOnly {
		t.Errorf("path set = %v, want WiFi-only", r.ctl.Current())
	}
}

// Bad WiFi: τ fires at 3 s (κ unreachable at <1 Mbps), and LTE comes up.
func TestBadWiFiEstablishesLTEAfterTau(t *testing.T) {
	r := newRig(t, DefaultConfig(), constWiFi(0.5), 9)
	r.conn.Download(64*units.MB, nil)
	r.eng.RunUntil(2.9)
	if r.ctl.LTEEstablished() {
		t.Fatal("LTE established before τ with < κ bytes")
	}
	r.eng.RunUntil(10)
	if !r.ctl.LTEEstablished() {
		t.Fatal("LTE not established after τ on bad WiFi")
	}
	if r.ctl.Current() != energy.Both {
		t.Errorf("path set = %v, want Both", r.ctl.Current())
	}
	if r.radio.activations[energy.LTE] == 0 {
		t.Error("LTE radio never activated")
	}
	// The LTE subflow must actually carry data.
	r.eng.RunUntil(30)
	lte := r.conn.SubflowByIface(energy.LTE)
	if lte.BytesDelivered == 0 {
		t.Error("established LTE subflow carried nothing")
	}
}

// Good WiFi but a large transfer crossing κ quickly: still no LTE, because
// the EIB says WiFi-only wins at 15 Mbps.
func TestKappaCrossedButWiFiEfficient(t *testing.T) {
	r := newRig(t, DefaultConfig(), constWiFi(15), 9)
	r.conn.Download(16*units.MB, nil)
	r.eng.RunUntil(5) // κ=1MB crossed within ~1 s at 15 Mbps
	if r.wifiSF.BytesDelivered < 1*units.MB {
		t.Skip("WiFi slower than expected in this configuration")
	}
	if r.ctl.LTEEstablished() {
		t.Error("LTE opened despite efficient WiFi")
	}
}

// Idle connection: τ expires but nothing is transferring, so the cellular
// subflow stays down (§3.5's idle rule; the Figure 17 web case depends on
// this).
func TestIdleConnectionPostponesLTE(t *testing.T) {
	r := newRig(t, DefaultConfig(), constWiFi(0.5), 9)
	// Tiny transfer finishes quickly; the connection then sits idle.
	r.conn.Download(50*units.KB, nil)
	r.eng.Horizon = 30
	r.eng.Run()
	if !r.conn.Done() {
		t.Fatal("download incomplete")
	}
	if r.ctl.LTEEstablished() {
		t.Error("idle connection triggered LTE establishment after τ")
	}
}

// Bandwidth recovery: start bad (LTE comes up), then WiFi becomes fast —
// the controller must suspend the LTE subflow (§4.3's behaviour).
func TestSuspendsLTEWhenWiFiRecovers(t *testing.T) {
	points := []link.Breakpoint{
		{At: 0, Rate: units.MbpsRate(0.5)},
		{At: 20, Rate: units.MbpsRate(15)},
	}
	r := newRig(t, DefaultConfig(), points, 9)
	r.conn.Download(256*units.MB, nil)
	r.eng.RunUntil(15)
	if !r.ctl.LTEEstablished() {
		t.Fatal("LTE should be up during the bad-WiFi phase")
	}
	r.eng.RunUntil(60)
	if r.ctl.Current() != energy.WiFiOnly {
		t.Errorf("path set after recovery = %v, want WiFi-only", r.ctl.Current())
	}
	if !r.conn.SubflowByIface(energy.LTE).Suspended() {
		t.Error("LTE subflow not suspended after WiFi recovery")
	}
}

// Full oscillation cycle: bad → good → bad WiFi; LTE suspends on good and
// resumes on bad, and the resumed subflow moves data again.
func TestResumesLTEWhenWiFiDegrades(t *testing.T) {
	points := []link.Breakpoint{
		{At: 0, Rate: units.MbpsRate(0.5)},
		{At: 20, Rate: units.MbpsRate(15)},
		{At: 60, Rate: units.MbpsRate(0.5)},
	}
	r := newRig(t, DefaultConfig(), points, 9)
	r.conn.Download(512*units.MB, nil)
	r.eng.RunUntil(50)
	lte := r.conn.SubflowByIface(energy.LTE)
	if lte == nil || !lte.Suspended() {
		t.Fatal("precondition: LTE should be suspended during good WiFi")
	}
	delivered := lte.BytesDelivered
	r.eng.RunUntil(120)
	if r.ctl.Current() != energy.Both {
		t.Errorf("path set after degradation = %v, want Both", r.ctl.Current())
	}
	if lte.BytesDelivered <= delivered {
		t.Error("resumed LTE subflow carried no data")
	}
	// Each suspend→resume pair re-activates the radio.
	if r.radio.activations[energy.LTE] < 2 {
		t.Errorf("LTE radio activations = %d, want ≥ 2", r.radio.activations[energy.LTE])
	}
}

// Hysteresis: WiFi bandwidth sitting exactly at a threshold must not make
// the controller flap.
func TestHysteresisLimitsSwitching(t *testing.T) {
	// Start bad so LTE comes up, then hold WiFi near the threshold for
	// LTE≈9: oscillating ±2% around it.
	table := eib.Generate(energy.GalaxyS3(), eib.DefaultConfig())
	_, t2 := table.Thresholds(units.MbpsRate(9))
	points := []link.Breakpoint{{At: 0, Rate: units.MbpsRate(0.4)}}
	for i := 0; i < 200; i++ {
		f := 0.98
		if i%2 == 1 {
			f = 1.02
		}
		points = append(points, link.Breakpoint{At: 10 + float64(i), Rate: units.BitRate(float64(t2) * f)})
	}
	r := newRig(t, DefaultConfig(), points, 9)
	r.conn.Download(units.GB, nil)
	r.eng.Horizon = 210
	r.eng.Run()
	if !r.ctl.LTEEstablished() {
		t.Skip("LTE never established; threshold geometry shifted")
	}
	// Without hysteresis this setup would switch ~200 times.
	if r.ctl.Switches > 40 {
		t.Errorf("switches = %d under threshold-straddling bandwidth; hysteresis should damp this", r.ctl.Switches)
	}
}

func TestPredictedThroughputTracksLink(t *testing.T) {
	r := newRig(t, DefaultConfig(), constWiFi(8), 9)
	r.conn.Download(256*units.MB, nil)
	r.eng.RunUntil(20)
	got := r.ctl.PredictedWiFi().Mbit()
	if got < 4 || got > 10 {
		t.Errorf("predicted WiFi = %v Mbps on an 8 Mbps link", got)
	}
}

func TestInitialLTEAssumption(t *testing.T) {
	r := newRig(t, DefaultConfig(), constWiFi(8), 9)
	if got := r.ctl.PredictedLTE(); math.Abs(float64(got-units.MbpsRate(5))) > 1 {
		t.Errorf("initial LTE prediction = %v, want the 5 Mbps assumption", got)
	}
}

func TestDecisionRecording(t *testing.T) {
	points := []link.Breakpoint{
		{At: 0, Rate: units.MbpsRate(0.5)},
		{At: 20, Rate: units.MbpsRate(15)},
	}
	r := newRig(t, DefaultConfig(), points, 9)
	r.conn.Download(256*units.MB, nil)
	r.eng.Horizon = 60
	r.eng.Run()
	if len(r.ctl.Decisions) == 0 {
		t.Fatal("no decisions recorded")
	}
	last := energy.PathSet{}
	for i, d := range r.ctl.Decisions {
		if i > 0 && d.Set == last {
			t.Error("consecutive identical decisions recorded")
		}
		last = d.Set
	}
}

func TestControllerStop(t *testing.T) {
	r := newRig(t, DefaultConfig(), constWiFi(0.5), 9)
	r.conn.Download(64*units.MB, nil)
	r.ctl.Stop()
	r.eng.RunUntil(20)
	if r.ctl.LTEEstablished() {
		t.Error("stopped controller still acted")
	}
}

func TestBadConfigPanics(t *testing.T) {
	r := newRig(t, DefaultConfig(), constWiFi(5), 9) // build deps
	bad := DefaultConfig()
	bad.MinSampleInterval = 0
	defer func() {
		if recover() == nil {
			t.Error("invalid config did not panic")
		}
	}()
	New(r.eng, bad, r.ctl.table, r.conn, r.wifiSF, nil, nil)
}

// With LTE-only allowed (off by default per §3.4's note), terrible WiFi
// must suspend the WiFi subflow entirely, and recovery must resume it —
// exercising the full WiFi-suspension path of the controller.
func TestLTEOnlyModeSuspendsAndResumesWiFi(t *testing.T) {
	points := []link.Breakpoint{
		{At: 0, Rate: units.MbpsRate(0.05)}, // far below any LTE-only threshold
		{At: 30, Rate: units.MbpsRate(15)},
	}
	eng := sim.New()
	src := simrng.New(88)
	wifiProc := link.NewTrace(eng, points)
	wifiPath := &tcp.Path{Name: "wifi", Capacity: wifiProc, BaseRTT: 0.03}
	ltePath := &tcp.Path{Name: "lte", Capacity: link.NewConstant(units.MbpsRate(9)), BaseRTT: 0.07}
	conn := mptcp.New(eng, src, mptcp.DefaultOptions())
	wifiSF := conn.AddSubflow("wifi", energy.WiFi, wifiPath, nil, 0)
	eng.RunUntil(0.1)
	eibCfg := eib.DefaultConfig()
	eibCfg.AllowLTEOnly = true
	table := eib.Generate(energy.GalaxyS3(), eibCfg)
	radio := &fakeRadio{delay: 0.26}
	ctl := New(eng, DefaultConfig(), table, conn, wifiSF, radio,
		func(extra float64) *tcp.Subflow {
			return conn.AddSubflow("lte", energy.LTE, ltePath, nil, extra)
		})
	conn.Download(256*units.MB, nil)
	eng.RunUntil(25)
	if !ctl.LTEEstablished() {
		t.Fatal("LTE not established on terrible WiFi")
	}
	if ctl.Current() != energy.LTEOnly {
		t.Fatalf("path set = %v, want LTE-only with AllowLTEOnly", ctl.Current())
	}
	if !wifiSF.Suspended() {
		t.Fatal("WiFi subflow not suspended in LTE-only mode")
	}
	// With the WiFi subflow suspended it is no longer sampled, so the
	// WiFi estimate freezes and the controller stays in LTE-only even
	// after the link recovers — the stale-estimate limitation inherent in
	// §3.2's deactivated-interface rule. Verify internal consistency.
	eng.RunUntil(60)
	if ctl.Current() == energy.LTEOnly && !wifiSF.Suspended() {
		t.Error("inconsistent: LTE-only but WiFi subflow active")
	}
	// Drive the recovery transition directly: applying Both must resume
	// the WiFi subflow and re-activate its radio.
	ctl.apply(energy.Both)
	if wifiSF.Suspended() {
		t.Error("WiFi subflow still suspended after applying Both")
	}
	if radio.activations[energy.WiFi] < 1 {
		t.Error("WiFi radio never activated on resume")
	}
	eng.RunUntil(80)
	if wifiSF.BytesDelivered == 0 {
		t.Error("resumed WiFi subflow carried nothing")
	}
}

// nopRadio covers the nil-RadioControl path: Activate returns no delay.
func TestNilRadioControl(t *testing.T) {
	eng := sim.New()
	src := simrng.New(89)
	wifiPath := &tcp.Path{Name: "wifi", Capacity: link.NewConstant(units.MbpsRate(0.5)), BaseRTT: 0.03}
	ltePath := &tcp.Path{Name: "lte", Capacity: link.NewConstant(units.MbpsRate(9)), BaseRTT: 0.07}
	conn := mptcp.New(eng, src, mptcp.DefaultOptions())
	wifiSF := conn.AddSubflow("wifi", energy.WiFi, wifiPath, nil, 0)
	eng.RunUntil(0.1)
	table := eib.Generate(energy.GalaxyS3(), eib.DefaultConfig())
	ctl := New(eng, DefaultConfig(), table, conn, wifiSF, nil,
		func(extra float64) *tcp.Subflow {
			if extra != 0 {
				t.Errorf("nil radio control should impose no delay, got %v", extra)
			}
			return conn.AddSubflow("lte", energy.LTE, ltePath, nil, extra)
		})
	conn.Download(32*units.MB, nil)
	eng.RunUntil(20)
	if !ctl.LTEEstablished() {
		t.Error("LTE not established with nil radio control")
	}
}
