package runner

import (
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestMapIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		p := New(workers)
		out := Map(p, 100, func(i int) int { return i * i })
		if len(out) != 100 {
			t.Fatalf("workers=%d: len = %d, want 100", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEachIndexOnce(t *testing.T) {
	p := New(8)
	var counts [500]atomic.Int32
	Map(p, len(counts), func(i int) struct{} {
		counts[i].Add(1)
		return struct{}{}
	})
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d evaluated %d times, want exactly once", i, c)
		}
	}
}

func TestMapMatchesSequential(t *testing.T) {
	fn := func(i int) float64 { return float64(i) * 1.5 }
	seq := Map(New(1), 257, fn)
	par := Map(New(7), 257, fn)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("parallel result diverged at %d: %v != %v", i, par[i], seq[i])
		}
	}
}

func TestMapZeroAndNegativeN(t *testing.T) {
	p := New(4)
	if out := Map(p, 0, func(i int) int { return i }); out != nil {
		t.Errorf("Map(0) = %v, want nil", out)
	}
	if out := Map(p, -3, func(i int) int { return i }); out != nil {
		t.Errorf("Map(-3) = %v, want nil", out)
	}
}

func TestNewDefaultsToGOMAXPROCS(t *testing.T) {
	if w := New(0).Workers(); w != runtime.GOMAXPROCS(0) {
		t.Errorf("New(0).Workers() = %d, want GOMAXPROCS = %d", w, runtime.GOMAXPROCS(0))
	}
	if w := New(-1).Workers(); w != runtime.GOMAXPROCS(0) {
		t.Errorf("New(-1).Workers() = %d, want GOMAXPROCS", w)
	}
	if w := New(5).Workers(); w != 5 {
		t.Errorf("New(5).Workers() = %d, want 5", w)
	}
}

func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("recovered %T %v, want *PanicError", r, r)
		}
		if pe.Value != "boom-17" {
			t.Errorf("wrapped value = %v, want the worker's panic value", pe.Value)
		}
		// The whole point of the wrapper: the worker's frames survive.
		if !strings.Contains(string(pe.Stack), "TestMapPanicPropagates") {
			t.Errorf("worker stack missing the panicking fn's frame:\n%s", pe.Stack)
		}
		if !strings.Contains(pe.Error(), "boom-17") || !strings.Contains(pe.Error(), "worker stack") {
			t.Errorf("Error() should include value and stack: %s", pe.Error())
		}
	}()
	Map(New(4), 64, func(i int) int {
		if i == 17 {
			panic("boom-17")
		}
		return i
	})
	t.Error("Map returned instead of panicking")
}

func TestPanicErrorUnwrap(t *testing.T) {
	sentinel := errors.New("inner")
	pe := &PanicError{Value: sentinel}
	if !errors.Is(pe, sentinel) {
		t.Error("PanicError should unwrap to the original error value")
	}
	if (&PanicError{Value: "not an error"}).Unwrap() != nil {
		t.Error("non-error panic values unwrap to nil")
	}
}

func TestEach(t *testing.T) {
	var sum atomic.Int64
	New(3).Each(10, func(i int) { sum.Add(int64(i)) })
	if sum.Load() != 45 {
		t.Errorf("sum = %d, want 45", sum.Load())
	}
}
