// Package runner is the deterministic parallel executor behind the
// experiment harness. Repeated seeded scenario runs are embarrassingly
// parallel — each owns its engine, RNG and accountant — so the harness
// fans them across a worker pool and merges results in index order,
// keeping every table byte-identical to a sequential run regardless of
// worker count or scheduling.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a fixed-width worker pool. Pools are cheap value-like objects:
// they hold no goroutines between calls, only a width, so building one per
// call site is fine.
type Pool struct {
	workers int
}

// New returns a pool of the given width. Non-positive widths select
// GOMAXPROCS, the number of usable cores.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool width.
func (p *Pool) Workers() int { return p.workers }

// Map evaluates fn(0..n-1) across the pool's workers and returns the
// results in index order. With one worker (or n ≤ 1) it degenerates to the
// plain sequential loop, bit-for-bit. A panic in any fn is re-raised on
// the calling goroutine after the other workers drain.
func Map[T any](p *Pool, n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	w := p.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := range out {
			out[i] = fn(i)
		}
		return out
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Bool
		panicVal atomic.Value
	)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if panicked.CompareAndSwap(false, true) {
						panicVal.Store(r)
					}
				}
			}()
			for !panicked.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal.Load())
	}
	return out
}

// Each is Map without results: it runs fn(0..n-1) across the pool and
// waits for all of them.
func (p *Pool) Each(n int, fn func(i int)) {
	Map(p, n, func(i int) struct{} {
		fn(i)
		return struct{}{}
	})
}
