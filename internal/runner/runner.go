// Package runner is the deterministic parallel executor behind the
// experiment harness. Repeated seeded scenario runs are embarrassingly
// parallel — each owns its engine, RNG and accountant — so the harness
// fans them across a worker pool and merges results in index order,
// keeping every table byte-identical to a sequential run regardless of
// worker count or scheduling.
package runner

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Pool is a fixed-width worker pool. Pools are cheap value-like objects:
// they hold no goroutines between calls, only a width, so building one per
// call site is fine.
type Pool struct {
	workers int
}

// New returns a pool of the given width. Non-positive widths select
// GOMAXPROCS, the number of usable cores.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool width.
func (p *Pool) Workers() int { return p.workers }

// PanicError wraps a panic that escaped a worker's fn, preserving the
// worker goroutine's stack trace — the re-raise on the calling goroutine
// would otherwise discard it, leaving only Map's own frames.
type PanicError struct {
	// Value is what the worker passed to panic.
	Value any
	// Stack is the worker goroutine's stack at recover time.
	Stack []byte
}

// Error formats the panic value with the worker's stack.
func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: worker panic: %v\n\nworker stack:\n%s", e.Value, e.Stack)
}

// Unwrap exposes the original panic value when it was an error.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Map evaluates fn(0..n-1) across the pool's workers and returns the
// results in index order. With one worker (or n ≤ 1) it degenerates to the
// plain sequential loop, bit-for-bit. A panic in any fn is re-raised on
// the calling goroutine after the other workers drain, wrapped in a
// *PanicError carrying the worker's stack trace.
func Map[T any](p *Pool, n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	w := p.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := range out {
			out[i] = fn(i)
		}
		return out
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Bool
		panicVal atomic.Value
	)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if panicked.CompareAndSwap(false, true) {
						panicVal.Store(&PanicError{Value: r, Stack: debug.Stack()})
					}
				}
			}()
			for !panicked.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal.Load())
	}
	return out
}

// Each is Map without results: it runs fn(0..n-1) across the pool and
// waits for all of them.
func (p *Pool) Each(n int, fn func(i int)) {
	Map(p, n, func(i int) struct{} {
		fn(i)
		return struct{}{}
	})
}
