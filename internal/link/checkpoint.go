// Checkpoint support for bandwidth processes. Every process the scenario
// library constructs implements Snapshotter, so the sweep-fork executor
// can rewind link state alongside the event heap. The RNG streams behind
// the stochastic processes are restored separately (simrng.Arena), and
// ticker-driven processes (MobileWiFi, MultiAPWiFi, Trace) need only
// their own cursors saved — their pending events come back with the
// engine heap.
package link

import (
	"repro/internal/sim"
	"repro/internal/units"
)

// Snapshotter is implemented by processes that can save and restore their
// mutable state for checkpoint/fork. SnapshotState writes into prev when
// prev came from an earlier call on the same process (reuse keeps steady
// state allocation-free) and returns the snapshot; RestoreState reinstates
// one.
type Snapshotter interface {
	SnapshotState(prev any) any
	RestoreState(st any)
}

// baseState saves the observable rate and the observer-list length.
// Restoring assigns the rate directly — no change notification fires, the
// restored heap replays whatever notifications the prefix had already
// delivered. Observers registered after the snapshot (a fork re-hooking a
// rate callback it believes unhooked) are dropped so they cannot stack up
// across forks.
type baseState struct {
	rate units.BitRate
	nObs int
}

func (b *base) snap(s *baseState) {
	s.rate = b.rate
	s.nObs = len(b.observers)
}

func (b *base) restore(s *baseState) {
	b.rate = s.rate
	b.observers = b.observers[:s.nObs]
}

type constantState struct{ baseState }

// SnapshotState implements Snapshotter.
func (c *Constant) SnapshotState(prev any) any {
	s, _ := prev.(*constantState)
	if s == nil {
		s = new(constantState)
	}
	c.snap(&s.baseState)
	return s
}

// RestoreState implements Snapshotter.
func (c *Constant) RestoreState(st any) { c.restore(&st.(*constantState).baseState) }

type onOffState struct {
	baseState
	on bool
	ev sim.Event
}

// SnapshotState implements Snapshotter. The on/off process state is saved
// as-is: NextToggle flips it one transition ahead of the pending toggle
// event, and that pending event is restored with the heap, so saving the
// flipped value keeps the pair consistent.
func (m *OnOffModulator) SnapshotState(prev any) any {
	s, _ := prev.(*onOffState)
	if s == nil {
		s = new(onOffState)
	}
	m.snap(&s.baseState)
	s.on = m.proc.On()
	s.ev = m.toggle.SnapshotEvent()
	return s
}

// RestoreState implements Snapshotter.
func (m *OnOffModulator) RestoreState(st any) {
	s := st.(*onOffState)
	m.restore(&s.baseState)
	m.proc.SetOn(s.on)
	m.toggle.RestoreEvent(s.ev)
}

type interfererState struct {
	active bool
	on     bool
	ev     sim.Event
}

type contendedState struct {
	baseState
	lossProb    float64
	interferers []interfererState
}

// SnapshotState implements Snapshotter.
func (c *ContendedWiFi) SnapshotState(prev any) any {
	s, _ := prev.(*contendedState)
	if s == nil {
		s = new(contendedState)
	}
	c.snap(&s.baseState)
	s.lossProb = c.lossProb
	s.interferers = s.interferers[:0]
	for _, iv := range c.interferers {
		s.interferers = append(s.interferers, interfererState{
			active: iv.active,
			on:     iv.proc.On(),
			ev:     iv.toggle.SnapshotEvent(),
		})
	}
	return s
}

// RestoreState implements Snapshotter.
func (c *ContendedWiFi) RestoreState(st any) {
	s := st.(*contendedState)
	c.restore(&s.baseState)
	c.lossProb = s.lossProb
	for i, iv := range c.interferers {
		is := &s.interferers[i]
		iv.active = is.active
		iv.proc.SetOn(is.on)
		iv.toggle.RestoreEvent(is.ev)
	}
}

type mobileState struct {
	baseState
	associated bool
	nAssocObs  int
}

// SnapshotState implements Snapshotter. The sampling ticker needs nothing
// saved: its pending event returns with the heap and its re-arm never
// cancels.
func (m *MobileWiFi) SnapshotState(prev any) any {
	s, _ := prev.(*mobileState)
	if s == nil {
		s = new(mobileState)
	}
	m.snap(&s.baseState)
	s.associated = m.associated
	s.nAssocObs = len(m.assocObs)
	return s
}

// RestoreState implements Snapshotter.
func (m *MobileWiFi) RestoreState(st any) {
	s := st.(*mobileState)
	m.restore(&s.baseState)
	m.associated = s.associated
	m.assocObs = m.assocObs[:s.nAssocObs]
}

type multiAPState struct {
	baseState
	current     int
	associated  bool
	inHandover  bool
	handoverEnd float64
	nAssocObs   int
}

// SnapshotState implements Snapshotter.
func (m *MultiAPWiFi) SnapshotState(prev any) any {
	s, _ := prev.(*multiAPState)
	if s == nil {
		s = new(multiAPState)
	}
	m.snap(&s.baseState)
	s.current = m.current
	s.associated = m.associated
	s.inHandover = m.inHandover
	s.handoverEnd = m.handoverEnd
	s.nAssocObs = len(m.assocObs)
	return s
}

// RestoreState implements Snapshotter.
func (m *MultiAPWiFi) RestoreState(st any) {
	s := st.(*multiAPState)
	m.restore(&s.baseState)
	m.current = s.current
	m.associated = s.associated
	m.inHandover = s.inHandover
	m.handoverEnd = s.handoverEnd
	m.assocObs = m.assocObs[:s.nAssocObs]
}

type traceState struct {
	baseState
	next int
}

// SnapshotState implements Snapshotter. The breakpoint events were all
// scheduled at construction and fire in order, so the cursor is the only
// dynamic state beyond the base.
func (tr *Trace) SnapshotState(prev any) any {
	s, _ := prev.(*traceState)
	if s == nil {
		s = new(traceState)
	}
	tr.snap(&s.baseState)
	s.next = tr.next
	return s
}

// RestoreState implements Snapshotter.
func (tr *Trace) RestoreState(st any) {
	s := st.(*traceState)
	tr.restore(&s.baseState)
	tr.next = s.next
}
