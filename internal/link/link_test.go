package link

import (
	"math"
	"testing"

	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/simrng"
	"repro/internal/units"
)

func TestConstant(t *testing.T) {
	c := NewConstant(units.MbpsRate(10))
	if c.Rate() != units.MbpsRate(10) {
		t.Errorf("rate = %v", c.Rate())
	}
	fired := false
	c.OnChange(func(units.BitRate) { fired = true })
	if fired {
		t.Error("constant should never notify")
	}
}

func TestOnOffModulatorAlternates(t *testing.T) {
	eng := sim.New()
	eng.Horizon = 2000
	src := simrng.New(42)
	m := NewOnOffModulator(eng, src, units.MbpsRate(10), units.MbpsRate(1), 40, true)
	if m.Rate() != units.MbpsRate(10) {
		t.Fatalf("initial rate = %v, want high", m.Rate())
	}
	var rates []units.BitRate
	m.OnChange(func(r units.BitRate) { rates = append(rates, r) })
	eng.Run()
	if len(rates) < 10 {
		t.Fatalf("only %d toggles in 2000 s with mean hold 40 s", len(rates))
	}
	for i, r := range rates {
		wantHigh := i%2 == 1 // first change goes high→low, so odd indexes are high
		if wantHigh && r != units.MbpsRate(10) || !wantHigh && r != units.MbpsRate(1) {
			t.Fatalf("toggle %d = %v, not alternating", i, r)
		}
	}
	// Mean holding time should be in the neighbourhood of 40 s:
	// ~2000/40 = 50 toggles expected.
	if len(rates) < 25 || len(rates) > 100 {
		t.Errorf("%d toggles in 2000 s, want ~50", len(rates))
	}
}

func TestOnOffModulatorStartLow(t *testing.T) {
	eng := sim.New()
	m := NewOnOffModulator(eng, simrng.New(1), units.MbpsRate(10), units.MbpsRate(1), 40, false)
	if m.Rate() != units.MbpsRate(1) {
		t.Errorf("initial rate = %v, want low", m.Rate())
	}
}

func TestContendedWiFiSharesChannel(t *testing.T) {
	eng := sim.New()
	eng.Horizon = 500
	c := NewContendedWiFi(eng, simrng.New(7), units.MbpsRate(12), 2, 0.05, 0.025)
	if c.Rate() != units.MbpsRate(12) {
		t.Fatalf("initial rate = %v, want full", c.Rate())
	}
	if c.LossProb() != 0 {
		t.Fatalf("initial loss = %v, want 0", c.LossProb())
	}
	sawShared, sawLoss := false, false
	c.OnChange(func(r units.BitRate) {
		k := c.ActiveInterferers()
		want := units.BitRate(float64(units.MbpsRate(12)) * phy.ContentionShare(k))
		if math.Abs(float64(r-want)) > 1 {
			t.Errorf("rate %v does not match %d active interferers", r, k)
		}
		if k > 0 {
			sawShared = true
			if c.LossProb() <= 0 {
				t.Error("active interferers should add loss")
			}
			sawLoss = true
		}
	})
	eng.Run()
	if !sawShared || !sawLoss {
		t.Error("interferers never became active in 500 s")
	}
}

func TestContendedWiFiZeroInterferers(t *testing.T) {
	eng := sim.New()
	eng.Horizon = 100
	c := NewContendedWiFi(eng, simrng.New(7), units.MbpsRate(12), 0, 0.05, 0.05)
	changed := false
	c.OnChange(func(units.BitRate) { changed = true })
	eng.Run()
	if changed {
		t.Error("no interferers: rate should never change")
	}
}

func TestMobileWiFiFollowsRoute(t *testing.T) {
	eng := sim.New()
	route, ap := phy.UMassCSRoute()
	cell := phy.DefaultWiFiCell()
	eng.Horizon = route.Duration()
	m := NewMobileWiFi(eng, cell, route, ap)
	if m.Rate() <= 0 {
		t.Fatal("route starts near the AP; initial rate should be positive")
	}
	var minRate, maxRate units.BitRate = m.Rate(), m.Rate()
	m.OnChange(func(r units.BitRate) {
		if r < minRate {
			minRate = r
		}
		if r > maxRate {
			maxRate = r
		}
	})
	assocChanges := 0
	m.OnAssociationChange(func(bool) { assocChanges++ })
	eng.Run()
	if minRate != 0 {
		t.Errorf("min rate on route = %v, want 0 (out of range)", minRate)
	}
	if maxRate != cell.MaxGoodput {
		t.Errorf("max rate on route = %v, want %v", maxRate, cell.MaxGoodput)
	}
	if assocChanges == 0 {
		t.Error("route excursions should toggle association at least once")
	}
}

func TestTrace(t *testing.T) {
	eng := sim.New()
	tr := NewTrace(eng, []Breakpoint{
		{At: 0, Rate: units.MbpsRate(5)},
		{At: 10, Rate: units.MbpsRate(1)},
		{At: 20, Rate: units.MbpsRate(8)},
	})
	if tr.Rate() != units.MbpsRate(5) {
		t.Fatalf("initial = %v, want 5 Mbps", tr.Rate())
	}
	var hist []float64
	tr.OnChange(func(r units.BitRate) { hist = append(hist, eng.Now()) })
	eng.Run()
	if len(hist) != 2 || hist[0] != 10 || hist[1] != 20 {
		t.Errorf("change times = %v, want [10 20]", hist)
	}
	if tr.Rate() != units.MbpsRate(8) {
		t.Errorf("final = %v, want 8 Mbps", tr.Rate())
	}
}

func TestTraceUnorderedPanics(t *testing.T) {
	eng := sim.New()
	defer func() {
		if recover() == nil {
			t.Error("unordered trace did not panic")
		}
	}()
	NewTrace(eng, []Breakpoint{{At: 10, Rate: 1}, {At: 5, Rate: 2}})
}

func TestSetClampsNegative(t *testing.T) {
	eng := sim.New()
	tr := NewTrace(eng, []Breakpoint{{At: 0, Rate: units.MbpsRate(5)}, {At: 1, Rate: -5}})
	eng.Run()
	if tr.Rate() != 0 {
		t.Errorf("negative rate should clamp to 0, got %v", tr.Rate())
	}
}

func TestNoNotifyOnSameRate(t *testing.T) {
	eng := sim.New()
	tr := NewTrace(eng, []Breakpoint{
		{At: 0, Rate: units.MbpsRate(5)},
		{At: 1, Rate: units.MbpsRate(5)},
	})
	n := 0
	tr.OnChange(func(units.BitRate) { n++ })
	eng.Run()
	if n != 0 {
		t.Errorf("same-rate set notified %d times, want 0", n)
	}
}

func TestModulatorDeterminism(t *testing.T) {
	run := func() []float64 {
		eng := sim.New()
		eng.Horizon = 500
		m := NewOnOffModulator(eng, simrng.New(99), units.MbpsRate(10), units.MbpsRate(1), 40, true)
		var times []float64
		m.OnChange(func(units.BitRate) { times = append(times, eng.Now()) })
		eng.Run()
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at toggle %d", i)
		}
	}
}

func TestMultiAPRoaming(t *testing.T) {
	eng := sim.New()
	route, _ := phy.UMassCSRoute()
	cell := phy.DefaultWiFiCell()
	// A second AP in the far wing covers the route's first excursion.
	aps := []phy.Point{{X: 0, Y: 0}, {X: 72, Y: 14}}
	m := NewMultiAPWiFi(eng, cell, route, aps)
	if m.CurrentAP() != 0 {
		t.Fatalf("start AP = %d, want the near one", m.CurrentAP())
	}
	apsSeen := map[int]bool{}
	assocDrops := 0
	m.OnAssociationChange(func(assoc bool) {
		if !assoc {
			assocDrops++
		}
	})
	eng.Tick(1, func() { apsSeen[m.CurrentAP()] = true })
	eng.Horizon = route.Duration()
	eng.Run()
	if !apsSeen[0] || !apsSeen[1] {
		t.Errorf("roaming never used both APs: %v", apsSeen)
	}
	if assocDrops == 0 {
		t.Error("handovers should drop the association briefly")
	}
}

func TestMultiAPCoverageBeatsSingleAP(t *testing.T) {
	route, ap := phy.UMassCSRoute()
	cell := phy.DefaultWiFiCell()
	usable := func(aps []phy.Point) float64 {
		eng := sim.New()
		var m Process
		if len(aps) == 1 {
			m = NewMobileWiFi(eng, cell, route, aps[0])
		} else {
			m = NewMultiAPWiFi(eng, cell, route, aps)
		}
		up := 0.0
		eng.Tick(1, func() {
			if m.Rate() > 0 {
				up++
			}
		})
		eng.Horizon = route.Duration()
		eng.Run()
		return up
	}
	single := usable([]phy.Point{ap})
	multi := usable([]phy.Point{ap, {X: 72, Y: 14}, {X: 35, Y: 25}})
	if multi <= single {
		t.Errorf("multi-AP usable seconds (%v) should exceed single AP (%v)", multi, single)
	}
}

func TestMultiAPNeedsAPs(t *testing.T) {
	eng := sim.New()
	route, _ := phy.UMassCSRoute()
	defer func() {
		if recover() == nil {
			t.Error("no APs did not panic")
		}
	}()
	NewMultiAPWiFi(eng, phy.DefaultWiFiCell(), route, nil)
}
