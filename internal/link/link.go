// Package link provides the time-varying bandwidth processes that drive
// the paper's experiments: constant links (§4.2), the exponential on-off
// WiFi modulation of §4.3, Markov on-off background interferers (§4.4),
// and the mobility-driven WiFi trace of §4.5. Each process plugs into the
// discrete-event engine and exposes a piecewise-constant available
// bandwidth with change notification.
package link

import (
	"math"

	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/simrng"
	"repro/internal/units"
)

// Process is a piecewise-constant available-bandwidth process. Rate
// returns the current value; OnChange registers a callback fired whenever
// the value changes (after it has changed).
type Process interface {
	Rate() units.BitRate
	OnChange(func(units.BitRate))
}

// LossProcess optionally augments a Process with a random packet-loss
// probability (contention collisions).
type LossProcess interface {
	Process
	LossProb() float64
}

// base provides the observer plumbing shared by all processes.
type base struct {
	rate      units.BitRate
	observers []func(units.BitRate)
}

func (b *base) Rate() units.BitRate             { return b.rate }
func (b *base) OnChange(fn func(units.BitRate)) { b.observers = append(b.observers, fn) }

func (b *base) set(r units.BitRate) {
	if r < 0 {
		r = 0
	}
	if r == b.rate {
		return
	}
	b.rate = r
	for _, fn := range b.observers {
		fn(r)
	}
}

// Constant is a fixed-rate process.
type Constant struct{ base }

// NewConstant returns a process pinned at rate.
func NewConstant(rate units.BitRate) *Constant {
	c := &Constant{}
	c.rate = rate
	return c
}

// OnOffModulator drives a link between a high and a low rate with
// exponentially distributed holding times, reproducing §4.3's setup: "WiFi
// link bandwidth is modulated by a two state on-off process with
// exponentially distributed times spent in the on or off state with a mean
// of 40 seconds. The bandwidth provided by the AP is ≤1 Mbps or ≥10 Mbps."
type OnOffModulator struct {
	base
	proc   *simrng.OnOff
	high   units.BitRate
	low    units.BitRate
	toggle sim.Timer // pre-bound: toggling allocates nothing per transition
}

// NewOnOffModulator starts a modulator on the engine. startHigh selects
// the initial state; meanHold is the mean holding time in seconds for both
// states.
func NewOnOffModulator(eng *sim.Engine, src *simrng.Source, high, low units.BitRate, meanHold float64, startHigh bool) *OnOffModulator {
	m := &OnOffModulator{
		proc: simrng.NewOnOff(src, meanHold, meanHold, startHigh),
		high: high,
		low:  low,
	}
	if startHigh {
		m.rate = high
	} else {
		m.rate = low
	}
	m.toggle = eng.BindTimer(m.onToggle)
	m.scheduleToggle()
	return m
}

func (m *OnOffModulator) onToggle() {
	if m.proc.On() {
		m.set(m.high)
	} else {
		m.set(m.low)
	}
	m.scheduleToggle()
}

func (m *OnOffModulator) scheduleToggle() {
	hold := m.proc.NextToggle()
	if math.IsInf(hold, 1) {
		return
	}
	m.toggle.After(hold)
}

// Interferer is one background WiFi node generating UDP traffic according
// to a two-state Markov on-off process with rates λon (leaving off) and
// λoff (leaving on), per §4.4.
type Interferer struct {
	proc   *simrng.OnOff
	active bool
	toggle sim.Timer // pre-bound at construction; re-armed per transition
}

// ContendedWiFi models the device's WiFi link under channel contention
// from n interferers sharing the same channel. While k interferers are
// actively transmitting, the device's share of the base goodput is
// 1/(k+1) and collisions add packet loss.
type ContendedWiFi struct {
	base
	baseRate    units.BitRate
	interferers []*Interferer
	lossProb    float64
}

// NewContendedWiFi starts n interferers on the engine with the given
// Markov rates. All interferers start silent.
func NewContendedWiFi(eng *sim.Engine, src *simrng.Source, baseRate units.BitRate, n int, lambdaOn, lambdaOff float64) *ContendedWiFi {
	c := &ContendedWiFi{baseRate: baseRate}
	c.rate = baseRate
	for i := 0; i < n; i++ {
		iv := &Interferer{proc: simrng.NewOnOffRates(src.Split(uint64(i)+1), lambdaOn, lambdaOff, false)}
		iv.toggle = eng.BindTimer(func() {
			iv.active = iv.proc.On()
			c.recompute()
			c.scheduleToggle(iv)
		})
		c.interferers = append(c.interferers, iv)
		c.scheduleToggle(iv)
	}
	return c
}

func (c *ContendedWiFi) scheduleToggle(iv *Interferer) {
	hold := iv.proc.NextToggle()
	if math.IsInf(hold, 1) {
		return
	}
	iv.toggle.After(hold)
}

func (c *ContendedWiFi) recompute() {
	k := 0
	for _, iv := range c.interferers {
		if iv.active {
			k++
		}
	}
	c.lossProb = phy.CollisionLossProb(k)
	c.set(units.BitRate(float64(c.baseRate) * phy.ContentionShare(k)))
}

// LossProb returns the current collision-loss probability.
func (c *ContendedWiFi) LossProb() float64 { return c.lossProb }

// ActiveInterferers returns how many interferers are currently on.
func (c *ContendedWiFi) ActiveInterferers() int {
	k := 0
	for _, iv := range c.interferers {
		if iv.active {
			k++
		}
	}
	return k
}

// MobileWiFi samples a walker's position along a route once a second and
// sets the WiFi rate from the cell's distance–goodput curve, reproducing
// the §4.5 mobile scenario. It also tracks association so baselines like
// "MPTCP with WiFi First" can react to disassociation events.
type MobileWiFi struct {
	base
	cell       phy.WiFiCell
	route      *phy.Route
	ap         phy.Point
	associated bool
	assocObs   []func(bool)
}

// SampleInterval is how often MobileWiFi re-evaluates the walker position.
const SampleInterval = 1.0

// NewMobileWiFi starts the mobility process on the engine.
func NewMobileWiFi(eng *sim.Engine, cell phy.WiFiCell, route *phy.Route, ap phy.Point) *MobileWiFi {
	m := &MobileWiFi{cell: cell, route: route, ap: ap}
	d := route.PositionAt(0).Dist(ap)
	m.rate = cell.GoodputAt(d)
	m.associated = cell.Associated(d)
	eng.Tick(SampleInterval, func() { m.sample(eng.Now()) })
	return m
}

func (m *MobileWiFi) sample(t float64) {
	d := m.route.PositionAt(t).Dist(m.ap)
	assoc := m.cell.Associated(d)
	if assoc != m.associated {
		m.associated = assoc
		for _, fn := range m.assocObs {
			fn(assoc)
		}
	}
	m.set(m.cell.GoodputAt(d))
}

// Associated reports whether the device currently holds its association.
func (m *MobileWiFi) Associated() bool { return m.associated }

// OnAssociationChange registers a callback fired when association is
// gained or lost.
func (m *MobileWiFi) OnAssociationChange(fn func(bool)) {
	m.assocObs = append(m.assocObs, fn)
}

// Trace replays an explicit piecewise-constant schedule of (time, rate)
// breakpoints, useful for deterministic tests and custom scenarios.
type Trace struct {
	base
	pts  []Breakpoint
	next int
}

// Breakpoint is one step of a Trace.
type Breakpoint struct {
	At   float64
	Rate units.BitRate
}

// NewTrace schedules the breakpoints on the engine. Breakpoints must be
// time-ordered; the first one at time 0 (or the zero rate) defines the
// initial value.
func NewTrace(eng *sim.Engine, points []Breakpoint) *Trace {
	tr := &Trace{}
	start := 0
	if len(points) > 0 && points[0].At <= 0 {
		tr.rate = points[0].Rate
		start = 1
	}
	// One shared advance callback walks the breakpoint slice in order.
	// Same-time breakpoints fire FIFO (the kernel's seq tie-break follows
	// Schedule order), so the cursor always lines up with the firing event.
	tr.pts = points[start:]
	advance := func() {
		p := tr.pts[tr.next]
		tr.next++
		tr.set(p.Rate)
	}
	last := 0.0
	for _, p := range tr.pts {
		if p.At < last {
			panic("link: trace breakpoints must be time-ordered")
		}
		last = p.At
		eng.Schedule(p.At, advance)
	}
	return tr
}

// MultiAPWiFi models a walker roaming across several access points of the
// same ESS (the §6 Croitoru et al. setting): the device associates with
// the AP offering the best goodput, subject to a roaming hysteresis, and
// each re-association costs a handover gap during which the WiFi link is
// down. Association events are exposed exactly like MobileWiFi's, so the
// WiFi-First and Single-Path baselines react to handovers.
type MultiAPWiFi struct {
	base
	cell  phy.WiFiCell
	route *phy.Route
	aps   []phy.Point

	// RoamMargin is how much better (multiplicatively) a candidate AP's
	// goodput must be before the device roams to it.
	RoamMargin float64
	// HandoverGap is the re-association outage in seconds.
	HandoverGap float64

	current     int
	associated  bool
	inHandover  bool
	handoverEnd float64
	assocObs    []func(bool)
}

// NewMultiAPWiFi starts the roaming process on the engine. At least one AP
// is required; the walker starts associated to the best one.
func NewMultiAPWiFi(eng *sim.Engine, cell phy.WiFiCell, route *phy.Route, aps []phy.Point) *MultiAPWiFi {
	if len(aps) == 0 {
		panic("link: MultiAPWiFi needs at least one AP")
	}
	m := &MultiAPWiFi{
		cell:        cell,
		route:       route,
		aps:         aps,
		RoamMargin:  1.3,
		HandoverGap: 1.5,
	}
	pos := route.PositionAt(0)
	m.current = m.bestAP(pos)
	d := pos.Dist(aps[m.current])
	m.rate = cell.GoodputAt(d)
	m.associated = cell.Associated(d)
	eng.Tick(SampleInterval, func() { m.sample(eng.Now()) })
	return m
}

// bestAP returns the index of the AP with the highest goodput at pos.
func (m *MultiAPWiFi) bestAP(pos phy.Point) int {
	best, bestRate := 0, units.BitRate(-1)
	for i, ap := range m.aps {
		if r := m.cell.GoodputAt(pos.Dist(ap)); r > bestRate {
			best, bestRate = i, r
		}
	}
	return best
}

func (m *MultiAPWiFi) sample(t float64) {
	pos := m.route.PositionAt(t)
	if m.inHandover {
		if t < m.handoverEnd {
			m.set(0)
			return
		}
		m.inHandover = false
		m.setAssociated(true)
	}
	curRate := m.cell.GoodputAt(pos.Dist(m.aps[m.current]))
	best := m.bestAP(pos)
	bestRate := m.cell.GoodputAt(pos.Dist(m.aps[best]))
	// Roam when the current AP is unusable or another is clearly better.
	if best != m.current &&
		(curRate <= 0 || float64(bestRate) > float64(curRate)*m.RoamMargin) && bestRate > 0 {
		m.current = best
		m.inHandover = true
		m.handoverEnd = t + m.HandoverGap
		m.setAssociated(false)
		m.set(0)
		return
	}
	m.setAssociated(m.cell.Associated(pos.Dist(m.aps[m.current])))
	m.set(curRate)
}

func (m *MultiAPWiFi) setAssociated(assoc bool) {
	if assoc == m.associated {
		return
	}
	m.associated = assoc
	for _, fn := range m.assocObs {
		fn(assoc)
	}
}

// Associated reports whether the device currently holds an association.
func (m *MultiAPWiFi) Associated() bool { return m.associated }

// CurrentAP returns the index of the AP the device is associated with (or
// handing over to).
func (m *MultiAPWiFi) CurrentAP() int { return m.current }

// OnAssociationChange registers a callback fired on association changes.
func (m *MultiAPWiFi) OnAssociationChange(fn func(bool)) {
	m.assocObs = append(m.assocObs, fn)
}
