// Package report renders experiment outputs as aligned text tables and
// lightweight ASCII charts — the harness's stand-in for the paper's
// figures. Every experiment in internal/exp emits its results through
// these types so cmd/emptcpsim can print something a human can compare
// against the paper directly.
package report

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/stats"
)

// Table is a titled text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends one row. Short rows are padded with empty cells.
func (t *Table) Add(cells ...string) {
	for len(cells) < len(t.Headers) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// Addf appends one row built from format/args pairs: each argument is
// rendered with %v unless it is a float64, which gets %.3g... use Add with
// pre-formatted strings for full control.
func (t *Table) Addf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Add(row...)
}

// FormatFloat renders a float compactly with sensible precision.
func FormatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "—"
	case v != 0 && math.Abs(v) < 0.01:
		return fmt.Sprintf("%.3g", v)
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total) + "\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func pad(s string, w int) string {
	n := w - len([]rune(s))
	if n <= 0 {
		return s
	}
	return s + strings.Repeat(" ", n)
}

// MeanSEM renders a stats.Summary the way the paper's error-bar figures
// report values.
func MeanSEM(s stats.Summary) string {
	return fmt.Sprintf("%s ± %s", FormatFloat(s.Mean), FormatFloat(s.SEM))
}

// WhiskerString renders a whisker summary compactly for the Figure 15/16
// style tables.
func WhiskerString(w stats.Whisker) string {
	return fmt.Sprintf("%s / %s / %s (out:%d)",
		FormatFloat(w.Q1), FormatFloat(w.Median), FormatFloat(w.Q3), len(w.Outliers))
}

// sparkLevels are the eight block characters a sparkline quantizes to.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a time series as a fixed-width unicode sparkline,
// resampling to width points over the series' time span.
func Sparkline(ts *stats.TimeSeries, width int) string {
	if ts == nil || ts.Len() == 0 || width <= 0 {
		return ""
	}
	end, _ := ts.Last()
	if end <= 0 {
		end = 1
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	vals := make([]float64, width)
	for i := 0; i < width; i++ {
		v := ts.At(end * float64(i) / float64(width-1+boolToInt(width == 1)))
		vals[i] = v
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	var b strings.Builder
	span := hi - lo
	for _, v := range vals {
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * float64(len(sparkLevels)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkLevels) {
			idx = len(sparkLevels) - 1
		}
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// SeriesBlock renders named time series as labelled sparklines with their
// final values — the textual stand-in for the paper's trace figures
// (7, 9, 12).
func SeriesBlock(title string, names []string, series map[string]*stats.TimeSeries, width int) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	maxName := 0
	for _, n := range names {
		if len(n) > maxName {
			maxName = len(n)
		}
	}
	for _, n := range names {
		ts := series[n]
		if ts == nil {
			continue
		}
		_, last := ts.Last()
		fmt.Fprintf(&b, "  %s  %s  (final %.4g)\n", pad(n, maxName), Sparkline(ts, width), last)
	}
	return b.String()
}

// HeatmapASCII shades a matrix (row-major, rows × cols) with the given
// row/column labels: darker cells mean lower values, mirroring Figure 3's
// grey-scale where darker = more efficient MPTCP.
func HeatmapASCII(rel [][]float64, rowLabel func(i int) string, colCaption string) string {
	shades := []rune(" ░▒▓█")
	var b strings.Builder
	b.WriteString(colCaption + "\n")
	for i := len(rel) - 1; i >= 0; i-- { // highest row on top like the figure's y axis
		b.WriteString(pad(rowLabel(i), 8) + " ")
		for _, v := range rel[i] {
			// Map 0.8..1.2 → darkest..lightest.
			f := (v - 0.8) / 0.4
			idx := len(shades) - 1 - int(f*float64(len(shades)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			b.WriteRune(shades[idx])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CSV renders the table as RFC 4180-style CSV (quoted cells where needed),
// for piping experiment output into external plotting tools.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Scatter renders labelled (x, y) points on an ASCII grid — the textual
// stand-in for the paper's Figure 14 scatterplot. Points are plotted with
// their rune label; later points overwrite earlier ones on collisions.
type Scatter struct {
	Title          string
	XLabel, YLabel string
	XMax, YMax     float64
	points         []scatterPoint
}

type scatterPoint struct {
	x, y  float64
	label rune
}

// AddPoint plots one labelled point; values outside [0, Max] clamp to the
// border.
func (s *Scatter) AddPoint(x, y float64, label rune) {
	s.points = append(s.points, scatterPoint{x, y, label})
}

// String renders the plot with the y axis on the left.
func (s *Scatter) String() string {
	const cols, rows = 56, 18
	grid := make([][]rune, rows)
	for i := range grid {
		grid[i] = make([]rune, cols)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	clamp := func(v float64, max float64, n int) int {
		if max <= 0 {
			return 0
		}
		i := int(v / max * float64(n-1))
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		return i
	}
	for _, p := range s.points {
		grid[rows-1-clamp(p.y, s.YMax, rows)][clamp(p.x, s.XMax, cols)] = p.label
	}
	var b strings.Builder
	if s.Title != "" {
		b.WriteString(s.Title + "\n")
	}
	fmt.Fprintf(&b, "%s ↑\n", s.YLabel)
	for _, row := range grid {
		b.WriteString("  |" + string(row) + "\n")
	}
	b.WriteString("  +" + strings.Repeat("-", cols) + "→ " + s.XLabel + "\n")
	return b.String()
}
