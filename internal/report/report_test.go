package report

import (
	"math"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("title", "A", "Column B")
	tb.Add("x", "1")
	tb.Add("longer cell")
	s := tb.String()
	if !strings.HasPrefix(s, "title\n") {
		t.Errorf("missing title:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), s)
	}
	// Short row padded to the header width.
	if !strings.Contains(lines[4], "longer cell") {
		t.Errorf("row missing:\n%s", s)
	}
	// Columns aligned: header and first row start their second column at
	// the same offset.
	hIdx := strings.Index(lines[1], "Column B")
	rIdx := strings.Index(lines[3], "1")
	if hIdx != rIdx {
		t.Errorf("columns misaligned: header at %d, row at %d\n%s", hIdx, rIdx, s)
	}
}

func TestTableAddf(t *testing.T) {
	tb := NewTable("t", "a", "b", "c")
	tb.Addf("s", 3.14159, 42)
	row := tb.Rows[0]
	if row[0] != "s" || row[1] != "3.14" || row[2] != "42" {
		t.Errorf("Addf row = %v", row)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{math.NaN(), "—"},
		{0.001234, "0.00123"},
		{12345, "12345"},
		{3.14159, "3.14"},
		{0, "0.00"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.in); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestMeanSEM(t *testing.T) {
	s := stats.Summarize([]float64{1, 2, 3})
	out := MeanSEM(s)
	if !strings.Contains(out, "±") || !strings.Contains(out, "2.00") {
		t.Errorf("MeanSEM = %q", out)
	}
}

func TestWhiskerString(t *testing.T) {
	w := stats.NewWhisker([]float64{1, 2, 3, 4, 100})
	out := WhiskerString(w)
	if !strings.Contains(out, "out:1") {
		t.Errorf("WhiskerString = %q", out)
	}
}

func TestSparkline(t *testing.T) {
	ts := &stats.TimeSeries{}
	for i := 0; i <= 10; i++ {
		ts.Add(float64(i), float64(i))
	}
	s := Sparkline(ts, 20)
	if len([]rune(s)) != 20 {
		t.Fatalf("sparkline width = %d, want 20", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] == runes[len(runes)-1] {
		t.Error("rising series should change sparkline level")
	}
	if Sparkline(nil, 10) != "" || Sparkline(&stats.TimeSeries{}, 10) != "" {
		t.Error("empty series should render empty")
	}
	if Sparkline(ts, 0) != "" {
		t.Error("zero width should render empty")
	}
}

func TestSparklineFlat(t *testing.T) {
	ts := &stats.TimeSeries{}
	ts.Add(0, 5)
	ts.Add(10, 5)
	s := []rune(Sparkline(ts, 10))
	for _, r := range s {
		if r != s[0] {
			t.Error("flat series should render one level")
		}
	}
}

func TestSeriesBlock(t *testing.T) {
	ts := &stats.TimeSeries{}
	ts.Add(0, 0)
	ts.Add(1, 7)
	out := SeriesBlock("traces:", []string{"a", "missing"}, map[string]*stats.TimeSeries{"a": ts}, 12)
	if !strings.Contains(out, "traces:") || !strings.Contains(out, "final 7") {
		t.Errorf("SeriesBlock = %q", out)
	}
	if strings.Contains(out, "missing") {
		t.Error("absent series should be skipped")
	}
}

func TestHeatmapASCII(t *testing.T) {
	rel := [][]float64{{0.8, 1.2}, {1.0, 0.9}}
	out := HeatmapASCII(rel, func(i int) string { return "r" }, "caption")
	if !strings.Contains(out, "caption") {
		t.Errorf("missing caption: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected caption + 2 rows, got %d", len(lines))
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("ignored title", "a", "b")
	tb.Add("plain", `needs "quoting", yes`)
	got := tb.CSV()
	want := "a,b\nplain,\"needs \"\"quoting\"\", yes\"\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestScatter(t *testing.T) {
	s := &Scatter{Title: "title", XLabel: "x", YLabel: "y", XMax: 10, YMax: 10}
	s.AddPoint(0, 0, 'a')
	s.AddPoint(10, 10, 'b')
	s.AddPoint(50, -3, 'c') // clamps to the border
	out := s.String()
	for _, want := range []string{"title", "a", "b", "c", "→ x"} {
		if !strings.Contains(out, want) {
			t.Errorf("scatter missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	// 'b' must appear above 'a'.
	var aLine, bLine int
	for i, l := range lines {
		if strings.Contains(l, "a") && strings.HasPrefix(l, "  |") {
			aLine = i
		}
		if strings.Contains(l, "b") && strings.HasPrefix(l, "  |") {
			bLine = i
		}
	}
	if bLine >= aLine {
		t.Errorf("y axis inverted: b at line %d, a at line %d", bLine, aLine)
	}
}
