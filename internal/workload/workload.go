// Package workload implements the application traffic the paper evaluates
// with: single-file downloads of various sizes (256 KB to 256 MB), bulk
// transfers measured over a fixed window (the mobility scenario), and the
// Web-browsing case study of §5.4 — a copy of CNN's home page with 107
// objects fetched over six parallel persistent connections.
package workload

import (
	"repro/internal/sim"
	"repro/internal/simrng"
	"repro/internal/units"
)

// Conn is the protocol-managed connection handle a workload drives. The
// scenario layer provides implementations for each protocol under test.
type Conn interface {
	// Get enqueues a download of size bytes; onComplete fires when its
	// last byte arrives. Sequential Gets on one Conn model requests on an
	// HTTP persistent connection.
	Get(size units.ByteSize, onComplete func(at float64))
	// Put enqueues an upload of size bytes from the device. Uploads are
	// the paper's stated future work (§7); uplink traffic draws far more
	// radio power per Mbps, especially on cellular.
	Put(size units.ByteSize, onComplete func(at float64))
}

// Workload generates application traffic.
type Workload interface {
	// Launch starts the workload. open creates a new protocol-managed
	// connection; done (may be nil) fires when the workload completes.
	Launch(eng *sim.Engine, src *simrng.Source, open func() Conn, done func(at float64))
	// TotalBytes returns the workload's total transfer size, or 0 when
	// unbounded.
	TotalBytes() units.ByteSize
}

// FileDownload fetches one file over one connection — the workload of
// §4.2–§4.4 and §5.2–§5.3.
type FileDownload struct {
	Size units.ByteSize
}

// Launch implements Workload.
func (w FileDownload) Launch(eng *sim.Engine, src *simrng.Source, open func() Conn, done func(at float64)) {
	open().Get(w.Size, done)
}

// TotalBytes implements Workload.
func (w FileDownload) TotalBytes() units.ByteSize { return w.Size }

// FileUpload pushes one file from the device over one connection — the
// upload scenario the paper leaves as future work (§7).
type FileUpload struct {
	Size units.ByteSize
}

// Launch implements Workload.
func (w FileUpload) Launch(eng *sim.Engine, src *simrng.Source, open func() Conn, done func(at float64)) {
	open().Put(w.Size, done)
}

// TotalBytes implements Workload.
func (w FileUpload) TotalBytes() units.ByteSize { return w.Size }

// Bulk downloads endlessly; the scenario's horizon cuts it off. The
// mobility experiments (§4.5) use it: the metric is the amount downloaded
// in 250 s, not a completion time.
type Bulk struct{}

// bulkSize is effectively infinite at the simulated rates and durations.
const bulkSize = 1 << 40 // 1 TiB

// Launch implements Workload.
func (Bulk) Launch(eng *sim.Engine, src *simrng.Source, open func() Conn, done func(at float64)) {
	open().Get(bulkSize, done)
}

// TotalBytes implements Workload.
func (Bulk) TotalBytes() units.ByteSize { return 0 }

// WebPage models the §5.4 case study: the CNN home page (as of 9/11/2014)
// with 107 objects, fetched by a browser over six parallel (MP)TCP
// connections with HTTP persistent connections. Almost all objects are
// smaller than 256 KB.
type WebPage struct {
	// Objects is the object count (107 in the paper).
	Objects int
	// Connections is the browser's parallel connection pool size (6).
	Connections int
	// MinObject/MaxObject bound the heavy-tailed object size draw.
	MinObject units.ByteSize
	MaxObject units.ByteSize
	// ParetoAlpha shapes the size distribution.
	ParetoAlpha float64
}

// DefaultWebPage returns the §5.4 page model: 107 objects over 6
// connections, Pareto sizes from 2 KB capped at 256 KB (mean ≈ 15 KB,
// total ≈ 1.5–2 MB, matching a 2014 news home page).
func DefaultWebPage() WebPage {
	return WebPage{
		Objects:     107,
		Connections: 6,
		MinObject:   2 * units.KB,
		MaxObject:   256 * units.KB,
		ParetoAlpha: 1.2,
	}
}

// Sizes draws the page's object sizes deterministically from src.
func (w WebPage) Sizes(src *simrng.Source) []units.ByteSize {
	sizes := make([]units.ByteSize, w.Objects)
	for i := range sizes {
		s := units.ByteSize(src.Pareto(float64(w.MinObject), w.ParetoAlpha))
		if s > w.MaxObject {
			s = w.MaxObject
		}
		sizes[i] = s
	}
	return sizes
}

// Launch implements Workload, following a browser's two-phase load: the
// root document (the first object) is fetched alone over the first
// connection; only its arrival reveals the subresource URLs, which then
// fan out round-robin over the connection pool (per-connection FIFO
// queues, HTTP/1.1 persistent connections). done fires when the last
// object of the whole page arrives — the paper's page-load latency.
func (w WebPage) Launch(eng *sim.Engine, src *simrng.Source, open func() Conn, done func(at float64)) {
	if w.Objects <= 0 || w.Connections <= 0 {
		panic("workload: WebPage needs positive object and connection counts")
	}
	sizes := w.Sizes(src)
	conns := make([]Conn, w.Connections)
	for i := range conns {
		conns[i] = open()
	}
	remaining := len(sizes)
	var lastAt float64
	objDone := func(at float64) {
		remaining--
		if at > lastAt {
			lastAt = at
		}
		if remaining == 0 && done != nil {
			done(lastAt)
		}
	}
	conns[0].Get(sizes[0], func(at float64) {
		objDone(at)
		for i, size := range sizes[1:] {
			conns[i%len(conns)].Get(size, objDone)
		}
	})
}

// TotalBytes implements Workload; the draw is random, so this reports 0
// (unknown until Launch).
func (w WebPage) TotalBytes() units.ByteSize { return 0 }

// Streaming models chunked video playout — the "more statistically varied
// application traffic such as video streaming" of the paper's future work
// (§7). The player prebuffers BufferAhead chunks as fast as the network
// allows, then fetches one chunk per ChunkInterval of playout, idling in
// between. Those idle gaps are what make streaming interesting for energy:
// they repeatedly tickle the cellular tail timer.
type Streaming struct {
	// Chunks is the number of segments in the stream.
	Chunks int
	// ChunkSize is the size of one segment.
	ChunkSize units.ByteSize
	// ChunkInterval is the playout duration of one segment in seconds.
	ChunkInterval float64
	// BufferAhead is how many segments the player keeps buffered.
	BufferAhead int
}

// DefaultStreaming returns a two-minute stream: 60 segments of 2 s at a
// 4 Mbps video bitrate (1 MB per segment), 5 segments of buffer.
func DefaultStreaming() Streaming {
	return Streaming{
		Chunks:        60,
		ChunkSize:     units.MB,
		ChunkInterval: 2.0,
		BufferAhead:   5,
	}
}

// Duration returns the stream's playout length in seconds.
func (w Streaming) Duration() float64 {
	return float64(w.Chunks) * w.ChunkInterval
}

// Launch implements Workload: chunk i+1 is requested when chunk i arrives
// if the buffer is below BufferAhead, otherwise when playout frees a
// buffer slot. done fires when the final chunk arrives.
func (w Streaming) Launch(eng *sim.Engine, src *simrng.Source, open func() Conn, done func(at float64)) {
	if w.Chunks <= 0 || w.ChunkSize <= 0 || w.ChunkInterval <= 0 || w.BufferAhead < 1 {
		panic("workload: invalid Streaming configuration")
	}
	conn := open()
	playStart := -1.0
	var fetch func(i int)
	fetch = func(i int) {
		conn.Get(w.ChunkSize, func(at float64) {
			if playStart < 0 {
				// Playback begins when the first chunk lands.
				playStart = at
			}
			if i == w.Chunks-1 {
				if done != nil {
					done(at)
				}
				return
			}
			// Chunk i+1 may be buffered once chunk i+1−BufferAhead has
			// been played out; until then the player is prebuffering and
			// fetches immediately.
			slotFree := playStart + float64(i+2-w.BufferAhead)*w.ChunkInterval
			if slotFree <= at {
				fetch(i + 1)
				return
			}
			eng.Schedule(slotFree, func() { fetch(i + 1) })
		})
	}
	fetch(0)
}

// TotalBytes implements Workload.
func (w Streaming) TotalBytes() units.ByteSize {
	return units.ByteSize(w.Chunks) * w.ChunkSize
}
