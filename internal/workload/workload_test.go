package workload

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/simrng"
	"repro/internal/units"
)

// fakeConn completes every request after a simulated per-byte latency.
type fakeConn struct {
	eng  *sim.Engine
	rate float64 // bytes per second
	busy float64 // time the connection frees up
	got  []units.ByteSize
	put  []units.ByteSize
}

func (c *fakeConn) Get(size units.ByteSize, onComplete func(at float64)) {
	c.got = append(c.got, size)
	c.transfer(size, onComplete)
}

// Put uploads at the same fake rate.
func (c *fakeConn) Put(size units.ByteSize, onComplete func(at float64)) {
	c.put = append(c.put, size)
	c.transfer(size, onComplete)
}

func (c *fakeConn) transfer(size units.ByteSize, onComplete func(at float64)) {
	start := c.busy
	if now := c.eng.Now(); start < now {
		start = now
	}
	done := start + float64(size)/c.rate
	c.busy = done
	if onComplete != nil {
		c.eng.Schedule(done, func() { onComplete(done) })
	}
}

func TestFileDownload(t *testing.T) {
	eng := sim.New()
	conn := &fakeConn{eng: eng, rate: 1e6}
	var conns int
	open := func() Conn { conns++; return conn }
	doneAt := -1.0
	FileDownload{Size: 2 * units.MB}.Launch(eng, simrng.New(1), open, func(at float64) { doneAt = at })
	eng.Run()
	if conns != 1 {
		t.Errorf("opened %d connections, want 1", conns)
	}
	if len(conn.got) != 1 || conn.got[0] != 2*units.MB {
		t.Errorf("requests = %v", conn.got)
	}
	if doneAt <= 0 {
		t.Error("done callback never fired")
	}
	if got := (FileDownload{Size: 2 * units.MB}).TotalBytes(); got != 2*units.MB {
		t.Errorf("TotalBytes = %v", got)
	}
}

func TestBulkNeverCompletesRealistically(t *testing.T) {
	eng := sim.New()
	conn := &fakeConn{eng: eng, rate: 1e6}
	(Bulk{}).Launch(eng, simrng.New(1), func() Conn { return conn }, func(float64) {
		t.Error("bulk should not complete at realistic rates")
	})
	eng.RunUntil(10000)
	if (Bulk{}).TotalBytes() != 0 {
		t.Error("bulk TotalBytes should be 0 (unbounded)")
	}
}

func TestWebPageSizes(t *testing.T) {
	w := DefaultWebPage()
	sizes := w.Sizes(simrng.New(42))
	if len(sizes) != 107 {
		t.Fatalf("object count = %d, want 107", len(sizes))
	}
	var total units.ByteSize
	over := 0
	for _, s := range sizes {
		if s < w.MinObject || s > w.MaxObject {
			t.Fatalf("object size %v outside [%v, %v]", s, w.MinObject, w.MaxObject)
		}
		if s >= 256*units.KB {
			over++
		}
		total += s
	}
	// "Almost all objects are small (<256 KB)".
	if over > 10 {
		t.Errorf("%d/107 objects at the 256 KB cap, want few", over)
	}
	// A 2014 news home page: roughly 1–4 MB in total.
	if total < 500*units.KB || total > 8*units.MB {
		t.Errorf("page total = %v, want a realistic page weight", total)
	}
}

func TestWebPageSizesDeterministic(t *testing.T) {
	w := DefaultWebPage()
	a := w.Sizes(simrng.New(7))
	b := w.Sizes(simrng.New(7))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed size draws differ")
		}
	}
}

func TestWebPageLaunch(t *testing.T) {
	eng := sim.New()
	var conns []*fakeConn
	open := func() Conn {
		c := &fakeConn{eng: eng, rate: 1e6}
		conns = append(conns, c)
		return c
	}
	doneAt := -1.0
	w := DefaultWebPage()
	w.Launch(eng, simrng.New(3), open, func(at float64) { doneAt = at })
	eng.Run()
	if len(conns) != 6 {
		t.Fatalf("opened %d connections, want 6", len(conns))
	}
	total := 0
	for _, c := range conns {
		total += len(c.got)
		// Two-phase load: the root document rides connection 0, then 106
		// subresources round-robin → 17–19 objects per connection.
		if len(c.got) < 17 || len(c.got) > 19 {
			t.Errorf("connection got %d objects, want 17–19", len(c.got))
		}
	}
	if total != 107 {
		t.Errorf("total objects = %d, want 107", total)
	}
	if doneAt <= 0 {
		t.Error("page completion never fired")
	}
}

func TestWebPageDoneFiresAtLastObject(t *testing.T) {
	eng := sim.New()
	var latest float64
	open := func() Conn {
		c := &fakeConn{eng: eng, rate: 5e5}
		return connTracker{c, &latest}
	}
	doneAt := -1.0
	DefaultWebPage().Launch(eng, simrng.New(4), open, func(at float64) { doneAt = at })
	eng.Run()
	if doneAt != latest {
		t.Errorf("done at %v, last object at %v", doneAt, latest)
	}
}

type connTracker struct {
	inner  *fakeConn
	latest *float64
}

func (c connTracker) Get(size units.ByteSize, onComplete func(at float64)) {
	c.inner.Get(size, c.wrap(onComplete))
}

func (c connTracker) Put(size units.ByteSize, onComplete func(at float64)) {
	c.inner.Put(size, c.wrap(onComplete))
}

func (c connTracker) wrap(onComplete func(at float64)) func(at float64) {
	return func(at float64) {
		if at > *c.latest {
			*c.latest = at
		}
		if onComplete != nil {
			onComplete(at)
		}
	}
}

func TestWebPagePanicsOnBadConfig(t *testing.T) {
	eng := sim.New()
	w := WebPage{Objects: 0, Connections: 6, MinObject: units.KB, MaxObject: units.MB, ParetoAlpha: 1}
	defer func() {
		if recover() == nil {
			t.Error("zero-object page did not panic")
		}
	}()
	w.Launch(eng, simrng.New(1), func() Conn { return &fakeConn{eng: eng, rate: 1} }, nil)
}

func TestFileUpload(t *testing.T) {
	eng := sim.New()
	conn := &fakeConn{eng: eng, rate: 1e6}
	doneAt := -1.0
	(FileUpload{Size: units.MB}).Launch(eng, simrng.New(1), func() Conn { return conn }, func(at float64) { doneAt = at })
	eng.Run()
	if len(conn.put) != 1 || conn.put[0] != units.MB {
		t.Errorf("uploads = %v, want one 1 MB Put", conn.put)
	}
	if len(conn.got) != 0 {
		t.Errorf("upload workload issued Gets: %v", conn.got)
	}
	if doneAt <= 0 {
		t.Error("upload completion never fired")
	}
	if (FileUpload{Size: units.MB}).TotalBytes() != units.MB {
		t.Error("TotalBytes wrong")
	}
}

func TestStreamingPacing(t *testing.T) {
	eng := sim.New()
	conn := &fakeConn{eng: eng, rate: 4e6} // 4 MB/s: chunks fetch in 0.25 s
	w := DefaultStreaming()
	doneAt := -1.0
	w.Launch(eng, simrng.New(2), func() Conn { return conn }, func(at float64) { doneAt = at })
	eng.Run()
	if len(conn.got) != w.Chunks {
		t.Fatalf("fetched %d chunks, want %d", len(conn.got), w.Chunks)
	}
	// Steady state paces at one chunk per interval, so total time is
	// close to the playout duration (minus the prebuffered tail).
	wantMin := w.Duration() - float64(w.BufferAhead+2)*w.ChunkInterval
	if doneAt < wantMin {
		t.Errorf("stream done at %.1f s, want ≥ %.1f (pacing, not burst)", doneAt, wantMin)
	}
	if doneAt > w.Duration()+5 {
		t.Errorf("stream done at %.1f s, playout is only %.1f", doneAt, w.Duration())
	}
}

func TestStreamingStallsOnSlowLink(t *testing.T) {
	// Below the video bitrate the stream takes longer than playout.
	eng := sim.New()
	conn := &fakeConn{eng: eng, rate: 2.5e5} // 2 Mbps < 4 Mbps bitrate
	w := DefaultStreaming()
	doneAt := -1.0
	w.Launch(eng, simrng.New(3), func() Conn { return conn }, func(at float64) { doneAt = at })
	eng.Run()
	if doneAt <= w.Duration() {
		t.Errorf("underprovisioned stream finished at %.1f s, playout %.1f", doneAt, w.Duration())
	}
}

func TestStreamingDuration(t *testing.T) {
	w := DefaultStreaming()
	if w.Duration() != 120 {
		t.Errorf("default stream duration = %v, want 120 s", w.Duration())
	}
	if w.TotalBytes() != 60*units.MB {
		t.Errorf("total = %v, want 60 MB", w.TotalBytes())
	}
}

func TestStreamingPanicsOnBadConfig(t *testing.T) {
	eng := sim.New()
	defer func() {
		if recover() == nil {
			t.Error("invalid streaming config did not panic")
		}
	}()
	(Streaming{Chunks: 0, ChunkSize: 1, ChunkInterval: 1, BufferAhead: 1}).Launch(
		eng, simrng.New(1), func() Conn { return &fakeConn{eng: eng, rate: 1} }, nil)
}

func TestWebPageTwoPhaseLoad(t *testing.T) {
	// The subresources must not be requested before the root document
	// arrives: with a slow root fetch, connections 1..5 stay empty until
	// then.
	eng := sim.New()
	var conns []*fakeConn
	open := func() Conn {
		c := &fakeConn{eng: eng, rate: 1e5} // slow: root takes a while
		conns = append(conns, c)
		return c
	}
	w := DefaultWebPage()
	w.Launch(eng, simrng.New(9), open, nil)
	// Before the engine runs, only the root request exists.
	total := 0
	for _, c := range conns {
		total += len(c.got)
	}
	if total != 1 {
		t.Fatalf("requests before root arrival = %d, want 1 (the document)", total)
	}
	eng.Run()
	total = 0
	for _, c := range conns {
		total += len(c.got)
	}
	if total != w.Objects {
		t.Errorf("total objects = %d, want %d", total, w.Objects)
	}
}
