package runcache

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlightStatsConsistentUnderHammer hammers a single key from N
// goroutines while concurrent readers poll FlightStats, asserting the
// counters are race-safe (run under -race in CI) and that every observed
// snapshot is consistent: waits never exceed hits, hits imply a counted
// miss, and the totals settle to exactly one miss and N−1 hits.
func TestFlightStatsConsistentUnderHammer(t *testing.T) {
	const (
		workers = 32
		rounds  = 50
	)
	for round := 0; round < rounds; round++ {
		c := New[int]()
		key := Key{byte(round), byte(round >> 8)}
		var computes atomic.Int64

		stop := make(chan struct{})
		var readers sync.WaitGroup
		for r := 0; r < 4; r++ {
			readers.Add(1)
			go func() {
				defer readers.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					hits, misses, waits := c.FlightStats()
					if waits > hits {
						t.Errorf("torn snapshot: waits=%d > hits=%d", waits, hits)
						return
					}
					if hits > 0 && misses == 0 {
						t.Errorf("torn snapshot: %d hits with no miss", hits)
						return
					}
					if misses > 1 {
						t.Errorf("single key computed %d times", misses)
						return
					}
				}
			}()
		}

		var wg sync.WaitGroup
		start := make(chan struct{})
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				v := c.Do(key, func() int {
					computes.Add(1)
					time.Sleep(100 * time.Microsecond) // widen the in-flight window
					return 42
				})
				if v != 42 {
					t.Errorf("got %d, want 42", v)
				}
			}()
		}
		close(start)
		wg.Wait()
		close(stop)
		readers.Wait()

		if n := computes.Load(); n != 1 {
			t.Fatalf("compute ran %d times, want 1", n)
		}
		hits, misses, waits := c.FlightStats()
		if misses != 1 || hits != workers-1 {
			t.Fatalf("settled stats hits=%d misses=%d, want %d and 1", hits, misses, workers-1)
		}
		if waits > hits {
			t.Fatalf("settled waits=%d > hits=%d", waits, hits)
		}
	}
}
