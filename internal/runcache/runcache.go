// Package runcache memoizes simulation results across experiments.
//
// Experiment grids re-run the same (scenario, protocol, seed) triple
// many times: section tables share baselines, ablations share the
// untouched arm, and repeated-seed aggregation re-visits identical
// configurations when grids overlap. The cache is a sharded,
// single-flight, content-keyed map from a canonical digest of the run
// inputs to the finished result, so each distinct simulation executes
// exactly once per process no matter how many tables ask for it.
//
// Correctness rests on runs being pure functions of their digested
// inputs: the scenario package only consults the cache for scenarios
// whose construction it controls (see Scenario.cacheKey), and a cached
// result is returned by value, never aliased.
package runcache

import (
	"sync"
	"sync/atomic"
)

// Key is a canonical content digest of one run's inputs — in practice a
// SHA-256 of the scenario configuration, protocol, seed, and options.
type Key [32]byte

const shardCount = 16

// entry is a single-flight slot. The first caller closes done after
// publishing val; latecomers block on done. A panic in the compute
// function is recorded and re-thrown to every waiter so a poisoned
// entry does not hang the grid.
type entry[V any] struct {
	done     chan struct{}
	val      V
	panicked any
}

type shard[V any] struct {
	mu sync.Mutex
	m  map[Key]*entry[V]
}

// Cache memoizes values of type V under content Keys. The zero value is
// not usable; call New. A nil *Cache is a valid "caching disabled"
// sentinel: Do on a nil receiver just calls the compute function.
type Cache[V any] struct {
	shards [shardCount]shard[V]

	// Statistics are lock-free atomics so the hot path never serializes
	// on a counter mutex; FlightStats assembles a consistent snapshot.
	nHit  atomic.Uint64
	nMiss atomic.Uint64
	nWait atomic.Uint64 // hits that blocked on an in-flight compute
}

// New returns an empty cache.
func New[V any]() *Cache[V] {
	c := &Cache[V]{}
	for i := range c.shards {
		c.shards[i].m = make(map[Key]*entry[V])
	}
	return c
}

// Do returns the cached value for k, computing it with fn on first use.
// Concurrent calls with the same key run fn once and share the result.
// If fn panics, the panic propagates to every caller waiting on that
// key, and the entry stays poisoned (repeating the panic) — a panicking
// run is a bug, not a transient.
func (c *Cache[V]) Do(k Key, fn func() V) V {
	if c == nil {
		return fn()
	}
	sh := &c.shards[k[0]%shardCount]
	sh.mu.Lock()
	e, ok := sh.m[k]
	if !ok {
		e = &entry[V]{done: make(chan struct{})}
		sh.m[k] = e
	}
	sh.mu.Unlock()

	if ok {
		// Distinguish settled hits from single-flight waits: a wait means
		// another goroutine is computing this key right now, which is the
		// signal -v surfaces for how much duplicate work the cache merged.
		waited := false
		select {
		case <-e.done:
		default:
			waited = true
			<-e.done
		}
		// Count the hit before the wait: FlightStats reads waits before
		// hits, so "waits ≤ hits" holds at every instant.
		c.nHit.Add(1)
		if waited {
			c.nWait.Add(1)
		}
		if e.panicked != nil {
			panic(e.panicked)
		}
		return e.val
	}

	c.nMiss.Add(1)
	defer func() {
		if r := recover(); r != nil {
			e.panicked = r
			close(e.done)
			panic(r)
		}
	}()
	e.val = fn()
	close(e.done)
	return e.val
}

// Stats reports the number of cache hits and misses so far. Safe to
// call concurrently with Do.
func (c *Cache[V]) Stats() (hits, misses uint64) {
	hits, misses, _ = c.FlightStats()
	return hits, misses
}

// FlightStats reports hits, misses, and single-flight waits — hits that
// arrived while the key was still computing and blocked for the shared
// result instead of recomputing it. Safe to call concurrently with Do.
//
// The counters are independent atomics, so a naive three-load read could
// tear: a Do between loads would show, say, the wait without its hit.
// FlightStats double-reads until the triple is stable, which yields a
// snapshot no concurrent reporter (emptcpsim -v, the serve-mode progress
// endpoint) can observe mid-update. The load order — waits, then hits,
// then misses — additionally preserves the structural invariants
// (waits ≤ hits; every hit's miss already counted) even on the bounded
// fallback under pathological contention.
func (c *Cache[V]) FlightStats() (hits, misses, waits uint64) {
	if c == nil {
		return 0, 0, 0
	}
	w, h, m := c.nWait.Load(), c.nHit.Load(), c.nMiss.Load()
	for i := 0; i < 64; i++ {
		w2, h2, m2 := c.nWait.Load(), c.nHit.Load(), c.nMiss.Load()
		if w == w2 && h == h2 && m == m2 {
			break
		}
		w, h, m = w2, h2, m2
	}
	return h, m, w
}

// Len reports the number of distinct keys resident in the cache,
// including in-flight entries.
func (c *Cache[V]) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}
