// Disk backend: a persistent content-addressed store under the same
// sha256 Keys the in-process cache uses, so campaigns dedupe and resume
// across invocations. The format is crash-safe by construction:
// append-only segment files of self-checking records, an in-memory index
// rebuilt on open, and torn tails (a crash mid-append) truncated during
// recovery. Values are opaque bytes; the caller owns the codec (the
// campaign layer encodes scenario.Results), which keeps the store
// generic and the on-disk format independent of Go struct layout.
//
// Record layout (little-endian):
//
//	[4B magic "eMPc"] [32B key] [4B value length] [value] [4B crc32]
//
// where the crc covers key, length, and value. Records are immutable
// once written; a key is stored at most once (first write wins — values
// are pure functions of their content key, so rewrites are identical).
package runcache

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// storeShards stripes the index so concurrent Gets from many campaign
// workers don't serialise on one lock (keys are sha256 digests, so the
// low byte is uniform).
const storeShards = 64

// storeShard is one stripe of the key→location index.
type storeShard struct {
	mu    sync.RWMutex
	index map[Key]diskLoc
}

var diskMagic = [4]byte{'e', 'M', 'P', 'c'}

// maxSegmentSize is the rotation threshold for the active segment.
const maxSegmentSize = 64 << 20

// recHeaderSize is magic + key + value length.
const recHeaderSize = 4 + 32 + 4

// diskLoc locates one stored value inside a segment.
type diskLoc struct {
	seg  int32  // index into Store.segs
	off  int64  // offset of the value bytes
	size uint32 // value length
}

// Store is the disk tier. It is safe for concurrent use. Get touches no
// store-wide lock: the index lookup takes one shard's read lock for a
// map probe, the segment table is an atomically-published immutable
// snapshot, and the value itself is a positioned read (pread) on the
// segment file with no lock held at all — so parallel readers scale with
// cores instead of convoying on a single mutex
// (BenchmarkStoreGetParallel). Put serializes on the active segment.
type Store struct {
	dir string

	shards [storeShards]storeShard // key→location, striped by key[0]

	// segs is a copy-on-write snapshot of all segment read handles; the
	// last entry is the active segment. Readers Load it without locking;
	// rotateLocked publishes a fresh copy under segMu.
	segs atomic.Pointer[[]*os.File]

	segMu  sync.Mutex // guards active, size, count, rotation, and Put append order
	active *os.File   // append handle for the last segment
	size   int64      // current size of the active segment
	count  int        // distinct keys stored (mirrors the shard maps)

	nGet, nGetHit, nPut atomic.Uint64
}

func (s *Store) shard(k Key) *storeShard { return &s.shards[k[0]%storeShards] }

// lookup probes the striped index.
func (s *Store) lookup(k Key) (diskLoc, bool) {
	sh := s.shard(k)
	sh.mu.RLock()
	loc, ok := sh.index[k]
	sh.mu.RUnlock()
	return loc, ok
}

// nSegs reports the current segment count from the published snapshot.
func (s *Store) nSegs() int {
	if p := s.segs.Load(); p != nil {
		return len(*p)
	}
	return 0
}

// appendSeg publishes a new segment-table snapshot with f appended.
// Callers hold segMu (or own the store exclusively, as OpenStore does).
func (s *Store) appendSeg(f *os.File) {
	var cur []*os.File
	if p := s.segs.Load(); p != nil {
		cur = *p
	}
	next := make([]*os.File, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = f
	s.segs.Store(&next)
}

// OpenStore opens (creating if needed) the disk cache rooted at dir and
// rebuilds the in-memory index from the segment files. A torn record at
// the tail of any segment — the footprint of a crash mid-append — is
// truncated away; everything before it is kept.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runcache: open store: %w", err)
	}
	names, err := filepath.Glob(filepath.Join(dir, "cache-*.seg"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	s := &Store{dir: dir}
	for i := range s.shards {
		s.shards[i].index = make(map[Key]diskLoc)
	}
	for _, name := range names {
		f, err := os.OpenFile(name, os.O_RDWR, 0o644)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("runcache: open segment: %w", err)
		}
		end, err := s.recoverSegment(f, int32(s.nSegs()))
		if err != nil {
			f.Close()
			s.Close()
			return nil, err
		}
		s.appendSeg(f)
		s.size = end
		s.active = f
	}
	if s.nSegs() == 0 {
		if err := s.rotateLocked(); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// recoverSegment scans one segment sequentially, indexing every intact
// record and truncating the file at the first torn or corrupt one.
func (s *Store) recoverSegment(f *os.File, segIdx int32) (int64, error) {
	r := io.Reader(f)
	var off int64
	hdr := make([]byte, recHeaderSize)
	var val []byte
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			break // clean EOF or torn header: truncate here
		}
		if [4]byte(hdr[:4]) != diskMagic {
			break
		}
		n := binary.LittleEndian.Uint32(hdr[36:40])
		if cap(val) < int(n)+4 {
			val = make([]byte, n+4)
		}
		val = val[:n+4]
		if _, err := io.ReadFull(r, val); err != nil {
			break
		}
		crc := crc32.NewIEEE()
		crc.Write(hdr[4:]) // key + length
		crc.Write(val[:n])
		if crc.Sum32() != binary.LittleEndian.Uint32(val[n:]) {
			break
		}
		var k Key
		copy(k[:], hdr[4:36])
		sh := s.shard(k)
		if _, dup := sh.index[k]; !dup {
			sh.index[k] = diskLoc{seg: segIdx, off: off + recHeaderSize, size: n}
			s.count++
		}
		off += recHeaderSize + int64(n) + 4
	}
	if err := f.Truncate(off); err != nil {
		return 0, fmt.Errorf("runcache: truncating torn tail: %w", err)
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return 0, err
	}
	return off, nil
}

// rotateLocked starts a fresh active segment. Callers hold segMu (or
// own the store exclusively, as OpenStore does).
func (s *Store) rotateLocked() error {
	name := filepath.Join(s.dir, fmt.Sprintf("cache-%06d.seg", s.nSegs()+1))
	f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("runcache: new segment: %w", err)
	}
	s.appendSeg(f)
	s.active = f
	s.size = 0
	return nil
}

// Get returns the stored value for k, or ok=false when absent. The
// returned slice is freshly allocated and owned by the caller. The
// index probe holds one shard's read lock for a map lookup only; the
// value read is a pread on the segment file with no lock held, so
// concurrent Gets proceed fully in parallel (records are immutable once
// indexed, and the segment snapshot that indexed them is never
// unpublished while the store is open).
func (s *Store) Get(k Key) ([]byte, bool, error) {
	if s == nil {
		return nil, false, nil
	}
	s.nGet.Add(1)
	loc, ok := s.lookup(k)
	if !ok {
		return nil, false, nil
	}
	f := (*s.segs.Load())[loc.seg]
	v := make([]byte, loc.size)
	if _, err := f.ReadAt(v, loc.off); err != nil {
		return nil, false, fmt.Errorf("runcache: reading value: %w", err)
	}
	s.nGetHit.Add(1)
	return v, true, nil
}

// Has reports whether k is stored, without reading the value.
func (s *Store) Has(k Key) bool {
	if s == nil {
		return false
	}
	_, ok := s.lookup(k)
	return ok
}

// Put appends (k, v) to the active segment. Storing a key that is
// already present is a no-op: values are content-addressed, so a
// duplicate write is by definition identical.
func (s *Store) Put(k Key, v []byte) error {
	if s == nil {
		return nil
	}
	s.segMu.Lock()
	defer s.segMu.Unlock()
	if _, dup := s.lookup(k); dup { // Puts serialize on segMu, so this check is atomic
		return nil
	}
	if s.size >= maxSegmentSize {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	rec := make([]byte, recHeaderSize+len(v)+4)
	copy(rec[:4], diskMagic[:])
	copy(rec[4:36], k[:])
	binary.LittleEndian.PutUint32(rec[36:40], uint32(len(v)))
	copy(rec[recHeaderSize:], v)
	crc := crc32.NewIEEE()
	crc.Write(rec[4:recHeaderSize])
	crc.Write(v)
	binary.LittleEndian.PutUint32(rec[recHeaderSize+len(v):], crc.Sum32())
	if _, err := s.active.Write(rec); err != nil {
		return fmt.Errorf("runcache: appending record: %w", err)
	}
	loc := diskLoc{seg: int32(s.nSegs() - 1), off: s.size + recHeaderSize, size: uint32(len(v))}
	sh := s.shard(k)
	sh.mu.Lock()
	sh.index[k] = loc
	sh.mu.Unlock()
	s.count++
	s.size += int64(len(rec))
	s.nPut.Add(1)
	return nil
}

// Len reports the number of distinct keys stored.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.segMu.Lock()
	defer s.segMu.Unlock()
	return s.count
}

// DiskStats reports lookups, lookup hits, and appended records since
// open. Safe to call concurrently.
func (s *Store) DiskStats() (gets, hits, puts uint64) {
	if s == nil {
		return 0, 0, 0
	}
	return s.nGet.Load(), s.nGetHit.Load(), s.nPut.Load()
}

// Sync flushes the active segment to stable storage — the checkpoint
// operation graceful shutdown relies on.
func (s *Store) Sync() error {
	if s == nil {
		return nil
	}
	s.segMu.Lock()
	defer s.segMu.Unlock()
	if s.active == nil {
		return nil
	}
	return s.active.Sync()
}

// Close syncs and releases every segment handle. The store must not be
// used afterwards.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.segMu.Lock()
	defer s.segMu.Unlock()
	var first error
	if s.active != nil {
		if err := s.active.Sync(); err != nil {
			first = err
		}
	}
	if p := s.segs.Load(); p != nil {
		for _, f := range *p {
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	s.segs.Store(&[]*os.File{})
	s.active = nil
	return first
}

// Flight is a non-retaining single-flight: concurrent Do calls with the
// same key run fn once and share its result, and the key is forgotten as
// soon as the flight lands. It is the coordination layer between the
// disk store (which persists results) and a campaign's workers (which
// must not simulate the same key twice concurrently) — unlike Cache it
// holds no values, so memory stays bounded by the number of in-flight
// keys, not distinct ones.
type Flight[V any] struct {
	mu sync.Mutex
	m  map[Key]*flightCall[V]
}

type flightCall[V any] struct {
	done     chan struct{}
	val      V
	panicked any
}

// NewFlight returns an empty flight group.
func NewFlight[V any]() *Flight[V] {
	return &Flight[V]{m: make(map[Key]*flightCall[V])}
}

// Do returns fn's result for k, running it once across concurrent
// callers. A panic in fn propagates to every caller of that flight;
// subsequent calls with the same key start a fresh flight.
func (g *Flight[V]) Do(k Key, fn func() V) V {
	g.mu.Lock()
	if c, ok := g.m[k]; ok {
		g.mu.Unlock()
		<-c.done
		if c.panicked != nil {
			panic(c.panicked)
		}
		return c.val
	}
	c := &flightCall[V]{done: make(chan struct{})}
	g.m[k] = c
	g.mu.Unlock()

	defer func() {
		g.mu.Lock()
		delete(g.m, k)
		g.mu.Unlock()
		if r := recover(); r != nil {
			c.panicked = r
			close(c.done)
			panic(r)
		}
		close(c.done)
	}()
	c.val = fn()
	return c.val
}
