package runcache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

func testKey(i int) Key {
	var k Key
	k[0], k[1], k[2] = byte(i), byte(i>>8), byte(i>>16)
	return k
}

func TestDiskStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const n = 100
	for i := 0; i < n; i++ {
		if err := s.Put(testKey(i), []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != n {
		t.Fatalf("Len=%d want %d", s.Len(), n)
	}
	for i := 0; i < n; i++ {
		v, ok, err := s.Get(testKey(i))
		if err != nil || !ok {
			t.Fatalf("Get(%d): ok=%v err=%v", i, ok, err)
		}
		if want := fmt.Sprintf("value-%d", i); string(v) != want {
			t.Fatalf("Get(%d)=%q want %q", i, v, want)
		}
	}
	if _, ok, _ := s.Get(testKey(n + 5)); ok {
		t.Fatal("absent key reported present")
	}
	// Duplicate put is a no-op.
	if err := s.Put(testKey(0), []byte("different")); err != nil {
		t.Fatal(err)
	}
	v, _, _ := s.Get(testKey(0))
	if string(v) != "value-0" {
		t.Fatalf("duplicate put overwrote: %q", v)
	}
	gets, hits, puts := s.DiskStats()
	if puts != n {
		t.Errorf("puts=%d want %d", puts, n)
	}
	if gets != n+2 || hits != n+1 {
		t.Errorf("gets=%d hits=%d want %d and %d", gets, hits, n+2, n+1)
	}
}

func TestDiskStoreReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := s.Put(testKey(i), bytes.Repeat([]byte{byte(i)}, i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 50 {
		t.Fatalf("reopened Len=%d want 50", s2.Len())
	}
	for i := 0; i < 50; i++ {
		v, ok, err := s2.Get(testKey(i))
		if err != nil || !ok {
			t.Fatalf("reopened Get(%d): ok=%v err=%v", i, ok, err)
		}
		if !bytes.Equal(v, bytes.Repeat([]byte{byte(i)}, i+1)) {
			t.Fatalf("reopened Get(%d) corrupted", i)
		}
	}
	// The reopened store keeps appending to the same key space.
	if err := s2.Put(testKey(1000), []byte("after reopen")); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := s2.Get(testKey(1000))
	if !ok || string(v) != "after reopen" {
		t.Fatal("append after reopen failed")
	}
}

// TestDiskStoreTornTailRecovery simulates a crash mid-append: bytes
// chopped off the segment tail, and garbage appended after valid
// records. Recovery must keep every intact record and truncate the rest.
func TestDiskStoreTornTailRecovery(t *testing.T) {
	for _, chop := range []int{1, 3, 7, 20, 39} {
		t.Run(fmt.Sprintf("chop-%d", chop), func(t *testing.T) {
			dir := t.TempDir()
			s, err := OpenStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				if err := s.Put(testKey(i), []byte(fmt.Sprintf("v%02d", i))); err != nil {
					t.Fatal(err)
				}
			}
			s.Close()

			seg := filepath.Join(dir, "cache-000001.seg")
			raw, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(seg, raw[:len(raw)-chop], 0o644); err != nil {
				t.Fatal(err)
			}

			s2, err := OpenStore(dir)
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			defer s2.Close()
			if s2.Len() != 9 {
				t.Fatalf("after chopping %dB of the last record: Len=%d want 9", chop, s2.Len())
			}
			for i := 0; i < 9; i++ {
				v, ok, err := s2.Get(testKey(i))
				if err != nil || !ok || string(v) != fmt.Sprintf("v%02d", i) {
					t.Fatalf("record %d lost in recovery: %q ok=%v err=%v", i, v, ok, err)
				}
			}
			// The truncated key is writable again.
			if err := s2.Put(testKey(9), []byte("rewritten")); err != nil {
				t.Fatal(err)
			}
			if v, ok, _ := s2.Get(testKey(9)); !ok || string(v) != "rewritten" {
				t.Fatal("rewrite after recovery failed")
			}
		})
	}
}

func TestDiskStoreGarbageTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s.Put(testKey(i), []byte("good"))
	}
	s.Close()
	seg := filepath.Join(dir, "cache-000001.seg")
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(bytes.Repeat([]byte{0xFF}, 123)) // wrong magic → truncated
	f.Close()

	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 5 {
		t.Fatalf("Len=%d want 5", s2.Len())
	}
}

// TestDiskStoreCorruptValueDropped flips a bit inside a record's value;
// the crc must reject it (and, being append-only, everything after it).
func TestDiskStoreCorruptValueDropped(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Put(testKey(0), []byte("aaaa"))
	s.Put(testKey(1), []byte("bbbb"))
	s.Close()
	seg := filepath.Join(dir, "cache-000001.seg")
	raw, _ := os.ReadFile(seg)
	raw[recHeaderSize+1] ^= 0x01 // corrupt record 0's value
	os.WriteFile(seg, raw, 0o644)

	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 0 {
		t.Fatalf("Len=%d want 0 (corruption truncates from the bad record)", s2.Len())
	}
}

// TestDiskStoreMidSegmentCorruptionRecovery flips a bit in a record in
// the MIDDLE of a segment, with more good records after it in the same
// segment and a whole later segment behind that. The store is
// append-only, so recovery cannot resynchronise past a bad crc: it must
// drop the corrupt record and every record after it in that segment,
// keep the later segment intact, and accept first-write-wins re-appends
// of the dropped keys.
func TestDiskStoreMidSegmentCorruptionRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Segment 1: records 0..7. Segment 2: records 8..11.
	for i := 0; i < 8; i++ {
		if err := s.Put(testKey(i), []byte(fmt.Sprintf("v%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.segMu.Lock()
	err = s.rotateLocked()
	s.segMu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	for i := 8; i < 12; i++ {
		if err := s.Put(testKey(i), []byte(fmt.Sprintf("v%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Flip one value bit in record 3 of segment 1. Every record here is
	// recHeaderSize + 3 (value) + 4 (crc) bytes.
	seg := filepath.Join(dir, "cache-000001.seg")
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	recSize := recHeaderSize + 3 + 4
	raw[3*recSize+recHeaderSize+1] ^= 0x01
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer s2.Close()

	// Records 0..2 survive, 3..7 are gone, segment 2's 8..11 survive.
	if s2.Len() != 7 {
		t.Fatalf("Len=%d want 7 (3 before the bad record + 4 in the next segment)", s2.Len())
	}
	for i := 0; i < 12; i++ {
		v, ok, err := s2.Get(testKey(i))
		if err != nil {
			t.Fatal(err)
		}
		wantOK := i < 3 || i >= 8
		if ok != wantOK {
			t.Errorf("record %d: present=%v want %v", i, ok, wantOK)
		}
		if ok && string(v) != fmt.Sprintf("v%02d", i) {
			t.Errorf("record %d: %q", i, v)
		}
	}

	// The dropped keys re-append (first write wins again), and a put of a
	// surviving key stays a no-op.
	for i := 3; i < 8; i++ {
		if err := s2.Put(testKey(i), []byte(fmt.Sprintf("r%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s2.Put(testKey(0), []byte("clobber")); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := s2.Get(testKey(0)); !ok || string(v) != "v00" {
		t.Fatalf("surviving key overwritten: %q", v)
	}
	if v, ok, _ := s2.Get(testKey(5)); !ok || string(v) != "r05" {
		t.Fatalf("re-appended key not readable: %q ok=%v", v, ok)
	}
	s2.Close()

	// A third open sees the repaired state in full.
	s3, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Len() != 12 {
		t.Fatalf("after repair Len=%d want 12", s3.Len())
	}
	if v, ok, _ := s3.Get(testKey(6)); !ok || string(v) != "r06" {
		t.Fatalf("repaired record lost on reopen: %q ok=%v", v, ok)
	}
}

func TestDiskStoreConcurrent(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	const workers, perWorker = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				k := testKey(i) // all workers collide on the same keys
				if err := s.Put(k, []byte(fmt.Sprintf("v%d", i))); err != nil {
					t.Error(err)
					return
				}
				v, ok, err := s.Get(k)
				if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
					t.Errorf("concurrent get %d: %q ok=%v err=%v", i, v, ok, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != perWorker {
		t.Fatalf("Len=%d want %d", s.Len(), perWorker)
	}
}

func TestDiskStoreNilSafe(t *testing.T) {
	var s *Store
	if err := s.Put(testKey(1), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(testKey(1)); ok || err != nil {
		t.Fatal("nil store should miss")
	}
	if s.Has(testKey(1)) || s.Len() != 0 {
		t.Fatal("nil store should be empty")
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFlightSingleFlight(t *testing.T) {
	g := NewFlight[int]()
	var computes atomic.Int64
	var wg sync.WaitGroup
	const workers = 16
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v := g.Do(testKey(1), func() int {
				computes.Add(1)
				return 7
			})
			if v != 7 {
				t.Errorf("got %d", v)
			}
		}()
	}
	close(start)
	wg.Wait()
	if n := computes.Load(); n < 1 || n > workers {
		t.Fatalf("computes=%d", n)
	}
	// After the flight lands the key is forgotten: a fresh Do recomputes.
	before := computes.Load()
	g.Do(testKey(1), func() int { computes.Add(1); return 7 })
	if computes.Load() != before+1 {
		t.Fatal("landed flight should not retain its result")
	}
}

func TestFlightPanicPropagatesAndClears(t *testing.T) {
	g := NewFlight[int]()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		g.Do(testKey(2), func() int { panic("boom") })
	}()
	// The failed flight must not poison later calls.
	if v := g.Do(testKey(2), func() int { return 3 }); v != 3 {
		t.Fatalf("got %d after panic, want 3", v)
	}
}

// BenchmarkStoreGetParallel measures concurrent Get throughput — the
// distributed-campaign replay pattern, where every worker goroutine
// hammers the store with key lookups + positioned value reads. The
// striped index and lock-free segment snapshot keep parallel readers
// off each other's locks; before the striping, every Get serialised on
// one store-wide mutex.
func BenchmarkStoreGetParallel(b *testing.B) {
	s, err := OpenStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	const n = 4096
	val := bytes.Repeat([]byte{0xA5}, 128) // ~a campaign result record
	for i := 0; i < n; i++ {
		if err := s.Put(testKey(i), val); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			v, ok, err := s.Get(testKey(i % n))
			if err != nil || !ok || len(v) != len(val) {
				b.Errorf("Get: ok=%v err=%v", ok, err)
				return
			}
			i++
		}
	})
}

// BenchmarkStoreGetSerial is the single-goroutine baseline for the
// parallel benchmark above.
func BenchmarkStoreGetSerial(b *testing.B) {
	s, err := OpenStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	const n = 4096
	val := bytes.Repeat([]byte{0xA5}, 128)
	for i := 0; i < n; i++ {
		if err := s.Put(testKey(i), val); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, ok, err := s.Get(testKey(i % n))
		if err != nil || !ok || len(v) != len(val) {
			b.Fatalf("Get: ok=%v err=%v", ok, err)
		}
	}
}
