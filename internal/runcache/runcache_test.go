package runcache

import (
	"sync"
	"sync/atomic"
	"testing"
)

func key(b byte) Key {
	var k Key
	k[0] = b
	k[31] = b ^ 0xff
	return k
}

func TestDoMemoizes(t *testing.T) {
	c := New[int]()
	calls := 0
	for i := 0; i < 5; i++ {
		got := c.Do(key(1), func() int { calls++; return 42 })
		if got != 42 {
			t.Fatalf("Do = %d, want 42", got)
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	if got := c.Do(key(2), func() int { calls++; return 7 }); got != 7 {
		t.Fatalf("Do = %d, want 7", got)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2", calls)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	hits, misses := c.Stats()
	if hits != 4 || misses != 2 {
		t.Fatalf("Stats = (%d, %d), want (4, 2)", hits, misses)
	}
}

func TestDoSingleFlight(t *testing.T) {
	c := New[int]()
	var calls atomic.Int32
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]int, 8)
	// First caller blocks inside fn; the rest must wait, not recompute.
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0] = c.Do(key(3), func() int {
			calls.Add(1)
			close(started)
			<-release
			return 99
		})
	}()
	<-started
	for i := 1; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = c.Do(key(3), func() int {
				calls.Add(1)
				return -1
			})
		}(i)
	}
	close(release)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	for i, r := range results {
		if r != 99 {
			t.Fatalf("results[%d] = %d, want 99", i, r)
		}
	}
}

func TestDoPanicPropagates(t *testing.T) {
	c := New[int]()
	boom := func() int { panic("boom") }
	for i := 0; i < 2; i++ {
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Fatalf("call %d: recovered %v, want boom", i, r)
				}
			}()
			c.Do(key(4), boom)
			t.Fatalf("call %d: Do returned instead of panicking", i)
		}()
	}
}

func TestNilCacheComputes(t *testing.T) {
	var c *Cache[string]
	if got := c.Do(key(5), func() string { return "direct" }); got != "direct" {
		t.Fatalf("nil Do = %q", got)
	}
	if c.Len() != 0 {
		t.Fatalf("nil Len = %d", c.Len())
	}
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatalf("nil Stats = (%d, %d)", h, m)
	}
}
