package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestByteSizeConversions(t *testing.T) {
	if got := (1 * MB).Bytes(); got != 1048576 {
		t.Errorf("1 MB = %v bytes, want 1048576", got)
	}
	if got := (1 * KB).Bits(); got != 8192 {
		t.Errorf("1 KB = %v bits, want 8192", got)
	}
	if got := (256 * MB).Megabytes(); got != 256 {
		t.Errorf("256 MB = %v MB, want 256", got)
	}
}

func TestByteSizeString(t *testing.T) {
	cases := []struct {
		in   ByteSize
		want string
	}{
		{512 * Byte, "512 B"},
		{256 * KB, "256.0 KB"},
		{16 * MB, "16.0 MB"},
		{2 * GB, "2.00 GB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestBitRateConversions(t *testing.T) {
	if got := MbpsRate(10).Mbit(); got != 10 {
		t.Errorf("MbpsRate(10).Mbit() = %v, want 10", got)
	}
	if got := MbpsRate(8).BytesPerSecond(); got != 1e6 {
		t.Errorf("8 Mbps = %v B/s, want 1e6", got)
	}
}

func TestTimeToSend(t *testing.T) {
	// 1 MB at 8 Mbps is ~1.048576 s (binary MB, decimal Mbps).
	d := MbpsRate(8).TimeToSend(1 * MB)
	if !almostEqual(d.Seconds(), 1.048576, 1e-9) {
		t.Errorf("1MB @ 8Mbps = %v, want ~1.048576s", d)
	}
	if d := BitRate(0).TimeToSend(MB); d != time.Duration(math.MaxInt64) {
		t.Errorf("zero rate should take forever, got %v", d)
	}
	if d := BitRate(-5).TimeToSend(MB); d != time.Duration(math.MaxInt64) {
		t.Errorf("negative rate should take forever, got %v", d)
	}
}

func TestTransfer(t *testing.T) {
	got := MbpsRate(8).Transfer(2 * time.Second)
	if !almostEqual(got.Bytes(), 2e6, 1e-12) {
		t.Errorf("8 Mbps over 2 s = %v bytes, want 2e6", got.Bytes())
	}
	if got := MbpsRate(8).Transfer(-time.Second); got != 0 {
		t.Errorf("negative duration transfer = %v, want 0", got)
	}
	if got := BitRate(-1).Transfer(time.Second); got != 0 {
		t.Errorf("negative rate transfer = %v, want 0", got)
	}
}

func TestTransferRoundTrip(t *testing.T) {
	// Transferring for TimeToSend(size) should move exactly size.
	f := func(sizeKB uint16, mbps uint8) bool {
		if mbps == 0 {
			return true
		}
		size := ByteSize(sizeKB) * KB
		rate := MbpsRate(float64(mbps))
		moved := rate.Transfer(rate.TimeToSend(size))
		return almostEqual(moved.Bytes(), size.Bytes(), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPowerOver(t *testing.T) {
	e := MilliwattPower(1000).Over(10 * time.Second)
	if !almostEqual(e.Joules(), 10, 1e-12) {
		t.Errorf("1 W over 10 s = %v, want 10 J", e)
	}
}

func TestEnergyPerByte(t *testing.T) {
	e := Energy(2)
	if got := e.PerByte(2 * Byte); got != 1 {
		t.Errorf("2 J / 2 B = %v, want 1", got)
	}
	if got := e.PerByte(0); !math.IsInf(got, 1) {
		t.Errorf("per-byte of zero size = %v, want +Inf", got)
	}
}

func TestEnergyString(t *testing.T) {
	cases := []struct {
		in   Energy
		want string
	}{
		{12.3, "12.30 J"},
		{0.0123, "12.30 mJ"},
		{0.0000123, "12.30 µJ"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Energy(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestPowerString(t *testing.T) {
	if got := MilliwattPower(1288).String(); got != "1.29 W" {
		t.Errorf("got %q", got)
	}
	if got := MilliwattPower(133).String(); got != "133 mW" {
		t.Errorf("got %q", got)
	}
}

func TestBitRateString(t *testing.T) {
	cases := []struct {
		in   BitRate
		want string
	}{
		{MbpsRate(10), "10.00 Mbps"},
		{500 * Kbps, "500.0 Kbps"},
		{2 * Gbps, "2.00 Gbps"},
		{42, "42 bps"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestDurationConversion(t *testing.T) {
	if got := Duration(1.5); got != 1500*time.Millisecond {
		t.Errorf("Duration(1.5) = %v", got)
	}
	if got := Duration(-1); got != 0 {
		t.Errorf("Duration(-1) = %v, want 0", got)
	}
	if got := Duration(math.Inf(1)); got != time.Duration(math.MaxInt64) {
		t.Errorf("Duration(+Inf) = %v, want max", got)
	}
	if got := Seconds(2500 * time.Millisecond); got != 2.5 {
		t.Errorf("Seconds = %v, want 2.5", got)
	}
}

func TestDurationSecondsRoundTrip(t *testing.T) {
	f := func(ms uint32) bool {
		d := time.Duration(ms) * time.Millisecond
		got := Duration(Seconds(d))
		diff := got - d
		if diff < 0 {
			diff = -diff
		}
		// Large durations lose sub-microsecond precision through the
		// float64 seconds representation.
		return diff <= time.Microsecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseByteSize(t *testing.T) {
	cases := []struct {
		in   string
		want ByteSize
	}{
		{"256KB", 256 * KB},
		{"16 MB", 16 * MB},
		{"1.5GB", 1.5 * GB},
		{"2048", 2048},
		{" 4 kb ", 4 * KB},
	}
	for _, c := range cases {
		got, err := ParseByteSize(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseByteSize(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"", "MB", "-4MB", "12XB", "1.2.3MB"} {
		if _, err := ParseByteSize(bad); err == nil {
			t.Errorf("ParseByteSize(%q) succeeded", bad)
		}
	}
}

func TestParseBitRate(t *testing.T) {
	cases := []struct {
		in   string
		want BitRate
	}{
		{"4.5Mbps", MbpsRate(4.5)},
		{"500 Kbps", 500 * Kbps},
		{"1gbps", Gbps},
		{"64", 64},
	}
	for _, c := range cases {
		got, err := ParseBitRate(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseBitRate(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"", "fast", "-1Mbps", "3MBps2"} {
		if _, err := ParseBitRate(bad); err == nil {
			t.Errorf("ParseBitRate(%q) succeeded", bad)
		}
	}
}
