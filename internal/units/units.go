// Package units provides the quantity types shared across the simulator:
// data sizes, data rates, energies and powers.
//
// All quantities are represented as float64 in a canonical unit (bytes,
// bits per second, joules, watts, seconds) with strongly typed wrappers so
// that rates and sizes cannot be confused. Conversions are explicit and
// formatting follows the conventions used in the eMPTCP paper (Mbps for
// rates, J for energies, MB for file sizes).
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// ByteSize is an amount of data in bytes.
type ByteSize float64

// Common data sizes.
const (
	Byte ByteSize = 1
	KB   ByteSize = 1 << 10
	MB   ByteSize = 1 << 20
	GB   ByteSize = 1 << 30
)

// Bytes returns the size as a plain float64 number of bytes.
func (b ByteSize) Bytes() float64 { return float64(b) }

// Bits returns the size in bits.
func (b ByteSize) Bits() float64 { return float64(b) * 8 }

// Megabytes returns the size in binary megabytes.
func (b ByteSize) Megabytes() float64 { return float64(b / MB) }

// String formats the size with a binary-prefix unit, e.g. "16.0 MB".
func (b ByteSize) String() string {
	abs := math.Abs(float64(b))
	switch {
	case abs >= float64(GB):
		return fmt.Sprintf("%.2f GB", float64(b/GB))
	case abs >= float64(MB):
		return fmt.Sprintf("%.1f MB", float64(b/MB))
	case abs >= float64(KB):
		return fmt.Sprintf("%.1f KB", float64(b/KB))
	default:
		return fmt.Sprintf("%.0f B", float64(b))
	}
}

// BitRate is a data rate in bits per second.
type BitRate float64

// Common data rates.
const (
	BitPerSecond BitRate = 1
	Kbps         BitRate = 1e3
	Mbps         BitRate = 1e6
	Gbps         BitRate = 1e9
)

// Mbit returns the rate in megabits per second, the unit used throughout
// the paper's figures and tables.
func (r BitRate) Mbit() float64 { return float64(r / Mbps) }

// BytesPerSecond returns the rate in bytes per second.
func (r BitRate) BytesPerSecond() float64 { return float64(r) / 8 }

// String formats the rate in the most natural decimal unit.
func (r BitRate) String() string {
	abs := math.Abs(float64(r))
	switch {
	case abs >= float64(Gbps):
		return fmt.Sprintf("%.2f Gbps", float64(r/Gbps))
	case abs >= float64(Mbps):
		return fmt.Sprintf("%.2f Mbps", float64(r/Mbps))
	case abs >= float64(Kbps):
		return fmt.Sprintf("%.1f Kbps", float64(r/Kbps))
	default:
		return fmt.Sprintf("%.0f bps", float64(r))
	}
}

// MbpsRate builds a BitRate from a megabits-per-second value.
func MbpsRate(v float64) BitRate { return BitRate(v) * Mbps }

// TimeToSend returns how long transferring size at this rate takes.
// A non-positive rate yields +Inf.
func (r BitRate) TimeToSend(size ByteSize) time.Duration {
	if r <= 0 {
		return time.Duration(math.MaxInt64)
	}
	sec := size.Bits() / float64(r)
	return time.Duration(sec * float64(time.Second))
}

// Transfer returns how much data moves at this rate over d.
func (r BitRate) Transfer(d time.Duration) ByteSize {
	if r <= 0 || d <= 0 {
		return 0
	}
	return ByteSize(float64(r) / 8 * d.Seconds())
}

// Energy is an amount of energy in joules.
type Energy float64

// Common energy quantities.
const (
	Joule      Energy = 1
	Millijoule Energy = 1e-3
	Microjoule Energy = 1e-6
)

// Joules returns the energy as a plain float64 number of joules.
func (e Energy) Joules() float64 { return float64(e) }

// String formats the energy, e.g. "12.3 J".
func (e Energy) String() string {
	abs := math.Abs(float64(e))
	switch {
	case abs >= 1:
		return fmt.Sprintf("%.2f J", float64(e))
	case abs >= 1e-3:
		return fmt.Sprintf("%.2f mJ", float64(e)*1e3)
	default:
		return fmt.Sprintf("%.2f µJ", float64(e)*1e6)
	}
}

// PerByte returns the per-byte energy of spending e over size bytes.
// A non-positive size yields +Inf.
func (e Energy) PerByte(size ByteSize) float64 {
	if size <= 0 {
		return math.Inf(1)
	}
	return float64(e) / float64(size)
}

// Power is a rate of energy use in watts.
type Power float64

// Common power quantities.
const (
	Watt      Power = 1
	Milliwatt Power = 1e-3
)

// Watts returns the power as a plain float64 number of watts.
func (p Power) Watts() float64 { return float64(p) }

// MilliwattPower builds a Power from a milliwatt value, the unit used by
// the smartphone power-model literature.
func MilliwattPower(v float64) Power { return Power(v) * Milliwatt }

// String formats the power, e.g. "1288 mW".
func (p Power) String() string {
	abs := math.Abs(float64(p))
	if abs >= 1 {
		return fmt.Sprintf("%.2f W", float64(p))
	}
	return fmt.Sprintf("%.0f mW", float64(p)*1e3)
}

// Over integrates the power over duration d, yielding energy.
func (p Power) Over(d time.Duration) Energy {
	return Energy(float64(p) * d.Seconds())
}

// Seconds converts a duration to float64 seconds. It exists so call sites
// read uniformly with the rest of this package.
func Seconds(d time.Duration) float64 { return d.Seconds() }

// Duration converts float64 seconds to a time.Duration, saturating at the
// representable range.
func Duration(sec float64) time.Duration {
	if math.IsInf(sec, 1) || sec > math.MaxInt64/float64(time.Second) {
		return time.Duration(math.MaxInt64)
	}
	if sec < 0 {
		return 0
	}
	return time.Duration(sec * float64(time.Second))
}

// ParseByteSize parses strings like "256KB", "16 MB", "1.5GB" or a plain
// byte count ("2048"). Units are binary (KB = 1024 B).
func ParseByteSize(s string) (ByteSize, error) {
	v, unit, err := splitQuantity(s)
	if err != nil {
		return 0, fmt.Errorf("units: bad size %q: %w", s, err)
	}
	switch strings.ToUpper(unit) {
	case "", "B":
		return ByteSize(v), nil
	case "KB":
		return ByteSize(v) * KB, nil
	case "MB":
		return ByteSize(v) * MB, nil
	case "GB":
		return ByteSize(v) * GB, nil
	default:
		return 0, fmt.Errorf("units: unknown size unit %q in %q", unit, s)
	}
}

// ParseBitRate parses strings like "4.5Mbps", "500 Kbps", "1Gbps" or a
// plain bits-per-second count.
func ParseBitRate(s string) (BitRate, error) {
	v, unit, err := splitQuantity(s)
	if err != nil {
		return 0, fmt.Errorf("units: bad rate %q: %w", s, err)
	}
	switch strings.ToLower(unit) {
	case "", "bps":
		return BitRate(v), nil
	case "kbps":
		return BitRate(v) * Kbps, nil
	case "mbps":
		return BitRate(v) * Mbps, nil
	case "gbps":
		return BitRate(v) * Gbps, nil
	default:
		return 0, fmt.Errorf("units: unknown rate unit %q in %q", unit, s)
	}
}

// splitQuantity separates "12.5 MB" into (12.5, "MB").
func splitQuantity(s string) (float64, string, error) {
	s = strings.TrimSpace(s)
	i := 0
	for i < len(s) && (s[i] == '.' || s[i] == '-' || s[i] == '+' || (s[i] >= '0' && s[i] <= '9')) {
		i++
	}
	num, unit := s[:i], strings.TrimSpace(s[i:])
	if num == "" {
		return 0, "", fmt.Errorf("no number")
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, "", err
	}
	if v < 0 {
		return 0, "", fmt.Errorf("negative quantity")
	}
	return v, unit, nil
}
