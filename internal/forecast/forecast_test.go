package forecast

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/simrng"
)

func TestHoltWintersConstantSeries(t *testing.T) {
	hw := NewHoltWinters(0.5, 0.2)
	for i := 0; i < 50; i++ {
		hw.Observe(7)
	}
	if got := hw.Predict(1); math.Abs(got-7) > 1e-9 {
		t.Errorf("constant series forecast = %v, want 7", got)
	}
	if got := hw.Trend(); math.Abs(got) > 1e-9 {
		t.Errorf("constant series trend = %v, want 0", got)
	}
}

func TestHoltWintersLinearSeries(t *testing.T) {
	// On a perfectly linear series, Holt's method converges to the exact
	// line: forecast at horizon h should be last + h*slope.
	hw := NewHoltWinters(0.5, 0.2)
	for i := 0; i < 200; i++ {
		hw.Observe(3 + 2*float64(i))
	}
	last := 3 + 2*float64(199)
	for h := 1; h <= 5; h++ {
		want := last + 2*float64(h)
		if got := hw.Predict(h); math.Abs(got-want) > 0.01 {
			t.Errorf("Predict(%d) = %v, want %v", h, got, want)
		}
	}
}

func TestHoltWintersTracksShift(t *testing.T) {
	// After a level shift, the forecast should converge to the new level.
	hw := DefaultThroughput()
	for i := 0; i < 50; i++ {
		hw.Observe(10)
	}
	for i := 0; i < 50; i++ {
		hw.Observe(1)
	}
	if got := hw.Predict(1); math.Abs(got-1) > 0.05 {
		t.Errorf("post-shift forecast = %v, want ~1", got)
	}
}

func TestHoltWintersNonNegative(t *testing.T) {
	hw := DefaultThroughput()
	// Steep downward trend would extrapolate below zero.
	for i := 0; i < 20; i++ {
		hw.Observe(100 - 10*float64(i))
	}
	if got := hw.Predict(10); got < 0 {
		t.Errorf("non-negative forecast = %v", got)
	}
	hw.NonNegative = false
	if got := hw.Predict(100); got >= 0 {
		t.Errorf("expected negative extrapolation with clamping off, got %v", got)
	}
}

func TestHoltWintersEmpty(t *testing.T) {
	hw := DefaultThroughput()
	if !math.IsNaN(hw.Predict(1)) || !math.IsNaN(hw.Level()) || !math.IsNaN(hw.Trend()) {
		t.Error("empty predictor should return NaN")
	}
}

func TestHoltWintersSeed(t *testing.T) {
	hw := DefaultThroughput()
	hw.Seed(5)
	if hw.N() != 1 {
		t.Errorf("N after Seed = %d, want 1", hw.N())
	}
	if got := hw.Predict(1); got != 5 {
		t.Errorf("seeded forecast = %v, want 5", got)
	}
}

func TestHoltWintersNegativeHorizonClamped(t *testing.T) {
	hw := DefaultThroughput()
	hw.Observe(3)
	hw.Observe(5)
	if got, want := hw.Predict(-3), hw.Level(); got != want {
		t.Errorf("Predict(-3) = %v, want level %v", got, want)
	}
}

func TestHoltWintersPanicsOnBadParams(t *testing.T) {
	for _, p := range [][2]float64{{0, 0.5}, {1.5, 0.5}, {0.5, 0}, {0.5, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHoltWinters(%v, %v) did not panic", p[0], p[1])
				}
			}()
			NewHoltWinters(p[0], p[1])
		}()
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	e.Observe(10)
	e.Observe(20)
	// level = 0.5*20 + 0.5*10 = 15.
	if got := e.Predict(1); got != 15 {
		t.Errorf("EWMA = %v, want 15", got)
	}
	if !math.IsNaN((&EWMA{Alpha: 0.5}).Predict(1)) {
		t.Error("empty EWMA should return NaN")
	}
}

func TestLastValue(t *testing.T) {
	var l LastValue
	if !math.IsNaN(l.Predict(1)) {
		t.Error("empty LastValue should return NaN")
	}
	l.Observe(4)
	l.Observe(9)
	if got := l.Predict(7); got != 9 {
		t.Errorf("LastValue = %v, want 9", got)
	}
}

func TestResetAll(t *testing.T) {
	preds := []Predictor{DefaultThroughput(), NewEWMA(0.3), &LastValue{}}
	for _, p := range preds {
		p.Observe(1)
		p.Observe(2)
		p.Reset()
		if p.N() != 0 {
			t.Errorf("%T: N after Reset = %d", p, p.N())
		}
		if !math.IsNaN(p.Predict(1)) {
			t.Errorf("%T: Predict after Reset should be NaN", p)
		}
	}
}

func TestHoltWintersBeatsLastValueOnTrend(t *testing.T) {
	// The paper chose Holt-Winters because it is more accurate than
	// naive predictors; verify on a noisy trending series.
	src := simrng.New(11)
	series := make([]float64, 300)
	for i := range series {
		series[i] = 5 + 0.05*float64(i) + src.Normal(0, 0.1)
	}
	hwErr := MAE(NewHoltWinters(0.5, 0.2), series)
	lvErr := MAE(&LastValue{}, series)
	if hwErr >= lvErr {
		t.Errorf("Holt-Winters MAE %v not better than last-value %v on trending series", hwErr, lvErr)
	}
}

func TestMAEEmpty(t *testing.T) {
	if !math.IsNaN(MAE(&LastValue{}, nil)) {
		t.Error("MAE of empty series should be NaN")
	}
	if !math.IsNaN(MAE(&LastValue{}, []float64{1})) {
		t.Error("MAE of single-sample series should be NaN")
	}
}

// Property: forecasts remain finite for any finite input series.
func TestHoltWintersFiniteProperty(t *testing.T) {
	f := func(raw []int16) bool {
		hw := DefaultThroughput()
		for _, r := range raw {
			hw.Observe(float64(r))
		}
		if len(raw) == 0 {
			return math.IsNaN(hw.Predict(1))
		}
		p := hw.Predict(3)
		return !math.IsNaN(p) && !math.IsInf(p, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a constant series always forecasts that constant regardless of
// parameters.
func TestConstantSeriesProperty(t *testing.T) {
	f := func(v int16, aRaw, bRaw uint8) bool {
		alpha := 0.01 + float64(aRaw%99)/100
		beta := 0.01 + float64(bRaw%99)/100
		hw := NewHoltWinters(alpha, beta)
		hw.NonNegative = false
		for i := 0; i < 30; i++ {
			hw.Observe(float64(v))
		}
		return math.Abs(hw.Predict(1)-float64(v)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
