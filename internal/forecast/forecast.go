// Package forecast implements the throughput predictors used by eMPTCP's
// bandwidth predictor (§3.2 of the paper).
//
// The paper predicts per-subflow throughput with the Holt-Winters
// time-series method (double exponential smoothing: a level and a trend
// component), citing He et al. [13] for history-based predictors being more
// accurate than formula-based ones. EWMA and last-value predictors are
// provided as baselines for comparison in tests and ablations.
package forecast

import "math"

// Predictor consumes a series of observations and produces forecasts.
type Predictor interface {
	// Observe feeds one sample.
	Observe(v float64)
	// Predict returns the h-step-ahead forecast. With no observations it
	// returns NaN.
	Predict(h int) float64
	// N returns how many samples have been observed.
	N() int
	// Reset discards all state.
	Reset()
}

// HoltWinters is double exponential smoothing with additive trend
// (Holt's linear method; the paper has no seasonality to exploit at
// RTT-scale sampling). Alpha smooths the level, Beta the trend.
type HoltWinters struct {
	Alpha, Beta float64
	// NonNegative clamps forecasts at zero, appropriate for throughput.
	NonNegative bool

	level, trend float64
	n            int
}

// NewHoltWinters returns a Holt-Winters predictor with the given smoothing
// parameters. Alpha and Beta must lie in (0, 1].
func NewHoltWinters(alpha, beta float64) *HoltWinters {
	if alpha <= 0 || alpha > 1 || beta <= 0 || beta > 1 {
		panic("forecast: Holt-Winters smoothing parameters must be in (0,1]")
	}
	return &HoltWinters{Alpha: alpha, Beta: beta, NonNegative: true}
}

// DefaultThroughput returns the predictor configuration eMPTCP uses for
// subflow throughput: responsive level tracking with a conservative trend.
func DefaultThroughput() *HoltWinters { return NewHoltWinters(0.5, 0.2) }

// Observe feeds one sample.
func (hw *HoltWinters) Observe(v float64) {
	switch hw.n {
	case 0:
		hw.level = v
		hw.trend = 0
	case 1:
		hw.trend = v - hw.level
		hw.level = v
	default:
		prevLevel := hw.level
		hw.level = hw.Alpha*v + (1-hw.Alpha)*(hw.level+hw.trend)
		hw.trend = hw.Beta*(hw.level-prevLevel) + (1-hw.Beta)*hw.trend
	}
	hw.n++
}

// Predict returns the h-step-ahead forecast: level + h·trend.
func (hw *HoltWinters) Predict(h int) float64 {
	if hw.n == 0 {
		return math.NaN()
	}
	if h < 0 {
		h = 0
	}
	f := hw.level + float64(h)*hw.trend
	if hw.NonNegative && f < 0 {
		return 0
	}
	return f
}

// Level returns the current smoothed level.
func (hw *HoltWinters) Level() float64 {
	if hw.n == 0 {
		return math.NaN()
	}
	return hw.level
}

// Trend returns the current smoothed trend per step.
func (hw *HoltWinters) Trend() float64 {
	if hw.n == 0 {
		return math.NaN()
	}
	return hw.trend
}

// N returns the number of observations.
func (hw *HoltWinters) N() int { return hw.n }

// Reset discards all state.
func (hw *HoltWinters) Reset() { hw.level, hw.trend, hw.n = 0, 0, 0 }

// State returns the raw (level, trend, n) triple — the predictor's
// complete mutable state, which the checkpoint/fork machinery saves and
// reinstates through SetState. Unlike Level and Trend it does not map the
// unobserved state to NaN, so a round-trip is exact.
func (hw *HoltWinters) State() (level, trend float64, n int) {
	return hw.level, hw.trend, hw.n
}

// SetState reinstates a triple previously read through State.
func (hw *HoltWinters) SetState(level, trend float64, n int) {
	hw.level, hw.trend, hw.n = level, trend, n
}

// Seed primes the predictor with a prior value as if one observation had
// been made. eMPTCP uses this for never-activated interfaces, which are
// assumed to have non-zero throughput (e.g. 5 Mbps) so the path gets
// probed (§3.2).
func (hw *HoltWinters) Seed(v float64) {
	hw.Reset()
	hw.Observe(v)
}

// EWMA is single exponential smoothing, a baseline predictor.
type EWMA struct {
	Alpha float64
	level float64
	n     int
}

// NewEWMA returns an EWMA predictor. Alpha must lie in (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("forecast: EWMA alpha must be in (0,1]")
	}
	return &EWMA{Alpha: alpha}
}

// Observe feeds one sample.
func (e *EWMA) Observe(v float64) {
	if e.n == 0 {
		e.level = v
	} else {
		e.level = e.Alpha*v + (1-e.Alpha)*e.level
	}
	e.n++
}

// Predict returns the forecast, which for EWMA is the level at any horizon.
func (e *EWMA) Predict(int) float64 {
	if e.n == 0 {
		return math.NaN()
	}
	return e.level
}

// N returns the number of observations.
func (e *EWMA) N() int { return e.n }

// Reset discards all state.
func (e *EWMA) Reset() { e.level, e.n = 0, 0 }

// LastValue predicts the most recent observation, the naive baseline.
type LastValue struct {
	last float64
	n    int
}

// Observe feeds one sample.
func (l *LastValue) Observe(v float64) { l.last = v; l.n++ }

// Predict returns the last observation at any horizon.
func (l *LastValue) Predict(int) float64 {
	if l.n == 0 {
		return math.NaN()
	}
	return l.last
}

// N returns the number of observations.
func (l *LastValue) N() int { return l.n }

// Reset discards all state.
func (l *LastValue) Reset() { l.last, l.n = 0, 0 }

// MAE replays series through p (reset first) and returns the mean absolute
// one-step-ahead forecast error, skipping the warm-up steps where no
// forecast exists. Used to compare predictor quality.
func MAE(p Predictor, series []float64) float64 {
	p.Reset()
	var sum float64
	var n int
	for _, v := range series {
		if p.N() > 0 {
			sum += math.Abs(p.Predict(1) - v)
			n++
		}
		p.Observe(v)
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}
