package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	e := New()
	var order []int
	e.Schedule(3, func() { order = append(order, 3) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(2, func() { order = append(order, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 3 {
		t.Errorf("final time = %v, want 3", e.Now())
	}
}

func TestFIFOAmongSimultaneous(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-time events fired out of FIFO order: %v", order)
		}
	}
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.Schedule(1, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
}

func TestScheduleDuringRun(t *testing.T) {
	e := New()
	var hits []Time
	e.Schedule(1, func() {
		hits = append(hits, e.Now())
		e.After(2, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 1 || hits[1] != 3 {
		t.Errorf("hits = %v, want [1 3]", hits)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New()
	e.Schedule(5, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling into the past did not panic")
		}
	}()
	e.Schedule(1, func() {})
}

func TestScheduleNaNPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Error("scheduling at NaN did not panic")
		}
	}()
	e.Schedule(math.NaN(), func() {})
}

func TestAfterNegativeClamps(t *testing.T) {
	e := New()
	e.Schedule(2, func() {
		e.After(-5, func() {
			if e.Now() != 2 {
				t.Errorf("negative-delay event fired at %v, want 2", e.Now())
			}
		})
	})
	e.Run()
}

func TestAfterInfiniteNeverFires(t *testing.T) {
	e := New()
	ev := e.After(math.Inf(1), func() { t.Error("infinite-delay event fired") })
	if !ev.Cancelled() {
		t.Error("infinite-delay event should be pre-cancelled")
	}
	e.Run()
}

func TestStop(t *testing.T) {
	e := New()
	count := 0
	e.Schedule(1, func() { count++; e.Stop() })
	e.Schedule(2, func() { count++ })
	e.Run()
	if count != 1 {
		t.Errorf("count = %d, want 1 (Stop should halt the run)", count)
	}
	// Remaining events still queued.
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
}

func TestHorizon(t *testing.T) {
	e := New()
	e.Horizon = 10
	var fired []Time
	e.Schedule(5, func() { fired = append(fired, 5) })
	e.Schedule(15, func() { fired = append(fired, 15) })
	end := e.Run()
	if len(fired) != 1 || fired[0] != 5 {
		t.Errorf("fired = %v, want [5]", fired)
	}
	if end != 10 {
		t.Errorf("end = %v, want horizon 10", end)
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []Time
	for _, at := range []Time{1, 2, 3, 4, 5} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("fired %v, want first three", fired)
	}
	if e.Now() != 3 {
		t.Errorf("now = %v, want 3", e.Now())
	}
	e.RunUntil(10)
	if len(fired) != 5 {
		t.Fatalf("fired %v, want all five", fired)
	}
	if e.Now() != 10 {
		t.Errorf("now = %v, want 10 (clock advances to target)", e.Now())
	}
}

func TestRunUntilSkipsCancelledHead(t *testing.T) {
	e := New()
	ev := e.Schedule(1, func() {})
	ev.Cancel()
	fired := false
	e.Schedule(2, func() { fired = true })
	e.RunUntil(5)
	if !fired {
		t.Error("live event after cancelled head did not fire")
	}
}

func TestTicker(t *testing.T) {
	e := New()
	var ticks []Time
	tk := e.Tick(1, func() {
		ticks = append(ticks, e.Now())
	})
	e.Schedule(4.5, func() { tk.Stop() })
	e.Run()
	want := []Time{1, 2, 3, 4}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestTickerSetInterval(t *testing.T) {
	e := New()
	var ticks []Time
	var tk *Ticker
	tk = e.Tick(1, func() {
		ticks = append(ticks, e.Now())
		tk.SetInterval(2)
	})
	e.Schedule(6, func() { tk.Stop() })
	e.Run()
	want := []Time{1, 3, 5}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
}

func TestTickerStopFromOwnCallback(t *testing.T) {
	e := New()
	n := 0
	var tk *Ticker
	tk = e.Tick(1, func() {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	e.Run()
	if n != 3 {
		t.Errorf("ticks = %d, want 3", n)
	}
}

func TestTickBadIntervalPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Error("Tick(0) did not panic")
		}
	}()
	e.Tick(0, func() {})
}

// Property: any multiset of schedule times fires in nondecreasing order.
func TestOrderingProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		e := New()
		var fired []Time
		for _, r := range raw {
			at := Time(r) / 100
			e.Schedule(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(raw) {
			return false
		}
		return sort.Float64sAreSorted(fired)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: interleaving Schedule and Step preserves the clock's monotonicity.
func TestClockMonotonicProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		e := New()
		last := Time(0)
		for _, r := range raw {
			e.After(float64(r)/10, func() {})
		}
		for e.Step() {
			if e.Now() < last {
				return false
			}
			last = e.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Regression: Cancel on an already-fired event must be a true no-op. It
// used to mark the free-listed node dead, ghost-cancelling whatever event
// reused the slot next.
func TestCancelAfterFireIsNoOp(t *testing.T) {
	e := New()
	ev := e.Schedule(1, func() {})
	if !e.Step() {
		t.Fatal("event did not fire")
	}
	if ev.Cancelled() {
		t.Error("fired event must not report Cancelled")
	}
	ev.Cancel() // late cancel of a fired handle
	if ev.Cancelled() {
		t.Error("Cancel after fire must not stick to the stale handle")
	}
	// The freed node is reused by the next Schedule; the late Cancel above
	// must not have poisoned it.
	fired := false
	ev2 := e.Schedule(2, func() { fired = true })
	if ev2.Cancelled() {
		t.Fatal("recycled event born cancelled: stale Cancel leaked onto reused node")
	}
	ev.Cancel() // still stale, still a no-op
	e.Run()
	if !fired {
		t.Error("recycled event did not fire after stale Cancel")
	}
}

// Regression: RunUntil(t) with t past a positive Horizon used to advance
// the clock to t via the tail clamp, violating the horizon bound.
func TestRunUntilClampsToHorizon(t *testing.T) {
	e := New()
	e.Horizon = 5
	fired := false
	e.Schedule(10, func() { fired = true })
	if got := e.RunUntil(8); got != 5 {
		t.Errorf("RunUntil(8) = %v, want horizon 5", got)
	}
	if e.Now() != 5 {
		t.Errorf("now = %v, want clamped to horizon 5", e.Now())
	}
	if fired {
		t.Error("event past horizon fired")
	}
	// Targets within the horizon are unaffected.
	if got := e.RunUntil(3); got != 5 {
		t.Errorf("RunUntil(3) after clamp = %v, want 5 (clock never rewinds)", got)
	}
}
