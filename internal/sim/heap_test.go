package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// TestHeapRandomizedOrdering drives the inlined 4-ary heap through a large
// randomized schedule and checks events fire in (time, seq) order.
func TestHeapRandomizedOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	e := New()
	var want []float64
	var got []float64
	for i := 0; i < 5000; i++ {
		at := float64(rng.Intn(1000)) / 10
		want = append(want, at)
		e.Schedule(at, func() { got = append(got, e.Now()) })
	}
	e.Run()
	sort.Float64s(want)
	if len(got) != len(want) {
		t.Fatalf("fired %d events, scheduled %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

// TestHeapFIFOTieBreakInterleaved checks the seq tie-break survives
// interleaving same-time schedules with other heap traffic.
func TestHeapFIFOTieBreakInterleaved(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 50; i++ {
		i := i
		e.Schedule(7, func() { order = append(order, i) })
		// Unrelated churn around the tied timestamp.
		e.Schedule(float64(i%5)+1, func() {})
		e.Schedule(9, func() {})
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-time events fired out of FIFO order: %v", order)
		}
	}
}

// TestCancelSemantics pins the handle semantics of the pooled events:
// cancel-before-fire suppresses the callback, cancel-after-fire is a
// no-op, and a stale handle never cancels the node's next tenant.
func TestCancelSemantics(t *testing.T) {
	e := New()
	fired := 0
	ev1 := e.Schedule(1, func() { fired++ })
	e.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if ev1.Cancelled() {
		t.Error("a fired event must not report Cancelled")
	}
	// ev1's node is now on the free list; this schedule reuses it.
	ev2 := e.Schedule(2, func() { fired++ })
	ev1.Cancel() // stale handle: must not touch ev2's node
	if ev2.Cancelled() {
		t.Fatal("stale Cancel leaked onto the recycled node")
	}
	e.Run()
	if fired != 2 {
		t.Errorf("fired = %d, want 2 (recycled event must fire)", fired)
	}

	// Double cancel is a no-op; Cancelled stays true until the node is
	// recycled.
	ev3 := e.Schedule(3, func() { fired++ })
	ev3.Cancel()
	ev3.Cancel()
	e.Run()
	if fired != 2 {
		t.Errorf("cancelled event fired (fired = %d)", fired)
	}
	if !ev3.Cancelled() {
		t.Error("Cancelled() = false after drain of a cancelled event")
	}

	// The zero handle is inert.
	var zero Event
	zero.Cancel()
	if !zero.Cancelled() {
		t.Error("zero-value handle should report Cancelled (never fires)")
	}
}

// TestNodePoolReuse verifies the free list actually recycles: a long
// schedule/fire chain must not grow the node arena or the heap beyond the
// live event count.
func TestNodePoolReuse(t *testing.T) {
	e := New()
	n := 0
	var chain func()
	chain = func() {
		n++
		if n < 1000 {
			e.After(1, chain)
		}
	}
	e.After(1, chain)
	e.Run()
	if n != 1000 {
		t.Fatalf("chain fired %d times, want 1000", n)
	}
	if len(e.nodes) != 1 {
		t.Errorf("node arena grew to %d for a 1-deep chain, want 1", len(e.nodes))
	}

	// Cancelled events are recycled once drained, too.
	for i := 0; i < 100; i++ {
		e.Schedule(e.Now()+1, func() {}).Cancel()
		e.Step()
	}
	if len(e.nodes) > 2 {
		t.Errorf("node arena grew to %d under cancel churn, want ≤ 2", len(e.nodes))
	}
}

// TestScheduleSteadyStateAllocFree is the acceptance guard for the
// allocation-free kernel: a schedule/fire cycle with a pre-built closure
// must not allocate once the arena is warm.
func TestScheduleSteadyStateAllocFree(t *testing.T) {
	e := New()
	fn := func() {}
	// Warm the arena and heap.
	for i := 0; i < 8; i++ {
		e.Schedule(e.Now()+1, fn)
	}
	for e.Step() {
	}
	allocs := testing.AllocsPerRun(200, func() {
		e.Schedule(e.Now()+1, fn)
		e.Step()
	})
	if allocs != 0 {
		t.Errorf("steady-state schedule/fire allocates %v times per op, want 0", allocs)
	}
}

// TestManyPendingThenDrain exercises sift-down paths with a deep heap.
func TestManyPendingThenDrain(t *testing.T) {
	e := New()
	const n = 4096
	fired := 0
	for i := n; i > 0; i-- {
		e.Schedule(float64(i), func() { fired++ })
	}
	if e.Pending() != n {
		t.Fatalf("pending = %d, want %d", e.Pending(), n)
	}
	last := Time(-1)
	for e.Step() {
		if e.Now() < last {
			t.Fatalf("clock went backwards: %v after %v", e.Now(), last)
		}
		last = e.Now()
	}
	if fired != n {
		t.Errorf("fired = %d, want %d", fired, n)
	}
}
