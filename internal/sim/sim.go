// Package sim implements the discrete-event simulation kernel underlying
// the eMPTCP reproduction.
//
// The kernel is a classic event-list simulator: a binary heap of timestamped
// events, a virtual clock that jumps from event to event, and cancellable
// timers. Simulated time is float64 seconds; the kernel is single-threaded
// and deterministic, which keeps every experiment exactly reproducible from
// its seed.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in simulated time, in seconds since the start of the run.
type Time = float64

// Event is a scheduled callback.
type Event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among same-time events
	fn   func()
	idx  int // heap index, -1 when not queued
	dead bool
}

// At returns the time the event fires (or fired).
func (e *Event) At() Time { return e.at }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() { e.dead = true }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.dead }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.idx = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*q = old[:n-1]
	return e
}

// Engine is the simulation driver. The zero value is not usable; call New.
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	running bool
	stopped bool
	// Horizon, when positive, bounds simulated time: Run returns once the
	// next event would fire past it.
	Horizon Time
}

// New returns an Engine with the clock at zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending returns how many events are queued (including cancelled ones not
// yet drained).
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule queues fn to run at absolute time at. Scheduling in the past
// (before Now) panics: it is always a logic error in a causal simulation.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if math.IsNaN(at) {
		panic("sim: scheduling at NaN time")
	}
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past: at=%v now=%v", at, e.now))
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After queues fn to run delay seconds from now. Negative delays are
// clamped to zero (fire "immediately", after already-queued same-time
// events). Infinite delays are never scheduled and return a pre-cancelled
// event.
func (e *Engine) After(delay float64, fn func()) *Event {
	if math.IsInf(delay, 1) {
		return &Event{at: math.Inf(1), dead: true, idx: -1}
	}
	if delay < 0 {
		delay = 0
	}
	return e.Schedule(e.now+delay, fn)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step fires the single next event, advancing the clock. It returns false
// when the queue is empty or only holds events past the horizon.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := e.queue[0]
		if ev.dead {
			heap.Pop(&e.queue)
			continue
		}
		if e.Horizon > 0 && ev.at > e.Horizon {
			// Advance the clock to the horizon so callers measuring
			// elapsed time see a full window.
			e.now = e.Horizon
			return false
		}
		heap.Pop(&e.queue)
		e.now = ev.at
		ev.fn()
		return true
	}
	return false
}

// Run processes events until the queue drains, Stop is called, or the
// horizon is reached. It returns the final simulated time.
func (e *Engine) Run() Time {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	e.stopped = false
	for !e.stopped && e.Step() {
	}
	return e.now
}

// RunUntil processes events until time t (inclusive), leaving later events
// queued. It returns the simulated time afterwards, which is t if the
// queue outlived it.
func (e *Engine) RunUntil(t Time) Time {
	for len(e.queue) > 0 {
		// Drain dead events so the head is live.
		if e.queue[0].dead {
			heap.Pop(&e.queue)
			continue
		}
		if e.queue[0].at > t {
			break
		}
		if !e.Step() {
			break
		}
		if e.stopped {
			return e.now
		}
	}
	if e.now < t {
		e.now = t
	}
	return e.now
}

// Ticker invokes fn every interval seconds until cancelled. The first tick
// fires one interval from the time Tick is created.
type Ticker struct {
	eng      *Engine
	interval float64
	fn       func()
	ev       *Event
	stopped  bool
}

// Tick starts a recurring callback. Interval must be positive.
func (e *Engine) Tick(interval float64, fn func()) *Ticker {
	if interval <= 0 || math.IsNaN(interval) {
		panic("sim: Tick interval must be positive")
	}
	t := &Ticker{eng: e, interval: interval, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.eng.After(t.interval, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels the ticker. The callback will not fire again.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.ev != nil {
		t.ev.Cancel()
	}
}

// Interval returns the current ticker period in seconds.
func (t *Ticker) Interval() float64 { return t.interval }

// SetInterval changes the ticker period starting from the next re-arm.
func (t *Ticker) SetInterval(interval float64) {
	if interval <= 0 || math.IsNaN(interval) {
		panic("sim: Ticker interval must be positive")
	}
	t.interval = interval
}
