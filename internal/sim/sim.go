// Package sim implements the discrete-event simulation kernel underlying
// the eMPTCP reproduction.
//
// The kernel is a classic event-list simulator: a priority queue of
// timestamped events, a virtual clock that jumps from event to event, and
// cancellable timers. Simulated time is float64 seconds; the kernel is
// single-threaded and deterministic, which keeps every experiment exactly
// reproducible from its seed. (Whole runs are embarrassingly parallel —
// internal/runner fans independent engines across cores — but one engine
// is never shared between goroutines.)
//
// The event queue is an inlined 4-ary min-heap over small value entries,
// and event state lives in a free-listed node arena, so steady-state
// scheduling performs no allocations: a schedule/fire cycle reuses the
// node and heap slot freed by the previous one.
package sim

import (
	"fmt"
	"math"

	"repro/internal/trace"
)

// Time is a point in simulated time, in seconds since the start of the run.
type Time = float64

// node is the engine-owned state of one scheduled event. Nodes are pooled:
// after an event fires, its generation is bumped immediately — so handles
// to fired events go stale at once and a late Cancel is a true no-op —
// and the node returns to the free list. A cancelled entry keeps its
// generation until its drained node is reused, so Cancelled keeps
// answering true in the meantime.
type node struct {
	fn   func()
	gen  uint32
	dead bool
}

// entry is one heap element. Entries are values, never boxed, so heap
// operations allocate nothing.
type entry struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among same-time events
	idx int32  // index into Engine.nodes
}

func entryLess(a, b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Event is a cancellable handle to a scheduled callback. The zero value is
// a valid "never scheduled" handle: Cancel is a no-op and Cancelled reports
// true. Handles are values; copying one copies the reference.
type Event struct {
	eng *Engine
	at  Time
	idx int32
	gen uint32
}

// At returns the time the event fires (or fired).
func (e Event) At() Time { return e.at }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e Event) Cancel() {
	if e.eng == nil {
		return
	}
	n := &e.eng.nodes[e.idx]
	if n.gen == e.gen && !n.dead {
		n.dead = true
		if e.eng.rec != nil {
			e.eng.rec.Record(trace.Event{T: e.eng.now, Kind: trace.KindCancel})
		}
	}
}

// Cancelled reports whether the event will never fire because it was
// cancelled (or was never schedulable, like an infinite-delay timer). An
// event that already fired reports false.
func (e Event) Cancelled() bool {
	if e.eng == nil {
		return true
	}
	n := &e.eng.nodes[e.idx]
	return n.gen == e.gen && n.dead
}

// Engine is the simulation driver. The zero value is not usable; call New.
type Engine struct {
	now     Time
	heap    []entry
	nodes   []node
	free    []int32
	seq     uint64
	running bool
	stopped bool
	rec     trace.Recorder
	// limit bounds inline (batched) firing while RunUntil is active:
	// RunUntil(t) must leave events past t queued, and the batcher must
	// not coalesce the clock past t either. +Inf when no bound applies.
	limit Time
	// Horizon, when positive, bounds simulated time: Run returns once the
	// next event would fire past it.
	Horizon Time
}

// New returns an Engine with the clock at zero.
func New() *Engine {
	return &Engine{limit: math.Inf(1)}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// SetRecorder attaches a trace recorder; nil disables tracing. The
// models built on the engine (tcp, mptcp, core) emit through Recorder,
// so attaching one here instruments the whole simulation.
func (e *Engine) SetRecorder(r trace.Recorder) { e.rec = r }

// Recorder returns the attached trace recorder, or nil when tracing is
// disabled. Emission sites must guard with a nil check:
//
//	if rec := eng.Recorder(); rec != nil { rec.Record(...) }
func (e *Engine) Recorder() trace.Recorder { return e.rec }

// Pending returns how many events are queued (including cancelled ones not
// yet drained).
func (e *Engine) Pending() int { return len(e.heap) }

// push adds an entry to the 4-ary heap, sifting up.
func (e *Engine) push(it entry) {
	h := append(e.heap, it)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !entryLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	e.heap = h
}

// pop removes and returns the minimum entry, sifting the last element down.
func (e *Engine) pop() entry {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h = h[:n]
	e.heap = h
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if entryLess(h[j], h[m]) {
					m = j
				}
			}
			if !entryLess(h[m], last) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = last
	}
	return top
}

// alloc takes a node from the free list (bumping its generation so stale
// handles miss) or grows the arena.
func (e *Engine) alloc(fn func()) int32 {
	if n := len(e.free); n > 0 {
		idx := e.free[n-1]
		e.free = e.free[:n-1]
		nd := &e.nodes[idx]
		nd.gen++
		nd.fn = fn
		nd.dead = false
		return idx
	}
	e.nodes = append(e.nodes, node{fn: fn})
	return int32(len(e.nodes) - 1)
}

// release returns a node to the free list, dropping its callback so the
// closure can be collected. For fired nodes the caller bumps the
// generation first (stale handles must miss immediately); for drained
// cancelled nodes the generation is kept until reuse, so the node keeps
// answering Cancelled()=true in the meantime.
func (e *Engine) release(idx int32) {
	e.nodes[idx].fn = nil
	e.free = append(e.free, idx)
}

// Schedule queues fn to run at absolute time at. Scheduling in the past
// (before Now) panics: it is always a logic error in a causal simulation.
func (e *Engine) Schedule(at Time, fn func()) Event {
	if math.IsNaN(at) {
		panic("sim: scheduling at NaN time")
	}
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past: at=%v now=%v", at, e.now))
	}
	idx := e.alloc(fn)
	e.push(entry{at: at, seq: e.seq, idx: idx})
	e.seq++
	if e.rec != nil {
		e.rec.Record(trace.Event{T: e.now, Kind: trace.KindSchedule, A: at})
	}
	return Event{eng: e, at: at, idx: idx, gen: e.nodes[idx].gen}
}

// After queues fn to run delay seconds from now. Negative delays are
// clamped to zero (fire "immediately", after already-queued same-time
// events). Infinite delays are never scheduled and return a pre-cancelled
// event.
func (e *Engine) After(delay float64, fn func()) Event {
	if math.IsInf(delay, 1) {
		return Event{at: math.Inf(1)}
	}
	if delay < 0 {
		delay = 0
	}
	return e.Schedule(e.now+delay, fn)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Reset returns the engine to the state of New while keeping the node
// arena, heap, and free-list capacity, so a pooled engine re-runs without
// regrowing kernel state. Event handles and Timers from before the reset
// are stale afterwards: node generations are bumped, so using them is a
// no-op, exactly like handles to fired events. Only the (at, seq) pair
// orders events — node indices never do — so a run on a reset engine is
// bit-identical to one on a fresh engine.
func (e *Engine) Reset() {
	if e.running {
		panic("sim: Reset during Run")
	}
	e.heap = e.heap[:0]
	e.free = e.free[:0]
	for i := range e.nodes {
		nd := &e.nodes[i]
		nd.fn = nil
		nd.gen++
		nd.dead = false
		e.free = append(e.free, int32(i))
	}
	e.now = 0
	e.seq = 0
	e.stopped = false
	e.rec = nil
	e.Horizon = 0
	e.limit = math.Inf(1)
}

// PeekNext reports the (time, sequence) of the next live event without
// firing it. Dead (cancelled) entries at the top of the queue are drained
// on the way, exactly as Step would drain them. ok is false when no live
// event is pending.
//
// Together with Deferred this is the batch-window contract used by the
// round-coalescing fast path in internal/tcp: a caller may execute a
// deferred callback inline, without a heap round-trip, exactly when the
// engine itself would have fired it next (see CanFireInline).
func (e *Engine) PeekNext() (at Time, seq uint64, ok bool) {
	for len(e.heap) > 0 {
		top := e.heap[0]
		if e.nodes[top.idx].dead {
			e.pop()
			e.release(top.idx)
			continue
		}
		return top.at, top.seq, true
	}
	return 0, 0, false
}

// Deferred is a reserved event slot: a fire time plus the sequence number
// a real Schedule call at reservation time would have consumed. It lets a
// hot loop (the TCP round batcher) decide after the fact whether to run
// the callback inline (FireInline) or fall back to the heap
// (CommitDeferred), while keeping event ordering — which depends only on
// (time, seq) pairs — bit-identical to the unbatched schedule/fire cycle.
type Deferred struct {
	at  Time
	seq uint64
}

// At returns the reserved fire time.
func (d Deferred) At() Time { return d.at }

// DeferAfter reserves the next sequence number for a callback that would
// fire delay seconds from now and emits the same schedule trace event a
// real After would, but touches no heap or node state. Delay semantics
// match After (negative clamps to zero; +Inf reserves nothing and the
// slot can never fire).
func (e *Engine) DeferAfter(delay float64) Deferred {
	if math.IsInf(delay, 1) {
		return Deferred{at: math.Inf(1)}
	}
	if math.IsNaN(delay) {
		panic("sim: deferring at NaN time")
	}
	if delay < 0 {
		delay = 0
	}
	d := Deferred{at: e.now + delay, seq: e.seq}
	e.seq++
	if e.rec != nil {
		e.rec.Record(trace.Event{T: e.now, Kind: trace.KindSchedule, A: d.at})
	}
	return d
}

// DeferAt is DeferAfter at an absolute fire time: it reserves the next
// sequence number for a callback at time at and emits the same schedule
// trace event a real Schedule would, but touches no heap or node state.
// Time semantics match Schedule (scheduling into the past panics); a +Inf
// time reserves nothing and the slot can never fire. The packet-level
// engine's ACK-train coalescer uses it: consecutive ACK arrival times are
// iterated in exact float arithmetic, so the reservation must carry those
// exact bits rather than a now+delay round trip.
func (e *Engine) DeferAt(at Time) Deferred {
	if math.IsNaN(at) {
		panic("sim: deferring at NaN time")
	}
	if math.IsInf(at, 1) {
		return Deferred{at: math.Inf(1)}
	}
	if at < e.now {
		panic(fmt.Sprintf("sim: deferring into the past: at=%v now=%v", at, e.now))
	}
	d := Deferred{at: at, seq: e.seq}
	e.seq++
	if e.rec != nil {
		e.rec.Record(trace.Event{T: e.now, Kind: trace.KindSchedule, A: at})
	}
	return d
}

// CanFireInline reports whether the deferred slot is exactly the event
// the engine would dispatch next: strictly ahead of every pending live
// event under the (time, seq) order, not cut off by the horizon, and the
// engine not stopped. When it returns false the caller must CommitDeferred
// and let the ordinary Run loop take over.
func (e *Engine) CanFireInline(d Deferred) bool {
	if e.stopped {
		return false
	}
	if e.Horizon > 0 && d.at > e.Horizon {
		return false
	}
	if d.at > e.limit {
		// A RunUntil(t) bound: events past t stay queued, so the batcher
		// must hand the slot back to the heap, not run it inline.
		return false
	}
	if math.IsInf(d.at, 1) {
		return false
	}
	at, seq, ok := e.PeekNext()
	return !ok || d.at < at || (d.at == at && d.seq < seq)
}

// FireInline advances the clock to the deferred slot's fire time and
// emits the fire trace event; the caller runs the callback body itself.
// The caller must have checked CanFireInline — firing a slot the engine
// would not have dispatched next breaks causality.
func (e *Engine) FireInline(d Deferred) {
	e.now = d.at
	if e.rec != nil {
		e.rec.Record(trace.Event{T: e.now, Kind: trace.KindFire})
	}
}

// TryFireInline is the batcher's fused fast path: it performs the
// CanFireInline check and, on success, the FireInline clock advance in a
// single call. Behaviour is exactly CanFireInline followed by FireInline;
// the fusion only removes call overhead and duplicate loads from the
// per-round batch check.
func (e *Engine) TryFireInline(d Deferred) bool {
	// d.at > MaxFloat64 rejects the +Inf never-firable slot; d.at is never
	// NaN (DeferAfter panics on NaN delays).
	if e.stopped || d.at > e.limit || d.at > math.MaxFloat64 {
		return false
	}
	if h := e.Horizon; h > 0 && d.at > h {
		return false
	}
	if len(e.heap) > 0 {
		// Compare against the raw heap top without draining cancelled
		// entries: if d precedes even a dead top it precedes everything,
		// and if a dead top precedes d the refusal is merely conservative
		// (the slot goes back to the heap and Step drains as usual).
		// Skipping the liveness lookup keeps the probe free of the
		// dependent nodes[] load. Sequence numbers are unique, so top
		// either strictly precedes d or strictly follows it.
		top := e.heap[0]
		if top.at < d.at || (top.at == d.at && top.seq < d.seq) {
			return false
		}
	}
	e.now = d.at
	if e.rec != nil {
		e.rec.Record(trace.Event{T: e.now, Kind: trace.KindFire})
	}
	return true
}

// CommitDeferred schedules the deferred slot into the event heap under
// its reserved sequence number. No second schedule trace event is
// emitted — DeferAfter already recorded it. A +Inf slot (from an
// infinite delay) is dropped, matching After.
func (e *Engine) CommitDeferred(d Deferred, fn func()) {
	if math.IsInf(d.at, 1) {
		return
	}
	idx := e.alloc(fn)
	e.push(entry{at: d.at, seq: d.seq, idx: idx})
}

// Step fires the single next event, advancing the clock. It returns false
// when the queue is empty or only holds events past the horizon.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		top := e.heap[0]
		nd := &e.nodes[top.idx]
		if nd.dead {
			e.pop()
			e.release(top.idx)
			continue
		}
		if e.Horizon > 0 && top.at > e.Horizon {
			// Advance the clock to the horizon so callers measuring
			// elapsed time see a full window.
			e.now = e.Horizon
			return false
		}
		e.pop()
		fn := nd.fn
		// The event is now committed to fire: bump the generation so any
		// handle to it goes stale immediately — a later Cancel is a true
		// no-op and Cancelled reports false, rather than marking the
		// free-listed node dead and ghost-cancelling a reused slot.
		nd.gen++
		// Release before firing: the callback may schedule, and reusing
		// this node immediately keeps the steady state allocation-free.
		e.release(top.idx)
		e.now = top.at
		if e.rec != nil {
			e.rec.Record(trace.Event{T: e.now, Kind: trace.KindFire})
		}
		fn()
		return true
	}
	return false
}

// Run processes events until the queue drains, Stop is called, or the
// horizon is reached. It returns the final simulated time.
func (e *Engine) Run() Time {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	e.stopped = false
	for !e.stopped && e.Step() {
	}
	return e.now
}

// RunUntil processes events until time t (inclusive), leaving later events
// queued. It returns the simulated time afterwards, which is t if the
// queue outlived it. A positive Horizon still bounds the clock: the
// target is clamped to it, so RunUntil never advances past the horizon.
func (e *Engine) RunUntil(t Time) Time {
	if e.Horizon > 0 && t > e.Horizon {
		t = e.Horizon
	}
	prev := e.limit
	e.limit = t
	defer func() { e.limit = prev }()
	for len(e.heap) > 0 {
		// Drain dead events so the head is live.
		top := e.heap[0]
		if e.nodes[top.idx].dead {
			e.pop()
			e.release(top.idx)
			continue
		}
		if top.at > t {
			break
		}
		if !e.Step() {
			break
		}
		if e.stopped {
			return e.now
		}
	}
	if e.now < t {
		e.now = t
	}
	return e.now
}

// Timer is a pre-bound re-armable timer: the callback is fixed when the
// timer is bound, so arming it in steady state allocates nothing (plain
// After/Schedule allocate a fresh closure per call whenever the callback
// captures state). A Timer tracks at most one outstanding event —
// re-arming cancels the pending one — which fits re-arming state machines
// like link modulators and protocol timers. For overlapping events that
// share one callback, pass a pre-bound func() to After/Schedule directly.
//
// The zero Timer is not usable; bind one with Engine.BindTimer. A Timer
// must not be copied once armed (the copy would duplicate the
// pending-event handle).
type Timer struct {
	eng *Engine
	fn  func()
	ev  Event
}

// BindTimer binds fn to a reusable timer. The callback is bound once
// here; every later arm reuses it.
func (e *Engine) BindTimer(fn func()) Timer {
	if fn == nil {
		panic("sim: BindTimer with nil callback")
	}
	return Timer{eng: e, fn: fn}
}

// After arms the timer delay seconds from now, cancelling any pending arm.
// Delay semantics match Engine.After.
func (t *Timer) After(delay float64) {
	t.ev.Cancel()
	t.ev = t.eng.After(delay, t.fn)
}

// Schedule arms the timer at absolute time at, cancelling any pending
// arm. Time semantics match Engine.Schedule.
func (t *Timer) Schedule(at Time) {
	t.ev.Cancel()
	t.ev = t.eng.Schedule(at, t.fn)
}

// Stop cancels the pending arm, if any.
func (t *Timer) Stop() { t.ev.Cancel() }

// At returns the fire time of the most recent arm (or fired arm).
func (t *Timer) At() Time { return t.ev.At() }

// Ticker invokes fn every interval seconds until cancelled. The first tick
// fires one interval from the time Tick is created.
type Ticker struct {
	eng      *Engine
	interval float64
	fn       func()
	tick     func() // allocated once; re-armed without a fresh closure
	ev       Event
	stopped  bool
}

// Tick starts a recurring callback. Interval must be positive.
func (e *Engine) Tick(interval float64, fn func()) *Ticker {
	if interval <= 0 || math.IsNaN(interval) {
		panic("sim: Tick interval must be positive")
	}
	t := &Ticker{eng: e, interval: interval, fn: fn}
	t.tick = func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.eng.After(t.interval, t.tick)
}

// Stop cancels the ticker. The callback will not fire again.
func (t *Ticker) Stop() {
	t.stopped = true
	t.ev.Cancel()
}

// Interval returns the current ticker period in seconds.
func (t *Ticker) Interval() float64 { return t.interval }

// SetInterval changes the ticker period starting from the next re-arm.
func (t *Ticker) SetInterval(interval float64) {
	if interval <= 0 || math.IsNaN(interval) {
		panic("sim: Ticker interval must be positive")
	}
	t.interval = interval
}
