package sim

import (
	"testing"
)

// TestSnapshotRestoreReplay checks the core contract: restoring a
// checkpoint replays the exact same suffix, including event ordering and
// the sequence counter.
func TestSnapshotRestoreReplay(t *testing.T) {
	e := New()
	var log []string
	emit := func(s string) func() { return func() { log = append(log, s) } }
	e.Schedule(1, emit("a"))
	e.Schedule(2, emit("b"))
	e.Schedule(2, emit("c")) // same time: seq breaks the tie
	e.Schedule(5, emit("d"))

	e.RunBefore(2)
	if e.Now() != 1 {
		t.Fatalf("RunBefore(2) left clock at %v, want 1 (last fired event)", e.Now())
	}
	var ck Checkpoint
	e.Snapshot(&ck)

	e.Run()
	first := append([]string(nil), log...)
	want := []string{"a", "b", "c", "d"}
	if len(first) != 4 {
		t.Fatalf("first run fired %v, want %v", first, want)
	}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("first run fired %v, want %v", first, want)
		}
	}

	for rep := 0; rep < 3; rep++ {
		log = log[:1] // keep "a": it fired before the snapshot
		e.Restore(&ck)
		if e.Now() != 1 {
			t.Fatalf("restore left clock at %v, want 1", e.Now())
		}
		e.Run()
		if len(log) != 4 {
			t.Fatalf("replay %d fired %v, want %v", rep, log, want)
		}
		for i := range want {
			if log[i] != want[i] {
				t.Fatalf("replay %d fired %v, want %v", rep, log, want)
			}
		}
	}
}

// TestRunBeforeLeavesBoundaryQueued checks that events at exactly t stay
// queued, including when a dead entry sits on top of the heap at t.
func TestRunBeforeLeavesBoundaryQueued(t *testing.T) {
	e := New()
	fired := 0
	e.Schedule(1, func() { fired++ })
	ev := e.Schedule(2, func() { fired++ })
	e.Schedule(2, func() { fired++ })
	ev.Cancel()

	e.RunBefore(2)
	if fired != 1 {
		t.Fatalf("RunBefore(2) fired %d events, want 1", fired)
	}
	if at, _, ok := e.PeekNext(); !ok || at != 2 {
		t.Fatalf("next live event at %v (ok=%v), want 2", at, ok)
	}
	e.Run()
	if fired != 2 {
		t.Fatalf("total fired %d, want 2 (one boundary event was cancelled)", fired)
	}
}

// TestRestoreScrubsPostSnapshotHandles is the dead-top-drain regression:
//
//  1. schedule and snapshot,
//  2. cancel a snapshotted event and let PeekNext drain its dead entry,
//     putting the node on the free list,
//  3. schedule a new event that reuses that node (generation bumped),
//  4. restore the older checkpoint.
//
// The post-snapshot handle must go stale — cancelling it must not kill
// the restored (resurrected) original event — and the pre-snapshot handle
// must work again.
func TestRestoreScrubsPostSnapshotHandles(t *testing.T) {
	e := New()
	var fired []string
	ev1 := e.Schedule(1, func() { fired = append(fired, "one") })
	ev2 := e.Schedule(2, func() { fired = append(fired, "two") })

	var ck Checkpoint
	e.Snapshot(&ck)

	// Kill ev2 and force PeekNext to drain both dead-top entries is not
	// possible (ev1 is live), so cancel both to exercise the drain.
	ev1.Cancel()
	ev2.Cancel()
	if _, _, ok := e.PeekNext(); ok {
		t.Fatal("PeekNext found a live event after cancelling both")
	}
	if e.Pending() != 0 {
		t.Fatalf("drain left %d heap entries", e.Pending())
	}

	// These reuse the freed nodes with bumped generations.
	ev3 := e.Schedule(3, func() { fired = append(fired, "three") })
	ev4 := e.Schedule(4, func() { fired = append(fired, "four") })

	e.Restore(&ck)

	// Handles minted after the snapshot must be inert now.
	ev3.Cancel()
	ev4.Cancel()
	if ev3.Cancelled() || ev4.Cancelled() {
		t.Fatal("post-snapshot handle still resolves after Restore")
	}

	// Pre-snapshot handles must be live again: cancel ev2 for real.
	ev2.Cancel()
	if !ev2.Cancelled() {
		t.Fatal("pre-snapshot handle did not resurrect on Restore")
	}
	e.Run()
	if len(fired) != 1 || fired[0] != "one" {
		t.Fatalf("fired %v, want [one] (two cancelled, three/four scrubbed)", fired)
	}
}

// TestRestoreAfterArenaGrowth restores a checkpoint taken before the node
// arena grew; the grown tail must be scrubbed onto the free list and the
// replay must stay identical.
func TestRestoreAfterArenaGrowth(t *testing.T) {
	e := New()
	n := 0
	e.Schedule(1, func() { n++ })
	var ck Checkpoint
	e.Snapshot(&ck)

	extra := make([]Event, 64)
	for i := range extra {
		extra[i] = e.Schedule(Time(2+i), func() { n += 100 })
	}
	e.Restore(&ck)
	for _, ev := range extra {
		ev.Cancel() // all stale: must be no-ops
	}
	e.Run()
	if n != 1 {
		t.Fatalf("n = %d after restored run, want 1", n)
	}
	// The scrubbed tail must be reusable.
	e.Schedule(5, func() { n += 10 })
	e.Run()
	if n != 11 {
		t.Fatalf("n = %d after reuse run, want 11", n)
	}
}

// TestSnapshotSteadyStateAllocs: reusing a Checkpoint's buffers must not
// allocate.
func TestSnapshotSteadyStateAllocs(t *testing.T) {
	e := New()
	for i := 0; i < 100; i++ {
		e.Schedule(Time(i), func() {})
	}
	var ck Checkpoint
	e.Snapshot(&ck)
	allocs := testing.AllocsPerRun(100, func() {
		e.Snapshot(&ck)
		e.Restore(&ck)
	})
	if allocs != 0 {
		t.Fatalf("Snapshot+Restore allocates %.1f per cycle, want 0", allocs)
	}
}

// TestTimerSnapshotEvent checks the Timer re-arm hazard: after a Restore,
// a timer whose handle was not restored would ghost-cancel whatever event
// reused its node.
func TestTimerSnapshotEvent(t *testing.T) {
	e := New()
	var fired []string
	tm := e.BindTimer(func() { fired = append(fired, "timer") })
	tm.After(10)

	var ck Checkpoint
	e.Snapshot(&ck)
	saved := tm.SnapshotEvent()

	// Diverge: re-arm the timer (cancels the old event, allocates a new
	// node), then restore.
	tm.After(1)
	e.Restore(&ck)
	tm.RestoreEvent(saved)

	// Re-arming now must cancel the restored event, not a stranger.
	e.Schedule(2, func() { fired = append(fired, "other") })
	tm.After(5)
	e.Run()
	if len(fired) != 2 || fired[0] != "other" || fired[1] != "timer" {
		t.Fatalf("fired %v, want [other timer]", fired)
	}
	if e.Now() != 5 {
		t.Fatalf("clock at %v, want 5 (re-armed timer)", e.Now())
	}
}
