package sim

import "math"

// Checkpoint is a reusable deep copy of an Engine's dynamic state: the
// 4-ary heap, the node arena (callbacks, generations, liveness), the free
// list, the clock, the sequence counter, and the batch-window fields. One
// Checkpoint can be restored any number of times, which is what the
// sweep-fork executor in internal/scenario builds on: simulate a shared
// prefix once, snapshot, then restore per sweep point.
//
// The buffers grow on first use and are reused by later Snapshot calls,
// so a pooled Checkpoint allocates nothing in steady state.
type Checkpoint struct {
	now     Time
	heap    []entry
	nodes   []node
	free    []int32
	seq     uint64
	stopped bool
	limit   Time
	horizon Time
}

// Snapshot copies the engine's state into ck. The engine must not be
// inside Run (snapshot between events, e.g. after RunBefore returns).
// The attached trace recorder is not part of the checkpoint: forked runs
// are recorder-less, and Restore leaves the current recorder in place.
func (e *Engine) Snapshot(ck *Checkpoint) {
	if e.running {
		panic("sim: Snapshot during Run")
	}
	ck.now = e.now
	ck.seq = e.seq
	ck.stopped = e.stopped
	ck.limit = e.limit
	ck.horizon = e.Horizon
	ck.heap = append(ck.heap[:0], e.heap...)
	ck.nodes = append(ck.nodes[:0], e.nodes...)
	ck.free = append(ck.free[:0], e.free...)
}

// Restore rewinds the engine to the snapshot. Node slots that exist in
// the snapshot get their exact saved state back — callback, generation,
// and liveness — so Event handles obtained before the Snapshot work again
// (cancelling one cancels the restored event). Slots allocated after the
// snapshot are scrubbed: their generation is bumped and they return to
// the free list, so any handle minted after the Snapshot goes stale and
// cannot resurrect or ghost-cancel a restored event. Handles obtained
// after Snapshot must not be used after Restore.
//
// Restore performs no allocations: the node arena is never truncated,
// only its snapshot prefix is overwritten.
func (e *Engine) Restore(ck *Checkpoint) {
	if e.running {
		panic("sim: Restore during Run")
	}
	e.now = ck.now
	e.seq = ck.seq
	e.stopped = ck.stopped
	e.limit = ck.limit
	e.Horizon = ck.horizon
	e.heap = append(e.heap[:0], ck.heap...)
	n := len(ck.nodes)
	if len(e.nodes) < n {
		// Cannot happen when restoring into the engine that was
		// snapshotted (the arena only grows), but keep Restore total.
		e.nodes = append(e.nodes, make([]node, n-len(e.nodes))...)
	}
	copy(e.nodes[:n], ck.nodes)
	e.free = append(e.free[:0], ck.free...)
	for i := n; i < len(e.nodes); i++ {
		nd := &e.nodes[i]
		nd.fn = nil
		nd.gen++
		nd.dead = false
		e.free = append(e.free, int32(i))
	}
}

// RunBefore processes events strictly before time t, leaving every event
// at or after t queued — including events at exactly t. It is the fork
// executor's positioning primitive: stopping strictly before the first
// divergent event's timestamp leaves that event (and its same-time
// predecessors) queued, so a restored copy replays them identically.
// Unlike RunUntil, the clock is left at the last fired event, not
// advanced to t. The round batcher is bounded the same way: no deferred
// completion at or past t is coalesced inline.
func (e *Engine) RunBefore(t Time) Time {
	prev := e.limit
	// The batch window must exclude t itself; the largest representable
	// time below t is the tightest inline-firing bound.
	e.limit = math.Nextafter(t, math.Inf(-1))
	defer func() { e.limit = prev }()
	for len(e.heap) > 0 {
		top := e.heap[0]
		if e.nodes[top.idx].dead {
			e.pop()
			e.release(top.idx)
			continue
		}
		if top.at >= t {
			break
		}
		if !e.Step() {
			break
		}
		if e.stopped {
			break
		}
	}
	return e.now
}

// SnapshotEvent returns the timer's pending-event handle so a caller
// checkpointing state that owns Timers (link modulators) can restore it
// alongside the engine: Timer.After cancels the previous arm, and after
// an Engine.Restore the handle must match the restored heap or the next
// re-arm would ghost-cancel an unrelated event.
func (t *Timer) SnapshotEvent() Event { return t.ev }

// RestoreEvent reinstates a handle saved by SnapshotEvent.
func (t *Timer) RestoreEvent(ev Event) { t.ev = ev }
