package sim

import "testing"

// BenchmarkEventThroughput measures raw kernel speed: schedule-and-fire of
// chained events, the dominant cost of every experiment.
func BenchmarkEventThroughput(b *testing.B) {
	e := New()
	n := 0
	var chain func()
	chain = func() {
		n++
		if n < b.N {
			e.After(1, chain)
		}
	}
	e.After(1, chain)
	b.ResetTimer()
	e.Run()
}

// BenchmarkHeapChurn measures mixed schedule/cancel behaviour with many
// outstanding events (timers armed and mostly cancelled, as RTO timers
// are).
func BenchmarkHeapChurn(b *testing.B) {
	e := New()
	fn := func() {}
	for i := 0; i < b.N; i++ {
		ev := e.Schedule(e.Now()+10, fn)
		e.Schedule(e.Now()+1, fn)
		ev.Cancel()
		e.Step()
	}
}

// BenchmarkSimKernel is the acceptance benchmark for the allocation-free
// kernel: steady-state schedule/fire with a modest standing population of
// timers, the shape every scenario run produces (run with -benchmem; the
// free-listed node arena and value-entry heap must report 0 allocs/op).
func BenchmarkSimKernel(b *testing.B) {
	e := New()
	fn := func() {}
	// A standing population of far-out timers (RTOs, tickers) keeps the
	// heap non-trivially deep.
	for i := 0; i < 64; i++ {
		e.Schedule(1e9+float64(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+1, fn)
		e.Step()
	}
}
