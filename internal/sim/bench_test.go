package sim

import "testing"

// BenchmarkEventThroughput measures raw kernel speed: schedule-and-fire of
// chained events, the dominant cost of every experiment.
func BenchmarkEventThroughput(b *testing.B) {
	e := New()
	n := 0
	var chain func()
	chain = func() {
		n++
		if n < b.N {
			e.After(1, chain)
		}
	}
	e.After(1, chain)
	b.ResetTimer()
	e.Run()
}

// BenchmarkHeapChurn measures mixed schedule/cancel behaviour with many
// outstanding events (timers armed and mostly cancelled, as RTO timers
// are).
func BenchmarkHeapChurn(b *testing.B) {
	e := New()
	for i := 0; i < b.N; i++ {
		ev := e.Schedule(e.Now()+10, func() {})
		e.Schedule(e.Now()+1, func() {})
		ev.Cancel()
		e.Step()
	}
}
