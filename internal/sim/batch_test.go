package sim

import (
	"math"
	"testing"

	"repro/internal/trace"
)

func TestPeekNextEmpty(t *testing.T) {
	e := New()
	if _, _, ok := e.PeekNext(); ok {
		t.Error("PeekNext on empty engine reported a pending event")
	}
}

func TestPeekNextReportsMinAndDrainsDead(t *testing.T) {
	e := New()
	ev := e.Schedule(1, func() {})
	e.Schedule(2, func() {})
	ev.Cancel()
	before := e.Pending()
	at, seq, ok := e.PeekNext()
	if !ok || at != 2 {
		t.Fatalf("PeekNext = (%v, %d, %v), want live event at t=2", at, seq, ok)
	}
	if e.Pending() >= before {
		t.Errorf("PeekNext left the dead head queued: pending %d, was %d", e.Pending(), before)
	}
	// Peek must not fire or pop the live head.
	if at2, _, ok2 := e.PeekNext(); !ok2 || at2 != 2 {
		t.Errorf("second PeekNext = (%v, %v), want (2, true)", at2, ok2)
	}
}

// DeferAfter must consume the same sequence number a real After would, so
// committed slots interleave with ordinary events exactly as if they had
// been scheduled eagerly.
func TestDeferAfterReservesSequence(t *testing.T) {
	e := New()
	var order []int
	e.Schedule(5, func() { order = append(order, 1) }) // seq 0
	d := e.DeferAfter(5)                               // seq 1
	e.Schedule(5, func() { order = append(order, 3) }) // seq 2
	e.CommitDeferred(d, func() { order = append(order, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDeferAfterDelaySemantics(t *testing.T) {
	e := New()
	e.Schedule(3, func() {})
	e.Run() // now = 3

	if d := e.DeferAfter(-1); d.At() != 3 {
		t.Errorf("negative delay deferred at %v, want clamp to now=3", d.At())
	}
	if d := e.DeferAfter(math.Inf(1)); !math.IsInf(d.At(), 1) {
		t.Errorf("infinite delay deferred at %v, want +Inf", d.At())
	}
	defer func() {
		if recover() == nil {
			t.Error("DeferAfter(NaN) did not panic")
		}
	}()
	e.DeferAfter(math.NaN())
}

func TestCommitDeferredDropsInfinite(t *testing.T) {
	e := New()
	d := e.DeferAfter(math.Inf(1))
	e.CommitDeferred(d, func() { t.Error("infinite slot fired") })
	if e.Pending() != 0 {
		t.Errorf("pending = %d after committing +Inf slot, want 0", e.Pending())
	}
	if e.TryFireInline(d) {
		t.Error("TryFireInline fired a +Inf slot")
	}
	if e.CanFireInline(d) {
		t.Error("CanFireInline accepted a +Inf slot")
	}
}

// The two inline-firing paths must agree: TryFireInline is the fused form
// of CanFireInline + FireInline.
func TestInlineFireAdvancesClockAndTraces(t *testing.T) {
	e := New()
	rec := &countRecorder{}
	e.SetRecorder(rec)

	d := e.DeferAfter(2)
	if rec.counts[trace.KindSchedule] != 1 {
		t.Fatalf("schedule events = %d, want 1 from DeferAfter", rec.counts[trace.KindSchedule])
	}
	if !e.CanFireInline(d) {
		t.Fatal("CanFireInline = false with an empty queue")
	}
	if !e.TryFireInline(d) {
		t.Fatal("TryFireInline = false with an empty queue")
	}
	if e.Now() != 2 {
		t.Errorf("now = %v after inline fire, want 2", e.Now())
	}
	if rec.counts[trace.KindFire] != 1 {
		t.Errorf("fire events = %d, want 1", rec.counts[trace.KindFire])
	}

	d2 := e.DeferAfter(1)
	e.FireInline(d2)
	if e.Now() != 3 {
		t.Errorf("now = %v after FireInline, want 3", e.Now())
	}
	if rec.counts[trace.KindFire] != 2 {
		t.Errorf("fire events = %d, want 2", rec.counts[trace.KindFire])
	}
}

func TestInlineFireRefusedWhenNotNext(t *testing.T) {
	e := New()
	e.Schedule(1, func() {}) // earlier live event
	d := e.DeferAfter(2)
	if e.CanFireInline(d) {
		t.Error("CanFireInline = true with an earlier event queued")
	}
	if e.TryFireInline(d) {
		t.Error("TryFireInline fired ahead of an earlier event")
	}
	if e.Now() != 0 {
		t.Errorf("refused inline fire moved the clock to %v", e.Now())
	}
}

// Same fire time: the earlier sequence number wins, matching heap FIFO.
func TestInlineFireSequenceTieBreak(t *testing.T) {
	e := New()
	e.Schedule(2, func() {}) // seq 0
	d := e.DeferAfter(2)     // seq 1
	if e.CanFireInline(d) || e.TryFireInline(d) {
		t.Error("inline fire won a same-time tie against an earlier sequence")
	}

	e2 := New()
	d2 := e2.DeferAfter(2)    // seq 0
	e2.Schedule(2, func() {}) // seq 1
	if !e2.CanFireInline(d2) {
		t.Error("CanFireInline lost a same-time tie it should win (earlier seq)")
	}
	if !e2.TryFireInline(d2) {
		t.Error("TryFireInline lost a same-time tie it should win (earlier seq)")
	}
}

func TestInlineFireRespectsStop(t *testing.T) {
	e := New()
	d := e.DeferAfter(1)
	e.Stop()
	if e.CanFireInline(d) {
		t.Error("CanFireInline = true on a stopped engine")
	}
	if e.TryFireInline(d) {
		t.Error("TryFireInline fired on a stopped engine")
	}
}

func TestInlineFireRespectsHorizon(t *testing.T) {
	e := New()
	e.Horizon = 5
	if d := e.DeferAfter(4); !e.CanFireInline(d) || !e.TryFireInline(d) {
		t.Error("inline fire refused inside the horizon")
	}
	d := e.DeferAfter(10)
	if e.CanFireInline(d) {
		t.Error("CanFireInline = true past the horizon")
	}
	if e.TryFireInline(d) {
		t.Error("TryFireInline fired past the horizon")
	}
}

// A dead heap top may conservatively refuse an inline fire, but committing
// the slot and running normally must still produce the right order.
func TestTryFireInlineConservativeOnDeadTop(t *testing.T) {
	e := New()
	ev := e.Schedule(1, func() { t.Error("cancelled event fired") })
	ev.Cancel()
	d := e.DeferAfter(2)
	// The dead entry at t=1 precedes d, so the raw-top probe refuses.
	if e.TryFireInline(d) {
		t.Fatal("TryFireInline fired across a dead-but-undrained top")
	}
	fired := false
	e.CommitDeferred(d, func() { fired = true })
	e.Run()
	if !fired {
		t.Error("committed slot never fired")
	}
	if e.Now() != 2 {
		t.Errorf("final time = %v, want 2", e.Now())
	}
}

// RunUntil(t) must keep the batcher from coalescing the clock past t:
// a deferred slot past the bound is refused inline even when it is the
// next event, and stays queued for the next RunUntil window.
func TestInlineFireRespectsRunUntilBound(t *testing.T) {
	e := New()
	var inside, canInside bool
	firedAt := Time(-1)
	e.Schedule(1, func() {
		d := e.DeferAfter(5) // t=6, past the RunUntil(3) bound
		canInside = e.CanFireInline(d)
		inside = e.TryFireInline(d)
		e.CommitDeferred(d, func() { firedAt = e.Now() })
	})
	e.RunUntil(3)
	if canInside || inside {
		t.Error("inline fire crossed a RunUntil bound")
	}
	if e.Now() != 3 {
		t.Errorf("now = %v after RunUntil(3), want 3", e.Now())
	}
	if firedAt != -1 {
		t.Fatalf("deferred slot fired at %v inside the bounded window", firedAt)
	}
	// The bound must lift once RunUntil returns.
	e.RunUntil(10)
	if firedAt != 6 {
		t.Errorf("deferred slot fired at %v, want 6 in the next window", firedAt)
	}
}

// After RunUntil returns, plain Run must allow inline fires again: the
// limit is restored, not left at the last bound.
func TestRunUntilRestoresInlineLimit(t *testing.T) {
	e := New()
	e.Schedule(1, func() {})
	e.RunUntil(2)
	d := e.DeferAfter(5) // t=7, past the old bound
	if !e.CanFireInline(d) {
		t.Error("CanFireInline still bounded after RunUntil returned")
	}
	if !e.TryFireInline(d) {
		t.Error("TryFireInline still bounded after RunUntil returned")
	}
}

// A full deferred cycle (reserve, inline-fire) must allocate nothing, with
// and without a recorder attached: the fast path exists to avoid the heap
// round-trip, so an allocation would defeat it.
func TestInlineFireAllocFree(t *testing.T) {
	e := New()
	allocs := testing.AllocsPerRun(200, func() {
		d := e.DeferAfter(1)
		if !e.TryFireInline(d) {
			t.Fatal("inline fire refused on an empty queue")
		}
	})
	if allocs != 0 {
		t.Errorf("defer/inline-fire cycle allocates %.1f per op, want 0", allocs)
	}

	e.SetRecorder(trace.NewJSONL(trace.AllKinds, 1024))
	allocs = testing.AllocsPerRun(200, func() {
		d := e.DeferAfter(1)
		if !e.TryFireInline(d) {
			t.Fatal("traced inline fire refused on an empty queue")
		}
	})
	if allocs != 0 {
		t.Errorf("traced defer/inline-fire cycle allocates %.1f per op, want 0", allocs)
	}
}

// Equivalence: an After+Run schedule and a DeferAfter+inline/commit batch
// produce identical fire orders and identical trace streams for a mix of
// inline-able and refused slots.
func TestDeferredMatchesScheduledTrace(t *testing.T) {
	run := func(batched bool) ([]trace.Event, []int) {
		e := New()
		rec := &sliceRecorder{}
		e.SetRecorder(rec)
		var order []int
		e.Schedule(1, func() {
			if batched {
				d := e.DeferAfter(1)
				if !e.TryFireInline(d) {
					t.Fatal("slot at t=2 should fire inline")
				}
				order = append(order, 2)
				// Next slot collides with the t=3 event below and must
				// lose the tie (later seq), falling back to the heap.
				d = e.DeferAfter(1)
				if e.TryFireInline(d) {
					t.Fatal("slot at t=3 should lose the tie")
				}
				e.CommitDeferred(d, func() { order = append(order, 4) })
			} else {
				e.After(1, func() {
					order = append(order, 2)
					e.After(1, func() { order = append(order, 4) })
				})
			}
		})
		e.Schedule(3, func() { order = append(order, 3) })
		e.Run()
		return rec.events, order
	}
	batchedEvents, batchedOrder := run(true)
	plainEvents, plainOrder := run(false)
	if len(batchedOrder) != len(plainOrder) {
		t.Fatalf("order length: batched %v, plain %v", batchedOrder, plainOrder)
	}
	for i := range plainOrder {
		if batchedOrder[i] != plainOrder[i] {
			t.Fatalf("fire order: batched %v, plain %v", batchedOrder, plainOrder)
		}
	}
	if len(batchedEvents) != len(plainEvents) {
		t.Fatalf("trace length: batched %d, plain %d", len(batchedEvents), len(plainEvents))
	}
	for i := range plainEvents {
		if batchedEvents[i] != plainEvents[i] {
			t.Fatalf("trace event %d: batched %+v, plain %+v", i, batchedEvents[i], plainEvents[i])
		}
	}
}

// sliceRecorder captures the full event stream for equality checks.
type sliceRecorder struct{ events []trace.Event }

func (s *sliceRecorder) Record(ev trace.Event) { s.events = append(s.events, ev) }
