package sim

import (
	"testing"

	"repro/internal/trace"
)

// countRecorder tallies events per kind.
type countRecorder struct {
	counts [trace.NumKinds]int
	last   trace.Event
}

func (c *countRecorder) Record(ev trace.Event) {
	c.counts[ev.Kind]++
	c.last = ev
}

func TestKernelTraceEmission(t *testing.T) {
	e := New()
	rec := &countRecorder{}
	e.SetRecorder(rec)
	if e.Recorder() != trace.Recorder(rec) {
		t.Fatal("Recorder() did not return the attached recorder")
	}
	ev := e.Schedule(1, func() {})
	e.Schedule(2, func() {})
	ev.Cancel()
	ev.Cancel() // second cancel is ineffective, must not double-count
	e.Run()
	if got := rec.counts[trace.KindSchedule]; got != 2 {
		t.Errorf("schedule events = %d, want 2", got)
	}
	if got := rec.counts[trace.KindCancel]; got != 1 {
		t.Errorf("cancel events = %d, want 1 (no-op cancels must not record)", got)
	}
	if got := rec.counts[trace.KindFire]; got != 1 {
		t.Errorf("fire events = %d, want 1 (cancelled event must not fire)", got)
	}
	if rec.last.T != 2 {
		t.Errorf("last fire at t=%v, want 2", rec.last.T)
	}
}

// The recorder hook must not reintroduce allocations on the hot path.
func TestTracedScheduleSteadyStateAllocFree(t *testing.T) {
	e := New()
	e.SetRecorder(trace.NewJSONL(trace.AllKinds, 1024))
	// Warm the arena and ring.
	for i := 0; i < 64; i++ {
		e.After(1, func() {})
	}
	for e.Step() {
	}
	fn := func() {}
	allocs := testing.AllocsPerRun(200, func() {
		e.After(1, fn)
		e.Step()
	})
	if allocs != 0 {
		t.Errorf("traced schedule/fire cycle allocates %.1f per op, want 0", allocs)
	}
}
