package sim

import "testing"

func TestTimerRearmAndStop(t *testing.T) {
	e := New()
	var fired []Time
	tm := e.BindTimer(func() { fired = append(fired, e.Now()) })
	tm.After(1)
	tm.After(2) // re-arm cancels the pending arm
	e.Run()
	if len(fired) != 1 || fired[0] != 2 {
		t.Fatalf("fired = %v, want [2]", fired)
	}

	tm.Schedule(5)
	tm.Stop()
	e.Run()
	if len(fired) != 1 {
		t.Fatalf("stopped timer fired: %v", fired)
	}

	// Re-arming after a fire (the state-machine pattern) works without a
	// fresh binding.
	tm.After(1)
	e.Run()
	if len(fired) != 2 || fired[1] != 3 {
		t.Fatalf("fired = %v, want [2 3]", fired)
	}
	if tm.At() != 3 {
		t.Fatalf("At = %v, want 3", tm.At())
	}
}

func TestTimerSteadyStateAllocFree(t *testing.T) {
	e := New()
	var tm Timer
	tm = e.BindTimer(func() { tm.After(1) })
	tm.After(1)
	for i := 0; i < 8; i++ {
		e.Step()
	}
	if got := testing.AllocsPerRun(100, func() { e.Step() }); got != 0 {
		t.Fatalf("timer re-arm allocated %.1f times", got)
	}
}

func TestResetReusesArena(t *testing.T) {
	e := New()
	fn := func() {}
	for i := 0; i < 32; i++ {
		e.Schedule(float64(i), fn)
	}
	ev := e.Schedule(100, fn)
	e.RunUntil(10)
	e.Reset()

	if e.Now() != 0 || e.Pending() != 0 {
		t.Fatalf("after Reset: now=%v pending=%d", e.Now(), e.Pending())
	}
	// Handles from before the reset are stale: Cancel must not touch the
	// recycled node.
	ev.Cancel()

	// A run on the reset engine behaves like one on a fresh engine and
	// allocates nothing once the arena is warm.
	var order []Time
	e.Schedule(2, func() { order = append(order, e.Now()) })
	e.Schedule(1, func() { order = append(order, e.Now()) })
	e.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v, want [1 2]", order)
	}

	e.Reset()
	if got := testing.AllocsPerRun(100, func() {
		e.Reset()
		e.Schedule(1, fn)
		e.Step()
	}); got != 0 {
		t.Fatalf("reset+schedule+step allocated %.1f times", got)
	}
}
