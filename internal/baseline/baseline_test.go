package baseline

import (
	"testing"

	"repro/internal/energy"
	"repro/internal/units"
)

func TestWiFiFirstRule(t *testing.T) {
	w := NewWiFiFirst(true)
	if w.UseCellular() {
		t.Error("associated: should not use cellular")
	}
	if !w.OnAssociation(false) {
		t.Error("disassociated: should switch to cellular")
	}
	if !w.UseCellular() {
		t.Error("UseCellular should reflect the last event")
	}
	if w.OnAssociation(true) {
		t.Error("re-associated: should leave cellular")
	}
}

func TestWiFiFirstIgnoresThroughput(t *testing.T) {
	// The §4.6 critique: WiFi First has no notion of throughput — only
	// association. A device associated to a useless AP stays on WiFi; the
	// verdict depends solely on association, by construction.
	w := NewWiFiFirst(true)
	if w.UseCellular() {
		t.Error("associated with zero-throughput WiFi still means WiFi for WiFi-First")
	}
}

func TestMDPDegeneratesToWiFiOnly(t *testing.T) {
	// §4.6: "LTE energy consumption per second never becomes lower than
	// WiFi in our energy model. We observe that the generated MDP
	// schedulers choose WiFi-only for all scenarios."
	pol := GenerateMDP(DefaultMDPConfig(energy.GalaxyS3()))
	if !pol.AlwaysWiFiOnly() {
		t.Error("MDP policy under the LTE energy model should always pick WiFi-only")
	}
	for _, r := range []float64{0.25, 1, 6, 12} {
		if got := pol.Decide(units.MbpsRate(r)); got != energy.WiFiOnly {
			t.Errorf("Decide(%v Mbps) = %v, want WiFi-only", r, got)
		}
	}
}

func TestMDPNexus5AlsoWiFiOnly(t *testing.T) {
	pol := GenerateMDP(DefaultMDPConfig(energy.Nexus5()))
	if !pol.AlwaysWiFiOnly() {
		t.Error("Nexus 5 MDP should also degenerate to WiFi-only")
	}
}

func TestMDPWithCheapCellularUsesCellular(t *testing.T) {
	// Pluntke et al. considered 3G models where cellular per-second power
	// dips below WiFi at high data rates. With a synthetic device whose
	// cellular radio is much cheaper than WiFi, the policy must flip.
	d := energy.GalaxyS3()
	d.Radios[energy.LTE].Base = units.MilliwattPower(50)
	d.Radios[energy.LTE].PerMbpsDown = units.MilliwattPower(5)
	pol := GenerateMDP(DefaultMDPConfig(d))
	if pol.AlwaysWiFiOnly() {
		t.Error("cheap-cellular model should produce cellular choices somewhere")
	}
}

func TestMDPCrossoverModel(t *testing.T) {
	// A model where cellular beats WiFi only at high rates: the policy
	// must be rate-dependent — WiFi at low levels, cellular at high ones.
	d := energy.GalaxyS3()
	d.Radios[energy.LTE].Base = units.MilliwattPower(700)
	d.Radios[energy.LTE].PerMbpsDown = units.MilliwattPower(5)
	// WiFi: 200 + 137r; cellular: 700 + 5r → crossover at r ≈ 3.8 Mbps.
	pol := GenerateMDP(DefaultMDPConfig(d))
	if got := pol.Decide(units.MbpsRate(0.25)); got != energy.WiFiOnly {
		t.Errorf("low rate: %v, want WiFi-only", got)
	}
	if got := pol.Decide(units.MbpsRate(12)); got != energy.LTEOnly {
		t.Errorf("high rate: %v, want LTE-only", got)
	}
}

func TestMDP3GVariant(t *testing.T) {
	cfg := DefaultMDPConfig(energy.GalaxyS3())
	cfg.Cellular = energy.Cell3G
	pol := GenerateMDP(cfg)
	// 3G base 818 mW vs WiFi 200 + 137r: 3G per-second beats WiFi above
	// r ≈ 41 Mbps, outside the grid → still WiFi-only.
	if !pol.AlwaysWiFiOnly() {
		t.Error("3G variant should also degenerate to WiFi-only on this grid")
	}
}

func TestMDPEpoch(t *testing.T) {
	pol := GenerateMDP(DefaultMDPConfig(energy.GalaxyS3()))
	if pol.Epoch() != 1.0 {
		t.Errorf("epoch = %v, want 1 s as in [24]", pol.Epoch())
	}
}

func TestMDPNearestSnapping(t *testing.T) {
	pol := GenerateMDP(DefaultMDPConfig(energy.GalaxyS3()))
	for _, r := range []float64{0, 0.1, 3, 7, 100} {
		_ = pol.Decide(units.MbpsRate(r)) // must not panic
	}
}

func TestMDPSingleLevel(t *testing.T) {
	cfg := DefaultMDPConfig(energy.GalaxyS3())
	cfg.Rates = cfg.Rates[:1]
	pol := GenerateMDP(cfg)
	if got := pol.Decide(units.MbpsRate(5)); got != energy.WiFiOnly {
		t.Errorf("single-level policy = %v", got)
	}
}

func TestMDPPanicsOnBadConfig(t *testing.T) {
	cfg := DefaultMDPConfig(energy.GalaxyS3())
	cfg.Rates = nil
	defer func() {
		if recover() == nil {
			t.Error("empty rate levels did not panic")
		}
	}()
	GenerateMDP(cfg)
}

func TestMDPPanicsOnBadDiscount(t *testing.T) {
	cfg := DefaultMDPConfig(energy.GalaxyS3())
	cfg.Discount = 1.5
	defer func() {
		if recover() == nil {
			t.Error("bad discount did not panic")
		}
	}()
	GenerateMDP(cfg)
}
