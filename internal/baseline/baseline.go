// Package baseline implements the alternative energy-management strategies
// the paper compares against in §4.6 and §6:
//
//   - MPTCP with WiFi First (Raiciu et al. [28]): the cellular subflow is
//     placed in backup mode at establishment and activated only when the
//     WiFi association is lost. The radio is still powered at connection
//     establishment, paying promotion and tail for nothing.
//   - The MDP path scheduler (Pluntke et al. [24]): an offline-computed
//     Markov-decision-process policy with one-second decision epochs over
//     a finite state machine of throughput changes. The paper, unable to
//     run the expensive computation on the phone, generates the schedulers
//     offline and simulates them; this package does the same with value
//     iteration. Following [24], the scheduler uses one interface at a
//     time and its per-epoch cost is the energy consumed per second
//     (power) of the chosen interface at the FSM's current rate level —
//     which is why, under an LTE energy model whose per-second consumption
//     never drops below WiFi's at any matched rate, the generated policy
//     degenerates to WiFi-only in every state (§4.6).
package baseline

import (
	"math"

	"repro/internal/energy"
	"repro/internal/units"
)

// WiFiFirst tracks the "MPTCP with WiFi First" rule. The scenario layer
// feeds it association events and applies its verdicts via MP_PRIO.
type WiFiFirst struct {
	associated bool
}

// NewWiFiFirst starts with the WiFi association in the given state.
func NewWiFiFirst(associated bool) *WiFiFirst {
	return &WiFiFirst{associated: associated}
}

// OnAssociation records an association change and returns whether the
// cellular subflow should now carry traffic: only when WiFi is gone.
func (w *WiFiFirst) OnAssociation(associated bool) (useCellular bool) {
	w.associated = associated
	return !associated
}

// UseCellular reports the current verdict.
func (w *WiFiFirst) UseCellular() bool { return !w.associated }

// MDPConfig parameterizes the Pluntke et al. scheduler generation.
type MDPConfig struct {
	// Rates are the discretised throughput levels of the finite state
	// machine of throughput changes the MDP is defined over.
	Rates []units.BitRate
	// StayProb is the per-epoch probability of remaining in the same
	// throughput level; the rest moves to a neighbouring level.
	StayProb float64
	// Epoch is the decision interval in seconds (1 s in [24]).
	Epoch float64
	// Discount is the value-iteration discount factor.
	Discount float64
	// Device supplies the energy model the costs are computed from.
	Device *energy.DeviceProfile
	// Cellular selects which cellular interface competes with WiFi
	// (Pluntke et al. modelled 3G; the paper's setting is LTE).
	Cellular energy.Interface
}

// DefaultMDPConfig discretises throughput into levels covering the paper's
// lab range, with LTE as the cellular interface.
func DefaultMDPConfig(d *energy.DeviceProfile) MDPConfig {
	lv := func(ms ...float64) []units.BitRate {
		out := make([]units.BitRate, len(ms))
		for i, m := range ms {
			out[i] = units.MbpsRate(m)
		}
		return out
	}
	return MDPConfig{
		Rates:    lv(0.25, 1, 2, 4, 6, 9, 12),
		StayProb: 0.9,
		Epoch:    1.0,
		Discount: 0.95,
		Device:   d,
		Cellular: energy.LTE,
	}
}

// MDPPolicy is the generated scheduler: an interface choice per
// throughput-FSM state.
type MDPPolicy struct {
	cfg    MDPConfig
	choice []energy.PathSet // per rate level
}

// mdpActions: the scheduler of [24] switches between interfaces, using one
// at a time.
var mdpActions = []energy.PathSet{energy.WiFiOnly, energy.LTEOnly}

// power returns the device's per-second energy consumption using interface
// set a at rate r.
func (cfg MDPConfig) power(a energy.PathSet, r units.BitRate) float64 {
	switch a {
	case energy.WiFiOnly:
		return float64(cfg.Device.SteadyPower(energy.WiFiOnly, r, 0))
	default:
		// Cellular-only. 3G reuses the LTE slot of SteadyPower via the
		// radio parameters.
		if cfg.Cellular == energy.Cell3G {
			return float64(cfg.Device.DeviceBase + cfg.Device.Radios[energy.Cell3G].ActivePower(r, 0))
		}
		return float64(cfg.Device.SteadyPower(energy.LTEOnly, 0, r))
	}
}

// GenerateMDP runs value iteration to convergence and extracts the greedy
// policy.
func GenerateMDP(cfg MDPConfig) *MDPPolicy {
	if len(cfg.Rates) == 0 {
		panic("baseline: MDP needs at least one rate level")
	}
	if cfg.StayProb < 0 || cfg.StayProb > 1 || cfg.Discount <= 0 || cfg.Discount >= 1 {
		panic("baseline: invalid MDP parameters")
	}
	n := len(cfg.Rates)

	type trans struct {
		to int
		p  float64
	}
	next := make([][]trans, n)
	for i := 0; i < n; i++ {
		if n == 1 {
			next[i] = []trans{{0, 1}}
			continue
		}
		var neigh []int
		if i-1 >= 0 {
			neigh = append(neigh, i-1)
		}
		if i+1 < n {
			neigh = append(neigh, i+1)
		}
		ts := []trans{{i, cfg.StayProb}}
		p := (1 - cfg.StayProb) / float64(len(neigh))
		for _, j := range neigh {
			ts = append(ts, trans{j, p})
		}
		next[i] = ts
	}

	cost := func(i int, a energy.PathSet) float64 {
		return cfg.power(a, cfg.Rates[i]) * cfg.Epoch
	}

	v := make([]float64, n)
	for iter := 0; iter < 100000; iter++ {
		maxDelta := 0.0
		for s := 0; s < n; s++ {
			ev := 0.0
			for _, t := range next[s] {
				ev += t.p * v[t.to]
			}
			best := math.Inf(1)
			for _, a := range mdpActions {
				if q := cost(s, a) + cfg.Discount*ev; q < best {
					best = q
				}
			}
			if d := math.Abs(best - v[s]); d > maxDelta {
				maxDelta = d
			}
			v[s] = best
		}
		if maxDelta < 1e-9 {
			break
		}
	}

	pol := &MDPPolicy{cfg: cfg, choice: make([]energy.PathSet, n)}
	for s := 0; s < n; s++ {
		ev := 0.0
		for _, t := range next[s] {
			ev += t.p * v[t.to]
		}
		best := math.Inf(1)
		bestA := energy.WiFiOnly
		for _, a := range mdpActions {
			if q := cost(s, a) + cfg.Discount*ev; q < best {
				best = q
				bestA = a
			}
		}
		pol.choice[s] = bestA
	}
	return pol
}

// Decide returns the policy's action for an observed throughput, snapping
// it to the nearest discretisation level. Per [24] the scheduler consults
// the FSM state once per epoch.
func (p *MDPPolicy) Decide(rate units.BitRate) energy.PathSet {
	return p.choice[nearest(p.cfg.Rates, rate)]
}

// Epoch returns the decision interval.
func (p *MDPPolicy) Epoch() float64 { return p.cfg.Epoch }

// AlwaysWiFiOnly reports whether the policy picks WiFi-only in every
// state — the degenerate outcome the paper observes in §4.6 when LTE's
// per-second energy never drops below WiFi's.
func (p *MDPPolicy) AlwaysWiFiOnly() bool {
	for _, a := range p.choice {
		if a != energy.WiFiOnly {
			return false
		}
	}
	return true
}

func nearest(levels []units.BitRate, v units.BitRate) int {
	best, bd := 0, math.Inf(1)
	for i, l := range levels {
		if d := math.Abs(float64(l - v)); d < bd {
			best, bd = i, d
		}
	}
	return best
}
