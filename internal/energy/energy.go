// Package energy implements the parameterized multi-interface power model
// and the 3GPP RRC radio state machine that eMPTCP's Energy Information
// Base is computed from (§2.3, §3.3 and Figure 1 of the paper).
//
// # Model
//
// Power while downloading decomposes into:
//
//   - a device base (SoC/platform) drawn whenever a transfer session is in
//     progress, counted once no matter how many radios are up;
//   - a per-radio active base drawn while that radio is powered for
//     transfer; and
//   - a throughput-proportional term per radio (mW per Mbps), following the
//     linear regression models of Huang et al. (MobiSys'12) that the paper
//     builds on.
//
// Counting the device base once is what produces the paper's V-shaped
// "both interfaces are most efficient" region (Figure 3): with a naive
// additive model the region collapses to a line. See DESIGN.md §4.2.
//
// # Fixed overheads
//
// Cellular radios pay fixed energy costs independent of the transfer size:
// the promotion (ramping from idle to the high-power state before any
// packet can move) and the tail (lingering in the high-power state after
// the last packet, 6–12 s depending on the provider). These are modelled
// by the Radio state machine: Idle → Promotion → Active → Tail → Idle.
// WiFi has only a negligible association cost (Figure 1: 0.15 J on the
// Galaxy S3, 0.06 J on the Nexus 5).
package energy

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// Interface identifies a network interface type.
type Interface int

// The interface types the paper evaluates.
const (
	WiFi Interface = iota
	Cell3G
	LTE
	numInterfaces
)

// NumInterfaces is the number of modelled interface types.
const NumInterfaces = int(numInterfaces)

// String returns the conventional name of the interface.
func (i Interface) String() string {
	switch i {
	case WiFi:
		return "WiFi"
	case Cell3G:
		return "3G"
	case LTE:
		return "LTE"
	default:
		return fmt.Sprintf("Interface(%d)", int(i))
	}
}

// IsCellular reports whether the interface is a cellular one (subject to
// promotion and tail overheads and to delayed subflow establishment).
func (i Interface) IsCellular() bool { return i == Cell3G || i == LTE }

// RadioParams parameterizes one radio's power behaviour.
type RadioParams struct {
	// Base is the power drawn while the radio is in the active state,
	// excluding the throughput-proportional part.
	Base units.Power
	// PerMbpsDown and PerMbpsUp are the marginal power per Mbps of
	// downlink / uplink traffic.
	PerMbpsDown units.Power
	PerMbpsUp   units.Power
	// PromoDur/PromoPower describe the promotion (idle → active ramp)
	// during which no data can flow.
	PromoDur   float64 // seconds
	PromoPower units.Power
	// TailDur/TailPower describe the post-transfer high-power tail.
	TailDur   float64 // seconds
	TailPower units.Power
	// AssocEnergy is a one-shot cost charged when the radio is first
	// activated (WiFi association; zero for cellular, whose ramp cost is
	// the promotion).
	AssocEnergy units.Energy
	// WeakSignalNominal/WeakSignalPenalty, when both set, model the
	// weak-signal effect (Ding et al. [7], Schulman et al. [31]): an
	// active radio on a degraded channel — link quality q =
	// capacity/nominal below 1 — draws up to WeakSignalPenalty extra
	// power, scaled by (1−q). The paper's energy model omits this; it is
	// disabled (zero) in the default profiles and exercised by the
	// weak-signal ablation, where it closes the TCP-over-WiFi energy gap
	// of EXPERIMENTS.md deviation D1.
	WeakSignalNominal units.BitRate
	WeakSignalPenalty units.Power
	// FACHDur/FACHPower/FACHRate, when all set, add the 3G FACH
	// intermediate state of Balasubramanian et al. [1]: after DCH
	// inactivity the radio drops to the shared channel (FACH) instead of
	// straight to the tail's end — roughly half DCH power — and can carry
	// up to FACHRate there; demand beyond that re-promotes to DCH. The
	// TailDur then covers the DCH inactivity timer and FACHDur the FACH
	// one. Zero (the default) keeps the two-state promotion/tail machine,
	// which is accurate for LTE and is what Figure 1 calibrates.
	FACHDur   float64
	FACHPower units.Power
	FACHRate  units.BitRate
}

// FixedOverhead returns the fixed energy cost of a minimal transfer on an
// idle radio: promotion + full tail (+ FACH dwell when modelled) +
// association. This is exactly the quantity Figure 1 plots.
func (p RadioParams) FixedOverhead() units.Energy {
	return p.PromoPower.Over(units.Duration(p.PromoDur)) +
		p.TailPower.Over(units.Duration(p.TailDur)) +
		p.FACHPower.Over(units.Duration(p.FACHDur)) +
		p.AssocEnergy
}

// ActivePower returns the radio's power at the given downlink/uplink
// throughputs while in the active state.
func (p RadioParams) ActivePower(down, up units.BitRate) units.Power {
	return p.Base +
		units.Power(down.Mbit())*p.PerMbpsDown +
		units.Power(up.Mbit())*p.PerMbpsUp
}

// DeviceProfile bundles the per-device parameters. The two profiles from
// the paper's Table 1 are provided by GalaxyS3 and Nexus5.
type DeviceProfile struct {
	Name string

	// Table 1 metadata (informational).
	ReleaseDate   string
	AppProcessor  string
	Semiconductor string
	Android       string
	Kernel        string
	WiFiChipset   string

	// DeviceBase is the platform power drawn during a transfer session,
	// counted once regardless of how many radios are active.
	DeviceBase units.Power

	// BatteryCapacity is the battery's usable energy, for expressing a
	// run's consumption as a battery fraction.
	BatteryCapacity units.Energy

	Radios [NumInterfaces]RadioParams
}

// BatteryFraction expresses an energy amount as a fraction of the
// device's battery capacity (0 when the capacity is unknown).
func (d *DeviceProfile) BatteryFraction(e units.Energy) float64 {
	if d.BatteryCapacity <= 0 {
		return 0
	}
	return float64(e) / float64(d.BatteryCapacity)
}

// GalaxyS3 returns the Samsung Galaxy S3 profile. Cellular radio
// parameters follow Huang et al. (MobiSys'12); the WiFi active base, WiFi
// marginal power and device base are calibrated so the generated Energy
// Information Base reproduces the paper's Table 2 thresholds across its
// whole range (the WiFi-only threshold column pins α_w ≈ 50 mW/Mbps and
// β_dev+β_w ≈ 670 mW; see DESIGN.md §1).
func GalaxyS3() *DeviceProfile {
	return &DeviceProfile{
		Name:            "Samsung Galaxy S3",
		ReleaseDate:     "May 2012",
		AppProcessor:    "Qualcomm MSM8960",
		Semiconductor:   "28nm LP",
		Android:         "4.1.2 (Jelly Bean)",
		Kernel:          "3.0.48",
		WiFiChipset:     "Broadcom BCM4334",
		DeviceBase:      units.MilliwattPower(415),
		BatteryCapacity: 28700, // 2100 mAh at 3.8 V
		Radios: [NumInterfaces]RadioParams{
			WiFi: {
				Base:        units.MilliwattPower(255),
				PerMbpsDown: units.MilliwattPower(50),
				PerMbpsUp:   units.MilliwattPower(283),
				TailDur:     0.24,
				TailPower:   units.MilliwattPower(250),
				AssocEnergy: 0.09,
			},
			Cell3G: {
				Base:        units.MilliwattPower(818),
				PerMbpsDown: units.MilliwattPower(122),
				PerMbpsUp:   units.MilliwattPower(868),
				PromoDur:    2.0,
				PromoPower:  units.MilliwattPower(817),
				// 3G uses the three-state machine of Balasubramanian et
				// al. [1]: a DCH inactivity tail, then a FACH dwell at
				// roughly half power that can carry low-rate traffic.
				// The split keeps the Figure 1 total (~8.1 J).
				TailDur:   3.5,
				TailPower: units.MilliwattPower(803),
				FACHDur:   8,
				FACHPower: units.MilliwattPower(450),
				FACHRate:  200 * units.Kbps,
			},
			LTE: {
				Base:        units.MilliwattPower(1288),
				PerMbpsDown: units.MilliwattPower(52),
				PerMbpsUp:   units.MilliwattPower(438),
				PromoDur:    0.26,
				PromoPower:  units.MilliwattPower(1210),
				TailDur:     11.576,
				TailPower:   units.MilliwattPower(1060),
			},
		},
	}
}

// Nexus5 returns the LG Nexus 5 profile: a newer process node (Table 1)
// with slightly lower fixed overheads, matching Figure 1.
func Nexus5() *DeviceProfile {
	return &DeviceProfile{
		Name:            "LG Nexus 5",
		ReleaseDate:     "Nov 2013",
		AppProcessor:    "Qualcomm 8974-AA",
		Semiconductor:   "28nm HPM",
		Android:         "4.4.4 (KitKat)",
		Kernel:          "3.4.0",
		WiFiChipset:     "Broadcom BCM4339",
		DeviceBase:      units.MilliwattPower(395),
		BatteryCapacity: 31500, // 2300 mAh at 3.8 V
		Radios: [NumInterfaces]RadioParams{
			WiFi: {
				Base:        units.MilliwattPower(230),
				PerMbpsDown: units.MilliwattPower(45),
				PerMbpsUp:   units.MilliwattPower(260),
				TailDur:     0.12,
				TailPower:   units.MilliwattPower(220),
				AssocEnergy: 0.034,
			},
			Cell3G: {
				Base:        units.MilliwattPower(780),
				PerMbpsDown: units.MilliwattPower(115),
				PerMbpsUp:   units.MilliwattPower(820),
				PromoDur:    1.8,
				PromoPower:  units.MilliwattPower(790),
				TailDur:     3.5,
				TailPower:   units.MilliwattPower(760),
				FACHDur:     8,
				FACHPower:   units.MilliwattPower(430),
				FACHRate:    200 * units.Kbps,
			},
			LTE: {
				Base:        units.MilliwattPower(1210),
				PerMbpsDown: units.MilliwattPower(49),
				PerMbpsUp:   units.MilliwattPower(410),
				PromoDur:    0.24,
				PromoPower:  units.MilliwattPower(1180),
				TailDur:     11.4,
				TailPower:   units.MilliwattPower(985),
			},
		},
	}
}

// PathSet selects which interfaces a steady-state computation assumes are
// carrying traffic.
type PathSet struct {
	UseWiFi bool
	UseLTE  bool
}

// Named path sets.
var (
	WiFiOnly = PathSet{UseWiFi: true}
	LTEOnly  = PathSet{UseLTE: true}
	Both     = PathSet{UseWiFi: true, UseLTE: true}
)

// String returns a short description of the path set.
func (ps PathSet) String() string {
	switch ps {
	case WiFiOnly:
		return "WiFi-only"
	case LTEOnly:
		return "LTE-only"
	case Both:
		return "Both"
	default:
		return "None"
	}
}

// SteadyPower returns the device's total steady-state power while
// downloading with the given path set at the given per-interface downlink
// throughputs. The device base is counted once; unused interfaces
// contribute nothing (their tails are a fixed, not steady-state, cost).
func (d *DeviceProfile) SteadyPower(ps PathSet, wifi, lte units.BitRate) units.Power {
	p := d.DeviceBase
	if ps.UseWiFi {
		p += d.Radios[WiFi].ActivePower(wifi, 0)
	}
	if ps.UseLTE {
		p += d.Radios[LTE].ActivePower(lte, 0)
	}
	return p
}

// PerByteEnergy returns the steady-state energy per downloaded byte
// (J/byte) for the given path set and throughputs. This is the quantity
// the Energy Information Base is built from (§3.3): eMPTCP cannot predict
// how much data remains, so it assumes a large transfer and optimizes
// per-byte consumption. A path set with zero aggregate throughput yields
// +Inf.
func (d *DeviceProfile) PerByteEnergy(ps PathSet, wifi, lte units.BitRate) float64 {
	return d.PerByteEnergyDir(ps, wifi, lte, false)
}

// PerByteEnergyDir is PerByteEnergy with an explicit direction: uplink
// transfers pay each radio's (much larger) per-Mbps transmit power.
func (d *DeviceProfile) PerByteEnergyDir(ps PathSet, wifi, lte units.BitRate, uplink bool) float64 {
	var agg units.BitRate
	p := d.DeviceBase
	add := func(params RadioParams, rate units.BitRate) {
		agg += rate
		if uplink {
			p += params.ActivePower(0, rate)
		} else {
			p += params.ActivePower(rate, 0)
		}
	}
	if ps.UseWiFi {
		add(d.Radios[WiFi], wifi)
	}
	if ps.UseLTE {
		add(d.Radios[LTE], lte)
	}
	if agg <= 0 {
		return math.Inf(1)
	}
	return float64(p) / agg.BytesPerSecond()
}

// BestSinglePath returns whichever of WiFi-only / LTE-only is more
// efficient at the given throughputs, with its per-byte energy.
func (d *DeviceProfile) BestSinglePath(wifi, lte units.BitRate) (PathSet, float64) {
	ew := d.PerByteEnergy(WiFiOnly, wifi, lte)
	el := d.PerByteEnergy(LTEOnly, wifi, lte)
	if ew <= el {
		return WiFiOnly, ew
	}
	return LTEOnly, el
}

// TransferEnergy returns the total energy to download size bytes with the
// given path set at the given steady throughputs, including the cellular
// fixed overheads (promotion before and full tail after) when LTE is used
// and the WiFi association cost when WiFi is used. This finite-transfer
// quantity is what Figure 4's operating regions are computed from.
func (d *DeviceProfile) TransferEnergy(ps PathSet, size units.ByteSize, wifi, lte units.BitRate) units.Energy {
	var agg units.BitRate
	if ps.UseWiFi {
		agg += wifi
	}
	if ps.UseLTE {
		agg += lte
	}
	if agg <= 0 {
		return units.Energy(math.Inf(1))
	}
	dur := agg.TimeToSend(size)
	e := d.SteadyPower(ps, wifi, lte).Over(dur)
	if ps.UseWiFi {
		e += d.Radios[WiFi].AssocEnergy
	}
	if ps.UseLTE {
		e += d.Radios[LTE].FixedOverhead()
	}
	return e
}

// WithCellular3G returns a copy of the profile whose cellular slot carries
// the 3G radio parameters instead of LTE's. The simulator's scenario layer
// treats the LTE slot as "the cellular interface", so this is how a
// 3G-only configuration (lower fixed overheads, Figure 1, but a slower and
// less rate-efficient radio) is simulated end to end.
func (d *DeviceProfile) WithCellular3G() *DeviceProfile {
	c := *d
	c.Name = d.Name + " (3G cellular)"
	c.Radios[LTE] = d.Radios[Cell3G]
	return &c
}
