package energy

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func lteRadio() *Radio {
	return NewRadio(LTE, GalaxyS3().Radios[LTE])
}

func wifiRadio() *Radio {
	return NewRadio(WiFi, GalaxyS3().Radios[WiFi])
}

func TestRadioStartsIdle(t *testing.T) {
	r := lteRadio()
	if r.State() != Idle {
		t.Errorf("initial state = %v, want IDLE", r.State())
	}
	if r.Energy() != 0 {
		t.Errorf("initial energy = %v, want 0", r.Energy())
	}
}

func TestActivateFromIdlePromotes(t *testing.T) {
	r := lteRadio()
	ready := r.Activate(10)
	if r.State() != Promotion {
		t.Errorf("state after Activate = %v, want PROMOTION", r.State())
	}
	if want := 10 + r.Params.PromoDur; ready != want {
		t.Errorf("readyAt = %v, want %v", ready, want)
	}
}

func TestPromotionEnergyCharged(t *testing.T) {
	r := lteRadio()
	ready := r.Activate(0)
	r.Advance(ready, 0, 0)
	want := r.Params.PromoPower.Over(units.Duration(r.Params.PromoDur))
	if math.Abs(float64(r.Energy()-want)) > 1e-9 {
		t.Errorf("promotion energy = %v, want %v", r.Energy(), want)
	}
}

func TestFullCycleMatchesFixedOverhead(t *testing.T) {
	// Activate, transfer nothing, let the tail run out: total energy must
	// be exactly the Figure 1 fixed overhead.
	r := lteRadio()
	r.Activate(0)
	r.Drain()
	if r.State() != Idle {
		t.Errorf("state after Drain = %v, want IDLE", r.State())
	}
	want := r.Params.FixedOverhead()
	if math.Abs(float64(r.Energy()-want)) > 1e-6 {
		t.Errorf("cycle energy = %v, want fixed overhead %v", r.Energy(), want)
	}
}

func TestActiveTransferEnergy(t *testing.T) {
	r := wifiRadio() // no promotion: active immediately
	r.Activate(0)
	if r.State() != Active {
		t.Fatalf("WiFi should be active immediately, got %v", r.State())
	}
	r.Advance(10, units.MbpsRate(8), 0)
	want := r.Params.ActivePower(units.MbpsRate(8), 0).Over(units.Duration(10)) + r.Params.AssocEnergy
	if math.Abs(float64(r.Energy()-want)) > 1e-9 {
		t.Errorf("active energy = %v, want %v", r.Energy(), want)
	}
}

func TestAssocEnergyChargedOnce(t *testing.T) {
	r := wifiRadio()
	r.Activate(0)
	r.Advance(1, units.MbpsRate(1), 0)
	r.Advance(10, 0, 0) // tail out, back to idle
	if r.State() != Idle {
		t.Fatalf("expected idle, got %v", r.State())
	}
	e1 := r.Energy()
	r.Activate(10)
	e2 := r.Energy()
	if e2 != e1 {
		t.Errorf("second Activate charged association again: %v → %v", e1, e2)
	}
}

func TestTailReentry(t *testing.T) {
	// Activity during the tail snaps back to Active without a promotion.
	r := lteRadio()
	ready := r.Activate(0)
	r.Advance(ready, 0, 0)
	r.Advance(ready+5, units.MbpsRate(5), 0) // transfer 5 s
	r.Advance(ready+7, 0, 0)                 // 2 s into the tail
	if r.State() != Tail {
		t.Fatalf("state = %v, want TAIL", r.State())
	}
	if got := r.Activate(ready + 7); got != ready+7 {
		t.Errorf("re-activation from tail should be immediate, got readyAt=%v", got)
	}
	if r.State() != Active {
		t.Errorf("state = %v, want ACTIVE", r.State())
	}
}

func TestTailExpiry(t *testing.T) {
	r := lteRadio()
	ready := r.Activate(0)
	r.Advance(ready, 0, 0)
	r.Advance(ready+1, units.MbpsRate(5), 0)
	// Advance far past the tail.
	r.Advance(ready+1+r.Params.TailDur+10, 0, 0)
	if r.State() != Idle {
		t.Errorf("state = %v, want IDLE after tail expiry", r.State())
	}
	// Tail energy should be exactly TailPower × TailDur.
	tail := r.Params.TailPower.Over(units.Duration(r.Params.TailDur))
	promo := r.Params.PromoPower.Over(units.Duration(r.Params.PromoDur))
	active := r.Params.ActivePower(units.MbpsRate(5), 0).Over(units.Duration(1))
	want := promo + active + tail
	if math.Abs(float64(r.Energy()-want)) > 1e-9 {
		t.Errorf("total = %v, want %v", r.Energy(), want)
	}
}

func TestActivationDelay(t *testing.T) {
	r := lteRadio()
	if got := r.ActivationDelay(); got != r.Params.PromoDur {
		t.Errorf("idle activation delay = %v, want %v", got, r.Params.PromoDur)
	}
	r.Activate(0)
	r.Advance(0.1, 0, 0)
	if got := r.ActivationDelay(); math.Abs(got-(r.Params.PromoDur-0.1)) > 1e-12 {
		t.Errorf("mid-promotion delay = %v", got)
	}
	r.Advance(r.Params.PromoDur+0.1, units.MbpsRate(1), 0)
	if got := r.ActivationDelay(); got != 0 {
		t.Errorf("active delay = %v, want 0", got)
	}
}

func TestDataOnIdleRadioPanics(t *testing.T) {
	r := lteRadio()
	defer func() {
		if recover() == nil {
			t.Error("Advance with data on idle radio did not panic")
		}
	}()
	r.Advance(1, units.MbpsRate(1), 0)
}

func TestDataStraddlingPromotion(t *testing.T) {
	// A segment that starts during promotion and ends after it charges
	// promotion power first, then active power for the remainder; the
	// throughput applies only to the post-promotion part.
	r := lteRadio()
	r.Activate(0)
	end := r.Params.PromoDur + 1
	r.Advance(end, units.MbpsRate(5), 0)
	if r.State() != Active {
		t.Fatalf("state = %v, want ACTIVE", r.State())
	}
	want := r.Params.PromoPower.Over(units.Duration(r.Params.PromoDur)) +
		r.Params.ActivePower(units.MbpsRate(5), 0).Over(units.Duration(1))
	if math.Abs(float64(r.Energy()-want)) > 1e-9 {
		t.Errorf("energy = %v, want %v", r.Energy(), want)
	}
}

func TestBackwardsAdvancePanics(t *testing.T) {
	r := lteRadio()
	r.Advance(5, 0, 0)
	defer func() {
		if recover() == nil {
			t.Error("backwards Advance did not panic")
		}
	}()
	r.Advance(4, 0, 0)
}

func TestAccountantDeviceBase(t *testing.T) {
	a := NewAccountant(GalaxyS3())
	a.SetSessionActive(true)
	a.Advance(10, Throughputs{})
	want := a.Profile.DeviceBase.Over(units.Duration(10))
	if math.Abs(float64(a.Total()-want)) > 1e-9 {
		t.Errorf("base-only energy = %v, want %v", a.Total(), want)
	}
	a.SetSessionActive(false)
	a.Advance(20, Throughputs{})
	if math.Abs(float64(a.Total()-want)) > 1e-9 {
		t.Errorf("energy accrued while session inactive")
	}
}

func TestAccountantAggregates(t *testing.T) {
	a := NewAccountant(GalaxyS3())
	a.Radio(WiFi).Activate(0)
	ready := a.Radio(LTE).Activate(0)
	// WiFi transfers while LTE promotes.
	var wifiOnlyThr Throughputs
	wifiOnlyThr.Down[WiFi] = units.MbpsRate(5)
	a.Advance(ready, wifiOnlyThr)
	var thr Throughputs
	thr.Down[WiFi] = units.MbpsRate(5)
	thr.Down[LTE] = units.MbpsRate(3)
	a.Advance(ready+10, thr)
	sum := a.BaseEnergy()
	for i := 0; i < NumInterfaces; i++ {
		sum += a.InterfaceEnergy(Interface(i))
	}
	if math.Abs(float64(a.Total()-sum)) > 1e-12 {
		t.Errorf("Total %v != sum of parts %v", a.Total(), sum)
	}
	if a.InterfaceEnergy(Cell3G) != 0 {
		t.Error("unused 3G radio consumed energy")
	}
}

func TestAccountantTrace(t *testing.T) {
	a := NewAccountant(GalaxyS3())
	var samples int
	var last units.Energy
	a.Trace = func(tm float64, e units.Energy) {
		samples++
		if e < last {
			t.Error("cumulative energy decreased")
		}
		last = e
	}
	a.SetSessionActive(true)
	for i := 1; i <= 10; i++ {
		a.Advance(float64(i), Throughputs{})
	}
	if samples != 10 {
		t.Errorf("trace samples = %d, want 10", samples)
	}
}

func TestAccountantBackwardsPanics(t *testing.T) {
	a := NewAccountant(GalaxyS3())
	a.Advance(5, Throughputs{})
	defer func() {
		if recover() == nil {
			t.Error("backwards accountant Advance did not panic")
		}
	}()
	a.Advance(1, Throughputs{})
}

// Property: energy is additive over splits of an interval — advancing
// 0→t1→t2 equals advancing 0→t2 directly at the same throughput.
func TestRadioAdditivityProperty(t *testing.T) {
	f := func(aRaw, bRaw uint8, mbpsRaw uint8) bool {
		t1 := float64(aRaw)/10 + 0.1
		t2 := t1 + float64(bRaw)/10 + 0.1
		mbps := units.MbpsRate(float64(mbpsRaw)/10 + 0.1)

		r1 := lteRadio()
		ready := r1.Activate(0)
		r1.Advance(ready, 0, 0)
		r1.Advance(ready+t1, mbps, 0)
		r1.Advance(ready+t2, mbps, 0)

		r2 := lteRadio()
		ready2 := r2.Activate(0)
		r2.Advance(ready2, 0, 0)
		r2.Advance(ready2+t2, mbps, 0)

		// Durations round to whole nanoseconds, so split intervals can
		// differ from the unsplit one by a few nJ.
		return math.Abs(float64(r1.Energy()-r2.Energy())) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: energy is monotone nondecreasing over any legal sequence of
// operations.
func TestRadioMonotoneProperty(t *testing.T) {
	f := func(steps []uint8) bool {
		r := lteRadio()
		now := 0.0
		readyAt := math.Inf(1)
		last := units.Energy(0)
		for _, s := range steps {
			dt := float64(s%50)/10 + 0.05
			now += dt
			switch s % 3 {
			case 0:
				readyAt = r.Activate(now)
			case 1:
				r.Advance(now, 0, 0)
			case 2:
				// Only pass traffic when the radio can carry it:
				// advance idle first, then send over a short extra
				// interval if the radio is still up.
				r.Advance(now, 0, 0)
				if now >= readyAt && r.State() != Idle {
					now += 0.01
					r.Advance(now, units.MbpsRate(2), 0)
				}
			}
			if r.Energy() < last {
				return false
			}
			last = r.Energy()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: RRC transitions are legal — from any observation the state is
// one of the four, and data never flows from IDLE.
func TestRRCStateStringAll(t *testing.T) {
	names := map[RRCState]string{Idle: "IDLE", Promotion: "PROMOTION", Active: "ACTIVE", Tail: "TAIL"}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("state %d name = %q, want %q", s, s.String(), want)
		}
	}
	if RRCState(42).String() != "RRCState(42)" {
		t.Error("unknown state name wrong")
	}
}

func TestWeakSignalModel(t *testing.T) {
	params := GalaxyS3().Radios[WiFi]
	params.WeakSignalNominal = units.MbpsRate(12)
	params.WeakSignalPenalty = units.MilliwattPower(400)
	r := NewRadio(WiFi, params)
	r.Activate(0)
	// Full quality: no penalty.
	r.SetQuality(1)
	e1 := r.Advance(10, units.MbpsRate(2), 0)
	// Degraded channel at the same throughput: penalty applies.
	r.SetQuality(0.25)
	e2 := r.Advance(20, units.MbpsRate(2), 0)
	wantExtra := units.Power(float64(params.WeakSignalPenalty) * 0.75).Over(units.Duration(10))
	if math.Abs(float64(e2-e1-wantExtra)) > 1e-9 {
		t.Errorf("weak-signal extra = %v, want %v", e2-e1, wantExtra)
	}
	// Quality clamps.
	r.SetQuality(-3)
	if r.quality != 0 {
		t.Errorf("quality = %v, want clamp to 0", r.quality)
	}
	r.SetQuality(7)
	if r.quality != 1 {
		t.Errorf("quality = %v, want clamp to 1", r.quality)
	}
}

func TestWeakSignalDisabledByDefault(t *testing.T) {
	r := wifiRadio()
	r.Activate(0)
	r.SetQuality(0.1)
	e := r.Advance(10, units.MbpsRate(2), 0)
	want := r.Params.ActivePower(units.MbpsRate(2), 0).Over(units.Duration(10))
	if math.Abs(float64(e-want)) > 1e-9 {
		t.Errorf("default profile charged a weak-signal penalty: %v vs %v", e, want)
	}
}

// fach3GRadio returns a 3G radio with the Balasubramanian et al. [1]
// three-state machine enabled: DCH inactivity 5 s, FACH dwell 12 s at
// roughly half DCH power, carrying up to 100 Kbps.
func fach3GRadio() *Radio {
	p := GalaxyS3().Radios[Cell3G]
	p.TailDur = 5
	p.FACHDur = 12
	p.FACHPower = units.MilliwattPower(400)
	p.FACHRate = 100 * units.Kbps
	return NewRadio(Cell3G, p)
}

func TestFACHStateCycle(t *testing.T) {
	r := fach3GRadio()
	ready := r.Activate(0)
	r.Advance(ready, 0, 0)
	r.Advance(ready+1, units.MbpsRate(1), 0) // DCH transfer
	// DCH inactivity: tail for 5 s, then FACH.
	r.Advance(ready+1+5, 0, 0)
	if r.State() != FACH {
		t.Fatalf("after DCH tail: state = %v, want FACH", r.State())
	}
	// FACH dwell expires 12 s later.
	r.Advance(ready+1+5+12, 0, 0)
	if r.State() != Idle {
		t.Fatalf("after FACH dwell: state = %v, want IDLE", r.State())
	}
	// Total fixed cost matches FixedOverhead.
	want := r.Params.FixedOverhead() +
		r.Params.ActivePower(units.MbpsRate(1), 0).Over(units.Duration(1))
	if math.Abs(float64(r.Energy()-want)) > 1e-6 {
		t.Errorf("cycle energy = %v, want %v", r.Energy(), want)
	}
}

func TestFACHCarriesLowRateTraffic(t *testing.T) {
	r := fach3GRadio()
	ready := r.Activate(0)
	r.Advance(ready, 0, 0)
	r.Advance(ready+1, units.MbpsRate(1), 0)
	r.Advance(ready+6, 0, 0) // into FACH
	if r.State() != FACH {
		t.Fatalf("state = %v, want FACH", r.State())
	}
	before := r.Energy()
	// 50 Kbps fits in FACH: no re-promotion, flat FACH power.
	r.Advance(ready+8, 50*units.Kbps, 0)
	if r.State() != FACH {
		t.Errorf("low-rate traffic promoted out of FACH: %v", r.State())
	}
	got := r.Energy() - before
	want := r.Params.FACHPower.Over(units.Duration(2))
	if math.Abs(float64(got-want)) > 1e-9 {
		t.Errorf("FACH transfer energy = %v, want %v", got, want)
	}
}

func TestFACHRepromotesOnHighRate(t *testing.T) {
	r := fach3GRadio()
	ready := r.Activate(0)
	r.Advance(ready, 0, 0)
	r.Advance(ready+1, units.MbpsRate(1), 0)
	r.Advance(ready+6, 0, 0) // into FACH
	r.Advance(ready+7, units.MbpsRate(2), 0)
	if r.State() != Active {
		t.Errorf("2 Mbps demand should re-promote to DCH, state = %v", r.State())
	}
}

func TestFACHActivateSnapsToActive(t *testing.T) {
	r := fach3GRadio()
	ready := r.Activate(0)
	r.Advance(ready, 0, 0)
	r.Advance(ready+1, units.MbpsRate(1), 0)
	r.Advance(ready+6, 0, 0)
	if got := r.Activate(ready + 6); got != ready+6 {
		t.Errorf("Activate from FACH should be immediate, got %v", got)
	}
	if r.State() != Active {
		t.Errorf("state = %v, want ACTIVE", r.State())
	}
}

func TestFACHDrain(t *testing.T) {
	r := fach3GRadio()
	r.Activate(0)
	r.Drain()
	if r.State() != Idle {
		t.Fatalf("state after Drain = %v", r.State())
	}
	if math.Abs(float64(r.Energy()-r.Params.FixedOverhead())) > 1e-6 {
		t.Errorf("drained energy = %v, want fixed overhead %v", r.Energy(), r.Params.FixedOverhead())
	}
}

func TestBatteryFraction(t *testing.T) {
	d := GalaxyS3()
	if got := d.BatteryFraction(287); math.Abs(got-0.01) > 1e-9 {
		t.Errorf("287 J on a 28.7 kJ battery = %v, want 1%%", got)
	}
	var empty DeviceProfile
	if empty.BatteryFraction(100) != 0 {
		t.Error("unknown capacity should report 0")
	}
}

func TestFACHStateName(t *testing.T) {
	if FACH.String() != "FACH" {
		t.Error("FACH name wrong")
	}
}
