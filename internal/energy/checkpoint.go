package energy

import "repro/internal/units"

// radioState saves one Radio's integrator state. The Iface/Params wiring,
// the attached recorder, and the memo caches' invariants are all
// value-copied or stable: lastDt/lastSec are saved too, so the memoized
// interval conversion replays bit-identically after a restore.
type radioState struct {
	state      RRCState
	now        float64
	promoEnd   float64
	tailEnd    float64
	fachEnd    float64
	associated bool
	quality    float64
	energy     units.Energy
	lastDt     float64
	lastSec    float64
	stateSince float64
}

// AcctSnapshot is a reusable copy of an Accountant's integrator state
// (device base plus every radio). The profile, radio wiring, and Trace
// hook are not part of it.
type AcctSnapshot struct {
	now         float64
	base        units.Energy
	baseOn      bool
	extraBase   units.Power
	lastBaseP   units.Power
	lastBaseDt  float64
	lastBaseInc units.Energy
	radios      [NumInterfaces]radioState
}

// Snapshot saves the accountant's state into s.
func (a *Accountant) Snapshot(s *AcctSnapshot) {
	s.now = a.now
	s.base = a.base
	s.baseOn = a.baseOn
	s.extraBase = a.extraBase
	s.lastBaseP = a.lastBaseP
	s.lastBaseDt = a.lastBaseDt
	s.lastBaseInc = a.lastBaseInc
	for i := 0; i < NumInterfaces; i++ {
		r := a.radios[i]
		s.radios[i] = radioState{
			state:      r.state,
			now:        r.now,
			promoEnd:   r.promoEnd,
			tailEnd:    r.tailEnd,
			fachEnd:    r.fachEnd,
			associated: r.associated,
			quality:    r.quality,
			energy:     r.energy,
			lastDt:     r.lastDt,
			lastSec:    r.lastSec,
			stateSince: r.stateSince,
		}
	}
}

// Restore reinstates a snapshot taken from this accountant.
func (a *Accountant) Restore(s *AcctSnapshot) {
	a.now = s.now
	a.base = s.base
	a.baseOn = s.baseOn
	a.extraBase = s.extraBase
	a.lastBaseP = s.lastBaseP
	a.lastBaseDt = s.lastBaseDt
	a.lastBaseInc = s.lastBaseInc
	for i := 0; i < NumInterfaces; i++ {
		r := a.radios[i]
		st := &s.radios[i]
		r.state = st.state
		r.now = st.now
		r.promoEnd = st.promoEnd
		r.tailEnd = st.tailEnd
		r.fachEnd = st.fachEnd
		r.associated = st.associated
		r.quality = st.quality
		r.energy = st.energy
		r.lastDt = st.lastDt
		r.lastSec = st.lastSec
		r.stateSince = st.stateSince
	}
}
