package energy

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestInterfaceString(t *testing.T) {
	if WiFi.String() != "WiFi" || Cell3G.String() != "3G" || LTE.String() != "LTE" {
		t.Error("interface names wrong")
	}
	if Interface(9).String() != "Interface(9)" {
		t.Error("unknown interface name wrong")
	}
}

func TestIsCellular(t *testing.T) {
	if WiFi.IsCellular() {
		t.Error("WiFi should not be cellular")
	}
	if !LTE.IsCellular() || !Cell3G.IsCellular() {
		t.Error("LTE/3G should be cellular")
	}
}

// Figure 1: fixed energy overheads. WiFi is negligible (0.15/0.06 J), 3G
// around 7–8 J, LTE around 11–13 J, with the Nexus 5 slightly below the
// Galaxy S3.
func TestFig1FixedOverheads(t *testing.T) {
	for _, d := range []*DeviceProfile{GalaxyS3(), Nexus5()} {
		wifi := d.Radios[WiFi].FixedOverhead().Joules()
		g3 := d.Radios[Cell3G].FixedOverhead().Joules()
		lte := d.Radios[LTE].FixedOverhead().Joules()
		if wifi > 0.5 {
			t.Errorf("%s: WiFi fixed overhead %v J, want negligible", d.Name, wifi)
		}
		if g3 < 5 || g3 > 10 {
			t.Errorf("%s: 3G fixed overhead %v J, want 5–10", d.Name, g3)
		}
		if lte < 10 || lte > 14 {
			t.Errorf("%s: LTE fixed overhead %v J, want 10–14", d.Name, lte)
		}
		if !(wifi < g3 && g3 < lte) {
			t.Errorf("%s: overhead ordering violated: wifi=%v 3g=%v lte=%v", d.Name, wifi, g3, lte)
		}
	}
	s3, n5 := GalaxyS3(), Nexus5()
	if n5.Radios[LTE].FixedOverhead() >= s3.Radios[LTE].FixedOverhead() {
		t.Error("Nexus 5 LTE overhead should be below Galaxy S3 (Figure 1)")
	}
	if n5.Radios[WiFi].FixedOverhead() >= s3.Radios[WiFi].FixedOverhead() {
		t.Error("Nexus 5 WiFi overhead should be below Galaxy S3 (Figure 1)")
	}
}

func TestActivePowerLinear(t *testing.T) {
	p := GalaxyS3().Radios[LTE]
	base := p.ActivePower(0, 0)
	if base != p.Base {
		t.Errorf("zero-throughput active power = %v, want base %v", base, p.Base)
	}
	at10 := p.ActivePower(units.MbpsRate(10), 0)
	want := p.Base + 10*p.PerMbpsDown
	if math.Abs(float64(at10-want)) > 1e-12 {
		t.Errorf("active power at 10 Mbps = %v, want %v", at10, want)
	}
	withUp := p.ActivePower(units.MbpsRate(10), units.MbpsRate(1))
	if withUp <= at10 {
		t.Error("uplink throughput should add power")
	}
}

func TestSteadyPowerCountsDeviceBaseOnce(t *testing.T) {
	d := GalaxyS3()
	w := units.MbpsRate(5)
	l := units.MbpsRate(5)
	pw := d.SteadyPower(WiFiOnly, w, l)
	pl := d.SteadyPower(LTEOnly, w, l)
	pb := d.SteadyPower(Both, w, l)
	// P(both) = P(wifi) + P(lte) − DeviceBase.
	want := pw + pl - d.DeviceBase
	if math.Abs(float64(pb-want)) > 1e-12 {
		t.Errorf("both-power = %v, want %v (device base counted once)", pb, want)
	}
}

func TestPerByteEnergyDecreasesWithThroughput(t *testing.T) {
	d := GalaxyS3()
	prev := math.Inf(1)
	for mbps := 1.0; mbps <= 20; mbps++ {
		e := d.PerByteEnergy(WiFiOnly, units.MbpsRate(mbps), 0)
		if e >= prev {
			t.Fatalf("per-byte energy not decreasing at %v Mbps: %v >= %v", mbps, e, prev)
		}
		prev = e
	}
}

func TestPerByteEnergyInfAtZero(t *testing.T) {
	d := GalaxyS3()
	if !math.IsInf(d.PerByteEnergy(WiFiOnly, 0, units.MbpsRate(5)), 1) {
		t.Error("zero aggregate throughput should give +Inf per byte")
	}
}

// Table 2 calibration: the V-shaped region exists. At an LTE throughput of
// 1 Mbps the paper's EIB says: WiFi < 0.134 Mbps → LTE only; WiFi ≥ 0.502
// → WiFi only; in between → both. Verify our model reproduces that
// structure with thresholds in the same neighbourhood.
func TestTable2Thresholds(t *testing.T) {
	d := GalaxyS3()
	lte := units.MbpsRate(1)
	perByte := func(ps PathSet, wifiMbps float64) float64 {
		return d.PerByteEnergy(ps, units.MbpsRate(wifiMbps), lte)
	}
	// Well below the LTE-only threshold, LTE-only must win.
	if !(perByte(LTEOnly, 0.05) < perByte(Both, 0.05) && perByte(LTEOnly, 0.05) < perByte(WiFiOnly, 0.05)) {
		t.Error("at WiFi=0.05, LTE-only should be most efficient")
	}
	// In the V (e.g. 0.3 Mbps), both must win.
	if !(perByte(Both, 0.3) < perByte(WiFiOnly, 0.3) && perByte(Both, 0.3) < perByte(LTEOnly, 0.3)) {
		t.Error("at WiFi=0.3, both should be most efficient")
	}
	// Well above the WiFi-only threshold, WiFi-only must win.
	if !(perByte(WiFiOnly, 2) < perByte(Both, 2) && perByte(WiFiOnly, 2) < perByte(LTEOnly, 2)) {
		t.Error("at WiFi=2, WiFi-only should be most efficient")
	}
}

func TestBestSinglePath(t *testing.T) {
	d := GalaxyS3()
	ps, _ := d.BestSinglePath(units.MbpsRate(10), units.MbpsRate(1))
	if ps != WiFiOnly {
		t.Errorf("fast WiFi vs slow LTE: best single = %v, want WiFi-only", ps)
	}
	ps, _ = d.BestSinglePath(units.MbpsRate(0.1), units.MbpsRate(10))
	if ps != LTEOnly {
		t.Errorf("slow WiFi vs fast LTE: best single = %v, want LTE-only", ps)
	}
}

// Figure 4's key property: for small transfers the LTE fixed overheads
// make MPTCP (both) lose to WiFi-only even at throughputs where the
// steady-state model says both is best; for large transfers the overhead
// amortizes away.
func TestTransferEnergyFixedCostAmortization(t *testing.T) {
	d := GalaxyS3()
	wifi := units.MbpsRate(0.8)
	lte := units.MbpsRate(4)
	// Steady state says both beats WiFi-only here.
	if !(d.PerByteEnergy(Both, wifi, lte) < d.PerByteEnergy(WiFiOnly, wifi, lte)) {
		t.Fatal("test setup: steady state should favour both")
	}
	small := d.TransferEnergy(Both, 256*units.KB, wifi, lte)
	smallW := d.TransferEnergy(WiFiOnly, 256*units.KB, wifi, lte)
	if small < smallW {
		t.Errorf("256 KB: both (%v) should lose to WiFi-only (%v) due to fixed costs", small, smallW)
	}
	big := d.TransferEnergy(Both, 64*units.MB, wifi, lte)
	bigW := d.TransferEnergy(WiFiOnly, 64*units.MB, wifi, lte)
	if big >= bigW {
		t.Errorf("64 MB: both (%v) should beat WiFi-only (%v)", big, bigW)
	}
}

func TestTransferEnergyZeroThroughput(t *testing.T) {
	d := GalaxyS3()
	if !math.IsInf(float64(d.TransferEnergy(WiFiOnly, units.MB, 0, 0)), 1) {
		t.Error("zero throughput transfer should cost +Inf")
	}
}

func TestPathSetString(t *testing.T) {
	if WiFiOnly.String() != "WiFi-only" || LTEOnly.String() != "LTE-only" || Both.String() != "Both" {
		t.Error("path set names wrong")
	}
	if (PathSet{}).String() != "None" {
		t.Error("empty path set name wrong")
	}
}

// Property: within the paper's evaluated throughput range (Figures 3 and
// 14 go up to ~10–25 Mbps on WiFi, ≤15 Mbps on LTE), increasing WiFi
// throughput never increases per-byte energy for path sets that use WiFi.
// (Outside that range the model correctly predicts a reversal for "Both":
// at extreme LTE rates, adding slow WiFi bytes costs more marginal power
// than the bytes are worth.)
func TestPerByteMonotoneProperty(t *testing.T) {
	d := GalaxyS3()
	f := func(w1Raw, w2Raw, lRaw uint8) bool {
		w1 := float64(w1Raw)/10 + 0.1
		w2 := float64(w2Raw)/10 + 0.1
		l := float64(lRaw%150)/10 + 0.1 // ≤ 15.1 Mbps
		if w1 > w2 {
			w1, w2 = w2, w1
		}
		for _, ps := range []PathSet{WiFiOnly, Both} {
			e1 := d.PerByteEnergy(ps, units.MbpsRate(w1), units.MbpsRate(l))
			e2 := d.PerByteEnergy(ps, units.MbpsRate(w2), units.MbpsRate(l))
			if e2 > e1+1e-15 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: transfer energy is additive-ish in size: E(2s) < 2*E(s) since
// fixed overheads are charged once (strict subadditivity).
func TestTransferEnergySubadditiveProperty(t *testing.T) {
	d := GalaxyS3()
	f := func(sizeRaw uint16, wRaw, lRaw uint8) bool {
		size := units.ByteSize(sizeRaw+1) * units.KB
		w := units.MbpsRate(float64(wRaw)/10 + 0.1)
		l := units.MbpsRate(float64(lRaw)/10 + 0.1)
		e1 := d.TransferEnergy(Both, size, w, l)
		e2 := d.TransferEnergy(Both, 2*size, w, l)
		return float64(e2) < 2*float64(e1)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWithCellular3G(t *testing.T) {
	d := GalaxyS3()
	g := d.WithCellular3G()
	if g.Radios[LTE] != d.Radios[Cell3G] {
		t.Error("3G params not installed in the cellular slot")
	}
	// The original is untouched.
	if d.Radios[LTE].Base == d.Radios[Cell3G].Base {
		t.Error("original profile mutated")
	}
	if g.Radios[LTE].FixedOverhead() >= d.Radios[LTE].FixedOverhead() {
		t.Error("3G fixed overhead should be below LTE's (Figure 1)")
	}
}

func TestPerByteEnergyDirUplink(t *testing.T) {
	d := GalaxyS3()
	w, l := units.MbpsRate(3), units.MbpsRate(4.5)
	down := d.PerByteEnergyDir(Both, w, l, false)
	up := d.PerByteEnergyDir(Both, w, l, true)
	if up <= down {
		t.Errorf("uplink per-byte (%v) should exceed downlink (%v)", up, down)
	}
	// The downlink path must agree with PerByteEnergy.
	if got := d.PerByteEnergyDir(WiFiOnly, w, l, false); got != d.PerByteEnergy(WiFiOnly, w, l) {
		t.Error("PerByteEnergyDir(down) disagrees with PerByteEnergy")
	}
	if !math.IsInf(d.PerByteEnergyDir(Both, 0, 0, true), 1) {
		t.Error("zero throughput uplink should be +Inf")
	}
}
