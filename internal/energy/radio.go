package energy

import (
	"fmt"
	"math"

	"repro/internal/trace"
	"repro/internal/units"
)

// RRCState is a radio's position in the 3GPP-style power state machine
// described in §2.3 of the paper.
type RRCState int

// The radio states. An idle radio must be promoted (taking PromoDur, at
// PromoPower, during which no data can move) before it is Active; after
// activity stops it lingers in the Tail at TailPower for TailDur before
// demoting back to Idle. Activity during the tail returns it to Active
// with no new promotion.
const (
	Idle RRCState = iota
	Promotion
	Active
	Tail
	// FACH is the 3G shared-channel intermediate state (enabled by
	// RadioParams.FACH*): cheaper than DCH, able to carry low-rate
	// traffic, demoting to Idle after its own inactivity timer.
	FACH
)

// String names the state.
func (s RRCState) String() string {
	switch s {
	case Idle:
		return "IDLE"
	case Promotion:
		return "PROMOTION"
	case Active:
		return "ACTIVE"
	case Tail:
		return "TAIL"
	case FACH:
		return "FACH"
	default:
		return fmt.Sprintf("RRCState(%d)", int(s))
	}
}

// Radio is one interface's RRC state machine and energy integrator. It is
// driven by Activate (requesting the radio for transfer) and Advance
// (integrating power over an elapsed interval at a known throughput).
type Radio struct {
	Iface  Interface
	Params RadioParams

	state      RRCState
	now        float64 // time the integrator has reached
	promoEnd   float64 // when the in-progress promotion completes
	tailEnd    float64 // when the in-progress tail expires
	fachEnd    float64 // when the in-progress FACH dwell expires
	associated bool    // whether AssocEnergy has been charged
	quality    float64 // link quality in [0,1] for the weak-signal model
	energy     units.Energy

	// Memoized float→Duration→float interval conversion for the
	// active-radio fast path: meter ticks repeat the same dt for long
	// stretches, and Power.Over's round-trip through time.Duration is
	// rounding-visible, so the converted seconds are cached by operand
	// (identical input bits give identical output bits).
	lastDt  float64
	lastSec float64

	rec        trace.Recorder
	stateSince float64 // integrator time the current state was entered
}

// SetRecorder attaches a trace recorder receiving one KindRadio event per
// RRC state transition (with the exited state's dwell time); nil disables.
func (r *Radio) SetRecorder(rec trace.Recorder) { r.rec = rec }

// setState transitions the state machine at the integrator's current
// time, emitting the trace event and restarting the dwell clock.
func (r *Radio) setState(s RRCState) {
	if s == r.state {
		return
	}
	if r.rec != nil {
		r.rec.Record(trace.Event{
			T: r.now, Kind: trace.KindRadio,
			Iface: r.Iface.String(), From: r.state.String(), To: s.String(),
			A: r.now - r.stateSince,
		})
	}
	r.state = s
	r.stateSince = r.now
}

// NewRadio returns an idle radio with the given parameters.
func NewRadio(iface Interface, params RadioParams) *Radio {
	return &Radio{Iface: iface, Params: params, quality: 1}
}

// Reset returns the radio to the state NewRadio builds for the given
// parameters, reusing the allocation (per-run state pooling).
func (r *Radio) Reset(iface Interface, params RadioParams) {
	*r = Radio{Iface: iface, Params: params, quality: 1}
}

// SetQuality records the link quality (capacity / nominal rate, clamped to
// [0,1]) used by the optional weak-signal power model. It has no effect
// unless the radio's parameters enable that model.
func (r *Radio) SetQuality(q float64) {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	r.quality = q
}

// weakSignalPower returns the extra active power the weak-signal model
// adds at the current quality.
func (r *Radio) weakSignalPower() units.Power {
	if r.Params.WeakSignalNominal <= 0 || r.Params.WeakSignalPenalty <= 0 {
		return 0
	}
	return units.Power(float64(r.Params.WeakSignalPenalty) * (1 - r.quality))
}

// State returns the radio's state as of the last Advance/Activate call.
func (r *Radio) State() RRCState { return r.state }

// Energy returns the total energy the radio has consumed.
func (r *Radio) Energy() units.Energy { return r.energy }

// Activate requests the radio for data transfer at time t. It returns the
// time at which data can first flow: immediately when the radio is already
// Active or in the Tail (which snaps back to Active for free); after the
// promotion completes when it was Idle. The first activation also charges
// the association energy.
func (r *Radio) Activate(t float64) (readyAt float64) {
	r.advanceTo(t)
	if !r.associated {
		r.energy += r.Params.AssocEnergy
		r.associated = true
	}
	switch r.state {
	case Active:
		return t
	case Tail, FACH:
		r.setState(Active)
		return t
	case Promotion:
		return r.promoEnd
	default: // Idle
		if r.Params.PromoDur <= 0 {
			r.setState(Active)
			return t
		}
		r.setState(Promotion)
		r.promoEnd = t + r.Params.PromoDur
		return r.promoEnd
	}
}

// ActivationDelay returns how long an Activate at the current state would
// wait before data can flow, without changing any state.
func (r *Radio) ActivationDelay() float64 {
	switch r.state {
	case Idle:
		return r.Params.PromoDur
	case Promotion:
		return max(0, r.promoEnd-r.now)
	default:
		return 0
	}
}

// Advance integrates the radio's power from its current time to t,
// assuming the given constant downlink/uplink throughput over the whole
// interval, and returns the energy consumed during it. Throughput on a
// radio that is still Idle or in Promotion is a caller bug (data cannot
// flow yet) and panics.
func (r *Radio) Advance(t float64, down, up units.BitRate) units.Energy {
	if t < r.now {
		panic(fmt.Sprintf("energy: Radio.Advance going backwards: t=%v now=%v", t, r.now))
	}
	active := down > 0 || up > 0
	before := r.energy
	if active && r.state == Idle {
		panic("energy: data on an idle radio without Activate")
	}
	// Fast paths for the two overwhelmingly common meter ticks: a radio
	// sitting idle (only the dwell clock moves; no energy term exists to
	// add) and a radio staying active for the whole interval (exactly the
	// one power×duration addition the loop would perform). Both execute
	// the identical float operations in identical order as the general
	// loop, so the integrals stay bit-for-bit the same.
	if !active && r.state == Idle {
		if t > r.now {
			r.now = t
		}
		return 0
	}
	if active && r.state == Active {
		if t > r.now {
			p := r.Params.ActivePower(down, up) + r.weakSignalPower()
			// Identical to p.Over(units.Duration(dt)) with the
			// Duration→seconds conversion memoized by operand.
			if dt := t - r.now; dt != r.lastDt {
				r.lastDt = dt
				r.lastSec = units.Duration(dt).Seconds()
			}
			r.energy += units.Energy(float64(p) * r.lastSec)
			r.now = t
		}
		return r.energy - before
	}
	for r.now < t {
		switch r.state {
		case Idle:
			// No radio power while idle (platform power is the
			// accountant's DeviceBase).
			r.now = t
		case Promotion:
			end := min(t, r.promoEnd)
			r.energy += r.Params.PromoPower.Over(units.Duration(end - r.now))
			r.now = end
			if r.now >= r.promoEnd {
				if active {
					r.setState(Active)
				} else {
					// Promotion with nothing to send still pays the tail.
					r.startTail()
				}
			}
		case Active:
			if active {
				p := r.Params.ActivePower(down, up) + r.weakSignalPower()
				r.energy += p.Over(units.Duration(t - r.now))
				r.now = t
				continue
			}
			r.startTail()
		case Tail:
			if active {
				r.setState(Active)
				continue
			}
			end := min(t, r.tailEnd)
			r.energy += r.Params.TailPower.Over(units.Duration(end - r.now))
			r.now = end
			if r.now >= r.tailEnd {
				r.startFACHorIdle()
			}
		case FACH:
			if active && down+up > r.Params.FACHRate {
				// Demand beyond the shared channel re-promotes to DCH.
				r.setState(Active)
				continue
			}
			// FACH carries low-rate traffic at its own flat power and
			// otherwise dwells until its inactivity timer expires.
			end := t
			if !active {
				end = min(t, r.fachEnd)
			}
			r.energy += r.Params.FACHPower.Over(units.Duration(end - r.now))
			r.now = end
			if !active && r.now >= r.fachEnd {
				r.setState(Idle)
			}
			if active {
				// Activity extends the FACH dwell.
				r.fachEnd = r.now + r.Params.FACHDur
			}
		}
	}
	return r.energy - before
}

func (r *Radio) startTail() {
	if r.Params.TailDur <= 0 {
		r.startFACHorIdle()
		return
	}
	r.setState(Tail)
	r.tailEnd = r.now + r.Params.TailDur
}

// startFACHorIdle demotes past the DCH tail: into FACH when the radio
// models it, straight to Idle otherwise.
func (r *Radio) startFACHorIdle() {
	if r.Params.FACHDur <= 0 {
		r.setState(Idle)
		return
	}
	r.setState(FACH)
	r.fachEnd = r.now + r.Params.FACHDur
}

// advanceTo moves the integrator to t with no traffic.
func (r *Radio) advanceTo(t float64) {
	if t > r.now {
		r.Advance(t, 0, 0)
	}
}

// Drain advances the radio with no traffic until its tail (and promotion)
// has fully expired, charging the remaining fixed cost. Call at the end of
// a measurement so the tail energy after the last byte is accounted, as a
// hardware power monitor would record it.
func (r *Radio) Drain() {
	for r.state != Idle {
		switch r.state {
		case Promotion:
			r.Advance(r.promoEnd, 0, 0)
		case Active:
			// Kick into tail.
			r.Advance(math.Nextafter(r.now, math.Inf(1)), 0, 0)
		case Tail:
			r.Advance(r.tailEnd, 0, 0)
		case FACH:
			r.Advance(r.fachEnd, 0, 0)
		}
	}
}

// Throughputs carries per-interface downlink and uplink throughput
// vectors. The zero value means no traffic anywhere.
type Throughputs struct {
	Down [NumInterfaces]units.BitRate
	Up   [NumInterfaces]units.BitRate
}

// Active reports whether the interface carries traffic in either
// direction.
func (t Throughputs) Active(i Interface) bool {
	return t.Down[i] > 0 || t.Up[i] > 0
}

// Accountant integrates whole-device energy: the device base (while a
// session is marked in progress) plus each radio. It is the simulator's
// power monitor.
type Accountant struct {
	Profile *DeviceProfile

	radios    [NumInterfaces]*Radio
	now       float64
	base      units.Energy
	baseOn    bool
	extraBase units.Power

	// Memoized base-power increment: meter ticks integrate the same
	// constant power over the same interval for thousands of consecutive
	// calls, and Power.Over's float→Duration→float round-trip is
	// rounding-visible, so the exact increment is cached by operands
	// (identical inputs give identical bits) rather than recomputed.
	lastBaseP   units.Power
	lastBaseDt  float64
	lastBaseInc units.Energy

	// Trace, when non-nil, receives cumulative total-energy samples on
	// every Advance; experiments use it for the Figure 7/12 accumulated
	// energy time series.
	Trace func(t float64, total units.Energy)
}

// NewAccountant returns an accountant for the given device with all radios
// idle and the device base off.
func NewAccountant(p *DeviceProfile) *Accountant {
	a := &Accountant{Profile: p}
	for i := 0; i < NumInterfaces; i++ {
		a.radios[i] = NewRadio(Interface(i), p.Radios[i])
	}
	return a
}

// Reset returns the accountant to the state NewAccountant builds for the
// given device, reusing the radio allocations (per-run state pooling).
func (a *Accountant) Reset(p *DeviceProfile) {
	a.Profile = p
	a.now = 0
	a.base = 0
	a.baseOn = false
	a.extraBase = 0
	a.lastBaseP, a.lastBaseDt, a.lastBaseInc = 0, 0, 0
	a.Trace = nil
	for i := 0; i < NumInterfaces; i++ {
		a.radios[i].Reset(Interface(i), p.Radios[i])
	}
}

// Radio returns the state machine for the given interface.
func (a *Accountant) Radio(i Interface) *Radio { return a.radios[i] }

// SetRecorder attaches a trace recorder to every radio, so each RRC
// state transition is recorded; nil disables.
func (a *Accountant) SetRecorder(rec trace.Recorder) {
	for i := 0; i < NumInterfaces; i++ {
		a.radios[i].SetRecorder(rec)
	}
}

// Now returns the time the integrator has reached.
func (a *Accountant) Now() float64 { return a.now }

// SetSessionActive turns the device-base charge on or off (a transfer
// session in progress keeps the platform awake). It must be called only at
// the integrator's current time boundary, i.e. after an Advance.
func (a *Accountant) SetSessionActive(on bool) { a.baseOn = on }

// SetExtraBase adds a constant application-level power draw (browser
// rendering, video decode, screen) charged alongside the device base while
// the session is active. The paper's web-browsing measurements include
// exactly such a component ("the power consumed for the Web browser
// application is included", §5.4).
func (a *Accountant) SetExtraBase(p units.Power) { a.extraBase = p }

// Advance integrates all power from the current time to t given constant
// per-interface downlink throughputs over the interval.
func (a *Accountant) Advance(t float64, thr Throughputs) {
	if t < a.now {
		panic(fmt.Sprintf("energy: Accountant.Advance going backwards: t=%v now=%v", t, a.now))
	}
	for i := 0; i < NumInterfaces; i++ {
		r := a.radios[i]
		down, up := thr.Down[i], thr.Up[i]
		if r.state == Idle && down <= 0 && up <= 0 {
			// Inline the idle fast path: most meter ticks advance two or
			// three idle radios, and the dwell clock is all that moves.
			if t > r.now {
				r.now = t
			}
			continue
		}
		if r.state == Active && (down > 0 || up > 0) {
			// Inline the staying-active fast path too (Radio.Advance is
			// too large to inline as a whole): the identical single
			// power×duration addition, with the same memoized interval
			// conversion.
			if t > r.now {
				p := r.Params.ActivePower(down, up) + r.weakSignalPower()
				if dt := t - r.now; dt != r.lastDt {
					r.lastDt = dt
					r.lastSec = units.Duration(dt).Seconds()
				}
				r.energy += units.Energy(float64(p) * r.lastSec)
				r.now = t
			}
			continue
		}
		r.Advance(t, down, up)
	}
	if a.baseOn {
		p := a.Profile.DeviceBase + a.extraBase
		if dt := t - a.now; p != a.lastBaseP || dt != a.lastBaseDt {
			a.lastBaseP, a.lastBaseDt = p, dt
			a.lastBaseInc = p.Over(units.Duration(dt))
		}
		a.base += a.lastBaseInc
	}
	a.now = t
	if a.Trace != nil {
		a.Trace(t, a.Total())
	}
}

// Drain expires all radio tails, charging their remaining fixed costs.
func (a *Accountant) Drain() {
	for i := 0; i < NumInterfaces; i++ {
		a.radios[i].Drain()
	}
}

// Total returns all energy consumed so far: device base plus every radio.
func (a *Accountant) Total() units.Energy {
	e := a.base
	for i := 0; i < NumInterfaces; i++ {
		e += a.radios[i].Energy()
	}
	return e
}

// BaseEnergy returns the device-base component alone.
func (a *Accountant) BaseEnergy() units.Energy { return a.base }

// InterfaceEnergy returns the energy consumed by one radio.
func (a *Accountant) InterfaceEnergy(i Interface) units.Energy {
	return a.radios[i].Energy()
}
