package stats

import (
	"math"
	"math/rand"
	"testing"
)

// relClose reports whether a and b agree within rel relative tolerance
// (absolute near zero).
func relClose(a, b, rel float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) == math.IsNaN(b)
	}
	d := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return d <= rel*scale
}

func checkStreamMatchesSlice(t *testing.T, s Stream, xs []float64, rel float64, what string) {
	t.Helper()
	if int(s.N) != len(xs) {
		t.Fatalf("%s: N=%d want %d", what, s.N, len(xs))
	}
	if !relClose(s.Mean(), Mean(xs), rel) {
		t.Errorf("%s: mean %v want %v", what, s.Mean(), Mean(xs))
	}
	if !relClose(s.StdDev(), StdDev(xs), rel) {
		t.Errorf("%s: stddev %v want %v", what, s.StdDev(), StdDev(xs))
	}
	if !relClose(s.SEM(), SEM(xs), rel) {
		t.Errorf("%s: sem %v want %v", what, s.SEM(), SEM(xs))
	}
	sum := Summarize(xs)
	if s.Min() != sum.Min || s.Max() != sum.Max {
		t.Errorf("%s: extrema (%v,%v) want (%v,%v)", what, s.Min(), s.Max(), sum.Min, sum.Max)
	}
}

// TestStreamMatchesSliceStats verifies the streaming moments agree with
// the slice-based helpers the figures use.
func TestStreamMatchesSliceStats(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 3, 10, 1000} {
		xs := make([]float64, n)
		var s Stream
		for i := range xs {
			xs[i] = rng.NormFloat64()*12.5 + 40 // energy-scaled samples
			s.Add(xs[i])
		}
		if n == 0 {
			if s.N != 0 || !math.IsNaN(s.Mean()) || !math.IsNaN(s.SEM()) {
				t.Fatal("empty stream should report NaN moments")
			}
			continue
		}
		checkStreamMatchesSlice(t, s, xs, 1e-12, "stream")
	}
}

// TestStreamMergeAssociativity is the property the campaign aggregators
// depend on: however the sample sequence is partitioned into shards, and
// in whatever order the shard streams are merged, means, SEMs, and CIs
// agree within float tolerance. (Byte-identical aggregates additionally
// require a fixed merge order, which the campaign executor enforces and
// tests separately.)
func TestStreamMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 4096
	xs := make([]float64, n)
	for i := range xs {
		// A hostile distribution: large offset, small variance, a few
		// outliers — where naive sum-of-squares accumulation loses digits.
		xs[i] = 1e6 + rng.NormFloat64()
		if i%97 == 0 {
			xs[i] += 500
		}
	}
	var ref Stream
	for _, x := range xs {
		ref.Add(x)
	}

	partition := func(sizes []int) []Stream {
		var shards []Stream
		i := 0
		for _, sz := range sizes {
			var s Stream
			for j := 0; j < sz && i < n; j++ {
				s.Add(xs[i])
				i++
			}
			shards = append(shards, s)
		}
		for i < n { // remainder into the last shard
			shards[len(shards)-1].Add(xs[i])
			i++
		}
		return shards
	}

	cases := map[string][]int{
		"even-64":    repeatInts(64, 64),
		"uneven":     {1, 2, 3, 5, 1000, 7, 300, 4096},
		"singletons": repeatInts(512, 1),
		"one-big":    {4096},
		"empty-mix":  {0, 2048, 0, 0, 2048, 0},
	}
	const tol = 1e-10
	for name, sizes := range cases {
		shards := partition(sizes)

		// Left fold in shard order.
		var fwd Stream
		for _, s := range shards {
			fwd.Merge(s)
		}
		checkStreamMatchesSlice(t, fwd, xs, tol, name+"/forward")

		// Reverse merge order.
		var rev Stream
		for i := len(shards) - 1; i >= 0; i-- {
			rev.Merge(shards[i])
		}
		if !relClose(fwd.Mean(), rev.Mean(), tol) || !relClose(fwd.SEM(), rev.SEM(), tol) {
			t.Errorf("%s: reverse merge diverged: mean %v vs %v, sem %v vs %v",
				name, fwd.Mean(), rev.Mean(), fwd.SEM(), rev.SEM())
		}

		// Pairwise tree reduction (the shape a parallel reducer produces).
		tree := append([]Stream(nil), shards...)
		for len(tree) > 1 {
			var nxt []Stream
			for i := 0; i < len(tree); i += 2 {
				s := tree[i]
				if i+1 < len(tree) {
					s.Merge(tree[i+1])
				}
				nxt = append(nxt, s)
			}
			tree = nxt
		}
		checkStreamMatchesSlice(t, tree[0], xs, tol, name+"/tree")

		// Random shard permutation.
		perm := rng.Perm(len(shards))
		var shuf Stream
		for _, pi := range perm {
			shuf.Merge(shards[pi])
		}
		checkStreamMatchesSlice(t, shuf, xs, tol, name+"/shuffled")

		lo1, hi1 := fwd.CI95()
		lo2, hi2 := shuf.CI95()
		if !relClose(lo1, lo2, tol) || !relClose(hi1, hi2, tol) {
			t.Errorf("%s: CI95 diverged: [%v,%v] vs [%v,%v]", name, lo1, hi1, lo2, hi2)
		}
	}
}

// TestStreamMergeDeterministicOrder pins the stronger property the
// byte-identical campaign aggregates rely on: with fixed shard
// boundaries and a fixed merge order, the merged stream is bit-identical
// no matter which worker computed which shard (i.e. merging is a pure
// function of the shard streams).
func TestStreamMergeDeterministicOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 3
	}
	build := func() Stream {
		var shards [10]Stream
		for i, x := range xs {
			shards[i/100].Add(x)
		}
		var out Stream
		for i := range shards {
			out.Merge(shards[i])
		}
		return out
	}
	a, b := build(), build()
	if a != b {
		t.Fatalf("fixed-order merge not bit-identical: %+v vs %+v", a, b)
	}
	if math.Float64bits(a.Mean()) != math.Float64bits(b.Mean()) ||
		math.Float64bits(a.SEM()) != math.Float64bits(b.SEM()) {
		t.Fatal("derived statistics not bit-identical under fixed-order merge")
	}
}

// TestStreamMergeEmptyAndSelf covers the merge edge cases.
func TestStreamMergeEmptyAndSelf(t *testing.T) {
	var empty, s Stream
	s.Add(2)
	s.Add(4)
	before := s
	s.Merge(empty)
	if s != before {
		t.Error("merging an empty stream must be a no-op")
	}
	empty.Merge(s)
	if empty != s {
		t.Error("merging into an empty stream must copy")
	}
	other := s // merge a copy (same distribution twice)
	s.Merge(other)
	if s.N != 4 || s.Mean() != 3 {
		t.Errorf("self-merge: n=%d mean=%v, want 4 and 3", s.N, s.Mean())
	}
	if s.Min() != 2 || s.Max() != 4 {
		t.Errorf("self-merge extrema: (%v,%v)", s.Min(), s.Max())
	}
}

func repeatInts(n, v int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}
