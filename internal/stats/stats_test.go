package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestStdDevMatchesPaperEquation(t *testing.T) {
	// Equation 2: s = sqrt( 1/(n-1) * sum (xi - xbar)^2 ).
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// mean = 5, sum sq dev = 32, s = sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if got := StdDev(xs); math.Abs(got-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
	if StdDev([]float64{5}) != 0 {
		t.Error("StdDev of one sample should be 0")
	}
}

func TestSEM(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	want := math.Sqrt(32.0/7.0) / math.Sqrt(8)
	if got := SEM(xs); math.Abs(got-want) > 1e-12 {
		t.Errorf("SEM = %v, want %v", got, want)
	}
	if !math.IsNaN(SEM(nil)) {
		t.Error("SEM(nil) should be NaN")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 5, 3})
	if s.N != 3 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("Summary = %+v", s)
	}
	empty := Summarize(nil)
	if empty.N != 0 || !math.IsNaN(empty.Mean) || !math.IsNaN(empty.Min) {
		t.Errorf("empty Summary = %+v", empty)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Interpolation: quantile 0.5 of {1,2,3,4} is 2.5.
	if got := Quantile([]float64{4, 1, 3, 2}, 0.5); got != 2.5 {
		t.Errorf("median of 1..4 = %v, want 2.5", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) should be NaN")
	}
	if got := Quantile([]float64{7}, 0.9); got != 7 {
		t.Errorf("single-element quantile = %v, want 7", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestWhisker(t *testing.T) {
	// Data with one clear high outlier.
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 100}
	w := NewWhisker(xs)
	if w.N != 9 {
		t.Errorf("N = %d", w.N)
	}
	if w.Median != 5 {
		t.Errorf("median = %v, want 5", w.Median)
	}
	if len(w.Outliers) != 1 || w.Outliers[0] != 100 {
		t.Errorf("outliers = %v, want [100]", w.Outliers)
	}
	if w.WhiskerHi != 8 {
		t.Errorf("whisker high = %v, want 8", w.WhiskerHi)
	}
	if w.WhiskerLow != 1 {
		t.Errorf("whisker low = %v, want 1", w.WhiskerLow)
	}
}

func TestWhiskerEmpty(t *testing.T) {
	w := NewWhisker(nil)
	if w.N != 0 || !math.IsNaN(w.Median) {
		t.Errorf("empty whisker = %+v", w)
	}
}

func TestWhiskerProperties(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		w := NewWhisker(xs)
		// Quartiles ordered.
		if !(w.Q1 <= w.Median && w.Median <= w.Q3) {
			return false
		}
		// Outlier count + in-fence count == N.
		in := 0
		for _, x := range xs {
			if x >= w.LowFence && x <= w.HighFence {
				in++
			}
		}
		if in+len(w.Outliers) != w.N {
			return false
		}
		// Whiskers inside fences.
		return w.WhiskerLow >= w.LowFence-1e-9 && w.WhiskerHi <= w.HighFence+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16, qa, qb uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		q1 := float64(qa%101) / 100
		q2 := float64(qb%101) / 100
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		return Quantile(xs, q1) <= Quantile(xs, q2)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(80, 100); got != 80 {
		t.Errorf("Ratio = %v, want 80", got)
	}
	if !math.IsNaN(Ratio(1, 0)) {
		t.Error("Ratio with zero denominator should be NaN")
	}
}

func TestTimeSeriesAt(t *testing.T) {
	ts := &TimeSeries{}
	ts.Add(0, 0)
	ts.Add(1, 10)
	ts.Add(2, 30)
	if got := ts.At(0.5); got != 0 {
		t.Errorf("At(0.5) = %v, want 0", got)
	}
	if got := ts.At(1); got != 10 {
		t.Errorf("At(1) = %v, want 10", got)
	}
	if got := ts.At(1.5); got != 10 {
		t.Errorf("At(1.5) = %v, want 10", got)
	}
	if got := ts.At(5); got != 30 {
		t.Errorf("At(5) = %v, want 30 (step-hold)", got)
	}
	if got := ts.At(-1); got != 0 {
		t.Errorf("At(-1) = %v, want 0", got)
	}
}

func TestTimeSeriesDuplicateTimestamps(t *testing.T) {
	ts := &TimeSeries{}
	ts.Add(1, 10)
	ts.Add(1, 20)
	if got := ts.At(1); got != 20 {
		t.Errorf("At(1) with duplicates = %v, want last value 20", got)
	}
}

func TestTimeSeriesOrderPanics(t *testing.T) {
	ts := &TimeSeries{}
	ts.Add(2, 1)
	defer func() {
		if recover() == nil {
			t.Error("out-of-order Add did not panic")
		}
	}()
	ts.Add(1, 1)
}

func TestTimeSeriesLast(t *testing.T) {
	ts := &TimeSeries{}
	if tt, v := ts.Last(); !math.IsNaN(tt) || !math.IsNaN(v) {
		t.Error("empty Last should be NaN")
	}
	ts.Add(3, 7)
	if tt, v := ts.Last(); tt != 3 || v != 7 {
		t.Errorf("Last = (%v,%v)", tt, v)
	}
}

func TestResample(t *testing.T) {
	ts := &TimeSeries{}
	ts.Add(0, 0)
	ts.Add(2, 20)
	r := ts.Resample(1, 4)
	if r.Len() != 5 {
		t.Fatalf("resample len = %d, want 5", r.Len())
	}
	want := []float64{0, 0, 20, 20, 20}
	for i, w := range want {
		if r.V[i] != w {
			t.Errorf("resample[%d] = %v, want %v", i, r.V[i], w)
		}
	}
	if got := ts.Resample(0, 4); got.Len() != 0 {
		t.Error("zero-step resample should be empty")
	}
}

func TestRate(t *testing.T) {
	// Cumulative bytes growing at 10 per second.
	ts := &TimeSeries{}
	for i := 0; i <= 10; i++ {
		ts.Add(float64(i), float64(i*10))
	}
	r := ts.Rate(2, 1, 10)
	// After the initial ramp the rate should be 10 everywhere.
	for i, v := range r.V {
		if r.T[i] >= 2 && math.Abs(v-10) > 1e-9 {
			t.Errorf("rate at t=%v is %v, want 10", r.T[i], v)
		}
	}
}

func TestRateSortedTimestamps(t *testing.T) {
	ts := &TimeSeries{}
	ts.Add(0, 0)
	ts.Add(5, 100)
	r := ts.Rate(1, 0.5, 6)
	if !sort.Float64sAreSorted(r.T) {
		t.Error("rate output timestamps not sorted")
	}
}
