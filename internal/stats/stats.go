// Package stats implements the descriptive statistics the paper reports:
// sample means with standard error (Figure 8 and friends use mean ± 2·SEM
// bars, equation 2 defines the sample standard deviation), and the Whisker
// quartile/outlier summaries of the in-the-wild evaluation (Figures 15–16).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (Bessel-corrected, the
// paper's equation 2). It returns 0 for fewer than two samples.
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// SEM returns the standard error of the mean, s/sqrt(n), per §4.3.
func SEM(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	return StdDev(xs) / math.Sqrt(float64(n))
}

// Summary is a mean ± SEM pair, the unit of comparison in the lab figures.
type Summary struct {
	N    int
	Mean float64
	SEM  float64
	Min  float64
	Max  float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Mean: Mean(xs), SEM: SEM(xs)}
	if len(xs) == 0 {
		s.Min, s.Max = math.NaN(), math.NaN()
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs[1:] {
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	return s
}

// String renders the summary in the "mean ± SEM" form used by the figures.
func (s Summary) String() string {
	return fmt.Sprintf("%.2f ± %.2f (n=%d)", s.Mean, s.SEM, s.N)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (the R-7 / spreadsheet method).
// It returns NaN for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	h := q * float64(n-1)
	lo := int(math.Floor(h))
	frac := h - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// Whisker is the five-number/outlier summary drawn by the paper's Whisker
// plots: first quartile, median, third quartile, the whisker extents at
// Q1−1.5·IQR and Q3+1.5·IQR (clamped to observed data), and the outliers
// beyond them.
type Whisker struct {
	N              int
	Q1, Median, Q3 float64
	IQR            float64
	LowFence       float64 // Q1 − 1.5·IQR
	HighFence      float64 // Q3 + 1.5·IQR
	WhiskerLow     float64 // smallest observation ≥ LowFence
	WhiskerHi      float64 // largest observation ≤ HighFence
	Outliers       []float64
}

// NewWhisker computes the whisker summary of xs. It returns a zero-count
// Whisker (with NaN statistics) for an empty slice.
func NewWhisker(xs []float64) Whisker {
	w := Whisker{N: len(xs)}
	if len(xs) == 0 {
		nan := math.NaN()
		w.Q1, w.Median, w.Q3 = nan, nan, nan
		w.IQR, w.LowFence, w.HighFence = nan, nan, nan
		w.WhiskerLow, w.WhiskerHi = nan, nan
		return w
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	w.Q1 = quantileSorted(sorted, 0.25)
	w.Median = quantileSorted(sorted, 0.5)
	w.Q3 = quantileSorted(sorted, 0.75)
	w.IQR = w.Q3 - w.Q1
	w.LowFence = w.Q1 - 1.5*w.IQR
	w.HighFence = w.Q3 + 1.5*w.IQR
	w.WhiskerLow = math.NaN()
	w.WhiskerHi = math.NaN()
	for _, x := range sorted {
		if x < w.LowFence || x > w.HighFence {
			w.Outliers = append(w.Outliers, x)
			continue
		}
		if math.IsNaN(w.WhiskerLow) {
			w.WhiskerLow = x
		}
		w.WhiskerHi = x
	}
	// Degenerate case: everything is an outlier (cannot happen with
	// 1.5·IQR fences, but keep the struct well-formed for robustness).
	if math.IsNaN(w.WhiskerLow) {
		w.WhiskerLow, w.WhiskerHi = w.Q1, w.Q3
	}
	return w
}

// String renders the whisker summary on one line.
func (w Whisker) String() string {
	return fmt.Sprintf("Q1=%.2f med=%.2f Q3=%.2f whiskers=[%.2f,%.2f] outliers=%d (n=%d)",
		w.Q1, w.Median, w.Q3, w.WhiskerLow, w.WhiskerHi, len(w.Outliers), w.N)
}

// Ratio returns a/b expressed as the percentage the paper's relative
// figures use (Figure 10 plots everything "relative to MPTCP"). A zero
// denominator yields NaN.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return math.NaN()
	}
	return a / b * 100
}

// TimeSeries accumulates (time, value) samples, e.g. accumulated energy or
// instantaneous throughput traces (Figures 7, 9 and 12).
type TimeSeries struct {
	T []float64
	V []float64
}

// Add appends a sample. Samples must be added in nondecreasing time order.
func (ts *TimeSeries) Add(t, v float64) {
	if n := len(ts.T); n > 0 && t < ts.T[n-1] {
		panic("stats: TimeSeries samples must be time-ordered")
	}
	ts.T = append(ts.T, t)
	ts.V = append(ts.V, v)
}

// Len returns the number of samples.
func (ts *TimeSeries) Len() int { return len(ts.T) }

// Reset drops all samples, keeping the backing arrays for reuse.
func (ts *TimeSeries) Reset() {
	ts.T = ts.T[:0]
	ts.V = ts.V[:0]
}

// Clone returns an independent exact-size copy of the series. Pooled run
// state hands out clones so results outlive the reused scratch buffers.
func (ts *TimeSeries) Clone() *TimeSeries {
	out := &TimeSeries{}
	if len(ts.T) > 0 {
		out.T = append(make([]float64, 0, len(ts.T)), ts.T...)
		out.V = append(make([]float64, 0, len(ts.V)), ts.V...)
	}
	return out
}

// Last returns the final sample, or NaNs when empty.
func (ts *TimeSeries) Last() (t, v float64) {
	if len(ts.T) == 0 {
		return math.NaN(), math.NaN()
	}
	return ts.T[len(ts.T)-1], ts.V[len(ts.V)-1]
}

// At returns the value at time t using step interpolation (the value of
// the latest sample at or before t). Before the first sample it returns 0.
func (ts *TimeSeries) At(t float64) float64 {
	i := sort.SearchFloat64s(ts.T, t)
	// i is the first index with T[i] >= t.
	if i < len(ts.T) && ts.T[i] == t {
		// Multiple samples can share a timestamp; take the last.
		for i+1 < len(ts.T) && ts.T[i+1] == t {
			i++
		}
		return ts.V[i]
	}
	if i == 0 {
		return 0
	}
	return ts.V[i-1]
}

// Resample returns the series evaluated at a regular grid with the given
// step from 0 through end, using step interpolation.
func (ts *TimeSeries) Resample(step, end float64) *TimeSeries {
	out := &TimeSeries{}
	if step <= 0 {
		return out
	}
	for t := 0.0; t <= end+1e-9; t += step {
		out.Add(t, ts.At(t))
	}
	return out
}

// Rate converts a cumulative series into a windowed rate series: the value
// at each output point is (V(t) − V(t−window)) / window. Used to turn
// cumulative bytes into throughput traces.
func (ts *TimeSeries) Rate(window, step, end float64) *TimeSeries {
	out := &TimeSeries{}
	if window <= 0 || step <= 0 {
		return out
	}
	for t := step; t <= end+1e-9; t += step {
		lo := math.Max(0, t-window)
		dv := ts.At(t) - ts.At(lo)
		out.Add(t, dv/(t-lo))
	}
	return out
}
