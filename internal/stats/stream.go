// Streaming moment accumulation for population-scale aggregation.
//
// The campaign engine (internal/campaign) streams millions of runs
// through fixed-memory aggregators: per-run results are folded into a
// Stream and discarded, and shards of the run grid are reduced
// independently before being merged in shard order. Stream therefore
// needs two properties the slice-based helpers above cannot give:
// constant memory per metric, and a Merge whose result is independent —
// up to floating-point rounding — of how the sample sequence was
// partitioned into shards. Both rest on Chan et al.'s pairwise update
// formulas for (count, mean, M2), the parallel generalisation of
// Welford's algorithm.
//
// Bit-level determinism is still order-sensitive: merging A then B is
// not bit-identical to B then A. Callers that need byte-identical
// aggregates (the campaign executor does) must fix the shard boundaries
// and the merge order; TestStreamMergeAssociativity pins the tolerance
// the unordered property holds to, and the executor's determinism tests
// pin the byte-identical ordered case.
package stats

import "math"

// Stream accumulates count, mean, second central moment, and extrema of
// a sample sequence in O(1) memory. The zero value is an empty stream.
type Stream struct {
	N    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one sample into the stream (Welford's update).
func (s *Stream) Add(x float64) {
	s.N++
	if s.N == 1 {
		s.mean, s.m2 = x, 0
		s.min, s.max = x, x
		return
	}
	d := x - s.mean
	s.mean += d / float64(s.N)
	s.m2 += d * (x - s.mean)
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
}

// Merge folds the other stream into s (Chan et al.'s pairwise formula),
// as if every sample added to o had been added to s. Merging is
// associative and commutative up to floating-point rounding; the exact
// bit pattern depends on the merge order.
func (s *Stream) Merge(o Stream) {
	if o.N == 0 {
		return
	}
	if s.N == 0 {
		*s = o
		return
	}
	n := float64(s.N)
	m := float64(o.N)
	d := o.mean - s.mean
	tot := n + m
	s.mean += d * m / tot
	s.m2 += o.m2 + d*d*n*m/tot
	s.N += o.N
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
}

// Mean returns the running mean, or NaN for an empty stream.
func (s *Stream) Mean() float64 {
	if s.N == 0 {
		return math.NaN()
	}
	return s.mean
}

// StdDev returns the sample standard deviation (Bessel-corrected,
// matching StdDev on the full slice). It returns 0 for fewer than two
// samples.
func (s *Stream) StdDev() float64 {
	if s.N < 2 {
		return 0
	}
	v := s.m2 / float64(s.N-1)
	if v < 0 {
		// Guard against rounding pushing a near-zero moment negative.
		return 0
	}
	return math.Sqrt(v)
}

// SEM returns the standard error of the mean, s/sqrt(n), or NaN for an
// empty stream.
func (s *Stream) SEM() float64 {
	if s.N == 0 {
		return math.NaN()
	}
	return s.StdDev() / math.Sqrt(float64(s.N))
}

// Min returns the smallest sample, or NaN for an empty stream.
func (s *Stream) Min() float64 {
	if s.N == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the largest sample, or NaN for an empty stream.
func (s *Stream) Max() float64 {
	if s.N == 0 {
		return math.NaN()
	}
	return s.max
}

// Summary converts the stream into the Summary the report tables print.
func (s *Stream) Summary() Summary {
	return Summary{N: int(s.N), Mean: s.Mean(), SEM: s.SEM(), Min: s.Min(), Max: s.Max()}
}

// CI95 returns the normal-approximation 95% confidence interval of the
// mean, mean ± 1.96·SEM — the interval the campaign's population-scale
// tables report. Both bounds are NaN for an empty stream.
func (s *Stream) CI95() (lo, hi float64) {
	m, sem := s.Mean(), s.SEM()
	return m - 1.96*sem, m + 1.96*sem
}

// Moments exposes the raw accumulator state (count, mean, second
// central moment, extrema) for bit-exact serialisation. Together with
// StreamFromMoments it round-trips a Stream without losing a single
// bit, which is what lets a remotely-computed shard aggregate merge
// byte-identically to a locally-computed one.
func (s *Stream) Moments() (n uint64, mean, m2, min, max float64) {
	return s.N, s.mean, s.m2, s.min, s.max
}

// StreamFromMoments reconstructs a Stream from Moments output. The
// arguments are trusted verbatim: StreamFromMoments(s.Moments()) == s
// field for field, including NaN/Inf bit patterns.
func StreamFromMoments(n uint64, mean, m2, min, max float64) Stream {
	return Stream{N: n, mean: mean, m2: m2, min: min, max: max}
}
