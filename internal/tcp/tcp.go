// Package tcp models a TCP subflow at fluid-round granularity: each round
// one congestion window of data is sent over the path and acknowledged one
// RTT later, with slow start, congestion avoidance, fast-recovery halving,
// timeout backoff when the path is dead, and the RFC 2861 idle
// congestion-window reset that eMPTCP selectively disables for resumed
// subflows (§3.6 of the paper).
//
// The fluid model reproduces TCP's throughput dynamics — slow-start ramp,
// AIMD sawtooth tracking available bandwidth, multiplexed fair sharing —
// at a tiny fraction of per-packet simulation cost, which the experiment
// harness needs (hundreds of multi-hundred-megabyte downloads per table).
package tcp

import (
	"fmt"
	"math"

	"repro/internal/link"
	"repro/internal/sim"
	"repro/internal/simrng"
	"repro/internal/trace"
	"repro/internal/units"
)

// Config carries the TCP parameters of a subflow.
type Config struct {
	// MSS is the maximum segment size.
	MSS units.ByteSize
	// InitialWindow is the initial congestion window in segments
	// (RFC 6928's IW10 is the modern default and what the paper's
	// equation 1 calls W_init).
	InitialWindow float64
	// MaxWindow caps the congestion window in segments (receive window).
	MaxWindow float64
	// MinRTO is the minimum retransmission timeout in seconds.
	MinRTO float64
	// DisableIdleCwndReset turns off the RFC 2861 congestion-window reset
	// after an idle period longer than the RTO. eMPTCP sets this for
	// resumed subflows so they avoid a needless slow start (§3.6).
	DisableIdleCwndReset bool
	// RTTJitter is the fractional jitter applied to each round's RTT.
	RTTJitter float64
}

// DefaultConfig returns standard host TCP parameters.
func DefaultConfig() Config {
	return Config{
		MSS:           1460,
		InitialWindow: 10,
		MaxWindow:     1024,
		MinRTO:        1.0,
		RTTJitter:     0.08,
	}
}

// Path is one end-to-end network path (interface pair). Concurrent
// subflows on the same path share its capacity equally, as 802.11 DCF and
// router queues do over TCP timescales.
type Path struct {
	// Name identifies the path in logs ("wifi", "lte").
	Name string
	// Capacity is the available-bandwidth process.
	Capacity link.Process
	// BaseRTT is the path's propagation RTT in seconds.
	BaseRTT float64
	// ExtraLoss, when non-nil, returns an additional per-packet random
	// loss probability (e.g. contention collisions).
	ExtraLoss func() float64

	active int // subflows with a round in progress

	// epoch counts capacity-rate changes. The round batcher snapshots it
	// when a batch opens and falls back to the heap when it moves, so a
	// modulator/interferer/handover rate flip always breaks the batch even
	// if it somehow produced no earlier-ordered event. hooked guards the
	// one-time observer registration.
	epoch  uint64
	hooked bool

	// lossProc caches the Capacity's LossProcess assertion: LossProb runs
	// once per round, and the dynamic type of Capacity never changes over
	// a Path's lifetime.
	lossProc    link.LossProcess
	lossChecked bool
}

// ensureRateHook registers (once) a capacity observer that bumps the
// path's rate-change epoch. The observer has no observable side effects —
// it exists purely so the batch loop can detect mid-batch rate changes.
func (p *Path) ensureRateHook() {
	if p.hooked || p.Capacity == nil {
		return
	}
	p.hooked = true
	p.Capacity.OnChange(func(units.BitRate) { p.epoch++ })
}

// LossProb returns the path's current per-packet random loss probability.
func (p *Path) LossProb() float64 {
	if p.ExtraLoss != nil {
		return p.ExtraLoss()
	}
	if !p.lossChecked {
		p.lossChecked = true
		p.lossProc, _ = p.Capacity.(link.LossProcess)
	}
	if p.lossProc != nil {
		return p.lossProc.LossProb()
	}
	return 0
}

// share returns the capacity available to one of the currently-active
// subflows.
func (p *Path) share() units.BitRate {
	n := p.active
	if n < 1 {
		n = 1
	}
	return p.Capacity.Rate() / units.BitRate(n)
}

// State is a subflow's lifecycle position.
type State int

// Subflow states.
const (
	Closed State = iota
	Connecting
	Established
)

// String names the state.
func (s State) String() string {
	switch s {
	case Closed:
		return "CLOSED"
	case Connecting:
		return "CONNECTING"
	case Established:
		return "ESTABLISHED"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// DataSource supplies a subflow with data and receives its deliveries.
// The MPTCP connection implements it; a plain single-path TCP download
// implements it trivially.
type DataSource interface {
	// Request asks for up to max bytes to send this round. Returning 0
	// idles the subflow until Kick is called.
	Request(sf *Subflow, max units.ByteSize) units.ByteSize
	// Delivered reports bytes that arrived at the receiver.
	Delivered(sf *Subflow, n units.ByteSize)
	// Returned hands back bytes that could not be transmitted because
	// the path was dead (zero capacity through a whole timeout).
	Returned(sf *Subflow, n units.ByteSize)
	// IncreasePerRTT returns the congestion-avoidance window increase in
	// segments for this subflow's next round: 1 for uncoupled Reno, the
	// LIA coupled value for standard MPTCP.
	IncreasePerRTT(sf *Subflow) float64
}

// Subflow is one TCP flow over a Path.
type Subflow struct {
	// The congestion state leads the struct so it shares the first cache
	// line: the LIA coupling loop reads state, cwnd, srtt, and suspended
	// from every sibling subflow on every congestion-avoidance round, and
	// sibling structs are usually cold by then.
	state    State
	cwnd     float64 // segments
	ssthresh float64 // segments
	srtt     float64 // smoothed RTT estimate, seconds

	suspended bool
	inRound   bool
	everSent  bool
	// batchBroken is set by InvalidateBatch and forces the round batcher
	// to fall back to the event heap at the next round boundary. It is a
	// defense-in-depth hook: CanFireInline alone already guarantees
	// ordering, because every invalidation source is either event-driven
	// (and an earlier event blocks inlining) or synchronous inside the
	// round body (and thus sequenced identically either way).
	batchBroken bool

	lastSendAt float64 // end of the most recent active round

	// ID tags the subflow for logs and scheduling.
	ID string
	// Meta carries caller-defined context (the MPTCP layer stores the
	// interface identity here).
	Meta any

	eng    *sim.Engine
	src    *simrng.Source
	path   *Path
	cfg    Config
	source DataSource

	// HandshakeRTT is the RTT measured during establishment (the paper
	// uses it to set the bandwidth-predictor sampling interval δ).
	HandshakeRTT float64

	// BytesDelivered counts cumulative bytes delivered to the receiver.
	BytesDelivered units.ByteSize
	// Rounds counts transmission rounds.
	Rounds int
	// Losses counts loss events (halvings plus timeouts).
	Losses int

	// OnEstablished, when non-nil, fires once the handshake completes.
	OnEstablished func(sf *Subflow)

	hsRTT     float64       // RTT drawn for the in-progress handshake
	estFn     func()        // pre-bound handshake completion
	kickFn    func()        // pre-bound Kick for deferred wakeups
	roundFree []*roundState // free-listed round records
	roundAll  []*roundState // every record ever created, for checkpointing
}

// roundState carries one in-flight round's values to its pre-bound
// completion callback — exactly what the per-round closures used to
// capture. Records are free-listed per subflow, so steady-state rounds
// allocate nothing while still behaving like independent closures when
// re-entrant delivery starts a second concurrent round (receive-window
// wakeups can).
type roundState struct {
	sf        *Subflow
	n         units.ByteSize
	dur       float64
	lost      bool
	def       sim.Deferred // reserved engine slot while the round is deferred
	endFn     func()
	timeoutFn func()
}

// getRound pops a free round record or builds one, binding its callbacks
// exactly once.
func (sf *Subflow) getRound() *roundState {
	if n := len(sf.roundFree); n > 0 {
		r := sf.roundFree[n-1]
		sf.roundFree = sf.roundFree[:n-1]
		return r
	}
	r := &roundState{sf: sf}
	r.endFn = r.end
	r.timeoutFn = r.timeout
	sf.roundAll = append(sf.roundAll, r)
	return r
}

func (sf *Subflow) putRound(r *roundState) { sf.roundFree = append(sf.roundFree, r) }

// NewSubflow builds a closed subflow over path. Call Connect to start it.
func NewSubflow(id string, eng *sim.Engine, src *simrng.Source, path *Path, cfg Config, source DataSource) *Subflow {
	sf := &Subflow{}
	initSubflow(sf, id, eng, src, path, cfg, source)
	return sf
}

// initSubflow (re)initializes a subflow in place — sf is either zeroed
// (NewSubflow) or a recycled Arena slot, whose pre-bound callbacks and
// round records are kept so reuse allocates nothing.
func initSubflow(sf *Subflow, id string, eng *sim.Engine, src *simrng.Source, path *Path, cfg Config, source DataSource) {
	if cfg.MSS <= 0 || cfg.InitialWindow <= 0 || cfg.MaxWindow < cfg.InitialWindow || cfg.MinRTO <= 0 {
		panic("tcp: invalid subflow config")
	}
	*sf = Subflow{
		ID:        id,
		eng:       eng,
		src:       src,
		path:      path,
		cfg:       cfg,
		source:    source,
		estFn:     sf.estFn,
		kickFn:    sf.kickFn,
		roundFree: sf.roundFree,
		roundAll:  sf.roundAll,
	}
	if sf.estFn == nil {
		sf.estFn = sf.established
		sf.kickFn = sf.Kick
	}
	// No round is in flight at (re)init, so every registered record is
	// free. Rebuilding the free list here reclaims records whose end event
	// never fired because the previous run completed first — otherwise a
	// recycled slot leaks one record per run and the registry (which
	// checkpointing walks) grows without bound.
	sf.roundFree = append(sf.roundFree[:0], sf.roundAll...)
}

// Path returns the subflow's path.
func (sf *Subflow) Path() *Path { return sf.path }

// State returns the subflow's lifecycle state.
func (sf *Subflow) State() State { return sf.state }

// Cwnd returns the congestion window in segments.
func (sf *Subflow) Cwnd() float64 { return sf.cwnd }

// SRTT returns the smoothed RTT estimate in seconds (the handshake RTT
// until data rounds refine it).
func (sf *Subflow) SRTT() float64 { return sf.srtt }

// Suspended reports whether the subflow is in backup (MP_PRIO) mode.
func (sf *Subflow) Suspended() bool { return sf.suspended }

// rtt samples the path RTT with jitter.
func (sf *Subflow) rtt() float64 {
	return sf.src.Jitter(sf.path.BaseRTT, sf.cfg.RTTJitter)
}

// rto returns the current retransmission timeout.
func (sf *Subflow) rto() float64 {
	return max(sf.cfg.MinRTO, 2*sf.srtt)
}

// Connect starts the three-way handshake, taking extraDelay seconds before
// the SYN leaves (e.g. a cellular radio promotion). The subflow becomes
// Established one handshake-RTT later and begins transmitting.
func (sf *Subflow) Connect(extraDelay float64) {
	if sf.state != Closed {
		panic("tcp: Connect on a non-closed subflow")
	}
	sf.state = Connecting
	sf.hsRTT = sf.rtt()
	sf.eng.After(extraDelay+sf.hsRTT, sf.estFn)
}

// established completes the handshake (pre-bound in NewSubflow).
func (sf *Subflow) established() {
	hsRTT := sf.hsRTT
	sf.state = Established
	sf.HandshakeRTT = hsRTT
	sf.srtt = hsRTT
	sf.cwnd = sf.cfg.InitialWindow
	sf.ssthresh = sf.cfg.MaxWindow
	sf.lastSendAt = sf.eng.Now()
	if rec := sf.eng.Recorder(); rec != nil {
		rec.Record(trace.Event{
			T: sf.eng.Now(), Kind: trace.KindTCPState,
			Subflow: sf.ID, From: Connecting.String(), To: Established.String(),
		})
	}
	if sf.OnEstablished != nil {
		sf.OnEstablished(sf)
	}
	sf.Kick()
}

// KickFunc returns the subflow's pre-bound Kick callback, so callers
// scheduling deferred wakeups (the min-RTT scheduler) allocate no closure
// per deferral. Any number of arms may be outstanding at once.
func (sf *Subflow) KickFunc() func() { return sf.kickFn }

// InvalidateBatch asks the round batcher to stop coalescing at the next
// round boundary and re-enter the engine through the event heap. Layers
// above call it whenever subflow-external state changes mid-round — an
// MP_PRIO flip, a subflow join, a scheduler deferral, a radio-state
// change — as a belt-and-braces guarantee on top of the engine-level
// CanFireInline ordering check. Calling it outside a batch is a cheap
// no-op (the flag is cleared when the next batch opens).
func (sf *Subflow) InvalidateBatch() { sf.batchBroken = true }

// Suspend places the subflow in backup mode (the MP_PRIO low-priority
// signal): it finishes the round in flight and then requests no more data.
func (sf *Subflow) Suspend() {
	sf.suspended = true
	sf.InvalidateBatch()
}

// Resume lifts backup mode. Per RFC 2861, a window that sat idle longer
// than the RTO collapses back to the initial window — unless the
// configuration disables the reset, which is exactly eMPTCP's fast-reuse
// modification (§3.6). In that mode the measured RTT is also zeroed, so
// the min-RTT scheduler immediately re-probes the renewed subflow instead
// of starving it behind lower-RTT peers.
func (sf *Subflow) Resume() {
	if !sf.suspended {
		return
	}
	sf.suspended = false
	sf.InvalidateBatch()
	sf.applyIdleReset()
	if sf.cfg.DisableIdleCwndReset {
		sf.srtt = 1e-3 // §3.6: report ~zero RTT until data rounds re-measure it
	}
	sf.Kick()
}

// Kick restarts the round loop of an established, idle subflow. The data
// source calls it when new data becomes available.
func (sf *Subflow) Kick() {
	if sf.state != Established || sf.suspended || sf.inRound {
		return
	}
	sf.applyIdleReset()
	sf.startRound(false)
}

// applyIdleReset implements RFC 2861: reset cwnd after an idle period
// longer than the RTO, unless disabled.
func (sf *Subflow) applyIdleReset() {
	if sf.cfg.DisableIdleCwndReset || !sf.everSent {
		return
	}
	if sf.eng.Now()-sf.lastSendAt > sf.rto() {
		sf.cwnd = sf.cfg.InitialWindow
		sf.ssthresh = sf.cfg.MaxWindow
	}
}

// startRound begins one transmission round.
//
// When deferOK is true (only the round batcher passes it), a live round's
// completion is not pushed onto the event heap: its engine slot — fire
// time plus reserved sequence number — is parked in r.def and the round
// record is returned, so the batcher can either run it inline or commit
// it to the heap later. The reservation draws the same sequence number
// and emits the same schedule trace event a real After would, keeping
// event ordering and traces bit-identical. Dead-path timeouts always go
// through the heap: a round that moves no data gains nothing from
// coalescing, and the RTO window is long enough that a foreign event
// almost always intervenes anyway.
func (sf *Subflow) startRound(deferOK bool) *roundState {
	want := units.ByteSize(sf.cwnd) * sf.cfg.MSS
	n := sf.source.Request(sf, want)
	if n <= 0 {
		return nil // idle until Kick
	}
	sf.inRound = true
	sf.everSent = true
	sf.path.active++

	share := sf.path.share()
	rtt := sf.rtt()
	r := sf.getRound()
	r.n = n

	if share <= 0 {
		// Dead path: nothing moves for a full RTO, then the data is
		// returned (the sender would retransmit; the connection may
		// reinject it on another subflow) and the window collapses.
		sf.eng.After(sf.rto(), r.timeoutFn)
		return nil
	}

	offered := units.BitRate(n.Bits() / rtt)
	congested := offered > share
	// Round duration: the self-clocked RTT, stretched when the pipe
	// cannot carry a full window per RTT.
	dur := max(rtt, n.Bits()/float64(share))

	// Random per-packet loss aggregated to a per-round loss event. The
	// lossless case short-circuits: math.Pow(1, pkts) is exactly 1, so
	// pRound is exactly 0 and Bernoulli(0) draws nothing either way.
	var pRound float64
	if lp := sf.path.LossProb(); lp != 0 {
		pkts := max(1, float64(n)/float64(sf.cfg.MSS))
		pRound = 1 - math.Pow(1-lp, pkts)
	}
	r.lost = congested || sf.src.Bernoulli(pRound)
	r.dur = dur
	if deferOK {
		r.def = sf.eng.DeferAfter(dur)
		return r
	}
	sf.eng.After(dur, r.endFn)
	return nil
}

// timeout ends a dead-path round after a full RTO.
func (r *roundState) timeout() {
	sf, n := r.sf, r.n
	sf.putRound(r)
	sf.path.active--
	sf.inRound = false
	sf.Losses++
	sf.cwnd = sf.cfg.InitialWindow
	sf.ssthresh = max(sf.ssthresh/2, 2)
	sf.lastSendAt = sf.eng.Now()
	if rec := sf.eng.Recorder(); rec != nil {
		rec.Record(trace.Event{
			T: sf.eng.Now(), Kind: trace.KindLoss,
			Subflow: sf.ID, To: "timeout", A: sf.cwnd, B: sf.ssthresh,
		})
	}
	sf.source.Returned(sf, n)
	// Retry while data remains queued for us.
	sf.startRound(false)
}

// maxBatchRounds caps how many rounds one fired event may execute inline.
// The cap bounds clock drift between re-entries into the engine, keeping
// the batcher honest without affecting output (every coalesced round runs
// at exactly the virtual time it would have run unbatched).
var maxBatchRounds = 64

// end is the round-completion event body — and the round batcher. The
// engine fires it once; it then executes up to maxBatchRounds rounds
// inline, as long as each round's completion is provably the very next
// event the engine would dispatch (CanFireInline), nothing invalidated
// the batch (InvalidateBatch, a capacity-rate epoch bump), and the cap
// has not been hit. Every coalesced round performs identical arithmetic,
// RNG draws, trace emissions, and source callbacks at identical virtual
// times; only the k−1 heap pushes/pops and engine Step round-trips are
// skipped.
func (r *roundState) end() {
	sf := r.sf
	sf.batchBroken = false
	sf.path.ensureRateHook()
	epoch := sf.path.epoch
	for k := 0; ; k++ {
		next := sf.finishRound(r)
		if next == nil {
			return // subflow idle, suspended, or on the dead-path timer
		}
		r = next
		if k >= maxBatchRounds || sf.batchBroken || sf.path.epoch != epoch ||
			!sf.eng.TryFireInline(r.def) {
			sf.eng.CommitDeferred(r.def, r.endFn)
			return
		}
	}
}

// finishRound completes one transmission round and, when the subflow
// stays busy, starts the next one in deferred form, returning its record
// for the batcher to dispatch. It is the exact body the per-round event
// callback had before batching.
func (sf *Subflow) finishRound(r *roundState) *roundState {
	n, dur, lost := r.n, r.dur, r.lost
	sf.putRound(r)
	sf.path.active--
	sf.inRound = false
	sf.Rounds++
	sf.lastSendAt = sf.eng.Now()
	// Update the smoothed RTT with this round's effective duration.
	sf.srtt = 0.875*sf.srtt + 0.125*dur

	if lost {
		sf.Losses++
		sf.ssthresh = max(sf.cwnd/2, 2)
		sf.cwnd = sf.ssthresh // fast recovery, not timeout
	} else if sf.cwnd < sf.ssthresh {
		sf.cwnd = min(sf.cwnd*2, sf.ssthresh) // slow start
	} else {
		sf.cwnd += sf.source.IncreasePerRTT(sf) // congestion avoidance
	}
	sf.cwnd = min(sf.cwnd, sf.cfg.MaxWindow)
	sf.cwnd = max(sf.cwnd, 1)
	if rec := sf.eng.Recorder(); rec != nil {
		if lost {
			rec.Record(trace.Event{
				T: sf.eng.Now(), Kind: trace.KindLoss,
				Subflow: sf.ID, To: "halve", A: sf.cwnd, B: sf.ssthresh,
			})
		}
		rec.Record(trace.Event{
			T: sf.eng.Now(), Kind: trace.KindCwnd,
			Subflow: sf.ID, A: sf.cwnd, B: sf.ssthresh,
		})
	}

	// The fluid model delivers the round's bytes reliably; loss is
	// reflected in window dynamics (retransmissions ride inside the
	// stretched round duration).
	sf.BytesDelivered += n
	sf.source.Delivered(sf, n)
	if !sf.suspended {
		return sf.startRound(true)
	}
	return nil
}

// Throughput returns the subflow's smoothed current goodput estimate:
// cwnd·MSS per smoothed RTT, bounded by its capacity share. It is the
// instantaneous quantity the paper's Figure 9 plots.
func (sf *Subflow) Throughput() units.BitRate {
	if sf.state != Established || sf.srtt <= 0 {
		return 0
	}
	w := units.BitRate((units.ByteSize(sf.cwnd) * sf.cfg.MSS).Bits() / sf.srtt)
	share := sf.path.share()
	if w > share {
		return share
	}
	return w
}
