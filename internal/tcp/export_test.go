package tcp

// SetMaxBatchRounds overrides the inline round-coalescing cap for tests,
// returning a func that restores the previous value. A cap of zero
// disables coalescing entirely: every round completion re-enters the
// engine through the event heap, which is the reference behaviour the
// batched path must reproduce bit for bit.
func SetMaxBatchRounds(n int) (restore func()) {
	old := maxBatchRounds
	maxBatchRounds = n
	return func() { maxBatchRounds = old }
}

// BatchBroken exposes the batch-invalidation flag so tests can verify
// that every invalidation source actually reaches the batcher.
func (sf *Subflow) BatchBroken() bool { return sf.batchBroken }

// ResetBatchBroken clears the batch-invalidation flag so a test can watch
// it flip for one specific invalidation source.
func (sf *Subflow) ResetBatchBroken() { sf.batchBroken = false }

// Epoch exposes the path's capacity-rate-change counter.
func (p *Path) Epoch() uint64 { return p.epoch }

// EnsureRateHook exposes the one-time rate-observer registration.
func (p *Path) EnsureRateHook() { p.ensureRateHook() }
