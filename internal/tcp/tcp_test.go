package tcp

import (
	"math"
	"testing"

	"repro/internal/link"
	"repro/internal/sim"
	"repro/internal/simrng"
	"repro/internal/units"
)

// sink is a simple DataSource: a fixed download with uncoupled Reno.
type sink struct {
	remaining units.ByteSize
	delivered units.ByteSize
	doneAt    float64
	eng       *sim.Engine
}

func (s *sink) Request(sf *Subflow, max units.ByteSize) units.ByteSize {
	n := max
	if n > s.remaining {
		n = s.remaining
	}
	s.remaining -= n
	return n
}

func (s *sink) Delivered(sf *Subflow, n units.ByteSize) {
	s.delivered += n
	if s.remaining <= 0 && s.doneAt == 0 {
		s.doneAt = s.eng.Now()
	}
}

func (s *sink) Returned(sf *Subflow, n units.ByteSize) { s.remaining += n }

func (s *sink) IncreasePerRTT(*Subflow) float64 { return 1 }

func setup(t *testing.T, size units.ByteSize, rate units.BitRate, rttSec float64) (*sim.Engine, *sink, *Subflow) {
	t.Helper()
	eng := sim.New()
	src := simrng.New(1)
	path := &Path{Name: "test", Capacity: link.NewConstant(rate), BaseRTT: rttSec}
	s := &sink{remaining: size, eng: eng}
	sf := NewSubflow("sf0", eng, src, path, DefaultConfig(), s)
	return eng, s, sf
}

func TestHandshake(t *testing.T) {
	eng, _, sf := setup(t, 0, units.MbpsRate(10), 0.05)
	established := false
	sf.OnEstablished = func(x *Subflow) {
		established = true
		if x.HandshakeRTT <= 0 {
			t.Error("handshake RTT not recorded")
		}
		if got := eng.Now(); math.Abs(got-x.HandshakeRTT) > 1e-9 {
			t.Errorf("established at %v, want handshake RTT %v", got, x.HandshakeRTT)
		}
	}
	sf.Connect(0)
	if sf.State() != Connecting {
		t.Fatalf("state = %v, want CONNECTING", sf.State())
	}
	eng.Run()
	if !established || sf.State() != Established {
		t.Fatal("handshake did not complete")
	}
}

func TestConnectExtraDelay(t *testing.T) {
	eng, _, sf := setup(t, 0, units.MbpsRate(10), 0.05)
	sf.OnEstablished = func(x *Subflow) {
		if eng.Now() < 2.0 {
			t.Errorf("established at %v, want ≥ 2 (promotion delay)", eng.Now())
		}
	}
	sf.Connect(2.0)
	eng.Run()
}

func TestDoubleConnectPanics(t *testing.T) {
	_, _, sf := setup(t, 0, units.MbpsRate(10), 0.05)
	sf.Connect(0)
	defer func() {
		if recover() == nil {
			t.Error("double Connect did not panic")
		}
	}()
	sf.Connect(0)
}

func TestDownloadCompletesAtLinkRate(t *testing.T) {
	// 16 MB over a 10 Mbps, 50 ms link: ideal time ≈ 13.4 s; with slow
	// start and jitter allow 12–25 s.
	size := 16 * units.MB
	eng, s, sf := setup(t, size, units.MbpsRate(10), 0.05)
	sf.Connect(0)
	eng.Horizon = 300
	eng.Run()
	if s.delivered != size {
		t.Fatalf("delivered %v of %v", s.delivered, size)
	}
	ideal := units.MbpsRate(10).TimeToSend(size).Seconds()
	if s.doneAt < ideal*0.9 || s.doneAt > ideal*2 {
		t.Errorf("download took %v s, ideal %v s", s.doneAt, ideal)
	}
}

func TestSlowStartRamp(t *testing.T) {
	eng, _, sf := setup(t, 64*units.MB, units.MbpsRate(50), 0.05)
	sf.Connect(0)
	// After establishment + a few rounds, cwnd should have grown
	// geometrically from IW.
	eng.RunUntil(0.05 + 4*0.06) // handshake + ~4 rounds
	if sf.Cwnd() < 40 {
		t.Errorf("cwnd after ~4 rounds = %v, want ≥ 40 (slow start doubling from 10)", sf.Cwnd())
	}
}

func TestSawtoothOnConstrainedLink(t *testing.T) {
	// On a link much slower than the window cap, cwnd must experience
	// loss-driven halvings (the AIMD sawtooth).
	eng, _, sf := setup(t, 64*units.MB, units.MbpsRate(5), 0.04)
	sf.Connect(0)
	eng.Horizon = 60
	eng.Run()
	if sf.Losses == 0 {
		t.Error("no loss events on a constrained link in 60 s")
	}
	if sf.Rounds < 100 {
		t.Errorf("only %d rounds in 60 s at 40 ms RTT", sf.Rounds)
	}
}

func TestThroughputTracksCapacity(t *testing.T) {
	eng, s, sf := setup(t, 256*units.MB, units.MbpsRate(8), 0.05)
	sf.Connect(0)
	eng.RunUntil(30)
	// Delivered bytes over 30 s should approximate the link rate.
	gotMbps := s.delivered.Bits() / 30 / 1e6
	if gotMbps < 5.5 || gotMbps > 8.5 {
		t.Errorf("goodput = %.2f Mbps on an 8 Mbps link", gotMbps)
	}
	thr := sf.Throughput()
	if thr <= 0 || thr > units.MbpsRate(9) {
		t.Errorf("instantaneous throughput = %v", thr)
	}
}

func TestSuspendStopsTransfer(t *testing.T) {
	eng, s, sf := setup(t, 256*units.MB, units.MbpsRate(10), 0.05)
	sf.Connect(0)
	eng.RunUntil(10)
	sf.Suspend()
	if !sf.Suspended() {
		t.Fatal("Suspended() = false after Suspend")
	}
	eng.RunUntil(11) // let the in-flight round finish
	at := s.delivered
	eng.RunUntil(30)
	if s.delivered != at {
		t.Errorf("suspended subflow delivered %v more bytes", s.delivered-at)
	}
}

func TestResumeWithCwndReset(t *testing.T) {
	eng, _, sf := setup(t, 256*units.MB, units.MbpsRate(10), 0.05)
	sf.Connect(0)
	eng.RunUntil(10)
	sf.Suspend()
	eng.RunUntil(11)
	grown := sf.Cwnd()
	if grown <= DefaultConfig().InitialWindow {
		t.Fatalf("cwnd did not grow before suspension: %v", grown)
	}
	eng.RunUntil(30) // idle well past the RTO
	sf.Resume()
	if sf.Cwnd() != DefaultConfig().InitialWindow {
		t.Errorf("cwnd after idle resume = %v, want reset to IW (RFC 2861)", sf.Cwnd())
	}
}

func TestResumeWithoutCwndReset(t *testing.T) {
	// eMPTCP's fast-reuse: DisableIdleCwndReset keeps the window.
	eng := sim.New()
	src := simrng.New(1)
	path := &Path{Name: "test", Capacity: link.NewConstant(units.MbpsRate(10)), BaseRTT: 0.05}
	s := &sink{remaining: 256 * units.MB, eng: eng}
	cfg := DefaultConfig()
	cfg.DisableIdleCwndReset = true
	sf := NewSubflow("sf0", eng, src, path, cfg, s)
	sf.Connect(0)
	eng.RunUntil(10)
	sf.Suspend()
	eng.RunUntil(11)
	grown := sf.Cwnd()
	eng.RunUntil(30)
	sf.Resume()
	if sf.Cwnd() != grown {
		t.Errorf("cwnd after fast-reuse resume = %v, want preserved %v", sf.Cwnd(), grown)
	}
}

func TestDeadPathTimeoutAndReturn(t *testing.T) {
	eng := sim.New()
	src := simrng.New(3)
	// Capacity drops to zero at t=5 and recovers at t=20.
	cap := link.NewTrace(eng, []link.Breakpoint{
		{At: 0, Rate: units.MbpsRate(10)},
		{At: 5, Rate: 0},
		{At: 20, Rate: units.MbpsRate(10)},
	})
	path := &Path{Name: "flaky", Capacity: cap, BaseRTT: 0.05}
	s := &sink{remaining: 256 * units.MB, eng: eng}
	sf := NewSubflow("sf0", eng, src, path, DefaultConfig(), s)
	sf.Connect(0)
	eng.RunUntil(19)
	at := s.delivered
	losses := sf.Losses
	if losses == 0 {
		t.Error("dead path produced no timeout losses")
	}
	eng.RunUntil(40)
	if s.delivered <= at {
		t.Error("transfer did not recover after capacity returned")
	}
	// After recovery, cwnd restarted from IW (timeout), so it must have
	// been growing again.
	if sf.Cwnd() <= 1 {
		t.Errorf("cwnd after recovery = %v", sf.Cwnd())
	}
}

func TestFairShareBetweenSubflows(t *testing.T) {
	eng := sim.New()
	src := simrng.New(4)
	path := &Path{Name: "shared", Capacity: link.NewConstant(units.MbpsRate(10)), BaseRTT: 0.05}
	s1 := &sink{remaining: 256 * units.MB, eng: eng}
	s2 := &sink{remaining: 256 * units.MB, eng: eng}
	sf1 := NewSubflow("a", eng, src.Split(1), path, DefaultConfig(), s1)
	sf2 := NewSubflow("b", eng, src.Split(2), path, DefaultConfig(), s2)
	sf1.Connect(0)
	sf2.Connect(0)
	eng.RunUntil(60)
	d1, d2 := float64(s1.delivered), float64(s2.delivered)
	total := (d1 + d2) * 8 / 60 / 1e6
	if total < 7 || total > 11 {
		t.Errorf("aggregate goodput = %.2f Mbps on a 10 Mbps link", total)
	}
	ratio := d1 / d2
	if ratio < 0.6 || ratio > 1.67 {
		t.Errorf("unfair split: %.0f vs %.0f bytes (ratio %.2f)", d1, d2, ratio)
	}
}

func TestIdleSubflowKick(t *testing.T) {
	eng := sim.New()
	src := simrng.New(5)
	path := &Path{Name: "p", Capacity: link.NewConstant(units.MbpsRate(10)), BaseRTT: 0.05}
	s := &sink{remaining: 0, eng: eng} // nothing to send yet
	sf := NewSubflow("sf0", eng, src, path, DefaultConfig(), s)
	sf.Connect(0)
	eng.RunUntil(5)
	if s.delivered != 0 {
		t.Fatal("idle subflow delivered data")
	}
	// New data arrives; kick the subflow.
	s.remaining = units.MB
	sf.Kick()
	eng.RunUntil(30)
	if s.delivered != units.MB {
		t.Errorf("delivered %v after kick, want 1 MB", s.delivered)
	}
}

func TestLossyPathLowersGoodput(t *testing.T) {
	run := func(loss float64) units.ByteSize {
		eng := sim.New()
		src := simrng.New(6)
		path := &Path{
			Name:      "lossy",
			Capacity:  link.NewConstant(units.MbpsRate(10)),
			BaseRTT:   0.05,
			ExtraLoss: func() float64 { return loss },
		}
		s := &sink{remaining: 256 * units.MB, eng: eng}
		sf := NewSubflow("sf0", eng, src, path, DefaultConfig(), s)
		sf.Connect(0)
		eng.RunUntil(30)
		return s.delivered
	}
	clean := run(0)
	lossy := run(0.02)
	if lossy >= clean {
		t.Errorf("2%% loss should lower goodput: clean=%v lossy=%v", clean, lossy)
	}
}

func TestBadConfigPanics(t *testing.T) {
	eng := sim.New()
	path := &Path{Name: "p", Capacity: link.NewConstant(1), BaseRTT: 0.05}
	bad := DefaultConfig()
	bad.MSS = 0
	defer func() {
		if recover() == nil {
			t.Error("invalid config did not panic")
		}
	}()
	NewSubflow("x", eng, simrng.New(1), path, bad, &sink{eng: eng})
}

func TestStateString(t *testing.T) {
	if Closed.String() != "CLOSED" || Connecting.String() != "CONNECTING" || Established.String() != "ESTABLISHED" {
		t.Error("state names wrong")
	}
	if State(9).String() != "State(9)" {
		t.Error("unknown state name wrong")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (units.ByteSize, float64) {
		eng, s, sf := setup(t, 16*units.MB, units.MbpsRate(10), 0.05)
		sf.Connect(0)
		eng.Horizon = 120
		eng.Run()
		return s.delivered, s.doneAt
	}
	d1, t1 := run()
	d2, t2 := run()
	if d1 != d2 || t1 != t2 {
		t.Errorf("runs differ: (%v,%v) vs (%v,%v)", d1, t1, d2, t2)
	}
}
