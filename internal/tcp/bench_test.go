package tcp

import (
	"testing"

	"repro/internal/energy"
	"repro/internal/link"
	"repro/internal/sim"
	"repro/internal/simrng"
	"repro/internal/trace"
	"repro/internal/units"
)

// benchSink feeds a subflow endlessly.
type benchSink struct{}

func (benchSink) Request(sf *Subflow, max units.ByteSize) units.ByteSize { return max }
func (benchSink) Delivered(*Subflow, units.ByteSize)                     {}
func (benchSink) Returned(*Subflow, units.ByteSize)                      {}
func (benchSink) IncreasePerRTT(*Subflow) float64                        { return 1 }

// meteredSink feeds a subflow endlessly and charges every delivery to an
// energy accountant, the way scenario's meter does — so the benchmarks
// and alloc guards cover the per-round energy integration (Radio.Advance
// active fast path, memoized base power) inside a coalesced batch.
type meteredSink struct {
	eng  *sim.Engine
	acct *energy.Accountant
	last float64
}

func newMeteredSink(eng *sim.Engine) *meteredSink {
	m := &meteredSink{eng: eng, acct: energy.NewAccountant(energy.GalaxyS3())}
	m.acct.Radio(energy.WiFi).Activate(0)
	return m
}

func (m *meteredSink) Request(sf *Subflow, max units.ByteSize) units.ByteSize { return max }

func (m *meteredSink) Delivered(sf *Subflow, n units.ByteSize) {
	now := m.eng.Now()
	if dt := now - m.last; dt > 0 {
		var thr energy.Throughputs
		thr.Down[energy.WiFi] = units.BitRate(n.Bits() / dt)
		m.acct.Advance(now, thr)
		m.last = now
	}
}

func (m *meteredSink) Returned(*Subflow, units.ByteSize) {}
func (m *meteredSink) IncreasePerRTT(*Subflow) float64   { return 1 }

// BenchmarkSubflowRounds measures the fluid model's cost per simulated
// transmission round.
func BenchmarkSubflowRounds(b *testing.B) {
	eng := sim.New()
	path := &Path{Name: "b", Capacity: link.NewConstant(units.MbpsRate(10)), BaseRTT: 0.05}
	sf := NewSubflow("b", eng, simrng.New(1), path, DefaultConfig(), benchSink{})
	sf.Connect(0)
	b.ResetTimer()
	for sf.Rounds < b.N {
		if !eng.Step() {
			b.Fatal("engine drained")
		}
	}
	b.ReportMetric(float64(sf.Rounds)/float64(b.N), "rounds/op")
}

// BenchmarkSubflowRoundsTraced is BenchmarkSubflowRounds with a full
// recorder attached (every kind, kernel events included): a traced round
// must stay allocation-free too.
func BenchmarkSubflowRoundsTraced(b *testing.B) {
	eng := sim.New()
	eng.SetRecorder(trace.NewJSONL(trace.AllKinds, 1024))
	path := &Path{Name: "b", Capacity: link.NewConstant(units.MbpsRate(10)), BaseRTT: 0.05}
	sf := NewSubflow("b", eng, simrng.New(1), path, DefaultConfig(), benchSink{})
	sf.Connect(0)
	b.ResetTimer()
	for sf.Rounds < b.N {
		if !eng.Step() {
			b.Fatal("engine drained")
		}
	}
	b.ReportMetric(float64(sf.Rounds)/float64(b.N), "rounds/op")
}

// BenchmarkSubflowRoundsMetered adds the per-delivery energy-meter work
// to the round loop: the Accountant's staying-active fast path and
// memoized base-power integration must not slow (or re-allocate in) the
// coalesced batch.
func BenchmarkSubflowRoundsMetered(b *testing.B) {
	eng := sim.New()
	path := &Path{Name: "b", Capacity: link.NewConstant(units.MbpsRate(10)), BaseRTT: 0.05}
	sf := NewSubflow("b", eng, simrng.New(1), path, DefaultConfig(), newMeteredSink(eng))
	sf.Connect(0)
	b.ResetTimer()
	for sf.Rounds < b.N {
		if !eng.Step() {
			b.Fatal("engine drained")
		}
	}
	b.ReportMetric(float64(sf.Rounds)/float64(b.N), "rounds/op")
}

// runRounds steps the engine until the subflow completes n more rounds.
func runRounds(tb testing.TB, eng *sim.Engine, sf *Subflow, n int) {
	target := sf.Rounds + n
	for sf.Rounds < target {
		if !eng.Step() {
			tb.Fatal("engine drained")
		}
	}
}

// TestSubflowRoundSteadyStateAllocFree is the CI alloc guard for the
// fluid TCP model: once established, simulating rounds — plain and under
// a full trace recorder — performs zero heap allocations.
func TestSubflowRoundSteadyStateAllocFree(t *testing.T) {
	for _, tc := range []struct {
		name     string
		traced   bool
		metered  bool
		batchCap int
	}{
		{"plain-unbatched", false, false, 0},
		{"plain-batched", false, false, 64},
		{"traced-unbatched", true, false, 0},
		{"traced-batched", true, false, 64},
		{"metered-batched", false, true, 64},
	} {
		t.Run(tc.name, func(t *testing.T) {
			restore := SetMaxBatchRounds(tc.batchCap)
			defer restore()
			eng := sim.New()
			if tc.traced {
				rec := trace.NewJSONL(trace.AllKinds, 64)
				// Fill the ring first so Record overwrites instead of
				// appending.
				for i := 0; i < 64; i++ {
					rec.Record(trace.Event{Kind: trace.KindFire})
				}
				eng.SetRecorder(rec)
			}
			path := &Path{Name: "g", Capacity: link.NewConstant(units.MbpsRate(10)), BaseRTT: 0.05}
			var src DataSource = benchSink{}
			if tc.metered {
				src = newMeteredSink(eng)
			}
			sf := NewSubflow("g", eng, simrng.New(1), path, DefaultConfig(), src)
			sf.Connect(0)
			runRounds(t, eng, sf, 256) // warm up: handshake, round record, heap growth
			if got := testing.AllocsPerRun(100, func() {
				runRounds(t, eng, sf, maxBatchRounds+1) // at least one full batch
			}); got != 0 {
				t.Fatalf("steady-state round allocated %.1f times", got)
			}
		})
	}
}
