package tcp

import (
	"testing"

	"repro/internal/link"
	"repro/internal/sim"
	"repro/internal/simrng"
	"repro/internal/units"
)

// benchSink feeds a subflow endlessly.
type benchSink struct{}

func (benchSink) Request(sf *Subflow, max units.ByteSize) units.ByteSize { return max }
func (benchSink) Delivered(*Subflow, units.ByteSize)                     {}
func (benchSink) Returned(*Subflow, units.ByteSize)                      {}
func (benchSink) IncreasePerRTT(*Subflow) float64                        { return 1 }

// BenchmarkSubflowRounds measures the fluid model's cost per simulated
// transmission round.
func BenchmarkSubflowRounds(b *testing.B) {
	eng := sim.New()
	path := &Path{Name: "b", Capacity: link.NewConstant(units.MbpsRate(10)), BaseRTT: 0.05}
	sf := NewSubflow("b", eng, simrng.New(1), path, DefaultConfig(), benchSink{})
	sf.Connect(0)
	b.ResetTimer()
	for sf.Rounds < b.N {
		if !eng.Step() {
			b.Fatal("engine drained")
		}
	}
	b.ReportMetric(float64(sf.Rounds)/float64(b.N), "rounds/op")
}
