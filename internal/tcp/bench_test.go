package tcp

import (
	"testing"

	"repro/internal/link"
	"repro/internal/sim"
	"repro/internal/simrng"
	"repro/internal/trace"
	"repro/internal/units"
)

// benchSink feeds a subflow endlessly.
type benchSink struct{}

func (benchSink) Request(sf *Subflow, max units.ByteSize) units.ByteSize { return max }
func (benchSink) Delivered(*Subflow, units.ByteSize)                     {}
func (benchSink) Returned(*Subflow, units.ByteSize)                      {}
func (benchSink) IncreasePerRTT(*Subflow) float64                        { return 1 }

// BenchmarkSubflowRounds measures the fluid model's cost per simulated
// transmission round.
func BenchmarkSubflowRounds(b *testing.B) {
	eng := sim.New()
	path := &Path{Name: "b", Capacity: link.NewConstant(units.MbpsRate(10)), BaseRTT: 0.05}
	sf := NewSubflow("b", eng, simrng.New(1), path, DefaultConfig(), benchSink{})
	sf.Connect(0)
	b.ResetTimer()
	for sf.Rounds < b.N {
		if !eng.Step() {
			b.Fatal("engine drained")
		}
	}
	b.ReportMetric(float64(sf.Rounds)/float64(b.N), "rounds/op")
}

// BenchmarkSubflowRoundsTraced is BenchmarkSubflowRounds with a full
// recorder attached (every kind, kernel events included): a traced round
// must stay allocation-free too.
func BenchmarkSubflowRoundsTraced(b *testing.B) {
	eng := sim.New()
	eng.SetRecorder(trace.NewJSONL(trace.AllKinds, 1024))
	path := &Path{Name: "b", Capacity: link.NewConstant(units.MbpsRate(10)), BaseRTT: 0.05}
	sf := NewSubflow("b", eng, simrng.New(1), path, DefaultConfig(), benchSink{})
	sf.Connect(0)
	b.ResetTimer()
	for sf.Rounds < b.N {
		if !eng.Step() {
			b.Fatal("engine drained")
		}
	}
	b.ReportMetric(float64(sf.Rounds)/float64(b.N), "rounds/op")
}

// runRounds steps the engine until the subflow completes n more rounds.
func runRounds(tb testing.TB, eng *sim.Engine, sf *Subflow, n int) {
	target := sf.Rounds + n
	for sf.Rounds < target {
		if !eng.Step() {
			tb.Fatal("engine drained")
		}
	}
}

// TestSubflowRoundSteadyStateAllocFree is the CI alloc guard for the
// fluid TCP model: once established, simulating rounds — plain and under
// a full trace recorder — performs zero heap allocations.
func TestSubflowRoundSteadyStateAllocFree(t *testing.T) {
	for _, tc := range []struct {
		name   string
		traced bool
	}{{"plain", false}, {"traced", true}} {
		t.Run(tc.name, func(t *testing.T) {
			eng := sim.New()
			if tc.traced {
				rec := trace.NewJSONL(trace.AllKinds, 64)
				// Fill the ring first so Record overwrites instead of
				// appending.
				for i := 0; i < 64; i++ {
					rec.Record(trace.Event{Kind: trace.KindFire})
				}
				eng.SetRecorder(rec)
			}
			path := &Path{Name: "g", Capacity: link.NewConstant(units.MbpsRate(10)), BaseRTT: 0.05}
			sf := NewSubflow("g", eng, simrng.New(1), path, DefaultConfig(), benchSink{})
			sf.Connect(0)
			runRounds(t, eng, sf, 64) // warm up: handshake, round record, heap growth
			if got := testing.AllocsPerRun(100, func() {
				runRounds(t, eng, sf, 1)
			}); got != 0 {
				t.Fatalf("steady-state round allocated %.1f times", got)
			}
		})
	}
}
