package tcp

import "repro/internal/units"

// LaneVec is lane-striped subflow congestion state for the lockstep
// executor: the fluid-round hot-path fields of k same-scenario subflows
// held as structure-of-arrays slices, indexed sub*K+lane so one round-
// coalesced dispatch touches the live lanes of a subflow contiguously.
//
// The arithmetic methods below are the exact expressions of the scalar
// Subflow round loop (established, applyIdleReset, startRound,
// finishRound), lifted onto the striped state. Bit-identity with the
// scalar path is the contract: FuzzLockstepEquivalence in
// internal/lockstep compares full per-seed Results against sequential
// scenario.Run calls, so any drift here fails the fuzz target.
type LaneVec struct {
	K int // lanes per subflow stripe

	State      []State
	Cwnd       []float64        // segments
	Ssthresh   []float64        // segments
	Srtt       []float64        // smoothed RTT estimate, seconds
	LastSendAt []float64        // end of the most recent active round
	HsRTT      []float64        // handshake RTT drawn at Connect
	Inflight   []units.ByteSize // bytes of the round in progress (0 when idle)
	InRound    []bool
	EverSent   []bool
}

// Resize shapes the vector for nSub subflow stripes of k lanes each,
// reusing slice capacity, and zeroes every element (the Closed state).
func (v *LaneVec) Resize(nSub, k int) {
	v.K = k
	n := nSub * k
	grow := func(s []float64) []float64 {
		if cap(s) < n {
			return make([]float64, n)
		}
		s = s[:n]
		for i := range s {
			s[i] = 0
		}
		return s
	}
	if cap(v.State) < n {
		v.State = make([]State, n)
		v.InRound = make([]bool, n)
		v.EverSent = make([]bool, n)
		v.Inflight = make([]units.ByteSize, n)
	} else {
		v.State = v.State[:n]
		v.InRound = v.InRound[:n]
		v.EverSent = v.EverSent[:n]
		v.Inflight = v.Inflight[:n]
		for i := range v.State {
			v.State[i] = Closed
			v.InRound[i] = false
			v.EverSent[i] = false
			v.Inflight[i] = 0
		}
	}
	v.Cwnd = grow(v.Cwnd)
	v.Ssthresh = grow(v.Ssthresh)
	v.Srtt = grow(v.Srtt)
	v.LastSendAt = grow(v.LastSendAt)
	v.HsRTT = grow(v.HsRTT)
}

// Establish completes the handshake at index i: the scalar established()
// state transition.
func (v *LaneVec) Establish(i int, now float64, cfg *Config) {
	v.State[i] = Established
	v.Srtt[i] = v.HsRTT[i]
	v.Cwnd[i] = cfg.InitialWindow
	v.Ssthresh[i] = cfg.MaxWindow
	v.LastSendAt[i] = now
}

// RTO returns index i's current retransmission timeout.
func (v *LaneVec) RTO(i int, cfg *Config) float64 {
	return max(cfg.MinRTO, 2*v.Srtt[i])
}

// IdleReset applies RFC 2861 at index i: reset cwnd after an idle period
// longer than the RTO, unless disabled or never sent.
func (v *LaneVec) IdleReset(i int, now float64, cfg *Config) {
	if cfg.DisableIdleCwndReset || !v.EverSent[i] {
		return
	}
	if now-v.LastSendAt[i] > v.RTO(i, cfg) {
		v.Cwnd[i] = cfg.InitialWindow
		v.Ssthresh[i] = cfg.MaxWindow
	}
}

// Want returns the bytes index i's next round would request: one
// congestion window.
func (v *LaneVec) Want(i int, cfg *Config) units.ByteSize {
	return units.ByteSize(v.Cwnd[i]) * cfg.MSS
}

// RoundPlan computes one round's transmission outcome at index i for n
// bytes over a share-limited path with this round's jittered rtt: whether
// the offered load congests the share, and the round duration. It is the
// startRound arithmetic between the RNG draw and the event push.
func (v *LaneVec) RoundPlan(n units.ByteSize, rtt float64, share units.BitRate) (congested bool, dur float64) {
	offered := units.BitRate(n.Bits() / rtt)
	congested = offered > share
	dur = max(rtt, n.Bits()/float64(share))
	return congested, dur
}

// BeginRound marks index i busy with n bytes in flight.
func (v *LaneVec) BeginRound(i int, n units.ByteSize) {
	v.InRound[i] = true
	v.EverSent[i] = true
	v.Inflight[i] = n
}

// RoundSRTT closes the round at index i: the finishRound bookkeeping
// before the window update (busy flag, send timestamp, smoothed RTT).
// It returns the bytes that were in flight.
func (v *LaneVec) RoundSRTT(i int, now, dur float64) units.ByteSize {
	n := v.Inflight[i]
	v.Inflight[i] = 0
	v.InRound[i] = false
	v.LastSendAt[i] = now
	v.Srtt[i] = 0.875*v.Srtt[i] + 0.125*dur
	return n
}

// ApplyWindow applies the round's congestion response at index i: fast-
// recovery halving on loss, doubling in slow start, or the caller-
// computed congestion-avoidance increase (1 for uncoupled Reno, the LIA
// coupled value), then the window clamps. The increase is a parameter
// because LIA reads sibling-lane state the vector cannot see; callers
// must compute it after RoundSRTT, as the scalar path does.
func (v *LaneVec) ApplyWindow(i int, lost bool, inc float64, cfg *Config) {
	if lost {
		v.Ssthresh[i] = max(v.Cwnd[i]/2, 2)
		v.Cwnd[i] = v.Ssthresh[i]
	} else if v.Cwnd[i] < v.Ssthresh[i] {
		v.Cwnd[i] = min(v.Cwnd[i]*2, v.Ssthresh[i])
	} else {
		v.Cwnd[i] += inc
	}
	v.Cwnd[i] = min(v.Cwnd[i], cfg.MaxWindow)
	v.Cwnd[i] = max(v.Cwnd[i], 1)
}

// LIAIncrease computes the RFC 6356 linked increase for index i over the
// subflow stripes of its lane: lane is i's lane, and nSub the stripe
// count. It mirrors connSource.IncreasePerRTT (without the quotient memo,
// which is bit-transparent) including the established/suspended/srtt
// skip rules; lockstep lanes never suspend, so suspension is not
// consulted here.
func (v *LaneVec) LIAIncrease(i, lane, nSub int) float64 {
	var total, sum, best float64
	for s := 0; s < nSub; s++ {
		j := s*v.K + lane
		if v.State[j] != Established || v.Srtt[j] <= 0 {
			continue
		}
		w, r := v.Cwnd[j], v.Srtt[j]
		total += w
		sum += w / r
		if q := w / (r * r); q > best {
			best = q
		}
	}
	if total <= 0 || sum <= 0 {
		return 1
	}
	alpha := total * best / (sum * sum)
	inc := alpha * v.Cwnd[i] / total
	return min(inc, 1)
}
