package tcp

import (
	"repro/internal/sim"
	"repro/internal/simrng"
)

// arenaChunk is how many subflows each arena chunk holds. Chunks are
// fixed-size and never reallocated, so handed-out pointers stay stable
// as the arena grows.
const arenaChunk = 8

// Arena allocates Subflows from pointer-stable chunks and recycles them
// run over run: a recycled slot keeps its pre-bound callbacks and
// free-listed round records, so a pooled run re-creates its subflows
// without heap allocation. The zero Arena is ready to use. An Arena is
// not safe for concurrent use; give each run slot its own.
type Arena struct {
	chunks [][]Subflow
	next   int
}

// NewSubflow is NewSubflow backed by the arena. The returned subflow is
// indistinguishable from a freshly allocated one.
func (a *Arena) NewSubflow(id string, eng *sim.Engine, src *simrng.Source, path *Path, cfg Config, source DataSource) *Subflow {
	chunk, slot := a.next/arenaChunk, a.next%arenaChunk
	if chunk == len(a.chunks) {
		a.chunks = append(a.chunks, make([]Subflow, arenaChunk))
	}
	a.next++
	sf := &a.chunks[chunk][slot]
	initSubflow(sf, id, eng, src, path, cfg, source)
	return sf
}

// Reset recycles every slot for the next run. Subflows handed out before
// the reset must no longer be used.
func (a *Arena) Reset() { a.next = 0 }
