// Equivalence and invalidation tests for the round-coalescing batcher.
// They live in the external test package so they can drive a real MPTCP
// connection (importing mptcp from package tcp would be a cycle) through
// the test-only hooks in export_test.go.
package tcp_test

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/energy"
	"repro/internal/link"
	"repro/internal/mptcp"
	"repro/internal/sim"
	"repro/internal/simrng"
	"repro/internal/tcp"
	"repro/internal/trace"
	"repro/internal/units"
)

// batchDigest captures everything the batcher could conceivably perturb:
// exact float bits of the clock and per-subflow congestion state, every
// counter, and the full JSONL trace byte stream.
type batchDigest struct {
	finalNow  uint64
	delivered units.ByteSize
	doneAt    float64
	rounds    [2]int
	losses    [2]int
	bytes     [2]units.ByteSize
	cwndBits  [2]uint64
	srttBits  [2]uint64
	dropped   uint64
	trace     []byte
}

// runBatchScenario runs one seeded two-path MPTCP transfer — a WiFi path
// whose capacity flaps under an on/off modulator (rate-epoch breaks
// mid-batch), a lossy LTE path (per-round Bernoulli draws), and an
// MP_PRIO suspend/resume cycle on LTE — with the given round-coalescing
// cap, and digests the outcome.
func runBatchScenario(seed int64, lossPct, holdCs, suspendCs uint8, sizeKB uint16, disableReset bool, batchCap int) batchDigest {
	restore := tcp.SetMaxBatchRounds(batchCap)
	defer restore()

	eng := sim.New()
	rec := trace.NewJSONL(trace.AllKinds, 1<<17)
	eng.SetRecorder(rec)
	src := simrng.New(seed)

	wifiPath := &tcp.Path{
		Name: "wifi",
		Capacity: link.NewOnOffModulator(eng, simrng.New(seed^0x9e3779b9), units.MbpsRate(20),
			units.MbpsRate(1), 0.05+float64(holdCs)/100, true),
		BaseRTT: 0.02,
	}
	loss := float64(lossPct%20) / 100
	ltePath := &tcp.Path{
		Name:      "lte",
		Capacity:  link.NewConstant(units.MbpsRate(8)),
		BaseRTT:   0.08,
		ExtraLoss: func() float64 { return loss },
	}

	opts := mptcp.DefaultOptions()
	opts.SubflowConfig.DisableIdleCwndReset = disableReset
	conn := mptcp.New(eng, src, opts)
	conn.AddSubflow("wifi", energy.WiFi, wifiPath, nil, 0)
	lte := conn.AddSubflow("lte", energy.LTE, ltePath, nil, 0.02)

	var doneAt float64 = -1
	conn.Download(units.ByteSize(sizeKB%2048+64)*units.KB, func(at float64) { doneAt = at })

	// An MP_PRIO flip lands mid-transfer (and, with a live batch open on
	// the other subflow, mid-batch), then lifts again later.
	suspendAt := 0.1 + float64(suspendCs)/50
	eng.Schedule(suspendAt, func() { conn.SetBackup(lte, true) })
	eng.Schedule(suspendAt+0.4, func() { conn.SetBackup(lte, false) })

	eng.Horizon = 120
	eng.Run()

	d := batchDigest{
		finalNow:  math.Float64bits(eng.Now()),
		delivered: conn.Delivered(),
		doneAt:    doneAt,
		dropped:   rec.Dropped(),
	}
	for i, sf := range conn.Subflows() {
		d.rounds[i] = sf.Rounds
		d.losses[i] = sf.Losses
		d.bytes[i] = sf.BytesDelivered
		d.cwndBits[i] = math.Float64bits(sf.Cwnd())
		d.srttBits[i] = math.Float64bits(sf.SRTT())
	}
	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		panic(err)
	}
	d.trace = buf.Bytes()
	return d
}

// FuzzBatchedRoundEquivalence checks the batcher's core promise: with
// coalescing enabled, every run is bit-identical — counters, float bits,
// and the JSONL trace byte stream — to the same run with every round
// completion going through the event heap.
func FuzzBatchedRoundEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(0), uint8(0), uint16(512), false)
	f.Add(int64(2), uint8(5), uint8(20), uint8(10), uint16(1024), true)
	f.Add(int64(99), uint8(19), uint8(3), uint8(60), uint16(100), false)
	f.Add(int64(-7), uint8(10), uint8(90), uint8(120), uint16(2000), true)
	f.Add(int64(424242), uint8(1), uint8(50), uint8(0), uint16(64), false)
	f.Fuzz(func(t *testing.T, seed int64, lossPct, holdCs, suspendCs uint8, sizeKB uint16, disableReset bool) {
		batched := runBatchScenario(seed, lossPct, holdCs, suspendCs, sizeKB, disableReset, 64)
		plain := runBatchScenario(seed, lossPct, holdCs, suspendCs, sizeKB, disableReset, 0)
		if batched.finalNow != plain.finalNow {
			t.Errorf("final clock bits differ: batched %x, unbatched %x", batched.finalNow, plain.finalNow)
		}
		if batched.delivered != plain.delivered || batched.doneAt != plain.doneAt {
			t.Errorf("delivery differs: batched (%v, done %v), unbatched (%v, done %v)",
				batched.delivered, batched.doneAt, plain.delivered, plain.doneAt)
		}
		for i := 0; i < 2; i++ {
			if batched.rounds[i] != plain.rounds[i] || batched.losses[i] != plain.losses[i] ||
				batched.bytes[i] != plain.bytes[i] {
				t.Errorf("subflow %d counters differ: batched (%d rounds, %d losses, %v), unbatched (%d, %d, %v)",
					i, batched.rounds[i], batched.losses[i], batched.bytes[i],
					plain.rounds[i], plain.losses[i], plain.bytes[i])
			}
			if batched.cwndBits[i] != plain.cwndBits[i] || batched.srttBits[i] != plain.srttBits[i] {
				t.Errorf("subflow %d float bits differ: cwnd %x vs %x, srtt %x vs %x",
					i, batched.cwndBits[i], plain.cwndBits[i], batched.srttBits[i], plain.srttBits[i])
			}
		}
		if batched.dropped != plain.dropped {
			t.Fatalf("trace drop counts differ: batched %d, unbatched %d", batched.dropped, plain.dropped)
		}
		if !bytes.Equal(batched.trace, plain.trace) {
			i := 0
			for i < len(batched.trace) && i < len(plain.trace) && batched.trace[i] == plain.trace[i] {
				i++
			}
			t.Errorf("trace streams diverge at byte %d (batched %d bytes, unbatched %d bytes)",
				i, len(batched.trace), len(plain.trace))
		}
	})
}

// Every batch-invalidation source must reach the requester's batchBroken
// flag (run this under -race in CI: the flag and the structures around it
// are engine-single-threaded, and the test documents that contract).
func TestBatchInvalidationHooks(t *testing.T) {
	newConn := func(jitter float64) (*sim.Engine, *mptcp.Connection, *tcp.Subflow, *tcp.Subflow) {
		eng := sim.New()
		src := simrng.New(7)
		opts := mptcp.DefaultOptions()
		opts.SubflowConfig.RTTJitter = jitter
		conn := mptcp.New(eng, src, opts)
		wifi := conn.AddSubflow("wifi", energy.WiFi,
			&tcp.Path{Name: "wifi", Capacity: link.NewConstant(units.MbpsRate(10)), BaseRTT: 0.02}, nil, 0)
		lte := conn.AddSubflow("lte", energy.LTE,
			&tcp.Path{Name: "lte", Capacity: link.NewConstant(units.MbpsRate(10)), BaseRTT: 0.2}, nil, 0)
		return eng, conn, wifi, lte
	}

	t.Run("suspend", func(t *testing.T) {
		_, _, wifi, _ := newConn(0)
		wifi.ResetBatchBroken()
		wifi.Suspend()
		if !wifi.BatchBroken() {
			t.Error("Suspend did not invalidate the batch")
		}
	})

	t.Run("resume", func(t *testing.T) {
		_, _, wifi, _ := newConn(0)
		wifi.Suspend()
		wifi.ResetBatchBroken()
		wifi.Resume()
		if !wifi.BatchBroken() {
			t.Error("Resume did not invalidate the batch")
		}
	})

	t.Run("subflow-join", func(t *testing.T) {
		eng, conn, wifi, lte := newConn(0)
		_ = eng
		wifi.ResetBatchBroken()
		lte.ResetBatchBroken()
		conn.AddSubflow("lte2", energy.LTE,
			&tcp.Path{Name: "lte2", Capacity: link.NewConstant(units.MbpsRate(5)), BaseRTT: 0.1}, nil, 0)
		if !wifi.BatchBroken() || !lte.BatchBroken() {
			t.Error("AddSubflow did not invalidate sibling batches")
		}
	})

	t.Run("scheduler-defer", func(t *testing.T) {
		eng, conn, wifi, lte := newConn(0) // zero jitter: SRTT == BaseRTT exactly
		eng.Run()                          // complete both handshakes; no data yet
		wifi.ResetBatchBroken()
		lte.ResetBatchBroken()
		// Leave less than one LTE window beyond what WiFi grabs first:
		// kickAll serves WiFi (creation order), then LTE sees scarce data
		// and a lower-SRTT peer, hits the min-RTT defer branch, and must
		// break its batch.
		wifiWant := units.ByteSize(wifi.Cwnd()) * tcp.DefaultConfig().MSS
		conn.Download(wifiWant+units.KB, func(float64) {})
		if !lte.BatchBroken() {
			t.Error("scheduler deferral did not invalidate the requester's batch")
		}
	})

	t.Run("rate-epoch", func(t *testing.T) {
		eng := sim.New()
		p := &tcp.Path{Name: "tr", Capacity: link.NewTrace(eng, []link.Breakpoint{
			{At: 0, Rate: units.MbpsRate(10)},
			{At: 1, Rate: units.MbpsRate(2)},
		}), BaseRTT: 0.02}
		p.EnsureRateHook()
		before := p.Epoch()
		eng.RunUntil(2)
		if p.Epoch() == before {
			t.Error("capacity rate change did not bump the path epoch")
		}
	})

	// The sixth source — scenario's radioControl.Activate — loops the same
	// Subflow.InvalidateBatch over every connection; internal/scenario's
	// regression and fuzz suites exercise it on every EMPTCP run.
}
