// Checkpoint support: value snapshots of subflow, path, and arena state
// for the sweep-fork executor in internal/scenario. A snapshot captures
// every field that mutates during a run; pointer wiring established at
// construction (engine, RNG stream, path, data source, pre-bound
// callbacks) is left alone, which is what makes restore-in-place work —
// the closures parked in the engine's restored event heap point at the
// same objects the restore rewrites.
package tcp

import (
	"repro/internal/sim"
	"repro/internal/units"
)

// roundSnap is one round record's saved payload. Records are
// interchangeable (every field is written before the record is used), so
// the free list is saved as registry indices and rebuilt on restore.
type roundSnap struct {
	n    units.ByteSize
	dur  float64
	lost bool
	def  sim.Deferred
}

// SubflowSnapshot saves one subflow's mutable state.
type SubflowSnapshot struct {
	state        State
	cwnd         float64
	ssthresh     float64
	srtt         float64
	suspended    bool
	inRound      bool
	everSent     bool
	batchBroken  bool
	lastSendAt   float64
	handshakeRTT float64
	hsRTT        float64
	delivered    units.ByteSize
	rounds       int
	losses       int
	nAll         int // round-record registry length at snapshot
	recs         []roundSnap
	free         []int32 // free list as registry indices
}

// Snapshot saves the subflow's mutable state into s, reusing s's buffers.
func (sf *Subflow) Snapshot(s *SubflowSnapshot) {
	s.state = sf.state
	s.cwnd = sf.cwnd
	s.ssthresh = sf.ssthresh
	s.srtt = sf.srtt
	s.suspended = sf.suspended
	s.inRound = sf.inRound
	s.everSent = sf.everSent
	s.batchBroken = sf.batchBroken
	s.lastSendAt = sf.lastSendAt
	s.handshakeRTT = sf.HandshakeRTT
	s.hsRTT = sf.hsRTT
	s.delivered = sf.BytesDelivered
	s.rounds = sf.Rounds
	s.losses = sf.Losses
	s.nAll = len(sf.roundAll)
	s.recs = s.recs[:0]
	for _, r := range sf.roundAll {
		s.recs = append(s.recs, roundSnap{n: r.n, dur: r.dur, lost: r.lost, def: r.def})
	}
	s.free = s.free[:0]
	for _, r := range sf.roundFree {
		for i, all := range sf.roundAll {
			if all == r {
				s.free = append(s.free, int32(i))
				break
			}
		}
	}
}

// Restore reinstates a snapshot. Round records created after the snapshot
// stay in the registry and are returned to the free list: the events that
// referenced them were discarded by the engine restore, and records carry
// no identity (a fresh run would simply have allocated fewer of them).
func (sf *Subflow) Restore(s *SubflowSnapshot) {
	sf.state = s.state
	sf.cwnd = s.cwnd
	sf.ssthresh = s.ssthresh
	sf.srtt = s.srtt
	sf.suspended = s.suspended
	sf.inRound = s.inRound
	sf.everSent = s.everSent
	sf.batchBroken = s.batchBroken
	sf.lastSendAt = s.lastSendAt
	sf.HandshakeRTT = s.handshakeRTT
	sf.hsRTT = s.hsRTT
	sf.BytesDelivered = s.delivered
	sf.Rounds = s.rounds
	sf.Losses = s.losses
	for i := 0; i < s.nAll; i++ {
		r := sf.roundAll[i]
		sn := &s.recs[i]
		r.n, r.dur, r.lost, r.def = sn.n, sn.dur, sn.lost, sn.def
	}
	sf.roundFree = sf.roundFree[:0]
	for _, idx := range s.free {
		sf.roundFree = append(sf.roundFree, sf.roundAll[idx])
	}
	for _, r := range sf.roundAll[s.nAll:] {
		sf.roundFree = append(sf.roundFree, r)
	}
}

// PathSnapshot saves a Path's mutable fields.
type PathSnapshot struct {
	active      int
	epoch       uint64
	hooked      bool
	lossChecked bool
}

// Snapshot saves the path's mutable state. The cached LossProcess
// assertion is re-derived from lossChecked on first use after restore;
// the dynamic type of Capacity never changes, so clearing it alongside
// the flag is equivalent to saving it.
func (p *Path) Snapshot(s *PathSnapshot) {
	s.active = p.active
	s.epoch = p.epoch
	s.hooked = p.hooked
	s.lossChecked = p.lossChecked
}

// Restore reinstates a path snapshot.
func (p *Path) Restore(s *PathSnapshot) {
	p.active = s.active
	p.epoch = s.epoch
	p.hooked = s.hooked
	if !s.lossChecked {
		p.lossChecked = false
		p.lossProc = nil
	}
}

// ArenaSnapshot saves an arena cursor plus every handed-out subflow.
type ArenaSnapshot struct {
	next int
	subs []SubflowSnapshot
}

// Snapshot saves the arena and all live subflows, reusing s's buffers.
func (a *Arena) Snapshot(s *ArenaSnapshot) {
	s.next = a.next
	if cap(s.subs) < a.next {
		grown := make([]SubflowSnapshot, a.next)
		copy(grown, s.subs[:cap(s.subs)])
		s.subs = grown
	}
	s.subs = s.subs[:a.next]
	for i := 0; i < a.next; i++ {
		a.chunks[i/arenaChunk][i%arenaChunk].Snapshot(&s.subs[i])
	}
}

// Restore rewinds the arena: subflows handed out after the snapshot are
// recycled (the cursor returns, so a post-restore NewSubflow reinitializes
// the same slot), and every snapshot-time subflow gets its state back.
func (a *Arena) Restore(s *ArenaSnapshot) {
	a.next = s.next
	for i := 0; i < s.next; i++ {
		a.chunks[i/arenaChunk][i%arenaChunk].Restore(&s.subs[i])
	}
}
