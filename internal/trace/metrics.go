package trace

import (
	"io"
	"sort"
	"strconv"

	"repro/internal/stats"
)

// DefaultSampleEvery is the Metrics recorder's time-series grid period.
const DefaultSampleEvery = 1.0

// Metrics is an aggregating recorder: per-kind event counters, per-
// subflow transfer totals with sampled time series (cumulative bytes and
// congestion window on a regular grid driven by a sim.Ticker), and
// per-radio state dwell accounting. It trades per-event detail for a
// compact run summary, complementary to the JSONL timeline.
//
// Subflows are keyed by ID; a run with several connections reusing the
// same IDs (an upload and a download connection both naming their paths
// "wifi"/"lte") aggregates them under one key.
type Metrics struct {
	every    float64
	counts   [NumKinds]uint64
	subflows map[string]*SubflowMetrics
	radios   map[string]*RadioMetrics
}

// SubflowMetrics aggregates one subflow ID's activity.
type SubflowMetrics struct {
	// Bytes is the cumulative bytes delivered.
	Bytes float64
	// Rounds counts window updates (transmission rounds).
	Rounds uint64
	// Losses counts loss events.
	Losses uint64
	// Cwnd is the last observed congestion window in segments.
	Cwnd float64
	// BytesSeries and CwndSeries sample the two gauges on the grid.
	BytesSeries stats.TimeSeries
	CwndSeries  stats.TimeSeries
}

// RadioMetrics aggregates one interface's RRC activity.
type RadioMetrics struct {
	// Transitions counts state changes.
	Transitions uint64
	// Dwell accumulates seconds spent per exited state name. Time in
	// the state the radio occupies when the run ends is not included.
	Dwell map[string]float64
}

// NewMetrics returns an empty metrics recorder sampling its time series
// every `every` seconds (non-positive selects DefaultSampleEvery).
func NewMetrics(every float64) *Metrics {
	if every <= 0 {
		every = DefaultSampleEvery
	}
	return &Metrics{
		every:    every,
		subflows: map[string]*SubflowMetrics{},
		radios:   map[string]*RadioMetrics{},
	}
}

// Record aggregates one event.
func (m *Metrics) Record(ev Event) {
	if int(ev.Kind) < NumKinds {
		m.counts[ev.Kind]++
	}
	switch ev.Kind {
	case KindCwnd:
		sf := m.subflow(ev.Subflow)
		sf.Rounds++
		sf.Cwnd = ev.A
	case KindLoss:
		sf := m.subflow(ev.Subflow)
		sf.Losses++
		sf.Cwnd = ev.A
	case KindDeliver:
		m.subflow(ev.Subflow).Bytes += ev.A
	case KindRadio:
		r := m.radios[ev.Iface]
		if r == nil {
			r = &RadioMetrics{Dwell: map[string]float64{}}
			m.radios[ev.Iface] = r
		}
		r.Transitions++
		r.Dwell[ev.From] += ev.A
	}
}

func (m *Metrics) subflow(id string) *SubflowMetrics {
	sf := m.subflows[id]
	if sf == nil {
		sf = &SubflowMetrics{}
		m.subflows[id] = sf
	}
	return sf
}

// Count returns the number of recorded events of the given kind.
func (m *Metrics) Count(k Kind) uint64 {
	if int(k) >= NumKinds {
		return 0
	}
	return m.counts[k]
}

// Subflow returns the metrics for a subflow ID, or nil.
func (m *Metrics) Subflow(id string) *SubflowMetrics { return m.subflows[id] }

// Radio returns the metrics for an interface name, or nil.
func (m *Metrics) Radio(iface string) *RadioMetrics { return m.radios[iface] }

// SampleEvery implements Sampler.
func (m *Metrics) SampleEvery() float64 { return m.every }

// Sample implements Sampler: append one grid point per subflow gauge.
func (m *Metrics) Sample(t float64) {
	for _, sf := range m.subflows {
		sf.BytesSeries.Add(t, sf.Bytes)
		sf.CwndSeries.Add(t, sf.Cwnd)
	}
}

// WriteTo writes the metrics as one JSON object (plus newline) with no
// run tag. Use Collector for tagged multi-run output.
func (m *Metrics) WriteTo(w io.Writer) (int64, error) {
	return m.writeRun(w, -1)
}

// writeRun renders the metrics deterministically: fixed field order,
// sorted map keys, shortest round-trip floats.
func (m *Metrics) writeRun(w io.Writer, run int) (int64, error) {
	b := make([]byte, 0, 1024)
	b = append(b, '{')
	if run >= 0 {
		b = append(b, `"run":`...)
		b = strconv.AppendInt(b, int64(run), 10)
		b = append(b, ',')
	}
	b = append(b, `"counters":{`...)
	first := true
	for k := 0; k < NumKinds; k++ {
		if m.counts[k] == 0 {
			continue
		}
		if !first {
			b = append(b, ',')
		}
		first = false
		b = append(b, '"')
		b = append(b, Kind(k).String()...)
		b = append(b, `":`...)
		b = strconv.AppendUint(b, m.counts[k], 10)
	}
	b = append(b, `},"subflows":{`...)
	for i, id := range sortedKeys(m.subflows) {
		if i > 0 {
			b = append(b, ',')
		}
		sf := m.subflows[id]
		b = strconv.AppendQuote(b, id)
		b = append(b, `:{"bytes":`...)
		b = appendFloat(b, sf.Bytes)
		b = append(b, `,"rounds":`...)
		b = strconv.AppendUint(b, sf.Rounds, 10)
		b = append(b, `,"losses":`...)
		b = strconv.AppendUint(b, sf.Losses, 10)
		b = append(b, `,"series":{"t":`...)
		b = appendFloats(b, sf.BytesSeries.T)
		b = append(b, `,"bytes":`...)
		b = appendFloats(b, sf.BytesSeries.V)
		b = append(b, `,"cwnd":`...)
		b = appendFloats(b, sf.CwndSeries.V)
		b = append(b, `}}`...)
	}
	b = append(b, `},"radios":{`...)
	for i, iface := range sortedKeys(m.radios) {
		if i > 0 {
			b = append(b, ',')
		}
		r := m.radios[iface]
		b = strconv.AppendQuote(b, iface)
		b = append(b, `:{"transitions":`...)
		b = strconv.AppendUint(b, r.Transitions, 10)
		b = append(b, `,"dwell":{`...)
		for j, st := range sortedKeys(r.Dwell) {
			if j > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendQuote(b, st)
			b = append(b, ':')
			b = appendFloat(b, r.Dwell[st])
		}
		b = append(b, `}}`...)
	}
	b = append(b, '}', '}', '\n')
	n, err := w.Write(b)
	return int64(n), err
}

func appendFloats(b []byte, xs []float64) []byte {
	b = append(b, '[')
	for i, x := range xs {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendFloat(b, x)
	}
	return append(b, ']')
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
