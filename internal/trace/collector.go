package trace

import (
	"io"
	"sync"
)

// Collector owns one recorder set per seeded run of an experiment, so
// tracing composes with parallel execution: every run records into its
// own recorder (engines are single-threaded and never share one), and
// the exporters merge the per-run outputs in run-index order. Since runs
// are deterministic given their seed, the merged output is byte-
// identical at any worker count.
//
// The orchestration layer (exp.repeatRuns) asks for one Batch per
// repeated-run group; batches must be created from a single goroutine in
// a deterministic order (experiment orchestration is sequential), while
// Batch.Recorder may be called from any worker.
type Collector struct {
	// WantEvents enables the per-run JSONL timeline recorders.
	WantEvents bool
	// WantMetrics enables the per-run aggregating Metrics recorders.
	WantMetrics bool
	// Mask filters the JSONL timeline (zero selects DefaultMask).
	Mask Mask
	// RingCap bounds each run's JSONL ring (zero selects
	// DefaultRingCap).
	RingCap int
	// SampleEvery is the Metrics sampling period (zero selects
	// DefaultSampleEvery).
	SampleEvery float64

	mu   sync.Mutex
	runs []*runRecorders
}

// runRecorders is one seeded run's recorder set.
type runRecorders struct {
	jsonl   *JSONL
	metrics *Metrics
}

// Batch is a group of consecutive run slots handed to one repeated-run
// fan-out. A nil Batch (from a nil Collector) hands out nil recorders,
// so call sites need no tracing-enabled checks.
type Batch struct {
	runs []*runRecorders
}

// Batch reserves n run slots and returns their batch. Slots are
// appended in call order, which defines the merged output's run
// numbering.
func (c *Collector) Batch(n int) *Batch {
	if c == nil || n <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	b := &Batch{runs: make([]*runRecorders, n)}
	for i := range b.runs {
		rr := &runRecorders{}
		if c.WantEvents {
			mask := c.Mask
			if mask == 0 {
				mask = DefaultMask
			}
			rr.jsonl = NewJSONL(mask, c.RingCap)
		}
		if c.WantMetrics {
			rr.metrics = NewMetrics(c.SampleEvery)
		}
		b.runs[i] = rr
		c.runs = append(c.runs, rr)
	}
	return b
}

// Recorder returns run slot i's recorder (nil when the batch is nil or
// nothing is enabled). Distinct slots are independent, so workers may
// call this concurrently.
func (b *Batch) Recorder(i int) Recorder {
	if b == nil {
		return nil
	}
	rr := b.runs[i]
	switch {
	case rr.jsonl != nil && rr.metrics != nil:
		return Multi{rr.jsonl, rr.metrics}
	case rr.jsonl != nil:
		return rr.jsonl
	case rr.metrics != nil:
		return rr.metrics
	default:
		return nil
	}
}

// Runs returns how many run slots have been reserved.
func (c *Collector) Runs() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.runs)
}

// WriteJSONL writes every run's retained timeline in run-index order,
// each line tagged with its run number.
func (c *Collector) WriteJSONL(w io.Writer) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, rr := range c.runs {
		if rr.jsonl == nil {
			continue
		}
		if _, err := rr.jsonl.writeRun(w, i); err != nil {
			return err
		}
	}
	return nil
}

// WriteMetrics writes every run's metrics in run-index order, one JSON
// object per line tagged with its run number.
func (c *Collector) WriteMetrics(w io.Writer) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, rr := range c.runs {
		if rr.metrics == nil {
			continue
		}
		if _, err := rr.metrics.writeRun(w, i); err != nil {
			return err
		}
	}
	return nil
}
