package trace

import (
	"fmt"
	"io"
	"strconv"
)

// DefaultRingCap bounds JSONL recorder memory: the newest events are
// kept, the oldest overwritten. Decision-level timelines (DefaultMask)
// of whole experiment runs fit with a wide margin.
const DefaultRingCap = 1 << 16

// JSONL is a ring-buffered event recorder exported as JSON Lines, one
// event per line in record order. Recording overwrites the oldest
// retained event once the ring is full, so memory stays bounded no
// matter how long the run; Dropped reports how many were lost.
type JSONL struct {
	mask    Mask
	buf     []Event
	head    int // index of the oldest retained event
	n       int // retained count
	dropped uint64
}

// NewJSONL returns a recorder retaining the masked kinds in a ring of
// the given capacity. A non-positive capacity selects DefaultRingCap.
func NewJSONL(mask Mask, capacity int) *JSONL {
	if capacity <= 0 {
		capacity = DefaultRingCap
	}
	return &JSONL{mask: mask, buf: make([]Event, 0, capacity)}
}

// Record retains the event if its kind is in the recorder's mask.
func (j *JSONL) Record(ev Event) {
	if !j.mask.Has(ev.Kind) {
		return
	}
	if j.n < cap(j.buf) {
		j.buf = append(j.buf, ev)
		j.n++
		return
	}
	// Ring full: overwrite the oldest.
	j.buf[j.head] = ev
	j.head = (j.head + 1) % cap(j.buf)
	j.dropped++
}

// Len returns the number of retained events.
func (j *JSONL) Len() int { return j.n }

// Dropped returns how many events were overwritten by ring wraparound.
func (j *JSONL) Dropped() uint64 { return j.dropped }

// Events returns the retained events oldest-first.
func (j *JSONL) Events() []Event {
	out := make([]Event, 0, j.n)
	for i := 0; i < j.n; i++ {
		out = append(out, j.buf[(j.head+i)%cap(j.buf)])
	}
	return out
}

// WriteTo writes the retained events as JSONL with run index -1 (no
// run tag). Use Collector for tagged multi-run output.
func (j *JSONL) WriteTo(w io.Writer) (int64, error) {
	return j.writeRun(w, -1)
}

// writeRun writes the retained events, tagging each line with the given
// run index when it is non-negative.
func (j *JSONL) writeRun(w io.Writer, run int) (int64, error) {
	var total int64
	buf := make([]byte, 0, 160)
	for i := 0; i < j.n; i++ {
		ev := j.buf[(j.head+i)%cap(j.buf)]
		buf = appendEventJSON(buf[:0], ev, run)
		n, err := w.Write(buf)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// appendEventJSON renders one event as a JSON line. Rendering is manual
// — field order fixed, floats via strconv with the shortest round-trip
// form — so output is deterministic byte-for-byte across runs and
// worker counts.
func appendEventJSON(b []byte, ev Event, run int) []byte {
	b = append(b, '{')
	if run >= 0 {
		b = append(b, `"run":`...)
		b = strconv.AppendInt(b, int64(run), 10)
		b = append(b, ',')
	}
	b = append(b, `"t":`...)
	b = appendFloat(b, ev.T)
	b = append(b, `,"kind":"`...)
	b = append(b, ev.Kind.String()...)
	b = append(b, '"')
	if ev.Subflow != "" {
		b = appendStrField(b, "subflow", ev.Subflow)
	}
	if ev.Iface != "" {
		b = appendStrField(b, "iface", ev.Iface)
	}
	if ev.From != "" {
		b = appendStrField(b, "from", ev.From)
	}
	if ev.To != "" {
		b = appendStrField(b, "to", ev.To)
	}
	switch ev.Kind {
	case KindSchedule:
		b = appendNumField(b, "at", ev.A)
	case KindCwnd, KindLoss:
		b = appendNumField(b, "cwnd", ev.A)
		b = appendNumField(b, "ssthresh", ev.B)
	case KindSubflow:
		b = appendNumField(b, "delay", ev.A)
	case KindMPPrio:
		b = appendNumField(b, "backup", ev.A)
	case KindDeliver:
		b = appendNumField(b, "bytes", ev.A)
	case KindRadio:
		b = appendNumField(b, "dwell", ev.A)
	}
	b = append(b, '}', '\n')
	return b
}

func appendStrField(b []byte, key, val string) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, `":`...)
	b = strconv.AppendQuote(b, val)
	return b
}

func appendNumField(b []byte, key string, v float64) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, `":`...)
	return appendFloat(b, v)
}

// appendFloat renders a float deterministically. JSON has no NaN/Inf;
// encode them as strings so lines stay parseable.
func appendFloat(b []byte, v float64) []byte {
	if v != v {
		return append(b, `"NaN"`...)
	}
	if v > 1.7976931348623157e308 {
		return append(b, `"+Inf"`...)
	}
	if v < -1.7976931348623157e308 {
		return append(b, `"-Inf"`...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// String renders the retained events, for debugging and tests.
func (j *JSONL) String() string {
	var sb writerBuilder
	if _, err := j.WriteTo(&sb); err != nil {
		return fmt.Sprintf("trace: %v", err)
	}
	return string(sb)
}

// writerBuilder is a minimal io.Writer over a byte slice.
type writerBuilder []byte

func (w *writerBuilder) Write(p []byte) (int, error) {
	*w = append(*w, p...)
	return len(p), nil
}
