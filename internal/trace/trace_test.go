package trace

import (
	"math"
	"strings"
	"testing"
)

func TestMask(t *testing.T) {
	if !DefaultMask.Has(KindMPPrio) || !DefaultMask.Has(KindRadio) || !DefaultMask.Has(KindSubflow) {
		t.Error("DefaultMask must include the decision-level kinds")
	}
	if DefaultMask.Has(KindSchedule) || DefaultMask.Has(KindCwnd) || DefaultMask.Has(KindDeliver) {
		t.Error("DefaultMask must exclude high-volume kinds")
	}
	for k := Kind(0); int(k) < NumKinds; k++ {
		if !AllKinds.Has(k) {
			t.Errorf("AllKinds missing %v", k)
		}
		if k.String() == "unknown" || k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
	var m Mask
	if m.With(KindLoss).Has(KindLoss) != true {
		t.Error("With should add the kind")
	}
}

func TestJSONLRendering(t *testing.T) {
	j := NewJSONL(AllKinds, 16)
	j.Record(Event{T: 0.5, Kind: KindSubflow, Subflow: "lte", Iface: "LTE", A: 0.26})
	j.Record(Event{T: 1.25, Kind: KindRadio, Iface: "LTE", From: "IDLE", To: "PROMOTION", A: 0})
	j.Record(Event{T: 2, Kind: KindMPPrio, Subflow: "lte", Iface: "LTE", A: 1})
	got := j.String()
	want := `{"t":0.5,"kind":"subflow_add","subflow":"lte","iface":"LTE","delay":0.26}
{"t":1.25,"kind":"radio_state","iface":"LTE","from":"IDLE","to":"PROMOTION","dwell":0}
{"t":2,"kind":"mp_prio","subflow":"lte","iface":"LTE","backup":1}
`
	if got != want {
		t.Errorf("JSONL rendering mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestJSONLMaskFilters(t *testing.T) {
	j := NewJSONL(DefaultMask, 16)
	j.Record(Event{Kind: KindSchedule, A: 1})
	j.Record(Event{Kind: KindCwnd, Subflow: "wifi", A: 20, B: 64})
	j.Record(Event{Kind: KindMPPrio, Subflow: "lte", A: 1})
	if j.Len() != 1 {
		t.Fatalf("retained %d events, want 1 (masked)", j.Len())
	}
	if evs := j.Events(); evs[0].Kind != KindMPPrio {
		t.Errorf("retained kind = %v, want mp_prio", evs[0].Kind)
	}
}

func TestJSONLRingWraparound(t *testing.T) {
	j := NewJSONL(AllKinds, 4)
	for i := 0; i < 10; i++ {
		j.Record(Event{T: float64(i), Kind: KindFire})
	}
	if j.Len() != 4 {
		t.Fatalf("retained %d, want 4", j.Len())
	}
	if j.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", j.Dropped())
	}
	evs := j.Events()
	for i, ev := range evs {
		if want := float64(6 + i); ev.T != want {
			t.Errorf("event %d time = %v, want %v (newest retained, oldest-first order)", i, ev.T, want)
		}
	}
}

func TestJSONLRecordNoAllocSteadyState(t *testing.T) {
	j := NewJSONL(AllKinds, 1024)
	ev := Event{T: 1, Kind: KindCwnd, Subflow: "wifi", A: 10, B: 64}
	allocs := testing.AllocsPerRun(500, func() { j.Record(ev) })
	if allocs != 0 {
		t.Errorf("JSONL.Record allocates %.1f per op, want 0", allocs)
	}
}

func TestMetricsAggregation(t *testing.T) {
	m := NewMetrics(1)
	m.Record(Event{T: 1, Kind: KindCwnd, Subflow: "wifi", A: 20, B: 64})
	m.Record(Event{T: 1, Kind: KindDeliver, Subflow: "wifi", Iface: "WiFi", A: 14600})
	m.Record(Event{T: 2, Kind: KindLoss, Subflow: "wifi", A: 10, B: 10})
	m.Record(Event{T: 3, Kind: KindRadio, Iface: "LTE", From: "PROMOTION", To: "ACTIVE", A: 0.26})
	m.Record(Event{T: 9, Kind: KindRadio, Iface: "LTE", From: "ACTIVE", To: "TAIL", A: 5.5})
	m.Sample(1)
	m.Record(Event{T: 1.5, Kind: KindDeliver, Subflow: "wifi", A: 14600})
	m.Sample(2)

	sf := m.Subflow("wifi")
	if sf == nil {
		t.Fatal("no wifi subflow metrics")
	}
	if sf.Rounds != 1 || sf.Losses != 1 || sf.Bytes != 29200 {
		t.Errorf("subflow metrics = rounds %d losses %d bytes %v", sf.Rounds, sf.Losses, sf.Bytes)
	}
	if got := sf.BytesSeries.V; len(got) != 2 || got[0] != 14600 || got[1] != 29200 {
		t.Errorf("bytes series = %v, want [14600 29200]", got)
	}
	r := m.Radio("LTE")
	if r == nil || r.Transitions != 2 {
		t.Fatalf("radio metrics = %+v", r)
	}
	if r.Dwell["ACTIVE"] != 5.5 || r.Dwell["PROMOTION"] != 0.26 {
		t.Errorf("dwell = %v", r.Dwell)
	}
	if m.Count(KindRadio) != 2 || m.Count(KindDeliver) != 2 {
		t.Errorf("counters = radio %d deliver %d", m.Count(KindRadio), m.Count(KindDeliver))
	}

	var sb writerBuilder
	if _, err := m.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := string(sb)
	for _, want := range []string{`"counters":{`, `"cwnd":1`, `"wifi":{"bytes":29200`, `"LTE":{"transitions":2`, `"ACTIVE":5.5`} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics JSON missing %q:\n%s", want, out)
		}
	}
}

func TestMultiFanout(t *testing.T) {
	j := NewJSONL(AllKinds, 8)
	m := NewMetrics(2.5)
	multi := Multi{j, m}
	multi.Record(Event{T: 1, Kind: KindFire})
	if j.Len() != 1 || m.Count(KindFire) != 1 {
		t.Error("Multi did not fan out Record")
	}
	if multi.SampleEvery() != 2.5 {
		t.Errorf("SampleEvery = %v, want the metrics child's 2.5", multi.SampleEvery())
	}
	multi.Record(Event{T: 1, Kind: KindDeliver, Subflow: "wifi", A: 100})
	multi.Sample(3)
	if m.Subflow("wifi").BytesSeries.Len() != 1 {
		t.Error("Multi.Sample did not reach the metrics child")
	}
}

func TestCollectorMergeOrder(t *testing.T) {
	c := &Collector{WantEvents: true, WantMetrics: true, Mask: AllKinds}
	b1 := c.Batch(2)
	b2 := c.Batch(1)
	// Record out of order, as parallel workers would.
	b2.Recorder(0).Record(Event{T: 30, Kind: KindFire})
	b1.Recorder(1).Record(Event{T: 20, Kind: KindFire})
	b1.Recorder(0).Record(Event{T: 10, Kind: KindFire})
	if c.Runs() != 3 {
		t.Fatalf("runs = %d, want 3", c.Runs())
	}
	var sb writerBuilder
	if err := c.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	want := `{"run":0,"t":10,"kind":"fire"}
{"run":1,"t":20,"kind":"fire"}
{"run":2,"t":30,"kind":"fire"}
`
	if string(sb) != want {
		t.Errorf("merged JSONL:\n%s\nwant:\n%s", sb, want)
	}
	var mb writerBuilder
	if err := c.WriteMetrics(&mb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(mb)), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], `{"run":0,`) || !strings.HasPrefix(lines[2], `{"run":2,`) {
		t.Errorf("merged metrics lines:\n%s", mb)
	}
}

func TestNilCollectorAndBatch(t *testing.T) {
	var c *Collector
	b := c.Batch(4)
	if b != nil {
		t.Error("nil collector should return nil batch")
	}
	if r := b.Recorder(0); r != nil {
		t.Error("nil batch should hand out nil recorders")
	}
	if c.Runs() != 0 {
		t.Error("nil collector has no runs")
	}
}

func TestCollectorEventsOnly(t *testing.T) {
	c := &Collector{WantEvents: true}
	b := c.Batch(1)
	r := b.Recorder(0)
	if _, ok := r.(*JSONL); !ok {
		t.Fatalf("events-only recorder = %T, want *JSONL", r)
	}
	r.Record(Event{T: 1, Kind: KindMPPrio, Subflow: "lte", A: 1})
	var sb writerBuilder
	if err := c.WriteMetrics(&sb); err != nil || len(sb) != 0 {
		t.Errorf("metrics output should be empty, got %q (%v)", sb, err)
	}
}

func TestAppendFloatSpecials(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0.1, "0.1"},
		{250, "250"},
		{1e-9, "1e-09"},
		{math.NaN(), `"NaN"`},
		{math.Inf(1), `"+Inf"`},
		{math.Inf(-1), `"-Inf"`},
	}
	for _, c := range cases {
		if got := string(appendFloat(nil, c.v)); got != c.want {
			t.Errorf("appendFloat(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}
