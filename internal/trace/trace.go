// Package trace is the simulator's structured observability layer: typed
// events emitted by the simulation kernel, the transport models, and the
// energy model, consumed by pluggable recorders.
//
// The paper's evaluation hinges on *which subflow carried which bytes
// when* and what radio power state each interface was in (Figures 8–14);
// this package makes those timelines inspectable without ad-hoc prints,
// the way ns-3's MPTCP models lean on per-flow tracing.
//
// # Overhead contract
//
// Tracing must cost nothing when disabled. Every emission site is guarded
// by a single nil check on a Recorder value (`if rec != nil`), and Event
// is a flat value struct of scalars and static strings, so constructing
// and passing one performs no heap allocation. The kernel hot path keeps
// its 0 allocs/op (BenchmarkSimKernel guards this); emitters must never
// build an Event with fmt.Sprintf, string concatenation, or any other
// allocating expression.
//
// # Event taxonomy
//
// Kernel (internal/sim): KindSchedule, KindFire, KindCancel — queue
// traffic counters.
//
// Transport (internal/tcp): KindTCPState (lifecycle transitions),
// KindCwnd (per-round cwnd/ssthresh), KindLoss (halvings and timeouts).
//
// Multipath (internal/mptcp): KindSubflow (subflow creation),
// KindMPPrio (backup flag changes), KindSchedPick (min-RTT scheduler
// deferrals), KindDeliver (per-subflow deliveries).
//
// Energy (internal/energy): KindRadio (RRC power-state transitions with
// the exited state's dwell time).
//
// Controller (internal/core): KindPathSet (eMPTCP path-usage decisions).
package trace

// Kind identifies an event type.
type Kind uint8

// The event taxonomy. Values are stable identifiers used by the Metrics
// counters; names (Kind.String) are the JSONL "kind" field.
const (
	// KindSchedule is one sim.Engine.Schedule call (A = fire time).
	KindSchedule Kind = iota
	// KindFire is one event callback firing.
	KindFire
	// KindCancel is one effective Event.Cancel (a live event killed).
	KindCancel
	// KindTCPState is a subflow lifecycle transition (To = new state).
	KindTCPState
	// KindCwnd is a subflow's post-round window update (A = cwnd,
	// B = ssthresh, in segments).
	KindCwnd
	// KindLoss is a subflow loss event (To = "halve" or "timeout",
	// A = cwnd, B = ssthresh after the reaction).
	KindLoss
	// KindSubflow is an MPTCP subflow being added (A = extra
	// establishment delay in seconds).
	KindSubflow
	// KindMPPrio is an MP_PRIO backup flag change (A = 1 set, 0 cleared).
	KindMPPrio
	// KindSchedPick is a scheduler decision to defer scarce data from
	// the requesting subflow (Subflow) to a faster peer (To).
	KindSchedPick
	// KindDeliver is bytes delivered over one subflow (A = bytes).
	KindDeliver
	// KindRadio is a radio RRC state transition (From/To = state names,
	// A = seconds dwelt in the exited state).
	KindRadio
	// KindPathSet is an eMPTCP path-usage decision (To = path set name).
	KindPathSet

	numKinds
)

// NumKinds is the number of event kinds, for counter arrays.
const NumKinds = int(numKinds)

var kindNames = [NumKinds]string{
	KindSchedule:  "schedule",
	KindFire:      "fire",
	KindCancel:    "cancel",
	KindTCPState:  "tcp_state",
	KindCwnd:      "cwnd",
	KindLoss:      "loss",
	KindSubflow:   "subflow_add",
	KindMPPrio:    "mp_prio",
	KindSchedPick: "sched_pick",
	KindDeliver:   "deliver",
	KindRadio:     "radio_state",
	KindPathSet:   "path_set",
}

// String returns the kind's JSONL name.
func (k Kind) String() string {
	if int(k) < NumKinds {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one trace record. It is a flat value: all fields are scalars
// or references to static strings, so emitting one allocates nothing.
// Field meaning is kind-specific (see the Kind constants); unused fields
// are zero.
type Event struct {
	// T is the simulated time of the event in seconds.
	T float64
	// Kind is the event type.
	Kind Kind
	// Subflow is the subflow ID ("wifi", "lte"), when applicable.
	Subflow string
	// Iface is the interface name ("WiFi", "LTE"), when applicable.
	Iface string
	// From and To are kind-specific state labels.
	From string
	To   string
	// A and B are kind-specific numeric payloads.
	A float64
	B float64
}

// Recorder receives events. Implementations must be cheap per call —
// they run inside the simulation's hot loops — and need not be
// goroutine-safe: one recorder is attached to exactly one engine, and an
// engine is never shared between goroutines.
//
// A nil Recorder means tracing is disabled; emitters guard every Record
// call with a nil check so the disabled path is a single branch.
type Recorder interface {
	Record(ev Event)
}

// Mask selects a subset of event kinds.
type Mask uint32

// Has reports whether the mask includes kind k.
func (m Mask) Has(k Kind) bool { return m&(1<<uint(k)) != 0 }

// With returns the mask with kind k added.
func (m Mask) With(k Kind) Mask { return m | 1<<uint(k) }

// AllKinds selects every event kind.
const AllKinds Mask = 1<<uint(numKinds) - 1

// KernelKinds selects the high-volume kernel queue events.
const KernelKinds Mask = 1<<uint(KindSchedule) | 1<<uint(KindFire) | 1<<uint(KindCancel)

// DefaultMask selects the decision-level timeline the paper's figures
// need — subflow lifecycle, MP_PRIO, scheduler picks, radio state
// transitions, and path-set decisions — and excludes the high-volume
// per-round and kernel events (those still feed Metrics counters).
const DefaultMask Mask = 1<<uint(KindTCPState) |
	1<<uint(KindSubflow) |
	1<<uint(KindMPPrio) |
	1<<uint(KindSchedPick) |
	1<<uint(KindRadio) |
	1<<uint(KindPathSet)

// Multi fans events out to several recorders.
type Multi []Recorder

// Record forwards the event to every child recorder.
func (m Multi) Record(ev Event) {
	for _, r := range m {
		r.Record(ev)
	}
}

// Sampler is implemented by recorders that want periodic samples of
// simulated time (the Metrics recorder's time-series grid). The wiring
// layer attaches a sim.Ticker calling Sample every SampleEvery seconds.
type Sampler interface {
	// SampleEvery returns the sampling period in seconds.
	SampleEvery() float64
	// Sample records one grid point at simulated time t.
	Sample(t float64)
}

// Sample forwards the grid point to every child that samples.
func (m Multi) Sample(t float64) {
	for _, r := range m {
		if s, ok := r.(Sampler); ok {
			s.Sample(t)
		}
	}
}

// SampleEvery returns the smallest child sampling period, or 0 when no
// child samples.
func (m Multi) SampleEvery() float64 {
	every := 0.0
	for _, r := range m {
		if s, ok := r.(Sampler); ok {
			if e := s.SampleEvery(); e > 0 && (every == 0 || e < every) {
				every = e
			}
		}
	}
	return every
}
