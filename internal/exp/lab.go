package exp

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/energy"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/workload"
)

func init() {
	register(&Experiment{
		ID:    "fig5",
		Title: "Static good WiFi (>10 Mbps): energy and download time, 256 MB",
		Paper: "eMPTCP ≈ TCP over WiFi; MPTCP fastest but highest energy",
		Run:   runFig5,
	})
	register(&Experiment{
		ID:    "fig6",
		Title: "Static bad WiFi (<1 Mbps): energy and download time, 256 MB",
		Paper: "eMPTCP ≈ MPTCP; TCP over WiFi takes many times longer",
		Run:   runFig6,
	})
	register(&Experiment{
		ID:    "fig7",
		Title: "Accumulated energy with random WiFi bandwidth changes (single trace)",
		Paper: "eMPTCP suspends LTE on good WiFi: ~20% less energy than MPTCP, ~40% more time; beats TCP/WiFi on both",
		Run:   runFig7,
	})
	register(&Experiment{
		ID:    "fig8",
		Title: "Random WiFi bandwidth changes: mean ± SEM over 10 runs",
		Paper: "eMPTCP ~8% less energy than MPTCP and ~6% less than TCP/WiFi; ~22% slower than MPTCP, ~2x faster than TCP/WiFi",
		Run:   runFig8,
	})
	register(&Experiment{
		ID:    "fig9",
		Title: "Throughput traces with background traffic (n=2, λon=0.05, λoff=0.025)",
		Paper: "eMPTCP suspends the LTE subflow when WiFi bandwidth is large; MPTCP keeps both",
		Run:   runFig9,
	})
	register(&Experiment{
		ID:    "fig10",
		Title: "Background traffic: energy and time relative to MPTCP",
		Paper: "eMPTCP 9–11% less energy than MPTCP at 20–40% more time; up to 70% faster than TCP/WiFi",
		Run:   runFig10,
	})
	register(&Experiment{
		ID:    "fig12",
		Title: "Mobility: accumulated energy along the Figure 11 route (single trace)",
		Paper: "eMPTCP's energy slope between TCP/WiFi's and MPTCP's; LTE used in short bad-WiFi periods",
		Run:   runFig12,
	})
	register(&Experiment{
		ID:    "fig13",
		Title: "Mobility: per-byte energy and download amount over 250 s",
		Paper: "eMPTCP ~22% lower J/B than MPTCP, ~25% less data; ~28% more data than TCP/WiFi at ~8% more J/B",
		Run:   runFig13,
	})
	register(&Experiment{
		ID:    "sec46",
		Title: "Comparison with existing approaches: WiFi-First and the MDP scheduler",
		Paper: "WiFi-First degenerates to TCP/WiFi while associated; MDP chooses WiFi-only everywhere; Single-Path mode reacts only to an interface going down",
		Run:   runSec46,
	})
}

// labProtos are the three protocols the lab figures compare.
var labProtos = []scenario.Protocol{scenario.MPTCP, scenario.EMPTCP, scenario.TCPWiFi}

// series of per-protocol measurements.
type measures struct {
	energy []float64 // J
	time   []float64 // s
	jpb    []float64 // J/byte
	downMB []float64 // MB
}

// add appends one run's headline numbers.
func (m *measures) add(r scenario.Result) {
	m.energy = append(m.energy, r.Energy.Joules())
	m.time = append(m.time, r.CompletionTime)
	m.jpb = append(m.jpb, r.JPerByte)
	m.downMB = append(m.downMB, r.Downloaded.Megabytes())
}

// collect runs each protocol `runs` times over the scenario. The
// protocol × seed grid is flattened onto the worker pool and reduced in
// index order, so the tables built from it are identical at any job count.
func collect(cfg Config, sc scenario.Scenario, protos []scenario.Protocol, runs int) map[scenario.Protocol]*measures {
	rs := replicateGrid(cfg, sc, protos, runs)
	out := map[scenario.Protocol]*measures{}
	for pi, p := range protos {
		m := &measures{}
		for _, r := range rs[pi*runs : (pi+1)*runs] {
			m.add(r)
		}
		out[p] = m
	}
	return out
}

// energyTimeTable renders the standard per-protocol energy/time table.
func energyTimeTable(title string, ms map[scenario.Protocol]*measures, protos []scenario.Protocol) *report.Table {
	t := report.NewTable(title, "Protocol", "Energy (J, mean ± SEM)", "Download time (s, mean ± SEM)")
	for _, p := range protos {
		m := ms[p]
		t.Add(p.String(), report.MeanSEM(stats.Summarize(m.energy)), report.MeanSEM(stats.Summarize(m.time)))
	}
	return t
}

func ratioMetrics(out *Output, ms map[scenario.Protocol]*measures) {
	mp := ms[scenario.MPTCP]
	em := ms[scenario.EMPTCP]
	tw := ms[scenario.TCPWiFi]
	if mp == nil || em == nil {
		return
	}
	out.Metrics["emptcp_energy_vs_mptcp_pct"] = stats.Ratio(stats.Mean(em.energy), stats.Mean(mp.energy))
	out.Metrics["emptcp_time_vs_mptcp_pct"] = stats.Ratio(stats.Mean(em.time), stats.Mean(mp.time))
	if tw != nil {
		out.Metrics["emptcp_energy_vs_tcpwifi_pct"] = stats.Ratio(stats.Mean(em.energy), stats.Mean(tw.energy))
		out.Metrics["emptcp_time_vs_tcpwifi_pct"] = stats.Ratio(stats.Mean(em.time), stats.Mean(tw.time))
	}
}

func runFig5(cfg Config) *Output {
	out := newOutput()
	size := workload.FileDownload{Size: units.ByteSize(cfg.scaleMB(256)) * units.MB}
	ms := collect(cfg, scenario.StaticLab(cfg.device(), 12, 9, size), labProtos, cfg.runs(5))
	out.Tables = append(out.Tables, energyTimeTable("Figure 5 — static good WiFi", ms, labProtos))
	ratioMetrics(out, ms)
	return out
}

func runFig6(cfg Config) *Output {
	out := newOutput()
	size := workload.FileDownload{Size: units.ByteSize(cfg.scaleMB(256)) * units.MB}
	ms := collect(cfg, scenario.StaticLab(cfg.device(), 0.8, 9, size), labProtos, cfg.runs(5))
	out.Tables = append(out.Tables, energyTimeTable("Figure 6 — static bad WiFi", ms, labProtos))
	ratioMetrics(out, ms)
	return out
}

func runFig7(cfg Config) *Output {
	out := newOutput()
	size := workload.FileDownload{Size: units.ByteSize(cfg.scaleMB(256)) * units.MB}
	t := report.NewTable("Figure 7 — random WiFi bandwidth (single run)",
		"Protocol", "Energy (J)", "Download time (s)")
	sc := scenario.RandomBandwidth(cfg.device(), size)
	rs := repeatRuns(cfg, len(labProtos), func(i int, opt scenario.Opts) scenario.Result {
		opt.Seed = cfg.BaseSeed
		opt.Trace = true
		return scenario.Run(sc, labProtos[i], opt)
	})
	for pi, p := range labProtos {
		r := rs[pi]
		t.Addf(p.String(), r.Energy.Joules(), r.CompletionTime)
		out.addSeries("energy "+p.String(), r.EnergyTrace)
		if p == scenario.EMPTCP {
			out.addSeries("WiFi throughput (Mbps)", r.ThroughputTrace[energy.WiFi])
		}
		out.Metrics["energy_"+p.String()] = r.Energy.Joules()
	}
	out.Tables = append(out.Tables, t)
	return out
}

func runFig8(cfg Config) *Output {
	out := newOutput()
	size := workload.FileDownload{Size: units.ByteSize(cfg.scaleMB(256)) * units.MB}
	ms := collect(cfg, scenario.RandomBandwidth(cfg.device(), size), labProtos, cfg.runs(10))
	out.Tables = append(out.Tables, energyTimeTable("Figure 8 — random WiFi bandwidth changes", ms, labProtos))
	ratioMetrics(out, ms)
	return out
}

func runFig9(cfg Config) *Output {
	out := newOutput()
	size := workload.FileDownload{Size: units.ByteSize(cfg.scaleMB(256)) * units.MB}
	protos := []scenario.Protocol{scenario.MPTCP, scenario.EMPTCP}
	sc := scenario.BackgroundTraffic(cfg.device(), 2, 0.05, 0.025, size)
	rs := repeatRuns(cfg, len(protos), func(i int, opt scenario.Opts) scenario.Result {
		opt.Seed = cfg.BaseSeed
		opt.Trace = true
		return scenario.Run(sc, protos[i], opt)
	})
	for pi, p := range protos {
		r := rs[pi]
		out.addSeries(p.String()+" WiFi (Mbps)", r.ThroughputTrace[energy.WiFi])
		out.addSeries(p.String()+" LTE (Mbps)", r.ThroughputTrace[energy.LTE])
		// Fraction of trace time the LTE subflow was moving data.
		lte := r.ThroughputTrace[energy.LTE]
		active := 0
		for _, v := range lte.V {
			if v > 0.1 {
				active++
			}
		}
		if lte.Len() > 0 {
			out.Metrics["lte_active_frac_"+p.String()] = float64(active) / float64(lte.Len())
		}
	}
	out.Notes = append(out.Notes,
		"eMPTCP's LTE trace goes quiet whenever WiFi bandwidth is high; MPTCP's does not")
	return out
}

func runFig10(cfg Config) *Output {
	out := newOutput()
	size := workload.FileDownload{Size: units.ByteSize(cfg.scaleMB(256)) * units.MB}
	t := report.NewTable("Figure 10 — relative to MPTCP (100% = MPTCP; lower is better)",
		"Setting", "Protocol", "Energy %", "Download time %")
	type setting struct {
		n         int
		lambdaOff float64
	}
	for _, s := range []setting{{2, 0.025}, {3, 0.025}, {3, 0.05}} {
		sc := scenario.BackgroundTraffic(cfg.device(), s.n, 0.05, s.lambdaOff, size)
		ms := collect(cfg, sc, labProtos, cfg.runs(5))
		mpE := stats.Mean(ms[scenario.MPTCP].energy)
		mpT := stats.Mean(ms[scenario.MPTCP].time)
		label := fmt.Sprintf("λoff=%.3f, n=%d", s.lambdaOff, s.n)
		for _, p := range []scenario.Protocol{scenario.EMPTCP, scenario.TCPWiFi} {
			e := stats.Ratio(stats.Mean(ms[p].energy), mpE)
			d := stats.Ratio(stats.Mean(ms[p].time), mpT)
			t.Addf(label, p.String(), e, d)
			if p == scenario.EMPTCP {
				out.Metrics[fmt.Sprintf("emptcp_energy_pct_n%d_loff%.3f", s.n, s.lambdaOff)] = e
				out.Metrics[fmt.Sprintf("emptcp_time_pct_n%d_loff%.3f", s.n, s.lambdaOff)] = d
			}
		}
	}
	out.Tables = append(out.Tables, t)
	return out
}

func runFig12(cfg Config) *Output {
	out := newOutput()
	t := report.NewTable("Figure 12 — mobility trace (250 s)",
		"Protocol", "Energy (J)", "Downloaded (MB)")
	sc := scenario.Mobility(cfg.device())
	rs := repeatRuns(cfg, len(labProtos), func(i int, opt scenario.Opts) scenario.Result {
		opt.Seed = cfg.BaseSeed
		opt.Trace = true
		return scenario.Run(sc, labProtos[i], opt)
	})
	for pi, p := range labProtos {
		r := rs[pi]
		t.Addf(p.String(), r.Energy.Joules(), r.Downloaded.Megabytes())
		out.addSeries("energy "+p.String(), r.EnergyTrace)
		if p == scenario.EMPTCP {
			out.addSeries("WiFi throughput (Mbps)", r.ThroughputTrace[energy.WiFi])
			out.Metrics["emptcp_switches"] = float64(r.Switches)
		}
	}
	out.Tables = append(out.Tables, t)
	return out
}

func runFig13(cfg Config) *Output {
	out := newOutput()
	ms := collect(cfg, scenario.Mobility(cfg.device()), labProtos, cfg.runs(5))
	t := report.NewTable("Figure 13 — mobility over 250 s",
		"Protocol", "Energy per byte (µJ/B, mean ± SEM)", "Downloaded (MB, mean ± SEM)")
	for _, p := range labProtos {
		m := ms[p]
		scaled := make([]float64, len(m.jpb))
		for i, v := range m.jpb {
			scaled[i] = v * 1e6
		}
		t.Add(p.String(), report.MeanSEM(stats.Summarize(scaled)), report.MeanSEM(stats.Summarize(m.downMB)))
	}
	out.Tables = append(out.Tables, t)
	em, mp, tw := ms[scenario.EMPTCP], ms[scenario.MPTCP], ms[scenario.TCPWiFi]
	out.Metrics["emptcp_jpb_vs_mptcp_pct"] = stats.Ratio(stats.Mean(em.jpb), stats.Mean(mp.jpb))
	out.Metrics["emptcp_jpb_vs_tcpwifi_pct"] = stats.Ratio(stats.Mean(em.jpb), stats.Mean(tw.jpb))
	out.Metrics["emptcp_down_vs_mptcp_pct"] = stats.Ratio(stats.Mean(em.downMB), stats.Mean(mp.downMB))
	out.Metrics["emptcp_down_vs_tcpwifi_pct"] = stats.Ratio(stats.Mean(em.downMB), stats.Mean(tw.downMB))
	return out
}

func runSec46(cfg Config) *Output {
	out := newOutput()
	// The MDP policy itself.
	pol := baseline.GenerateMDP(baseline.DefaultMDPConfig(cfg.device()))
	if pol.AlwaysWiFiOnly() {
		out.Metrics["mdp_always_wifi_only"] = 1
		out.Notes = append(out.Notes,
			"generated MDP scheduler chooses WiFi-only in every throughput state (matches §4.6)")
	} else {
		out.Metrics["mdp_always_wifi_only"] = 0
	}

	protos := []scenario.Protocol{scenario.EMPTCP, scenario.WiFiFirst, scenario.SinglePath, scenario.MDP, scenario.TCPWiFi}
	// Mobility: the setting where the strategies differ most.
	ms := collect(cfg, scenario.Mobility(cfg.device()), protos, cfg.runs(3))
	t := report.NewTable("§4.6 — existing approaches on the mobility route (250 s)",
		"Protocol", "Energy (J)", "Downloaded (MB)", "J/B (µJ)")
	for _, p := range protos {
		m := ms[p]
		t.Addf(p.String(), stats.Mean(m.energy), stats.Mean(m.downMB), stats.Mean(m.jpb)*1e6)
	}
	out.Tables = append(out.Tables, t)
	out.Metrics["emptcp_down_vs_wififirst_pct"] =
		stats.Ratio(stats.Mean(ms[scenario.EMPTCP].downMB), stats.Mean(ms[scenario.WiFiFirst].downMB))
	out.Metrics["mdp_down_vs_tcpwifi_pct"] =
		stats.Ratio(stats.Mean(ms[scenario.MDP].downMB), stats.Mean(ms[scenario.TCPWiFi].downMB))
	out.Metrics["emptcp_down_vs_singlepath_pct"] =
		stats.Ratio(stats.Mean(ms[scenario.EMPTCP].downMB), stats.Mean(ms[scenario.SinglePath].downMB))

	// Static bad WiFi: WiFi-First stays associated and degenerates.
	size := workload.FileDownload{Size: units.ByteSize(cfg.scaleMB(64)) * units.MB}
	ms2 := collect(cfg, scenario.StaticLab(cfg.device(), 0.8, 9, size),
		[]scenario.Protocol{scenario.WiFiFirst, scenario.TCPWiFi, scenario.EMPTCP}, cfg.runs(3))
	t2 := report.NewTable("§4.6 — static bad WiFi (still associated)",
		"Protocol", "Energy (J)", "Download time (s)")
	for _, p := range []scenario.Protocol{scenario.WiFiFirst, scenario.TCPWiFi, scenario.EMPTCP} {
		m := ms2[p]
		t2.Addf(p.String(), stats.Mean(m.energy), stats.Mean(m.time))
	}
	out.Tables = append(out.Tables, t2)
	out.Metrics["wififirst_time_vs_tcpwifi_pct"] =
		stats.Ratio(stats.Mean(ms2[scenario.WiFiFirst].time), stats.Mean(ms2[scenario.TCPWiFi].time))
	return out
}
