package exp

import (
	"testing"

	"repro/internal/energy"
	"repro/internal/scenario"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

// TestSelectPath pins the execution-path choice for every eligibility
// combination, so an edit to lockstep/fork/cache eligibility rules cannot
// silently drop a replication group onto a slower path (or push an
// ineligible one onto a fast path).
func TestSelectPath(t *testing.T) {
	lab := scenario.StaticLab(energy.GalaxyS3(), 8, 6, workload.FileDownload{Size: 2 * units.MB})
	mob := scenario.Mobility(energy.GalaxyS3())
	cache := scenario.NewRunCache()
	cases := []struct {
		name  string
		cfg   Config
		sc    scenario.Scenario
		proto scenario.Protocol
		k     int
		sweep bool
		want  execPath
	}{
		{"replication k=5 eligible", Config{}, lab, scenario.MPTCP, 5, false, pathLockstep},
		{"replication k=4 boundary", Config{}, lab, scenario.TCPWiFi, 4, false, pathLockstep},
		{"replication k=3 too small", Config{}, lab, scenario.MPTCP, 3, false, pathScalar},
		{"replication k=3 with cache", Config{Cache: cache}, lab, scenario.MPTCP, 3, false, pathCached},
		{"NoLockstep escape hatch", Config{NoLockstep: true}, lab, scenario.MPTCP, 5, false, pathScalar},
		{"NoLockstep with cache", Config{NoLockstep: true, Cache: cache}, lab, scenario.MPTCP, 5, false, pathCached},
		{"tracing forces scalar", Config{Trace: &trace.Collector{}}, lab, scenario.MPTCP, 5, false, pathScalar},
		{"emptcp not laned", Config{}, lab, scenario.EMPTCP, 5, false, pathScalar},
		{"emptcp not laned, cached", Config{Cache: cache}, lab, scenario.EMPTCP, 5, false, pathCached},
		{"streaming workload not laned", Config{}, scenario.StaticLab(energy.GalaxyS3(), 12, 4.5, workload.DefaultStreaming()),
			scenario.MPTCP, 5, false, pathScalar},
		{"sweep forks", Config{}, lab, scenario.EMPTCP, 5, true, pathFork},
		{"sweep NoFork falls back", Config{NoFork: true, Cache: cache}, lab, scenario.EMPTCP, 5, true, pathCached},
		{"sweep tracing forces scalar", Config{Trace: &trace.Collector{}}, lab, scenario.EMPTCP, 5, true, pathScalar},
		{"sweep wrong proto no fork", Config{}, lab, scenario.MPTCP, 5, true, pathScalar},
		// Mobility is statically inside the envelope (library scenario,
		// bulk-style work) — lockstep accepts it and peels dynamically.
		{"mobility lanes then peels", Config{}, mob, scenario.MPTCP, 5, false, pathLockstep},
	}
	for _, c := range cases {
		if got := selectPath(c.cfg, c.sc, c.proto, c.k, c.sweep); got != c.want {
			t.Errorf("%s: selectPath = %v, want %v", c.name, got, c.want)
		}
	}
}
