package exp

import (
	"testing"

	"repro/internal/scenario"
)

// TestCacheGoldenOutput is the run-cache golden test: every experiment
// must render byte-identical output with the cache disabled, with a cold
// shared cache, and when served entirely from cache hits — at Jobs 1 and
// Jobs 4. The shared cache crosses experiment boundaries, exercising the
// overlapping-grid deduplication the cache exists for.
func TestCacheGoldenOutput(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		plain := Config{Jobs: jobs, Quick: true}
		cached := plain
		cached.Cache = scenario.NewRunCache()
		for _, e := range All() {
			want := e.Run(plain).String()
			if got := e.Run(cached).String(); got != want {
				t.Errorf("jobs=%d %s: cold-cache output differs from uncached", jobs, e.ID)
			}
			if got := e.Run(cached).String(); got != want {
				t.Errorf("jobs=%d %s: cache-hit output differs from uncached", jobs, e.ID)
			}
		}
		if hits, _ := cached.Cache.Stats(); hits == 0 {
			t.Errorf("jobs=%d: cache never hit; the golden test is not exercising memoization", jobs)
		}
	}
}
