package exp

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/link"
	"repro/internal/mptcp"
	"repro/internal/ptcp"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/simrng"
	"repro/internal/tcp"
	"repro/internal/units"
)

func init() {
	register(&Experiment{
		ID:    "xval",
		Title: "Cross-validation: fluid-round TCP/MPTCP vs the packet-level reference model",
		Paper: "methodology check (no paper figure): the fluid approximation every table is built on agrees with packet-level SACK-Reno/MPTCP on completion time",
		Run:   runXval,
	})
}

// xvalCell is one cross-validation grid point: a transfer both models run
// under matched parameters.
type xvalCell struct {
	rateMbps float64 // per-path bottleneck rate
	rttMs    float64 // first path's propagation RTT
	sizeMB   float64
	queue    int // packet model's drop-tail queue, in packets
	subflows int // 1 = plain TCP, 2 = MPTCP (second path at 2.5× the RTT)
}

// bdpPackets is the cell's bandwidth-delay product in MSS-sized packets.
func (c xvalCell) bdpPackets() float64 {
	return c.rateMbps * 1e6 * (c.rttMs / 1000) / (1460 * 8)
}

// band returns the tolerance interval for the fluid/packet completion-time
// ratio of one cell. The fluid-round model (DESIGN.md §4.1) has no queue:
// it neither pays queueing delay nor loses segments to overflow, so on
// short transfers — where slow-start overshoot dominates and the packet
// model may eat drops the fluid model never sees — the agreement is
// looser than in steady state, and in severely under-buffered cells
// (queue below a quarter of the bandwidth-delay product) the fluid model
// is known-optimistic: the packet sender lives in permanent loss
// recovery the fluid abstraction cannot see, so the lower bound widens.
// Multipath adds scheduler and handshake differences on top. The bounds
// are deliberately wide enough to be stable across grid tweaks yet tight
// enough that a broken window or scheduler cannot hide; the measured
// grid sits inside them (see xval_test.go).
func (c xvalCell) band() (lo, hi float64) {
	lo, hi = 0.60, 1.50
	if c.subflows > 1 {
		lo, hi = 0.45, 1.75
	}
	if float64(c.queue) < c.bdpPackets()/4 {
		lo = 0.35
	}
	return lo, hi
}

// xvalGrid returns the sweep. Quick mode keeps one representative cell
// per regime so emptcpsim -quick and the CI tolerance job stay cheap.
func xvalGrid(quick bool) []xvalCell {
	if quick {
		return []xvalCell{
			{rateMbps: 10, rttMs: 20, sizeMB: 1, queue: 64, subflows: 1},
			{rateMbps: 40, rttMs: 100, sizeMB: 4, queue: 32, subflows: 1},
			{rateMbps: 10, rttMs: 20, sizeMB: 1, queue: 64, subflows: 2},
			{rateMbps: 10, rttMs: 100, sizeMB: 4, queue: 128, subflows: 2},
		}
	}
	var cells []xvalCell
	for _, rate := range []float64{4, 10, 40} {
		for _, rtt := range []float64{20, 100} {
			for _, size := range []float64{1, 8} {
				for _, queue := range []int{32, 128} {
					for _, subs := range []int{1, 2} {
						cells = append(cells, xvalCell{
							rateMbps: rate, rttMs: rtt, sizeMB: size,
							queue: queue, subflows: subs,
						})
					}
				}
			}
		}
	}
	return cells
}

// xvalPacket runs the cell on the packet-level model.
func xvalPacket(c xvalCell) float64 {
	eng := sim.New()
	eng.Horizon = 900
	size := units.ByteSize(c.sizeMB * float64(units.MB))
	l := ptcp.Link{
		Rate:         units.MbpsRate(c.rateMbps),
		OneWayDelay:  c.rttMs / 1000 / 2,
		QueuePackets: c.queue,
	}
	if c.subflows == 1 {
		res := ptcp.Run(eng, ptcp.DefaultConfig(), l, size)
		if !res.Completed {
			return -1
		}
		return res.FinishedAt
	}
	l2 := l
	l2.OneWayDelay *= 2.5
	res := ptcp.RunMPTCP(eng, ptcp.DefaultMPConfig(), []ptcp.Link{l, l2}, size)
	if !res.Completed {
		return -1
	}
	return res.FinishedAt
}

// xvalFluid runs the cell on the fluid-round model, through the same
// mptcp.Connection the experiment tables use (a single subflow is plain
// fluid TCP). RTT jitter is seeded per cell, so the table is
// deterministic.
func xvalFluid(c xvalCell, seed int64) float64 {
	eng := sim.New()
	eng.Horizon = 900
	src := simrng.New(seed + 1)
	conn := mptcp.New(eng, src, mptcp.DefaultOptions())
	p := &tcp.Path{
		Name:     "xval0",
		Capacity: link.NewConstant(units.MbpsRate(c.rateMbps)),
		BaseRTT:  c.rttMs / 1000,
	}
	conn.AddSubflow("xval0", energy.WiFi, p, nil, 0)
	if c.subflows > 1 {
		p2 := &tcp.Path{
			Name:     "xval1",
			Capacity: link.NewConstant(units.MbpsRate(c.rateMbps)),
			BaseRTT:  c.rttMs / 1000 * 2.5,
		}
		conn.AddSubflow("xval1", energy.LTE, p2, nil, 0)
	}
	done := -1.0
	conn.Download(units.ByteSize(c.sizeMB*float64(units.MB)), func(at float64) {
		done = at
		eng.Stop()
	})
	eng.Run()
	return done
}

func runXval(cfg Config) *Output {
	out := newOutput()
	t := report.NewTable("Cross-validation — fluid-round vs packet-level completion time",
		"Rate (Mbps)", "RTT (ms)", "Size (MB)", "Queue (pkts)", "Subflows",
		"Fluid (s)", "Packet (s)", "Ratio", "Band", "Within")
	cells := xvalGrid(cfg.Quick)
	type cellRes struct{ fluid, packet float64 }
	rs := repeatRuns(cfg, len(cells), func(j int, _ scenario.Opts) cellRes {
		return cellRes{
			fluid:  xvalFluid(cells[j], cfg.BaseSeed+int64(j)),
			packet: xvalPacket(cells[j]),
		}
	})
	within := 0
	minR, maxR := 0.0, 0.0
	for j, c := range cells {
		r := rs[j]
		ratio := 0.0
		if r.fluid > 0 && r.packet > 0 {
			ratio = r.fluid / r.packet
		}
		lo, hi := c.band()
		ok := ratio >= lo && ratio <= hi
		if ok {
			within++
		}
		if j == 0 || ratio < minR {
			minR = ratio
		}
		if j == 0 || ratio > maxR {
			maxR = ratio
		}
		t.Addf(c.rateMbps, c.rttMs, c.sizeMB, c.queue, c.subflows,
			fmt.Sprintf("%.3f", r.fluid), fmt.Sprintf("%.3f", r.packet),
			fmt.Sprintf("%.3f", ratio), fmt.Sprintf("[%.2f, %.2f]", lo, hi),
			map[bool]string{true: "yes", false: "NO"}[ok])
	}
	out.Tables = append(out.Tables, t)
	out.Metrics["xval_cells"] = float64(len(cells))
	out.Metrics["xval_within_band_fraction"] = float64(within) / float64(len(cells))
	out.Metrics["xval_ratio_min"] = minR
	out.Metrics["xval_ratio_max"] = maxR
	return out
}
