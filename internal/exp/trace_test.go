package exp

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

// traceOutputs runs the Figure 8 experiment (two-subflow MPTCP/eMPTCP
// downloads over the random-bandwidth scenario) with tracing on and
// returns the merged JSONL timeline and metrics.
func traceOutputs(t *testing.T, jobs int) (events, metrics string) {
	t.Helper()
	c := &trace.Collector{WantEvents: true, WantMetrics: true, Mask: trace.AllKinds, SampleEvery: 5}
	cfg := Config{Quick: true, Jobs: jobs, Trace: c}
	e := ByID("fig8")
	if e == nil {
		t.Fatal("fig8 not registered")
	}
	e.Run(cfg)
	var eb, mb strings.Builder
	if err := c.WriteJSONL(&eb); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteMetrics(&mb); err != nil {
		t.Fatal(err)
	}
	return eb.String(), mb.String()
}

// The golden determinism contract: the merged trace of a seeded
// experiment is byte-identical whether the runs execute sequentially or
// across four workers.
func TestTraceDeterministicAcrossJobs(t *testing.T) {
	e1, m1 := traceOutputs(t, 1)
	e4, m4 := traceOutputs(t, 4)
	if e1 != e4 {
		t.Error("JSONL timeline differs between -j 1 and -j 4")
	}
	if m1 != m4 {
		t.Error("metrics differ between -j 1 and -j 4")
	}
	if e1 == "" || m1 == "" {
		t.Fatal("trace outputs are empty")
	}
	// Structural golden checks: run tags ascend from 0 and the timeline
	// carries the decision-level kinds the figures need.
	if !strings.HasPrefix(e1, `{"run":0,`) {
		t.Errorf("first trace line should be run 0: %s", firstLine(e1))
	}
	for _, kind := range []string{`"kind":"subflow_add"`, `"kind":"radio_state"`, `"kind":"cwnd"`, `"kind":"deliver"`} {
		if !strings.Contains(e1, kind) {
			t.Errorf("timeline missing %s events", kind)
		}
	}
	if !strings.Contains(m1, `"counters":{`) || !strings.Contains(m1, `"subflows":{"`) {
		t.Errorf("metrics missing aggregate sections:\n%s", firstLine(m1))
	}
}

// Tracing must not perturb the simulation itself: the same experiment
// with and without a collector produces identical tables and metrics.
func TestTraceDoesNotPerturbResults(t *testing.T) {
	e := ByID("fig5")
	if e == nil {
		t.Fatal("fig5 not registered")
	}
	plain := e.Run(Config{Quick: true, Jobs: 2}).String()
	c := &trace.Collector{WantEvents: true}
	traced := e.Run(Config{Quick: true, Jobs: 2, Trace: c}).String()
	if plain != traced {
		t.Errorf("tracing changed experiment output:\n--- plain ---\n%s\n--- traced ---\n%s", plain, traced)
	}
	if c.Runs() == 0 {
		t.Error("collector reserved no runs")
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
