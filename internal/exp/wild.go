package exp

import (
	"fmt"

	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/simrng"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/workload"
)

func init() {
	register(&Experiment{
		ID:    "fig14",
		Title: "Trace categorization: measured WiFi/LTE throughput of 16 MB wild downloads",
		Paper: "scatter over four Good/Bad categories with an 8 Mbps threshold",
		Run:   runFig14,
	})
	register(&Experiment{
		ID:    "fig15",
		Title: "Small file transfers in the wild (256 KB): whisker plots per category",
		Paper: "eMPTCP ≈ TCP/WiFi everywhere: 75–90% less energy than MPTCP at similar times; a few timer-triggered LTE outliers",
		Run:   runFig15,
	})
	register(&Experiment{
		ID:    "fig16",
		Title: "Large file transfers in the wild (16 MB): whisker plots per category",
		Paper: "Bad-Bad: eMPTCP 33% less energy, 20% less time; Bad-Good: ≈MPTCP; Good-*: ~50% of MPTCP's energy, ~20% more time",
		Run:   runFig16,
	})
	register(&Experiment{
		ID:    "fig17",
		Title: "Web browsing (CNN home page, 107 objects over 6 connections)",
		Paper: "MPTCP uses ~60% more energy than eMPTCP and TCP/WiFi; latencies similar",
		Run:   runFig17,
	})
}

// categories enumerates the §5.1 grid in the paper's presentation order.
var categories = []struct {
	name  string
	wifiQ scenario.Quality
	lteQ  scenario.Quality
}{
	{"Bad WiFi & Bad LTE", scenario.Bad, scenario.Bad},
	{"Bad WiFi & Good LTE", scenario.Bad, scenario.Good},
	{"Good WiFi & Bad LTE", scenario.Good, scenario.Bad},
	{"Good WiFi & Good LTE", scenario.Good, scenario.Good},
}

// wildRuns executes `runs` iterations per category, spreading them across
// the three server locations as the paper's trace collection did. The full
// category × run × protocol grid is flattened onto the worker pool (runs
// share seeds across protocols, as the paper's paired measurements do) and
// reduced in index order, keeping the whisker tables deterministic.
func wildRuns(cfg Config, size units.ByteSize, protos []scenario.Protocol, runs int) map[string]map[scenario.Protocol]*measures {
	np := len(protos)
	rs := repeatRuns(cfg, len(categories)*runs*np, func(j int, opt scenario.Opts) scenario.Result {
		ci, rem := j/(runs*np), j%(runs*np)
		i, pi := rem/np, rem%np
		cat := categories[ci]
		loc := scenario.AllServerLocs[i%len(scenario.AllServerLocs)]
		sc := scenario.Wild(cfg.device(), cat.wifiQ, cat.lteQ, loc, workload.FileDownload{Size: size})
		opt.Seed = cfg.BaseSeed + int64(ci*1000+i)
		return scenario.Run(sc, protos[pi], opt)
	})
	out := map[string]map[scenario.Protocol]*measures{}
	for ci, cat := range categories {
		byProto := map[scenario.Protocol]*measures{}
		for _, p := range protos {
			byProto[p] = &measures{}
		}
		for i := 0; i < runs; i++ {
			for pi, p := range protos {
				byProto[p].add(rs[ci*runs*np+i*np+pi])
			}
		}
		out[cat.name] = byProto
	}
	return out
}

func runFig14(cfg Config) *Output {
	out := newOutput()
	t := report.NewTable("Figure 14 — measured throughput of 16 MB MPTCP downloads",
		"Category", "Run", "WiFi (Mbps)", "LTE (Mbps)", "Measured category")
	scatterPlot := &report.Scatter{
		Title:  "Figure 14 — scatter (letter = WiFi/LTE category: b=Bad-Bad, g=Bad-Good, B=Good-Bad, G=Good-Good)",
		XLabel: "WiFi (Mbps, 0–25)", YLabel: "LTE (Mbps, 0–25)",
		XMax: 25, YMax: 25,
	}
	catRunes := []rune{'b', 'g', 'B', 'G'}
	size := units.ByteSize(cfg.scaleMB(16)) * units.MB
	runs := cfg.runs(6)
	correct, total := 0, 0
	type catRun struct {
		completed bool
		wifi, lte units.BitRate
	}
	rs := repeatRuns(cfg, len(categories)*runs, func(j int, opt scenario.Opts) catRun {
		ci, i := j/runs, j%runs
		cat := categories[ci]
		loc := scenario.AllServerLocs[i%len(scenario.AllServerLocs)]
		sc := scenario.Wild(cfg.device(), cat.wifiQ, cat.lteQ, loc, workload.FileDownload{Size: size})
		opt.Seed = cfg.BaseSeed + int64(ci*1000+i)
		r := scenario.Run(sc, scenario.MPTCP, opt)
		// The per-run link-rate draw is what the paper's Figure 14
		// scatters; re-derive it by replaying the run's seed.
		w, l := drawnRates(sc, cfg.BaseSeed+int64(ci*1000+i))
		return catRun{completed: r.Completed, wifi: w, lte: l}
	})
	for ci, cat := range categories {
		for i := 0; i < runs; i++ {
			cr := rs[ci*runs+i]
			if !cr.completed {
				continue
			}
			wifiMbps, lteMbps := cr.wifi.Mbit(), cr.lte.Mbit()
			w, l := cr.wifi, cr.lte
			meas := fmt.Sprintf("%v WiFi & %v LTE", scenario.Categorize(w), scenario.Categorize(l))
			want := fmt.Sprintf("%v WiFi & %v LTE", cat.wifiQ, cat.lteQ)
			if meas == want {
				correct++
			}
			total++
			t.Addf(cat.name, i, wifiMbps, lteMbps, meas)
			scatterPlot.AddPoint(wifiMbps, lteMbps, catRunes[ci])
		}
	}
	out.Tables = append(out.Tables, t)
	out.Metrics["category_agreement_frac"] = float64(correct) / float64(total)
	out.Notes = append(out.Notes, scatterPlot.String())
	return out
}

// drawnRates reproduces the per-run link-rate draw of a wild scenario by
// replaying the seed-split sequence scenario.Run uses.
func drawnRates(sc scenario.Scenario, seed int64) (wifi, lte units.BitRate) {
	eng := sim.New()
	src := simrng.New(seed)
	w := sc.WiFi(eng, src.Split(0xaa))
	l := sc.LTE(eng, src.Split(0xbb))
	return w.Rate(), l.Rate()
}

func runFig15(cfg Config) *Output {
	return runWhiskerFigure(cfg, "Figure 15 — small file transfers (256 KB)",
		units.ByteSize(256)*units.KB, "fig15")
}

func runFig16(cfg Config) *Output {
	size := units.ByteSize(cfg.scaleMB(16)) * units.MB
	return runWhiskerFigure(cfg, "Figure 16 — large file transfers (16 MB)", size, "fig16")
}

func runWhiskerFigure(cfg Config, title string, size units.ByteSize, prefix string) *Output {
	out := newOutput()
	protos := labProtos
	ms := wildRuns(cfg, size, protos, cfg.runs(9))
	te := report.NewTable(title+" — energy (J): Q1 / median / Q3 (outliers)",
		"Category", "MPTCP", "eMPTCP", "TCP over WiFi")
	tt := report.NewTable(title+" — download time (s): Q1 / median / Q3 (outliers)",
		"Category", "MPTCP", "eMPTCP", "TCP over WiFi")
	for _, cat := range categories {
		byProto := ms[cat.name]
		rowE := []string{cat.name}
		rowT := []string{cat.name}
		for _, p := range protos {
			rowE = append(rowE, report.WhiskerString(stats.NewWhisker(byProto[p].energy)))
			rowT = append(rowT, report.WhiskerString(stats.NewWhisker(byProto[p].time)))
		}
		te.Add(rowE...)
		tt.Add(rowT...)
		// The paper's whisker figures compare medians; a few
		// timer-triggered LTE outliers would otherwise skew means.
		em := stats.Quantile(byProto[scenario.EMPTCP].energy, 0.5)
		mp := stats.Quantile(byProto[scenario.MPTCP].energy, 0.5)
		key := prefix + "_emptcp_energy_pct_" + shortCat(cat.name)
		out.Metrics[key] = stats.Ratio(em, mp)
	}
	out.Tables = append(out.Tables, te, tt)
	return out
}

func shortCat(name string) string {
	switch name {
	case "Bad WiFi & Bad LTE":
		return "bb"
	case "Bad WiFi & Good LTE":
		return "bg"
	case "Good WiFi & Bad LTE":
		return "gb"
	default:
		return "gg"
	}
}

func runFig17(cfg Config) *Output {
	out := newOutput()
	runs := cfg.runs(10)
	t := report.NewTable("Figure 17 — Web browsing",
		"Protocol", "Energy (J, mean ± SEM)", "Latency (s, mean ± SEM)")
	ms := collect(cfg, scenario.WebBrowsing(cfg.device()), labProtos, runs)
	for _, p := range labProtos {
		m := ms[p]
		t.Add(p.String(), report.MeanSEM(stats.Summarize(m.energy)), report.MeanSEM(stats.Summarize(m.time)))
	}
	out.Tables = append(out.Tables, t)
	out.Metrics["mptcp_energy_vs_emptcp_pct"] =
		stats.Ratio(stats.Mean(ms[scenario.MPTCP].energy), stats.Mean(ms[scenario.EMPTCP].energy))
	out.Metrics["emptcp_latency_vs_mptcp_pct"] =
		stats.Ratio(stats.Mean(ms[scenario.EMPTCP].time), stats.Mean(ms[scenario.MPTCP].time))
	out.Notes = append(out.Notes,
		"all page objects are <256 KB, so eMPTCP never opens the LTE subflow on any of the 6 connections")
	return out
}
