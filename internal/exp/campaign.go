package exp

import "repro/internal/campaign"

// WildSpec compiles the paper's §5.1 in-the-wild measurement design
// into a campaign.Spec: the four WiFi × LTE quality categories crossed
// with the three server deployments (WDC, AMS, SNG) and the
// whisker-figure protocol trio, with `population` seeded downloads per
// category × location cell. It is the same grid wildRuns flattens for
// fig15/fig16, lifted to the campaign engine so population-scale
// versions of those figures (replicated millions of devices) run
// behind the persistent cache and `emptcpsim serve` instead of
// in-process.
func WildSpec(device string, sizeMB float64, population, replicate int) campaign.Spec {
	return campaign.Spec{
		Name:      "wild",
		Device:    device,
		WiFi:      []string{"bad", "good"},
		LTE:       []string{"bad", "good"},
		Locations: []string{"wdc", "ams", "sng"},
		SizesMB:   []float64{sizeMB},
		Protocols: []string{"mptcp", "emptcp", "tcp-wifi"},
		Seeds:     campaign.SeedRange{Base: 0, Count: population},
		Replicate: replicate,
	}
}
