package exp

import (
	"strings"
	"testing"
)

func quick(t *testing.T, id string) *Output {
	t.Helper()
	e := ByID(id)
	if e == nil {
		t.Fatalf("experiment %q not registered", id)
	}
	return e.Run(Config{Quick: true})
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "table1", "fig3", "table2", "fig4", "fig5", "fig6",
		"fig7", "fig8", "fig9", "fig10", "fig12", "fig13", "sec46",
		"fig14", "fig15", "fig16", "fig17"}
	ids := IDs()
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if ByID("nope") != nil {
		t.Error("ByID of unknown id should be nil")
	}
	if len(All()) != len(ids) {
		t.Error("All() and IDs() disagree")
	}
}

func TestEveryExperimentHasMetadata(t *testing.T) {
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("experiment %+v missing metadata", e.ID)
		}
	}
}

func TestFig1(t *testing.T) {
	out := quick(t, "fig1")
	if out.Metrics["s3_lte_J"] < 10 || out.Metrics["s3_lte_J"] > 14 {
		t.Errorf("S3 LTE overhead = %v, want 10–14 J", out.Metrics["s3_lte_J"])
	}
	if out.Metrics["n5_lte_J"] >= out.Metrics["s3_lte_J"] {
		t.Error("Nexus 5 should be below Galaxy S3")
	}
	if out.Metrics["s3_wifi_J"] > 0.5 {
		t.Error("WiFi overhead should be negligible")
	}
}

func TestTable1(t *testing.T) {
	out := quick(t, "table1")
	s := out.String()
	for _, want := range []string{"MSM8960", "KitKat", "BCM4339"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 output missing %q", want)
		}
	}
}

func TestFig3(t *testing.T) {
	out := quick(t, "fig3")
	frac := out.Metrics["mptcp_best_fraction"]
	if frac <= 0.02 || frac >= 0.9 {
		t.Errorf("MPTCP-best fraction = %v, want a real V region", frac)
	}
}

func TestTable2(t *testing.T) {
	out := quick(t, "table2")
	for _, lte := range []string{"0.5", "1.0", "1.5", "2.0"} {
		key := "t2_err_pct_lte" + lte
		if err, ok := out.Metrics[key]; !ok {
			t.Errorf("missing %s", key)
		} else if err > 15 || err < -15 {
			t.Errorf("%s = %v%%, want within ±15%%", key, err)
		}
	}
}

func TestFig4(t *testing.T) {
	out := quick(t, "fig4")
	a1, a4, a16 := out.Metrics["area_1MB"], out.Metrics["area_4MB"], out.Metrics["area_16MB"]
	if !(a1 < a4 && a4 < a16) {
		t.Errorf("operating region areas %v < %v < %v violated", a1, a4, a16)
	}
}

func TestFig5(t *testing.T) {
	out := quick(t, "fig5")
	// eMPTCP ≈ TCP/WiFi and well below MPTCP.
	if v := out.Metrics["emptcp_energy_vs_mptcp_pct"]; v > 90 {
		t.Errorf("good WiFi: eMPTCP at %v%% of MPTCP energy, want well below", v)
	}
	if v := out.Metrics["emptcp_energy_vs_tcpwifi_pct"]; v < 85 || v > 115 {
		t.Errorf("good WiFi: eMPTCP at %v%% of TCP/WiFi energy, want ≈100%%", v)
	}
}

func TestFig6(t *testing.T) {
	out := quick(t, "fig6")
	if v := out.Metrics["emptcp_energy_vs_mptcp_pct"]; v < 75 || v > 125 {
		t.Errorf("bad WiFi: eMPTCP at %v%% of MPTCP energy, want ≈100%%", v)
	}
	// TCP/WiFi is several times slower: eMPTCP time far below it.
	if v := out.Metrics["emptcp_time_vs_tcpwifi_pct"]; v > 50 {
		t.Errorf("bad WiFi: eMPTCP time at %v%% of TCP/WiFi, want much faster", v)
	}
}

func TestFig7TracesPresent(t *testing.T) {
	out := quick(t, "fig7")
	if len(out.Order) < 3 {
		t.Fatalf("expected energy traces for three protocols, got %v", out.Order)
	}
	for name, ts := range out.Series {
		if ts.Len() == 0 {
			t.Errorf("series %q is empty", name)
		}
	}
}

func TestFig8(t *testing.T) {
	out := quick(t, "fig8")
	if v := out.Metrics["emptcp_energy_vs_mptcp_pct"]; v >= 100 {
		t.Errorf("random bandwidth: eMPTCP at %v%% of MPTCP energy, want <100%%", v)
	}
	if v := out.Metrics["emptcp_time_vs_mptcp_pct"]; v <= 100 {
		t.Errorf("random bandwidth: eMPTCP time at %v%% of MPTCP, want >100%%", v)
	}
	if v := out.Metrics["emptcp_time_vs_tcpwifi_pct"]; v >= 100 {
		t.Errorf("random bandwidth: eMPTCP time at %v%% of TCP/WiFi, want <100%%", v)
	}
}

func TestFig9LTEActivity(t *testing.T) {
	out := quick(t, "fig9")
	em := out.Metrics["lte_active_frac_eMPTCP"]
	mp := out.Metrics["lte_active_frac_MPTCP"]
	if em >= mp {
		t.Errorf("eMPTCP LTE-active fraction (%v) should be below MPTCP's (%v)", em, mp)
	}
}

func TestFig10(t *testing.T) {
	out := quick(t, "fig10")
	for key, v := range out.Metrics {
		if strings.HasPrefix(key, "emptcp_energy_pct_") && (v < 60 || v >= 105) {
			t.Errorf("%s = %v%%, want below ~100%%", key, v)
		}
		if strings.HasPrefix(key, "emptcp_time_pct_") && v < 95 {
			t.Errorf("%s = %v%%, expected ≥ MPTCP's time", key, v)
		}
	}
}

func TestFig12(t *testing.T) {
	out := quick(t, "fig12")
	if len(out.Order) < 3 {
		t.Fatalf("expected traces, got %v", out.Order)
	}
	if out.Metrics["emptcp_switches"] < 1 {
		t.Error("eMPTCP should switch path sets at least once on the route")
	}
}

func TestFig13(t *testing.T) {
	out := quick(t, "fig13")
	if v := out.Metrics["emptcp_jpb_vs_mptcp_pct"]; v >= 100 {
		t.Errorf("mobility: eMPTCP J/B at %v%% of MPTCP, want <100%%", v)
	}
	if v := out.Metrics["emptcp_down_vs_mptcp_pct"]; v >= 100 {
		t.Errorf("mobility: eMPTCP downloads %v%% of MPTCP, want <100%%", v)
	}
	if v := out.Metrics["emptcp_down_vs_tcpwifi_pct"]; v <= 100 {
		t.Errorf("mobility: eMPTCP downloads %v%% of TCP/WiFi, want >100%%", v)
	}
	if v := out.Metrics["emptcp_jpb_vs_tcpwifi_pct"]; v <= 100 {
		t.Errorf("mobility: eMPTCP J/B at %v%% of TCP/WiFi, want >100%% (TCP/WiFi wins per byte)", v)
	}
}

func TestSec46(t *testing.T) {
	out := quick(t, "sec46")
	if out.Metrics["mdp_always_wifi_only"] != 1 {
		t.Error("MDP policy should degenerate to WiFi-only")
	}
	if v := out.Metrics["emptcp_down_vs_wififirst_pct"]; v <= 100 {
		t.Errorf("eMPTCP should download more than WiFi-First on the route; got %v%%", v)
	}
	if v := out.Metrics["wififirst_time_vs_tcpwifi_pct"]; v < 90 || v > 110 {
		t.Errorf("WiFi-First time at %v%% of TCP/WiFi on static bad WiFi, want ≈100%%", v)
	}
}

func TestFig14(t *testing.T) {
	out := quick(t, "fig14")
	if v := out.Metrics["category_agreement_frac"]; v < 0.99 {
		t.Errorf("category agreement = %v, want ≈1 (draws define categories)", v)
	}
}

func TestFig15(t *testing.T) {
	out := quick(t, "fig15")
	for _, cat := range []string{"bb", "bg", "gb", "gg"} {
		key := "fig15_emptcp_energy_pct_" + cat
		v, ok := out.Metrics[key]
		if !ok {
			t.Fatalf("missing %s", key)
		}
		// Paper: 75–90% reduction → eMPTCP at 10–25% of MPTCP. Allow a
		// wide band; must at least halve it.
		if v > 50 {
			t.Errorf("%s = %v%%, want ≤ 50%% (paper: 10–25%%)", key, v)
		}
	}
}

func TestFig16(t *testing.T) {
	out := quick(t, "fig16")
	// Good-WiFi categories: roughly half of MPTCP's energy.
	for _, cat := range []string{"gb", "gg"} {
		if v := out.Metrics["fig16_emptcp_energy_pct_"+cat]; v > 80 {
			t.Errorf("good-WiFi %s: eMPTCP at %v%% of MPTCP, want ≈50%%", cat, v)
		}
	}
	// Bad-Bad: eMPTCP should not exceed MPTCP.
	if v := out.Metrics["fig16_emptcp_energy_pct_bb"]; v > 105 {
		t.Errorf("bad-bad: eMPTCP at %v%% of MPTCP energy, want ≤ 100%%", v)
	}
	// Bad-Good: similar energy to MPTCP.
	if v := out.Metrics["fig16_emptcp_energy_pct_bg"]; v < 60 || v > 140 {
		t.Errorf("bad-good: eMPTCP at %v%% of MPTCP energy, want ≈100%%", v)
	}
}

func TestFig17(t *testing.T) {
	out := quick(t, "fig17")
	if v := out.Metrics["mptcp_energy_vs_emptcp_pct"]; v < 125 {
		t.Errorf("web: MPTCP at %v%% of eMPTCP's energy, want well above 100%% (paper ~160%%)", v)
	}
	if v := out.Metrics["emptcp_latency_vs_mptcp_pct"]; v > 150 {
		t.Errorf("web: eMPTCP latency at %v%% of MPTCP, want similar", v)
	}
}

func TestOutputRendering(t *testing.T) {
	out := quick(t, "fig1")
	s := out.String()
	if !strings.Contains(s, "Figure 1") || !strings.Contains(s, "metrics:") {
		t.Errorf("rendered output missing sections:\n%s", s)
	}
}

func TestExtStreaming(t *testing.T) {
	out := quick(t, "ext-streaming")
	if v := out.Metrics["emptcp_energy_vs_mptcp_pct"]; v > 75 {
		t.Errorf("streaming: eMPTCP at %v%% of MPTCP energy, want well below (tail drain)", v)
	}
}

func TestExtUpload(t *testing.T) {
	out := quick(t, "ext-upload")
	for _, p := range []string{"MPTCP", "eMPTCP", "TCP over WiFi", "TCP over LTE"} {
		v, ok := out.Metrics["upload_premium_pct_"+p]
		if !ok {
			t.Fatalf("missing premium for %s", p)
		}
		if v <= 105 {
			t.Errorf("%s upload premium = %v%%, want uploads clearly costlier", p, v)
		}
	}
}

func TestExtDevices(t *testing.T) {
	out := quick(t, "ext-devices")
	if out.Metrics["emptcp_energy_J_n5"] >= out.Metrics["emptcp_energy_J_s3"] {
		t.Error("Nexus 5 should consume less than Galaxy S3")
	}
}

func TestExtPredictor(t *testing.T) {
	out := quick(t, "ext-predictor")
	if v := out.Metrics["hw_over_lastvalue_mobili"]; v >= 1.0 {
		t.Errorf("Holt-Winters MAE ratio on mobility trace = %v, want < 1 (beats last-value)", v)
	}
}

func TestExt3G(t *testing.T) {
	out := quick(t, "ext-3g")
	lte, ok1 := out.Metrics["emptcp_energy_J_LTE"]
	g3, ok2 := out.Metrics["emptcp_energy_J_3G"]
	if !ok1 || !ok2 {
		t.Fatal("missing 3G/LTE metrics")
	}
	if lte <= 0 || g3 <= 0 {
		t.Errorf("non-positive energies: lte=%v 3g=%v", lte, g3)
	}
}

func TestOutputCSV(t *testing.T) {
	out := quick(t, "fig1")
	s := out.CSV()
	if !strings.Contains(s, "# Figure 1") || !strings.Contains(s, "Device,WiFi,3G,LTE") {
		t.Errorf("CSV rendering wrong:\n%s", s)
	}
}

func TestExtMultiAP(t *testing.T) {
	out := quick(t, "ext-multiap")
	if out.Metrics["emptcp_lteJ_multi"] >= out.Metrics["emptcp_lteJ_single"] {
		t.Errorf("multi-AP LTE energy (%v) should be below single-AP (%v)",
			out.Metrics["emptcp_lteJ_multi"], out.Metrics["emptcp_lteJ_single"])
	}
}

func TestFig11(t *testing.T) {
	out := quick(t, "fig11")
	if d := out.Metrics["route_duration_s"]; d < 180 || d > 320 {
		t.Errorf("route duration = %v, want ~250 s", d)
	}
	if o := out.Metrics["out_of_range_s"]; o < 20 || o > 180 {
		t.Errorf("out-of-range time = %v s, want a meaningful but minority share", o)
	}
	if len(out.Notes) == 0 || !strings.Contains(out.Notes[0], "#") {
		t.Error("route map missing the AP marker")
	}
}

func TestExtSweep(t *testing.T) {
	out := quick(t, "ext-sweep")
	// Tiny κ must cost more energy on small files than the paper's 1 MB.
	small := out.Metrics["energy_J_kappa64KB"]
	paper := out.Metrics["energy_J_kappa1024KB"]
	if small <= paper {
		t.Errorf("κ=64KB energy (%v) should exceed κ=1MB (%v) on 256 KB files", small, paper)
	}
	// Larger τ waits longer on bad WiFi before the LTE rescue.
	if out.Metrics["completion_s_tau12"] <= out.Metrics["completion_s_tau1"] {
		t.Errorf("τ=12 completion (%v) should exceed τ=1 (%v)",
			out.Metrics["completion_s_tau12"], out.Metrics["completion_s_tau1"])
	}
}

// Full-size regression guards: the quick-mode tests above run always; the
// full-size checks below catch calibration drift against the committed
// EXPERIMENTS.md numbers and are skipped under -short.
func TestFig5FullSize(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size experiment")
	}
	out := ByID("fig5").Run(Config{})
	if v := out.Metrics["emptcp_energy_vs_mptcp_pct"]; v < 55 || v > 80 {
		t.Errorf("full fig5: eMPTCP at %v%% of MPTCP energy, committed value ≈ 67%%", v)
	}
}

func TestFig8FullSize(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size experiment")
	}
	out := ByID("fig8").Run(Config{})
	if v := out.Metrics["emptcp_energy_vs_mptcp_pct"]; v < 80 || v >= 100 {
		t.Errorf("full fig8: eMPTCP at %v%% of MPTCP energy, committed ≈ 90%% (paper 92%%)", v)
	}
	if v := out.Metrics["emptcp_time_vs_mptcp_pct"]; v < 105 || v > 145 {
		t.Errorf("full fig8: eMPTCP time at %v%% of MPTCP, committed ≈ 121%% (paper 122%%)", v)
	}
}

func TestFig13FullSize(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size experiment")
	}
	out := ByID("fig13").Run(Config{})
	if v := out.Metrics["emptcp_jpb_vs_mptcp_pct"]; v < 70 || v >= 100 {
		t.Errorf("full fig13: eMPTCP J/B at %v%% of MPTCP, committed ≈ 84%% (paper 78%%)", v)
	}
}

func TestExtHOL(t *testing.T) {
	out := quick(t, "ext-hol")
	unl := out.Metrics["completion_s_unlimited"]
	// The worst case is a buffer big enough to admit slow-path chunks but
	// too small to ride out their RTT (256 KB here); a starved 64 KB
	// buffer degenerates toward WiFi-only, which is slower than unlimited
	// but less bad.
	mid := out.Metrics["completion_s_256.0 KB"]
	if mid < unl*1.3 {
		t.Errorf("256 KB buffer (%v s) should be much slower than unlimited (%v s)", mid, unl)
	}
	tiny := out.Metrics["completion_s_64.0 KB"]
	if tiny < unl*1.1 {
		t.Errorf("64 KB buffer (%v s) should still lag unlimited (%v s)", tiny, unl)
	}
	big := out.Metrics["completion_s_8.0 MB"]
	if big > unl*1.25 {
		t.Errorf("8 MB buffer (%v s) should approach unlimited (%v s)", big, unl)
	}
}

func TestExtBattery(t *testing.T) {
	out := quick(t, "ext-battery")
	mp := out.Metrics["battery_pct_MPTCP"]
	em := out.Metrics["battery_pct_eMPTCP"]
	if em >= mp {
		t.Errorf("eMPTCP daily battery share (%v%%) should be below MPTCP's (%v%%)", em, mp)
	}
	if mp <= 0 || mp > 50 {
		t.Errorf("MPTCP daily share = %v%%, want a plausible fraction", mp)
	}
}

// TestParallelDeterminism is the acceptance gate for the parallel
// executor: the rendered output of a figure must be byte-identical
// whether its repeated runs execute sequentially or across 8 workers.
func TestParallelDeterminism(t *testing.T) {
	for _, id := range []string{"fig8", "fig14"} {
		t.Run(id, func(t *testing.T) {
			e := ByID(id)
			if e == nil {
				t.Fatalf("experiment %q not registered", id)
			}
			seq := e.Run(Config{Quick: true, Jobs: 1}).String()
			par := e.Run(Config{Quick: true, Jobs: 8}).String()
			if seq != par {
				t.Errorf("%s output differs between -j 1 and -j 8:\n--- j1 ---\n%s\n--- j8 ---\n%s", id, seq, par)
			}
		})
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("registering a duplicate experiment id should panic")
		}
	}()
	register(&Experiment{ID: "fig1", Title: "dup", Paper: "dup", Run: runFig1})
}
