package exp

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/forecast"
	"repro/internal/link"
	"repro/internal/mptcp"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/simrng"
	"repro/internal/stats"
	"repro/internal/tcp"
	"repro/internal/units"
	"repro/internal/workload"
)

// Extension experiments beyond the paper's evaluation: the future-work
// items §7 names (video streaming, uploads), the second device the paper
// describes but mostly does not plot, and a validation of the §3.2
// predictor choice.
func init() {
	register(&Experiment{
		ID:    "ext-streaming",
		Title: "Extension: paced video streaming (§7 future work)",
		Paper: "\"we plan to examine more statistically varied application traffic such as video streaming\"",
		Run:   runExtStreaming,
	})
	register(&Experiment{
		ID:    "ext-upload",
		Title: "Extension: uploads (§7 future work) — uplink power is far higher per Mbps",
		Paper: "\"...as well as upload scenarios\"",
		Run:   runExtUpload,
	})
	register(&Experiment{
		ID:    "ext-devices",
		Title: "Extension: Galaxy S3 vs Nexus 5 across the static lab scenarios",
		Paper: "Table 1 lists both devices; Figure 1 shows the Nexus 5's lower fixed overheads",
		Run:   runExtDevices,
	})
	register(&Experiment{
		ID:    "ext-predictor",
		Title: "Extension: Holt-Winters vs naive predictors on simulated throughput traces (§3.2)",
		Paper: "\"Holt-Winters ... is known to be more accurate than formula-based predictors\"",
		Run:   runExtPredictor,
	})
}

func runExtStreaming(cfg Config) *Output {
	out := newOutput()
	w := workload.DefaultStreaming()
	if cfg.Quick {
		w.Chunks = 15
	}
	t := report.NewTable(
		fmt.Sprintf("Streaming: %d chunks × %v every %.0f s over 12 Mbps WiFi / 4.5 Mbps LTE",
			w.Chunks, w.ChunkSize, w.ChunkInterval),
		"Protocol", "Energy (J)", "Completion (s)", "LTE used")
	runs := cfg.runs(5)
	sc := scenario.StaticLab(cfg.device(), 12, 4.5, w)
	rs := replicateGrid(cfg, sc, labProtos, runs)
	ms := map[scenario.Protocol]*measures{}
	for pi, p := range labProtos {
		m := &measures{}
		lte := false
		for _, r := range rs[pi*runs : (pi+1)*runs] {
			m.energy = append(m.energy, r.Energy.Joules())
			m.time = append(m.time, r.CompletionTime)
			lte = lte || r.LTEUsed
		}
		ms[p] = m
		t.Addf(p.String(), stats.Mean(m.energy), stats.Mean(m.time), fmt.Sprintf("%v", lte))
	}
	out.Tables = append(out.Tables, t)
	out.Metrics["emptcp_energy_vs_mptcp_pct"] =
		stats.Ratio(stats.Mean(ms[scenario.EMPTCP].energy), stats.Mean(ms[scenario.MPTCP].energy))
	out.Notes = append(out.Notes,
		"the paced idle gaps keep MPTCP's LTE radio cycling through its tail for the whole stream; "+
			"eMPTCP's idle rule keeps the cellular subflow down and matches TCP over WiFi")
	return out
}

func runExtUpload(cfg Config) *Output {
	out := newOutput()
	size := units.ByteSize(cfg.scaleMB(16)) * units.MB
	t := report.NewTable(fmt.Sprintf("Upload of %v vs download, 6 Mbps WiFi / 4.5 Mbps LTE", size),
		"Protocol", "Upload energy (J)", "Download energy (J)", "Upload premium")
	protos := []scenario.Protocol{scenario.MPTCP, scenario.EMPTCP, scenario.TCPWiFi, scenario.TCPLTE}
	runs := cfg.runs(3)
	type upDown struct{ up, down float64 }
	rs := repeatRuns(cfg, len(protos)*runs, func(j int, opt scenario.Opts) upDown {
		p, i := protos[j/runs], j%runs
		opt.Seed = cfg.BaseSeed + int64(i)
		// Both directions of one index share the run's recorder slot.
		up := scenario.Run(scenario.StaticLab(cfg.device(), 6, 4.5, workload.FileUpload{Size: size}), p, opt)
		down := scenario.Run(scenario.StaticLab(cfg.device(), 6, 4.5, workload.FileDownload{Size: size}), p, opt)
		return upDown{up: up.Energy.Joules(), down: down.Energy.Joules()}
	})
	for pi, p := range protos {
		var upE, downE []float64
		for _, r := range rs[pi*runs : (pi+1)*runs] {
			upE = append(upE, r.up)
			downE = append(downE, r.down)
		}
		premium := stats.Ratio(stats.Mean(upE), stats.Mean(downE))
		t.Addf(p.String(), stats.Mean(upE), stats.Mean(downE), fmt.Sprintf("%.0f%%", premium))
		out.Metrics["upload_premium_pct_"+p.String()] = premium
	}
	out.Tables = append(out.Tables, t)
	out.Notes = append(out.Notes,
		"uplink costs more everywhere (α_up > α_down on every radio), and most on paths that use LTE")
	return out
}

func runExtDevices(cfg Config) *Output {
	out := newOutput()
	size := workload.FileDownload{Size: units.ByteSize(cfg.scaleMB(64)) * units.MB}
	t := report.NewTable("Galaxy S3 vs Nexus 5: 64 MB over 12 Mbps WiFi / 4.5 Mbps LTE",
		"Device", "Protocol", "Energy (J)", "Time (s)")
	for _, dev := range []*energy.DeviceProfile{energy.GalaxyS3(), energy.Nexus5()} {
		ms := collect(cfg, scenario.StaticLab(dev, 12, 4.5, size), labProtos, cfg.runs(3))
		for _, p := range labProtos {
			m := ms[p]
			t.Addf(dev.Name, p.String(), stats.Mean(m.energy), stats.Mean(m.time))
			if p == scenario.EMPTCP {
				key := "s3"
				if dev.Name != energy.GalaxyS3().Name {
					key = "n5"
				}
				out.Metrics["emptcp_energy_J_"+key] = stats.Mean(m.energy)
			}
		}
	}
	out.Tables = append(out.Tables, t)
	out.Notes = append(out.Notes,
		"the newer Nexus 5 consumes less for every protocol; the protocol ordering is device-independent")
	return out
}

func runExtPredictor(cfg Config) *Output {
	out := newOutput()
	t := report.NewTable("One-step-ahead MAE (Mbps) on simulated WiFi throughput traces",
		"Trace", "Holt-Winters", "EWMA(0.5)", "Last value")
	src := simrng.New(cfg.BaseSeed + 99)
	traces := map[string][]float64{}

	// On-off trace (the §4.3 process sampled at 0.2 s).
	eng := sim.New()
	mod := link.NewOnOffModulator(eng, src.Split(1), units.MbpsRate(12), units.MbpsRate(0.8), 40, false)
	var onoff []float64
	eng.Tick(0.2, func() {
		onoff = append(onoff, src.Jitter(mod.Rate().Mbit(), 0.1))
	})
	eng.Horizon = 400
	eng.Run()
	traces["on-off (§4.3)"] = onoff

	// Mobility trace: the Figure 11 route's distance-driven rate.
	eng2 := sim.New()
	mob := scenario.Mobility(cfg.device())
	proc := mob.WiFi(eng2, src.Split(2))
	var mobility []float64
	eng2.Tick(0.2, func() {
		mobility = append(mobility, src.Jitter(proc.Rate().Mbit(), 0.1))
	})
	eng2.Horizon = 250
	eng2.Run()
	traces["mobility (§4.5)"] = mobility

	order := []string{"on-off (§4.3)", "mobility (§4.5)"}
	for _, name := range order {
		series := traces[name]
		hw := forecast.MAE(forecast.NewHoltWinters(0.5, 0.2), series)
		ew := forecast.MAE(forecast.NewEWMA(0.5), series)
		lv := forecast.MAE(&forecast.LastValue{}, series)
		t.Addf(name, hw, ew, lv)
		out.Metrics["hw_over_lastvalue_"+name[:6]] = hw / lv
	}
	out.Tables = append(out.Tables, t)
	out.Notes = append(out.Notes,
		"Holt-Winters tracks the mobility trace's trends; on the square-wave on-off trace all "+
			"history predictors are comparable (no trend to exploit between jumps)")
	return out
}

func init() {
	register(&Experiment{
		ID:    "ext-3g",
		Title: "Extension: 3G as the cellular interface (Figure 1's other radio)",
		Paper: "the devices carry 3G radios with ~8 J fixed overheads vs LTE's ~12.5 J",
		Run:   runExt3G,
	})
}

func runExt3G(cfg Config) *Output {
	out := newOutput()
	size := workload.FileDownload{Size: units.ByteSize(cfg.scaleMB(64)) * units.MB}
	t := report.NewTable("Cellular = LTE vs 3G: random-bandwidth scenario",
		"Cellular", "Protocol", "Energy (J)", "Time (s)")
	devices := []struct {
		label string
		dev   *energy.DeviceProfile
	}{
		{"LTE", cfg.device()},
		{"3G", cfg.device().WithCellular3G()},
	}
	protos := []scenario.Protocol{scenario.MPTCP, scenario.EMPTCP}
	for _, dc := range devices {
		ms := collect(cfg, scenario.RandomBandwidth(dc.dev, size), protos, cfg.runs(3))
		for _, p := range protos {
			m := ms[p]
			t.Addf(dc.label, p.String(), stats.Mean(m.energy), stats.Mean(m.time))
			if p == scenario.EMPTCP {
				out.Metrics["emptcp_energy_J_"+dc.label] = stats.Mean(m.energy)
			}
		}
	}
	out.Tables = append(out.Tables, t)
	out.Notes = append(out.Notes,
		"3G's smaller fixed overheads cut the switching cost of suspension cycles, but its "+
			"higher per-Mbps power raises steady-state cost — the trade the paper's Figure 1 hints at")
	return out
}

func init() {
	register(&Experiment{
		ID:    "ext-multiap",
		Title: "Extension: multi-AP roaming on the mobility route (toward Croitoru et al., §6)",
		Paper: "§6 discusses MPTCP across multiple APs; here extra APs cover the route's dead zones",
		Run:   runExtMultiAP,
	})
}

func runExtMultiAP(cfg Config) *Output {
	out := newOutput()
	t := report.NewTable("Single AP vs multi-AP roaming, 250 s mobility route",
		"Coverage", "Protocol", "Downloaded (MB)", "Energy (J)", "LTE energy (J)")
	builds := []struct {
		label string
		mk    func(*energy.DeviceProfile) scenario.Scenario
	}{
		{"single AP", scenario.Mobility},
		{"multi-AP", scenario.MobilityMultiAP},
	}
	protos := []scenario.Protocol{scenario.MPTCP, scenario.EMPTCP, scenario.TCPWiFi, scenario.WiFiFirst}
	runs := cfg.runs(3)
	for _, b := range builds {
		sc := b.mk(cfg.device())
		rs := replicateGrid(cfg, sc, protos, runs)
		for pi, p := range protos {
			var dl, e, lteE []float64
			for _, r := range rs[pi*runs : (pi+1)*runs] {
				dl = append(dl, r.Downloaded.Megabytes())
				e = append(e, r.Energy.Joules())
				lteE = append(lteE, r.ByIface[energy.LTE].Joules())
			}
			t.Addf(b.label, p.String(), stats.Mean(dl), stats.Mean(e), stats.Mean(lteE))
			if p == scenario.EMPTCP {
				key := "emptcp_lteJ_single"
				if b.label == "multi-AP" {
					key = "emptcp_lteJ_multi"
				}
				out.Metrics[key] = stats.Mean(lteE)
			}
		}
	}
	out.Tables = append(out.Tables, t)
	out.Notes = append(out.Notes,
		"with the dead zones covered, eMPTCP rides WiFi nearly the whole route and its LTE energy collapses; "+
			"WiFi-First now reacts mid-route because roaming handovers drop the association")
	return out
}

func init() {
	register(&Experiment{
		ID:    "ext-sweep",
		Title: "Extension: κ/τ sensitivity (§4.1's parameters; tuning left as future work by the paper)",
		Paper: "κ=1 MB, τ=3 s \"have worked well for our experiments\"; refining them remains future work",
		Run:   runExtSweep,
	})
}

func runExtSweep(cfg Config) *Output {
	out := newOutput()
	runs := cfg.runs(6)

	// κ sweep: how often does a 256 KB download end up paying for LTE,
	// and what does it cost? Evaluated on moderately-good WiFi where the
	// download outlives τ only if κ is small.
	tk := report.NewTable("κ sweep — 256 KB downloads over 4 Mbps WiFi / 4.5 Mbps LTE",
		"κ", "LTE established (runs)", "Mean energy (J)")
	kappas := []float64{64, 256, 1024, 4096}
	kappaBytes := make([]units.ByteSize, len(kappas))
	for i, k := range kappas {
		kappaBytes[i] = units.ByteSize(k) * units.KB
	}
	kBase, kPoints := scenario.KappaSweep(
		scenario.StaticLab(cfg.device(), 4, 4.5, workload.FileDownload{Size: 256 * units.KB}),
		kappaBytes)
	kRuns := sweepRuns(cfg, runs, kBase, kPoints)
	for ki, kappaKB := range kappas {
		lteRuns := 0
		var es []float64
		for _, r := range kRuns[ki*runs : (ki+1)*runs] {
			if r.LTEUsed {
				lteRuns++
			}
			es = append(es, r.Energy.Joules())
		}
		tk.Addf(fmt.Sprintf("%.0f KB", kappaKB), fmt.Sprintf("%d/%d", lteRuns, runs), stats.Mean(es))
		out.Metrics[fmt.Sprintf("energy_J_kappa%.0fKB", kappaKB)] = stats.Mean(es)
	}
	out.Tables = append(out.Tables, tk)

	// τ sweep: on bad WiFi, τ is the time wasted before LTE rescues the
	// transfer; smaller τ finishes sooner but risks premature
	// establishment on merely-slow-starting connections.
	tt := report.NewTable("τ sweep — 8 MB downloads over 0.5 Mbps WiFi / 4.5 Mbps LTE",
		"τ (s)", "Mean completion (s)", "Mean energy (J)")
	taus := []float64{1, 3, 6, 12}
	tBase, tPoints := scenario.TauSweep(
		scenario.StaticLab(cfg.device(), 0.5, 4.5, workload.FileDownload{Size: 8 * units.MB}),
		taus)
	tRuns := sweepRuns(cfg, runs, tBase, tPoints)
	for ti, tau := range taus {
		var ts, es []float64
		for _, r := range tRuns[ti*runs : (ti+1)*runs] {
			ts = append(ts, r.CompletionTime)
			es = append(es, r.Energy.Joules())
		}
		tt.Addf(fmt.Sprintf("%.0f", tau), stats.Mean(ts), stats.Mean(es))
		out.Metrics[fmt.Sprintf("completion_s_tau%.0f", tau)] = stats.Mean(ts)
	}
	out.Tables = append(out.Tables, tt)
	out.Notes = append(out.Notes,
		"small κ pays the cellular fixed cost on transfers that WiFi would have finished anyway; "+
			"large τ delays the rescue of genuinely bad WiFi — the paper's 1 MB / 3 s sit in the flat middle")
	return out
}

func init() {
	register(&Experiment{
		ID:    "ext-hol",
		Title: "Extension: multipath head-of-line blocking vs receive-buffer size (Chen et al. [4])",
		Paper: "[4] measures MPTCP in wireless networks; small receive buffers + RTT asymmetry stall the fast path",
		Run:   runExtHOL,
	})
}

func runExtHOL(cfg Config) *Output {
	out := newOutput()
	// Buffer effects need a transfer well past slow start; the run is a
	// few simulated minutes at most, so Quick mode does not shrink it.
	size := 16 * units.MB
	t := report.NewTable(
		fmt.Sprintf("%v download, 10 Mbps/30 ms WiFi + 8 Mbps/600 ms LTE (overseas server)", size),
		"Receive buffer", "Completion (s)", "vs unlimited")
	run := func(rb units.ByteSize) float64 {
		eng := sim.New()
		src := simrng.New(cfg.BaseSeed + 7)
		fast := &tcp.Path{Name: "wifi", Capacity: link.NewConstant(units.MbpsRate(10)), BaseRTT: 0.03}
		slow := &tcp.Path{Name: "lte", Capacity: link.NewConstant(units.MbpsRate(8)), BaseRTT: 0.6}
		opts := mptcp.DefaultOptions()
		opts.ReceiveBuffer = rb
		c := mptcp.New(eng, src, opts)
		c.AddSubflow("wifi", energy.WiFi, fast, nil, 0)
		c.AddSubflow("lte", energy.LTE, slow, nil, 0)
		done := -1.0
		c.Download(size, func(at float64) { done = at })
		eng.Horizon = 3600
		eng.Run()
		return done
	}
	buffers := []units.ByteSize{0, 8 * units.MB, 1 * units.MB, 256 * units.KB, 64 * units.KB}
	ds := repeatRuns(cfg, len(buffers), func(i int, _ scenario.Opts) float64 { return run(buffers[i]) })
	unlimited := ds[0]
	for bi, rb := range buffers {
		label := "unlimited"
		if rb > 0 {
			label = rb.String()
		}
		d := ds[bi]
		t.Addf(label, d, fmt.Sprintf("%.2fx", d/unlimited))
		out.Metrics["completion_s_"+label] = d
	}
	out.Tables = append(out.Tables, t)
	out.Notes = append(out.Notes,
		"below the slow path's bandwidth-delay product the receive window is pinned by LTE's in-flight "+
			"data and the WiFi subflow stalls; the worst buffer is one just big enough to admit slow-path "+
			"chunks (256 KB here), while a starved one degenerates toward WiFi-only — why the paper's "+
			"servers (and real MPTCP deployments) need large reordering buffers on asymmetric paths")
	return out
}

func init() {
	register(&Experiment{
		ID:    "ext-battery",
		Title: "Extension: a day's network energy as battery percentage",
		Paper: "the motivation of §1: devices are constrained by available battery power",
		Run:   runExtBattery,
	})
}

// runExtBattery composes a plausible daily mix — web sessions, file
// downloads and a streamed video — and expresses each protocol's network
// energy as a share of the Galaxy S3's battery.
func runExtBattery(cfg Config) *Output {
	out := newOutput()
	dev := cfg.device()
	webSessions := 20
	downloads := 6
	if cfg.Quick {
		webSessions, downloads = 4, 2
	}
	t := report.NewTable(
		fmt.Sprintf("Daily mix on %s: %d web sessions + %d×16 MB downloads + one 2-minute stream (good WiFi / 4.5 Mbps LTE)",
			dev.Name, webSessions, downloads),
		"Protocol", "Energy (J)", "Battery %")
	// One flat index space per protocol: webSessions pages, then the
	// downloads, then the stream. Joules are summed in index order, so the
	// floating-point total is identical at any job count.
	perProto := webSessions + downloads + 1
	joules := repeatRuns(cfg, len(labProtos)*perProto, func(j int, opt scenario.Opts) float64 {
		p, k := labProtos[j/perProto], j%perProto
		var r scenario.Result
		switch {
		case k < webSessions:
			opt.Seed = cfg.BaseSeed + int64(k)
			r = scenario.Run(scenario.WebBrowsing(dev), p, opt)
		case k < webSessions+downloads:
			opt.Seed = cfg.BaseSeed + 100 + int64(k-webSessions)
			r = scenario.Run(scenario.Wild(dev, scenario.Good, scenario.Good, scenario.WDC,
				workload.FileDownload{Size: 16 * units.MB}), p, opt)
		default:
			opt.Seed = cfg.BaseSeed + 200
			r = scenario.Run(scenario.StaticLab(dev, 12, 4.5, workload.DefaultStreaming()), p, opt)
		}
		return r.Energy.Joules()
	})
	for pi, p := range labProtos {
		total := 0.0
		for _, j := range joules[pi*perProto : (pi+1)*perProto] {
			total += j
		}
		pct := dev.BatteryFraction(units.Energy(total)) * 100
		t.Addf(p.String(), total, pct)
		out.Metrics["battery_pct_"+p.String()] = pct
	}
	out.Tables = append(out.Tables, t)
	out.Notes = append(out.Notes,
		"the daily delta is dominated by the web sessions' avoided promotions and tails — "+
			"exactly the small-transfer regime delayed establishment was designed for")
	return out
}
