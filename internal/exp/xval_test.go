package exp

import (
	"strings"
	"testing"
)

// TestXvalWithinBands is the cross-validation tier's acceptance gate: on
// both the quick and the full grid, every fluid-vs-packet completion-time
// ratio must sit inside its declared tolerance band.
func TestXvalWithinBands(t *testing.T) {
	e := ByID("xval")
	if e == nil {
		t.Fatal("xval experiment not registered")
	}
	for _, quick := range []bool{true, false} {
		out := e.Run(Config{Quick: quick})
		if frac := out.Metrics["xval_within_band_fraction"]; frac != 1.0 {
			t.Errorf("quick=%v: within-band fraction %.3f, want 1.0\n%s", quick, frac, out)
		}
		if out.Metrics["xval_cells"] <= 0 {
			t.Errorf("quick=%v: empty grid", quick)
		}
		// A degenerate ratio of 0 means a model failed to complete a cell
		// inside the horizon; the bands would catch it, but name it.
		if out.Metrics["xval_ratio_min"] <= 0 {
			t.Errorf("quick=%v: a cell did not complete\n%s", quick, out)
		}
	}
}

// TestXvalDeterministic: the table must be byte-identical across runs and
// worker counts — the packet model is deterministic and the fluid RTT
// jitter is seeded per cell.
func TestXvalDeterministic(t *testing.T) {
	e := ByID("xval")
	first := e.Run(Config{Quick: true, Jobs: 1}).String()
	again := e.Run(Config{Quick: true}).String()
	if first != again {
		t.Fatalf("xval output changed across runs/worker counts:\n--- jobs=1\n%s\n--- default\n%s", first, again)
	}
	if !strings.Contains(first, "Subflows") {
		t.Fatalf("unexpected table shape:\n%s", first)
	}
}

// TestXvalRegisteredLast pins the registry position: xval.go sorts after
// every other experiment file, so `emptcpsim all` keeps the pre-existing
// experiments' bytes as an exact prefix and downstream golden files stay
// stable as this family evolves.
func TestXvalRegisteredLast(t *testing.T) {
	ids := IDs()
	if len(ids) == 0 || ids[len(ids)-1] != "xval" {
		t.Fatalf("xval must register last, got order %v", ids)
	}
}
