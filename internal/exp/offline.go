package exp

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/eib"
	"repro/internal/energy"
	"repro/internal/phy"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/units"
)

func init() {
	register(&Experiment{
		ID:    "fig1",
		Title: "Fixed energy cost: WiFi and cellular (promotion + tail + association)",
		Paper: "WiFi ≈ 0.15/0.06 J, 3G ≈ 7–8 J, LTE ≈ 11.5–12.5 J; Nexus 5 slightly below Galaxy S3",
		Run:   runFig1,
	})
	register(&Experiment{
		ID:    "table1",
		Title: "Mobile devices",
		Paper: "Samsung Galaxy S3 and LG Nexus 5 specifications",
		Run:   runTable1,
	})
	register(&Experiment{
		ID:    "fig3",
		Title: "Energy efficiency per downloaded byte relative to best single path (Galaxy S3)",
		Paper: "grey-scale heat map with a V-shaped region where both interfaces are most efficient",
		Run:   runFig3,
	})
	register(&Experiment{
		ID:    "table2",
		Title: "Energy Information Base example",
		Paper: "LTE=1 Mbps row: LTE-only below 0.134, WiFi-only at/above 0.502 Mbps",
		Run:   runTable2,
	})
	register(&Experiment{
		ID:    "fig4",
		Title: "Operating region where MPTCP is most efficient for an entire transfer",
		Paper: "region grows with download size: 1 MB ⊂ 4 MB ⊂ 16 MB",
		Run:   runFig4,
	})
}

func runFig1(cfg Config) *Output {
	out := newOutput()
	t := report.NewTable("Figure 1 — fixed energy overhead (J)",
		"Device", "WiFi", "3G", "LTE")
	for _, d := range []*energy.DeviceProfile{energy.GalaxyS3(), energy.Nexus5()} {
		wifi := d.Radios[energy.WiFi].FixedOverhead().Joules()
		g3 := d.Radios[energy.Cell3G].FixedOverhead().Joules()
		lte := d.Radios[energy.LTE].FixedOverhead().Joules()
		t.Addf(d.Name, wifi, g3, lte)
		key := "s3"
		if d.Name != energy.GalaxyS3().Name {
			key = "n5"
		}
		out.Metrics[key+"_wifi_J"] = wifi
		out.Metrics[key+"_3g_J"] = g3
		out.Metrics[key+"_lte_J"] = lte
	}
	out.Tables = append(out.Tables, t)
	out.Notes = append(out.Notes,
		"cellular promotion and tail dominate; the LTE tail alone lasts ~11.5 s")
	return out
}

func runTable1(cfg Config) *Output {
	out := newOutput()
	t := report.NewTable("Table 1 — mobile devices",
		"Field", "Samsung Galaxy S3", "LG Nexus 5")
	s3, n5 := energy.GalaxyS3(), energy.Nexus5()
	rows := []struct{ f, a, b string }{
		{"Release Date", s3.ReleaseDate, n5.ReleaseDate},
		{"App. Processor", s3.AppProcessor, n5.AppProcessor},
		{"Semiconductor", s3.Semiconductor, n5.Semiconductor},
		{"Android Version", s3.Android, n5.Android},
		{"Kernel Version", s3.Kernel, n5.Kernel},
		{"WiFi chipset", s3.WiFiChipset, n5.WiFiChipset},
	}
	for _, r := range rows {
		t.Add(r.f, r.a, r.b)
	}
	out.Tables = append(out.Tables, t)
	return out
}

func runFig3(cfg Config) *Output {
	out := newOutput()
	n := 40
	if cfg.Quick {
		n = 16
	}
	h := eib.RelativeEfficiencyHeatmap(cfg.device(), units.MbpsRate(10), units.MbpsRate(10), n)
	out.Notes = append(out.Notes, report.HeatmapASCII(h.Rel,
		func(i int) string { return fmt.Sprintf("%4.1f Mb", h.LTE[i].Mbit()) },
		"LTE (rows, Mbps) × WiFi 0→10 Mbps (cols); darker = MPTCP more efficient"))
	frac := h.MPTCPBestFraction()
	out.Metrics["mptcp_best_fraction"] = frac
	// Row-wise V summary: for a few LTE rows, the WiFi interval where
	// both wins.
	t := report.NewTable("Figure 3 — WiFi interval (Mbps) where both interfaces are most efficient",
		"LTE (Mbps)", "from", "to")
	tb := eib.Generate(cfg.device(), eib.DefaultConfig())
	for _, lte := range []float64{2, 4, 6, 8, 10} {
		t1, t2 := tb.Thresholds(units.MbpsRate(lte))
		t.Addf(lte, t1.Mbit(), t2.Mbit())
	}
	out.Tables = append(out.Tables, t)
	return out
}

func runTable2(cfg Config) *Output {
	out := newOutput()
	tb := eib.Generate(cfg.device(), eib.DefaultConfig())
	t := report.NewTable("Table 2 — Energy Information Base (WiFi thresholds in Mbps)",
		"LTE Thpt (Mbps)", "LTE-only below", "WiFi-only at least", "paper LTE-only", "paper WiFi-only")
	paper := map[float64][2]float64{
		0.5: {0.043, 0.234}, 1.0: {0.134, 0.502}, 1.5: {0.209, 0.803}, 2.0: {0.304, 1.070},
	}
	for _, lte := range []float64{0.5, 1.0, 1.5, 2.0, 4.0, 8.0} {
		t1, t2 := tb.Thresholds(units.MbpsRate(lte))
		p, ok := paper[lte]
		pa, pb := "—", "—"
		if ok {
			pa, pb = fmt.Sprintf("%.3f", p[0]), fmt.Sprintf("%.3f", p[1])
		}
		t.Add(fmt.Sprintf("%.1f", lte), fmt.Sprintf("%.3f", t1.Mbit()), fmt.Sprintf("%.3f", t2.Mbit()), pa, pb)
		if ok {
			out.Metrics[fmt.Sprintf("t2_err_pct_lte%.1f", lte)] = (t2.Mbit() - p[1]) / p[1] * 100
		}
	}
	out.Tables = append(out.Tables, t)
	return out
}

func runFig4(cfg Config) *Output {
	out := newOutput()
	d := cfg.device()
	n := 24
	if cfg.Quick {
		n = 12
	}
	t := report.NewTable("Figure 4 — LTE interval (Mbps) where MPTCP most efficiently completes the whole transfer",
		"WiFi (Mbps)", "1 MB", "4 MB", "16 MB")
	sizes := []struct {
		label string
		bytes units.ByteSize
	}{{"1 MB", units.MB}, {"4 MB", 4 * units.MB}, {"16 MB", 16 * units.MB}}
	// The per-size region sweeps are independent grid computations; fan
	// them across the pool.
	regs := repeatRuns(cfg, len(sizes), func(i int, _ scenario.Opts) eib.Region {
		return eib.OperatingRegion(d, sizes[i].bytes, units.MbpsRate(6), units.MbpsRate(12), n)
	})
	regions := map[string]eib.Region{}
	for i, size := range sizes {
		regions[size.label] = regs[i]
		out.Metrics["area_"+strings.ReplaceAll(size.label, " ", "")] = regs[i].Area()
	}
	r1 := regions["1 MB"]
	for i := range r1.WiFi {
		row := []string{fmt.Sprintf("%.2f", r1.WiFi[i].Mbit())}
		for _, label := range []string{"1 MB", "4 MB", "16 MB"} {
			r := regions[label]
			if r.LTEMin[i] != r.LTEMin[i] { // NaN
				row = append(row, "—")
			} else {
				row = append(row, fmt.Sprintf("[%.1f, %.1f]", r.LTEMin[i], r.LTEMax[i]))
			}
		}
		t.Add(row...)
	}
	out.Tables = append(out.Tables, t)
	out.Notes = append(out.Notes, "κ = 1 MB is chosen because MPTCP rarely beats single-path TCP below 1 MB")
	return out
}

func init() {
	register(&Experiment{
		ID:    "fig11",
		Title: "Mobile scenario route inside the UMass CS building",
		Paper: "route starts at the blue point; red square is the AP; dashed circle its usable range",
		Run:   runFig11,
	})
}

// runFig11 renders the Figure 11 route as an ASCII map: the AP (#), its
// usable-range boundary (·), the walked path (*), start (S) and end (E).
func runFig11(cfg Config) *Output {
	out := newOutput()
	route, ap := phy.UMassCSRoute()
	cell := phy.DefaultWiFiCell()

	const cols, rows = 68, 24
	minX, maxX := -10.0, 85.0
	minY, maxY := -12.0, 36.0
	grid := make([][]rune, rows)
	for i := range grid {
		grid[i] = make([]rune, cols)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	put := func(p phy.Point, r rune) {
		c := int((p.X - minX) / (maxX - minX) * float64(cols-1))
		rw := int((p.Y - minY) / (maxY - minY) * float64(rows-1))
		if c >= 0 && c < cols && rw >= 0 && rw < rows {
			grid[rows-1-rw][c] = r
		}
	}
	// Usable-range circle.
	for a := 0.0; a < 360; a++ {
		rad := a * math.Pi / 180
		put(phy.Point{
			X: ap.X + cell.UsableRange*math.Cos(rad),
			Y: ap.Y + cell.UsableRange*math.Sin(rad),
		}, '·')
	}
	// The walked path, sampled every second.
	for tm := 0.0; tm <= route.Duration(); tm++ {
		put(route.PositionAt(tm), '*')
	}
	put(route.PositionAt(0), 'S')
	put(route.PositionAt(route.Duration()), 'E')
	put(ap, '#')

	var m strings.Builder
	m.WriteString("Figure 11 — route (S start, E end, * path, # AP, · usable range edge)\n")
	for _, row := range grid {
		m.WriteString(string(row))
		m.WriteString("\n")
	}
	out.Notes = append(out.Notes, m.String())

	// Quantify the route the way §4.5 uses it.
	outOfRange := 0.0
	for tm := 0.0; tm < route.Duration(); tm++ {
		if cell.GoodputAt(route.PositionAt(tm).Dist(ap)) == 0 {
			outOfRange++
		}
	}
	out.Metrics["route_duration_s"] = route.Duration()
	out.Metrics["route_length_m"] = route.Length()
	out.Metrics["out_of_range_s"] = outOfRange
	return out
}
