// Package exp is the experiment harness: one runner per table and figure
// in the paper's evaluation, each regenerating the same rows or series the
// paper reports (shape, not absolute testbed numbers). The per-experiment
// index lives in DESIGN.md §3; measured-vs-paper results are recorded in
// EXPERIMENTS.md.
package exp

import (
	"fmt"
	"sort"

	"repro/internal/energy"
	"repro/internal/report"
	"repro/internal/stats"
)

// Config parameterizes an experiment run.
type Config struct {
	// Device is the handset model; nil selects the Galaxy S3, the
	// paper's primary device.
	Device *energy.DeviceProfile
	// BaseSeed offsets all run seeds, for re-running with fresh draws.
	BaseSeed int64
	// Quick shrinks transfer sizes and repetition counts (~10x) so the
	// whole suite can run in benchmark loops; headline shapes persist.
	Quick bool
}

func (c Config) device() *energy.DeviceProfile {
	if c.Device != nil {
		return c.Device
	}
	return energy.GalaxyS3()
}

// runs scales a repetition count down in Quick mode (minimum 2 so SEM is
// defined).
func (c Config) runs(full int) int {
	if !c.Quick {
		return full
	}
	n := full / 3
	if n < 2 {
		n = 2
	}
	return n
}

// scaleMB shrinks a transfer size (in MB) in Quick mode.
func (c Config) scaleMB(mb float64) float64 {
	if !c.Quick {
		return mb
	}
	s := mb / 8
	if s < 0.25 {
		s = 0.25
	}
	return s
}

// Output is what an experiment produces.
type Output struct {
	Tables []*report.Table
	// Series holds named traces for the trace figures; Order lists their
	// display order.
	Series map[string]*stats.TimeSeries
	Order  []string
	// Notes carry prose observations printed after the tables.
	Notes []string
	// Metrics expose headline numbers for EXPERIMENTS.md and tests.
	Metrics map[string]float64
}

func newOutput() *Output {
	return &Output{Series: map[string]*stats.TimeSeries{}, Metrics: map[string]float64{}}
}

func (o *Output) addSeries(name string, ts *stats.TimeSeries) {
	if ts == nil {
		return
	}
	o.Series[name] = ts
	o.Order = append(o.Order, name)
}

// CSV renders the output's tables as CSV blocks (titles as comments),
// skipping traces and notes.
func (o *Output) CSV() string {
	s := ""
	for _, t := range o.Tables {
		if t.Title != "" {
			s += "# " + t.Title + "\n"
		}
		s += t.CSV() + "\n"
	}
	return s
}

// String renders the whole output.
func (o *Output) String() string {
	s := ""
	for _, t := range o.Tables {
		s += t.String() + "\n"
	}
	if len(o.Order) > 0 {
		s += report.SeriesBlock("traces:", o.Order, o.Series, 72) + "\n"
	}
	for _, n := range o.Notes {
		s += "note: " + n + "\n"
	}
	if len(o.Metrics) > 0 {
		keys := make([]string, 0, len(o.Metrics))
		for k := range o.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		s += "metrics:\n"
		for _, k := range keys {
			s += fmt.Sprintf("  %-44s %s\n", k, report.FormatFloat(o.Metrics[k]))
		}
	}
	return s
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	// ID is the paper's label: "fig5", "table2", "sec46", ...
	ID string
	// Title describes what the experiment shows.
	Title string
	// Paper summarizes the result the paper reports, for side-by-side
	// comparison.
	Paper string
	// Run executes the experiment.
	Run func(cfg Config) *Output
}

// registry holds all experiments in paper order.
var registry []*Experiment

func register(e *Experiment) { registry = append(registry, e) }

// All returns every experiment in paper order.
func All() []*Experiment {
	out := make([]*Experiment, len(registry))
	copy(out, registry)
	return out
}

// ByID returns the experiment with the given ID, or nil.
func ByID(id string) *Experiment {
	for _, e := range registry {
		if e.ID == id {
			return e
		}
	}
	return nil
}

// IDs lists all experiment IDs in order.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	return ids
}
