// Package exp is the experiment harness: one runner per table and figure
// in the paper's evaluation, each regenerating the same rows or series the
// paper reports (shape, not absolute testbed numbers). The per-experiment
// index lives in DESIGN.md §3; measured-vs-paper results are recorded in
// EXPERIMENTS.md.
package exp

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/energy"
	"repro/internal/lockstep"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Config parameterizes an experiment run.
type Config struct {
	// Device is the handset model; nil selects the Galaxy S3, the
	// paper's primary device.
	Device *energy.DeviceProfile
	// BaseSeed offsets all run seeds, for re-running with fresh draws.
	BaseSeed int64
	// Quick shrinks transfer sizes and repetition counts (~10x) so the
	// whole suite can run in benchmark loops; headline shapes persist.
	Quick bool
	// Jobs caps the worker count for repeated seeded runs: 1 forces the
	// sequential path, 0 (or negative) selects all cores. Results are
	// merged in seed order, so output is byte-identical at any setting.
	Jobs int
	// Trace, when non-nil, collects structured per-run trace events and
	// metrics: every repeated-run group reserves one recorder slot per
	// seeded run, and the collector merges outputs in run-index order, so
	// trace files are byte-identical at any Jobs setting. Use it with a
	// single experiment so the run numbering stays meaningful.
	Trace *trace.Collector
	// Cache, when non-nil, memoizes scenario runs across experiments:
	// overlapping grids (shared baselines, repeated ablation arms)
	// simulate each distinct (scenario, protocol, seed, options) run
	// once. Tables are byte-identical with the cache on or off.
	Cache *scenario.RunCache
	// NoFork disables checkpoint/fork prefix sharing for sweep families,
	// simulating every sweep point in full. Output is byte-identical
	// either way; forking only changes wall-clock time.
	NoFork bool
	// NoLockstep disables lane-batched replication (internal/lockstep)
	// for repeated same-scenario runs, simulating every seed through the
	// scalar engine. Output is byte-identical either way; lockstep only
	// changes wall-clock time.
	NoLockstep bool
}

func (c Config) device() *energy.DeviceProfile {
	if c.Device != nil {
		return c.Device
	}
	return energy.GalaxyS3()
}

// runs scales a repetition count down in Quick mode (minimum 2 so SEM is
// defined).
func (c Config) runs(full int) int {
	if !c.Quick {
		return full
	}
	n := full / 3
	if n < 2 {
		n = 2
	}
	return n
}

// scaleMB shrinks a transfer size (in MB) in Quick mode.
func (c Config) scaleMB(mb float64) float64 {
	if !c.Quick {
		return mb
	}
	s := mb / 8
	if s < 0.25 {
		s = 0.25
	}
	return s
}

// pool returns the worker pool for this configuration.
func (c Config) pool() *runner.Pool { return runner.New(c.Jobs) }

// repeatRuns evaluates mk(0..n-1) — one independent seeded run per index —
// across the configuration's worker pool and returns the results in index
// order. Every repeated-run loop in the harness goes through here, so
// parallel and sequential executions reduce over identical slices and
// every table regenerates bit-identically.
//
// Each index receives a base scenario.Opts carrying its run's trace
// recorder (nil when tracing is off) and the configuration's run cache;
// mk fills in the seed and any other per-run options. Batches are
// reserved before the fan-out, on the single orchestration goroutine, so
// run numbering is deterministic too.
func repeatRuns[T any](cfg Config, n int, mk func(i int, opt scenario.Opts) T) []T {
	batch := cfg.Trace.Batch(n)
	return runner.Map(cfg.pool(), n, func(i int) T {
		return mk(i, scenario.Opts{Recorder: batch.Recorder(i), Cache: cfg.Cache})
	})
}

// execPath names the execution strategies a replication group can take.
// selectPath picks exactly one; the table test in dispatch_test.go pins
// the choice for every eligibility combination so an eligibility edit
// cannot silently disable a fast path.
type execPath int

const (
	pathScalar   execPath = iota // independent scenario.Run per seed
	pathCached   execPath = iota // scalar runs memoized through cfg.Cache
	pathFork     execPath = iota // checkpoint/fork prefix sharing (sweeps)
	pathLockstep execPath = iota // lane-batched replication (lockstep.Run)
)

func (p execPath) String() string {
	switch p {
	case pathCached:
		return "cached"
	case pathFork:
		return "fork"
	case pathLockstep:
		return "lockstep"
	default:
		return "scalar"
	}
}

// selectPath decides how a group of k same-scenario replications (or, with
// sweep set, one k-seeded sweep family) executes. Tracing observes runs
// in-line and always forces the scalar path; the cache composes with every
// path, so pathCached is reported only when no batching applies.
func selectPath(cfg Config, sc scenario.Scenario, proto scenario.Protocol, k int, sweep bool) execPath {
	opt := scenario.Opts{Cache: cfg.Cache}
	if cfg.Trace == nil {
		if sweep {
			if !cfg.NoFork && scenario.ForkEligible(sc, proto, opt) {
				return pathFork
			}
		} else if !cfg.NoLockstep && k >= 4 && lockstep.Eligible(sc, proto, opt) {
			return pathLockstep
		}
	}
	if cfg.Cache != nil {
		if _, ok := scenario.CacheKey(sc, proto, opt); ok {
			return pathCached
		}
	}
	return pathScalar
}

// replicateGrid evaluates a protocol × seed grid over one scenario —
// protocol-major, seeds contiguous (results[pi*runs+s], seed BaseSeed+s)
// — routing each protocol's replication block through selectPath: a
// lockstep-eligible block runs as one lane batch, everything else takes
// the scalar worker-pool path. Results are bit-identical either way.
func replicateGrid(cfg Config, sc scenario.Scenario, protos []scenario.Protocol, runs int) []scenario.Result {
	lanes := false
	for _, p := range protos {
		if selectPath(cfg, sc, p, runs, false) == pathLockstep {
			lanes = true
			break
		}
	}
	if !lanes {
		return repeatRuns(cfg, len(protos)*runs, func(j int, opt scenario.Opts) scenario.Result {
			opt.Seed = cfg.BaseSeed + int64(j%runs)
			return scenario.Run(sc, protos[j/runs], opt)
		})
	}
	seeds := make([]int64, runs)
	for s := range seeds {
		seeds[s] = cfg.BaseSeed + int64(s)
	}
	groups := runner.Map(cfg.pool(), len(protos), func(pi int) []scenario.Result {
		p := protos[pi]
		if selectPath(cfg, sc, p, runs, false) == pathLockstep {
			return lockstep.Run(sc, p, seeds, scenario.Opts{Cache: cfg.Cache})
		}
		out := make([]scenario.Result, runs)
		for s := range out {
			out[s] = scenario.Run(sc, p, scenario.Opts{Seed: seeds[s], Cache: cfg.Cache})
		}
		return out
	})
	out := make([]scenario.Result, 0, len(protos)*runs)
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}

// sweepRuns evaluates one sweep family — len(points) parameterisations ×
// nSeeds seeded repetitions — and returns results point-major
// (results[p*nSeeds+s]), the layout the sweep tables consume. Each seed's
// points form one prefix-shared fork tree (scenario.RunSweep) and one
// worker-pool item, so seeds parallelize under -j while forks within a
// tree stay sequential on one RunState. Results are bit-identical to
// running every point individually; tracing (which observes runs in-line)
// and NoFork fall back to exactly that, with the same recorder numbering
// as any other point-major grid.
func sweepRuns(cfg Config, nSeeds int, base scenario.Scenario, points []scenario.SweepPoint) []scenario.Result {
	if selectPath(cfg, base, scenario.EMPTCP, nSeeds, true) != pathFork {
		return repeatRuns(cfg, len(points)*nSeeds, func(j int, opt scenario.Opts) scenario.Result {
			opt.Seed = cfg.BaseSeed + int64(j%nSeeds)
			return scenario.Run(points[j/nSeeds].Scenario, scenario.EMPTCP, opt)
		})
	}
	trees := runner.Map(cfg.pool(), nSeeds, func(s int) []scenario.Result {
		return scenario.RunSweep(base, points, scenario.EMPTCP,
			scenario.Opts{Seed: cfg.BaseSeed + int64(s), Cache: cfg.Cache})
	})
	out := make([]scenario.Result, len(points)*nSeeds)
	for s, tree := range trees {
		for p := range points {
			out[p*nSeeds+s] = tree[p]
		}
	}
	return out
}

// Output is what an experiment produces.
type Output struct {
	Tables []*report.Table
	// Series holds named traces for the trace figures; Order lists their
	// display order.
	Series map[string]*stats.TimeSeries
	Order  []string
	// Notes carry prose observations printed after the tables.
	Notes []string
	// Metrics expose headline numbers for EXPERIMENTS.md and tests.
	Metrics map[string]float64
}

func newOutput() *Output {
	return &Output{Series: map[string]*stats.TimeSeries{}, Metrics: map[string]float64{}}
}

func (o *Output) addSeries(name string, ts *stats.TimeSeries) {
	if ts == nil {
		return
	}
	o.Series[name] = ts
	o.Order = append(o.Order, name)
}

// CSV renders the output's tables as CSV blocks (titles as comments),
// skipping traces and notes.
func (o *Output) CSV() string {
	var b strings.Builder
	for _, t := range o.Tables {
		if t.Title != "" {
			b.WriteString("# " + t.Title + "\n")
		}
		b.WriteString(t.CSV())
		b.WriteString("\n")
	}
	return b.String()
}

// String renders the whole output.
func (o *Output) String() string {
	var b strings.Builder
	for _, t := range o.Tables {
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	if len(o.Order) > 0 {
		b.WriteString(report.SeriesBlock("traces:", o.Order, o.Series, 72))
		b.WriteString("\n")
	}
	for _, n := range o.Notes {
		b.WriteString("note: " + n + "\n")
	}
	if len(o.Metrics) > 0 {
		keys := make([]string, 0, len(o.Metrics))
		for k := range o.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("metrics:\n")
		for _, k := range keys {
			fmt.Fprintf(&b, "  %-44s %s\n", k, report.FormatFloat(o.Metrics[k]))
		}
	}
	return b.String()
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	// ID is the paper's label: "fig5", "table2", "sec46", ...
	ID string
	// Title describes what the experiment shows.
	Title string
	// Paper summarizes the result the paper reports, for side-by-side
	// comparison.
	Paper string
	// Run executes the experiment.
	Run func(cfg Config) *Output
}

// registry holds all experiments in paper order; byID indexes them for
// O(1) lookup.
var (
	registry []*Experiment
	byID     = map[string]*Experiment{}
)

func register(e *Experiment) {
	if _, dup := byID[e.ID]; dup {
		panic(fmt.Sprintf("exp: duplicate experiment id %q", e.ID))
	}
	byID[e.ID] = e
	registry = append(registry, e)
}

// All returns every experiment in paper order.
func All() []*Experiment {
	out := make([]*Experiment, len(registry))
	copy(out, registry)
	return out
}

// ByID returns the experiment with the given ID, or nil.
func ByID(id string) *Experiment { return byID[id] }

// IDs lists all experiment IDs in order.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	return ids
}
