package mptcp

import (
	"testing"
	"testing/quick"

	"repro/internal/energy"
	"repro/internal/link"
	"repro/internal/sim"
	"repro/internal/simrng"
	"repro/internal/tcp"
	"repro/internal/units"
)

type env struct {
	eng  *sim.Engine
	src  *simrng.Source
	wifi *tcp.Path
	lte  *tcp.Path
}

func newEnv(wifiMbps, lteMbps float64) *env {
	eng := sim.New()
	return &env{
		eng:  eng,
		src:  simrng.New(42),
		wifi: &tcp.Path{Name: "wifi", Capacity: link.NewConstant(units.MbpsRate(wifiMbps)), BaseRTT: 0.03},
		lte:  &tcp.Path{Name: "lte", Capacity: link.NewConstant(units.MbpsRate(lteMbps)), BaseRTT: 0.07},
	}
}

func (e *env) twoPath(opts Options) *Connection {
	c := New(e.eng, e.src, opts)
	c.AddSubflow("wifi", energy.WiFi, e.wifi, nil, 0)
	c.AddSubflow("lte", energy.LTE, e.lte, nil, 0)
	return c
}

func TestAggregatesBandwidth(t *testing.T) {
	// The headline MPTCP benefit: throughput ≈ sum of both paths.
	e := newEnv(8, 6)
	c := e.twoPath(DefaultOptions())
	done := -1.0
	c.Download(64*units.MB, func(at float64) { done = at })
	e.eng.Horizon = 300
	e.eng.Run()
	if done < 0 {
		t.Fatal("download did not complete")
	}
	ideal := units.MbpsRate(14).TimeToSend(64 * units.MB).Seconds()
	if done > ideal*1.6 {
		t.Errorf("download took %.1f s, aggregate-ideal %.1f s — not aggregating", done, ideal)
	}
	// Both interfaces must have carried substantial data.
	w := c.SubflowByIface(energy.WiFi).BytesDelivered
	l := c.SubflowByIface(energy.LTE).BytesDelivered
	if w < 8*units.MB || l < 8*units.MB {
		t.Errorf("unbalanced split: wifi=%v lte=%v", w, l)
	}
}

func TestFasterThanSinglePath(t *testing.T) {
	run := func(two bool) float64 {
		e := newEnv(6, 6)
		c := New(e.eng, e.src, DefaultOptions())
		c.AddSubflow("wifi", energy.WiFi, e.wifi, nil, 0)
		if two {
			c.AddSubflow("lte", energy.LTE, e.lte, nil, 0)
		}
		done := -1.0
		c.Download(32*units.MB, func(at float64) { done = at })
		e.eng.Horizon = 400
		e.eng.Run()
		return done
	}
	single, multi := run(false), run(true)
	if single < 0 || multi < 0 {
		t.Fatal("a run did not complete")
	}
	if multi > single*0.75 {
		t.Errorf("MPTCP (%.1f s) not meaningfully faster than single path (%.1f s)", multi, single)
	}
}

func TestRequestQueueOrder(t *testing.T) {
	e := newEnv(10, 5)
	c := e.twoPath(DefaultOptions())
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		c.Enqueue(&Request{Size: 2 * units.MB, OnComplete: func(float64) { order = append(order, i) }})
	}
	e.eng.Horizon = 100
	e.eng.Run()
	if len(order) != 3 {
		t.Fatalf("completions = %v, want 3", order)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("requests completed out of order: %v", order)
		}
	}
	if !c.Done() {
		t.Error("Done() = false after all requests completed")
	}
}

func TestZeroSizeRequestCompletesImmediately(t *testing.T) {
	e := newEnv(10, 5)
	c := e.twoPath(DefaultOptions())
	fired := false
	c.Enqueue(&Request{Size: 0, OnComplete: func(float64) { fired = true }})
	if !fired {
		t.Error("zero-size request did not complete synchronously")
	}
}

func TestBackupSubflowCarriesNothing(t *testing.T) {
	e := newEnv(10, 5)
	c := e.twoPath(DefaultOptions())
	lte := c.SubflowByIface(energy.LTE)
	// Put LTE in backup before any data flows.
	c.SetBackup(lte, true)
	c.Download(16*units.MB, nil)
	e.eng.Horizon = 120
	e.eng.Run()
	if lte.BytesDelivered != 0 {
		t.Errorf("backup subflow delivered %v", lte.BytesDelivered)
	}
	if c.SubflowByIface(energy.WiFi).BytesDelivered != 16*units.MB {
		t.Error("WiFi subflow did not carry the whole transfer")
	}
}

func TestBackupResumeCarriesData(t *testing.T) {
	e := newEnv(2, 8)
	c := e.twoPath(DefaultOptions())
	lte := c.SubflowByIface(energy.LTE)
	c.SetBackup(lte, true)
	c.Download(32*units.MB, nil)
	e.eng.RunUntil(10)
	before := lte.BytesDelivered
	c.SetBackup(lte, false)
	e.eng.RunUntil(60)
	if lte.BytesDelivered <= before {
		t.Error("resumed subflow carried no data")
	}
}

func TestSubflowByIfaceAndMeta(t *testing.T) {
	e := newEnv(10, 5)
	c := e.twoPath(DefaultOptions())
	if got := Iface(c.SubflowByIface(energy.LTE)); got != energy.LTE {
		t.Errorf("Iface = %v, want LTE", got)
	}
	if c.SubflowByIface(energy.Cell3G) != nil {
		t.Error("SubflowByIface for absent interface should be nil")
	}
	var bare tcp.Subflow
	if Iface(&bare) != -1 {
		t.Error("Iface of unbound subflow should be -1")
	}
}

func TestOnDeliveredMetering(t *testing.T) {
	e := newEnv(10, 5)
	c := e.twoPath(DefaultOptions())
	var perIface [energy.NumInterfaces]units.ByteSize
	c.OnDelivered = func(sf *tcp.Subflow, iface energy.Interface, n units.ByteSize) {
		perIface[iface] += n
	}
	c.Download(8*units.MB, nil)
	e.eng.Horizon = 60
	e.eng.Run()
	total := perIface[energy.WiFi] + perIface[energy.LTE]
	if diff := float64(total - 8*units.MB); diff > 1 || diff < -1 {
		t.Errorf("metered %v, want 8 MB", total)
	}
	if diff := float64(total - c.Delivered()); diff > 1 || diff < -1 {
		t.Errorf("metered %v != Delivered() %v", total, c.Delivered())
	}
}

func TestIdleDetection(t *testing.T) {
	e := newEnv(10, 5)
	c := e.twoPath(DefaultOptions())
	c.Download(units.MB, nil)
	e.eng.RunUntil(30)
	if !c.Done() {
		t.Fatal("download incomplete")
	}
	if !c.IdleFor(1) {
		t.Error("connection should be idle after completion")
	}
	// Enqueue more: activity resumes.
	c.Download(units.MB, nil)
	e.eng.RunUntil(31)
	if c.IdleFor(1) {
		t.Error("connection should be active again")
	}
}

func TestLIAIsLessAggressiveThanUncoupled(t *testing.T) {
	// On a shared-bottleneck-like setup, LIA's coupled increase must be
	// at most Reno's per subflow.
	e := newEnv(10, 10)
	c := e.twoPath(Options{Coupling: LIA, SubflowConfig: tcp.DefaultConfig()})
	c.Download(256*units.MB, nil)
	e.eng.RunUntil(5)
	cs := (*connSource)(c)
	for _, sf := range c.Subflows() {
		inc := cs.IncreasePerRTT(sf)
		if inc <= 0 || inc > 1 {
			t.Errorf("LIA increase for %s = %v, want (0,1]", sf.ID, inc)
		}
	}
}

func TestUncoupledIncreaseIsOne(t *testing.T) {
	e := newEnv(10, 10)
	c := e.twoPath(Options{Coupling: Uncoupled, SubflowConfig: tcp.DefaultConfig()})
	c.Download(units.MB, nil)
	e.eng.RunUntil(2)
	cs := (*connSource)(c)
	if got := cs.IncreasePerRTT(c.Subflows()[0]); got != 1 {
		t.Errorf("uncoupled increase = %v, want 1", got)
	}
}

func TestDeadPathReinjection(t *testing.T) {
	// WiFi dies mid-transfer: the stranded bytes must be re-offered and
	// the transfer must finish over LTE.
	eng := sim.New()
	src := simrng.New(9)
	wifiCap := link.NewTrace(eng, []link.Breakpoint{
		{At: 0, Rate: units.MbpsRate(10)},
		{At: 5, Rate: 0},
	})
	wifi := &tcp.Path{Name: "wifi", Capacity: wifiCap, BaseRTT: 0.03}
	lte := &tcp.Path{Name: "lte", Capacity: link.NewConstant(units.MbpsRate(8)), BaseRTT: 0.07}
	c := New(eng, src, DefaultOptions())
	c.AddSubflow("wifi", energy.WiFi, wifi, nil, 0)
	c.AddSubflow("lte", energy.LTE, lte, nil, 0)
	done := -1.0
	c.Download(32*units.MB, func(at float64) { done = at })
	eng.Horizon = 300
	eng.Run()
	if done < 0 {
		t.Fatal("transfer stranded after WiFi death")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() float64 {
		e := newEnv(9, 7)
		c := e.twoPath(DefaultOptions())
		done := -1.0
		c.Download(16*units.MB, func(at float64) { done = at })
		e.eng.Horizon = 120
		e.eng.Run()
		return done
	}
	if a, b := run(), run(); a != b {
		t.Errorf("runs differ: %v vs %v", a, b)
	}
}

func TestConnectionString(t *testing.T) {
	e := newEnv(10, 5)
	c := e.twoPath(DefaultOptions())
	if s := c.String(); s == "" {
		t.Error("empty String()")
	}
}

func TestDelayedSubflowEstablishment(t *testing.T) {
	// A subflow added with extraDelay must not deliver anything before
	// the delay elapses — the primitive under eMPTCP's delayed
	// establishment.
	e := newEnv(5, 8)
	c := New(e.eng, e.src, DefaultOptions())
	c.AddSubflow("wifi", energy.WiFi, e.wifi, nil, 0)
	c.Download(64*units.MB, nil)
	e.eng.RunUntil(3)
	lte := c.AddSubflow("lte", energy.LTE, e.lte, nil, 2.0)
	e.eng.RunUntil(4.9)
	if lte.State() == tcp.Established {
		t.Error("delayed subflow established too early")
	}
	if lte.BytesDelivered != 0 {
		t.Error("delayed subflow delivered before establishment")
	}
	e.eng.RunUntil(60)
	if lte.BytesDelivered == 0 {
		t.Error("delayed subflow never carried data")
	}
}

// A bounded receive buffer with strong RTT asymmetry produces multipath
// head-of-line blocking: the slow path's in-flight data caps the window,
// throttling the fast path (Chen et al. [4]). With an unlimited buffer
// the same setup aggregates cleanly.
func TestReceiveBufferHeadOfLineBlocking(t *testing.T) {
	run := func(rb units.ByteSize) float64 {
		eng := sim.New()
		src := simrng.New(17)
		fast := &tcp.Path{Name: "wifi", Capacity: link.NewConstant(units.MbpsRate(10)), BaseRTT: 0.03}
		slow := &tcp.Path{Name: "lte", Capacity: link.NewConstant(units.MbpsRate(8)), BaseRTT: 0.6}
		opts := DefaultOptions()
		opts.ReceiveBuffer = rb
		c := New(eng, src, opts)
		c.AddSubflow("wifi", energy.WiFi, fast, nil, 0)
		c.AddSubflow("lte", energy.LTE, slow, nil, 0)
		done := -1.0
		c.Download(16*units.MB, func(at float64) { done = at })
		eng.Horizon = 600
		eng.Run()
		if done < 0 {
			t.Fatal("download incomplete")
		}
		return done
	}
	unlimited := run(0)
	tiny := run(128 * units.KB)
	if tiny < unlimited*1.3 {
		t.Errorf("128 KB receive buffer (%.1f s) should be much slower than unlimited (%.1f s)", tiny, unlimited)
	}
	// A buffer sized well above the slow path's BDP restores most of the
	// aggregation benefit.
	big := run(8 * units.MB)
	if big > unlimited*1.2 {
		t.Errorf("8 MB buffer (%.1f s) should approach unlimited (%.1f s)", big, unlimited)
	}
}

func TestReceiveBufferStillCompletes(t *testing.T) {
	// Even a pathologically small buffer must not deadlock.
	eng := sim.New()
	src := simrng.New(18)
	p1 := &tcp.Path{Name: "a", Capacity: link.NewConstant(units.MbpsRate(5)), BaseRTT: 0.05}
	opts := DefaultOptions()
	opts.ReceiveBuffer = 8 * units.KB
	c := New(eng, src, opts)
	c.AddSubflow("a", energy.WiFi, p1, nil, 0)
	done := -1.0
	c.Download(units.MB, func(at float64) { done = at })
	eng.Horizon = 600
	eng.Run()
	if done < 0 {
		t.Error("tiny-buffer download deadlocked")
	}
}

// §2.1: "if each host has two interfaces, an MPTCP connection consists of
// four subflows." The connection layer handles any subflow count; verify
// four-path aggregation against a dual-homed server.
func TestFourSubflowAggregation(t *testing.T) {
	eng := sim.New()
	src := simrng.New(23)
	mk := func(name string, mbps, rtt float64) *tcp.Path {
		return &tcp.Path{Name: name, Capacity: link.NewConstant(units.MbpsRate(mbps)), BaseRTT: rtt}
	}
	c := New(eng, src, DefaultOptions())
	// Client WiFi/LTE × server eth0/eth1: four end-to-end paths.
	c.AddSubflow("wifi-eth0", energy.WiFi, mk("wifi-eth0", 5, 0.03), nil, 0)
	c.AddSubflow("wifi-eth1", energy.WiFi, mk("wifi-eth1", 4, 0.04), nil, 0)
	c.AddSubflow("lte-eth0", energy.LTE, mk("lte-eth0", 3, 0.07), nil, 0)
	c.AddSubflow("lte-eth1", energy.LTE, mk("lte-eth1", 3, 0.08), nil, 0)
	done := -1.0
	c.Download(32*units.MB, func(at float64) { done = at })
	eng.Horizon = 300
	eng.Run()
	if done < 0 {
		t.Fatal("download incomplete")
	}
	ideal := units.MbpsRate(15).TimeToSend(32 * units.MB).Seconds()
	if done > ideal*1.5 {
		t.Errorf("four subflows took %.1f s, aggregate-ideal %.1f s", done, ideal)
	}
	for _, sf := range c.Subflows() {
		if sf.BytesDelivered < 2*units.MB {
			t.Errorf("subflow %s carried only %v", sf.ID, sf.BytesDelivered)
		}
	}
}

// Property: byte conservation — whatever the subflow count, link rates
// and suspend/resume pattern, a completed connection delivered exactly
// what was enqueued, and per-subflow deliveries sum to the total.
func TestConservationProperty(t *testing.T) {
	f := func(nRaw, rateRaw, suspendRaw uint8, seed int64) bool {
		eng := sim.New()
		src := simrng.New(seed)
		c := New(eng, src, DefaultOptions())
		n := int(nRaw%3) + 1
		for i := 0; i < n; i++ {
			mbps := float64((int(rateRaw)+i*37)%80)/10 + 1
			p := &tcp.Path{
				Name:     "p",
				Capacity: link.NewConstant(units.MbpsRate(mbps)),
				BaseRTT:  0.02 + float64(i)*0.03,
			}
			c.AddSubflow("sf", energy.WiFi, p, nil, 0)
		}
		size := units.ByteSize(int(suspendRaw)+1) * 64 * units.KB
		done := false
		c.Download(size, func(float64) { done = true })
		// Suspend/resume a subflow mid-transfer.
		eng.After(0.5, func() {
			sf := c.Subflows()[int(suspendRaw)%n]
			sf.Suspend()
			eng.After(1, sf.Resume)
		})
		eng.Horizon = 600
		eng.Run()
		if !done {
			return false
		}
		var sum units.ByteSize
		for _, sf := range c.Subflows() {
			sum += sf.BytesDelivered
		}
		d1 := float64(sum - c.Delivered())
		d2 := float64(c.Delivered() - size)
		return d1 < 1 && d1 > -1 && d2 < 1 && d2 > -1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Scarce data follows the min-RTT scheduler rule: a small object on a
// two-path connection rides the low-RTT subflow, like the Linux MPTCP
// scheduler the paper describes (§4.4, §3.6).
func TestMinRTTSchedulingForSmallObjects(t *testing.T) {
	eng := sim.New()
	src := simrng.New(27)
	fast := &tcp.Path{Name: "wifi", Capacity: link.NewConstant(units.MbpsRate(10)), BaseRTT: 0.03}
	slow := &tcp.Path{Name: "lte", Capacity: link.NewConstant(units.MbpsRate(10)), BaseRTT: 0.4}
	c := New(eng, src, DefaultOptions())
	wifi := c.AddSubflow("wifi", energy.WiFi, fast, nil, 0)
	lte := c.AddSubflow("lte", energy.LTE, slow, nil, 0)
	// Let both establish and measure their RTTs on a first transfer.
	c.Download(2*units.MB, nil)
	eng.RunUntil(20)
	lteBase := lte.BytesDelivered
	// A stream of small objects: each fits inside the WiFi window.
	for i := 0; i < 20; i++ {
		c.Download(32*units.KB, nil)
		eng.RunUntil(20 + float64(i+1))
	}
	if !c.Done() {
		t.Fatal("objects incomplete")
	}
	lteSmall := lte.BytesDelivered - lteBase
	if lteSmall > 64*units.KB {
		t.Errorf("high-RTT subflow carried %v of the small objects; min-RTT preference should keep them on WiFi", lteSmall)
	}
	if wifi.BytesDelivered < 500*units.KB {
		t.Errorf("WiFi carried only %v", wifi.BytesDelivered)
	}
}

// §3.6's RTT-zeroing: a resumed fast-reuse subflow reports ~zero RTT, so
// the scheduler probes it immediately instead of starving it.
func TestResumedSubflowReprobedViaRTTZero(t *testing.T) {
	eng := sim.New()
	src := simrng.New(28)
	fast := &tcp.Path{Name: "wifi", Capacity: link.NewConstant(units.MbpsRate(3)), BaseRTT: 0.03}
	slow := &tcp.Path{Name: "lte", Capacity: link.NewConstant(units.MbpsRate(8)), BaseRTT: 0.4}
	cfg := tcp.DefaultConfig()
	cfg.DisableIdleCwndReset = true
	c := New(eng, src, DefaultOptions())
	c.AddSubflow("wifi", energy.WiFi, fast, nil, 0)
	lte := c.AddSubflow("lte", energy.LTE, slow, &cfg, 0)
	c.Download(64*units.MB, nil)
	eng.RunUntil(5)
	c.SetBackup(lte, true)
	eng.RunUntil(10)
	if got := lte.SRTT(); got < 0.3 {
		t.Fatalf("precondition: LTE SRTT = %v, want ~0.4", got)
	}
	c.SetBackup(lte, false)
	if got := lte.SRTT(); got > 0.01 {
		t.Errorf("resumed fast-reuse SRTT = %v, want ~0 (§3.6)", got)
	}
	before := lte.BytesDelivered
	eng.RunUntil(12)
	if lte.BytesDelivered <= before {
		t.Error("resumed subflow was not re-probed with data")
	}
	// Data rounds re-measure the true RTT.
	eng.RunUntil(20)
	if got := lte.SRTT(); got < 0.1 {
		t.Errorf("SRTT after re-probing = %v, want re-measured ~0.4", got)
	}
}
