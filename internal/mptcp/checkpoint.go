package mptcp

import (
	"repro/internal/tcp"
	"repro/internal/units"
)

// ConnSnapshot saves a Connection's mutable state for the sweep-fork
// executor. Subflows and requests are captured as slice headers: appends
// after the snapshot only touch indices at or beyond the saved length
// (requests pop from the front by reslicing and push at the end, subflows
// only append), so the saved prefix still holds exactly the elements it
// held at snapshot time. Request fields are immutable after Enqueue and
// subflow state is restored separately through the tcp arena, so sharing
// the pointees is safe. The lia coupling cache is mutated in place every
// round, so its contents are copied.
type ConnSnapshot struct {
	queued       units.ByteSize
	taken        units.ByteSize
	delivered    units.ByteSize
	lastActivity float64
	subflows     []*tcp.Subflow
	requests     []*Request
	lia          []liaCache
}

// Snapshot saves the connection's state into s, reusing s's buffers.
func (c *Connection) Snapshot(s *ConnSnapshot) {
	s.queued = c.queued
	s.taken = c.taken
	s.delivered = c.delivered
	s.lastActivity = c.lastActivity
	s.subflows = append(s.subflows[:0], c.subflows...)
	s.requests = append(s.requests[:0], c.requests...)
	s.lia = append(s.lia[:0], c.lia...)
}

// Restore reinstates a snapshot taken from this connection.
func (c *Connection) Restore(s *ConnSnapshot) {
	c.queued = s.queued
	c.taken = s.taken
	c.delivered = s.delivered
	c.lastActivity = s.lastActivity
	c.subflows = append(c.subflows[:0], s.subflows...)
	c.requests = append(c.requests[:0], s.requests...)
	c.lia = append(c.lia[:0], s.lia...)
}
