// Package mptcp models a Multi-Path TCP connection (§2.1 of the paper): a
// single application-visible byte stream split across TCP subflows, one
// per end-to-end interface pair, with coupled (LIA) congestion control and
// the MP_PRIO backup mechanism eMPTCP uses to suspend and resume paths.
//
// The connection is a pull system: each established subflow requests up to
// a congestion window of bytes per round from the shared transfer queue,
// so data flows over every non-backup subflow at the rate its own
// congestion control sustains — the behaviour of the Linux MPTCP
// scheduler once flows are window-limited. Requests (downloads) are
// queued in order, as over an HTTP/1.1 persistent connection.
package mptcp

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/sim"
	"repro/internal/simrng"
	"repro/internal/tcp"
	"repro/internal/trace"
	"repro/internal/units"
)

// Coupling selects the congestion-avoidance coupling across subflows.
type Coupling int

// Coupling modes.
const (
	// Uncoupled runs independent Reno on each subflow.
	Uncoupled Coupling = iota
	// LIA is the Linked-Increases Algorithm of RFC 6356, the default
	// coupled congestion control in the Linux MPTCP stack the paper uses.
	LIA
)

// Options configure a connection.
type Options struct {
	Coupling Coupling
	// SubflowConfig is the TCP configuration applied to subflows that do
	// not override it.
	SubflowConfig tcp.Config
	// ReceiveBuffer bounds the connection-level receive window: bytes
	// handed to subflows but not yet delivered in order. A slow subflow
	// holding early data then throttles the fast one — the multipath
	// head-of-line blocking measured by Chen et al. [4], which large
	// RTT asymmetry (e.g. an overseas LTE path) makes severe. Zero means
	// unlimited (the default; the paper's servers used large buffers).
	ReceiveBuffer units.ByteSize
	// Arena, when non-nil, allocates subflows from a recyclable arena
	// instead of the heap (per-run state pooling; see scenario.Run).
	Arena *tcp.Arena
}

// DefaultOptions returns the standard-MPTCP configuration.
func DefaultOptions() Options {
	return Options{Coupling: LIA, SubflowConfig: tcp.DefaultConfig()}
}

// subflowMeta is stored in tcp.Subflow.Meta.
type subflowMeta struct {
	iface energy.Interface
}

// Request is one application transfer over the connection.
type Request struct {
	Size units.ByteSize
	// OnComplete fires when the last byte of this request is delivered.
	OnComplete func(at float64)

	cumEnd units.ByteSize // cumulative delivered offset that completes it
}

// Connection is an MPTCP connection.
type Connection struct {
	eng  *sim.Engine
	src  *simrng.Source
	opts Options

	subflows []*tcp.Subflow
	lia      []liaCache // per-subflow memoized LIA quotients, parallel to subflows

	queued    units.ByteSize // cumulative bytes enqueued
	taken     units.ByteSize // cumulative bytes handed to subflows (minus returns)
	delivered units.ByteSize // cumulative bytes delivered
	requests  []*Request     // pending completion, in order

	lastActivity float64

	// OnDelivered, when non-nil, observes every delivery (the scenario
	// layer meters per-interface throughput with it).
	OnDelivered func(sf *tcp.Subflow, iface energy.Interface, n units.ByteSize)
}

// New returns an empty connection; add subflows with AddSubflow and start
// transfers with Enqueue.
func New(eng *sim.Engine, src *simrng.Source, opts Options) *Connection {
	return &Connection{eng: eng, src: src, opts: opts}
}

// AddSubflow creates a subflow over path bound to iface and starts its
// handshake after extraDelay seconds (radio promotion, or eMPTCP's
// deliberate establishment delay). A nil cfg uses the connection default.
func (c *Connection) AddSubflow(id string, iface energy.Interface, path *tcp.Path, cfg *tcp.Config, extraDelay float64) *tcp.Subflow {
	conf := c.opts.SubflowConfig
	if cfg != nil {
		conf = *cfg
	}
	var sf *tcp.Subflow
	if c.opts.Arena != nil {
		sf = c.opts.Arena.NewSubflow(id, c.eng, c.src.Split(uint64(len(c.subflows))+0x5f), path, conf, (*connSource)(c))
	} else {
		sf = tcp.NewSubflow(id, c.eng, c.src.Split(uint64(len(c.subflows))+0x5f), path, conf, (*connSource)(c))
	}
	sf.Meta = subflowMeta{iface: iface}
	// A join changes the LIA coupling set and the scheduler's choices:
	// stop any sibling's round batch at its next boundary.
	for _, other := range c.subflows {
		other.InvalidateBatch()
	}
	c.subflows = append(c.subflows, sf)
	c.lia = append(c.lia, liaCache{})
	if rec := c.eng.Recorder(); rec != nil {
		rec.Record(trace.Event{
			T: c.eng.Now(), Kind: trace.KindSubflow,
			Subflow: id, Iface: iface.String(), A: extraDelay,
		})
	}
	sf.Connect(extraDelay)
	return sf
}

// Subflows returns the connection's subflows in creation order.
func (c *Connection) Subflows() []*tcp.Subflow { return c.subflows }

// SubflowByIface returns the first subflow on the given interface, or nil.
func (c *Connection) SubflowByIface(iface energy.Interface) *tcp.Subflow {
	for _, sf := range c.subflows {
		if Iface(sf) == iface {
			return sf
		}
	}
	return nil
}

// Iface returns the interface a subflow was bound to at AddSubflow time.
func Iface(sf *tcp.Subflow) energy.Interface {
	if m, ok := sf.Meta.(subflowMeta); ok {
		return m.iface
	}
	return -1
}

// Enqueue appends a transfer to the connection's queue and wakes idle
// subflows.
func (c *Connection) Enqueue(req *Request) {
	if req.Size <= 0 {
		if req.OnComplete != nil {
			req.OnComplete(c.eng.Now())
		}
		return
	}
	c.queued += req.Size
	req.cumEnd = c.queued
	c.requests = append(c.requests, req)
	c.kickAll()
}

// Download is the single-transfer convenience: enqueue size bytes and
// invoke onComplete when done.
func (c *Connection) Download(size units.ByteSize, onComplete func(at float64)) {
	c.Enqueue(&Request{Size: size, OnComplete: onComplete})
}

// Pending returns the bytes enqueued but not yet handed to any subflow.
func (c *Connection) Pending() units.ByteSize { return c.queued - c.taken }

// Outstanding returns the bytes enqueued but not yet delivered (pending
// plus in flight). Zero means the connection is application-limited: any
// observed zero throughput then says nothing about the paths.
func (c *Connection) Outstanding() units.ByteSize { return c.queued - c.delivered }

// Delivered returns the cumulative bytes delivered to the application.
func (c *Connection) Delivered() units.ByteSize { return c.delivered }

// Done reports whether everything enqueued so far has been delivered.
func (c *Connection) Done() bool { return c.delivered >= c.queued }

// IdleFor reports whether the connection has moved no data for at least d
// seconds — the paper's idle test (§3.5: "eMPTCP regards a connection as
// idle if it does not send or receive any packets during an estimated
// RTT").
func (c *Connection) IdleFor(d float64) bool {
	return c.eng.Now()-c.lastActivity >= d
}

// SetBackup sets or clears the MP_PRIO backup flag on a subflow: a backup
// subflow carries no data while any regular subflow exists (§2.1). The
// eMPTCP path usage controller drives this to suspend and resume the LTE
// path (§3.6).
func (c *Connection) SetBackup(sf *tcp.Subflow, backup bool) {
	if backup != sf.Suspended() {
		if rec := c.eng.Recorder(); rec != nil {
			flag := 0.0
			if backup {
				flag = 1
			}
			rec.Record(trace.Event{
				T: c.eng.Now(), Kind: trace.KindMPPrio,
				Subflow: sf.ID, Iface: Iface(sf).String(), A: flag,
			})
		}
	}
	if backup {
		sf.Suspend()
		return
	}
	sf.Resume()
}

// kickAll wakes every idle established subflow.
func (c *Connection) kickAll() {
	for _, sf := range c.subflows {
		sf.Kick()
	}
}

// connSource adapts Connection to tcp.DataSource without exporting the
// methods on Connection itself.
type connSource Connection

func (cs *connSource) conn() *Connection { return (*Connection)(cs) }

// Request hands out up to max bytes from the transfer queue, limited by
// the connection-level receive window when one is configured. When data is
// scarce (less queued than the requester's window), the min-RTT scheduler
// rule applies: a subflow defers to an active peer with a lower smoothed
// RTT, exactly the preference eMPTCP's §3.6 RTT-zeroing trick is designed
// to exploit on resumed subflows.
func (cs *connSource) Request(sf *tcp.Subflow, max units.ByteSize) units.ByteSize {
	c := cs.conn()
	avail := c.queued - c.taken
	if rb := c.opts.ReceiveBuffer; rb > 0 {
		if window := rb - (c.taken - c.delivered); window < avail {
			avail = window
		}
	}
	if avail <= 0 {
		return 0
	}
	if avail < max {
		if best := c.preferredSubflow(); best != nil && best != sf && best.SRTT() < sf.SRTT() {
			// Let the faster subflow carry the scarce bytes; look again
			// once it has had a round's opportunity.
			if rec := c.eng.Recorder(); rec != nil {
				rec.Record(trace.Event{
					T: c.eng.Now(), Kind: trace.KindSchedPick,
					Subflow: sf.ID, To: best.ID,
				})
			}
			best.Kick()
			c.eng.After(best.SRTT()+1e-3, sf.KickFunc())
			// The deferral re-picks the scheduler later; don't let the
			// requester's batch (if one is open) coalesce past it.
			sf.InvalidateBatch()
			return 0
		}
	}
	n := max
	if n > avail {
		n = avail
	}
	c.taken += n
	c.lastActivity = c.eng.Now()
	return n
}

// preferredSubflow returns the established, unsuspended subflow with the
// lowest smoothed RTT whose path can currently carry data, or nil.
func (c *Connection) preferredSubflow() *tcp.Subflow {
	var best *tcp.Subflow
	for _, sf := range c.subflows {
		if sf.State() != tcp.Established || sf.Suspended() || sf.Path().Capacity.Rate() <= 0 {
			continue
		}
		if best == nil || sf.SRTT() < best.SRTT() {
			best = sf
		}
	}
	return best
}

// Delivered advances the delivered counter and fires request completions.
func (cs *connSource) Delivered(sf *tcp.Subflow, n units.ByteSize) {
	c := cs.conn()
	wasBlocked := c.opts.ReceiveBuffer > 0 && c.opts.ReceiveBuffer-(c.taken-c.delivered) <= 0
	c.delivered += n
	c.lastActivity = c.eng.Now()
	if wasBlocked {
		// Receive window space freed: wake subflows idled on it.
		defer c.kickAll()
	}
	if rec := c.eng.Recorder(); rec != nil {
		rec.Record(trace.Event{
			T: c.eng.Now(), Kind: trace.KindDeliver,
			Subflow: sf.ID, Iface: Iface(sf).String(), A: float64(n),
		})
	}
	if c.OnDelivered != nil {
		c.OnDelivered(sf, Iface(sf), n)
	}
	for len(c.requests) > 0 && c.delivered >= c.requests[0].cumEnd-1e-6 {
		req := c.requests[0]
		c.requests = c.requests[1:]
		if req.OnComplete != nil {
			req.OnComplete(c.eng.Now())
		}
	}
}

// Returned puts back bytes a dead path could not move and offers them to
// the other subflows (MPTCP reinjection).
func (cs *connSource) Returned(sf *tcp.Subflow, n units.ByteSize) {
	c := cs.conn()
	c.taken -= n
	for _, other := range c.subflows {
		if other != sf {
			other.Kick()
		}
	}
}

// liaCache memoizes one subflow's LIA quotients. Division dominates the
// increase computation, and between a subflow's own rounds the sibling
// windows are frozen (round batching makes long frozen stretches the
// common case), so the quotients are recomputed only when the operands
// change. Identical operand bits give identical quotient bits, so the
// cache cannot perturb results.
type liaCache struct {
	w, r    float64
	wOverR  float64 // w / r
	wOverR2 float64 // w / (r * r)
}

// IncreasePerRTT implements the coupled congestion-avoidance increase.
func (cs *connSource) IncreasePerRTT(sf *tcp.Subflow) float64 {
	c := cs.conn()
	if c.opts.Coupling == Uncoupled {
		return 1
	}
	// RFC 6356 LIA: the per-ACK increase is min(alpha/cwnd_total,
	// 1/cwnd_i); over one round of cwnd_i ACKs that is
	// min(alpha·cwnd_i/cwnd_total, 1), with
	// alpha = cwnd_total · max_i(cwnd_i/rtt_i²) / (Σ_i cwnd_i/rtt_i)².
	var total, sum, best float64
	for i, s := range c.subflows {
		if s.State() != tcp.Established || s.Suspended() || s.SRTT() <= 0 {
			continue
		}
		w, r := s.Cwnd(), s.SRTT()
		e := &c.lia[i]
		if e.w != w || e.r != r {
			e.w, e.r = w, r
			e.wOverR = w / r
			e.wOverR2 = w / (r * r)
		}
		total += w
		sum += e.wOverR
		if e.wOverR2 > best {
			best = e.wOverR2
		}
	}
	if total <= 0 || sum <= 0 {
		return 1
	}
	alpha := total * best / (sum * sum)
	inc := alpha * sf.Cwnd() / total
	return min(inc, 1)
}

// String summarizes the connection.
func (c *Connection) String() string {
	return fmt.Sprintf("mptcp: %d subflows, %v/%v delivered",
		len(c.subflows), c.delivered, c.queued)
}
