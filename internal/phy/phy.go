// Package phy models the wireless channels the paper's experiments run
// over: an IEEE 802.11g WiFi cell whose usable throughput depends on
// distance to the access point and on channel contention from interfering
// nodes (§4.4, §4.5), and an LTE cell with a stable rate.
//
// The models are deliberately simple — the experiments need realistic
// *available bandwidth over time*, not PHY-accurate bit error rates — and
// are parameterized so tests can pin their shapes.
package phy

import (
	"math"

	"repro/internal/units"
)

// WiFiCell models one 802.11g access point.
type WiFiCell struct {
	// MaxGoodput is the TCP goodput adjacent to the AP. 802.11g tops out
	// around 54 Mbps PHY ≈ 20–25 Mbps TCP; the paper's campus AP delivers
	// 10–18 Mbps in Figures 7 and 12.
	MaxGoodput units.BitRate
	// FullRateRange is the distance (metres) within which the cell
	// delivers MaxGoodput.
	FullRateRange float64
	// UsableRange is the distance at which goodput reaches zero (the AP's
	// estimated usable access range — the dashed circle of Figure 11).
	UsableRange float64
}

// DefaultWiFiCell matches the campus-AP behaviour seen in the paper's
// traces: ~18 Mbps near the AP, unusable beyond ~50 m indoors.
func DefaultWiFiCell() WiFiCell {
	return WiFiCell{
		MaxGoodput:    units.MbpsRate(18),
		FullRateRange: 10,
		UsableRange:   50,
	}
}

// GoodputAt returns the cell's TCP goodput at the given distance from the
// AP, with no contention. Rate-versus-distance follows the stepped decay
// of 802.11 link adaptation, smoothed to a quadratic falloff between the
// full-rate range and the usable range.
func (c WiFiCell) GoodputAt(distance float64) units.BitRate {
	if distance < 0 {
		distance = 0
	}
	switch {
	case distance <= c.FullRateRange:
		return c.MaxGoodput
	case distance >= c.UsableRange:
		return 0
	default:
		// Quadratic decay from 1 at FullRateRange to 0 at UsableRange:
		// throughput degrades slowly at first, then falls off a cliff
		// near the cell edge, matching measured 802.11 behaviour.
		f := (distance - c.FullRateRange) / (c.UsableRange - c.FullRateRange)
		return units.BitRate(float64(c.MaxGoodput) * (1 - f*f))
	}
}

// Associated reports whether a device at the given distance still holds an
// association with the AP. Association persists to the usable range edge
// plus a margin: the paper (§4.6) stresses that a device can stay
// associated while throughput is near zero, which is exactly the situation
// where "MPTCP with WiFi First" degenerates.
func (c WiFiCell) Associated(distance float64) bool {
	return distance <= c.UsableRange*1.2
}

// ContentionShare returns the fraction of airtime available to the device
// when n interfering nodes are actively transmitting on the same channel.
// 802.11 DCF is long-term fair per station, so the device receives roughly
// 1/(n+1) of the channel.
func ContentionShare(n int) float64 {
	if n < 0 {
		n = 0
	}
	return 1 / float64(n+1)
}

// CollisionLossProb returns the packet-loss probability induced by n
// actively interfering nodes. More contenders mean more collisions (§4.4:
// "larger numbers of interfering WiFi nodes result in more losses caused
// by collisions"). The quadratic-ish growth follows Bianchi-style DCF
// analysis for small n.
func CollisionLossProb(n int) float64 {
	if n <= 0 {
		return 0
	}
	p := 0.008 * float64(n) * float64(n+1)
	if p > 0.5 {
		return 0.5
	}
	return p
}

// LTECell models an LTE attachment: a nominal rate that does not depend on
// the device's indoor position at the scales of the paper's experiments.
type LTECell struct {
	// Rate is the achievable downlink goodput.
	Rate units.BitRate
}

// DefaultLTECell matches the AT&T LTE throughputs of the paper's traces
// (≈ 5–12 Mbps, Figure 9 shows ~8–10).
func DefaultLTECell() LTECell {
	return LTECell{Rate: units.MbpsRate(9)}
}

// Goodput returns the cell's achievable goodput.
func (c LTECell) Goodput() units.BitRate { return c.Rate }

// Point is a 2-D position in metres.
type Point struct{ X, Y float64 }

// Dist returns the Euclidean distance between two points.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Route is a walking route: a polyline traversed at constant speed,
// modelling the mobile scenario of Figure 11.
type Route struct {
	Waypoints []Point
	// Speed is the walking speed in metres per second.
	Speed float64

	cum []float64 // cumulative distance to each waypoint
}

// NewRoute builds a route. It needs at least one waypoint and a positive
// speed.
func NewRoute(speed float64, waypoints ...Point) *Route {
	if len(waypoints) == 0 {
		panic("phy: route needs at least one waypoint")
	}
	if speed <= 0 {
		panic("phy: route speed must be positive")
	}
	r := &Route{Waypoints: waypoints, Speed: speed}
	r.cum = make([]float64, len(waypoints))
	for i := 1; i < len(waypoints); i++ {
		r.cum[i] = r.cum[i-1] + waypoints[i-1].Dist(waypoints[i])
	}
	return r
}

// Length returns the total route length in metres.
func (r *Route) Length() float64 { return r.cum[len(r.cum)-1] }

// Duration returns how long the walk takes in seconds.
func (r *Route) Duration() float64 { return r.Length() / r.Speed }

// PositionAt returns the walker's position t seconds into the walk. The
// walker stops at the final waypoint.
func (r *Route) PositionAt(t float64) Point {
	if t <= 0 {
		return r.Waypoints[0]
	}
	d := t * r.Speed
	if d >= r.Length() {
		return r.Waypoints[len(r.Waypoints)-1]
	}
	// Find the segment containing distance d.
	i := 1
	for r.cum[i] < d {
		i++
	}
	segLen := r.cum[i] - r.cum[i-1]
	f := 0.0
	if segLen > 0 {
		f = (d - r.cum[i-1]) / segLen
	}
	a, b := r.Waypoints[i-1], r.Waypoints[i]
	return Point{a.X + f*(b.X-a.X), a.Y + f*(b.Y-a.Y)}
}

// UMassCSRoute approximates the Figure 11 walk: a loop through a building
// that starts near the AP, leaves its usable range, and returns, taking
// about 250 seconds. The AP sits at apPos.
func UMassCSRoute() (route *Route, apPos Point) {
	ap := Point{X: 0, Y: 0}
	// ~1.2 m/s walk; the loop spends roughly 25–40 s and 150–200 s
	// outside the usable range, matching the throughput dips in Fig. 12.
	r := NewRoute(1.2,
		Point{X: 5, Y: 0},   // start beside the AP
		Point{X: 40, Y: 10}, // down the corridor, leaving range ~25 s in
		Point{X: 75, Y: 15}, // far wing (out of range)
		Point{X: 40, Y: -5}, // returning
		Point{X: 10, Y: 0},  // near the AP again
		Point{X: 30, Y: 20}, // second excursion
		Point{X: 70, Y: 30}, // out of range again
		Point{X: 35, Y: 10}, // heading back
		Point{X: 5, Y: 5},   // finish beside the AP
	)
	return r, ap
}
