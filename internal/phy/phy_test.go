package phy

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestGoodputAtDistance(t *testing.T) {
	c := DefaultWiFiCell()
	if got := c.GoodputAt(0); got != c.MaxGoodput {
		t.Errorf("goodput at AP = %v, want max", got)
	}
	if got := c.GoodputAt(c.FullRateRange); got != c.MaxGoodput {
		t.Errorf("goodput at full-rate edge = %v, want max", got)
	}
	if got := c.GoodputAt(c.UsableRange); got != 0 {
		t.Errorf("goodput at usable edge = %v, want 0", got)
	}
	if got := c.GoodputAt(1000); got != 0 {
		t.Errorf("goodput far away = %v, want 0", got)
	}
	if got := c.GoodputAt(-5); got != c.MaxGoodput {
		t.Errorf("negative distance should clamp, got %v", got)
	}
	mid := c.GoodputAt((c.FullRateRange + c.UsableRange) / 2)
	if mid <= 0 || mid >= c.MaxGoodput {
		t.Errorf("mid-range goodput = %v, want strictly between 0 and max", mid)
	}
}

func TestGoodputMonotoneProperty(t *testing.T) {
	c := DefaultWiFiCell()
	f := func(d1Raw, d2Raw uint16) bool {
		d1 := float64(d1Raw) / 100
		d2 := float64(d2Raw) / 100
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		return c.GoodputAt(d2) <= c.GoodputAt(d1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAssociationOutlastsUsableRange(t *testing.T) {
	c := DefaultWiFiCell()
	// The §4.6 point: a device can be associated yet get ~zero goodput.
	d := c.UsableRange * 1.1
	if !c.Associated(d) {
		t.Error("device just past usable range should still be associated")
	}
	if c.GoodputAt(d) != 0 {
		t.Error("goodput past usable range should be 0")
	}
	if c.Associated(c.UsableRange * 1.3) {
		t.Error("device far past range should be disassociated")
	}
}

func TestContentionShare(t *testing.T) {
	if got := ContentionShare(0); got != 1 {
		t.Errorf("share with no interferers = %v, want 1", got)
	}
	if got := ContentionShare(1); got != 0.5 {
		t.Errorf("share with 1 interferer = %v, want 0.5", got)
	}
	if got := ContentionShare(-3); got != 1 {
		t.Errorf("negative interferers should clamp, got %v", got)
	}
	for n := 0; n < 10; n++ {
		if ContentionShare(n+1) >= ContentionShare(n) {
			t.Fatalf("share not decreasing at n=%d", n)
		}
	}
}

func TestCollisionLossProb(t *testing.T) {
	if got := CollisionLossProb(0); got != 0 {
		t.Errorf("loss with no interferers = %v, want 0", got)
	}
	if CollisionLossProb(2) >= CollisionLossProb(3) {
		t.Error("loss should grow with interferers")
	}
	if got := CollisionLossProb(100); got > 0.5 {
		t.Errorf("loss should cap at 0.5, got %v", got)
	}
}

func TestLTECell(t *testing.T) {
	c := DefaultLTECell()
	if c.Goodput() != c.Rate {
		t.Error("LTE goodput should equal configured rate")
	}
	if c.Rate < units.MbpsRate(5) || c.Rate > units.MbpsRate(12) {
		t.Errorf("default LTE rate %v outside the paper's observed band", c.Rate)
	}
}

func TestRouteGeometry(t *testing.T) {
	r := NewRoute(2, Point{0, 0}, Point{30, 0}, Point{30, 40})
	if got := r.Length(); got != 70 {
		t.Errorf("length = %v, want 70", got)
	}
	if got := r.Duration(); got != 35 {
		t.Errorf("duration = %v, want 35", got)
	}
	if p := r.PositionAt(0); p != (Point{0, 0}) {
		t.Errorf("position at 0 = %v", p)
	}
	if p := r.PositionAt(7.5); p != (Point{15, 0}) {
		t.Errorf("position at 7.5 = %v, want (15,0)", p)
	}
	// Corner at t=15.
	if p := r.PositionAt(15); p != (Point{30, 0}) {
		t.Errorf("position at corner = %v, want (30,0)", p)
	}
	if p := r.PositionAt(25); p != (Point{30, 20}) {
		t.Errorf("position at 25 = %v, want (30,20)", p)
	}
	// Stops at the end.
	if p := r.PositionAt(1000); p != (Point{30, 40}) {
		t.Errorf("position past end = %v, want final waypoint", p)
	}
	if p := r.PositionAt(-3); p != (Point{0, 0}) {
		t.Errorf("position before start = %v, want first waypoint", p)
	}
}

func TestRoutePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"no waypoints": func() { NewRoute(1) },
		"zero speed":   func() { NewRoute(0, Point{0, 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestRoutePositionContinuityProperty(t *testing.T) {
	r, _ := UMassCSRoute()
	f := func(tRaw uint16) bool {
		tm := float64(tRaw%25000) / 100
		p1 := r.PositionAt(tm)
		p2 := r.PositionAt(tm + 0.01)
		// Walker cannot move faster than Speed.
		return p1.Dist(p2) <= r.Speed*0.01+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUMassRouteShape(t *testing.T) {
	r, ap := UMassCSRoute()
	cell := DefaultWiFiCell()
	if d := r.Duration(); d < 180 || d > 320 {
		t.Errorf("route duration = %v s, want ~250 s", d)
	}
	// The walk starts in range, leaves it at least once, and ends in range.
	start := r.PositionAt(0).Dist(ap)
	if cell.GoodputAt(start) == 0 {
		t.Error("route should start inside WiFi range")
	}
	end := r.PositionAt(r.Duration()).Dist(ap)
	if cell.GoodputAt(end) == 0 {
		t.Error("route should end inside WiFi range")
	}
	outOfRange := 0.0
	for tm := 0.0; tm < r.Duration(); tm += 1 {
		if cell.GoodputAt(r.PositionAt(tm).Dist(ap)) == 0 {
			outOfRange++
		}
	}
	if outOfRange < 20 {
		t.Errorf("route spends only %v s out of WiFi range, want a meaningful excursion", outOfRange)
	}
	if outOfRange > r.Duration()*0.7 {
		t.Errorf("route spends %v s out of range; the paper's device is in range most of the time", outOfRange)
	}
}

func TestPointDist(t *testing.T) {
	if got := (Point{0, 0}).Dist(Point{3, 4}); math.Abs(got-5) > 1e-12 {
		t.Errorf("dist = %v, want 5", got)
	}
}
