package campaign

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/runcache"
)

func postSpec(t *testing.T, ts *httptest.Server, spec Spec) (int, Progress) {
	t.Helper()
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var p Progress
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, p
}

func waitDone(t *testing.T, ts *httptest.Server, id string) Progress {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/campaigns/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var p Progress
		err = json.NewDecoder(resp.Body).Decode(&p)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch p.Status {
		case StatusDone, StatusFailed, StatusCancelled:
			return p
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("campaign %s did not finish", id)
	return Progress{}
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func TestServerEndToEnd(t *testing.T) {
	ref := runToBytes(t, smallSpec(), Options{Jobs: 1})

	store, err := runcache.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store, 2)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Health first.
	if code, b := getBody(t, ts.URL+"/healthz"); code != 200 || !strings.Contains(string(b), "ok") {
		t.Fatalf("healthz: %d %q", code, b)
	}

	// Bad submissions are 400 with a JSON error.
	for _, body := range []string{"{not json", `{"unknown_field": 1}`, `{"seeds":{"count":0}}`, `{"protocols":["quic"],"seeds":{"count":1}}`} {
		resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %q: status %d, want 400 (%s)", body, resp.StatusCode, b)
		}
		if !strings.Contains(string(b), "error") {
			t.Errorf("POST %q: no error body: %s", body, b)
		}
	}

	// Submit, await, fetch: result bytes must equal the direct -j 1 run.
	code, p := postSpec(t, ts, smallSpec())
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	if p.Status != StatusQueued && p.Status != StatusRunning {
		t.Fatalf("fresh campaign reported %v", p.Status)
	}
	fin := waitDone(t, ts, p.ID)
	if fin.Status != StatusDone {
		t.Fatalf("campaign finished %v (%s)", fin.Status, fin.Error)
	}
	if fin.RunsDone != fin.TotalRuns || fin.Aggregates == nil {
		t.Fatalf("done campaign progress incomplete: %+v", fin)
	}
	code, got := getBody(t, ts.URL+"/campaigns/"+p.ID+"/result")
	if code != 200 {
		t.Fatalf("result: status %d", code)
	}
	if !bytes.Equal(got, ref) {
		t.Errorf("served aggregates differ from direct -j 1 run\nref: %s\ngot: %s", ref, got)
	}
	// Served bytes are stable across GETs.
	if _, again := getBody(t, ts.URL+"/campaigns/"+p.ID+"/result"); !bytes.Equal(again, got) {
		t.Error("two GETs of the same result differ")
	}

	// Resubmitting the same spec attaches to the done job (200, not a
	// new run).
	code2, p2 := postSpec(t, ts, smallSpec())
	if code2 != http.StatusOK || p2.ID != p.ID || p2.Status != StatusDone {
		t.Errorf("resubmit: %d %v %v", code2, p2.ID, p2.Status)
	}

	// Listing shows the one campaign, light (no aggregates).
	code, lb := getBody(t, ts.URL+"/campaigns")
	if code != 200 {
		t.Fatalf("list: %d", code)
	}
	var list []Progress
	if err := json.Unmarshal(lb, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != p.ID || list[0].Aggregates != nil {
		t.Errorf("list: %s", lb)
	}

	// Unknown id → 404.
	if code, _ := getBody(t, ts.URL+"/campaigns/deadbeef"); code != http.StatusNotFound {
		t.Errorf("unknown id: %d, want 404", code)
	}
	if code, _ := getBody(t, ts.URL+"/campaigns/deadbeef/result"); code != http.StatusNotFound {
		t.Errorf("unknown id result: %d, want 404", code)
	}
}

// TestServerShutdownResume is the serve-layer acceptance path: kill the
// server mid-campaign, restart on the same cache dir, resubmit, and
// the result must be byte-identical to an uninterrupted single-process
// run, with the interrupted prefix replayed from disk.
func TestServerShutdownResume(t *testing.T) {
	spec := smallSpec()
	spec.Seeds.Count = 40 // ~320 runs of runway
	ref := runToBytes(t, spec, Options{Jobs: 1})

	dir := t.TempDir()
	store, err := runcache.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store, 1)
	ts := httptest.NewServer(srv.Handler())

	code, p := postSpec(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	// Let it make some progress, then shut the server down mid-run.
	deadline := time.Now().Add(10 * time.Second)
	for {
		sc, b := getBody(t, ts.URL+"/campaigns/"+p.ID)
		if sc != 200 {
			t.Fatalf("status: %d", sc)
		}
		var cur Progress
		if err := json.Unmarshal(b, &cur); err != nil {
			t.Fatal(err)
		}
		if cur.RunsDone > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := srv.Close(); err != nil { // graceful: cancels + syncs
		t.Fatal(err)
	}
	ts.Close()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a new store handle, server, and listener on the same
	// cache directory.
	store2, err := runcache.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	persisted := store2.Len()
	if persisted == 0 {
		t.Fatal("shutdown persisted nothing")
	}
	srv2 := NewServer(store2, 2)
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	code, p2 := postSpec(t, ts2, spec)
	if code != http.StatusAccepted || p2.ID != p.ID {
		t.Fatalf("resubmit after restart: %d id=%s want %s", code, p2.ID, p.ID)
	}
	fin := waitDone(t, ts2, p2.ID)
	if fin.Status != StatusDone {
		t.Fatalf("resumed campaign finished %v (%s)", fin.Status, fin.Error)
	}
	if fin.RunsDone == fin.Simulated {
		t.Errorf("resume simulated everything (%d runs) — disk cache unused", fin.Simulated)
	}
	if want := fin.TotalRuns - uint64(persisted); fin.Simulated != want {
		t.Errorf("resume simulated %d, want %d (%d persisted)", fin.Simulated, want, persisted)
	}
	code, got := getBody(t, ts2.URL+"/campaigns/"+p2.ID+"/result")
	if code != 200 {
		t.Fatalf("result after resume: %d", code)
	}
	if !bytes.Equal(got, ref) {
		t.Errorf("resumed aggregates differ from uninterrupted -j 1 run")
	}
}

// TestServerResultConflict pins the 409 contract: asking for the result
// of an unfinished campaign returns its progress, not partial bytes.
func TestServerResultConflict(t *testing.T) {
	spec := smallSpec()
	spec.Seeds.Count = 200 // long enough to still be running when probed

	srv := NewServer(nil, 1)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, p := postSpec(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	code, b := getBody(t, ts.URL+"/campaigns/"+p.ID+"/result")
	if code == http.StatusOK {
		t.Skip("campaign outran the probe")
	}
	if code != http.StatusConflict {
		t.Fatalf("unfinished result: %d, want 409", code)
	}
	var cur Progress
	if err := json.Unmarshal(b, &cur); err != nil {
		t.Fatalf("409 body is not progress: %v\n%s", err, b)
	}

	// Cancel over HTTP; terminal state must be cancelled and result
	// must stay 409.
	resp, err := http.Post(ts.URL+"/campaigns/"+p.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}
	fin := waitDone(t, ts, p.ID)
	if fin.Status != StatusCancelled {
		t.Skipf("campaign finished %v before cancel landed", fin.Status)
	}
	if code, _ := getBody(t, ts.URL+"/campaigns/"+p.ID+"/result"); code != http.StatusConflict {
		t.Errorf("cancelled result: %d, want 409", code)
	}

	// A resubmit after cancellation starts a fresh attempt (202).
	code, p3 := postSpec(t, ts, spec)
	if code != http.StatusAccepted || p3.ID != p.ID {
		t.Fatalf("resubmit after cancel: %d", code)
	}
	if fin := waitDone(t, ts, p3.ID); fin.Status != StatusDone {
		t.Fatalf("replacement finished %v", fin.Status)
	}
}

func TestServerClosedRejectsSubmit(t *testing.T) {
	srv := NewServer(nil, 1)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	code, _ := postSpec(t, ts, smallSpec())
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submit after close: %d, want 503", code)
	}
}
