package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable lease clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestLeaseTableLifecycle(t *testing.T) {
	clk := newFakeClock()
	lt := newLeaseTable(3, 10*time.Second, clk.now)

	// Fresh shards hand out lowest-first.
	s0, tok0, ok := lt.acquire("w1")
	if !ok || s0 != 0 {
		t.Fatalf("first acquire = %d, %v; want shard 0", s0, ok)
	}
	s1, _, ok := lt.acquire("w2")
	if !ok || s1 != 1 {
		t.Fatalf("second acquire = %d, %v; want shard 1", s1, ok)
	}
	s2, tok2, ok := lt.acquire("w1")
	if !ok || s2 != 2 {
		t.Fatalf("third acquire = %d, %v; want shard 2", s2, ok)
	}
	if _, _, ok := lt.acquire("w3"); ok {
		t.Fatal("acquire succeeded with every shard leased")
	}

	// Renewal holds a lease across what would otherwise be expiry.
	clk.advance(8 * time.Second)
	if !lt.renew(0, tok0) {
		t.Fatal("renew of live lease failed")
	}
	if lt.renew(0, "bogus-token") {
		t.Fatal("renew with wrong token succeeded")
	}

	// w2 dies: shard 1 expires and reassigns; renewed shard 0 survives.
	clk.advance(4 * time.Second)
	got, _, ok := lt.acquire("w3")
	if !ok || got != 1 {
		t.Fatalf("post-expiry acquire = %d, %v; want reassigned shard 1", got, ok)
	}
	if lt.renew(2, tok2) {
		t.Fatal("renew of expired lease succeeded")
	}
	if st := lt.state(); st.Expired != 2 {
		t.Fatalf("expired = %d, want 2 (shards 1 and 2)", st.Expired)
	}

	// First completion wins; the late duplicate is flagged.
	if dup := lt.complete(1); dup {
		t.Fatal("first completion reported duplicate")
	}
	if dup := lt.complete(1); !dup {
		t.Fatal("second completion not reported duplicate")
	}

	// An expired-lease completion is still accepted first-write-wins.
	if dup := lt.complete(2); dup {
		t.Fatal("expired-lease completion rejected")
	}
	if dup := lt.complete(0); dup {
		t.Fatal("completion of renewed shard 0 rejected")
	}
	if !lt.allDone() {
		t.Fatal("allDone false with every shard complete")
	}
	st := lt.state()
	if st.Done != 3 || st.Leased != 0 || st.Duplicates != 1 || st.Workers != 3 {
		t.Fatalf("terminal state = %+v", st)
	}
}

func TestLeaseTableRelease(t *testing.T) {
	lt := newLeaseTable(2, time.Hour, nil)
	s, tok, _ := lt.acquire("w1")
	lt.release(s, "wrong-token") // no-op
	if _, _, ok := lt.acquire("w2"); !ok {
		t.Fatal("shard 1 not acquirable")
	}
	lt.release(s, tok)
	got, _, ok := lt.acquire("w2")
	if !ok || got != s {
		t.Fatalf("released shard not reassigned: got %d, %v", got, ok)
	}
}

func TestShardCodecRoundTrip(t *testing.T) {
	spec := smallSpec()
	ref := runToBytes(t, spec, Options{Jobs: 1})

	j, err := New(spec, Options{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	jspec := j.Spec()
	digest, err := jspec.Digest()
	if err != nil {
		t.Fatal(err)
	}
	e := j.exec
	var payloads [][]byte
	for s := uint64(0); s < e.nShards(); s++ {
		a, err := e.foldShard(s, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := e.shardRange(s)
		payloads = append(payloads, encodeShardAgg(digest, s, hi-lo, 7, 3, a))
	}

	// Decoding and merging the wire forms reproduces the reference
	// bytes exactly: the codec is bit-transparent.
	j2, err := New(spec, Options{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	for s, p := range payloads {
		rep, err := decodeShardAgg(p, e.g.cells())
		if err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
		if rep.digest != digest || rep.shard != uint64(s) || rep.simulated != 7 || rep.diskHits != 3 {
			t.Fatalf("shard %d header mismatch: %+v", s, rep)
		}
		j2.deliver(rep.shard, rep.agg)
	}
	ag, err := j2.g.aggregates(j2.total)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ag.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatal("decoded-and-merged bytes differ from reference")
	}

	// Corruption and structural mismatches are rejected.
	bad := append([]byte(nil), payloads[0]...)
	bad[len(bad)-6] ^= 1
	if _, err := decodeShardAgg(bad, e.g.cells()); err == nil || !strings.Contains(err.Error(), "crc") {
		t.Fatalf("corrupted payload decoded: %v", err)
	}
	if _, err := decodeShardAgg(payloads[0], e.g.cells()+1); err == nil {
		t.Fatal("wrong cell count decoded")
	}
	if _, err := decodeShardAgg(payloads[0][:10], e.g.cells()); err == nil {
		t.Fatal("truncated payload decoded")
	}
}

// remoteLoop plays a remote worker against a Job in-process: lease,
// fold with its own executor, round-trip the wire codec, complete.
func remoteLoop(t *testing.T, j *Job, name string, done <-chan struct{}) {
	t.Helper()
	g2, err := compile(j.Spec())
	if err != nil {
		t.Error(err)
		return
	}
	e := newExecutor(g2, nil, false)
	jspec := j.Spec()
	digest, err := jspec.Digest()
	if err != nil {
		t.Error(err)
		return
	}
	for {
		select {
		case <-done:
			return
		default:
		}
		grant, ok, gone := j.Lease(name)
		if gone {
			return
		}
		if !ok {
			time.Sleep(time.Millisecond)
			continue
		}
		a, err := e.foldShard(grant.Shard, nil, nil)
		if err != nil {
			t.Error(err)
			return
		}
		sim, hits := e.counterDelta()
		rep, err := decodeShardAgg(encodeShardAgg(digest, grant.Shard, grant.Hi-grant.Lo, sim, hits, a), g2.cells())
		if err != nil {
			t.Error(err)
			return
		}
		j.CompleteShard(rep)
	}
}

func TestDistributedByteIdentical(t *testing.T) {
	spec := smallSpec()
	spec.ShardSize = 1 // 20 shards of 1 run: plenty of lease churn
	ref := runToBytes(t, spec, Options{Jobs: 1})

	// Coordinator-only: every shard must travel the lease protocol and
	// the wire codec, so remote participation is total, not a race.
	j, err := New(spec, Options{Jobs: 1, NoLocalExec: true})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	for _, name := range []string{"remote/a", "remote/b"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			remoteLoop(t, j, name, done)
		}(name)
	}
	execErr := j.Execute()
	close(done)
	wg.Wait()
	if execErr != nil {
		t.Fatal(execErr)
	}
	b, ok := j.Result()
	if !ok || !bytes.Equal(b, ref) {
		t.Fatalf("distributed bytes differ from -j 1 reference (ok=%v)", ok)
	}
	p := j.Progress()
	if p.RunsDone != p.TotalRuns {
		t.Fatalf("runs done %d of %d", p.RunsDone, p.TotalRuns)
	}
	// Coordinator-only mode: every run must have arrived remotely.
	if p.RemoteRuns != p.TotalRuns {
		t.Fatalf("remote runs %d of %d", p.RemoteRuns, p.TotalRuns)
	}
	if p.Leases == nil || p.Leases.Done != 20 {
		t.Fatalf("lease state = %+v", p.Leases)
	}

	// Post-completion traffic: everything answers gone.
	if _, _, gone := j.Lease("remote/late"); !gone {
		t.Fatal("lease granted on finished campaign")
	}
	if _, gone := j.CompleteShard(shardReport{shard: 0}); !gone {
		t.Fatal("completion accepted on finished campaign")
	}
	if j.RenewLease(0, "any") {
		t.Fatal("renew accepted on finished campaign")
	}
}

// TestWorkerCrashReassign kills a lease holder mid-campaign (it leases
// shards and never completes them) and asserts the TTL expiry path
// hands its shards back to the surviving local worker, with output
// bytes unperturbed and the duplicate late completion dropped.
func TestWorkerCrashReassign(t *testing.T) {
	spec := smallSpec()
	spec.ShardSize = 1
	ref := runToBytes(t, spec, Options{Jobs: 1})

	j, err := New(spec, Options{Jobs: 1, LeaseTTL: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// The doomed worker grabs every shard straight from the lease
	// table before Execute even starts, then "crashes": no renewals,
	// no completions. (Going under the Lease wrapper dodges the
	// status-gating race — on a fast machine the campaign would finish
	// before an HTTP worker got a single grant.) The local worker must
	// wait out the 30ms TTL and reclaim every shard.
	var grabbed []uint64
	for {
		s, _, ok := j.leases.acquire("remote/doomed")
		if !ok {
			break
		}
		grabbed = append(grabbed, s)
	}
	if len(grabbed) != 20 {
		t.Fatalf("doomed worker grabbed %d shards, want all 20", len(grabbed))
	}
	if err := j.Execute(); err != nil {
		t.Fatal(err)
	}
	b, ok := j.Result()
	if !ok || !bytes.Equal(b, ref) {
		t.Fatal("crash-reassign bytes differ from reference")
	}
	p := j.Progress()
	if p.Leases.Expired == 0 {
		t.Fatalf("doomed worker held %d leases but none expired", len(grabbed))
	}

	// A very late completion of a reassigned shard must be refused now
	// that the campaign is done — never merged twice.
	if _, gone := j.CompleteShard(shardReport{shard: grabbed[0]}); !gone {
		t.Fatal("late completion accepted after campaign finished")
	}
}

// startWorkers runs n Workers against the test server and returns a
// stop function that cancels and waits for them.
func startWorkers(t *testing.T, ts *httptest.Server, n int, opts WorkerOptions) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		o := opts
		o.Coordinator = ts.URL
		o.Name = "test-worker"
		o.PollInterval = 2 * time.Millisecond
		w, err := NewWorker(o)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx)
		}()
	}
	return func() {
		cancel()
		wg.Wait()
	}
}

func TestWorkerEndToEndHTTP(t *testing.T) {
	spec := smallSpec()
	spec.ShardSize = 1
	ref := runToBytes(t, spec, Options{Jobs: 1})

	srv := NewServerOpts(Options{Jobs: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	stop := startWorkers(t, ts, 2, WorkerOptions{Logf: t.Logf})
	defer stop()

	code, p := postSpec(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	fin := waitDone(t, ts, p.ID)
	if fin.Status != StatusDone {
		t.Fatalf("status %v (%s)", fin.Status, fin.Error)
	}
	code, body := getBody(t, ts.URL+"/campaigns/"+p.ID+"/result")
	if code != http.StatusOK || !bytes.Equal(body, ref) {
		t.Fatalf("served bytes differ from reference (code %d)", code)
	}
}

func TestServerAuthToken(t *testing.T) {
	srv := NewServerOpts(Options{Jobs: 1})
	defer srv.Close()
	srv.SetAuthToken("sesame")
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Tokenless and wrong-token requests bounce; healthz stays open.
	for _, auth := range []string{"", "Bearer wrong"} {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/campaigns", nil)
		if auth != "" {
			req.Header.Set("Authorization", auth)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("auth %q: code %d, want 401", auth, resp.StatusCode)
		}
	}
	if code, _ := getBody(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d with auth enabled", code)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/campaigns", nil)
	req.Header.Set("Authorization", "Bearer sesame")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authed list = %d, want 200", resp.StatusCode)
	}

	// An authed worker completes a campaign end to end.
	spec := smallSpec()
	ref := runToBytes(t, spec, Options{Jobs: 1})
	stop := startWorkers(t, ts, 1, WorkerOptions{Token: "sesame"})
	defer stop()
	b, _ := json.Marshal(spec)
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/campaigns", bytes.NewReader(b))
	req.Header.Set("Authorization", "Bearer sesame")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var prog Progress
	json.NewDecoder(resp.Body).Decode(&prog)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("authed submit = %d", resp.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/campaigns/"+prog.ID, nil)
		req.Header.Set("Authorization", "Bearer sesame")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var p Progress
		json.NewDecoder(resp.Body).Decode(&p)
		resp.Body.Close()
		if p.Status == StatusDone {
			break
		}
		if p.Status == StatusFailed || p.Status == StatusCancelled || time.Now().After(deadline) {
			t.Fatalf("campaign did not finish: %+v", p)
		}
		time.Sleep(5 * time.Millisecond)
	}
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/campaigns/"+prog.ID+"/result", nil)
	req.Header.Set("Authorization", "Bearer sesame")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(body, ref) {
		t.Fatal("authed distributed bytes differ from reference")
	}
}

func TestServerShardEndpointValidation(t *testing.T) {
	srv := NewServerOpts(Options{Jobs: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, p := postSpec(t, ts, smallSpec())
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	waitDone(t, ts, p.ID)

	post := func(path string, body []byte) int {
		resp, err := http.Post(ts.URL+path, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("/campaigns/nope/shards/0", nil); code != http.StatusNotFound {
		t.Fatalf("unknown campaign = %d, want 404", code)
	}
	if code := post("/campaigns/"+p.ID+"/shards/xyz", nil); code != http.StatusBadRequest {
		t.Fatalf("bad shard index = %d, want 400", code)
	}
	if code := post("/campaigns/"+p.ID+"/shards/0", []byte("garbage")); code != http.StatusBadRequest {
		t.Fatalf("garbage payload = %d, want 400", code)
	}
	// A structurally valid payload for a finished campaign: gone.
	j, err := New(smallSpec(), Options{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, err := j.exec.foldShard(0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	jspec := j.Spec()
	digest, _ := jspec.Digest()
	lo, hi := j.exec.shardRange(0)
	payload := encodeShardAgg(digest, 0, hi-lo, 0, 0, a)
	if code := post("/campaigns/"+p.ID+"/shards/0", payload); code != http.StatusGone {
		t.Fatalf("completion on done campaign = %d, want 410", code)
	}
	// Lease and renew on a finished campaign: gone.
	if code := post("/campaigns/"+p.ID+"/lease", nil); code != http.StatusGone {
		t.Fatalf("lease on done campaign = %d, want 410", code)
	}
	if code := post("/campaigns/"+p.ID+"/shards/0/renew", nil); code != http.StatusGone {
		t.Fatalf("renew on done campaign = %d, want 410", code)
	}
}

func TestServerResultRetryAfter(t *testing.T) {
	srv := NewServerOpts(Options{Jobs: 1})
	defer srv.Close()
	// A job parked in the map but never queued: deterministically
	// unfinished when we poll its result.
	j, err := New(smallSpec(), Options{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv.mu.Lock()
	srv.byID[j.ID()] = j
	srv.order = append(srv.order, j.ID())
	srv.mu.Unlock()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/campaigns/" + j.ID() + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("unfinished result = %d, want 409", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("409 without Retry-After header")
	}
}

func TestServerDigestCollisionRejected(t *testing.T) {
	srv := NewServerOpts(Options{Jobs: 1})
	defer srv.Close()
	// Forge a collision: park an existing job under the ID the new
	// submission will hash to, but with a different spec. (Real 64-bit
	// ID collisions exist; constructing one by search is not worth the
	// CPU, so the test plants the collision directly.)
	other := smallSpec()
	other.Name = "other"
	victim, err := New(other, Options{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	sub := smallSpec()
	subJob, err := New(sub, Options{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv.mu.Lock()
	srv.byID[subJob.ID()] = victim
	srv.order = append(srv.order, subJob.ID())
	srv.mu.Unlock()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, _ := postSpec(t, ts, sub)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("colliding submit = %d, want 422", code)
	}
	// And the idempotent path still works: resubmitting the planted
	// spec itself coalesces instead of 422ing.
	if code, _ := postSpec(t, ts, other); code == http.StatusUnprocessableEntity {
		t.Fatal("identical resubmission rejected as collision")
	}
}

func TestServerStatz(t *testing.T) {
	srv := NewServerOpts(Options{Jobs: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, p := postSpec(t, ts, smallSpec())
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	waitDone(t, ts, p.ID)

	code, body := getBody(t, ts.URL+"/statz")
	if code != http.StatusOK {
		t.Fatalf("statz = %d", code)
	}
	var st Statz
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("statz not JSON: %v", err)
	}
	if len(st.Campaigns) != 1 || st.Campaigns[0].ID != p.ID {
		t.Fatalf("statz campaigns = %+v", st.Campaigns)
	}
	if st.Campaigns[0].Leases == nil || st.Campaigns[0].Leases.Done == 0 {
		t.Fatalf("statz lease state missing: %+v", st.Campaigns[0].Leases)
	}
	if st.Campaigns[0].Aggregates != nil {
		t.Fatal("statz carries aggregates; it should stay light")
	}

	// pprof is mounted.
	if code, _ := getBody(t, ts.URL+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("pprof cmdline = %d", code)
	}
}
