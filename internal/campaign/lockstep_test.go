package campaign

import (
	"bytes"
	"testing"

	"repro/internal/lockstep"
)

// TestLockstepCampaignIdentity proves the shard executor's lane batching
// is byte-transparent: the same spec run with lockstep on and off (and
// with shard boundaries that clip seed blocks) produces identical
// canonical aggregates, and the default path actually executes lanes.
func TestLockstepCampaignIdentity(t *testing.T) {
	spec := smallSpec()
	spec.ShardSize = 16 // whole 5-seed blocks inside one shard
	ref := runToBytes(t, spec, Options{Jobs: 1, NoLockstep: true})

	lanes0, _ := lockstep.Stats()
	if got := runToBytes(t, spec, Options{Jobs: 1}); !bytes.Equal(got, ref) {
		t.Errorf("lockstep aggregates differ from scalar reference\nref: %s\ngot: %s", ref, got)
	}
	if lanes1, _ := lockstep.Stats(); lanes1 == lanes0 {
		t.Fatalf("default campaign executed no lockstep lanes")
	}

	// Shard boundaries that slice seed blocks: a 4-run clip still lanes,
	// the 1-run remainder falls back to scalar. Compare against the
	// scalar reference at the same shard size (shard size shapes the
	// aggregate merge order, so it must match between the two).
	spec.ShardSize = 4
	clippedRef := runToBytes(t, spec, Options{Jobs: 1, NoLockstep: true})
	if got := runToBytes(t, spec, Options{Jobs: 4}); !bytes.Equal(got, clippedRef) {
		t.Errorf("clipped-block aggregates differ from scalar reference")
	}
}
