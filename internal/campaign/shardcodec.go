package campaign

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/stats"
)

// Binary codec for one shard's aggregate (*agg) on the wire between a
// worker and the coordinator. Every float travels as its exact bit
// pattern (Float64bits of the raw Welford moments), so
// decodeShardAgg(encodeShardAgg(a)) reproduces the accumulator field
// for field — which is what makes a remotely-computed shard merge into
// the campaign total byte-identically to the same shard computed
// locally. The header carries the campaign digest and shard index so a
// mis-addressed POST (wrong campaign, wrong shard, version skew) is
// rejected instead of silently corrupting the merge, and a trailing
// crc32 catches transport truncation before the coordinator trusts any
// of it.
//
// Layout (little-endian):
//
//	[4B magic "eMPa"] [1B version] [32B spec digest] [8B shard]
//	[8B runs] [8B simulated] [8B disk hits] [4B cell count]
//	cells × cellAccSize [4B crc32 over everything before it]

var shardMagic = [4]byte{'e', 'M', 'P', 'a'}

const (
	shardCodecVersion = 1
	// runs/completed/lteUsed + 3 streams × (N + 4 float moments).
	cellAccSize     = (3 + 3*5) * 8
	shardHeaderSize = 4 + 1 + 32 + 8 + 8 + 8 + 8 + 4
)

// shardReport is a decoded shard completion: the aggregate plus the
// worker's execution counters (informational — they feed Progress, not
// the merge).
type shardReport struct {
	digest    [32]byte
	shard     uint64
	runs      uint64
	simulated uint64
	diskHits  uint64
	agg       *agg
}

func appendStream(b []byte, s *stats.Stream) []byte {
	n, mean, m2, mn, mx := s.Moments()
	b = binary.LittleEndian.AppendUint64(b, n)
	for _, f := range [...]float64{mean, m2, mn, mx} {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
	}
	return b
}

func encodeShardAgg(digest [32]byte, shard, runs, simulated, diskHits uint64, a *agg) []byte {
	b := make([]byte, 0, shardHeaderSize+len(a.cells)*cellAccSize+4)
	b = append(b, shardMagic[:]...)
	b = append(b, shardCodecVersion)
	b = append(b, digest[:]...)
	b = binary.LittleEndian.AppendUint64(b, shard)
	b = binary.LittleEndian.AppendUint64(b, runs)
	b = binary.LittleEndian.AppendUint64(b, simulated)
	b = binary.LittleEndian.AppendUint64(b, diskHits)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(a.cells)))
	for i := range a.cells {
		c := &a.cells[i]
		b = binary.LittleEndian.AppendUint64(b, c.runs)
		b = binary.LittleEndian.AppendUint64(b, c.completed)
		b = binary.LittleEndian.AppendUint64(b, c.lteUsed)
		b = appendStream(b, &c.energy)
		b = appendStream(b, &c.dltime)
		b = appendStream(b, &c.jpb)
	}
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// decodeShardAgg parses and validates a shard completion. wantCells
// guards the merge: a payload whose cell count disagrees with the
// campaign's grid is structurally wrong regardless of its checksum.
func decodeShardAgg(b []byte, wantCells int) (shardReport, error) {
	var r shardReport
	if len(b) < shardHeaderSize+4 {
		return r, fmt.Errorf("campaign: shard payload is %d bytes, want ≥ %d", len(b), shardHeaderSize+4)
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return r, fmt.Errorf("campaign: shard payload crc mismatch")
	}
	if [4]byte(b[:4]) != shardMagic || b[4] != shardCodecVersion {
		return r, fmt.Errorf("campaign: shard payload magic/version mismatch")
	}
	copy(r.digest[:], b[5:37])
	u64 := func(off int) uint64 { return binary.LittleEndian.Uint64(b[off:]) }
	r.shard = u64(37)
	r.runs = u64(45)
	r.simulated = u64(53)
	r.diskHits = u64(61)
	nCells := int(binary.LittleEndian.Uint32(b[69:73]))
	if nCells != wantCells {
		return r, fmt.Errorf("campaign: shard payload has %d cells, campaign has %d", nCells, wantCells)
	}
	if want := shardHeaderSize + nCells*cellAccSize + 4; len(b) != want {
		return r, fmt.Errorf("campaign: shard payload is %d bytes, want %d", len(b), want)
	}
	r.agg = newAgg(nCells)
	off := shardHeaderSize
	f64 := func() float64 {
		v := math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
		off += 8
		return v
	}
	n64 := func() uint64 {
		v := binary.LittleEndian.Uint64(b[off:])
		off += 8
		return v
	}
	stream := func() stats.Stream {
		n := n64()
		mean, m2, mn, mx := f64(), f64(), f64(), f64()
		return stats.StreamFromMoments(n, mean, m2, mn, mx)
	}
	for i := 0; i < nCells; i++ {
		c := &r.agg.cells[i]
		c.runs = n64()
		c.completed = n64()
		c.lteUsed = n64()
		c.energy = stream()
		c.dltime = stream()
		c.jpb = stream()
	}
	return r, nil
}
