package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/runcache"
)

// Worker is the pull side of the shard-lease protocol: a process (or an
// in-process test fixture) that polls a coordinator for running
// campaigns, leases shards, executes them with the full local stack —
// lockstep lanes, checkpoint fork, its own disk store — and streams the
// bit-exact shard aggregates back. Workers are stateless from the
// coordinator's point of view: one can join mid-campaign, die mid-shard
// (the lease expires and the shard reassigns), or race another worker
// to a completion (first write wins) without perturbing the output
// bytes.
type Worker struct {
	opts    WorkerOptions
	client  *http.Client
	baseURL string

	mu    sync.Mutex
	execs map[string]*executor // compiled campaign cache, by id

	// ShardsDone / Duplicates / LeasesLost count this worker's
	// lifetime outcomes, for logging and tests.
	ShardsDone atomic.Uint64
	Duplicates atomic.Uint64
	LeasesLost atomic.Uint64
}

// WorkerOptions configures a Worker.
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL (e.g.
	// "http://host:8080"). Required.
	Coordinator string
	// Token is the bearer token when the coordinator requires auth.
	Token string
	// Disk is this worker's local result cache. Optional but strongly
	// recommended: it is what makes a rejoined worker fast. Workers
	// must not share a cache directory with each other or with the
	// coordinator (the store is single-process).
	Disk *runcache.Store
	// Jobs is how many shards this worker executes concurrently
	// (default 1; each shard already folds serially by design).
	Jobs int
	// NoLockstep disables lane batching, exactly as in Options.
	NoLockstep bool
	// PollInterval is the idle wait between lease attempts when the
	// coordinator has nothing for us (default 500ms).
	PollInterval time.Duration
	// Name identifies this worker in lease state (default host/pid).
	Name string
	// Client overrides the HTTP client (tests inject an
	// httptest-backed one).
	Client *http.Client
	// Logf, when set, receives progress lines (the CLI wires log.Printf).
	Logf func(format string, args ...any)
}

// NewWorker builds a worker. Run drives it.
func NewWorker(opts WorkerOptions) (*Worker, error) {
	if opts.Coordinator == "" {
		return nil, fmt.Errorf("campaign: worker needs a coordinator URL")
	}
	if opts.Jobs <= 0 {
		opts.Jobs = 1
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 500 * time.Millisecond
	}
	if opts.Name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		opts.Name = fmt.Sprintf("%s/%d", host, os.Getpid())
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &Worker{
		opts:    opts,
		client:  client,
		baseURL: opts.Coordinator,
		execs:   make(map[string]*executor),
	}, nil
}

func (w *Worker) logf(format string, args ...any) {
	if w.opts.Logf != nil {
		w.opts.Logf(format, args...)
	}
}

// Run polls and executes until ctx is cancelled. Transport errors back
// off exponentially (100ms doubling to 5s) and never kill the worker:
// a coordinator restart just looks like a long backoff. Run returns
// ctx.Err() on cancellation.
func (w *Worker) Run(ctx context.Context) error {
	var wg sync.WaitGroup
	for i := 0; i < w.opts.Jobs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.loop(ctx)
		}()
	}
	wg.Wait()
	return ctx.Err()
}

const (
	backoffMin = 100 * time.Millisecond
	backoffMax = 5 * time.Second
)

// loop is one lease-execute-complete cycle runner.
func (w *Worker) loop(ctx context.Context) {
	backoff := backoffMin
	for ctx.Err() == nil {
		worked, err := w.once(ctx)
		switch {
		case err != nil:
			w.logf("worker: %v (retrying in %v)", err, backoff)
			sleepCtx(ctx, backoff)
			if backoff *= 2; backoff > backoffMax {
				backoff = backoffMax
			}
		case !worked:
			backoff = backoffMin
			sleepCtx(ctx, w.opts.PollInterval)
		default:
			backoff = backoffMin
		}
	}
}

func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// once tries to lease and execute one shard of some running campaign.
// worked=false means the coordinator had nothing for us.
func (w *Worker) once(ctx context.Context) (worked bool, err error) {
	ids, err := w.runningCampaigns(ctx)
	if err != nil {
		return false, err
	}
	for _, id := range ids {
		g, ok, err := w.lease(ctx, id)
		if err != nil {
			return false, err
		}
		if !ok {
			continue
		}
		if err := w.executeShard(ctx, id, g); err != nil {
			return true, err
		}
		return true, nil
	}
	return false, nil
}

// runningCampaigns lists the coordinator's campaigns currently
// accepting leases, in submission order.
func (w *Worker) runningCampaigns(ctx context.Context) ([]string, error) {
	var list []Progress
	if err := w.getJSON(ctx, "/campaigns", &list); err != nil {
		return nil, err
	}
	var ids []string
	for _, p := range list {
		if p.Status == StatusRunning {
			ids = append(ids, p.ID)
		}
	}
	// Evict compiled grids for campaigns that no longer exist or have
	// finished, so a long-lived worker doesn't accumulate them.
	alive := make(map[string]bool, len(ids))
	for _, id := range ids {
		alive[id] = true
	}
	w.mu.Lock()
	for id := range w.execs {
		if !alive[id] {
			delete(w.execs, id)
		}
	}
	w.mu.Unlock()
	return ids, nil
}

// executorFor compiles (once) the campaign's normalised spec into this
// worker's executor — same grid, same shard bounds, same cache keys as
// the coordinator's, by construction.
func (w *Worker) executorFor(ctx context.Context, id string) (*executor, error) {
	w.mu.Lock()
	e := w.execs[id]
	w.mu.Unlock()
	if e != nil {
		return e, nil
	}
	var spec Spec
	if err := w.getJSON(ctx, "/campaigns/"+id+"/spec", &spec); err != nil {
		return nil, err
	}
	g, err := compile(spec)
	if err != nil {
		return nil, fmt.Errorf("campaign: compiling spec for %s: %w", id, err)
	}
	gotID, err := g.spec.ID()
	if err != nil {
		return nil, err
	}
	if gotID != id {
		return nil, fmt.Errorf("campaign: coordinator spec for %s compiles to id %s", id, gotID)
	}
	e = newExecutor(g, w.opts.Disk, w.opts.NoLockstep)
	w.mu.Lock()
	if prev := w.execs[id]; prev != nil {
		e = prev // another loop won the compile race
	} else {
		w.execs[id] = e
	}
	w.mu.Unlock()
	return e, nil
}

// lease asks for one shard. ok=false covers both "nothing available"
// and "campaign gone" — the caller just moves on either way.
func (w *Worker) lease(ctx context.Context, id string) (g LeaseGrant, ok bool, err error) {
	req, err := w.newRequest(ctx, http.MethodPost, "/campaigns/"+id+"/lease?worker="+w.opts.Name, nil)
	if err != nil {
		return g, false, err
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return g, false, err
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		if err := json.NewDecoder(resp.Body).Decode(&g); err != nil {
			return g, false, fmt.Errorf("campaign: decoding lease grant: %w", err)
		}
		return g, true, nil
	case http.StatusNoContent, http.StatusGone:
		return g, false, nil
	default:
		return g, false, httpError("lease", resp)
	}
}

// executeShard folds the leased shard locally, heartbeating the lease
// at TTL/3, and posts the aggregate. A lost lease (coordinator says
// 410 on renew) aborts the fold — the shard was reassigned, finishing
// it would only produce a duplicate.
func (w *Worker) executeShard(ctx context.Context, id string, g LeaseGrant) error {
	e, err := w.executorFor(ctx, id)
	if err != nil {
		return err
	}
	if g.Shard >= e.nShards() {
		return fmt.Errorf("campaign: leased shard %d of %d", g.Shard, e.nShards())
	}

	var lost atomic.Bool
	hbCtx, stopHB := context.WithCancel(ctx)
	var hbWG sync.WaitGroup
	ttl := time.Duration(g.TTLMs) * time.Millisecond
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(ttl / 3)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				if !w.renew(hbCtx, id, g) {
					lost.Store(true)
					return
				}
			}
		}
	}()

	a, err := e.foldShard(g.Shard,
		func() bool { return ctx.Err() != nil || lost.Load() },
		nil)
	stopHB()
	hbWG.Wait()
	if err != nil {
		return err
	}
	if a == nil { // aborted: ctx cancelled or lease lost
		if lost.Load() {
			w.LeasesLost.Add(1)
			w.logf("worker: lost lease on %s shard %d, abandoning", id, g.Shard)
			return nil
		}
		return ctx.Err()
	}

	digest, err := e.g.spec.Digest()
	if err != nil {
		return err
	}
	sim, hits := e.counterDelta()
	body := encodeShardAgg(digest, g.Shard, g.Hi-g.Lo, sim, hits, a)
	return w.postShard(ctx, id, g, body)
}

// renew heartbeats the lease; false means it is lost. Transport errors
// do NOT lose the lease — the coordinator may be briefly unreachable
// while the TTL is still running.
func (w *Worker) renew(ctx context.Context, id string, g LeaseGrant) bool {
	path := fmt.Sprintf("/campaigns/%s/shards/%d/renew", id, g.Shard)
	req, err := w.newRequest(ctx, http.MethodPost, path, nil)
	if err != nil {
		return true
	}
	req.Header.Set("X-Lease-Token", g.Token)
	resp, err := w.client.Do(req)
	if err != nil {
		return true
	}
	defer drain(resp)
	return resp.StatusCode != http.StatusGone
}

// postShard uploads the completion, retrying transport failures with
// backoff while the lease TTL allows. 4xx/410 are terminal for this
// shard: the work is abandoned (and will reassign if it didn't land).
func (w *Worker) postShard(ctx context.Context, id string, g LeaseGrant, body []byte) error {
	path := fmt.Sprintf("/campaigns/%s/shards/%d", id, g.Shard)
	backoff := backoffMin
	for attempt := 0; ; attempt++ {
		req, err := w.newRequest(ctx, http.MethodPost, path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		req.Header.Set("X-Lease-Token", g.Token)
		resp, err := w.client.Do(req)
		if err != nil {
			if attempt >= 5 || ctx.Err() != nil {
				return fmt.Errorf("campaign: posting shard %d: %w", g.Shard, err)
			}
			sleepCtx(ctx, backoff)
			if backoff *= 2; backoff > backoffMax {
				backoff = backoffMax
			}
			continue
		}
		func() {
			defer drain(resp)
			switch resp.StatusCode {
			case http.StatusOK:
				var ack struct {
					Status string `json:"status"`
				}
				json.NewDecoder(resp.Body).Decode(&ack)
				if ack.Status == "duplicate" {
					w.Duplicates.Add(1)
					w.logf("worker: shard %d of %s was a duplicate", g.Shard, id)
				} else {
					w.ShardsDone.Add(1)
				}
				err = nil
			case http.StatusGone:
				w.LeasesLost.Add(1)
				err = nil // campaign finished without us; fine
			default:
				err = httpError("shard post", resp)
			}
		}()
		return err
	}
}

func (w *Worker) newRequest(ctx context.Context, method, path string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequestWithContext(ctx, method, w.baseURL+path, body)
	if err != nil {
		return nil, err
	}
	if w.opts.Token != "" {
		req.Header.Set("Authorization", "Bearer "+w.opts.Token)
	}
	return req, nil
}

func (w *Worker) getJSON(ctx context.Context, path string, v any) error {
	req, err := w.newRequest(ctx, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return httpError("GET "+path, resp)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// drain finishes and closes a response body so the connection is
// reusable.
func drain(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

func httpError(what string, resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	return fmt.Errorf("campaign: %s: coordinator answered %s: %s", what, resp.Status, bytes.TrimSpace(b))
}
