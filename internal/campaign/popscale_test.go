package campaign

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/runcache"
)

// TestPopulationScaleConstantMemory is the acceptance check for the
// population-scale path: a million-run campaign (a small grid
// replicated 50 000×) executes under the streaming aggregators in
// constant memory — heap growth stays bounded no matter the run count,
// because per-run results are never retained — with ≥99% of runs
// served by the cache and aggregates byte-identical to the -j 1
// single-replica reference scaled up.
func TestPopulationScaleConstantMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("million-run campaign; skipped with -short")
	}
	spec := smallSpec()
	spec.Seeds.Count = 1 // 4 distinct runs (2 locs × 2 protos)
	spec.Replicate = 250_000
	spec.ShardSize = 4096
	if got := spec.TotalRuns(); got != 1_000_000 {
		t.Fatalf("grid is %d runs, want 1e6", got)
	}

	store, err := runcache.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	// Warm the pools and the 4 distinct simulations, then baseline the
	// heap so the measurement isolates the replay loop.
	warm := spec
	warm.Replicate = 1
	refBytes := runToBytes(t, warm, Options{Jobs: 1, Disk: store})
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)

	j, err := New(spec, Options{Disk: store})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Execute(); err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	runtime.ReadMemStats(&after)

	p := j.Progress()
	if p.RunsDone != 1_000_000 {
		t.Fatalf("done %d runs, want 1e6", p.RunsDone)
	}
	if p.Simulated != 0 {
		t.Errorf("simulated %d runs, want 0 (all four distinct runs pre-warmed)", p.Simulated)
	}
	if p.HitRate < 0.99 {
		t.Errorf("hit rate %.4f, want ≥ 0.99", p.HitRate)
	}

	// Constant memory: the live heap after a million runs must sit
	// within a fixed envelope of the pre-campaign baseline. 32 MB is
	// ~30× the executor's true working set (cells + pending shards) —
	// roomy enough to absorb allocator noise, tight enough that
	// retaining even 8-byte-per-run state (8 MB) plus its boxing would
	// blow through it.
	const envelope = 32 << 20
	grew := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if grew > envelope {
		t.Errorf("heap grew %d MB across a 1e6-run campaign, want < %d MB (per-run state retained?)",
			grew>>20, envelope>>20)
	}

	// The scaled aggregates must carry exactly 250 000× the reference
	// counts with identical means (same runs, same merge arithmetic).
	got, ok := j.Result()
	if !ok {
		t.Fatal("no result")
	}
	ref := mustUnmarshalAgg(t, refBytes)
	ag := mustUnmarshalAgg(t, got)
	if ag.TotalRuns != 1_000_000 {
		t.Fatalf("aggregated %d runs", ag.TotalRuns)
	}
	for i, c := range ag.Cells {
		r := ref.Cells[i]
		if c.Runs != 250_000*r.Runs {
			t.Errorf("cell %d: %d runs, want %d", i, c.Runs, 250_000*r.Runs)
		}
		// Means agree to FP noise (the replicated stream folds the same
		// values through 250 000× more Welford updates).
		if d := c.EnergyJ.Mean - r.EnergyJ.Mean; d > 1e-9*r.EnergyJ.Mean || d < -1e-9*r.EnergyJ.Mean {
			t.Errorf("cell %d: replicated mean %v != reference mean %v", i, c.EnergyJ.Mean, r.EnergyJ.Mean)
		}
	}

	// And the whole thing replays byte-identically at a different
	// worker count straight from the warm cache.
	again := runToBytes(t, spec, Options{Jobs: 2, Disk: store})
	if !bytes.Equal(again, got) {
		t.Error("replayed million-run campaign differs from first execution")
	}
}
