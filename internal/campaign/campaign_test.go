package campaign

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/runcache"
	"repro/internal/scenario"
	"repro/internal/units"
)

// smallSpec is the unit-test workhorse: a 2-protocol, 2-cell grid with
// tiny downloads so a full campaign executes in well under a second.
func smallSpec() Spec {
	return Spec{
		Name:      "unit",
		WiFi:      []string{"bad"},
		LTE:       []string{"good"},
		Locations: []string{"wdc", "sng"},
		SizesMB:   []float64{0.25},
		Protocols: []string{"mptcp", "emptcp"},
		Seeds:     SeedRange{Base: 100, Count: 5},
		ShardSize: 4,
	}
}

func TestSpecValidateDefaultsAndErrors(t *testing.T) {
	s := Spec{Seeds: SeedRange{Count: 1}}
	if err := s.Validate(); err != nil {
		t.Fatalf("minimal spec: %v", err)
	}
	if s.Device != "s3" || len(s.WiFi) != 2 || len(s.LTE) != 2 ||
		len(s.Locations) != 3 || len(s.SizesMB) != 1 ||
		len(s.Protocols) != 3 || s.Replicate != 1 || s.ShardSize != 1024 {
		t.Fatalf("defaults not filled: %+v", s)
	}
	// 1 rep × 2 wifi × 2 lte × 1 size × 3 proto × 3 loc × 1 seed
	if got := s.TotalRuns(); got != 36 {
		t.Fatalf("TotalRuns = %d, want 36", got)
	}

	bad := []Spec{
		{Seeds: SeedRange{Count: 0}},
		{Device: "iphone", Seeds: SeedRange{Count: 1}},
		{WiFi: []string{"great"}, Seeds: SeedRange{Count: 1}},
		{Locations: []string{"nyc"}, Seeds: SeedRange{Count: 1}},
		{Protocols: []string{"quic"}, Seeds: SeedRange{Count: 1}},
		{SizesMB: []float64{-1}, Seeds: SeedRange{Count: 1}},
		{Replicate: -3, Seeds: SeedRange{Count: 1}},
		{ShardSize: -1, Seeds: SeedRange{Count: 1}},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bad spec %d validated: %+v", i, b)
		}
	}
}

func TestSpecDigestIdentity(t *testing.T) {
	// Two spellings of the same campaign — explicit defaults vs blanks —
	// must share a digest; a changed seed must not.
	a := Spec{Seeds: SeedRange{Count: 2}}
	b := Spec{
		Device: "s3", WiFi: []string{"bad", "good"}, LTE: []string{"bad", "good"},
		Locations: []string{"wdc", "ams", "sng"}, SizesMB: []float64{16},
		Protocols: []string{"mptcp", "emptcp", "tcp-wifi"},
		Seeds:     SeedRange{Count: 2}, Replicate: 1, ShardSize: 1024,
	}
	da, err := a.Digest()
	if err != nil {
		t.Fatal(err)
	}
	db, err := b.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if da != db {
		t.Error("normalised-equal specs digest differently")
	}
	c := b
	c.Seeds.Base = 7
	if dc, _ := c.Digest(); dc == db {
		t.Error("different seed base, same digest")
	}
	// Digest must not mutate its receiver's normalisation state.
	blank := Spec{Seeds: SeedRange{Count: 2}}
	if _, err := blank.Digest(); err != nil {
		t.Fatal(err)
	}
	if blank.Device != "" {
		t.Error("Digest normalised its receiver in place")
	}
}

func TestGridDecomposition(t *testing.T) {
	g, err := compile(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if g.total != uint64(2*2*5) {
		t.Fatalf("total = %d, want 20", g.total)
	}
	if g.cells() != 2 { // 1 wifi × 1 lte × 1 size × 2 protos
		t.Fatalf("cells = %d, want 2", g.cells())
	}
	seenCell := make(map[int]int)
	seenSeed := make(map[int64]int)
	for i := uint64(0); i < g.total; i++ {
		sc, proto, seed, cell := g.runAt(i)
		if cell < 0 || cell >= g.cells() {
			t.Fatalf("run %d: cell %d out of range", i, cell)
		}
		if fast := g.cellAt(i); fast != cell {
			t.Fatalf("run %d: cellAt %d != runAt cell %d", i, fast, cell)
		}
		seenCell[cell]++
		seenSeed[seed]++
		if sc.Work == nil || sc.Device == nil {
			t.Fatalf("run %d: incomplete scenario", i)
		}
		wantProto := scenario.MPTCP
		if cell == 1 {
			wantProto = scenario.EMPTCP
		}
		if proto != wantProto {
			t.Fatalf("run %d: proto %v in cell %d", i, proto, cell)
		}
	}
	for cell, n := range seenCell {
		if n != 10 { // 2 locations × 5 seeds per cell
			t.Errorf("cell %d saw %d runs, want 10", cell, n)
		}
	}
	for seed, n := range seenSeed {
		if n != 4 { // each seed paired across 2 protos × 2 locations
			t.Errorf("seed %d used %d times, want 4", seed, n)
		}
	}
	// Replication re-enumerates the identical runs: the cache-hit
	// guarantee is exactly "replica indices map to equal cache keys".
	rep := smallSpec()
	rep.Replicate = 3
	gr, err := compile(rep)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < g.total; i++ {
		sc0, p0, s0, c0 := gr.runAt(i)
		sc1, p1, s1, c1 := gr.runAt(i + g.total)
		if p0 != p1 || s0 != s1 || c0 != c1 {
			t.Fatalf("replica of run %d decodes differently", i)
		}
		k0, ok0 := scenario.CacheKey(sc0, p0, scenario.Opts{Seed: s0})
		k1, ok1 := scenario.CacheKey(sc1, p1, scenario.Opts{Seed: s1})
		if !ok0 || !ok1 || k0 != k1 {
			t.Fatalf("replica of run %d has a different cache key", i)
		}
	}
}

func TestCodecRoundtrip(t *testing.T) {
	r := scenario.Result{
		Protocol:       scenario.EMPTCP,
		Completed:      true,
		CompletionTime: 12.375,
		Elapsed:        12.375,
		Energy:         units.Energy(34.5625),
		ByIface:        [3]units.Energy{1.25, 2.5, 0},
		BaseEnergy:     units.Energy(30.8125),
		Downloaded:     256 * units.KB,
		Uploaded:       9 * units.KB,
		JPerByte:       1.234e-6,
		BatteryPct:     0.0625,
		Switches:       3,
		LTEUsed:        true,
	}
	got, err := decodeResult(encodeResult(r))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("roundtrip mismatch:\nwant %+v\ngot  %+v", r, got)
	}

	// NaN fields (incomplete run) must survive bit-exactly.
	r.Completed = false
	r.CompletionTime = math.NaN()
	r.JPerByte = math.Inf(1)
	got, err = decodeResult(encodeResult(r))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(got.CompletionTime) || !math.IsInf(got.JPerByte, 1) {
		t.Fatalf("NaN/Inf not preserved: %+v", got)
	}

	// Truncated and version-skewed records are errors, not garbage.
	b := encodeResult(r)
	if _, err := decodeResult(b[:len(b)-1]); err == nil {
		t.Error("truncated record decoded")
	}
	b[0] = 99
	if _, err := decodeResult(b); err == nil {
		t.Error("version-skewed record decoded")
	}
}

// runToBytes executes a fresh job for the spec and returns its
// canonical aggregate bytes.
func runToBytes(t *testing.T, spec Spec, opts Options) []byte {
	t.Helper()
	j, err := New(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Execute(); err != nil {
		t.Fatal(err)
	}
	b, ok := j.Result()
	if !ok || len(b) == 0 {
		t.Fatalf("no result (status %v)", j.Progress().Status)
	}
	return b
}

func TestExecuteByteIdenticalAcrossWorkersAndCache(t *testing.T) {
	spec := smallSpec()
	ref := runToBytes(t, spec, Options{Jobs: 1}) // the -j 1 reference

	store, err := runcache.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"j8", Options{Jobs: 8}},
		{"j8+disk-cold", Options{Jobs: 8, Disk: store}},
		{"j3+disk-warm", Options{Jobs: 3, Disk: store}},
		{"j1+disk-warm", Options{Jobs: 1, Disk: store}},
	} {
		if got := runToBytes(t, spec, tc.opts); !bytes.Equal(got, ref) {
			t.Errorf("%s: aggregates differ from -j 1 reference\nref: %s\ngot: %s", tc.name, ref, got)
		}
	}

	// The warm re-runs must have been pure cache replays.
	j, err := New(spec, Options{Jobs: 4, Disk: store})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Execute(); err != nil {
		t.Fatal(err)
	}
	p := j.Progress()
	if p.Simulated != 0 {
		t.Errorf("warm re-run simulated %d runs, want 0", p.Simulated)
	}
	if p.HitRate != 1 {
		t.Errorf("warm re-run hit rate %v, want 1", p.HitRate)
	}
	if p.DiskHits != p.TotalRuns {
		t.Errorf("warm re-run disk hits %d, want %d", p.DiskHits, p.TotalRuns)
	}
}

func TestCancelThenResumeFromDisk(t *testing.T) {
	spec := smallSpec()
	spec.Seeds.Count = 40 // enough runway for the cancel to land mid-flight
	ref := runToBytes(t, spec, Options{Jobs: 1})

	dir := t.TempDir()
	store, err := runcache.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	j, err := New(spec, Options{Jobs: 1, Disk: store})
	if err != nil {
		t.Fatal(err)
	}
	// Cancel after the first shard lands: the terminal state must be
	// cancelled (not done/failed) and the prefix must be on disk.
	done := make(chan error, 1)
	go func() { done <- j.Execute() }()
	for j.Progress().RunsDone == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	j.Cancel()
	if err := <-done; err != nil {
		t.Fatalf("cancelled Execute returned %v", err)
	}
	p := j.Progress()
	if p.RunsDone == p.TotalRuns {
		t.Skip("campaign finished before cancel landed; nothing to resume")
	}
	if p.Status != StatusCancelled {
		t.Fatalf("status %v after cancel", p.Status)
	}
	if _, ok := j.Result(); ok {
		t.Fatal("cancelled job served a result")
	}
	persisted := store.Len()
	if persisted == 0 {
		t.Fatal("cancelled campaign persisted nothing")
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh process (new store handle on the same dir) resumes: only
	// the un-persisted suffix simulates, and the bytes still match.
	store2, err := runcache.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if store2.Len() != persisted {
		t.Fatalf("reopened store has %d entries, want %d", store2.Len(), persisted)
	}
	j2, err := New(spec, Options{Jobs: 2, Disk: store2})
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Execute(); err != nil {
		t.Fatal(err)
	}
	got, ok := j2.Result()
	if !ok {
		t.Fatal("resumed job has no result")
	}
	if !bytes.Equal(got, ref) {
		t.Errorf("resumed aggregates differ from -j 1 reference")
	}
	p2 := j2.Progress()
	if want := p2.TotalRuns - uint64(persisted); p2.Simulated != want {
		t.Errorf("resume simulated %d runs, want %d (rest from disk)", p2.Simulated, want)
	}
}

func TestReplicatedCampaignDedupes(t *testing.T) {
	spec := smallSpec()
	spec.Replicate = 5
	store, err := runcache.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	j, err := New(spec, Options{Jobs: 4, Disk: store})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Execute(); err != nil {
		t.Fatal(err)
	}
	p := j.Progress()
	baseSpec := smallSpec()
	base := baseSpec.TotalRuns()
	if p.TotalRuns != 5*base {
		t.Fatalf("total %d, want %d", p.TotalRuns, 5*base)
	}
	if p.RunsDone != p.TotalRuns {
		t.Fatalf("done %d of %d", p.RunsDone, p.TotalRuns)
	}
	if p.Simulated != base {
		t.Errorf("simulated %d distinct runs, want %d (replicas must dedupe)", p.Simulated, base)
	}
	if uint64(store.Len()) != base {
		t.Errorf("store holds %d entries, want %d", store.Len(), base)
	}
	// Aggregate counts scale with replication even though only one
	// replica simulated.
	b, _ := j.Result()
	ag := mustUnmarshalAgg(t, b)
	var runs uint64
	for _, c := range ag.Cells {
		runs += c.Runs
	}
	if runs != p.TotalRuns {
		t.Errorf("aggregated %d runs, want %d", runs, p.TotalRuns)
	}
}

func mustUnmarshalAgg(t *testing.T, b []byte) Aggregates {
	t.Helper()
	var ag Aggregates
	if err := json.Unmarshal(b, &ag); err != nil {
		t.Fatalf("bad canonical aggregates: %v\n%s", err, b)
	}
	return ag
}

func TestAggregatesShape(t *testing.T) {
	spec := smallSpec()
	b := runToBytes(t, spec, Options{Jobs: 2})
	if !strings.HasSuffix(string(b), "\n") {
		t.Error("canonical bytes missing trailing newline")
	}
	ag := mustUnmarshalAgg(t, b)
	if len(ag.Cells) != 2 {
		t.Fatalf("%d cells, want 2", len(ag.Cells))
	}
	if want := (&spec).TotalRuns(); ag.TotalRuns != want {
		t.Errorf("TotalRuns %d, want %d", ag.TotalRuns, want)
	}
	for i, c := range ag.Cells {
		if c.Runs != 10 {
			t.Errorf("cell %d: %d runs, want 10", i, c.Runs)
		}
		if c.EnergyJ.N != c.Runs {
			t.Errorf("cell %d: energy dist over %d, want %d", i, c.EnergyJ.N, c.Runs)
		}
		if c.EnergyJ.Mean <= 0 || c.EnergyJ.Min > c.EnergyJ.Max {
			t.Errorf("cell %d: degenerate energy dist %+v", i, c.EnergyJ)
		}
		if c.TimeS.N != c.Completed {
			t.Errorf("cell %d: time dist over %d, completed %d", i, c.TimeS.N, c.Completed)
		}
		if c.EnergyJ.CI95[0] > c.EnergyJ.Mean || c.EnergyJ.CI95[1] < c.EnergyJ.Mean {
			t.Errorf("cell %d: CI95 %v does not bracket mean %v", i, c.EnergyJ.CI95, c.EnergyJ.Mean)
		}
	}
	if ag.Cells[0].Protocol != "mptcp" || ag.Cells[1].Protocol != "emptcp" {
		t.Errorf("cell order not spec order: %s, %s", ag.Cells[0].Protocol, ag.Cells[1].Protocol)
	}
}

func TestJobFailurePath(t *testing.T) {
	// A job cannot Execute twice.
	j, err := New(smallSpec(), Options{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Execute(); err != nil {
		t.Fatal(err)
	}
	if err := j.Execute(); err == nil {
		t.Error("second Execute succeeded")
	}
	// New rejects invalid specs.
	if _, err := New(Spec{}, Options{}); err == nil {
		t.Error("New accepted an empty spec")
	}
}
