package campaign

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/lockstep"
	"repro/internal/runcache"
	"repro/internal/scenario"
)

// Status is a campaign job's lifecycle state.
type Status string

// Job lifecycle states.
const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// Options configures campaign execution.
type Options struct {
	// Disk, when non-nil, memoizes every run's result persistently
	// under its scenario.CacheKey. Re-running or resuming a campaign
	// (or any campaign whose grid overlaps) hits disk instead of
	// simulating.
	Disk *runcache.Store
	// Jobs is the worker count (default GOMAXPROCS). Worker count
	// never affects the output bytes: shard boundaries and merge order
	// are fixed by the spec.
	Jobs int
	// NoLockstep disables lane-batched replication: every simulated
	// run goes through the scalar engine individually. Output bytes
	// are identical either way.
	NoLockstep bool
}

// Progress is a point-in-time snapshot of a job, JSON-shaped for the
// HTTP status endpoint.
type Progress struct {
	ID        string `json:"id"`
	Name      string `json:"name,omitempty"`
	Status    Status `json:"status"`
	Error     string `json:"error,omitempty"`
	TotalRuns uint64 `json:"total_runs"`
	RunsDone  uint64 `json:"runs_done"`
	// Simulated counts runs actually executed by the engine; the rest
	// were disk hits or collapsed in-flight duplicates.
	Simulated uint64  `json:"simulated"`
	DiskHits  uint64  `json:"disk_hits"`
	HitRate   float64 `json:"hit_rate"`
	// ForkTrees/ForkRuns mirror scenario.ForkStats (process-wide).
	ForkTrees int64 `json:"fork_trees"`
	ForkRuns  int64 `json:"fork_runs"`
	// LaneRuns/LanePeels mirror lockstep.Stats (process-wide): how
	// many replications executed as lockstep lanes and how many were
	// peeled back to the scalar engine.
	LaneRuns  int64 `json:"lane_runs"`
	LanePeels int64 `json:"lane_peels"`
	// Aggregates is the streaming snapshot over the contiguous merged
	// prefix of shards — the same numbers the final result will
	// publish, just over fewer runs.
	Aggregates *Aggregates `json:"aggregates,omitempty"`
}

// Job executes one campaign: a sharded sweep of the spec's run grid
// into streaming aggregators, memoized through the optional disk
// store. Create with New, drive with Execute, observe with Progress.
type Job struct {
	g    *grid
	id   string
	opts Options

	// flight collapses concurrent duplicate runs (replicas landing in
	// different workers) without retaining results: the key is
	// forgotten as soon as the flight lands, so memory stays bounded
	// and later duplicates are served by the disk store instead.
	flight *runcache.Flight[scenario.Result]

	// keys memoizes the base grid's cache keys when Replicate > 1:
	// replica r of run i shares run i's key, and computing a key costs
	// ~20µs (a reflective digest of the device profile), which would
	// dominate a cache-replay campaign. Sized to one replica — the
	// base grid — so population-scale campaigns (small grid, huge
	// Replicate) pay O(base), not O(runs). Filled before the shard
	// workers start; read-only after.
	keys  []runcache.Key
	keyOK []bool
	baseN uint64

	nextShard atomic.Uint64
	runsDone  atomic.Uint64
	simulated atomic.Uint64
	diskHits  atomic.Uint64

	cancelCh   chan struct{}
	cancelOnce sync.Once

	mu        sync.Mutex
	status    Status
	err       error
	total     *agg            // contiguous merged prefix
	pending   map[uint64]*agg // out-of-order shards awaiting merge
	nextMerge uint64
	result    []byte // canonical aggregate bytes, set on done
}

// New compiles the spec into a runnable job. The spec is validated and
// normalised; the returned job is in StatusQueued.
func New(spec Spec, opts Options) (*Job, error) {
	g, err := compile(spec)
	if err != nil {
		return nil, err
	}
	id, err := g.spec.ID()
	if err != nil {
		return nil, err
	}
	if opts.Jobs <= 0 {
		opts.Jobs = runtime.GOMAXPROCS(0)
	}
	return &Job{
		g:        g,
		id:       id,
		opts:     opts,
		flight:   runcache.NewFlight[scenario.Result](),
		cancelCh: make(chan struct{}),
		status:   StatusQueued,
		total:    newAgg(g.cells()),
		pending:  make(map[uint64]*agg),
	}, nil
}

// ID returns the campaign's digest-derived identifier.
func (j *Job) ID() string { return j.id }

// Spec returns the normalised spec.
func (j *Job) Spec() Spec { return j.g.spec }

// Cancel requests the job stop at the next run boundary. Completed
// shards stay merged and every simulated result is already on disk, so
// a resubmission resumes from the cache. Safe to call at any time, any
// number of times.
func (j *Job) Cancel() {
	j.cancelOnce.Do(func() { close(j.cancelCh) })
}

func (j *Job) cancelled() bool {
	select {
	case <-j.cancelCh:
		return true
	default:
		return false
	}
}

// Execute runs the campaign to completion (or cancellation/failure)
// and returns its terminal error, if any. It is the caller's single
// blocking drive call; the server wraps it in a goroutine.
func (j *Job) Execute() error {
	j.mu.Lock()
	if j.status != StatusQueued {
		st := j.status
		j.mu.Unlock()
		return fmt.Errorf("campaign: job %s already %s", j.id, st)
	}
	j.status = StatusRunning
	j.mu.Unlock()

	shardSize := uint64(j.g.spec.ShardSize)
	nShards := (j.g.total + shardSize - 1) / shardSize
	j.memoizeKeys()

	var wg sync.WaitGroup
	for w := 0; w < j.opts.Jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s := j.nextShard.Add(1) - 1
				if s >= nShards || j.cancelled() || j.failed() {
					return
				}
				if err := j.runShard(s, shardSize); err != nil {
					j.fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	// Flush the disk store in every terminal state: a cancelled (or
	// failed) campaign's simulated results are its resume state.
	if serr := j.opts.Disk.Sync(); serr != nil {
		j.fail(fmt.Errorf("campaign: disk sync: %w", serr))
	}

	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.err != nil:
		j.status = StatusFailed
		return j.err
	case j.cancelled():
		j.status = StatusCancelled
		return nil
	}
	if j.nextMerge != nShards {
		j.status = StatusFailed
		j.err = fmt.Errorf("campaign: merged %d of %d shards", j.nextMerge, nShards)
		return j.err
	}
	ag, err := j.g.aggregates(j.total)
	if err == nil {
		j.result, err = ag.MarshalCanonical()
	}
	if err != nil {
		j.status = StatusFailed
		j.err = err
		return err
	}
	j.status = StatusDone
	return nil
}

func (j *Job) failed() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err != nil
}

func (j *Job) fail(err error) {
	j.mu.Lock()
	if j.err == nil {
		j.err = err
	}
	j.mu.Unlock()
	j.Cancel() // stop sibling workers promptly
}

// runShard folds runs [s·size, min((s+1)·size, total)) into a fresh
// shard aggregate in index order, then delivers it for the in-order
// merge. A panic anywhere in a run (engine bug, poisoned flight)
// converts to a job failure rather than crashing the server.
func (j *Job) runShard(s, size uint64) (err error) {
	defer func() {
		if pv := recover(); pv != nil {
			err = fmt.Errorf("campaign: run panicked in shard %d: %v", s, pv)
		}
	}()
	lo, hi := s*size, (s+1)*size
	if hi > j.g.total {
		hi = j.g.total
	}
	a := newAgg(j.g.cells())
	// The grid decodes seed-innermost, so a shard is a sequence of
	// contiguous same-(scenario, protocol) blocks of up to Seeds.Count
	// runs — exactly lockstep's unit of work. Each block carries a lazy
	// lane batch; it fires only if some run in the block actually needs
	// simulating (all-disk-hit blocks never construct a scenario).
	nSeed := uint64(j.g.spec.Seeds.Count)
	var blk *laneBlock
	for i := lo; i < hi; i++ {
		if j.cancelled() || j.failed() {
			return nil // deliver nothing; shard will be missing → not merged
		}
		if start := i - i%nSeed; blk == nil || start != blk.start {
			blk = nil
			blo, bhi := start, start+nSeed
			if blo < lo {
				blo = lo
			}
			if bhi > hi {
				bhi = hi
			}
			if !j.opts.NoLockstep && bhi-blo >= minLaneBlock {
				blk = &laneBlock{j: j, start: start, lo: blo, hi: bhi}
			}
		}
		res, err := j.oneRun(i, blk)
		if err != nil {
			return err
		}
		a.add(j.g.cellAt(i), &res)
		j.runsDone.Add(1)
	}
	j.deliver(s, a)
	return nil
}

// minLaneBlock is the smallest same-cell seed block worth batching;
// below it the lockstep setup overhead beats the dispatch savings
// (mirroring the k ≥ 4 rule in the experiment harness).
const minLaneBlock = 4

// laneBlock is one shard-local contiguous same-(scenario, protocol)
// seed block with a lazily-fired lockstep batch. The batch simulates
// all of the block's seeds the first time any of its runs misses the
// disk store; runs served by disk never trigger it.
type laneBlock struct {
	j       *Job
	start   uint64 // first grid index of the full block (pre-clip)
	lo, hi  uint64 // shard-clipped index range [lo, hi)
	once    sync.Once
	laned   bool
	results []scenario.Result
}

// result returns run i's lane result, firing the batch on first use.
// ok is false when the block's cell is outside the lockstep envelope —
// the caller falls back to a scalar run.
func (b *laneBlock) result(i uint64) (scenario.Result, bool) {
	b.once.Do(func() {
		sc, proto, seed0, _ := b.j.g.runAt(b.lo)
		if !lockstep.Eligible(sc, proto, scenario.Opts{}) {
			return
		}
		seeds := make([]int64, b.hi-b.lo)
		for k := range seeds {
			seeds[k] = seed0 + int64(k)
		}
		b.results = lockstep.Run(sc, proto, seeds, scenario.Opts{})
		b.laned = true
	})
	if !b.laned {
		return scenario.Result{}, false
	}
	return b.results[i-b.lo], true
}

// memoizeKeys pre-digests one replica's worth of cache keys when the
// grid repeats. Disjoint index ranges per goroutine, so the fill is
// race-free and the slices are immutable once Execute's workers start.
func (j *Job) memoizeKeys() {
	rep := j.g.spec.Replicate
	if rep <= 1 {
		return
	}
	j.baseN = j.g.total / uint64(rep)
	j.keys = make([]runcache.Key, j.baseN)
	j.keyOK = make([]bool, j.baseN)
	var wg sync.WaitGroup
	chunk := (j.baseN + uint64(j.opts.Jobs) - 1) / uint64(j.opts.Jobs)
	for lo := uint64(0); lo < j.baseN; lo += chunk {
		hi := lo + chunk
		if hi > j.baseN {
			hi = j.baseN
		}
		wg.Add(1)
		go func(lo, hi uint64) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				sc, proto, seed, _ := j.g.runAt(i)
				j.keys[i], j.keyOK[i] = scenario.CacheKey(sc, proto, scenario.Opts{Seed: seed})
			}
		}(lo, hi)
	}
	wg.Wait()
}

// keyAt returns run i's cache key, from the memo when the grid
// repeats.
func (j *Job) keyAt(i uint64) (runcache.Key, bool) {
	if j.keys != nil {
		b := i % j.baseN
		return j.keys[b], j.keyOK[b]
	}
	sc, proto, seed, _ := j.g.runAt(i)
	return scenario.CacheKey(sc, proto, scenario.Opts{Seed: seed})
}

// oneRun produces run i's result: disk hit, collapsed duplicate, or a
// fresh simulation (persisted before returning). The scenario is only
// constructed if the run actually simulates — on the replay path a run
// is a key lookup, a disk read, and a decode.
func (j *Job) oneRun(i uint64, blk *laneBlock) (scenario.Result, error) {
	sim := func() scenario.Result {
		if blk != nil {
			if r, ok := blk.result(i); ok {
				j.simulated.Add(1)
				return r
			}
		}
		sc, proto, seed, _ := j.g.runAt(i)
		j.simulated.Add(1)
		return scenario.Run(sc, proto, scenario.Opts{Seed: seed})
	}
	key, ok := j.keyAt(i)
	if !ok {
		// Library scenarios are always digestible; this is a belt for
		// future scenario kinds, not a hot path.
		return sim(), nil
	}
	var runErr error
	res := j.flight.Do(key, func() scenario.Result {
		if j.opts.Disk != nil {
			if b, hit, derr := j.opts.Disk.Get(key); derr != nil {
				runErr = derr
				return scenario.Result{}
			} else if hit {
				if r, cerr := decodeResult(b); cerr == nil {
					j.diskHits.Add(1)
					return r
				}
				// Version/layout mismatch: treat as a miss and
				// re-simulate. Put below is a first-write-wins no-op,
				// so the stale record stays until a cache rebuild.
			}
		}
		r := sim()
		if j.opts.Disk != nil {
			if perr := j.opts.Disk.Put(key, encodeResult(r)); perr != nil {
				runErr = perr
			}
		}
		return r
	})
	return res, runErr
}

// deliver merges shard s's aggregate into the running total the moment
// it becomes the next contiguous shard; earlier arrivals park in
// pending. Merge order is therefore always 0,1,2,… regardless of
// which worker finished when — the whole byte-identical-at-any-j
// guarantee lives in this function. Pending holds at most ~Jobs
// entries (a worker parks one shard then claims the next).
func (j *Job) deliver(s uint64, a *agg) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.pending[s] = a
	for {
		nxt, ok := j.pending[j.nextMerge]
		if !ok {
			return
		}
		delete(j.pending, j.nextMerge)
		j.total.merge(nxt)
		j.nextMerge++
	}
}

// Progress snapshots the job. The aggregate snapshot covers the merged
// contiguous prefix, so its numbers are exact for the runs they count.
func (j *Job) Progress() Progress {
	trees, forkRuns := scenario.ForkStats()
	laneRuns, lanePeels := lockstep.Stats()
	done := j.runsDone.Load()
	sim := j.simulated.Load()
	p := Progress{
		ID:        j.id,
		Name:      j.g.spec.Name,
		TotalRuns: j.g.total,
		RunsDone:  done,
		Simulated: sim,
		DiskHits:  j.diskHits.Load(),
		ForkTrees: trees,
		ForkRuns:  forkRuns,
		LaneRuns:  laneRuns,
		LanePeels: lanePeels,
	}
	if done > 0 {
		p.HitRate = 1 - float64(sim)/float64(done)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	p.Status = j.status
	if j.err != nil {
		p.Error = j.err.Error()
	}
	if ag, err := j.g.aggregates(j.total); err == nil {
		p.Aggregates = &ag
	}
	return p
}

// Result returns the canonical aggregate bytes; ok is false until the
// job reaches StatusDone.
func (j *Job) Result() (b []byte, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.status == StatusDone
}

// Err returns the job's terminal error, if any.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}
