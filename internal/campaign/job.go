package campaign

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lockstep"
	"repro/internal/runcache"
	"repro/internal/scenario"
)

// Status is a campaign job's lifecycle state.
type Status string

// Job lifecycle states.
const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// Options configures campaign execution.
type Options struct {
	// Disk, when non-nil, memoizes every run's result persistently
	// under its scenario.CacheKey. Re-running or resuming a campaign
	// (or any campaign whose grid overlaps) hits disk instead of
	// simulating.
	Disk *runcache.Store
	// Jobs is the local worker count (default GOMAXPROCS). Worker count
	// never affects the output bytes: shard boundaries and merge order
	// are fixed by the spec.
	Jobs int
	// NoLockstep disables lane-batched replication: every simulated
	// run goes through the scalar engine individually. Output bytes
	// are identical either way.
	NoLockstep bool
	// LeaseTTL is the shard-lease expiry for distributed execution
	// (default DefaultLeaseTTL). A remote worker that stops renewing
	// for this long loses its shard to reassignment.
	LeaseTTL time.Duration
	// NoLocalExec makes Execute a pure coordinator: it spawns no local
	// folding workers and every shard must arrive through the lease
	// protocol (CompleteShard). Cancel still works; the output bytes
	// are identical to any other execution shape.
	NoLocalExec bool

	// now overrides the lease clock in tests.
	now func() time.Time
}

// Progress is a point-in-time snapshot of a job, JSON-shaped for the
// HTTP status endpoint.
type Progress struct {
	ID        string `json:"id"`
	Name      string `json:"name,omitempty"`
	Status    Status `json:"status"`
	Error     string `json:"error,omitempty"`
	TotalRuns uint64 `json:"total_runs"`
	RunsDone  uint64 `json:"runs_done"`
	// Simulated counts runs actually executed by an engine — locally
	// or, for leased-out shards, on the remote worker that reported
	// them; the rest were disk hits or collapsed in-flight duplicates.
	Simulated uint64  `json:"simulated"`
	DiskHits  uint64  `json:"disk_hits"`
	HitRate   float64 `json:"hit_rate"`
	// RemoteRuns counts runs folded by remote workers' shard
	// completions (included in RunsDone).
	RemoteRuns uint64 `json:"remote_runs"`
	// ForkTrees/ForkRuns mirror scenario.ForkStats (process-wide).
	ForkTrees int64 `json:"fork_trees"`
	ForkRuns  int64 `json:"fork_runs"`
	// LaneRuns/LanePeels mirror lockstep.Stats (process-wide): how
	// many replications executed as lockstep lanes and how many were
	// peeled back to the scalar engine.
	LaneRuns  int64 `json:"lane_runs"`
	LanePeels int64 `json:"lane_peels"`
	// Leases is the shard-lease table snapshot: how the campaign is
	// spread across workers right now.
	Leases *LeaseState `json:"leases,omitempty"`
	// Aggregates is the streaming snapshot over the contiguous merged
	// prefix of shards — the same numbers the final result will
	// publish, just over fewer runs.
	Aggregates *Aggregates `json:"aggregates,omitempty"`
}

// executor folds shards of a compiled grid into aggregates: the part of
// campaign execution that is identical whether it runs inside the
// coordinator's Job or inside a remote `emptcpsim worker`. Each process
// owns one executor per campaign, with its own disk store, single-
// flight, and key memo.
type executor struct {
	g          *grid
	disk       *runcache.Store
	noLockstep bool

	// flight collapses concurrent duplicate runs (replicas landing in
	// different workers) without retaining results: the key is
	// forgotten as soon as the flight lands, so memory stays bounded
	// and later duplicates are served by the disk store instead.
	flight *runcache.Flight[scenario.Result]

	// keys memoizes the base grid's cache keys when Replicate > 1:
	// replica r of run i shares run i's key, and computing a key costs
	// ~20µs (a reflective digest of the device profile), which would
	// dominate a cache-replay campaign. Sized to one replica — the
	// base grid — so population-scale campaigns (small grid, huge
	// Replicate) pay O(base), not O(runs). Filled once before the
	// first shard folds; read-only after.
	keyOnce sync.Once
	keys    []runcache.Key
	keyOK   []bool
	baseN   uint64

	simulated atomic.Uint64
	diskHits  atomic.Uint64

	// reported-counter cursors for per-shard completion reports; see
	// counterDelta.
	reportMu        sync.Mutex
	repSim, repHits uint64
}

// counterDelta returns how much simulated/diskHits grew since the last
// call. Per-shard completion reports carry these deltas, so their sum
// equals the executor's lifetime totals exactly — even when shards fold
// concurrently (attribution to a particular shard is then approximate,
// but the counters are informational, never part of the merge).
func (e *executor) counterDelta() (sim, hits uint64) {
	e.reportMu.Lock()
	defer e.reportMu.Unlock()
	s, h := e.simulated.Load(), e.diskHits.Load()
	sim, hits = s-e.repSim, h-e.repHits
	e.repSim, e.repHits = s, h
	return
}

func newExecutor(g *grid, disk *runcache.Store, noLockstep bool) *executor {
	return &executor{
		g:          g,
		disk:       disk,
		noLockstep: noLockstep,
		flight:     runcache.NewFlight[scenario.Result](),
	}
}

// shardRange returns run range [lo, hi) of shard s.
func (e *executor) shardRange(s uint64) (lo, hi uint64) {
	size := uint64(e.g.spec.ShardSize)
	lo, hi = s*size, (s+1)*size
	if hi > e.g.total {
		hi = e.g.total
	}
	return lo, hi
}

// nShards is the campaign's spec-derived shard count.
func (e *executor) nShards() uint64 {
	size := uint64(e.g.spec.ShardSize)
	return (e.g.total + size - 1) / size
}

// memoizeKeys pre-digests one replica's worth of cache keys when the
// grid repeats. Disjoint index ranges per goroutine, so the fill is
// race-free and the slices are immutable once published by the Once.
func (e *executor) memoizeKeys(jobs int) {
	e.keyOnce.Do(func() {
		rep := e.g.spec.Replicate
		if rep <= 1 {
			return
		}
		if jobs < 1 {
			jobs = 1
		}
		baseN := e.g.total / uint64(rep)
		keys := make([]runcache.Key, baseN)
		keyOK := make([]bool, baseN)
		var wg sync.WaitGroup
		chunk := (baseN + uint64(jobs) - 1) / uint64(jobs)
		for lo := uint64(0); lo < baseN; lo += chunk {
			hi := lo + chunk
			if hi > baseN {
				hi = baseN
			}
			wg.Add(1)
			go func(lo, hi uint64) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					sc, proto, seed, _ := e.g.runAt(i)
					keys[i], keyOK[i] = scenario.CacheKey(sc, proto, scenario.Opts{Seed: seed})
				}
			}(lo, hi)
		}
		wg.Wait()
		e.keys, e.keyOK, e.baseN = keys, keyOK, baseN
	})
}

// keyAt returns run i's cache key, from the memo when the grid
// repeats.
func (e *executor) keyAt(i uint64) (runcache.Key, bool) {
	if e.keys != nil {
		b := i % e.baseN
		return e.keys[b], e.keyOK[b]
	}
	sc, proto, seed, _ := e.g.runAt(i)
	return scenario.CacheKey(sc, proto, scenario.Opts{Seed: seed})
}

// foldShard folds runs [lo, hi) of shard s into a fresh shard aggregate
// in index order. onRun fires after each folded run (progress
// accounting); stop is polled between runs and, when it fires, foldShard
// returns (nil, nil) — deliver nothing, the shard stays unfinished. A
// panic anywhere in a run (engine bug, poisoned flight) converts to an
// error rather than crashing the process.
func (e *executor) foldShard(s uint64, stop func() bool, onRun func()) (a *agg, err error) {
	defer func() {
		if pv := recover(); pv != nil {
			a, err = nil, fmt.Errorf("campaign: run panicked in shard %d: %v", s, pv)
		}
	}()
	e.memoizeKeys(runtime.GOMAXPROCS(0))
	lo, hi := e.shardRange(s)
	a = newAgg(e.g.cells())
	// The grid decodes seed-innermost, so a shard is a sequence of
	// contiguous same-(scenario, protocol) blocks of up to Seeds.Count
	// runs — exactly lockstep's unit of work. Each block carries a lazy
	// lane batch; it fires only if some run in the block actually needs
	// simulating (all-disk-hit blocks never construct a scenario).
	nSeed := uint64(e.g.spec.Seeds.Count)
	var blk *laneBlock
	for i := lo; i < hi; i++ {
		if stop != nil && stop() {
			return nil, nil
		}
		if start := i - i%nSeed; blk == nil || start != blk.start {
			blk = nil
			blo, bhi := start, start+nSeed
			if blo < lo {
				blo = lo
			}
			if bhi > hi {
				bhi = hi
			}
			if !e.noLockstep && bhi-blo >= minLaneBlock {
				blk = &laneBlock{e: e, start: start, lo: blo, hi: bhi}
			}
		}
		res, err := e.oneRun(i, blk)
		if err != nil {
			return nil, err
		}
		a.add(e.g.cellAt(i), &res)
		if onRun != nil {
			onRun()
		}
	}
	return a, nil
}

// minLaneBlock is the smallest same-cell seed block worth batching;
// below it the lockstep setup overhead beats the dispatch savings
// (mirroring the k ≥ 4 rule in the experiment harness).
const minLaneBlock = 4

// laneBlock is one shard-local contiguous same-(scenario, protocol)
// seed block with a lazily-fired lockstep batch. The batch simulates
// all of the block's seeds the first time any of its runs misses the
// disk store; runs served by disk never trigger it.
type laneBlock struct {
	e       *executor
	start   uint64 // first grid index of the full block (pre-clip)
	lo, hi  uint64 // shard-clipped index range [lo, hi)
	once    sync.Once
	laned   bool
	results []scenario.Result
}

// result returns run i's lane result, firing the batch on first use.
// ok is false when the block's cell is outside the lockstep envelope —
// the caller falls back to a scalar run.
func (b *laneBlock) result(i uint64) (scenario.Result, bool) {
	b.once.Do(func() {
		sc, proto, seed0, _ := b.e.g.runAt(b.lo)
		if !lockstep.Eligible(sc, proto, scenario.Opts{}) {
			return
		}
		seeds := make([]int64, b.hi-b.lo)
		for k := range seeds {
			seeds[k] = seed0 + int64(k)
		}
		b.results = lockstep.Run(sc, proto, seeds, scenario.Opts{})
		b.laned = true
	})
	if !b.laned {
		return scenario.Result{}, false
	}
	return b.results[i-b.lo], true
}

// oneRun produces run i's result: disk hit, collapsed duplicate, or a
// fresh simulation (persisted before returning). The scenario is only
// constructed if the run actually simulates — on the replay path a run
// is a key lookup, a disk read, and a decode.
func (e *executor) oneRun(i uint64, blk *laneBlock) (scenario.Result, error) {
	sim := func() scenario.Result {
		if blk != nil {
			if r, ok := blk.result(i); ok {
				e.simulated.Add(1)
				return r
			}
		}
		sc, proto, seed, _ := e.g.runAt(i)
		e.simulated.Add(1)
		return scenario.Run(sc, proto, scenario.Opts{Seed: seed})
	}
	key, ok := e.keyAt(i)
	if !ok {
		// Library scenarios are always digestible; this is a belt for
		// future scenario kinds, not a hot path.
		return sim(), nil
	}
	var runErr error
	res := e.flight.Do(key, func() scenario.Result {
		if e.disk != nil {
			if b, hit, derr := e.disk.Get(key); derr != nil {
				runErr = derr
				return scenario.Result{}
			} else if hit {
				if r, cerr := decodeResult(b); cerr == nil {
					e.diskHits.Add(1)
					return r
				}
				// Version/layout mismatch: treat as a miss and
				// re-simulate. Put below is a first-write-wins no-op,
				// so the stale record stays until a cache rebuild.
			}
		}
		r := sim()
		if e.disk != nil {
			if perr := e.disk.Put(key, encodeResult(r)); perr != nil {
				runErr = perr
			}
		}
		return r
	})
	return res, runErr
}

// Job executes one campaign: a sharded sweep of the spec's run grid
// into streaming aggregators, memoized through the optional disk
// store. Create with New, drive with Execute, observe with Progress.
// When the job runs behind a serve-mode coordinator, remote workers
// lease shards through Lease/RenewLease and return aggregates through
// CompleteShard; the coordinator's own Execute workers pull from the
// same lease table, so it is simply worker #0.
type Job struct {
	g    *grid
	id   string
	opts Options
	exec *executor

	leases *leaseTable

	runsDone   atomic.Uint64
	remoteRuns atomic.Uint64
	remoteSim  atomic.Uint64
	remoteHits atomic.Uint64

	cancelCh   chan struct{}
	cancelOnce sync.Once

	mu        sync.Mutex
	status    Status
	err       error
	total     *agg            // contiguous merged prefix
	pending   map[uint64]*agg // out-of-order shards awaiting merge
	nextMerge uint64
	result    []byte // canonical aggregate bytes, set on done
}

// New compiles the spec into a runnable job. The spec is validated and
// normalised; the returned job is in StatusQueued.
func New(spec Spec, opts Options) (*Job, error) {
	g, err := compile(spec)
	if err != nil {
		return nil, err
	}
	id, err := g.spec.ID()
	if err != nil {
		return nil, err
	}
	if opts.Jobs <= 0 {
		opts.Jobs = runtime.GOMAXPROCS(0)
	}
	exec := newExecutor(g, opts.Disk, opts.NoLockstep)
	return &Job{
		g:        g,
		id:       id,
		opts:     opts,
		exec:     exec,
		leases:   newLeaseTable(exec.nShards(), opts.LeaseTTL, opts.now),
		cancelCh: make(chan struct{}),
		status:   StatusQueued,
		total:    newAgg(g.cells()),
		pending:  make(map[uint64]*agg),
	}, nil
}

// ID returns the campaign's digest-derived identifier.
func (j *Job) ID() string { return j.id }

// Spec returns the normalised spec.
func (j *Job) Spec() Spec { return j.g.spec }

// Cancel requests the job stop at the next run boundary. Completed
// shards stay merged and every simulated result is already on disk, so
// a resubmission resumes from the cache. Safe to call at any time, any
// number of times.
func (j *Job) Cancel() {
	j.cancelOnce.Do(func() { close(j.cancelCh) })
}

func (j *Job) cancelled() bool {
	select {
	case <-j.cancelCh:
		return true
	default:
		return false
	}
}

// leaseWait is how long an idle local worker sleeps when every
// remaining shard is leased out (to remote workers or to its siblings)
// before re-checking for expiries and completions.
const leaseWait = 2 * time.Millisecond

// Execute runs the campaign to completion (or cancellation/failure)
// and returns its terminal error, if any. It is the caller's single
// blocking drive call; the server wraps it in a goroutine. Local
// workers pull shards from the same lease table remote workers do, so
// a job with no remote workers behaves exactly as before — and with
// remote workers, Execute returns once every shard (whoever computed
// it) has merged.
func (j *Job) Execute() error {
	j.mu.Lock()
	if j.status != StatusQueued {
		st := j.status
		j.mu.Unlock()
		return fmt.Errorf("campaign: job %s already %s", j.id, st)
	}
	j.status = StatusRunning
	j.mu.Unlock()

	nShards := j.exec.nShards()
	j.exec.memoizeKeys(j.opts.Jobs)

	if !j.opts.NoLocalExec {
		var wg sync.WaitGroup
		for w := 0; w < j.opts.Jobs; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				j.localWorker(fmt.Sprintf("local/%d", w))
			}(w)
		}
		wg.Wait()
	}

	// Wait out the remote tail: in coordinator-only mode this is the
	// whole campaign; otherwise remote completions mark a shard done in
	// the lease table a moment before the merge lands, and this drains
	// that window so the terminal check below sees the final state.
	for !j.cancelled() && !j.failed() && (!j.leases.allDone() || !j.merged(nShards)) {
		time.Sleep(leaseWait)
	}

	// Flush the disk store in every terminal state: a cancelled (or
	// failed) campaign's simulated results are its resume state.
	if serr := j.opts.Disk.Sync(); serr != nil {
		j.fail(fmt.Errorf("campaign: disk sync: %w", serr))
	}

	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.err != nil:
		j.status = StatusFailed
		return j.err
	case j.cancelled():
		j.status = StatusCancelled
		return nil
	}
	if j.nextMerge != nShards {
		j.status = StatusFailed
		j.err = fmt.Errorf("campaign: merged %d of %d shards", j.nextMerge, nShards)
		return j.err
	}
	ag, err := j.g.aggregates(j.total)
	if err == nil {
		j.result, err = ag.MarshalCanonical()
	}
	if err != nil {
		j.status = StatusFailed
		j.err = err
		return err
	}
	j.status = StatusDone
	return nil
}

// localWorker is one coordinator-side execution loop: lease a shard,
// fold it, complete it, repeat — waiting out windows where every
// remaining shard is leased to someone else (a remote worker may die
// and its lease expire back to us).
func (j *Job) localWorker(name string) {
	for {
		if j.cancelled() || j.failed() {
			return
		}
		s, token, ok := j.leases.acquire(name)
		if !ok {
			if j.leases.allDone() {
				return
			}
			select {
			case <-j.cancelCh:
				return
			case <-time.After(leaseWait):
			}
			continue
		}
		a, err := j.exec.foldShard(s, func() bool { return j.cancelled() || j.failed() },
			func() { j.runsDone.Add(1) })
		if err != nil {
			j.fail(err)
			return
		}
		if a == nil { // stopped mid-shard
			j.leases.release(s, token)
			return
		}
		if dup := j.leases.complete(s); !dup {
			j.deliver(s, a)
		}
	}
}

func (j *Job) merged(nShards uint64) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.nextMerge == nShards
}

func (j *Job) failed() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err != nil
}

func (j *Job) fail(err error) {
	j.mu.Lock()
	if j.err == nil {
		j.err = err
	}
	j.mu.Unlock()
	j.Cancel() // stop sibling workers promptly
}

// running reports whether the job accepts lease traffic.
func (j *Job) running() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status == StatusRunning
}

// Lease grants the caller (a remote worker) one shard, or ok=false when
// nothing is currently available. gone is true once the job is not
// running — the worker should stop polling this campaign.
func (j *Job) Lease(worker string) (g LeaseGrant, ok, gone bool) {
	if !j.running() || j.cancelled() {
		return LeaseGrant{}, false, true
	}
	s, token, ok := j.leases.acquire(worker)
	if !ok {
		return LeaseGrant{}, false, false
	}
	lo, hi := j.exec.shardRange(s)
	ttl := j.opts.LeaseTTL
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	return LeaseGrant{
		Campaign: j.id,
		Shard:    s,
		Lo:       lo,
		Hi:       hi,
		Token:    token,
		TTLMs:    ttl.Milliseconds(),
	}, true, false
}

// RenewLease extends a worker's hold on a shard (the heartbeat). False
// means the lease was lost — expired and reassigned, or completed by
// someone else.
func (j *Job) RenewLease(shard uint64, token string) bool {
	if !j.running() || j.cancelled() {
		return false
	}
	return j.leases.renew(shard, token)
}

// CompleteShard folds a remotely-computed shard aggregate into the
// campaign. The first completion of a shard wins — regardless of lease
// state, since the bytes are a pure function of the spec — and every
// later one reports dup=true and is dropped. gone is true when the job
// no longer accepts results.
func (j *Job) CompleteShard(rep shardReport) (dup, gone bool) {
	if !j.running() || j.cancelled() {
		return false, true
	}
	if dup := j.leases.complete(rep.shard); dup {
		return true, false
	}
	j.deliver(rep.shard, rep.agg)
	lo, hi := j.exec.shardRange(rep.shard)
	j.runsDone.Add(hi - lo)
	j.remoteRuns.Add(hi - lo)
	j.remoteSim.Add(rep.simulated)
	j.remoteHits.Add(rep.diskHits)
	return false, false
}

// deliver merges shard s's aggregate into the running total the moment
// it becomes the next contiguous shard; earlier arrivals park in
// pending. Merge order is therefore always 0,1,2,… regardless of
// which worker finished when — the whole byte-identical-at-any-shape
// guarantee lives in this function. Pending stays bounded by the
// out-of-order window (locally ~Jobs entries; with remote workers, at
// most the outstanding-lease spread), and holds fixed-size aggregates
// only — never per-run results.
func (j *Job) deliver(s uint64, a *agg) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.pending[s] = a
	for {
		nxt, ok := j.pending[j.nextMerge]
		if !ok {
			return
		}
		delete(j.pending, j.nextMerge)
		j.total.merge(nxt)
		j.nextMerge++
	}
}

// Progress snapshots the job. The aggregate snapshot covers the merged
// contiguous prefix, so its numbers are exact for the runs they count.
func (j *Job) Progress() Progress {
	trees, forkRuns := scenario.ForkStats()
	laneRuns, lanePeels := lockstep.Stats()
	done := j.runsDone.Load()
	sim := j.exec.simulated.Load() + j.remoteSim.Load()
	ls := j.leases.state()
	p := Progress{
		ID:         j.id,
		Name:       j.g.spec.Name,
		TotalRuns:  j.g.total,
		RunsDone:   done,
		Simulated:  sim,
		DiskHits:   j.exec.diskHits.Load() + j.remoteHits.Load(),
		RemoteRuns: j.remoteRuns.Load(),
		ForkTrees:  trees,
		ForkRuns:   forkRuns,
		LaneRuns:   laneRuns,
		LanePeels:  lanePeels,
		Leases:     &ls,
	}
	if done > 0 {
		p.HitRate = 1 - float64(sim)/float64(done)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	p.Status = j.status
	if j.err != nil {
		p.Error = j.err.Error()
	}
	if ag, err := j.g.aggregates(j.total); err == nil {
		p.Aggregates = &ag
	}
	return p
}

// Result returns the canonical aggregate bytes; ok is false until the
// job reaches StatusDone.
func (j *Job) Result() (b []byte, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.status == StatusDone
}

// Err returns the job's terminal error, if any.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}
