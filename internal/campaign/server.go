package campaign

import (
	"bytes"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"

	"repro/internal/lockstep"
	"repro/internal/runcache"
	"repro/internal/scenario"
)

// Server is the campaign control plane behind `emptcpsim serve`: an
// HTTP+JSON API to submit campaigns, watch their streaming progress,
// fetch canonical aggregates, and cancel. Campaigns are identified by
// spec digest, so submission is idempotent: re-posting a spec attaches
// to the existing job (or, after a failure or cancellation, starts a
// fresh one that resumes from the disk cache).
//
// The server is also the distributed coordinator: remote `emptcpsim
// worker` processes lease shards of the running campaign, execute them
// with their own full local stack, and stream the aggregates back. The
// coordinator's own execution workers pull from the same lease table,
// so a serve-mode process with no workers attached behaves exactly like
// the single-process CLI.
//
//	POST /campaigns                   submit a Spec        → 202 Progress
//	GET  /campaigns                   list                 → 200 [Progress]
//	GET  /campaigns/{id}              status + snapshot    → 200 Progress
//	GET  /campaigns/{id}/spec         normalised spec      → 200 Spec
//	GET  /campaigns/{id}/result       canonical aggregates → 200 JSON / 409 Progress
//	POST /campaigns/{id}/cancel                            → 202 Progress
//	POST /campaigns/{id}/lease        lease one shard      → 200 LeaseGrant / 204 / 410
//	POST /campaigns/{id}/shards/{s}   complete a shard     → 200 {status} / 410
//	POST /campaigns/{id}/shards/{s}/renew heartbeat        → 200 {ttl_ms} / 410
//	GET  /statz                       process + lease stats → 200 JSON
//	GET  /debug/pprof/*               live profiling
//	GET  /healthz                                          → 200 ok (never authed)
type Server struct {
	opts  Options
	token string // optional bearer token; empty = open

	mu     sync.Mutex
	byID   map[string]*Job
	order  []string // submission order, for stable listings
	queue  chan *Job
	closed bool
	wg     sync.WaitGroup
}

// NewServer builds a server executing campaigns one at a time (each
// job already parallelises across cores) against the given disk store.
// jobs ≤ 0 means GOMAXPROCS workers per campaign. NewServerOpts passes
// the full execution options through (escape hatches included).
func NewServer(disk *runcache.Store, jobs int) *Server {
	return NewServerOpts(Options{Disk: disk, Jobs: jobs})
}

// NewServerOpts is NewServer with every campaign execution option.
func NewServerOpts(opts Options) *Server {
	s := &Server{
		opts: opts,
		byID: make(map[string]*Job),
		// A deep queue so submissions never block; the dispatcher
		// drains it FIFO.
		queue: make(chan *Job, 1024),
	}
	s.wg.Add(1)
	go s.dispatch()
	return s
}

// SetAuthToken requires `Authorization: Bearer <token>` on every route
// except /healthz. Call before Handler; an empty token leaves the
// server open (the default, for localhost use).
func (s *Server) SetAuthToken(token string) { s.token = token }

// dispatch runs queued jobs sequentially. Sequential execution keeps
// the memory envelope at one campaign's worth and makes progress
// reporting honest (a queued campaign reports queued, not starved).
func (s *Server) dispatch() {
	defer s.wg.Done()
	for job := range s.queue {
		job.Execute() // terminal state and error live on the job
	}
}

// Close stops accepting work, cancels the running and queued jobs,
// waits for the dispatcher to drain, and syncs the disk store — the
// graceful-shutdown checkpoint: everything simulated so far is
// durable, so the next server resumes from disk.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for _, j := range s.byID {
		j.Cancel()
	}
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
	return s.opts.Disk.Sync()
}

// Handler returns the server's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /campaigns", s.handleSubmit)
	mux.HandleFunc("GET /campaigns", s.handleList)
	mux.HandleFunc("GET /campaigns/{id}", s.handleStatus)
	mux.HandleFunc("GET /campaigns/{id}/spec", s.handleSpec)
	mux.HandleFunc("GET /campaigns/{id}/result", s.handleResult)
	mux.HandleFunc("POST /campaigns/{id}/cancel", s.handleCancel)
	mux.HandleFunc("POST /campaigns/{id}/lease", s.handleLease)
	mux.HandleFunc("POST /campaigns/{id}/shards/{shard}", s.handleShard)
	mux.HandleFunc("POST /campaigns/{id}/shards/{shard}/renew", s.handleRenew)
	mux.HandleFunc("GET /statz", s.handleStatz)
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	healthz := func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	}
	if s.token == "" {
		mux.HandleFunc("GET /healthz", healthz)
		return mux
	}
	// Auth wraps everything except /healthz, which stays open so load
	// balancers and the smoke scripts can probe liveness tokenless.
	outer := http.NewServeMux()
	outer.HandleFunc("GET /healthz", healthz)
	outer.Handle("/", s.requireAuth(mux))
	return outer
}

func (s *Server) requireAuth(next http.Handler) http.Handler {
	want := []byte("Bearer " + s.token)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got := []byte(r.Header.Get("Authorization"))
		if subtle.ConstantTimeCompare(got, want) != 1 {
			writeError(w, http.StatusUnauthorized, fmt.Errorf("campaign: missing or bad bearer token"))
			return
		}
		next.ServeHTTP(w, r)
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// handleSubmit accepts a Spec and queues it. Idempotent by digest: a
// queued/running/done job with the same digest is returned as-is; a
// failed or cancelled one is replaced by a fresh job, which resumes
// from whatever the previous attempt persisted. A submission whose
// 64-bit ID matches an existing campaign but whose normalised spec
// differs is a digest collision — rejected with 422 rather than
// silently coalescing two different campaigns into one result.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("campaign: bad spec: %w", err))
		return
	}
	job, err := New(spec, s.opts)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("campaign: server shutting down"))
		return
	}
	if prev, ok := s.byID[job.ID()]; ok {
		if !sameSpec(prev.Spec(), job.Spec()) {
			s.mu.Unlock()
			writeError(w, http.StatusUnprocessableEntity,
				fmt.Errorf("campaign: spec digest collision: id %s already names a different campaign", job.ID()))
			return
		}
		st := prev.Progress().Status
		if st != StatusFailed && st != StatusCancelled {
			s.mu.Unlock()
			writeJSON(w, http.StatusOK, prev.Progress())
			return
		}
		// Replace the dead attempt; its simulated prefix is on disk.
	} else {
		s.order = append(s.order, job.ID())
	}
	s.byID[job.ID()] = job
	select {
	case s.queue <- job:
	default:
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("campaign: queue full"))
		return
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, job.Progress())
}

// sameSpec compares two normalised specs by canonical JSON — the same
// bytes the digest is computed over, so "equal" here means "same
// digest preimage", not merely "same truncated ID".
func sameSpec(a, b Spec) bool {
	ab, aerr := json.Marshal(a)
	bb, berr := json.Marshal(b)
	return aerr == nil && berr == nil && bytes.Equal(ab, bb)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.byID[id])
	}
	s.mu.Unlock()
	out := make([]Progress, 0, len(jobs))
	for _, j := range jobs {
		p := j.Progress()
		p.Aggregates = nil // listings stay light
		out = append(out, p)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) *Job {
	s.mu.Lock()
	j := s.byID[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("campaign: no campaign %q", r.PathValue("id")))
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.job(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.Progress())
	}
}

// handleSpec serves the campaign's normalised spec — what a worker
// compiles to reproduce the coordinator's exact grid, shard bounds, and
// cache keys.
func (s *Server) handleSpec(w http.ResponseWriter, r *http.Request) {
	if j := s.job(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.Spec())
	}
}

// handleResult serves the stored canonical bytes verbatim — not a
// re-marshal — so every GET of a done campaign returns identical
// bytes, and those bytes diff clean against a `-j 1` reference run.
// An unfinished campaign answers 409 with Retry-After so pollers can
// back off instead of hammering.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	if b, ok := j.Result(); ok {
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
		return
	}
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusConflict, j.Progress())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	if j := s.job(w, r); j != nil {
		j.Cancel()
		writeJSON(w, http.StatusAccepted, j.Progress())
	}
}

// handleLease grants the requesting worker one shard of the campaign.
// 200 carries a LeaseGrant; 204 means nothing is available right now
// (every remaining shard is done or leased — poll again); 410 means the
// campaign is not running and the worker should drop it.
func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	worker := r.URL.Query().Get("worker")
	if worker == "" {
		worker = "remote/" + r.RemoteAddr
	}
	g, ok, gone := j.Lease(worker)
	switch {
	case gone:
		writeError(w, http.StatusGone, fmt.Errorf("campaign: %s is not running", j.ID()))
	case !ok:
		w.WriteHeader(http.StatusNoContent)
	default:
		writeJSON(w, http.StatusOK, g)
	}
}

// maxShardBody bounds a shard-completion payload. The real size is
// header + cells×cellAccSize + crc — a few hundred KB at the largest
// plausible grid — so 64 MB is pure transport sanity, not a tuning
// knob.
const maxShardBody = 64 << 20

// handleShard accepts one shard's aggregate bytes from a worker. The
// payload is validated structurally (crc, magic, cell count), then
// against the campaign (digest, shard index vs URL) before the
// first-write-wins merge. Duplicates are acknowledged as such — the
// worker did nothing wrong, someone else was just faster.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	shard, err := strconv.ParseUint(r.PathValue("shard"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("campaign: bad shard index %q", r.PathValue("shard")))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxShardBody+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("campaign: reading shard payload: %w", err))
		return
	}
	if len(body) > maxShardBody {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("campaign: shard payload exceeds %d bytes", maxShardBody))
		return
	}
	rep, err := decodeShardAgg(body, j.g.cells())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec := j.Spec()
	digest, err := spec.Digest()
	if err != nil || rep.digest != digest {
		writeError(w, http.StatusBadRequest, fmt.Errorf("campaign: shard payload digest does not match campaign %s", j.ID()))
		return
	}
	if rep.shard != shard {
		writeError(w, http.StatusBadRequest, fmt.Errorf("campaign: payload is for shard %d, URL names shard %d", rep.shard, shard))
		return
	}
	if lo, hi := j.exec.shardRange(shard); shard >= j.exec.nShards() || rep.runs != hi-lo {
		writeError(w, http.StatusBadRequest, fmt.Errorf("campaign: shard %d claims %d runs", shard, rep.runs))
		return
	}
	dup, gone := j.CompleteShard(rep)
	switch {
	case gone:
		writeError(w, http.StatusGone, fmt.Errorf("campaign: %s is not running", j.ID()))
	case dup:
		writeJSON(w, http.StatusOK, map[string]string{"status": "duplicate"})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "accepted"})
	}
}

// handleRenew is the lease heartbeat. 410 tells the worker the lease is
// lost — expired and reassigned, shard completed elsewhere, or campaign
// finished — and the shard should be abandoned without posting.
func (s *Server) handleRenew(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	shard, err := strconv.ParseUint(r.PathValue("shard"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("campaign: bad shard index %q", r.PathValue("shard")))
		return
	}
	token := r.Header.Get("X-Lease-Token")
	if !j.RenewLease(shard, token) {
		writeError(w, http.StatusGone, fmt.Errorf("campaign: lease on shard %d lost", shard))
		return
	}
	ttl := j.opts.LeaseTTL
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	writeJSON(w, http.StatusOK, map[string]int64{"ttl_ms": ttl.Milliseconds()})
}

// Statz is the process-wide observability snapshot behind GET /statz.
type Statz struct {
	// Cache* mirror runcache.Store.DiskStats and Len: persistent-store
	// lookups, lookup hits, appended records, and resident entries.
	CacheGets    uint64 `json:"cache_gets"`
	CacheHits    uint64 `json:"cache_hits"`
	CachePuts    uint64 `json:"cache_puts"`
	CacheEntries int    `json:"cache_entries"`
	// LaneRuns/LanePeels mirror lockstep.Stats; ForkTrees/ForkRuns
	// mirror scenario.ForkStats. All process-wide counters.
	LaneRuns  int64 `json:"lane_runs"`
	LanePeels int64 `json:"lane_peels"`
	ForkTrees int64 `json:"fork_trees"`
	ForkRuns  int64 `json:"fork_runs"`
	// Campaigns carries each campaign's execution counters and lease
	// table snapshot (aggregates omitted — this is a stats endpoint).
	Campaigns []Progress `json:"campaigns"`
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	gets, hits, puts := s.opts.Disk.DiskStats()
	laneRuns, lanePeels := lockstep.Stats()
	trees, forkRuns := scenario.ForkStats()
	st := Statz{
		CacheGets:    gets,
		CacheHits:    hits,
		CachePuts:    puts,
		CacheEntries: s.opts.Disk.Len(),
		LaneRuns:     laneRuns,
		LanePeels:    lanePeels,
		ForkTrees:    trees,
		ForkRuns:     forkRuns,
	}
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.byID[id])
	}
	s.mu.Unlock()
	for _, j := range jobs {
		p := j.Progress()
		p.Aggregates = nil
		st.Campaigns = append(st.Campaigns, p)
	}
	writeJSON(w, http.StatusOK, st)
}
