package campaign

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/runcache"
)

// Server is the campaign control plane behind `emptcpsim serve`: an
// HTTP+JSON API to submit campaigns, watch their streaming progress,
// fetch canonical aggregates, and cancel. Campaigns are identified by
// spec digest, so submission is idempotent: re-posting a spec attaches
// to the existing job (or, after a failure or cancellation, starts a
// fresh one that resumes from the disk cache).
//
//	POST /campaigns            submit a Spec           → 202 Progress
//	GET  /campaigns            list                    → 200 [Progress]
//	GET  /campaigns/{id}       status + snapshot       → 200 Progress
//	GET  /campaigns/{id}/result canonical aggregates   → 200 JSON / 409 Progress
//	POST /campaigns/{id}/cancel                        → 202 Progress
//	GET  /healthz                                      → 200 ok
type Server struct {
	opts Options

	mu     sync.Mutex
	byID   map[string]*Job
	order  []string // submission order, for stable listings
	queue  chan *Job
	closed bool
	wg     sync.WaitGroup
}

// NewServer builds a server executing campaigns one at a time (each
// job already parallelises across cores) against the given disk store.
// jobs ≤ 0 means GOMAXPROCS workers per campaign. NewServerOpts passes
// the full execution options through (escape hatches included).
func NewServer(disk *runcache.Store, jobs int) *Server {
	return NewServerOpts(Options{Disk: disk, Jobs: jobs})
}

// NewServerOpts is NewServer with every campaign execution option.
func NewServerOpts(opts Options) *Server {
	s := &Server{
		opts: opts,
		byID: make(map[string]*Job),
		// A deep queue so submissions never block; the dispatcher
		// drains it FIFO.
		queue: make(chan *Job, 1024),
	}
	s.wg.Add(1)
	go s.dispatch()
	return s
}

// dispatch runs queued jobs sequentially. Sequential execution keeps
// the memory envelope at one campaign's worth and makes progress
// reporting honest (a queued campaign reports queued, not starved).
func (s *Server) dispatch() {
	defer s.wg.Done()
	for job := range s.queue {
		job.Execute() // terminal state and error live on the job
	}
}

// Close stops accepting work, cancels the running and queued jobs,
// waits for the dispatcher to drain, and syncs the disk store — the
// graceful-shutdown checkpoint: everything simulated so far is
// durable, so the next server resumes from disk.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for _, j := range s.byID {
		j.Cancel()
	}
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
	return s.opts.Disk.Sync()
}

// Handler returns the server's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /campaigns", s.handleSubmit)
	mux.HandleFunc("GET /campaigns", s.handleList)
	mux.HandleFunc("GET /campaigns/{id}", s.handleStatus)
	mux.HandleFunc("GET /campaigns/{id}/result", s.handleResult)
	mux.HandleFunc("POST /campaigns/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// handleSubmit accepts a Spec and queues it. Idempotent by digest: a
// queued/running/done job with the same digest is returned as-is; a
// failed or cancelled one is replaced by a fresh job, which resumes
// from whatever the previous attempt persisted.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("campaign: bad spec: %w", err))
		return
	}
	job, err := New(spec, s.opts)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("campaign: server shutting down"))
		return
	}
	if prev, ok := s.byID[job.ID()]; ok {
		st := prev.Progress().Status
		if st != StatusFailed && st != StatusCancelled {
			s.mu.Unlock()
			writeJSON(w, http.StatusOK, prev.Progress())
			return
		}
		// Replace the dead attempt; its simulated prefix is on disk.
	} else {
		s.order = append(s.order, job.ID())
	}
	s.byID[job.ID()] = job
	select {
	case s.queue <- job:
	default:
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("campaign: queue full"))
		return
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, job.Progress())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.byID[id])
	}
	s.mu.Unlock()
	out := make([]Progress, 0, len(jobs))
	for _, j := range jobs {
		p := j.Progress()
		p.Aggregates = nil // listings stay light
		out = append(out, p)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) *Job {
	s.mu.Lock()
	j := s.byID[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("campaign: no campaign %q", r.PathValue("id")))
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.job(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.Progress())
	}
}

// handleResult serves the stored canonical bytes verbatim — not a
// re-marshal — so every GET of a done campaign returns identical
// bytes, and those bytes diff clean against a `-j 1` reference run.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	if b, ok := j.Result(); ok {
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
		return
	}
	writeJSON(w, http.StatusConflict, j.Progress())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	if j := s.job(w, r); j != nil {
		j.Cancel()
		writeJSON(w, http.StatusAccepted, j.Progress())
	}
}
