package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/scenario"
)

// The replay path's per-run budget: cellAt must stay in the
// nanoseconds, and cacheKey's ~20µs is why Job memoizes keys for
// replicated grids.
func BenchmarkRunAtAndKey(b *testing.B) {
	g, err := compile(smallSpec())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("runAt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.runAt(uint64(i) % g.total)
		}
	})
	b.Run("cellAt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.cellAt(uint64(i) % g.total)
		}
	})
	b.Run("cacheKey", func(b *testing.B) {
		sc, proto, seed, _ := g.runAt(0)
		for i := 0; i < b.N; i++ {
			scenario.CacheKey(sc, proto, scenario.Opts{Seed: seed})
		}
	})
}

// BenchmarkDistributedCampaign drives a cache-cold 10⁵-run campaign
// through the full HTTP coordinator, with the coordinator pinned to one
// local worker (-j 1) and zero or one remote Workers attached over the
// real lease protocol. On a multi-core host workers=2 approaches 2× the
// workers=1 throughput (two processes' worth of folding); on a
// single-core runner the two variants measure the same work plus the
// protocol overhead, which is the honest number such a machine can
// produce. Every iteration is a fresh server and a fresh campaign with
// no disk store, so nothing is ever replayed.
func BenchmarkDistributedCampaign(b *testing.B) {
	spec := Spec{
		Name:      "bench-distributed",
		WiFi:      []string{"bad"},
		LTE:       []string{"good"},
		Locations: []string{"wdc", "sng"},
		SizesMB:   []float64{0.25},
		Protocols: []string{"mptcp", "emptcp"},
		Seeds:     SeedRange{Base: 1, Count: 25_000}, // ×2×2 = 100k runs
		ShardSize: 1024,
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		b.Fatal(err)
	}

	run := func(b *testing.B, remoteWorkers int) {
		for i := 0; i < b.N; i++ {
			srv := NewServerOpts(Options{Jobs: 1})
			ts := httptest.NewServer(srv.Handler())
			ctx, cancel := context.WithCancel(context.Background())
			var wg sync.WaitGroup
			for w := 0; w < remoteWorkers; w++ {
				wk, err := NewWorker(WorkerOptions{
					Coordinator:  ts.URL,
					PollInterval: time.Millisecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					wk.Run(ctx)
				}()
			}

			resp, err := http.Post(ts.URL+"/campaigns", "application/json", bytes.NewReader(specJSON))
			if err != nil {
				b.Fatal(err)
			}
			var p Progress
			json.NewDecoder(resp.Body).Decode(&p)
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				b.Fatalf("submit = %d", resp.StatusCode)
			}
			for p.Status != StatusDone {
				if p.Status == StatusFailed || p.Status == StatusCancelled {
					b.Fatalf("campaign %s: %v (%s)", p.ID, p.Status, p.Error)
				}
				time.Sleep(10 * time.Millisecond)
				resp, err := http.Get(ts.URL + "/campaigns/" + p.ID)
				if err != nil {
					b.Fatal(err)
				}
				err = json.NewDecoder(resp.Body).Decode(&p)
				resp.Body.Close()
				if err != nil {
					b.Fatal(err)
				}
			}

			cancel()
			wg.Wait()
			ts.Close()
			srv.Close()
		}
		b.ReportMetric(float64(spec.TotalRuns())*float64(b.N)/b.Elapsed().Seconds(), "runs/s")
	}
	b.Run("workers=1", func(b *testing.B) { run(b, 0) })
	b.Run("workers=2", func(b *testing.B) { run(b, 1) })
}
