package campaign

import (
	"testing"

	"repro/internal/scenario"
)

// The replay path's per-run budget: cellAt must stay in the
// nanoseconds, and cacheKey's ~20µs is why Job memoizes keys for
// replicated grids.
func BenchmarkRunAtAndKey(b *testing.B) {
	g, err := compile(smallSpec())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("runAt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.runAt(uint64(i) % g.total)
		}
	})
	b.Run("cellAt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.cellAt(uint64(i) % g.total)
		}
	})
	b.Run("cacheKey", func(b *testing.B) {
		sc, proto, seed, _ := g.runAt(0)
		for i := 0; i < b.N; i++ {
			scenario.CacheKey(sc, proto, scenario.Opts{Seed: seed})
		}
	})
}
