package campaign

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// The shard-lease protocol is the distribution unit of a campaign: the
// coordinator partitions the run grid into the same spec-derived shards
// the single-process executor uses, and hands them out as leases — to
// its own local workers and to remote `emptcpsim worker` processes
// alike (the coordinator is just worker #0). A lease expires if its
// holder stops renewing (worker death), after which the shard is
// reassigned; a shard's first completion wins and any later duplicate
// is dropped. Because every shard aggregate is a pure function of the
// spec (same runs, same in-shard fold order, bit-exact codec), the
// merged campaign bytes are identical no matter which worker computed
// which shard, how leases expired, or how many duplicates raced.

// DefaultLeaseTTL is the shard-lease expiry when Options.LeaseTTL is
// zero: long enough that a worker grinding through a cache-cold shard
// with a renewal heartbeat at TTL/3 never loses it, short enough that a
// SIGKILLed worker's shards reassign within seconds.
const DefaultLeaseTTL = 30 * time.Second

// lease is one outstanding shard assignment.
type lease struct {
	token   string
	worker  string
	expires time.Time
}

// LeaseGrant is the coordinator's answer to a lease request, JSON-shaped
// for the HTTP protocol.
type LeaseGrant struct {
	Campaign string `json:"campaign"`
	Shard    uint64 `json:"shard"`
	Lo       uint64 `json:"lo"` // first run index of the shard
	Hi       uint64 `json:"hi"` // one past the last run index
	Token    string `json:"token"`
	TTLMs    int64  `json:"ttl_ms"`
}

// LeaseState is the lease table's observable snapshot, published by
// Progress and /statz so distributed runs are debuggable without log
// scraping.
type LeaseState struct {
	Shards     uint64 `json:"shards"`
	Done       uint64 `json:"done"`
	Leased     uint64 `json:"leased"`
	Expired    uint64 `json:"expired"`    // lifetime count of lease expiries
	Duplicates uint64 `json:"duplicates"` // completions dropped first-write-wins
	Workers    int    `json:"workers"`    // distinct workers ever granted a lease
}

// leaseTable tracks shard ownership for one job. All methods are
// safe for concurrent use; time is injected so tests can drive expiry
// deterministically.
type leaseTable struct {
	mu  sync.Mutex
	ttl time.Duration
	now func() time.Time

	n       uint64            // total shards
	next    uint64            // next never-assigned shard
	leases  map[uint64]*lease // outstanding, keyed by shard
	done    map[uint64]bool   // completed shards
	free    []uint64          // expired shards awaiting reassignment, ascending
	seq     uint64            // token counter
	workers map[string]bool

	expired    uint64
	duplicates uint64
}

func newLeaseTable(nShards uint64, ttl time.Duration, now func() time.Time) *leaseTable {
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	if now == nil {
		now = time.Now
	}
	return &leaseTable{
		ttl:     ttl,
		now:     now,
		n:       nShards,
		leases:  make(map[uint64]*lease),
		done:    make(map[uint64]bool),
		workers: make(map[string]bool),
	}
}

// reapLocked moves every expired lease to the reassignment queue.
// Callers hold mu.
func (lt *leaseTable) reapLocked() {
	t := lt.now()
	for s, l := range lt.leases {
		if t.After(l.expires) {
			delete(lt.leases, s)
			lt.expired++
			i := sort.Search(len(lt.free), func(i int) bool { return lt.free[i] >= s })
			lt.free = append(lt.free, 0)
			copy(lt.free[i+1:], lt.free[i:])
			lt.free[i] = s
		}
	}
}

// acquire grants the lowest-index unowned shard to worker, preferring
// expired reassignments over fresh shards so the coordinator's in-order
// merge window stays small. ok is false when every remaining shard is
// done or leased out — the caller either waits (a lease may expire) or,
// if allDone, stops.
func (lt *leaseTable) acquire(worker string) (shard uint64, token string, ok bool) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	lt.reapLocked()
	for len(lt.free) > 0 {
		shard, lt.free = lt.free[0], lt.free[1:]
		if !lt.done[shard] {
			ok = true
			break
		}
	}
	if !ok {
		for lt.next < lt.n {
			shard = lt.next
			lt.next++
			if !lt.done[shard] {
				ok = true
				break
			}
		}
	}
	if !ok {
		return 0, "", false
	}
	lt.seq++
	token = fmt.Sprintf("s%d.%d", shard, lt.seq)
	lt.leases[shard] = &lease{token: token, worker: worker, expires: lt.now().Add(lt.ttl)}
	lt.workers[worker] = true
	return shard, token, true
}

// renew extends the lease's deadline. It fails when the lease has
// already expired and been reassigned (token mismatch), or the shard
// completed — the holder should abandon the shard in both cases.
func (lt *leaseTable) renew(shard uint64, token string) bool {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	l, ok := lt.leases[shard]
	if !ok || l.token != token || lt.done[shard] {
		return false
	}
	l.expires = lt.now().Add(lt.ttl)
	return true
}

// complete marks the shard done, first-write-wins: the first completion
// is accepted even if its lease already expired (the data is a pure
// function of the spec, so it is exactly the bytes any other worker
// would produce), and every later completion reports dup=true and must
// be dropped by the caller.
func (lt *leaseTable) complete(shard uint64) (dup bool) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if lt.done[shard] {
		lt.duplicates++
		return true
	}
	lt.done[shard] = true
	delete(lt.leases, shard)
	return false
}

// release returns an unfinished shard to the queue immediately (local
// worker stopping mid-shard on cancel) instead of waiting out the TTL.
func (lt *leaseTable) release(shard uint64, token string) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	l, ok := lt.leases[shard]
	if !ok || l.token != token {
		return
	}
	delete(lt.leases, shard)
	i := sort.Search(len(lt.free), func(i int) bool { return lt.free[i] >= shard })
	lt.free = append(lt.free, 0)
	copy(lt.free[i+1:], lt.free[i:])
	lt.free[i] = shard
}

// allDone reports whether every shard has completed.
func (lt *leaseTable) allDone() bool {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return uint64(len(lt.done)) == lt.n
}

func (lt *leaseTable) state() LeaseState {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return LeaseState{
		Shards:     lt.n,
		Done:       uint64(len(lt.done)),
		Leased:     uint64(len(lt.leases)),
		Expired:    lt.expired,
		Duplicates: lt.duplicates,
		Workers:    len(lt.workers),
	}
}
