package campaign

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/energy"
	"repro/internal/scenario"
	"repro/internal/units"
)

// Binary codec for scenario.Result on the disk cache. Campaign runs
// never trace (Opts.Trace off), so the trace pointers are always nil
// and the fixed-width scalar fields are the whole result; everything
// encodes as little-endian uint64 (Float64bits for the float-backed
// units types), so decode(encode(r)) == r bit for bit — the property
// the byte-identical-aggregates guarantee leans on.
//
// The version byte guards the layout and the interface count guards
// the ByIface array: a record written by an older binary with either
// mismatched is treated as a cache miss (re-simulate), never as data.

const (
	codecVersion = 1
	// 2 header bytes + 13 eight-byte fields (proto, completed,
	// completion, elapsed, energy, 3×iface, base, down, up, j/B, pct)
	// + switches + lteUsed.
	codecSize = 2 + 13*8 + 8 + 1
)

func encodeResult(r scenario.Result) []byte {
	b := make([]byte, 0, codecSize)
	b = append(b, codecVersion, byte(energy.NumInterfaces))
	u64 := func(v uint64) { b = binary.LittleEndian.AppendUint64(b, v) }
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	u64(uint64(r.Protocol))
	if r.Completed {
		u64(1)
	} else {
		u64(0)
	}
	f64(r.CompletionTime)
	f64(r.Elapsed)
	f64(float64(r.Energy))
	for _, e := range r.ByIface {
		f64(float64(e))
	}
	f64(float64(r.BaseEnergy))
	f64(float64(r.Downloaded))
	f64(float64(r.Uploaded))
	f64(r.JPerByte)
	f64(r.BatteryPct)
	u64(uint64(r.Switches))
	if r.LTEUsed {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return b
}

func decodeResult(b []byte) (scenario.Result, error) {
	var r scenario.Result
	if len(b) != codecSize {
		return r, fmt.Errorf("campaign: result record is %d bytes, want %d", len(b), codecSize)
	}
	if b[0] != codecVersion || b[1] != byte(energy.NumInterfaces) {
		return r, fmt.Errorf("campaign: result record version %d/%d, want %d/%d",
			b[0], b[1], codecVersion, energy.NumInterfaces)
	}
	b = b[2:]
	u64 := func() uint64 {
		v := binary.LittleEndian.Uint64(b)
		b = b[8:]
		return v
	}
	f64 := func() float64 { return math.Float64frombits(u64()) }
	r.Protocol = scenario.Protocol(u64())
	r.Completed = u64() != 0
	r.CompletionTime = f64()
	r.Elapsed = f64()
	r.Energy = units.Energy(f64())
	for i := range r.ByIface {
		r.ByIface[i] = units.Energy(f64())
	}
	r.BaseEnergy = units.Energy(f64())
	r.Downloaded = units.ByteSize(f64())
	r.Uploaded = units.ByteSize(f64())
	r.JPerByte = f64()
	r.BatteryPct = f64()
	r.Switches = int(u64())
	r.LTEUsed = b[0] != 0
	return r, nil
}
