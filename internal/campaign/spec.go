// Package campaign is the population-scale layer above the single-run
// simulator: it treats "simulate a population of millions of devices"
// as a first-class job. A declarative Spec names a parameter grid —
// device profile × link-quality categories × server locations ×
// workload sizes × protocols × a seed range, optionally replicated —
// and the executor streams every grid point through fixed-memory
// streaming aggregators (internal/stats.Stream), never retaining
// per-run results, so a 10⁶-run campaign runs in constant memory.
// Results are memoized in a persistent content-addressed disk cache
// (internal/runcache.Store) under the same sha256 keys the in-process
// run cache uses, so campaigns dedupe and resume across invocations;
// the HTTP control plane in server.go exposes submit/status/result/
// cancel as the `emptcpsim serve` capacity-planning service.
//
// Determinism: a campaign's aggregates are a pure function of its Spec.
// The run grid is enumerated in a fixed order, folded into fixed-size
// shards, and shard aggregates are merged in shard order — so the
// output bytes are identical at any worker count, with or without the
// disk cache, resumed or not.
package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/energy"
	"repro/internal/scenario"
	"repro/internal/units"
	"repro/internal/workload"
)

// SeedRange is a contiguous run-seed range: Base, Base+1, …,
// Base+Count−1. Seeds are shared across protocols and categories (the
// paper's paired-measurement design), so comparisons within a campaign
// are matched.
type SeedRange struct {
	Base  int64 `json:"base"`
	Count int   `json:"count"`
}

// Spec declares one campaign: the §5.1 in-the-wild grid generalised to
// arbitrary sizes and populations. The zero values of optional fields
// are normalised by Validate; the digest is taken over the normalised
// spec, so two spellings of the same campaign share an identity.
type Spec struct {
	// Name is a human label; it does not affect the digest's run grid
	// but is part of campaign identity (two names = two campaigns).
	Name string `json:"name,omitempty"`
	// Device is the handset profile: "s3" (default) or "n5".
	Device string `json:"device,omitempty"`
	// WiFi and LTE list the link-quality categories to cross:
	// "good" (≥8 Mbps draws) or "bad". Default: both.
	WiFi []string `json:"wifi,omitempty"`
	LTE  []string `json:"lte,omitempty"`
	// Locations lists server deployments ("wdc", "ams", "sng");
	// runs spread across them within each cell. Default: all three.
	Locations []string `json:"locations,omitempty"`
	// SizesMB lists file-download sizes in MB. Default: 16.
	SizesMB []float64 `json:"sizes_mb,omitempty"`
	// Protocols lists the transports to compare: "tcp-wifi", "tcp-lte",
	// "mptcp", "emptcp", "wifi-first", "mdp", "single-path".
	// Default: mptcp, emptcp, tcp-wifi (the whisker-figure trio).
	Protocols []string `json:"protocols,omitempty"`
	// Seeds is the per-cell seed range (population size per cell ×
	// location). Required: Count ≥ 1.
	Seeds SeedRange `json:"seeds"`
	// Replicate repeats the whole grid N times (default 1). Replicas
	// re-ask every question the grid poses — the population-scale query
	// pattern — and dedupe onto the first replica through the cache, so
	// aggregate counts scale to N× the grid while simulating it once.
	Replicate int `json:"replicate,omitempty"`
	// ShardSize is the number of runs per aggregation shard (default
	// 1024). It fixes the deterministic merge boundaries and bounds the
	// out-of-order buffer; it does not affect results beyond shaping
	// the (fixed) float reduction order.
	ShardSize int `json:"shard_size,omitempty"`
}

// Validate normalises the spec in place (filling defaults) and checks
// every enumerated value, returning a descriptive error for the HTTP
// 400 path.
func (s *Spec) Validate() error {
	if s.Device == "" {
		s.Device = "s3"
	}
	if _, err := deviceOf(s.Device); err != nil {
		return err
	}
	if len(s.WiFi) == 0 {
		s.WiFi = []string{"bad", "good"}
	}
	if len(s.LTE) == 0 {
		s.LTE = []string{"bad", "good"}
	}
	for _, q := range append(append([]string{}, s.WiFi...), s.LTE...) {
		if _, err := qualityOf(q); err != nil {
			return err
		}
	}
	if len(s.Locations) == 0 {
		s.Locations = []string{"wdc", "ams", "sng"}
	}
	for _, l := range s.Locations {
		if _, err := locationOf(l); err != nil {
			return err
		}
	}
	if len(s.SizesMB) == 0 {
		s.SizesMB = []float64{16}
	}
	for _, mb := range s.SizesMB {
		if mb <= 0 || mb > 4096 {
			return fmt.Errorf("campaign: size %vMB out of range (0, 4096]", mb)
		}
	}
	if len(s.Protocols) == 0 {
		s.Protocols = []string{"mptcp", "emptcp", "tcp-wifi"}
	}
	for _, p := range s.Protocols {
		if _, err := protocolOf(p); err != nil {
			return err
		}
	}
	if s.Seeds.Count < 1 {
		return fmt.Errorf("campaign: seeds.count must be ≥ 1 (got %d)", s.Seeds.Count)
	}
	if s.Replicate == 0 {
		s.Replicate = 1
	}
	if s.Replicate < 1 {
		return fmt.Errorf("campaign: replicate must be ≥ 1 (got %d)", s.Replicate)
	}
	if s.ShardSize == 0 {
		s.ShardSize = 1024
	}
	if s.ShardSize < 1 {
		return fmt.Errorf("campaign: shard_size must be ≥ 1 (got %d)", s.ShardSize)
	}
	return nil
}

// TotalRuns is the campaign's grid size including replication,
// computed over the normalised form (0 for an invalid spec).
func (s *Spec) TotalRuns() uint64 {
	n := *s
	if err := n.Validate(); err != nil {
		return 0
	}
	return uint64(n.Replicate) * uint64(len(n.WiFi)) * uint64(len(n.LTE)) *
		uint64(len(n.SizesMB)) * uint64(len(n.Protocols)) *
		uint64(len(n.Locations)) * uint64(n.Seeds.Count)
}

// Digest is the campaign's content identity: a sha256 over the
// canonical JSON encoding of the normalised spec. Equal digests mean
// equal run grids and therefore byte-identical aggregates.
func (s *Spec) Digest() ([32]byte, error) {
	n := *s // normalise a copy so Digest is const on validated specs
	if err := n.Validate(); err != nil {
		return [32]byte{}, err
	}
	b, err := json.Marshal(n)
	if err != nil {
		return [32]byte{}, err
	}
	return sha256.Sum256(b), nil
}

// ID is the short hex form of the digest used as the campaign's HTTP
// resource name.
func (s *Spec) ID() (string, error) {
	d, err := s.Digest()
	if err != nil {
		return "", err
	}
	return hex.EncodeToString(d[:])[:16], nil
}

func deviceOf(name string) (*energy.DeviceProfile, error) {
	switch strings.ToLower(name) {
	case "s3":
		return energy.GalaxyS3(), nil
	case "n5":
		return energy.Nexus5(), nil
	}
	return nil, fmt.Errorf("campaign: unknown device %q (want s3 or n5)", name)
}

func qualityOf(name string) (scenario.Quality, error) {
	switch strings.ToLower(name) {
	case "good":
		return scenario.Good, nil
	case "bad":
		return scenario.Bad, nil
	}
	return 0, fmt.Errorf("campaign: unknown link quality %q (want good or bad)", name)
}

func locationOf(name string) (scenario.ServerLoc, error) {
	switch strings.ToLower(name) {
	case "wdc":
		return scenario.WDC, nil
	case "ams":
		return scenario.AMS, nil
	case "sng":
		return scenario.SNG, nil
	}
	return 0, fmt.Errorf("campaign: unknown server location %q (want wdc, ams, or sng)", name)
}

func protocolOf(name string) (scenario.Protocol, error) {
	switch strings.ToLower(name) {
	case "tcp-wifi":
		return scenario.TCPWiFi, nil
	case "tcp-lte":
		return scenario.TCPLTE, nil
	case "mptcp":
		return scenario.MPTCP, nil
	case "emptcp":
		return scenario.EMPTCP, nil
	case "wifi-first":
		return scenario.WiFiFirst, nil
	case "mdp":
		return scenario.MDP, nil
	case "single-path":
		return scenario.SinglePath, nil
	}
	return 0, fmt.Errorf("campaign: unknown protocol %q", name)
}

// grid is the compiled form of a validated spec: every run index maps
// to one (scenario, protocol, seed) triple and one aggregation cell.
// Enumeration order (outermost first) is replicate, wifi, lte, size,
// protocol, location, seed — fixed forever, since the shard-merge
// determinism and the disk-cache resume both replay it.
type grid struct {
	spec   Spec
	device *energy.DeviceProfile
	wifi   []scenario.Quality
	lte    []scenario.Quality
	locs   []scenario.ServerLoc
	protos []scenario.Protocol
	total  uint64
}

func compile(spec Spec) (*grid, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	g := &grid{spec: spec}
	var err error
	if g.device, err = deviceOf(spec.Device); err != nil {
		return nil, err
	}
	for _, q := range spec.WiFi {
		v, _ := qualityOf(q)
		g.wifi = append(g.wifi, v)
	}
	for _, q := range spec.LTE {
		v, _ := qualityOf(q)
		g.lte = append(g.lte, v)
	}
	for _, l := range spec.Locations {
		v, _ := locationOf(l)
		g.locs = append(g.locs, v)
	}
	for _, p := range spec.Protocols {
		v, _ := protocolOf(p)
		g.protos = append(g.protos, v)
	}
	g.total = spec.TotalRuns()
	return g, nil
}

// cells is the number of aggregation cells: every (wifi, lte, size,
// protocol) combination. Locations, seeds, and replicas aggregate into
// their cell.
func (g *grid) cells() int {
	return len(g.wifi) * len(g.lte) * len(g.spec.SizesMB) * len(g.protos)
}

// cellAt is runAt's arithmetic-only sibling: the aggregation cell of
// run i, with no scenario construction. The executor calls it once per
// run on the replay path, so it must stay allocation-free.
func (g *grid) cellAt(i uint64) int {
	i /= uint64(g.spec.Seeds.Count)
	i /= uint64(len(g.locs))
	nProto := uint64(len(g.protos))
	protoIdx := i % nProto
	i /= nProto
	nSize := uint64(len(g.spec.SizesMB))
	sizeIdx := i % nSize
	i /= nSize
	nLTE := uint64(len(g.lte))
	lteIdx := i % nLTE
	i /= nLTE
	wifiIdx := i % uint64(len(g.wifi))
	return int(((wifiIdx*nLTE+lteIdx)*nSize+sizeIdx)*nProto + protoIdx)
}

// runAt decodes run index i into its scenario, protocol, seed, and
// aggregation cell.
func (g *grid) runAt(i uint64) (sc scenario.Scenario, proto scenario.Protocol, seed int64, cell int) {
	nSeed := uint64(g.spec.Seeds.Count)
	nLoc := uint64(len(g.locs))
	nProto := uint64(len(g.protos))
	nSize := uint64(len(g.spec.SizesMB))
	nLTE := uint64(len(g.lte))

	seedIdx := i % nSeed
	i /= nSeed
	locIdx := i % nLoc
	i /= nLoc
	protoIdx := i % nProto
	i /= nProto
	sizeIdx := i % nSize
	i /= nSize
	lteIdx := i % nLTE
	i /= nLTE
	wifiIdx := i % uint64(len(g.wifi))
	// The remaining quotient is the replica number; it changes nothing
	// about the run, which is exactly what makes replicas cache hits.

	size := units.ByteSize(g.spec.SizesMB[sizeIdx] * float64(units.MB))
	sc = scenario.Wild(g.device, g.wifi[wifiIdx], g.lte[lteIdx], g.locs[locIdx],
		workload.FileDownload{Size: size})
	proto = g.protos[protoIdx]
	seed = g.spec.Seeds.Base + int64(seedIdx)
	cell = int(((wifiIdx*nLTE+lteIdx)*nSize+sizeIdx)*nProto + protoIdx)
	return sc, proto, seed, cell
}
