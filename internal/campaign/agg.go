package campaign

import (
	"encoding/hex"
	"encoding/json"
	"math"

	"repro/internal/scenario"
	"repro/internal/stats"
)

// cellAcc is the streaming accumulator for one aggregation cell: fixed
// size regardless of how many runs fold into it. Aggregation is the
// only thing the executor retains, so campaign memory is
// O(cells + workers·shard), never O(runs).
type cellAcc struct {
	runs      uint64
	completed uint64
	lteUsed   uint64
	energy    stats.Stream // J, all runs
	dltime    stats.Stream // s, completed runs only
	jpb       stats.Stream // J/B, runs with finite J/B
}

func (c *cellAcc) add(r *scenario.Result) {
	c.runs++
	c.energy.Add(float64(r.Energy))
	if r.Completed {
		c.completed++
		c.dltime.Add(r.CompletionTime)
	}
	if r.LTEUsed {
		c.lteUsed++
	}
	if !math.IsNaN(r.JPerByte) && !math.IsInf(r.JPerByte, 0) {
		c.jpb.Add(r.JPerByte)
	}
}

func (c *cellAcc) merge(o *cellAcc) {
	c.runs += o.runs
	c.completed += o.completed
	c.lteUsed += o.lteUsed
	c.energy.Merge(o.energy)
	c.dltime.Merge(o.dltime)
	c.jpb.Merge(o.jpb)
}

// agg is one shard's (or the campaign's) full accumulator array, one
// cellAcc per grid cell.
type agg struct {
	cells []cellAcc
}

func newAgg(n int) *agg { return &agg{cells: make([]cellAcc, n)} }

func (a *agg) add(cell int, r *scenario.Result) { a.cells[cell].add(r) }

func (a *agg) merge(o *agg) {
	for i := range a.cells {
		a.cells[i].merge(&o.cells[i])
	}
}

func (a *agg) reset() {
	for i := range a.cells {
		a.cells[i] = cellAcc{}
	}
}

// Dist is the JSON projection of one stats.Stream. Zero-valued when
// N == 0 (JSON cannot carry NaN).
type Dist struct {
	N    uint64     `json:"n"`
	Mean float64    `json:"mean"`
	SEM  float64    `json:"sem"`
	CI95 [2]float64 `json:"ci95"`
	Min  float64    `json:"min"`
	Max  float64    `json:"max"`
}

func distOf(s stats.Stream) Dist {
	if s.N == 0 {
		return Dist{}
	}
	lo, hi := s.CI95()
	d := Dist{N: s.N, Mean: s.Mean(), SEM: s.SEM(), CI95: [2]float64{lo, hi}, Min: s.Min(), Max: s.Max()}
	if s.N == 1 { // SEM and CI are NaN with one sample; flatten to the point
		d.SEM, d.CI95 = 0, [2]float64{d.Mean, d.Mean}
	}
	return d
}

// CellAgg is one cell of the campaign's published aggregates, labelled
// with the cell's coordinates.
type CellAgg struct {
	WiFi      string  `json:"wifi"`
	LTE       string  `json:"lte"`
	SizeMB    float64 `json:"size_mb"`
	Protocol  string  `json:"protocol"`
	Runs      uint64  `json:"runs"`
	Completed uint64  `json:"completed"`
	LTEUsed   uint64  `json:"lte_used"`
	EnergyJ   Dist    `json:"energy_j"`
	TimeS     Dist    `json:"time_s"`
	JPerByte  Dist    `json:"j_per_byte"`
}

// Aggregates is a campaign's complete published result.
type Aggregates struct {
	Spec       Spec      `json:"spec"`
	SpecDigest string    `json:"spec_digest"`
	TotalRuns  uint64    `json:"total_runs"`
	Cells      []CellAgg `json:"cells"`
}

// aggregates projects the accumulator array into the published form,
// in cell-index order (the spec's wifi × lte × size × protocol order).
func (g *grid) aggregates(a *agg) (Aggregates, error) {
	d, err := g.spec.Digest()
	if err != nil {
		return Aggregates{}, err
	}
	out := Aggregates{
		Spec:       g.spec,
		SpecDigest: hex.EncodeToString(d[:]),
		Cells:      make([]CellAgg, 0, len(a.cells)),
	}
	i := 0
	for wi := range g.wifi {
		for li := range g.lte {
			for si := range g.spec.SizesMB {
				for pi := range g.protos {
					c := &a.cells[i]
					out.TotalRuns += c.runs
					out.Cells = append(out.Cells, CellAgg{
						WiFi:      g.spec.WiFi[wi],
						LTE:       g.spec.LTE[li],
						SizeMB:    g.spec.SizesMB[si],
						Protocol:  g.spec.Protocols[pi],
						Runs:      c.runs,
						Completed: c.completed,
						LTEUsed:   c.lteUsed,
						EnergyJ:   distOf(c.energy),
						TimeS:     distOf(c.dltime),
						JPerByte:  distOf(c.jpb),
					})
					i++
				}
			}
		}
	}
	return out, nil
}

// MarshalCanonical renders the aggregates in the campaign's canonical
// byte form: encoding/json with struct-order keys plus a trailing
// newline. Two campaigns with equal digests produce equal bytes — the
// acceptance check diffs these directly.
func (ag *Aggregates) MarshalCanonical() ([]byte, error) {
	b, err := json.MarshalIndent(ag, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
