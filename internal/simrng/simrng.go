// Package simrng provides the deterministic random-number machinery used by
// every stochastic process in the simulator.
//
// Reproducibility is a first-class requirement: every experiment in the
// paper reports statistics over repeated runs, and this reproduction must
// regenerate the same tables on every invocation. All randomness therefore
// flows from explicit seeds. A Source wraps math/rand with convenience
// distributions; Split derives independent child streams so that adding a
// new consumer of randomness does not perturb existing ones.
package simrng

import (
	"math"
	"math/rand"
)

// Source is a deterministic random source with the distribution helpers the
// simulator needs. It is not safe for concurrent use; the discrete-event
// kernel is single-threaded by design.
//
// The generator is a native reimplementation of math/rand's lagged-
// Fibonacci source (see lfsource.go) whose stream is proven bit-identical
// to the library's. Uniform draws go through native fast paths on the
// state vector; the ziggurat distributions (ExpFloat64, NormFloat64) go
// through an embedded rand.Rand wrapped around the same state, so they
// too consume the shared stream in library order.
type Source struct {
	rng   *rand.Rand
	arena *Arena // non-nil when recycled via an Arena; inherited by Split children
	lf    lfSource
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	s := &Source{}
	s.lf.Seed(seed)
	s.rng = rand.New(&s.lf)
	return s
}

// Split derives an independent child stream. The derivation mixes the
// parent seed stream with the label using SplitMix64-style finalization, so
// children with different labels are decorrelated from each other and from
// the parent.
func (s *Source) Split(label uint64) *Source {
	base := s.lf.Uint64()
	seed := int64(mix64(base ^ mix64(label)))
	if s.arena != nil {
		return s.arena.New(seed)
	}
	return New(seed)
}

// mix64 is the SplitMix64 finalizer, a high-quality 64-bit mixing function.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0,1). The resample-on-1.0 loop
// replicates rand.Rand.Float64 exactly (the 1.0 case needs the stream to
// produce 1<<63-1, so it is astronomically rare but must stay identical).
func (s *Source) Float64() float64 {
	for {
		f := float64(s.lf.Int63()) / (1 << 63)
		if f != 1 {
			return f
		}
	}
}

// Uniform returns a uniform value in [lo,hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Intn returns a uniform int in [0,n), drawing exactly as rand.Rand.Intn
// does (31-bit rejection sampling for small n, 63-bit otherwise). It
// panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("simrng: Intn with non-positive n")
	}
	if n <= 1<<31-1 {
		return int(s.int31n(int32(n)))
	}
	return int(s.int63n(int64(n)))
}

// int31n mirrors rand.Rand.Int31n's rejection sampling bit-for-bit.
func (s *Source) int31n(n int32) int32 {
	if n&(n-1) == 0 { // n is a power of two
		return s.lf.int31() & (n - 1)
	}
	maxv := int32((1 << 31) - 1 - (1<<31)%uint32(n))
	v := s.lf.int31()
	for v > maxv {
		v = s.lf.int31()
	}
	return v % n
}

// int63n mirrors rand.Rand.Int63n's rejection sampling bit-for-bit.
func (s *Source) int63n(n int64) int64 {
	if n&(n-1) == 0 {
		return s.lf.Int63() & (n - 1)
	}
	maxv := int64((1 << 63) - 1 - (1<<63)%uint64(n))
	v := s.lf.Int63()
	for v > maxv {
		v = s.lf.Int63()
	}
	return v % n
}

// Exponential returns an exponentially distributed value with the given
// mean. A non-positive mean returns 0.
func (s *Source) Exponential(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return s.rng.ExpFloat64() * mean
}

// ExponentialRate returns an exponentially distributed value with the given
// rate (events per unit time). A non-positive rate returns +Inf.
func (s *Source) ExponentialRate(rate float64) float64 {
	if rate <= 0 {
		return math.Inf(1)
	}
	return s.rng.ExpFloat64() / rate
}

// Normal returns a normally distributed value.
func (s *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.rng.NormFloat64()
}

// LogNormal returns a log-normally distributed value where the underlying
// normal has the given mu and sigma.
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Pareto returns a (bounded-below) Pareto value with scale xm and shape
// alpha. Heavy-tailed object sizes in the web workload use this.
func (s *Source) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		return 0
	}
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Jitter returns v scaled by a uniform factor in [1-frac, 1+frac]. It is
// the standard way the simulator adds measurement-style noise.
func (s *Source) Jitter(v, frac float64) float64 {
	if frac <= 0 {
		return v
	}
	return v * s.Uniform(1-frac, 1+frac)
}

// OnOff models a two-state continuous-time Markov on-off process: holding
// times in each state are exponential. It is used for the random WiFi
// bandwidth modulation of §4.3 (mean 40 s in each state) and for the
// background-traffic interferers of §4.4 (rates λon, λoff).
type OnOff struct {
	src *Source
	// MeanOn and MeanOff are the mean holding times of the two states,
	// in seconds.
	MeanOn, MeanOff float64
	on              bool
}

// NewOnOff builds an on-off process with the given mean holding times that
// starts in the given state.
func NewOnOff(src *Source, meanOn, meanOff float64, startOn bool) *OnOff {
	return &OnOff{src: src, MeanOn: meanOn, MeanOff: meanOff, on: startOn}
}

// NewOnOffRates builds an on-off process from transition rates: lambdaOn is
// the rate of leaving the off state (so mean off-time = 1/lambdaOn) and
// lambdaOff the rate of leaving the on state, matching the λon/λoff
// convention of §4.4.
func NewOnOffRates(src *Source, lambdaOn, lambdaOff float64, startOn bool) *OnOff {
	inv := func(r float64) float64 {
		if r <= 0 {
			return math.Inf(1)
		}
		return 1 / r
	}
	return NewOnOff(src, inv(lambdaOff), inv(lambdaOn), startOn)
}

// On reports whether the process is currently in the on state.
func (p *OnOff) On() bool { return p.on }

// NextToggle samples the holding time remaining in the current state and
// flips the state, returning the sampled holding time in seconds. Callers
// schedule the flip that far in the future.
func (p *OnOff) NextToggle() float64 {
	var hold float64
	if p.on {
		hold = p.src.Exponential(p.MeanOn)
	} else {
		hold = p.src.Exponential(p.MeanOff)
	}
	p.on = !p.on
	return hold
}
