package simrng

// SourceState is one generator's saved position: the lagged-Fibonacci
// cursor pair plus the full 607-word state vector.
type SourceState struct {
	tap, feed int
	vec       [lfLen]int64
}

// ArenaSnapshot is a reusable copy of every live Source in an Arena. The
// embedded rand.Rand wrappers carry no state of their own (the ziggurat
// distributions draw straight from the source), so restoring the vectors
// and cursors rewinds every stream exactly.
type ArenaSnapshot struct {
	next   int
	states []SourceState
}

// Snapshot saves the arena cursor and the state of each handed-out Source.
func (a *Arena) Snapshot(s *ArenaSnapshot) {
	s.next = a.next
	if cap(s.states) < a.next {
		s.states = make([]SourceState, a.next)
	}
	s.states = s.states[:a.next]
	for i := 0; i < a.next; i++ {
		lf := &a.items[i].lf
		s.states[i] = SourceState{tap: lf.tap, feed: lf.feed, vec: lf.vec}
	}
}

// Restore rewinds the arena to the snapshot: the cursor returns, so slots
// handed out after the snapshot are handed out (and re-seeded) again, and
// every Source that existed at snapshot time resumes its stream from the
// saved position.
func (a *Arena) Restore(s *ArenaSnapshot) {
	a.next = s.next
	for i := 0; i < s.next; i++ {
		lf := &a.items[i].lf
		st := &s.states[i]
		lf.tap = st.tap
		lf.feed = st.feed
		lf.vec = st.vec
	}
}

// SetOn forces the process into the given state; checkpoint restore uses
// it to rewind a process whose state was flipped ahead of a scheduled
// toggle (NextToggle flips eagerly and the flip event fires later).
func (p *OnOff) SetOn(on bool) { p.on = on }
