package simrng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical draws", same)
	}
}

func TestSplitDeterministicAndIndependent(t *testing.T) {
	// Splitting the same parent with the same label gives the same stream.
	a := New(7).Split(3)
	b := New(7).Split(3)
	for i := 0; i < 50; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("split streams with same label diverged at %d", i)
		}
	}
	// Different labels give different streams.
	c := New(7).Split(3)
	d := New(7).Split(4)
	same := 0
	for i := 0; i < 100; i++ {
		if c.Float64() == d.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams with different labels matched %d/100 draws", same)
	}
}

func TestUniformRange(t *testing.T) {
	s := New(1)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform(2,5) = %v out of range", v)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(1)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exponential(40)
	}
	mean := sum / n
	if math.Abs(mean-40) > 1 {
		t.Errorf("exponential(40) sample mean = %v", mean)
	}
	if s.Exponential(0) != 0 || s.Exponential(-1) != 0 {
		t.Error("non-positive mean should return 0")
	}
}

func TestExponentialRate(t *testing.T) {
	s := New(2)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.ExponentialRate(0.05) // mean 20
	}
	mean := sum / n
	if math.Abs(mean-20) > 0.5 {
		t.Errorf("exponentialRate(0.05) sample mean = %v, want ~20", mean)
	}
	if !math.IsInf(s.ExponentialRate(0), 1) {
		t.Error("zero rate should return +Inf")
	}
}

func TestBernoulliEdges(t *testing.T) {
	s := New(3)
	if s.Bernoulli(0) {
		t.Error("Bernoulli(0) returned true")
	}
	if !s.Bernoulli(1) {
		t.Error("Bernoulli(1) returned false")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) frequency = %v", p)
	}
}

func TestParetoBounds(t *testing.T) {
	s := New(4)
	for i := 0; i < 1000; i++ {
		v := s.Pareto(10, 1.5)
		if v < 10 {
			t.Fatalf("Pareto(10, 1.5) = %v below scale", v)
		}
	}
	if s.Pareto(0, 1) != 0 || s.Pareto(1, 0) != 0 {
		t.Error("invalid Pareto params should return 0")
	}
}

func TestJitter(t *testing.T) {
	s := New(5)
	for i := 0; i < 1000; i++ {
		v := s.Jitter(100, 0.1)
		if v < 90 || v > 110 {
			t.Fatalf("Jitter(100, 0.1) = %v out of range", v)
		}
	}
	if got := s.Jitter(100, 0); got != 100 {
		t.Errorf("Jitter with zero frac = %v, want 100", got)
	}
}

func TestJitterProperty(t *testing.T) {
	s := New(6)
	f := func(v float64, fracRaw uint8) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		frac := float64(fracRaw%50) / 100 // 0..0.49
		got := s.Jitter(v, frac)
		lo, hi := v*(1-frac), v*(1+frac)
		if lo > hi {
			lo, hi = hi, lo
		}
		return got >= lo-1e-9*math.Abs(v) && got <= hi+1e-9*math.Abs(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOnOffHoldingTimes(t *testing.T) {
	s := New(7)
	p := NewOnOff(s, 40, 40, true)
	if !p.On() {
		t.Fatal("should start on")
	}
	const n = 100000
	sumOn, sumOff := 0.0, 0.0
	cOn, cOff := 0, 0
	for i := 0; i < n; i++ {
		wasOn := p.On()
		hold := p.NextToggle()
		if wasOn {
			sumOn += hold
			cOn++
		} else {
			sumOff += hold
			cOff++
		}
		if p.On() == wasOn {
			t.Fatal("NextToggle did not flip state")
		}
	}
	if math.Abs(sumOn/float64(cOn)-40) > 1 {
		t.Errorf("mean on-time = %v, want ~40", sumOn/float64(cOn))
	}
	if math.Abs(sumOff/float64(cOff)-40) > 1 {
		t.Errorf("mean off-time = %v, want ~40", sumOff/float64(cOff))
	}
}

func TestOnOffRates(t *testing.T) {
	// λon = 0.05 means the off state is left at rate 0.05 → mean off 20 s.
	// λoff = 0.025 means the on state is left at rate 0.025 → mean on 40 s.
	p := NewOnOffRates(New(8), 0.05, 0.025, false)
	if p.MeanOn != 40 {
		t.Errorf("MeanOn = %v, want 40", p.MeanOn)
	}
	if p.MeanOff != 20 {
		t.Errorf("MeanOff = %v, want 20", p.MeanOff)
	}
	p2 := NewOnOffRates(New(8), 0, 0.05, false)
	if !math.IsInf(p2.MeanOff, 1) {
		t.Errorf("zero λon should give infinite mean off time, got %v", p2.MeanOff)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(9)
	const n = 200000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Normal(5, 2)
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	varv := sum2/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Errorf("normal mean = %v, want ~5", mean)
	}
	if math.Abs(varv-4) > 0.2 {
		t.Errorf("normal variance = %v, want ~4", varv)
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(10)
	for i := 0; i < 1000; i++ {
		if v := s.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal returned %v", v)
		}
	}
}
