package simrng

// LaneSources is a bank of lane-striped lagged-Fibonacci generator
// states for the lockstep executor: n independent streams held side by
// side in one contiguous slice, advanced without the *Source wrapper.
// Stream i is bit-identical to a Source seeded with the same seed — the
// state type and every draw below are the exact code paths Source uses —
// so a lane batch can interleave draws across lanes in any order while
// each lane observes precisely the sequence its scalar run would.
//
// The bank carries only the uniform fast paths (Uint64/Float64/Uniform/
// Jitter/Bernoulli) plus SplitSeed; the ziggurat distributions need an
// embedded rand.Rand and stay on Source. That is exactly the lockstep
// envelope: eligible scenarios draw nothing else on the hot path.
type LaneSources struct {
	states []lfSource
}

// NewLaneSources returns a bank of n unseeded lane states.
func NewLaneSources(n int) *LaneSources {
	b := &LaneSources{}
	b.Resize(n)
	return b
}

// Resize grows or shrinks the bank to n states, reusing existing
// capacity. States keep whatever stream position they had; callers seed
// each lane before drawing.
func (b *LaneSources) Resize(n int) {
	if cap(b.states) < n {
		b.states = make([]lfSource, n)
		return
	}
	b.states = b.states[:n]
}

// Len returns the number of lane states.
func (b *LaneSources) Len() int { return len(b.states) }

// Seed positions lane i at the start of the stream for seed, through the
// same memoized state-vector cache Source seeding uses.
func (b *LaneSources) Seed(i int, seed int64) { b.states[i].Seed(seed) }

// Uint64 advances lane i one step.
func (b *LaneSources) Uint64(i int) uint64 { return b.states[i].Uint64() }

// Float64 returns a uniform value in [0,1) from lane i, with Source's
// exact resample-on-1.0 loop.
func (b *LaneSources) Float64(i int) float64 {
	s := &b.states[i]
	for {
		f := float64(s.Int63()) / (1 << 63)
		if f != 1 {
			return f
		}
	}
}

// Uniform returns a uniform value in [lo,hi) from lane i.
func (b *LaneSources) Uniform(i int, lo, hi float64) float64 {
	return lo + (hi-lo)*b.Float64(i)
}

// Jitter returns v scaled by a uniform factor in [1-frac, 1+frac] drawn
// from lane i; frac <= 0 returns v without drawing, like Source.Jitter.
func (b *LaneSources) Jitter(i int, v, frac float64) float64 {
	if frac <= 0 {
		return v
	}
	return v * b.Uniform(i, 1-frac, 1+frac)
}

// Bernoulli returns true with probability p, drawing from lane i only
// when 0 < p < 1, like Source.Bernoulli.
func (b *LaneSources) Bernoulli(i int, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return b.Float64(i) < p
}

// SplitSeed advances lane i exactly as Source.Split does and returns the
// derived child seed. The caller decides what to seed with it — another
// lane stripe, or a real *Source for a sub-process that needs one.
func (b *LaneSources) SplitSeed(i int, label uint64) int64 {
	base := b.states[i].Uint64()
	return int64(mix64(base ^ mix64(label)))
}
