package simrng

import "testing"

// TestLaneSourcesStreamEquality proves every lane of a bank reproduces
// the exact draw sequence of an independent Source with the same seed,
// including under interleaved cross-lane draws and Split derivation.
func TestLaneSourcesStreamEquality(t *testing.T) {
	const lanes = 7
	b := NewLaneSources(lanes)
	refs := make([]*Source, lanes)
	for i := 0; i < lanes; i++ {
		seed := int64(1000*i + 17)
		b.Seed(i, seed)
		refs[i] = New(seed)
	}
	// Round-robin across lanes so any cross-lane state bleed would show.
	for step := 0; step < 2000; step++ {
		for i := 0; i < lanes; i++ {
			ref := refs[i]
			switch step % 5 {
			case 0:
				if got, want := b.Uint64(i), ref.lf.Uint64(); got != want {
					t.Fatalf("lane %d step %d: Uint64 = %d, want %d", i, step, got, want)
				}
			case 1:
				if got, want := b.Float64(i), ref.Float64(); got != want {
					t.Fatalf("lane %d step %d: Float64 = %v, want %v", i, step, got, want)
				}
			case 2:
				if got, want := b.Uniform(i, -3, 9), ref.Uniform(-3, 9); got != want {
					t.Fatalf("lane %d step %d: Uniform = %v, want %v", i, step, got, want)
				}
			case 3:
				if got, want := b.Jitter(i, 0.035, 0.08), ref.Jitter(0.035, 0.08); got != want {
					t.Fatalf("lane %d step %d: Jitter = %v, want %v", i, step, got, want)
				}
			case 4:
				label := uint64(step) * 0x9e37
				child := ref.Split(label)
				seed := b.SplitSeed(i, label)
				if got, want := New(seed).Float64(), child.Float64(); got != want {
					t.Fatalf("lane %d step %d: SplitSeed child = %v, want %v", i, step, got, want)
				}
			}
		}
	}
}

// TestLaneSourcesNoDrawCases checks the draw-free fast paths match
// Source: Jitter with frac<=0 and Bernoulli at the clamps must not
// advance the stream.
func TestLaneSourcesNoDrawCases(t *testing.T) {
	b := NewLaneSources(1)
	b.Seed(0, 42)
	ref := New(42)
	if got := b.Jitter(0, 1.5, 0); got != 1.5 {
		t.Fatalf("Jitter(v, 0) = %v, want 1.5", got)
	}
	if b.Bernoulli(0, 0) {
		t.Fatal("Bernoulli(0) = true")
	}
	if !b.Bernoulli(0, 1) {
		t.Fatal("Bernoulli(1) = false")
	}
	// Stream untouched: the next draw matches the reference's first.
	if got, want := b.Float64(0), ref.Float64(); got != want {
		t.Fatalf("stream advanced by no-draw cases: %v != %v", got, want)
	}
}

// TestLaneSourcesResize checks shrink-and-regrow within capacity reuses
// the backing array and keeps surviving lanes independent.
func TestLaneSourcesResize(t *testing.T) {
	b := NewLaneSources(4)
	b.Seed(0, 1)
	b.Seed(1, 2)
	b.Uint64(0)
	b.Resize(2)
	b.Resize(4) // regrow within capacity: same backing array
	b.Seed(2, 3)
	ref := New(3)
	if got, want := b.Float64(2), ref.Float64(); got != want {
		t.Fatalf("lane 2 after resize: %v != %v", got, want)
	}
	// Lane 1 still mid-stream where it was.
	ref1 := New(2)
	if got, want := b.Uint64(1), ref1.lf.Uint64(); got != want {
		t.Fatalf("lane 1 after resize: %d != %d", got, want)
	}
}
