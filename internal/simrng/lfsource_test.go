package simrng

import (
	"math/rand"
	"testing"
)

// TestLFSourceStreamEquality proves the native generator reproduces
// math/rand's raw stream exhaustively: the first 10k draws across 1k
// seeds (100 seeds × 1k draws under -short), spanning negative, zero,
// and beyond-modulus seeds. Any drift here would silently corrupt every
// golden experiment output, so the bar is exact equality, not sampling.
func TestLFSourceStreamEquality(t *testing.T) {
	seeds, draws := 1000, 10000
	if testing.Short() {
		seeds, draws = 100, 1000
	}
	check := func(seed int64) {
		t.Helper()
		ref := rand.NewSource(seed).(rand.Source64)
		var lf lfSource
		lf.Seed(seed)
		for i := 0; i < draws; i++ {
			if got, want := lf.Uint64(), ref.Uint64(); got != want {
				t.Fatalf("seed %d draw %d: got %#x want %#x", seed, i, got, want)
			}
		}
	}
	for i := 0; i < seeds; i++ {
		check(int64(i))
	}
	// Edge seeds: negative, modulus multiples (normalize to the same
	// stream as seed 0), extremes.
	for _, seed := range []int64{-1, -1 << 40, lfM, 2 * lfM, -lfM, 1<<63 - 1, -1 << 63} {
		check(seed)
	}
}

// TestLFSourceInt63Equality covers the Int63 masking path against the
// library across a few seeds.
func TestLFSourceInt63Equality(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		ref := rand.NewSource(seed)
		var lf lfSource
		lf.Seed(seed)
		for i := 0; i < 2000; i++ {
			if got, want := lf.Int63(), ref.Int63(); got != want {
				t.Fatalf("seed %d draw %d: got %d want %d", seed, i, got, want)
			}
		}
	}
}

// TestSourceDistributionEquality proves every Source helper consumes the
// stream exactly as the previous math/rand-backed implementation did:
// uniform draws via the native fast paths, ziggurat draws via the
// embedded rand.Rand, interleaved so any draw-count mismatch desyncs the
// comparison immediately.
func TestSourceDistributionEquality(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		s := New(seed)
		ref := rand.New(rand.NewSource(seed))
		for i := 0; i < 500; i++ {
			if got, want := s.Float64(), ref.Float64(); got != want {
				t.Fatalf("seed %d iter %d Float64: %v != %v", seed, i, got, want)
			}
			if got, want := s.Intn(97), ref.Intn(97); got != want {
				t.Fatalf("seed %d iter %d Intn(97): %v != %v", seed, i, got, want)
			}
			if got, want := s.Intn(64), ref.Intn(64); got != want {
				t.Fatalf("seed %d iter %d Intn(64): %v != %v", seed, i, got, want)
			}
			if got, want := s.Intn(1<<40), ref.Int63n(1<<40); got != int(want) {
				t.Fatalf("seed %d iter %d Intn(1<<40): %v != %v", seed, i, got, want)
			}
			if got, want := s.Exponential(2), ref.ExpFloat64()*2; got != want {
				t.Fatalf("seed %d iter %d Exponential: %v != %v", seed, i, got, want)
			}
			if got, want := s.Normal(1, 3), 1+3*ref.NormFloat64(); got != want {
				t.Fatalf("seed %d iter %d Normal: %v != %v", seed, i, got, want)
			}
			if got, want := s.Bernoulli(0.3), ref.Float64() < 0.3; got != want {
				t.Fatalf("seed %d iter %d Bernoulli: %v != %v", seed, i, got, want)
			}
		}
	}
}

// TestSplitEquality pins Split to its original derivation: one Uint64
// off the parent stream mixed with the label.
func TestSplitEquality(t *testing.T) {
	s := New(42)
	ref := rand.New(rand.NewSource(42))
	for i := 0; i < 20; i++ {
		child := s.Split(uint64(i))
		refChild := rand.New(rand.NewSource(int64(mix64(ref.Uint64() ^ mix64(uint64(i))))))
		for j := 0; j < 100; j++ {
			if got, want := child.Float64(), refChild.Float64(); got != want {
				t.Fatalf("split %d draw %d: %v != %v", i, j, got, want)
			}
		}
	}
}

// TestSeedCacheEviction fills one shard past capacity and checks the
// cleared shard still serves correct vectors afterwards.
func TestSeedCacheEviction(t *testing.T) {
	// Hammer enough distinct seeds to overflow every shard several times.
	for i := 0; i < seedShards*seedShardCap*4; i++ {
		var lf lfSource
		lf.Seed(int64(i))
	}
	// Post-eviction correctness.
	ref := rand.NewSource(12345).(rand.Source64)
	var lf lfSource
	lf.Seed(12345)
	for i := 0; i < 100; i++ {
		if got, want := lf.Uint64(), ref.Uint64(); got != want {
			t.Fatalf("post-eviction draw %d: %#x != %#x", i, got, want)
		}
	}
}

func BenchmarkSeedCached(b *testing.B) {
	var lf lfSource
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lf.Seed(12345)
	}
}

func BenchmarkSeedStdlib(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rand.NewSource(12345)
	}
}
