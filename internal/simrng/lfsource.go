// Native reimplementation of math/rand's additive lagged-Fibonacci
// generator, plus a bounded cache of seed→initial-state vectors.
//
// Why: a CPU profile of the hot benchmarks showed ~9% of run time inside
// math/rand seeding — every Split re-derives a 607-word state vector with
// three 20-iteration LCG draws per word. The simulator re-seeds
// constantly (one child stream per subflow per run, hundreds of runs per
// experiment), and because experiment repetitions reuse the same run
// seeds, the same vectors are derived over and over. Reimplementing the
// generator makes the state vector a plain value we can memoize and copy.
//
// The stream must be bit-identical to math/rand's: every experiment
// output in the repo is golden-tested against byte-exact expectations.
// The generator below follows the same recurrence, seeding LCG, and
// cooking constants as math/rand's rngSource; lfsource_test.go proves
// equality exhaustively (first 10k draws across 1k seeds). The cooking
// table itself is not copied from the standard library — it is recovered
// algebraically at init from the output stream of rand.NewSource(1) (see
// initCooked), which both avoids duplicating a 607-entry literal and
// pins us to whatever table the linked math/rand actually uses.
package simrng

import (
	"math/rand"
	"sync"
)

const (
	lfLen  = 607           // degree of the recurrence x_n = x_{n-273} + x_{n-607}
	lfTap  = 273           // distance to the second term
	lfMax  = 1 << 63       // Int63 modulus
	lfMask = lfMax - 1     // Int63 mask
	lfA    = 48271         // seeding LCG multiplier (Park–Miller)
	lfM    = (1 << 31) - 1 // seeding LCG modulus (2^31-1, prime)
	lfQ    = 44488         // lfM / lfA
	lfR    = 3399          // lfM % lfA
)

// lfCooked is the additive scrambling table XORed into the seeded state,
// recovered from math/rand at package init.
var lfCooked [lfLen]uint64

// lfSource is the generator state. It implements rand.Source64, so a
// rand.Rand wrapped around it reproduces every math/rand distribution
// (including the ziggurat ExpFloat64/NormFloat64) bit-for-bit.
type lfSource struct {
	tap  int
	feed int
	vec  [lfLen]int64
}

// seedrand advances the Park–Miller LCG without overflowing int32
// (Schrage's method), exactly as math/rand's seeding does.
func seedrand(x int32) int32 {
	hi := x / lfQ
	lo := x % lfQ
	x = lfA*lo - lfR*hi
	if x < 0 {
		x += lfM
	}
	return x
}

// seedVec derives the initial state vector for seed, without consulting
// the cache.
func seedVec(seed int64, vec *[lfLen]int64) {
	seed = seed % lfM
	if seed < 0 {
		seed += lfM
	}
	if seed == 0 {
		seed = 89482311
	}
	x := int32(seed)
	for i := -20; i < lfLen; i++ {
		x = seedrand(x)
		if i >= 0 {
			var u uint64
			u = uint64(x) << 40
			x = seedrand(x)
			u ^= uint64(x) << 20
			x = seedrand(x)
			u ^= uint64(x)
			u ^= lfCooked[i]
			vec[i] = int64(u)
		}
	}
}

// Seed positions the generator at the start of the stream for seed,
// copying the state vector from the cache when it has been derived
// before. Repetition loops reuse run seeds heavily — each protocol
// variant splits the same child seeds — so steady state is a hit plus a
// 4.9 kB copy instead of ~36k LCG steps.
func (s *lfSource) Seed(seed int64) {
	s.tap = 0
	s.feed = lfLen - lfTap
	seedStates.load(seed, &s.vec)
}

// Uint64 advances the recurrence one step.
func (s *lfSource) Uint64() uint64 {
	s.tap--
	if s.tap < 0 {
		s.tap += lfLen
	}
	s.feed--
	if s.feed < 0 {
		s.feed += lfLen
	}
	x := s.vec[s.feed] + s.vec[s.tap]
	s.vec[s.feed] = x
	return uint64(x)
}

// Int63 returns a non-negative 63-bit value from the stream.
func (s *lfSource) Int63() int64 {
	return int64(s.Uint64() & lfMask)
}

// int31 mirrors rand.Rand.Int31: the top 32 bits of Int63.
func (s *lfSource) int31() int32 {
	return int32(s.Int63() >> 32)
}

// seedStates caches derived state vectors, sharded 16 ways to keep
// parallel runners off one lock. Each shard holds at most shardCap
// vectors (16 shards × 64 × 4.9 kB ≈ 5 MB ceiling) and is cleared
// wholesale when full — seeds recur within and across experiments, so
// the working set re-fills almost immediately and eviction is rare.
var seedStates seedCache

const (
	seedShards   = 16
	seedShardCap = 64
)

type seedCache struct {
	shards [seedShards]seedShard
}

type seedShard struct {
	mu sync.Mutex
	m  map[int64]*[lfLen]int64
}

func (c *seedCache) load(seed int64, dst *[lfLen]int64) {
	sh := &c.shards[mix64(uint64(seed))&(seedShards-1)]
	sh.mu.Lock()
	if v, ok := sh.m[seed]; ok {
		*dst = *v
		sh.mu.Unlock()
		return
	}
	sh.mu.Unlock()
	// Derive outside the lock: ~36k LCG steps is long enough to stall
	// sibling runners, and a racing duplicate derivation is harmless
	// (both compute the same vector).
	seedVec(seed, dst)
	v := new([lfLen]int64)
	*v = *dst
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[int64]*[lfLen]int64, seedShardCap)
	} else if len(sh.m) >= seedShardCap {
		clear(sh.m)
	}
	sh.m[seed] = v
	sh.mu.Unlock()
}

// initCooked recovers math/rand's scrambling table from the output
// stream of rand.NewSource(1).
//
// After Seed(1) the library's state vector is v[i] = int64(u_i ^ C[i]),
// where u_i is the three-word seeding value (reproducible with seedrand)
// and C the table we want. The first 607 outputs x_j of the generator
// visit feed slots 333,332,…,0,606,…,334 and tap slots 606,…,273,272,…,0,
// each exactly once, with every x_j the sum of one original v slot and
// either another original slot or an earlier output:
//
//	j ∈ [0,272]:    x_j = v[333-j] + v[606-j]   (both original)
//	j ∈ [273,333]:  x_j = v[333-j] + x_{j-273}  → v[0..60]
//	j ∈ [334,606]:  x_j = v[940-j] + x_{j-273}  → v[334..606]
//
// The second and third lines yield those slots directly; substituting
// the third line's slots back into the first yields v[61..333]. XORing
// out u_i then leaves C[i]. All arithmetic is int64 two's-complement
// wraparound, matching the generator's own additions.
func initCooked() {
	src := rand.NewSource(1).(rand.Source64)
	var x [lfLen]int64
	for j := range x {
		x[j] = int64(src.Uint64())
	}
	var v [lfLen]int64
	for j := 273; j <= 333; j++ {
		v[333-j] = x[j] - x[j-273]
	}
	for j := 334; j <= 606; j++ {
		v[940-j] = x[j] - x[j-273]
	}
	for j := 0; j <= 272; j++ {
		v[333-j] = x[j] - v[606-j]
	}
	// Replay the seeding LCG for seed 1 to strip u_i off each slot.
	xs := int32(1)
	for i := -20; i < lfLen; i++ {
		xs = seedrand(xs)
		if i >= 0 {
			var u uint64
			u = uint64(xs) << 40
			xs = seedrand(xs)
			u ^= uint64(xs) << 20
			xs = seedrand(xs)
			u ^= uint64(xs)
			lfCooked[i] = uint64(v[i]) ^ u
		}
	}
}

func init() {
	initCooked()
}
