package simrng

import "math/rand"

// Arena recycles Source allocations across pooled runs. A Source carries a
// ~4.9 kB state vector, and a run splits off one child stream per subflow,
// link process, and workload — the dominant per-run allocation once engines
// and subflows are pooled (95% of allocated bytes in the mobility
// benchmark's heap profile). An arena-rooted Source hands the arena down to
// every child it splits, so a pooled run re-seeds recycled generators
// instead of allocating fresh ones.
//
// Reusing a slot only re-seeds the lagged-Fibonacci state; the embedded
// rand.Rand already wraps the slot's own generator and is stateless beyond
// it, so a recycled Source's streams are bit-identical to a fresh one's.
//
// An Arena is single-run-at-a-time: Reset hands out the same Sources
// again, so it must only be called once nothing from the previous run will
// draw again (the RunState pool guarantees this).
type Arena struct {
	items []*Source
	next  int
}

// Reset makes all recycled Sources available again.
func (a *Arena) Reset() { a.next = 0 }

// New returns a Source seeded with seed, drawn from the arena and rooted
// in it (children split from it come from the arena too).
func (a *Arena) New(seed int64) *Source {
	var s *Source
	if a.next < len(a.items) {
		s = a.items[a.next]
	} else {
		s = &Source{}
		s.rng = rand.New(&s.lf)
		a.items = append(a.items, s)
	}
	a.next++
	s.arena = a
	s.lf.Seed(seed)
	return s
}
