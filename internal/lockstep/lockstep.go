// Package lockstep executes k replications of one scenario — same
// environment, different seeds — as lanes of a single structure-of-arrays
// pass, amortising the event-kernel control flow that a scalar
// scenario.Run pays per replication.
//
// A fluid-round run inside the lockstep envelope (constant links, file
// workloads, the uncontrolled protocols) has a statically tiny event
// vocabulary: one power-monitor tick, one pending handshake or round-end
// timer per subflow, and the min-RTT scheduler's deferred kick wakeups.
// Each lane therefore carries its own miniature dispatcher — a (time,
// sequence) slot per event kind, with the sequence counter advanced in
// exactly the order the scalar engine's After calls would draw it — and
// the executor advances all live lanes in waves over lane-striped state:
// a simrng.LaneSources bank for the RNG streams and a tcp.LaneVec for the
// congestion variables. Every arithmetic expression, RNG draw, and
// callback ordering is the scalar code path's, so per-seed Results are
// bit-identical to sequential scenario.Run calls
// (FuzzLockstepEquivalence).
//
// Lane-divergence handling is peel-by-replay: a lane whose setup leaves
// the envelope (a non-constant link process, a zero-rate path, a builder
// that schedules events) is handed back to the scalar path — the peeled
// seed simply runs through scenario.Run while the remaining lanes
// continue batched. Inside the envelope no mid-run peel is possible: the
// capacity processes are constant, subflows never suspend, and the
// receive window is unlimited, so the scalar run could execute no event
// this dispatcher does not model.
package lockstep

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/energy"
	"repro/internal/link"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/simrng"
	"repro/internal/tcp"
	"repro/internal/units"
	"repro/internal/workload"
)

// Lane/peel counters, exposed through Stats for emptcpsim -v and the
// campaign progress report (which assert the lockstep path actually
// executed, mirroring scenario.ForkStats).
var (
	nLaneRuns atomic.Int64
	nPeels    atomic.Int64
)

// Stats returns how many replications executed as lockstep lanes and how
// many were peeled off to the scalar path.
func Stats() (lanes, peels int64) {
	return nLaneRuns.Load(), nPeels.Load()
}

// meterInterval mirrors scenario's power-monitor sampling period.
const meterInterval = 0.1

// defaultHorizon mirrors scenario's bound on never-completing workloads.
const defaultHorizon = 14400

// bulkSize mirrors workload.Bulk's effectively-infinite transfer.
const bulkSize units.ByteSize = 1 << 40

// Eligible reports whether (sc, proto, opt) is inside the lockstep
// envelope: an uncontrolled protocol (no eMPTCP/MDP/association
// machinery), a single-connection file workload with a positive size, no
// in-line observers, and a library scenario (a cache key exists, so the
// link builders are the library's and per-seed results can be memoized).
// Whether each individual lane stays batched is decided at setup by
// probing the built link processes; ineligible lanes peel to scenario.Run.
func Eligible(sc scenario.Scenario, proto scenario.Protocol, opt scenario.Opts) bool {
	switch proto {
	case scenario.TCPWiFi, scenario.TCPLTE, scenario.MPTCP:
	default:
		return false
	}
	if opt.Trace || opt.Recorder != nil {
		return false
	}
	if _, _, ok := workShape(sc.Work); !ok {
		return false
	}
	if _, ok := scenario.CacheKey(sc, proto, opt); !ok {
		return false
	}
	return true
}

// workShape extracts the single transfer an eligible workload launches.
func workShape(w workload.Workload) (size units.ByteSize, uplink bool, ok bool) {
	switch w := w.(type) {
	case workload.FileDownload:
		return w.Size, false, w.Size > 0
	case workload.FileUpload:
		return w.Size, true, w.Size > 0
	case workload.Bulk:
		return bulkSize, false, true
	}
	return 0, false, false
}

// Run executes one replication batch — len(seeds) runs of (sc, proto)
// differing only in seed — and returns one Result per seed, each
// bit-identical to scenario.Run(sc, proto, opt-with-that-seed). The
// caller must have checked Eligible. With opt.Cache set, seeds are
// memoized individually under their scalar cache keys: a fully-cached
// batch never simulates, and a partially-cached one simulates the whole
// batch once (the fork-tree precedent — recomputing k lanes costs less
// than fragmenting the stripe).
func Run(sc scenario.Scenario, proto scenario.Protocol, seeds []int64, opt scenario.Opts) []scenario.Result {
	return RunAppend(nil, sc, proto, seeds, opt)
}

// RunAppend is Run appending into dst (reused by the alloc-guard tests
// and the campaign shard loop).
func RunAppend(dst []scenario.Result, sc scenario.Scenario, proto scenario.Protocol, seeds []int64, opt scenario.Opts) []scenario.Result {
	base := len(dst)
	if cap(dst) < base+len(seeds) {
		dst = append(dst, make([]scenario.Result, len(seeds))...)
	} else {
		dst = dst[:base+len(seeds)]
	}
	out := dst[base:]
	if opt.Cache == nil {
		runBatch(out, sc, proto, seeds, opt)
		return dst
	}
	// Per-seed memoization over one lazily-computed batch: the batch
	// simulates inside the first missing seed's Do, so a fully-cached
	// batch never fires it (the RunSweep composition).
	var (
		once  sync.Once
		batch []scenario.Result
	)
	compute := func() {
		batch = make([]scenario.Result, len(seeds))
		runBatch(batch, sc, proto, seeds, opt)
	}
	for i, seed := range seeds {
		o := opt
		o.Seed = seed
		k, ok := scenario.CacheKey(sc, proto, o)
		if !ok {
			out[i] = scenario.Run(sc, proto, o)
			continue
		}
		idx := i
		out[i] = opt.Cache.Do(k, func() scenario.Result {
			once.Do(compute)
			return batch[idx]
		})
	}
	return dst
}

// Lane event kinds: what the per-lane slot dispatcher can fire.
const (
	evNone  = iota
	evEst   // handshake completion (scalar established)
	evRound // round end (scalar roundState.end / finishRound)
)

// kickEv is one deferred scheduler wakeup (the After the min-RTT rule
// arms in connSource.Request).
type kickEv struct {
	at  float64
	seq uint64
	sub int
}

// maxKicks bounds the outstanding deferred wakeups per lane. At most one
// can be pending per subflow — a deferral leaves its subflow idle, and
// only the kick firing (or a one-shot establish/enqueue) can issue that
// subflow's next Request — so two subflows need two slots; the rest is
// margin for the impossible.
const maxKicks = 4

// lane is the cold per-replication state: the miniature dispatcher,
// connection counters, and metering accumulators. Hot congestion state
// lives in the batch's tcp.LaneVec stripes instead.
type lane struct {
	seed   int64
	peeled bool
	done   bool

	now float64
	seq uint64

	tickAt  float64
	tickSeq uint64

	subEv     [2]uint8
	subAt     [2]float64
	subSeq    [2]uint64
	roundDur  [2]float64
	roundLost [2]bool

	kicks  [maxKicks]kickEv
	nKicks int

	rate     [2]units.BitRate // capacity share per subflow (constant, 1 flow/path)
	wifiRate units.BitRate    // the WiFi process rate, metered even when unused

	queued    units.ByteSize
	taken     units.ByteSize
	delivered units.ByteSize
	complete  float64
	stopped   bool

	deliveredIf [energy.NumInterfaces]units.ByteSize
	meterLast   [energy.NumInterfaces]units.ByteSize
	uplinkedIf  [energy.NumInterfaces]units.ByteSize
	meterLastUp [energy.NumInterfaces]units.ByteSize
	lteTouched  bool

	acct *energy.Accountant
}

// batch is the pooled executor state for one Run call.
type batch struct {
	sc    scenario.Scenario
	proto scenario.Protocol

	k       int
	nSub    int
	coupled bool
	uplink  bool
	size    units.ByteSize
	horizon float64
	cfg     tcp.Config
	iface   [2]energy.Interface
	baseRTT [2]float64
	weakNom units.BitRate

	rng   *simrng.LaneSources
	vec   tcp.LaneVec
	lanes []lane

	probeEng   *sim.Engine
	probeArena simrng.Arena
}

var batchPool = &sync.Pool{New: func() any { return new(batch) }}

// Lane-stripe layout in the RNG bank: per lane, the root stream (the
// run's Split parent), the connection stream (subflow-seed derivation),
// and one stream per subflow (handshake and per-round jitter draws).
func (b *batch) rootIdx(lane int) int     { return lane }
func (b *batch) connIdx(lane int) int     { return b.k + lane }
func (b *batch) subIdx(sub, lane int) int { return (2+sub)*b.k + lane }
func (b *batch) vecIdx(sub, lane int) int { return sub*b.k + lane }

// runBatch simulates all seeds, writing one Result per seed into out.
func runBatch(out []scenario.Result, sc scenario.Scenario, proto scenario.Protocol, seeds []int64, opt scenario.Opts) {
	b := batchPool.Get().(*batch)
	defer batchPool.Put(b)
	b.prepare(sc, proto, len(seeds))

	for i, seed := range seeds {
		l := &b.lanes[i]
		if !b.setupLane(l, i, seed) {
			l.peeled = true
			l.done = true
		}
	}
	b.drive()

	for i := range b.lanes {
		l := &b.lanes[i]
		if l.peeled {
			nPeels.Add(1)
			out[i] = scenario.Run(sc, proto, scenario.Opts{Seed: l.seed})
		} else {
			nLaneRuns.Add(1)
			out[i] = b.collect(l)
		}
	}
}

// drive runs the lockstep wave loop to quiescence: one event per live
// lane per pass, touching the striped state in lane order.
func (b *batch) drive() {
	live := 0
	for i := range b.lanes {
		if !b.lanes[i].done {
			live++
		}
	}
	for live > 0 {
		for i := range b.lanes {
			l := &b.lanes[i]
			if !l.done {
				b.stepLane(l, i)
				if l.done {
					live--
				}
			}
		}
	}
}

// prepare shapes the pooled state for one (scenario, protocol, k) batch.
func (b *batch) prepare(sc scenario.Scenario, proto scenario.Protocol, k int) {
	size, uplink, ok := workShape(sc.Work)
	if !ok {
		panic("lockstep: ineligible workload (call Eligible first)")
	}
	b.sc = sc
	b.proto = proto
	b.k = k
	b.size = size
	b.uplink = uplink
	b.cfg = tcp.DefaultConfig()
	b.coupled = proto == scenario.MPTCP
	switch proto {
	case scenario.TCPWiFi:
		b.nSub = 1
		b.iface[0] = energy.WiFi
		b.baseRTT[0] = sc.WiFiRTT
	case scenario.TCPLTE:
		b.nSub = 1
		b.iface[0] = energy.LTE
		b.baseRTT[0] = sc.LTERTT
	case scenario.MPTCP:
		b.nSub = 2
		b.iface[0] = energy.WiFi
		b.baseRTT[0] = sc.WiFiRTT
		b.iface[1] = energy.LTE
		b.baseRTT[1] = sc.LTERTT
	default:
		panic("lockstep: ineligible protocol (call Eligible first)")
	}
	b.horizon = sc.Horizon
	if b.horizon <= 0 {
		b.horizon = defaultHorizon
	}
	b.weakNom = sc.Device.Radios[energy.WiFi].WeakSignalNominal

	if b.rng == nil {
		b.rng = simrng.NewLaneSources(4 * k)
	} else {
		b.rng.Resize(4 * k)
	}
	b.vec.Resize(b.nSub, k)
	if cap(b.lanes) < k {
		b.lanes = make([]lane, k)
	} else {
		b.lanes = b.lanes[:k]
	}
	if b.probeEng == nil {
		b.probeEng = sim.New()
	}
	for i := range b.lanes {
		acct := b.lanes[i].acct
		b.lanes[i] = lane{acct: acct}
	}
}

// setupLane replicates scenario launch for one lane at t=0: accountant
// session state, link construction (probed for envelope membership),
// the power-monitor ticker arm, and the protocol's connection wiring —
// consuming the root, connection, and subflow RNG streams and the lane
// sequence counter in exactly the scalar order. It reports false when
// the lane must peel.
func (b *batch) setupLane(l *lane, lane int, seed int64) bool {
	l.seed = seed
	l.complete = math.NaN()
	b.rng.Seed(b.rootIdx(lane), seed)
	if !b.probeLane(l, lane) {
		return false
	}
	b.armLane(l, lane)
	return true
}

// probeLane builds the lane's link processes with real child sources
// derived exactly as launch's Splits would, and decides envelope
// membership: both processes constant, nothing scheduled on the engine,
// and every used path able to carry data (the dead-path timeout round is
// scalar-only). On success the lane's capacity shares are recorded.
func (b *batch) probeLane(l *lane, lane int) bool {
	root := b.rootIdx(lane)
	wifiSeed := b.rng.SplitSeed(root, 0xaa)
	lteSeed := b.rng.SplitSeed(root, 0xbb)
	b.probeEng.Reset()
	b.probeArena.Reset()
	wifiProc := b.sc.WiFi(b.probeEng, b.probeArena.New(wifiSeed))
	lteProc := b.sc.LTE(b.probeEng, b.probeArena.New(lteSeed))
	cw, okW := wifiProc.(*link.Constant)
	cl, okL := lteProc.(*link.Constant)
	if !okW || !okL || b.probeEng.Pending() != 0 {
		return false
	}
	l.wifiRate = cw.Rate()
	lteRate := cl.Rate()
	switch b.proto {
	case scenario.TCPWiFi:
		l.rate[0] = l.wifiRate
	case scenario.TCPLTE:
		l.rate[0] = lteRate
	default:
		l.rate[0] = l.wifiRate
		l.rate[1] = lteRate
	}
	for s := 0; s < b.nSub; s++ {
		if l.rate[s] <= 0 {
			return false
		}
	}
	return true
}

// armLane replicates the rest of scenario launch for a probed lane at
// t=0: accountant session state, the power-monitor ticker arm, and the
// protocol's connection wiring — consuming the root, connection, and
// subflow RNG streams and the lane sequence counter in the scalar order.
func (b *batch) armLane(l *lane, lane int) {
	root := b.rootIdx(lane)
	if acct := l.acct; acct == nil {
		l.acct = energy.NewAccountant(b.sc.Device)
	} else {
		acct.Reset(b.sc.Device)
	}
	l.acct.SetExtraBase(b.sc.AppPower)
	l.acct.SetSessionActive(true)

	// eng.Tick(meterInterval, flushMeter): first arm at t=0.
	l.tickAt = meterInterval
	l.tickSeq = l.seq
	l.seq++

	// Work.Launch(eng, src.Split(0xcc), ...): the split draw happens at
	// argument evaluation; the file workloads never draw from the child.
	_ = b.rng.SplitSeed(root, 0xcc)

	// openConn: conn := mptcp.New(eng, src.Split(0xd0), opts).
	conn := b.connIdx(lane)
	b.rng.Seed(conn, b.rng.SplitSeed(root, 0xd0))

	// Protocol wiring. radioControl.Activate's flushMeter is a no-op at
	// t=0 (dt == 0); the radio Activate calls are replicated verbatim so
	// promotion delays and dwell accounting match.
	switch b.proto {
	case scenario.TCPWiFi:
		l.acct.Radio(energy.WiFi).Activate(0)
		b.connectSub(l, lane, 0, 0x5f, 0)
	case scenario.TCPLTE:
		l.lteTouched = true
		readyAt := l.acct.Radio(energy.LTE).Activate(0)
		b.connectSub(l, lane, 0, 0x5f, math.Max(0, readyAt))
	default: // MPTCP
		l.acct.Radio(energy.WiFi).Activate(0)
		b.connectSub(l, lane, 0, 0x5f, 0)
		l.lteTouched = true
		readyAt := l.acct.Radio(energy.LTE).Activate(0)
		b.connectSub(l, lane, 1, 0x60, math.Max(0, readyAt))
	}

	// conn.Download(size, done) → Enqueue: queue the one request.
	// kickAll is a no-op — every subflow is still Connecting.
	l.queued = b.size
}

// connectSub replicates AddSubflow + Connect for subflow sub: derive the
// subflow stream from the connection stream, draw the handshake RTT, and
// arm the establishment timer.
func (b *batch) connectSub(l *lane, lane, sub int, label uint64, extraDelay float64) {
	si := b.subIdx(sub, lane)
	b.rng.Seed(si, b.rng.SplitSeed(b.connIdx(lane), label))
	i := b.vecIdx(sub, lane)
	b.vec.State[i] = tcp.Connecting
	hs := b.rng.Jitter(si, b.baseRTT[sub], b.cfg.RTTJitter)
	b.vec.HsRTT[i] = hs
	l.subEv[sub] = evEst
	l.subAt[sub] = extraDelay + hs
	l.subSeq[sub] = l.seq
	l.seq++
}

// stepLane dispatches the lane's single next event under the (time,
// sequence) order, or retires the lane when the next event is past the
// horizon or the workload completed.
func (b *batch) stepLane(l *lane, lane int) {
	const (
		dTick = -1
		dKick = -2
	)
	bestAt, bestSeq := l.tickAt, l.tickSeq
	which := dTick
	kickIdx := -1
	for s := 0; s < b.nSub; s++ {
		if l.subEv[s] == evNone {
			continue
		}
		if l.subAt[s] < bestAt || (l.subAt[s] == bestAt && l.subSeq[s] < bestSeq) {
			bestAt, bestSeq = l.subAt[s], l.subSeq[s]
			which = s
		}
	}
	for ki := 0; ki < l.nKicks; ki++ {
		kv := &l.kicks[ki]
		if kv.at < bestAt || (kv.at == bestAt && kv.seq < bestSeq) {
			bestAt, bestSeq = kv.at, kv.seq
			which = dKick
			kickIdx = ki
		}
	}
	if bestAt > b.horizon {
		l.now = b.horizon
		l.done = true
		return
	}
	l.now = bestAt
	switch which {
	case dTick:
		b.flushMeter(l)
		// Ticker re-arm: fn first, then the next After draws a sequence.
		l.tickSeq = l.seq
		l.seq++
		l.tickAt += meterInterval
	case dKick:
		sub := l.kicks[kickIdx].sub
		copy(l.kicks[kickIdx:l.nKicks-1], l.kicks[kickIdx+1:l.nKicks])
		l.nKicks--
		b.laneKick(l, lane, sub)
	default:
		s := which
		l.subEv[s] = evNone
		b.fireSub(l, lane, s)
	}
	if l.stopped {
		l.done = true
	}
}

// fireSub fires subflow s's pending timer: establishment or round end.
func (b *batch) fireSub(l *lane, lane, s int) {
	i := b.vecIdx(s, lane)
	if b.vec.State[i] == tcp.Connecting {
		// established(): state transition then Kick.
		b.vec.Establish(i, l.now, &b.cfg)
		b.laneKick(l, lane, s)
		return
	}
	// finishRound: close the round, update the window, deliver, and (via
	// laneStartRound) open the next round.
	dur, lost := l.roundDur[s], l.roundLost[s]
	n := b.vec.RoundSRTT(i, l.now, dur)
	inc := 0.0
	if !lost && b.vec.Cwnd[i] >= b.vec.Ssthresh[i] {
		if b.coupled {
			inc = b.vec.LIAIncrease(i, lane, b.nSub)
		} else {
			inc = 1
		}
	}
	b.vec.ApplyWindow(i, lost, inc, &b.cfg)
	// Delivered: meter the bytes and fire the request completion.
	l.delivered += n
	ifc := b.iface[s]
	if b.uplink {
		l.uplinkedIf[ifc] += n
	} else {
		l.deliveredIf[ifc] += n
	}
	if !l.stopped && l.delivered >= l.queued-1e-6 {
		// done(at): complete and stop. The scalar path still runs the
		// trailing startRound, but with the engine stopped none of its
		// effects (request bookkeeping, RNG draws, a reserved event that
		// never fires) can reach the Result — so the lane skips it.
		l.complete = l.now
		l.stopped = true
		return
	}
	b.laneStartRound(l, lane, s)
}

// laneKick replicates Subflow.Kick.
func (b *batch) laneKick(l *lane, lane, s int) {
	i := b.vecIdx(s, lane)
	if b.vec.State[i] != tcp.Established || b.vec.InRound[i] {
		return
	}
	b.vec.IdleReset(i, l.now, &b.cfg)
	b.laneStartRound(l, lane, s)
}

// laneStartRound replicates Subflow.startRound inside the envelope
// (share > 0, loss probability exactly 0).
func (b *batch) laneStartRound(l *lane, lane, s int) {
	i := b.vecIdx(s, lane)
	want := b.vec.Want(i, &b.cfg)
	n := b.laneRequest(l, lane, s, want)
	if n <= 0 {
		return
	}
	b.vec.BeginRound(i, n)
	share := l.rate[s]
	rtt := b.rng.Jitter(b.subIdx(s, lane), b.baseRTT[s], b.cfg.RTTJitter)
	congested, dur := b.vec.RoundPlan(n, rtt, share)
	l.roundLost[s] = congested
	l.roundDur[s] = dur
	l.subEv[s] = evRound
	l.subAt[s] = l.now + dur
	l.subSeq[s] = l.seq
	l.seq++
}

// laneRequest replicates connSource.Request with an unlimited receive
// buffer: hand out queued bytes, or defer to a faster peer when data is
// scarce (kicking the peer synchronously, then arming this subflow's
// wakeup one peer-SRTT later).
func (b *batch) laneRequest(l *lane, lane, s int, want units.ByteSize) units.ByteSize {
	avail := l.queued - l.taken
	if avail <= 0 {
		return 0
	}
	if avail < want {
		if best := b.preferredSub(l, lane); best >= 0 && best != s &&
			b.vec.Srtt[b.vecIdx(best, lane)] < b.vec.Srtt[b.vecIdx(s, lane)] {
			b.laneKick(l, lane, best)
			if l.nKicks >= maxKicks {
				panic("lockstep: deferred-kick overflow (impossible inside the envelope)")
			}
			// Parenthesised exactly as the scalar After(bestSRTT+1e-3):
			// now + (srtt + 1e-3) rounds differently from left-to-right.
			l.kicks[l.nKicks] = kickEv{
				at:  l.now + (b.vec.Srtt[b.vecIdx(best, lane)] + 1e-3),
				seq: l.seq,
				sub: s,
			}
			l.seq++
			l.nKicks++
			return 0
		}
	}
	n := want
	if n > avail {
		n = avail
	}
	l.taken += n
	return n
}

// preferredSub replicates Connection.preferredSubflow: the established
// subflow with the strictly lowest smoothed RTT, in creation order.
// Envelope lanes never suspend and every path rate is positive.
func (b *batch) preferredSub(l *lane, lane int) int {
	best := -1
	for s := 0; s < b.nSub; s++ {
		i := b.vecIdx(s, lane)
		if b.vec.State[i] != tcp.Established {
			continue
		}
		if best < 0 || b.vec.Srtt[i] < b.vec.Srtt[b.vecIdx(best, lane)] {
			best = s
		}
	}
	return best
}

// flushMeter replicates run.flushMeter: advance the lane's accountant to
// now with the throughput observed since the last flush.
func (b *batch) flushMeter(l *lane) {
	now := l.now
	dt := now - l.acct.Now()
	if dt <= 0 {
		return
	}
	var thr energy.Throughputs
	for i := 0; i < energy.NumInterfaces; i++ {
		deltaDown := l.deliveredIf[i] - l.meterLast[i]
		l.meterLast[i] = l.deliveredIf[i]
		deltaUp := l.uplinkedIf[i] - l.meterLastUp[i]
		l.meterLastUp[i] = l.uplinkedIf[i]
		if deltaDown <= 0 && deltaUp <= 0 {
			continue
		}
		if deltaDown > 0 {
			thr.Down[i] = units.BitRate(deltaDown.Bits() / dt)
		}
		if deltaUp > 0 {
			thr.Up[i] = units.BitRate(deltaUp.Bits() / dt)
		}
		if l.acct.Radio(energy.Interface(i)).State() == energy.Idle {
			l.acct.Radio(energy.Interface(i)).Activate(l.acct.Now())
		}
	}
	if b.weakNom > 0 {
		l.acct.Radio(energy.WiFi).SetQuality(float64(l.wifiRate) / float64(b.weakNom))
	}
	l.acct.Advance(now, thr)
}

// collect replicates run.collect for one lane.
func (b *batch) collect(l *lane) scenario.Result {
	b.flushMeter(l)
	completed := !math.IsNaN(l.complete)
	if completed {
		l.acct.Drain()
	}
	res := scenario.Result{
		Protocol:       b.proto,
		Completed:      completed,
		CompletionTime: l.complete,
		Elapsed:        l.now,
		Energy:         l.acct.Total(),
		BaseEnergy:     l.acct.BaseEnergy(),
		LTEUsed:        l.lteTouched || l.acct.InterfaceEnergy(energy.LTE) > 0,
	}
	for i := 0; i < energy.NumInterfaces; i++ {
		res.ByIface[i] = l.acct.InterfaceEnergy(energy.Interface(i))
		res.Downloaded += l.deliveredIf[i]
		res.Uploaded += l.uplinkedIf[i]
	}
	if moved := res.Downloaded + res.Uploaded; moved > 0 {
		res.JPerByte = res.Energy.PerByte(moved)
	} else {
		res.JPerByte = math.Inf(1)
	}
	res.BatteryPct = b.sc.Device.BatteryFraction(res.Energy) * 100
	return res
}
