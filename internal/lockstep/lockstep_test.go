package lockstep

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/energy"
	"repro/internal/link"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/simrng"
	"repro/internal/units"
	"repro/internal/workload"
)

func s3() *energy.DeviceProfile { return energy.GalaxyS3() }

// normNaN replaces NaN completion times (incomplete runs) so that
// reflect.DeepEqual — under which NaN != NaN — can compare results.
func normNaN(r *scenario.Result) {
	if math.IsNaN(r.CompletionTime) {
		r.CompletionTime = -1
	}
}

var lanedProtos = []scenario.Protocol{scenario.TCPWiFi, scenario.TCPLTE, scenario.MPTCP}

// checkEquivalence runs the seeds batched and requires each per-seed
// Result to be bit-identical to a sequential scenario.Run.
func checkEquivalence(t *testing.T, sc scenario.Scenario, proto scenario.Protocol, seeds []int64) {
	t.Helper()
	opt := scenario.Opts{}
	if !Eligible(sc, proto, opt) {
		t.Fatalf("%v/%v unexpectedly ineligible for lockstep", sc.Name, proto)
	}
	lanes0, _ := Stats()
	got := Run(sc, proto, seeds, opt)
	if lanes1, _ := Stats(); lanes1 == lanes0 {
		t.Fatalf("%v/%v: Run executed no lockstep lanes", sc.Name, proto)
	}
	for i, seed := range seeds {
		want := scenario.Run(sc, proto, scenario.Opts{Seed: seed})
		g := got[i]
		normNaN(&want)
		normNaN(&g)
		if !reflect.DeepEqual(want, g) {
			t.Errorf("%v/%v seed %d: lockstep result differs\nscalar:   %+v\nlockstep: %+v",
				sc.Name, proto, seed, want, g)
		}
	}
}

// TestLockstepEquivalence pins the deterministic envelope corners:
// lab and wild links, all three laned protocols, download/upload/bulk
// workloads, fast and scarce-data regimes, and horizon truncation.
func TestLockstepEquivalence(t *testing.T) {
	seeds := []int64{0, 1, 2, 3, 4, 5, 6}
	bulk := func(sc scenario.Scenario) scenario.Scenario {
		sc.Work = workload.Bulk{}
		sc.Horizon = 30
		return sc
	}
	scs := []scenario.Scenario{
		scenario.StaticLab(s3(), 8, 6, workload.FileDownload{Size: 4 * units.MB}),
		scenario.StaticLab(s3(), 0.5, 4.5, workload.FileDownload{Size: 2 * units.MB}),
		scenario.StaticLab(s3(), 12, 0.8, workload.FileUpload{Size: 1 * units.MB}),
		scenario.StaticLab(s3(), 2, 2, workload.FileDownload{Size: 16 * units.KB}),
		bulk(scenario.StaticLab(s3(), 8, 6, nil)),
		scenario.Wild(s3(), scenario.Good, scenario.Good, scenario.WDC, workload.FileDownload{Size: 4 * units.MB}),
		scenario.Wild(s3(), scenario.Bad, scenario.Good, scenario.SNG, workload.FileDownload{Size: 16 * units.MB}),
		scenario.Wild(s3(), scenario.Good, scenario.Bad, scenario.AMS, workload.FileUpload{Size: 1 * units.MB}),
	}
	// A horizon so short the transfer cannot complete: Elapsed pins to it.
	trunc := scenario.StaticLab(s3(), 0.5, 0.5, workload.FileDownload{Size: 64 * units.MB})
	trunc.Horizon = 5
	scs = append(scs, trunc)

	for _, sc := range scs {
		for _, proto := range lanedProtos {
			checkEquivalence(t, sc, proto, seeds)
		}
	}
}

// FuzzLockstepEquivalence is the bit-identity bar from the issue: any
// envelope scenario, any seed set, batched results must match sequential
// scalar runs exactly.
func FuzzLockstepEquivalence(f *testing.F) {
	f.Add(uint8(0), int64(0), uint8(80), uint8(60), uint16(4096), false, false)
	f.Add(uint8(1), int64(3), uint8(5), uint8(45), uint16(2048), false, true)
	f.Add(uint8(2), int64(7), uint8(40), uint8(45), uint16(256), true, false)
	f.Add(uint8(2), int64(11), uint8(120), uint8(8), uint16(64), false, true)
	f.Add(uint8(0), int64(13), uint8(1), uint8(20), uint16(8192), true, true)
	f.Fuzz(func(t *testing.T, protoSel uint8, seed int64, wifiDMbps, lteDMbps uint8, sizeKB uint16, upload, wild bool) {
		proto := lanedProtos[int(protoSel)%len(lanedProtos)]
		size := units.ByteSize(sizeKB%8192+16) * units.KB
		var work workload.Workload = workload.FileDownload{Size: size}
		if upload {
			work = workload.FileUpload{Size: size}
		}
		var sc scenario.Scenario
		if wild {
			q := func(d uint8) scenario.Quality {
				if d%2 == 0 {
					return scenario.Good
				}
				return scenario.Bad
			}
			loc := scenario.AllServerLocs[int(wifiDMbps)%len(scenario.AllServerLocs)]
			sc = scenario.Wild(s3(), q(wifiDMbps), q(lteDMbps), loc, work)
		} else {
			wifi := float64(wifiDMbps%200)/10 + 0.2 // 0.2 .. 20.1 Mbps
			lte := float64(lteDMbps%100)/10 + 0.5   // 0.5 .. 10.4 Mbps
			sc = scenario.StaticLab(s3(), wifi, lte, work)
		}
		seeds := make([]int64, 5)
		for i := range seeds {
			seeds[i] = seed + int64(i)*7919
		}
		checkEquivalence(t, sc, proto, seeds)
	})
}

// TestLockstepPeel drives the lane-divergence path: a zero-rate WiFi lab
// link is outside the envelope (the scalar dead-path timeout round), so
// every lane must peel to scenario.Run and still return scalar-identical
// results.
func TestLockstepPeel(t *testing.T) {
	sc := scenario.StaticLab(s3(), 0, 4.5, workload.FileDownload{Size: 1 * units.MB})
	seeds := []int64{0, 1, 2}
	for _, proto := range []scenario.Protocol{scenario.TCPWiFi, scenario.MPTCP} {
		if !Eligible(sc, proto, scenario.Opts{}) {
			t.Fatalf("%v statically ineligible; peel is a dynamic decision", proto)
		}
		_, peels0 := Stats()
		got := Run(sc, proto, seeds, scenario.Opts{})
		if _, peels1 := Stats(); peels1-peels0 != int64(len(seeds)) {
			t.Fatalf("%v: %d peels, want %d", proto, peels1-peels0, len(seeds))
		}
		for i, seed := range seeds {
			want := scenario.Run(sc, proto, scenario.Opts{Seed: seed})
			g := got[i]
			normNaN(&want)
			normNaN(&g)
			if !reflect.DeepEqual(want, g) {
				t.Errorf("%v seed %d: peeled result differs\nscalar: %+v\npeeled: %+v", proto, seed, want, g)
			}
		}
	}
}

// TestLockstepEligibility pins the static envelope boundary.
func TestLockstepEligibility(t *testing.T) {
	dl := scenario.StaticLab(s3(), 8, 6, workload.FileDownload{Size: units.MB})
	cases := []struct {
		name  string
		sc    scenario.Scenario
		proto scenario.Protocol
		opt   scenario.Opts
		want  bool
	}{
		{"download", dl, scenario.TCPWiFi, scenario.Opts{}, true},
		{"mptcp", dl, scenario.MPTCP, scenario.Opts{}, true},
		{"bulk", func() scenario.Scenario { sc := dl; sc.Work = workload.Bulk{}; return sc }(), scenario.TCPLTE, scenario.Opts{}, true},
		{"emptcp", dl, scenario.EMPTCP, scenario.Opts{}, false},
		{"trace", dl, scenario.TCPWiFi, scenario.Opts{Trace: true}, false},
		{"zero size", func() scenario.Scenario { sc := dl; sc.Work = workload.FileDownload{}; return sc }(), scenario.TCPWiFi, scenario.Opts{}, false},
		{"web workload", scenario.WebBrowsing(s3()), scenario.TCPWiFi, scenario.Opts{}, false},
		{"non-library", scenario.Scenario{
			Name:    "hand-built",
			Device:  s3(),
			WiFi:    func(eng *sim.Engine, src *simrng.Source) link.Process { return link.NewConstant(units.MbpsRate(8)) },
			LTE:     func(eng *sim.Engine, src *simrng.Source) link.Process { return link.NewConstant(units.MbpsRate(6)) },
			WiFiRTT: 0.03,
			LTERTT:  0.07,
			Work:    workload.FileDownload{Size: units.MB},
		}, scenario.TCPWiFi, scenario.Opts{}, false},
	}
	for _, c := range cases {
		if got := Eligible(c.sc, c.proto, c.opt); got != c.want {
			t.Errorf("%s: Eligible = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestLockstepCacheComposition checks the per-seed memoization contract:
// a second batched call over the same seeds returns identical results
// without simulating any lane, and a partially-warm batch still yields
// scalar-identical results for the cold seeds.
func TestLockstepCacheComposition(t *testing.T) {
	sc := scenario.StaticLab(s3(), 8, 6, workload.FileDownload{Size: 2 * units.MB})
	cache := scenario.NewRunCache()
	opt := scenario.Opts{Cache: cache}
	seeds := []int64{10, 11, 12, 13}

	first := Run(sc, scenario.MPTCP, seeds, opt)
	lanes0, _ := Stats()
	second := Run(sc, scenario.MPTCP, seeds, opt)
	if lanes1, _ := Stats(); lanes1 != lanes0 {
		t.Fatalf("fully-cached batch simulated %d lanes", lanes1-lanes0)
	}
	for i := range seeds {
		a, b := first[i], second[i]
		normNaN(&a)
		normNaN(&b)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: cached result differs from computed", seeds[i])
		}
	}

	// Extend the seed range: the warm seeds come from cache, the cold
	// ones from a fresh batch, all scalar-identical.
	wider := []int64{12, 13, 14, 15}
	got := Run(sc, scenario.MPTCP, wider, opt)
	for i, seed := range wider {
		want := scenario.Run(sc, scenario.MPTCP, scenario.Opts{Seed: seed})
		g := got[i]
		normNaN(&want)
		normNaN(&g)
		if !reflect.DeepEqual(want, g) {
			t.Errorf("seed %d: widened cached batch differs from scalar", seed)
		}
	}
}

// TestLockstepSteadyStateAllocs is the CI alloc guard: once a batch's
// striped state is warm, re-arming the lanes and driving them to
// completion allocates nothing. The link probe is excluded — building a
// link.Process is a per-batch setup cost, not lane advance.
func TestLockstepSteadyStateAllocs(t *testing.T) {
	sc := scenario.StaticLab(s3(), 8, 6, workload.FileDownload{Size: 2 * units.MB})
	const k = 16
	seeds := make([]int64, k)
	for i := range seeds {
		seeds[i] = int64(i)
	}
	b := batchPool.Get().(*batch)
	defer batchPool.Put(b)
	b.prepare(sc, scenario.MPTCP, k)
	for i := range b.lanes {
		if !b.setupLane(&b.lanes[i], i, seeds[i]) {
			t.Fatalf("lane %d peeled in an envelope scenario", i)
		}
	}
	b.drive() // warm: seed-state cache, accountant buffers

	res := make([]scenario.Result, k)
	allocs := testing.AllocsPerRun(20, func() {
		b.vec.Resize(b.nSub, b.k)
		for i := range b.lanes {
			l := &b.lanes[i]
			acct, rate, wifiRate := l.acct, l.rate, l.wifiRate
			*l = lane{acct: acct, rate: rate, wifiRate: wifiRate, seed: seeds[i]}
			l.complete = math.NaN()
			b.rng.Seed(b.rootIdx(i), seeds[i])
			b.armLane(l, i)
		}
		b.drive()
		for i := range b.lanes {
			res[i] = b.collect(&b.lanes[i])
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state lane advance allocates: %.1f allocs/op", allocs)
	}
	if !res[0].Completed {
		t.Fatal("steady-state lanes did not complete the transfer")
	}
}
