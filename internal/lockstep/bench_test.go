package lockstep

import (
	"fmt"
	"testing"

	"repro/internal/scenario"
	"repro/internal/units"
	"repro/internal/workload"
)

// BenchmarkLockstepReplication is the issue's k-sweep: one op is a batch
// of k replications of a wild cell (the campaign's unit of work), so
// ns/op at k versus k sequential scalar runs (the scalar16 baseline) is
// the replication-throughput ratio directly. Two cells bound the regime:
// a small transfer where per-run setup and tick dispatch dominate, and a
// large one where steady-state rounds do.
func BenchmarkLockstepReplication(b *testing.B) {
	cells := []struct {
		name string
		work workload.Workload
	}{
		{"wild-0.25MB", workload.FileDownload{Size: 256 * units.KB}},
		{"wild-16MB", workload.FileDownload{Size: 16 * units.MB}},
	}
	for _, c := range cells {
		sc := scenario.Wild(s3(), scenario.Good, scenario.Good, scenario.WDC, c.work)
		b.Run(c.name+"/scalar16", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for seed := int64(0); seed < 16; seed++ {
					scenario.Run(sc, scenario.MPTCP, scenario.Opts{Seed: seed})
				}
			}
		})
		for _, k := range []int{1, 4, 16, 64} {
			b.Run(fmt.Sprintf("%s/k=%d", c.name, k), func(b *testing.B) {
				seeds := make([]int64, k)
				for i := range seeds {
					seeds[i] = int64(i)
				}
				var dst []scenario.Result
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					dst = RunAppend(dst[:0], sc, scenario.MPTCP, seeds, scenario.Opts{})
				}
				if testing.Verbose() && !dst[0].Completed {
					b.Fatal("benchmark lanes did not complete")
				}
			})
		}
	}
}
