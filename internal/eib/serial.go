package eib

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/energy"
)

// The paper computes the Energy Information Base offline from the device's
// parameterized energy model and ships it to the phone (§3.3). This file
// provides the corresponding persistence: a generated Table serializes to
// JSON and loads back without re-running the threshold search.

// tableJSON is the serialized form.
type tableJSON struct {
	// Device is the profile name the table was generated for.
	Device  string  `json:"device"`
	Config  Config  `json:"config"`
	Entries []Entry `json:"entries"`
}

// Save writes the table as JSON.
func (t *Table) Save(w io.Writer) error {
	name := ""
	if t.Device != nil {
		name = t.Device.Name
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(tableJSON{Device: name, Config: t.Config, Entries: t.Entries}); err != nil {
		return fmt.Errorf("eib: save: %w", err)
	}
	return nil
}

// knownProfiles resolves serialized device names back to profiles.
var knownProfiles = map[string]func() *energy.DeviceProfile{
	energy.GalaxyS3().Name: energy.GalaxyS3,
	energy.Nexus5().Name:   energy.Nexus5,
}

// Load reads a table saved with Save. The device profile is re-linked by
// name when it is one of the built-in profiles and left nil otherwise —
// lookup and decisions work either way, since the thresholds are baked in.
func Load(r io.Reader) (*Table, error) {
	var tj tableJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&tj); err != nil {
		return nil, fmt.Errorf("eib: load: %w", err)
	}
	if len(tj.Entries) == 0 {
		return nil, fmt.Errorf("eib: load: table has no entries")
	}
	prev := tj.Entries[0].LTE
	for _, e := range tj.Entries[1:] {
		if e.LTE <= prev {
			return nil, fmt.Errorf("eib: load: entries not sorted by LTE throughput")
		}
		prev = e.LTE
	}
	t := &Table{Config: tj.Config, Entries: tj.Entries}
	if mk, ok := knownProfiles[tj.Device]; ok {
		t.Device = mk()
	}
	return t, nil
}
