package eib

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/energy"
	"repro/internal/units"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	orig := Generate(energy.GalaxyS3(), DefaultConfig())
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Device == nil || got.Device.Name != orig.Device.Name {
		t.Errorf("device not re-linked: %+v", got.Device)
	}
	if len(got.Entries) != len(orig.Entries) {
		t.Fatalf("entries = %d, want %d", len(got.Entries), len(orig.Entries))
	}
	for i := range got.Entries {
		if got.Entries[i] != orig.Entries[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, got.Entries[i], orig.Entries[i])
		}
	}
	// Decisions through the loaded table match the original.
	for _, w := range []float64{0.1, 0.4, 2, 8} {
		for _, l := range []float64{0.5, 2, 9} {
			a := orig.Decide(energy.Both, units.MbpsRate(w), units.MbpsRate(l))
			b := got.Decide(energy.Both, units.MbpsRate(w), units.MbpsRate(l))
			if a != b {
				t.Errorf("decision diverges at wifi=%v lte=%v: %v vs %v", w, l, a, b)
			}
		}
	}
}

func TestLoadUnknownDevice(t *testing.T) {
	orig := Generate(energy.GalaxyS3(), DefaultConfig())
	orig.Device = &energy.DeviceProfile{Name: "Prototype Handset"}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Device != nil {
		t.Error("unknown device should load with nil profile")
	}
	// String must not panic without a profile.
	if !strings.Contains(got.String(), "unknown device") {
		t.Error("nil-device rendering wrong")
	}
}

func TestSaveNilDevice(t *testing.T) {
	tb := Generate(energy.GalaxyS3(), DefaultConfig())
	tb.Device = nil
	var buf bytes.Buffer
	if err := tb.Save(&buf); err != nil {
		t.Fatalf("Save with nil device: %v", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("{not json")); err == nil {
		t.Error("garbage input loaded")
	}
	if _, err := Load(strings.NewReader(`{"device":"x","entries":[]}`)); err == nil {
		t.Error("empty table loaded")
	}
	unsorted := `{"device":"x","entries":[
		{"LTE":2e6,"LTEOnlyBelow":1,"WiFiOnlyAtLeast":2},
		{"LTE":1e6,"LTEOnlyBelow":1,"WiFiOnlyAtLeast":2}]}`
	if _, err := Load(strings.NewReader(unsorted)); err == nil {
		t.Error("unsorted table loaded")
	}
}
