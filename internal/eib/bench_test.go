package eib

import (
	"testing"

	"repro/internal/energy"
	"repro/internal/units"
)

// BenchmarkGenerate measures the offline table computation (bisection over
// the full LTE grid) — the artifact the paper ships to the device.
func BenchmarkGenerate(b *testing.B) {
	d := energy.GalaxyS3()
	cfg := DefaultConfig()
	for i := 0; i < b.N; i++ {
		Generate(d, cfg)
	}
}

// BenchmarkDecide measures the per-tick controller decision path.
func BenchmarkDecide(b *testing.B) {
	t := Generate(energy.GalaxyS3(), DefaultConfig())
	cur := energy.Both
	for i := 0; i < b.N; i++ {
		cur = t.Decide(cur, units.MbpsRate(float64(i%120)/10), units.MbpsRate(4.5))
	}
}
