// Package eib implements eMPTCP's Energy Information Base (§3.3 of the
// paper): the offline-computed table that tells the path usage controller
// which interface set maximizes per-byte energy efficiency at the
// currently-predicted throughputs.
//
// The table is an array indexed by observed LTE throughput; each entry
// holds two WiFi throughput thresholds (the paper's Table 2):
//
//   - below the LTE-only threshold, WiFi is so slow that keeping its radio
//     up costs more than the bytes it contributes — use LTE only;
//   - at or above the WiFi-only threshold, WiFi alone is more efficient
//     than paying the LTE radio's power — use WiFi only;
//   - in between lies the V-shaped region (Figure 3) where using both
//     interfaces consumes the least energy per downloaded byte.
//
// Decisions made through Decide apply the 10 % safety factor of §3.4: the
// threshold that would trigger a state switch is moved 10 % against the
// switch, adding hysteresis that prevents oscillation.
package eib

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/energy"
	"repro/internal/units"
)

// Config controls table generation.
type Config struct {
	// LTEGridStep and LTEGridMax define the LTE-throughput rows of the
	// table. Table 2 uses 0.5 Mbps steps.
	LTEGridStep units.BitRate
	LTEGridMax  units.BitRate
	// MaxWiFi bounds the threshold search.
	MaxWiFi units.BitRate
	// SafetyFactor is the hysteresis fraction of §3.4 (0.10 in the paper).
	SafetyFactor float64
	// AllowLTEOnly permits Decide to return LTE-only. The paper notes
	// eMPTCP "does not typically switch to using a cellular interface
	// only, since the expected gain is not much more than using both"
	// (§3.4), so the default is false and the LTE-only region maps to
	// Both.
	AllowLTEOnly bool
	// Uplink generates the table from uplink per-byte energies — an
	// extension toward the paper's §7 upload future work. Cellular
	// transmit power per Mbps dwarfs receive power, so the upload table's
	// WiFi-only thresholds sit markedly lower.
	Uplink bool
}

// DefaultConfig returns the configuration matching the paper's Table 2.
// The LTE grid stops at 12 Mbps: beyond that the model (correctly) pushes
// both thresholds past any realistic WiFi rate — LTE is so efficient at
// high rates that neither WiFi-only nor WiFi-assisted operation wins —
// and the paper's own Figure 3 grid only covers up to 10 Mbps.
func DefaultConfig() Config {
	return Config{
		LTEGridStep:  units.MbpsRate(0.5),
		LTEGridMax:   units.MbpsRate(12),
		MaxWiFi:      units.MbpsRate(50),
		SafetyFactor: 0.10,
	}
}

// Entry is one row of the table: at observed LTE throughput LTE, use LTE
// only when WiFi < LTEOnlyBelow; use WiFi only when WiFi ≥ WiFiOnlyAtLeast;
// use both otherwise.
type Entry struct {
	LTE             units.BitRate
	LTEOnlyBelow    units.BitRate
	WiFiOnlyAtLeast units.BitRate
}

// Table is a generated Energy Information Base.
type Table struct {
	Device  *energy.DeviceProfile
	Config  Config
	Entries []Entry
}

// Generate computes the EIB for a device by locating, for each LTE
// throughput row, the two WiFi-throughput crossing points of the per-byte
// energy curves. The crossings are unique because per-byte energies are
// monotone in WiFi throughput over the search range, so bisection applies.
func Generate(d *energy.DeviceProfile, cfg Config) *Table {
	if cfg.LTEGridStep <= 0 || cfg.LTEGridMax <= 0 || cfg.MaxWiFi <= 0 {
		panic("eib: grid parameters must be positive")
	}
	if cfg.SafetyFactor < 0 || cfg.SafetyFactor >= 1 {
		panic("eib: safety factor must be in [0,1)")
	}
	t := &Table{Device: d, Config: cfg}
	for lte := cfg.LTEGridStep; lte <= cfg.LTEGridMax+1e-9; lte += cfg.LTEGridStep {
		t.Entries = append(t.Entries, Entry{
			LTE:             lte,
			LTEOnlyBelow:    lteOnlyThreshold(d, lte, cfg.MaxWiFi, cfg.Uplink),
			WiFiOnlyAtLeast: wifiOnlyThreshold(d, lte, cfg.MaxWiFi, cfg.Uplink),
		})
	}
	return t
}

// tableCache memoizes Generate results. Generation runs thousands of
// bisection steps over the device power model, and simulation runs repeat
// it with identical inputs for every eMPTCP connection; the result depends
// only on the (device, config) pair. Keyed by device pointer: callers must
// not mutate a profile after generating a table from it (no caller does —
// profiles are built once per experiment and read thereafter).
var tableCache sync.Map

type tableKey struct {
	d   *energy.DeviceProfile
	cfg Config
}

// GenerateCached returns a shared, memoized table for the (device, config)
// pair. Tables are immutable after generation, so sharing one across
// concurrent runs is safe.
func GenerateCached(d *energy.DeviceProfile, cfg Config) *Table {
	k := tableKey{d, cfg}
	if v, ok := tableCache.Load(k); ok {
		return v.(*Table)
	}
	v, _ := tableCache.LoadOrStore(k, Generate(d, cfg))
	return v.(*Table)
}

// lteOnlyThreshold finds the smallest WiFi throughput at which using both
// interfaces is at least as efficient as LTE alone.
func lteOnlyThreshold(d *energy.DeviceProfile, lte, maxWiFi units.BitRate, uplink bool) units.BitRate {
	better := func(wifi units.BitRate) bool {
		return d.PerByteEnergyDir(energy.Both, wifi, lte, uplink) <= d.PerByteEnergyDir(energy.LTEOnly, wifi, lte, uplink)
	}
	return bisectRate(better, maxWiFi)
}

// wifiOnlyThreshold finds the smallest WiFi throughput at which WiFi alone
// is at least as efficient as using both interfaces.
func wifiOnlyThreshold(d *energy.DeviceProfile, lte, maxWiFi units.BitRate, uplink bool) units.BitRate {
	better := func(wifi units.BitRate) bool {
		return d.PerByteEnergyDir(energy.WiFiOnly, wifi, lte, uplink) <= d.PerByteEnergyDir(energy.Both, wifi, lte, uplink)
	}
	return bisectRate(better, maxWiFi)
}

// bisectRate finds the smallest rate in (0, max] satisfying pred, assuming
// pred is monotone (false below the crossing, true above). It returns max
// if pred never holds.
func bisectRate(pred func(units.BitRate) bool, max units.BitRate) units.BitRate {
	lo, hi := units.BitRate(0), max
	if !pred(hi) {
		return max
	}
	for i := 0; i < 60 && hi-lo > 1e-3; i++ { // 1e-3 bps precision
		mid := (lo + hi) / 2
		if mid <= 0 {
			break
		}
		if pred(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// Thresholds returns the (LTE-only, WiFi-only) WiFi thresholds at the
// given LTE throughput, linearly interpolated between table rows and
// linearly extrapolated from the origin below the first row.
func (t *Table) Thresholds(lte units.BitRate) (lteOnlyBelow, wifiOnlyAtLeast units.BitRate) {
	if len(t.Entries) == 0 {
		return 0, 0
	}
	if lte <= 0 {
		return 0, 0
	}
	i := sort.Search(len(t.Entries), func(i int) bool { return t.Entries[i].LTE >= lte })
	if i == len(t.Entries) {
		last := t.Entries[len(t.Entries)-1]
		return last.LTEOnlyBelow, last.WiFiOnlyAtLeast
	}
	hi := t.Entries[i]
	var lo Entry // zero entry: thresholds collapse to 0 at zero LTE throughput
	if i > 0 {
		lo = t.Entries[i-1]
	}
	span := float64(hi.LTE - lo.LTE)
	if span <= 0 {
		return hi.LTEOnlyBelow, hi.WiFiOnlyAtLeast
	}
	f := float64(lte-lo.LTE) / span
	interp := func(a, b units.BitRate) units.BitRate {
		return a + units.BitRate(f*float64(b-a))
	}
	return interp(lo.LTEOnlyBelow, hi.LTEOnlyBelow), interp(lo.WiFiOnlyAtLeast, hi.WiFiOnlyAtLeast)
}

// Best returns the most efficient path set at the given throughputs with
// no hysteresis (the raw table decision).
func (t *Table) Best(wifi, lte units.BitRate) energy.PathSet {
	t1, t2 := t.Thresholds(lte)
	switch {
	case wifi >= t2:
		return energy.WiFiOnly
	case wifi < t1:
		if t.Config.AllowLTEOnly {
			return energy.LTEOnly
		}
		return energy.Both
	default:
		return energy.Both
	}
}

// Decide returns the path set to use given the current one and the
// predicted throughputs, applying the safety factor of §3.4: switching
// away from the current state requires crossing the relevant threshold by
// an extra SafetyFactor margin. With the paper's example (Table 2 row
// LTE=1 Mbps, WiFi-only threshold 0.502): from Both, WiFi-only needs a
// predicted WiFi throughput ≥ 0.552; from WiFi-only, returning to Both
// needs < 0.452.
func (t *Table) Decide(current energy.PathSet, wifi, lte units.BitRate) energy.PathSet {
	t1, t2 := t.Thresholds(lte)
	s := units.BitRate(t.Config.SafetyFactor)
	up2 := t2 + s*t2   // threshold to *enter* WiFi-only
	down2 := t2 - s*t2 // threshold to *leave* WiFi-only
	up1 := t1 + s*t1   // threshold to *leave* LTE-only
	down1 := t1 - s*t1 // threshold to *enter* LTE-only

	next := current
	switch current {
	case energy.WiFiOnly:
		if wifi < down2 {
			next = energy.Both
		}
	case energy.LTEOnly:
		if wifi >= up1 {
			next = energy.Both
		}
	default: // Both (or anything else: treat as Both)
		switch {
		case wifi >= up2:
			next = energy.WiFiOnly
		case wifi < down1:
			next = energy.LTEOnly
		default:
			next = energy.Both
		}
	}
	// Re-examine chained transitions: e.g. from LTE-only with very fast
	// WiFi we should land directly in WiFi-only, not stop at Both.
	if next == energy.Both && current != energy.Both {
		switch {
		case wifi >= up2:
			next = energy.WiFiOnly
		case wifi < down1:
			next = energy.LTEOnly
		}
	}
	if next == energy.LTEOnly && !t.Config.AllowLTEOnly {
		next = energy.Both
	}
	return next
}

// String renders the table in the layout of the paper's Table 2.
func (t *Table) String() string {
	name := "unknown device"
	if t.Device != nil {
		name = t.Device.Name
	}
	s := fmt.Sprintf("Energy Information Base — %s\n", name)
	s += "LTE Thpt (Mbps) | LTE-Only below (Mbps) | WiFi-Only at least (Mbps)\n"
	for _, e := range t.Entries {
		s += fmt.Sprintf("%15.1f | %21.3f | %25.3f\n",
			e.LTE.Mbit(), e.LTEOnlyBelow.Mbit(), e.WiFiOnlyAtLeast.Mbit())
	}
	return s
}

// Heatmap is the Figure 3 dataset: the per-byte energy of using both
// interfaces relative to the best single interface, over a WiFi×LTE
// throughput grid. Values below 1 fall inside the V-shaped region where
// MPTCP is the most energy-efficient choice.
type Heatmap struct {
	WiFi []units.BitRate // column coordinates
	LTE  []units.BitRate // row coordinates
	// Rel[i][j] is E_both / min(E_wifi, E_lte) at LTE[i], WiFi[j].
	Rel [][]float64
}

// RelativeEfficiencyHeatmap computes the Figure 3 heat map.
func RelativeEfficiencyHeatmap(d *energy.DeviceProfile, maxWiFi, maxLTE units.BitRate, n int) *Heatmap {
	if n < 2 {
		panic("eib: heatmap needs at least a 2x2 grid")
	}
	h := &Heatmap{}
	for j := 1; j <= n; j++ {
		h.WiFi = append(h.WiFi, maxWiFi*units.BitRate(j)/units.BitRate(n))
	}
	for i := 1; i <= n; i++ {
		h.LTE = append(h.LTE, maxLTE*units.BitRate(i)/units.BitRate(n))
	}
	for _, lte := range h.LTE {
		row := make([]float64, 0, n)
		for _, wifi := range h.WiFi {
			_, single := d.BestSinglePath(wifi, lte)
			both := d.PerByteEnergy(energy.Both, wifi, lte)
			row = append(row, both/single)
		}
		h.Rel = append(h.Rel, row)
	}
	return h
}

// MPTCPBestFraction returns the fraction of heat-map cells where using
// both interfaces beats the best single interface — the area of the
// Figure 3 "V".
func (h *Heatmap) MPTCPBestFraction() float64 {
	total, best := 0, 0
	for _, row := range h.Rel {
		for _, v := range row {
			total++
			if v < 1 {
				best++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(best) / float64(total)
}

// Region is one Figure 4 curve: for each WiFi throughput column, the LTE
// throughput interval (if any) in which completing an entire transfer of
// Size over both interfaces uses less energy than either single interface,
// fixed promotion/tail overheads included.
type Region struct {
	Size units.ByteSize
	WiFi []units.BitRate
	// LTEMin/LTEMax bound the winning interval per WiFi column; NaN when
	// both never wins in that column.
	LTEMin []float64
	LTEMax []float64
}

// OperatingRegion computes a Figure 4 curve by scanning an LTE grid per
// WiFi column.
func OperatingRegion(d *energy.DeviceProfile, size units.ByteSize, maxWiFi, maxLTE units.BitRate, n int) Region {
	r := Region{Size: size}
	for j := 1; j <= n; j++ {
		wifi := maxWiFi * units.BitRate(j) / units.BitRate(n)
		lo, hi := math.NaN(), math.NaN()
		for i := 1; i <= 4*n; i++ {
			lte := maxLTE * units.BitRate(i) / units.BitRate(4*n)
			eb := d.TransferEnergy(energy.Both, size, wifi, lte)
			ew := d.TransferEnergy(energy.WiFiOnly, size, wifi, lte)
			el := d.TransferEnergy(energy.LTEOnly, size, wifi, lte)
			if eb < ew && eb < el {
				if math.IsNaN(lo) {
					lo = lte.Mbit()
				}
				hi = lte.Mbit()
			}
		}
		r.WiFi = append(r.WiFi, wifi)
		r.LTEMin = append(r.LTEMin, lo)
		r.LTEMax = append(r.LTEMax, hi)
	}
	return r
}

// Area returns the number of WiFi columns in which both-wins intervals
// exist, as a crude measure of region size: Figure 4 shows the region
// growing with transfer size.
func (r Region) Area() float64 {
	a := 0.0
	for i := range r.WiFi {
		if !math.IsNaN(r.LTEMin[i]) {
			a += r.LTEMax[i] - r.LTEMin[i]
		}
	}
	return a
}
