package eib

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/energy"
	"repro/internal/units"
)

func table(t *testing.T) *Table {
	t.Helper()
	return Generate(energy.GalaxyS3(), DefaultConfig())
}

func TestGenerateGrid(t *testing.T) {
	tb := table(t)
	if len(tb.Entries) != 24 {
		t.Fatalf("entries = %d, want 24 (0.5 Mbps steps to 12)", len(tb.Entries))
	}
	if got := tb.Entries[0].LTE.Mbit(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("first row LTE = %v, want 0.5", got)
	}
}

// The generated thresholds must land in the neighbourhood of the paper's
// Table 2. The WiFi-only column calibrates to within 12% on every row
// (our model is linear in throughput; the paper's measured thresholds
// bend slightly at the lowest rates); the LTE-only column is within a
// factor ~2 (see DESIGN.md).
func TestTable2Calibration(t *testing.T) {
	tb := table(t)
	rows := map[float64]struct{ t1, t2 float64 }{
		0.5: {0.043, 0.234},
		1.0: {0.134, 0.502},
		1.5: {0.209, 0.803},
		2.0: {0.304, 1.070},
	}
	for lte, want := range rows {
		t1, t2 := tb.Thresholds(units.MbpsRate(lte))
		if got := t2.Mbit(); math.Abs(got-want.t2)/want.t2 > 0.12 {
			t.Errorf("LTE=%v: WiFi-only threshold = %.3f, paper %.3f (>12%% off)", lte, got, want.t2)
		}
		if got := t1.Mbit(); got < want.t1/2 || got > want.t1*2 {
			t.Errorf("LTE=%v: LTE-only threshold = %.3f, paper %.3f (out of 2x band)", lte, got, want.t1)
		}
	}
}

func TestThresholdOrdering(t *testing.T) {
	tb := table(t)
	for _, e := range tb.Entries {
		if e.LTEOnlyBelow >= e.WiFiOnlyAtLeast {
			t.Errorf("LTE=%v: V region empty: t1=%v >= t2=%v", e.LTE, e.LTEOnlyBelow, e.WiFiOnlyAtLeast)
		}
	}
}

func TestThresholdsMonotoneInLTE(t *testing.T) {
	tb := table(t)
	for i := 1; i < len(tb.Entries); i++ {
		if tb.Entries[i].WiFiOnlyAtLeast < tb.Entries[i-1].WiFiOnlyAtLeast {
			t.Errorf("WiFi-only threshold not nondecreasing at row %d", i)
		}
		if tb.Entries[i].LTEOnlyBelow < tb.Entries[i-1].LTEOnlyBelow {
			t.Errorf("LTE-only threshold not nondecreasing at row %d", i)
		}
	}
}

func TestThresholdsInterpolation(t *testing.T) {
	tb := table(t)
	// Midway between rows 1.0 and 1.5, thresholds should be between them.
	a1, a2 := tb.Thresholds(units.MbpsRate(1.0))
	b1, b2 := tb.Thresholds(units.MbpsRate(1.5))
	m1, m2 := tb.Thresholds(units.MbpsRate(1.25))
	if !(m1 >= a1 && m1 <= b1) {
		t.Errorf("interpolated t1 %v not in [%v,%v]", m1, a1, b1)
	}
	if !(m2 >= a2 && m2 <= b2) {
		t.Errorf("interpolated t2 %v not in [%v,%v]", m2, a2, b2)
	}
	// Beyond the grid: clamps to last row.
	l1, l2 := tb.Thresholds(units.MbpsRate(100))
	last := tb.Entries[len(tb.Entries)-1]
	if l1 != last.LTEOnlyBelow || l2 != last.WiFiOnlyAtLeast {
		t.Error("beyond-grid thresholds should clamp to last row")
	}
	// Zero or negative LTE throughput: no LTE path worth anything.
	z1, z2 := tb.Thresholds(0)
	if z1 != 0 || z2 != 0 {
		t.Errorf("zero-LTE thresholds = %v,%v, want 0,0", z1, z2)
	}
}

func TestBest(t *testing.T) {
	tb := table(t)
	lte := units.MbpsRate(1)
	if got := tb.Best(units.MbpsRate(5), lte); got != energy.WiFiOnly {
		t.Errorf("fast WiFi: Best = %v, want WiFi-only", got)
	}
	if got := tb.Best(units.MbpsRate(0.3), lte); got != energy.Both {
		t.Errorf("mid WiFi: Best = %v, want Both", got)
	}
	// Below the LTE-only threshold with AllowLTEOnly=false → Both.
	if got := tb.Best(units.MbpsRate(0.01), lte); got != energy.Both {
		t.Errorf("slow WiFi, LTE-only disabled: Best = %v, want Both", got)
	}
	cfg := DefaultConfig()
	cfg.AllowLTEOnly = true
	tb2 := Generate(energy.GalaxyS3(), cfg)
	if got := tb2.Best(units.MbpsRate(0.01), lte); got != energy.LTEOnly {
		t.Errorf("slow WiFi, LTE-only enabled: Best = %v, want LTE-only", got)
	}
}

// §3.4's worked example: at LTE 1 Mbps with threshold ~0.502, switching
// Both→WiFi-only requires ~0.552 and WiFi-only→Both requires ~0.452.
func TestDecideHysteresis(t *testing.T) {
	tb := table(t)
	lte := units.MbpsRate(1)
	_, t2 := tb.Thresholds(lte)

	// From Both: just above the raw threshold is NOT enough.
	just := t2 + units.BitRate(0.05*float64(t2))
	if got := tb.Decide(energy.Both, just, lte); got != energy.Both {
		t.Errorf("Both at t2+5%%: Decide = %v, want Both (hysteresis)", got)
	}
	over := t2 + units.BitRate(0.15*float64(t2))
	if got := tb.Decide(energy.Both, over, lte); got != energy.WiFiOnly {
		t.Errorf("Both at t2+15%%: Decide = %v, want WiFi-only", got)
	}
	// From WiFi-only: just below the raw threshold is NOT enough.
	below := t2 - units.BitRate(0.05*float64(t2))
	if got := tb.Decide(energy.WiFiOnly, below, lte); got != energy.WiFiOnly {
		t.Errorf("WiFi-only at t2-5%%: Decide = %v, want WiFi-only (hysteresis)", got)
	}
	wayBelow := t2 - units.BitRate(0.15*float64(t2))
	if got := tb.Decide(energy.WiFiOnly, wayBelow, lte); got != energy.Both {
		t.Errorf("WiFi-only at t2-15%%: Decide = %v, want Both", got)
	}
}

func TestDecideLTEOnlyDisabledByDefault(t *testing.T) {
	tb := table(t)
	got := tb.Decide(energy.Both, units.MbpsRate(0.001), units.MbpsRate(1))
	if got != energy.Both {
		t.Errorf("Decide = %v, want Both (LTE-only disabled)", got)
	}
}

func TestDecideLTEOnlyEnabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AllowLTEOnly = true
	tb := Generate(energy.GalaxyS3(), cfg)
	lte := units.MbpsRate(1)
	got := tb.Decide(energy.Both, units.MbpsRate(0.001), lte)
	if got != energy.LTEOnly {
		t.Errorf("Decide = %v, want LTE-only", got)
	}
	// From LTE-only with very fast WiFi: jump straight to WiFi-only.
	got = tb.Decide(energy.LTEOnly, units.MbpsRate(10), lte)
	if got != energy.WiFiOnly {
		t.Errorf("Decide from LTE-only with fast WiFi = %v, want WiFi-only", got)
	}
}

// Property: hysteresis prevents oscillation — for any WiFi throughput
// held constant, two consecutive Decide calls starting from the first
// call's result reach a fixed point by the second call.
func TestDecideFixedPointProperty(t *testing.T) {
	tb := table(t)
	f := func(wRaw uint16, lRaw uint8) bool {
		wifi := units.MbpsRate(float64(wRaw%2000) / 100) // 0..20
		lte := units.MbpsRate(float64(lRaw%200)/10 + 0.1)
		s1 := tb.Decide(energy.Both, wifi, lte)
		s2 := tb.Decide(s1, wifi, lte)
		s3 := tb.Decide(s2, wifi, lte)
		return s2 == s3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Decide never selects a path set whose per-byte energy is more
// than (1+safety)² worse than the optimum at those throughputs.
func TestDecideNearOptimalProperty(t *testing.T) {
	tb := table(t)
	d := tb.Device
	f := func(wRaw uint16, lRaw uint8, cur uint8) bool {
		wifi := units.MbpsRate(float64(wRaw%2000)/100 + 0.01)
		lte := units.MbpsRate(float64(lRaw%200)/10 + 0.1)
		currents := []energy.PathSet{energy.WiFiOnly, energy.Both}
		current := currents[int(cur)%len(currents)]
		chosen := tb.Decide(current, wifi, lte)
		eChosen := d.PerByteEnergy(chosen, wifi, lte)
		eBest := math.Min(
			d.PerByteEnergy(energy.WiFiOnly, wifi, lte),
			math.Min(d.PerByteEnergy(energy.Both, wifi, lte),
				d.PerByteEnergy(energy.LTEOnly, wifi, lte)))
		// Hysteresis and the no-LTE-only rule tolerate bounded
		// suboptimality, never unbounded.
		return eChosen <= eBest*1.8+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeneratePanics(t *testing.T) {
	bad := []Config{
		{LTEGridStep: 0, LTEGridMax: 1, MaxWiFi: 1},
		{LTEGridStep: 1, LTEGridMax: 1, MaxWiFi: 1, SafetyFactor: 1.5},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d did not panic", i)
				}
			}()
			Generate(energy.GalaxyS3(), cfg)
		}()
	}
}

func TestTableString(t *testing.T) {
	s := table(t).String()
	if !strings.Contains(s, "Galaxy S3") || !strings.Contains(s, "WiFi-Only") {
		t.Errorf("table rendering missing headers:\n%s", s)
	}
}

// Figure 3: the heat map has a V — at low WiFi (relative to LTE), both is
// best; the region has nonzero but partial area.
func TestHeatmapV(t *testing.T) {
	h := RelativeEfficiencyHeatmap(energy.GalaxyS3(), units.MbpsRate(10), units.MbpsRate(10), 40)
	frac := h.MPTCPBestFraction()
	if frac <= 0.02 || frac >= 0.9 {
		t.Errorf("MPTCP-best fraction = %v, want a real but partial region", frac)
	}
	// Right edge (fast WiFi, slow LTE) must favour single path.
	if h.Rel[0][len(h.WiFi)-1] < 1 {
		t.Error("fast-WiFi/slow-LTE corner should not favour both")
	}
}

func TestHeatmapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("1-cell heatmap did not panic")
		}
	}()
	RelativeEfficiencyHeatmap(energy.GalaxyS3(), units.MbpsRate(1), units.MbpsRate(1), 1)
}

// Figure 4: the operating region where MPTCP wins an entire transfer
// grows with the transfer size (fixed overheads amortize).
func TestOperatingRegionGrowsWithSize(t *testing.T) {
	d := energy.GalaxyS3()
	var prev float64 = -1
	for _, size := range []units.ByteSize{1 * units.MB, 4 * units.MB, 16 * units.MB} {
		r := OperatingRegion(d, size, units.MbpsRate(6), units.MbpsRate(12), 24)
		a := r.Area()
		if a <= prev {
			t.Errorf("region area for %v = %v, not larger than previous %v", size, a, prev)
		}
		prev = a
	}
}

func TestOperatingRegionSmallTransferTiny(t *testing.T) {
	d := energy.GalaxyS3()
	r := OperatingRegion(d, 256*units.KB, units.MbpsRate(6), units.MbpsRate(12), 24)
	big := OperatingRegion(d, 64*units.MB, units.MbpsRate(6), units.MbpsRate(12), 24)
	if r.Area() >= big.Area() {
		t.Errorf("256 KB region (%v) should be far smaller than 64 MB region (%v)", r.Area(), big.Area())
	}
}

// The uplink table (a §7-future-work extension): LTE transmit power per
// Mbps dwarfs receive power, so WiFi-only becomes optimal at much lower
// WiFi rates than for downloads.
func TestUplinkTableShiftsThresholds(t *testing.T) {
	down := Generate(energy.GalaxyS3(), DefaultConfig())
	upCfg := DefaultConfig()
	upCfg.Uplink = true
	up := Generate(energy.GalaxyS3(), upCfg)
	for _, lte := range []float64{1, 2, 4.5, 9} {
		_, t2down := down.Thresholds(units.MbpsRate(lte))
		_, t2up := up.Thresholds(units.MbpsRate(lte))
		if t2up >= t2down {
			t.Errorf("LTE=%v: upload WiFi-only threshold %v not below download %v", lte, t2up, t2down)
		}
	}
	// Concrete consequence: at WiFi 1.8 / LTE 4.5 Mbps, a download says
	// Both but an upload says WiFi-only.
	w, l := units.MbpsRate(1.8), units.MbpsRate(4.5)
	if got := down.Best(w, l); got != energy.Both {
		t.Errorf("download Best = %v, want Both", got)
	}
	if got := up.Best(w, l); got != energy.WiFiOnly {
		t.Errorf("upload Best = %v, want WiFi-only", got)
	}
}
