// Checkpoint/fork prefix-sharing for sweep campaigns.
//
// A parameter sweep (κ, τ, hysteresis safety factor) runs the same
// scenario many times, varying one controller tunable. Until the first
// virtual time at which the swept parameter can observably change a
// decision, every run in the sweep executes the identical event sequence
// — often the overwhelming majority of the run. RunSweep simulates that
// shared prefix once: a probed base run records every controller tick,
// each sweep point locates its first divergent tick offline, and a second
// pass re-runs the base up to each divergence barrier, checkpoints the
// whole RunState, and forks one restored copy per point. Forked results
// are bit-identical to individually simulated runs
// (FuzzForkedRunEquivalence), so caching, goldens, and every consumer see
// no difference except wall-clock time.
package scenario

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/link"
	"repro/internal/mptcp"
	"repro/internal/sim"
	"repro/internal/simrng"
	"repro/internal/tcp"
	"repro/internal/units"
	"repro/internal/workload"
)

// SweepPoint is one parameterisation of a sweep family.
type SweepPoint struct {
	// Scenario is the full variant scenario — what an unforked sweep
	// would pass to Run. It defines the point's cache key and is the
	// fallback when the family cannot fork.
	Scenario Scenario
	// Mutate applies the variant parameter to a controller restored at
	// the divergence barrier.
	Mutate func(*core.Controller)
	// DivergesAt replays the base run's tick records against the variant
	// parameter and returns the index of the first record whose outcome
	// would differ, or -1 when the variant is indistinguishable from the
	// base (its result is the base result, no simulation needed).
	DivergesAt func([]core.TickRecord) int
}

// Fork-path counters, exposed through Stats for emptcpsim -v and the
// equivalence tests (which assert the fork path actually executed).
var (
	nForkTrees atomic.Int64
	nForkRuns  atomic.Int64
)

// ForkStats returns how many sweep trees were fork-executed and how many
// forked runs they produced (runs that skipped their shared prefix).
func ForkStats() (trees, runs int64) {
	return nForkTrees.Load(), nForkRuns.Load()
}

// forkCheckpoint owns the pooled snapshot buffers for one divergence
// barrier: the engine, the accountant, both arenas, the controller, the
// connection, both paths, both link processes, and the run's metering
// accumulators. Restoring is in-place and allocation-free.
type forkCheckpoint struct {
	eng   sim.Checkpoint
	acct  energy.AcctSnapshot
	arena tcp.ArenaSnapshot
	rng   simrng.ArenaSnapshot
	ctl   core.CtlSnapshot
	conn  mptcp.ConnSnapshot

	wifiPath, ltePath tcp.PathSnapshot
	wifiLink, lteLink any

	delivered   [energy.NumInterfaces]units.ByteSize
	meterLast   [energy.NumInterfaces]units.ByteSize
	uplinked    [energy.NumInterfaces]units.ByteSize
	meterLastUp [energy.NumInterfaces]units.ByteSize
	lteTouched  bool
	complete    float64
}

var forkCkPool = &sync.Pool{New: func() any { return new(forkCheckpoint) }}

// checkpoint saves the complete run state into ck. The engine must be
// between events (after RunBefore).
func (st *RunState) checkpoint(ck *forkCheckpoint) {
	r := &st.r
	st.eng.Snapshot(&ck.eng)
	st.acct.Snapshot(&ck.acct)
	st.arena.Snapshot(&ck.arena)
	st.rngArena.Snapshot(&ck.rng)
	r.ctls[0].Snapshot(&ck.ctl)
	r.conns[0].Snapshot(&ck.conn)
	r.wifiPath.Snapshot(&ck.wifiPath)
	r.ltePath.Snapshot(&ck.ltePath)
	ck.wifiLink = r.wifiProc.(link.Snapshotter).SnapshotState(ck.wifiLink)
	ck.lteLink = r.lteProc.(link.Snapshotter).SnapshotState(ck.lteLink)
	ck.delivered = r.delivered
	ck.meterLast = r.meterLast
	ck.uplinked = r.uplinked
	ck.meterLastUp = r.meterLastUp
	ck.lteTouched = r.lteTouched
	ck.complete = r.complete
}

// restore rewinds the run to ck.
func (st *RunState) restore(ck *forkCheckpoint) {
	r := &st.r
	st.eng.Restore(&ck.eng)
	st.acct.Restore(&ck.acct)
	st.arena.Restore(&ck.arena)
	st.rngArena.Restore(&ck.rng)
	r.ctls[0].Restore(&ck.ctl)
	r.conns[0].Restore(&ck.conn)
	r.wifiPath.Restore(&ck.wifiPath)
	r.ltePath.Restore(&ck.ltePath)
	r.wifiProc.(link.Snapshotter).RestoreState(ck.wifiLink)
	r.lteProc.(link.Snapshotter).RestoreState(ck.lteLink)
	r.delivered = ck.delivered
	r.meterLast = ck.meterLast
	r.uplinked = ck.uplinked
	r.meterLastUp = ck.meterLastUp
	r.lteTouched = ck.lteTouched
	r.complete = ck.complete
}

// forkEligible reports whether a sweep over base can use the fork
// executor at all. Forking needs an eMPTCP controller (the divergence
// analysis replays its ticks), no in-line observers (a recorder or trace
// would see the prefix once instead of per run), and a workload whose
// launch-time state is fully captured by the checkpoint — the stateless
// file transfers. WebPage and Streaming keep progress in closure
// variables the checkpoint cannot reach.
// ForkEligible reports whether RunSweep would share prefixes for this
// sweep rather than fall back to independent runs. Exported so the
// experiment harness can select an execution path (fork vs lockstep vs
// cache vs scalar) without duplicating the rules.
func ForkEligible(base Scenario, proto Protocol, opt Opts) bool {
	return forkEligible(base, proto, opt)
}

func forkEligible(base Scenario, proto Protocol, opt Opts) bool {
	if proto != EMPTCP || opt.Trace || opt.Recorder != nil {
		return false
	}
	switch base.Work.(type) {
	case workload.FileDownload, workload.FileUpload, workload.Bulk:
		return true
	}
	return false
}

// RunSweep executes one sweep family — a base parameterisation plus its
// points — sharing the simulated prefix between points wherever possible.
// It returns one Result per point, each bit-identical to
// Run(points[i].Scenario, proto, opt). Ineligible sweeps (see
// forkEligible) fall back to exactly that call. With opt.Cache set,
// points are memoized individually under their own content keys — a
// fully-cached sweep never simulates, and a partially-cached one
// simulates the tree once.
func RunSweep(base Scenario, points []SweepPoint, proto Protocol, opt Opts) []Result {
	results := make([]Result, len(points))
	if !forkEligible(base, proto, opt) {
		for i := range points {
			results[i] = Run(points[i].Scenario, proto, opt)
		}
		return results
	}
	var (
		once    sync.Once
		tree    []Result
		treePan []any
		treeOK  bool
	)
	compute := func() { tree, treePan, treeOK = runForkTree(base, points, proto, opt) }
	// A panic in one point's fork (a Mutate or a run blowing up) is
	// contained to that point: siblings still produce their bit-identical
	// results (and populate their cache entries), and the first panic
	// re-raises after the loop so the failure is not swallowed. Only the
	// failing point's cache entry poisons.
	var pendingPanic any
	for i := range points {
		get := func() Result {
			once.Do(compute)
			if !treeOK {
				// The launched base revealed a non-checkpointable piece
				// (custom link process, unexpected wiring) or died before
				// any point ran: simulate the point directly. The
				// enclosing cache Do (if any) already holds this point's
				// entry, so bypass Run's cache lookup.
				return runPooled(points[i].Scenario, proto, opt)
			}
			if treePan != nil {
				if p := treePan[i]; p != nil {
					panic(p)
				}
			}
			return tree[i]
		}
		func() {
			defer func() {
				if r := recover(); r != nil && pendingPanic == nil {
					pendingPanic = r
				}
			}()
			if opt.Cache != nil {
				if k, ok := cacheKey(points[i].Scenario, proto, opt); ok {
					results[i] = opt.Cache.Do(k, get)
					return
				}
			}
			results[i] = get()
		}()
	}
	if pendingPanic != nil {
		panic(pendingPanic)
	}
	return results
}

// runForkTree simulates one sweep family as a prefix-shared tree on a
// pooled RunState. It returns ok=false when the launched run turns out
// not to be checkpointable. A point whose fork panics after the barrier
// snapshot is reported in the panics slice (nil when every point
// completed): the checkpoint rewinds the shared state, sibling points
// fork from it untouched, and every pooled buffer — the RunState and the
// forkCheckpoint holding the sim.Checkpoint — still returns to its pool.
func runForkTree(base Scenario, points []SweepPoint, proto Protocol, opt Opts) ([]Result, []any, bool) {
	st := statePool.Get().(*RunState)
	defer statePool.Put(st)

	// Pass 1: the probed base run, at full batching speed, recording
	// every controller tick.
	st.tickRecs = st.tickRecs[:0]
	r := st.launch(base, proto, opt, func(tr core.TickRecord) {
		st.tickRecs = append(st.tickRecs, tr)
	})
	if len(r.conns) != 1 || len(r.ctls) != 1 {
		return nil, nil, false
	}
	if _, ok := r.wifiProc.(link.Snapshotter); !ok {
		return nil, nil, false
	}
	if _, ok := r.lteProc.(link.Snapshotter); !ok {
		return nil, nil, false
	}
	r.eng.Run()
	baseRes := r.collect()
	recs := st.tickRecs

	// Offline divergence analysis: points indistinguishable from the base
	// take its result outright (Result holds no pointers on untraced runs,
	// so the copies share nothing).
	results := make([]Result, len(points))
	type div struct{ rec, pt int }
	divs := make([]div, 0, len(points))
	for i := range points {
		if d := points[i].DivergesAt(recs); d >= 0 {
			divs = append(divs, div{d, i})
		} else {
			results[i] = baseRes
		}
	}
	nForkTrees.Add(1)
	if len(divs) == 0 {
		return results, nil, true
	}
	sort.Slice(divs, func(a, b int) bool { return divs[a].rec < divs[b].rec })

	// Pass 2: re-launch the identical base (same seed, no probe — probing
	// never changes execution), advance it barrier to barrier, and fork
	// one restored copy per divergent point. Tick records are emitted one
	// sampling interval after they are armed, so stopping strictly before
	// recs[d].At leaves the divergent tick queued for every fork.
	r = st.launch(base, proto, opt, nil)
	ck := forkCkPool.Get().(*forkCheckpoint)
	defer forkCkPool.Put(ck)
	var panics []any
	for gi := 0; gi < len(divs); {
		at := recs[divs[gi].rec].At
		r.eng.RunBefore(at)
		st.checkpoint(ck)
		for ; gi < len(divs) && recs[divs[gi].rec].At == at; gi++ {
			st.restore(ck)
			pi := divs[gi].pt
			if pv := forkPoint(r, &points[pi], &results[pi]); pv != nil {
				// The point died mid-fork. The next restore rewinds the
				// shared state to the barrier, so siblings are unaffected;
				// the panic value is delivered with this point's result.
				if panics == nil {
					panics = make([]any, len(points))
				}
				panics[pi] = pv
			}
		}
		st.restore(ck)
	}
	return results, panics, true
}

// forkPoint runs one restored fork to completion, converting a panic in
// the point's Mutate or simulation into a recoverable per-point value.
func forkPoint(r *run, pt *SweepPoint, out *Result) (pv any) {
	defer func() { pv = recover() }()
	pt.Mutate(r.ctls[0])
	r.eng.Run()
	*out = r.collect()
	nForkRuns.Add(1)
	return nil
}
