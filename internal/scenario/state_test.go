package scenario

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/units"
	"repro/internal/workload"
)

// normNaN replaces NaN completion times (incomplete runs) so that
// reflect.DeepEqual — under which NaN != NaN — can compare results.
func normNaN(r *Result) {
	if math.IsNaN(r.CompletionTime) {
		r.CompletionTime = -1
	}
}

// TestPooledRunsIdentical is the Layer-2 golden test: runs on recycled
// pooled state must be bit-identical — traces included — to runs on
// fresh allocations.
func TestPooledRunsIdentical(t *testing.T) {
	scs := []Scenario{
		StaticLab(s3(), 8, 6, workload.FileDownload{Size: 8 * units.MB}),
		Mobility(s3()),
		RandomBandwidth(s3(), workload.FileDownload{Size: 16 * units.MB}),
	}
	for _, sc := range scs {
		for _, proto := range []Protocol{TCPWiFi, MPTCP, EMPTCP, WiFiFirst} {
			for _, seed := range []int64{0, 3} {
				opt := Opts{Seed: seed, Trace: true}
				fresh := new(RunState).runOne(sc, proto, opt)
				// Exercise real pool recycling: the pooled path has seen
				// other scenarios by the time this run reuses a state.
				pooled := Run(sc, proto, opt)
				again := Run(sc, proto, opt)
				normNaN(&fresh)
				normNaN(&pooled)
				normNaN(&again)
				if !reflect.DeepEqual(fresh, pooled) {
					t.Fatalf("%s/%v seed %d: pooled result differs from fresh\nfresh:  %+v\npooled: %+v",
						sc.Name, proto, seed, fresh, pooled)
				}
				if !reflect.DeepEqual(pooled, again) {
					t.Fatalf("%s/%v seed %d: repeated pooled runs differ", sc.Name, proto, seed)
				}
			}
		}
	}
}
