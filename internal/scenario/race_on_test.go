//go:build race

package scenario

// raceEnabled reports whether the race detector is active. Under -race,
// sync.Pool deliberately drops a fraction of Puts to widen race
// coverage, so pool-allocation counts are not meaningful there.
const raceEnabled = true
