package scenario

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/link"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/simrng"
	"repro/internal/units"
	"repro/internal/workload"
)

// Lab RTTs: the campus server is close by on both paths, with LTE's core
// network adding latency (the paper's Table-2-era AT&T LTE RTTs ran
// 60–90 ms).
const (
	labWiFiRTT = 0.03
	labLTERTT  = 0.07
)

// labLTERate is the effective LTE goodput in the dynamic lab scenarios
// (§4.3–§4.5). The paper's measured MPTCP completion times in those
// experiments imply an effective AT&T LTE rate of roughly 3–5 Mbps at the
// device (far below the cell's nominal peak), and the eMPTCP-vs-MPTCP
// energy margins of Figures 8, 10 and 13 only appear when LTE's per-byte
// cost sits well above good WiFi's, which this rate reproduces.
var labLTERate = units.MbpsRate(4.5)

// constProc adapts a fixed rate to the Scenario link-builder signature.
func constProc(rate units.BitRate) func(*sim.Engine, *simrng.Source) link.Process {
	return func(*sim.Engine, *simrng.Source) link.Process { return link.NewConstant(rate) }
}

// StaticLab is the §4.2 environment: fixed WiFi and LTE bandwidths at a
// fixed location. Good WiFi is >10 Mbps, bad WiFi <1 Mbps in the paper.
func StaticLab(device *energy.DeviceProfile, wifiMbps, lteMbps float64, work workload.Workload) Scenario {
	return Scenario{
		Name:    fmt.Sprintf("static wifi=%.1fMbps lte=%.1fMbps", wifiMbps, lteMbps),
		Device:  device,
		WiFi:    constProc(units.MbpsRate(wifiMbps)),
		LTE:     constProc(units.MbpsRate(lteMbps)),
		WiFiRTT: labWiFiRTT,
		LTERTT:  labLTERTT,
		Work:    work,
		linkSig: fmt.Sprintf("staticlab|%v|%v", wifiMbps, lteMbps),
	}
}

// RandomBandwidth is the §4.3 environment: WiFi link bandwidth modulated
// by a two-state on-off process with exponential holding times of mean
// 40 s, alternating between ≥10 Mbps and ≤1 Mbps, while the device
// downloads a 256 MB file.
func RandomBandwidth(device *energy.DeviceProfile, work workload.Workload) Scenario {
	return Scenario{
		Name:   "random wifi bandwidth changes",
		Device: device,
		WiFi: func(eng *sim.Engine, src *simrng.Source) link.Process {
			return link.NewOnOffModulator(eng, src,
				units.MbpsRate(12), units.MbpsRate(0.8), 40, false)
		},
		LTE:     constProc(labLTERate),
		WiFiRTT: labWiFiRTT,
		LTERTT:  labLTERTT,
		Work:    work,
		linkSig: fmt.Sprintf("randbw|12|0.8|40|%v", labLTERate),
	}
}

// BackgroundTraffic is the §4.4 environment: n interfering nodes on the
// device's WiFi channel, each generating UDP traffic per a two-state
// Markov on-off process with rates λon and λoff.
func BackgroundTraffic(device *energy.DeviceProfile, n int, lambdaOn, lambdaOff float64, work workload.Workload) Scenario {
	return Scenario{
		Name:   fmt.Sprintf("background traffic n=%d λon=%v λoff=%v", n, lambdaOn, lambdaOff),
		Device: device,
		WiFi: func(eng *sim.Engine, src *simrng.Source) link.Process {
			return link.NewContendedWiFi(eng, src, units.MbpsRate(14), n, lambdaOn, lambdaOff)
		},
		LTE:     constProc(labLTERate),
		WiFiRTT: labWiFiRTT,
		LTERTT:  labLTERTT,
		Work:    work,
		linkSig: fmt.Sprintf("bg|14|n=%d|on=%v|off=%v|%v", n, lambdaOn, lambdaOff, labLTERate),
	}
}

// MobilityDuration is the §4.5 measurement window.
const MobilityDuration = 250

// Mobility is the §4.5 environment: the device walks the Figure 11 route
// through the UMass CS building for 250 seconds while bulk-downloading;
// WiFi throughput follows distance to the AP.
func Mobility(device *energy.DeviceProfile) Scenario {
	return Scenario{
		Name:   "mobile scenario (Figure 11 route)",
		Device: device,
		WiFi: func(eng *sim.Engine, src *simrng.Source) link.Process {
			route, ap := phy.UMassCSRoute()
			return link.NewMobileWiFi(eng, phy.DefaultWiFiCell(), route, ap)
		},
		LTE:     constProc(labLTERate),
		WiFiRTT: labWiFiRTT,
		LTERTT:  labLTERTT,
		Work:    workload.Bulk{},
		Horizon: MobilityDuration,
		linkSig: fmt.Sprintf("mobility|umass|%v", labLTERate),
	}
}

// Quality is the §5.1 Good/Bad categorization; the threshold between them
// is 8 Mbps.
type Quality int

// Link quality categories.
const (
	Bad Quality = iota
	Good
)

// QualityThreshold is the Good/Bad boundary of §5.1.
var QualityThreshold = units.MbpsRate(8)

// String names the quality.
func (q Quality) String() string {
	if q == Good {
		return "Good"
	}
	return "Bad"
}

// Categorize maps a measured throughput to its §5.1 category.
func Categorize(rate units.BitRate) Quality {
	if rate >= QualityThreshold {
		return Good
	}
	return Bad
}

// ServerLoc is one of the paper's in-the-wild server deployments.
type ServerLoc int

// The §5 server locations.
const (
	WDC ServerLoc = iota // Washington D.C. (North America)
	AMS                  // Amsterdam (Europe)
	SNG                  // Singapore (Asia)
)

// String names the location as the paper abbreviates it.
func (s ServerLoc) String() string {
	switch s {
	case WDC:
		return "WDC"
	case AMS:
		return "AMS"
	case SNG:
		return "SNG"
	default:
		return fmt.Sprintf("ServerLoc(%d)", int(s))
	}
}

// AllServerLocs lists the three deployments.
var AllServerLocs = []ServerLoc{WDC, AMS, SNG}

// rtts returns the WiFi- and LTE-path RTTs to the server from the US
// client sites.
func (s ServerLoc) rtts() (wifi, lte float64) {
	switch s {
	case AMS:
		return 0.10, 0.14
	case SNG:
		return 0.24, 0.28
	default: // WDC
		return 0.035, 0.075
	}
}

// Wild builds a §5 in-the-wild scenario: per-run constant link rates drawn
// from the requested quality category (Good: 8–25 Mbps, Bad: 0.3–8 Mbps)
// and RTTs set by the server location. The draw is seeded by the run, so
// ten iterations spread over each category as the paper's Figure 14
// scatter does.
func Wild(device *energy.DeviceProfile, wifiQ, lteQ Quality, loc ServerLoc, work workload.Workload) Scenario {
	wifiRTT, lteRTT := loc.rtts()
	draw := func(q Quality, src *simrng.Source) units.BitRate {
		if q == Good {
			return units.MbpsRate(src.Uniform(8.5, 25))
		}
		return units.MbpsRate(src.Uniform(0.3, 7.5))
	}
	return Scenario{
		Name:   fmt.Sprintf("wild %v-WiFi %v-LTE via %v", wifiQ, lteQ, loc),
		Device: device,
		WiFi: func(eng *sim.Engine, src *simrng.Source) link.Process {
			return link.NewConstant(draw(wifiQ, src))
		},
		LTE: func(eng *sim.Engine, src *simrng.Source) link.Process {
			return link.NewConstant(draw(lteQ, src))
		},
		WiFiRTT: wifiRTT,
		LTERTT:  lteRTT,
		Work:    work,
		linkSig: fmt.Sprintf("wild|wifi=%v|lte=%v", wifiQ, lteQ),
	}
}

// WebBrowsing is the §5.4 case study: the CNN page from the Washington DC
// server in a good-WiFi/good-LTE environment.
func WebBrowsing(device *energy.DeviceProfile) Scenario {
	sc := Wild(device, Good, Good, WDC, workload.DefaultWebPage())
	sc.Name = "web browsing (CNN home page, 107 objects)"
	return sc
}

// MobilityMultiAP is the §4.5 route with campus-style multi-AP WiFi
// coverage (an extension toward Croitoru et al., discussed in the paper's
// §6): two additional APs cover the route's out-of-range excursions, with
// roaming handovers between them.
func MobilityMultiAP(device *energy.DeviceProfile) Scenario {
	sc := Mobility(device)
	sc.Name = "mobile scenario with multi-AP roaming"
	sc.WiFi = func(eng *sim.Engine, src *simrng.Source) link.Process {
		route, ap := phy.UMassCSRoute()
		aps := []phy.Point{ap, {X: 72, Y: 14}, {X: 35, Y: 25}}
		return link.NewMultiAPWiFi(eng, phy.DefaultWiFiCell(), route, aps)
	}
	sc.linkSig = fmt.Sprintf("mobility|umass-multiap|72,14|35,25|%v", labLTERate)
	return sc
}
