package scenario

import (
	"reflect"
	"testing"

	"repro/internal/units"
	"repro/internal/workload"
)

// mkSweep builds one sweep family from fuzz-shaped inputs. family selects
// κ/τ/safety; wifiMbps and lteMbps shape the link so different inputs hit
// the establish-early, establish-late, and never-establish regimes.
func mkSweep(family uint8, wifiMbps, lteMbps float64, size units.ByteSize, upload bool) (Scenario, []SweepPoint) {
	var work workload.Workload = workload.FileDownload{Size: size}
	if upload {
		work = workload.FileUpload{Size: size}
	}
	sc := StaticLab(s3(), wifiMbps, lteMbps, work)
	switch family % 3 {
	case 0:
		return KappaSweep(sc, []units.ByteSize{16 * units.KB, 64 * units.KB, 256 * units.KB, 1 * units.MB, 4 * units.MB})
	case 1:
		return TauSweep(sc, []float64{0.5, 1, 3, 6, 12})
	default:
		return SafetySweep(sc, []float64{0, 0.05, 0.10, 0.30, 0.60})
	}
}

// checkForkedEquivalence runs one sweep family both ways and requires the
// forked results to be bit-identical to individually simulated runs.
func checkForkedEquivalence(t *testing.T, family uint8, seed int64, wifiMbps, lteMbps float64, sizeKB uint16, upload bool) {
	t.Helper()
	size := units.ByteSize(sizeKB%8192+16) * units.KB
	base, points := mkSweep(family, wifiMbps, lteMbps, size, upload)
	opt := Opts{Seed: seed}
	if !forkEligible(base, EMPTCP, opt) {
		t.Fatalf("sweep family %d unexpectedly ineligible for forking", family%3)
	}

	trees0, runs0 := ForkStats()
	forked := RunSweep(base, points, EMPTCP, opt)
	trees1, _ := ForkStats()
	if trees1 == trees0 {
		t.Fatalf("RunSweep did not take the fork path")
	}

	for i := range points {
		want := new(RunState).runOne(points[i].Scenario, EMPTCP, opt)
		got := forked[i]
		normNaN(&want)
		normNaN(&got)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("family %d point %d seed %d (wifi %.2g lte %.2g size %v): forked result differs\nunforked: %+v\nforked:   %+v",
				family%3, i, seed, wifiMbps, lteMbps, size, want, got)
		}
	}
	if t.Failed() {
		_, runs1 := ForkStats()
		t.Logf("forked runs this family: %d", runs1-runs0)
	}
}

// TestForkedSweepEquivalence pins the deterministic corners: the ext-sweep
// grids plus regimes where the base never establishes LTE (everything
// reuses the base result) and where it establishes almost immediately.
func TestForkedSweepEquivalence(t *testing.T) {
	cases := []struct {
		family uint8
		wifi   float64
		lte    float64
		sizeKB uint16
		upload bool
	}{
		{0, 4, 4.5, 256, false},    // the ext-sweep κ grid's scenario
		{1, 0.5, 4.5, 8192, false}, // the ext-sweep τ grid's scenario
		{2, 4, 4.5, 4096, false},   // hysteresis on mid WiFi
		{0, 12, 4.5, 128, false},   // fast WiFi: base never establishes
		{1, 12, 4.5, 128, false},
		{2, 0.5, 4.5, 2048, true},  // upload: uplink EIB tables
		{0, 0.5, 4.5, 2048, false}, // bad WiFi: τ rescues everything
	}
	for _, c := range cases {
		for _, seed := range []int64{0, 3} {
			checkForkedEquivalence(t, c.family, seed, c.wifi, c.lte, c.sizeKB, c.upload)
		}
	}
}

// FuzzForkedRunEquivalence is the fork-path analogue of the TCP layer's
// FuzzBatchedRoundEquivalence: any sweep family, any link shape, any
// seed — forked results must be bit-identical to unforked ones.
func FuzzForkedRunEquivalence(f *testing.F) {
	f.Add(uint8(0), int64(0), uint8(40), uint8(45), uint16(256), false)
	f.Add(uint8(1), int64(3), uint8(5), uint8(45), uint16(8192), false)
	f.Add(uint8(2), int64(7), uint8(40), uint8(45), uint16(4096), false)
	f.Add(uint8(0), int64(11), uint8(120), uint8(60), uint16(64), true)
	f.Add(uint8(1), int64(13), uint8(1), uint8(20), uint16(1024), false)
	f.Fuzz(func(t *testing.T, family uint8, seed int64, wifiDMbps, lteDMbps uint8, sizeKB uint16, upload bool) {
		wifi := float64(wifiDMbps%200)/10 + 0.2 // 0.2 .. 20.1 Mbps
		lte := float64(lteDMbps%100)/10 + 0.5   // 0.5 .. 10.4 Mbps
		checkForkedEquivalence(t, family, seed, wifi, lte, sizeKB, upload)
	})
}

// TestForkedResultsNoAliasing mirrors TestPooledRunsIdentical for the
// fork path: results returned by RunSweep must not alias pooled RunState
// or checkpoint memory — later runs on the recycled state must leave
// earlier results untouched.
func TestForkedResultsNoAliasing(t *testing.T) {
	base, points := mkSweep(1, 0.5, 4.5, 2*units.MB, false)
	opt := Opts{Seed: 1}
	first := RunSweep(base, points, EMPTCP, opt)
	saved := make([]Result, len(first))
	copy(saved, first)

	// Churn the pool and the fork checkpoints with different work.
	for seed := int64(2); seed < 5; seed++ {
		RunSweep(base, points, EMPTCP, Opts{Seed: seed})
		Run(points[0].Scenario, MPTCP, Opts{Seed: seed, Trace: true})
	}

	for i := range first {
		normNaN(&first[i])
		normNaN(&saved[i])
		if !reflect.DeepEqual(first[i], saved[i]) {
			t.Fatalf("point %d: result mutated by later pooled runs\nbefore: %+v\nafter:  %+v", i, saved[i], first[i])
		}
	}
}

// TestForkRestoreNoAllocs is the fork-path alloc guard: once a
// checkpoint's buffers have grown, snapshot and restore allocate nothing.
func TestForkRestoreNoAllocs(t *testing.T) {
	base, _ := mkSweep(1, 0.5, 4.5, 2*units.MB, false)
	st := statePool.Get().(*RunState)
	defer statePool.Put(st)
	r := st.launch(base, EMPTCP, Opts{Seed: 1}, nil)
	r.eng.RunBefore(5.0)
	ck := new(forkCheckpoint)
	st.checkpoint(ck) // grow the buffers once
	allocs := testing.AllocsPerRun(100, func() {
		st.checkpoint(ck)
		st.restore(ck)
	})
	if allocs != 0 {
		t.Fatalf("checkpoint+restore allocates %.1f times per cycle, want 0", allocs)
	}
}

// TestRunSweepFallbackMatchesRun covers the ineligible paths: traced
// sweeps and closure-state workloads must fall back to per-point Run with
// identical results.
func TestRunSweepFallbackMatchesRun(t *testing.T) {
	base, points := mkSweep(0, 4, 4.5, 256*units.KB, false)
	opt := Opts{Seed: 2, Trace: true} // tracing disables forking
	if forkEligible(base, EMPTCP, opt) {
		t.Fatal("traced sweep should be fork-ineligible")
	}
	got := RunSweep(base, points, EMPTCP, opt)
	for i := range points {
		want := Run(points[i].Scenario, EMPTCP, opt)
		normNaN(&want)
		normNaN(&got[i])
		if !reflect.DeepEqual(want, got[i]) {
			t.Errorf("fallback point %d differs from Run", i)
		}
	}

	web := StaticLab(s3(), 4, 4.5, workload.DefaultWebPage())
	if forkEligible(web, EMPTCP, Opts{}) {
		t.Fatal("closure-state workload should be fork-ineligible")
	}
}

// TestSweepPointScenariosMatchExt pins the sweep constructors to the
// parameterisations the ext-sweep experiment historically built by hand,
// so cache keys and fallback runs stay compatible.
func TestSweepPointScenariosMatchExt(t *testing.T) {
	sc := StaticLab(s3(), 4, 4.5, workload.FileDownload{Size: 256 * units.KB})
	_, pts := KappaSweep(sc, []units.ByteSize{64 * units.KB, 4 * units.MB})
	for i, want := range []units.ByteSize{64 * units.KB, 4 * units.MB} {
		if got := pts[i].Scenario.CoreConfig.Kappa; got != want {
			t.Errorf("kappa point %d: %v, want %v", i, got, want)
		}
	}
	_, tpts := TauSweep(sc, []float64{1, 12})
	for i, want := range []float64{1, 12} {
		if got := tpts[i].Scenario.CoreConfig.Tau; got != want {
			t.Errorf("tau point %d: %v, want %v", i, got, want)
		}
	}
	_, spts := SafetySweep(sc, []float64{0, 0.3})
	for i, want := range []float64{0, 0.3} {
		if got := spts[i].Scenario.EIBConfig.SafetyFactor; got != want {
			t.Errorf("safety point %d: %v, want %v", i, got, want)
		}
	}
	for _, p := range [][]SweepPoint{pts, tpts, spts} {
		for i := range p {
			if _, ok := cacheKey(p[i].Scenario, EMPTCP, Opts{}); !ok {
				t.Errorf("sweep point %d not cache-eligible", i)
			}
		}
	}
}
