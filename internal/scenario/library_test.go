package scenario

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/simrng"
	"repro/internal/units"
	"repro/internal/workload"
)

func TestStaticLabShape(t *testing.T) {
	sc := StaticLab(s3(), 7.5, 4.5, workload.FileDownload{Size: units.MB})
	if !strings.Contains(sc.Name, "7.5") {
		t.Errorf("name %q missing WiFi rate", sc.Name)
	}
	eng := sim.New()
	if got := sc.WiFi(eng, simrng.New(1)).Rate(); got != units.MbpsRate(7.5) {
		t.Errorf("WiFi rate = %v", got)
	}
	if got := sc.LTE(eng, simrng.New(1)).Rate(); got != units.MbpsRate(4.5) {
		t.Errorf("LTE rate = %v", got)
	}
	if sc.WiFiRTT >= sc.LTERTT {
		t.Error("lab LTE RTT should exceed WiFi RTT")
	}
}

func TestWildDrawBounds(t *testing.T) {
	for _, q := range []Quality{Bad, Good} {
		sc := Wild(s3(), q, q, WDC, workload.FileDownload{Size: units.MB})
		for seed := int64(0); seed < 50; seed++ {
			eng := sim.New()
			src := simrng.New(seed)
			w := sc.WiFi(eng, src.Split(0xaa)).Rate()
			l := sc.LTE(eng, src.Split(0xbb)).Rate()
			for _, r := range []units.BitRate{w, l} {
				if q == Good && r < QualityThreshold {
					t.Fatalf("Good draw %v below the 8 Mbps threshold", r)
				}
				if q == Bad && r >= QualityThreshold {
					t.Fatalf("Bad draw %v at/above the 8 Mbps threshold", r)
				}
			}
		}
	}
}

func TestServerLocRTTOrdering(t *testing.T) {
	// Farther servers have larger RTTs: WDC < AMS < SNG, and the LTE path
	// always adds core-network latency over the WiFi path.
	var prevWiFi float64
	for _, loc := range AllServerLocs {
		w, l := loc.rtts()
		if l <= w {
			t.Errorf("%v: LTE RTT %v not above WiFi RTT %v", loc, l, w)
		}
		if w <= prevWiFi {
			t.Errorf("%v: RTT %v not above previous location's %v", loc, w, prevWiFi)
		}
		prevWiFi = w
	}
}

func TestServerLocStrings(t *testing.T) {
	want := map[ServerLoc]string{WDC: "WDC", AMS: "AMS", SNG: "SNG"}
	for loc, name := range want {
		if loc.String() != name {
			t.Errorf("%d.String() = %q, want %q", loc, loc.String(), name)
		}
	}
	if ServerLoc(9).String() != "ServerLoc(9)" {
		t.Error("unknown location name wrong")
	}
}

func TestQualityStrings(t *testing.T) {
	if Good.String() != "Good" || Bad.String() != "Bad" {
		t.Error("quality names wrong")
	}
}

func TestMobilityScenarioShape(t *testing.T) {
	sc := Mobility(s3())
	if sc.Horizon != MobilityDuration {
		t.Errorf("horizon = %v, want %v", sc.Horizon, MobilityDuration)
	}
	if _, ok := sc.Work.(workload.Bulk); !ok {
		t.Errorf("mobility workload = %T, want Bulk", sc.Work)
	}
}

func TestWebBrowsingScenarioShape(t *testing.T) {
	sc := WebBrowsing(s3())
	w, ok := sc.Work.(workload.WebPage)
	if !ok {
		t.Fatalf("workload = %T, want WebPage", sc.Work)
	}
	if w.Objects != 107 || w.Connections != 6 {
		t.Errorf("page = %d objects / %d connections, want 107/6", w.Objects, w.Connections)
	}
}

func TestLabLTERateInBand(t *testing.T) {
	// DESIGN.md D3: the dynamic-lab effective LTE rate is inferred from
	// the paper's completion times and should stay in the 3–5 Mbps band.
	if labLTERate < units.MbpsRate(3) || labLTERate > units.MbpsRate(5) {
		t.Errorf("labLTERate = %v, outside the documented 3–5 Mbps band", labLTERate)
	}
}

func TestRandomBandwidthUsesPaperParameters(t *testing.T) {
	sc := RandomBandwidth(s3(), workload.FileDownload{Size: units.MB})
	eng := sim.New()
	proc := sc.WiFi(eng, simrng.New(3))
	// §4.3: ≤1 Mbps or ≥10 Mbps depending on state.
	lowSeen, highSeen := false, false
	check := func(r units.BitRate) {
		switch {
		case r <= units.MbpsRate(1):
			lowSeen = true
		case r >= units.MbpsRate(10):
			highSeen = true
		default:
			t.Fatalf("modulator rate %v between the paper's bands", r)
		}
	}
	check(proc.Rate())
	proc.OnChange(check)
	eng.Horizon = 500
	eng.Run()
	if !lowSeen || !highSeen {
		t.Error("modulator did not visit both bands in 500 s")
	}
}
