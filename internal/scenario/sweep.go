// Sweep-family constructors: the divergence-barrier rules for each
// controller tunable the repository sweeps. Each family states, per sweep
// point, how to detect the first base-run tick whose outcome the variant
// parameter would change, and how to mutate a restored controller into
// the variant. The rules lean on structural facts about the controller:
//
//   - κ is read only by pre-establishment ticks, and the establishment
//     predicate is monotone in κ (a smaller κ establishes no later), so
//     replaying the recorded gate inputs finds the exact first tick whose
//     establishment decision flips.
//   - τ only feeds the same gate through the tauFired flag; the timer's
//     fire time is known in advance, so the flag's value at any recorded
//     tick is computable offline (respecting the first-tick event-order
//     edge: the first tick is armed before the τ timer is scheduled, so a
//     τ landing exactly on it loses the tie; every later tick is armed
//     after, so τ wins those ties).
//   - the hysteresis safety factor only affects Table.Decide; Table.Best
//     (the establishment query) depends on the raw thresholds alone, so
//     variants share the prefix through establishment and diverge at the
//     first path-usage decision that differs, which replaying Decide plus
//     the MinRate override against the recorded inputs locates exactly.
package scenario

import (
	"repro/internal/core"
	"repro/internal/eib"
	"repro/internal/energy"
	"repro/internal/units"
	"repro/internal/workload"
)

// coreConfigOf returns the scenario's effective controller config.
func coreConfigOf(sc Scenario) core.Config {
	if sc.CoreConfig != nil {
		return *sc.CoreConfig
	}
	return core.DefaultConfig()
}

// establishes replays the §3.5 establishment predicate from a recorded
// tick, with the gate re-evaluated for the variant's (κ, tauFired).
func establishes(rec *core.TickRecord, kappa units.ByteSize, tauFired bool) bool {
	gate := rec.WiFiBytes >= kappa || tauFired
	return gate && !rec.Idle && !(rec.EIBWiFiOnly && rec.HoldsFloor)
}

// KappaSweep builds the sweep family for the delayed-establishment byte
// threshold. It returns the base parameterisation (the largest κ — the
// establishment gate is monotone, so the base is the last to establish
// and every variant diverges off it cleanly) and one point per value.
func KappaSweep(sc Scenario, kappas []units.ByteSize) (Scenario, []SweepPoint) {
	cfg := coreConfigOf(sc)
	baseCfg := cfg
	if len(kappas) > 0 {
		baseCfg.Kappa = kappas[0]
		for _, k := range kappas[1:] {
			if k > baseCfg.Kappa {
				baseCfg.Kappa = k
			}
		}
	}
	base := sc
	base.CoreConfig = &baseCfg
	points := make([]SweepPoint, len(kappas))
	for i, k := range kappas {
		vcfg := cfg
		vcfg.Kappa = k
		vsc := sc
		vsc.CoreConfig = &vcfg
		points[i] = SweepPoint{
			Scenario: vsc,
			Mutate:   func(c *core.Controller) { c.SetKappa(k) },
			DivergesAt: func(recs []core.TickRecord) int {
				for j := range recs {
					rec := &recs[j]
					if rec.Control {
						break
					}
					if establishes(rec, k, rec.TauFired) != rec.Established {
						return j
					}
					if rec.Established {
						// Both establish here; κ is never read again.
						break
					}
				}
				return -1
			},
		}
	}
	return base, points
}

// TauSweep builds the sweep family for the establishment escape timer.
// The base runs the largest τ; a variant whose timer fires earlier
// diverges at the first tick that would establish under its already-
// elapsed timer, where the mutation marks the timer fired and cancels
// the base timer event.
func TauSweep(sc Scenario, taus []float64) (Scenario, []SweepPoint) {
	cfg := coreConfigOf(sc)
	baseCfg := cfg
	if len(taus) > 0 {
		baseCfg.Tau = taus[0]
		for _, tau := range taus[1:] {
			if tau > baseCfg.Tau {
				baseCfg.Tau = tau
			}
		}
	}
	base := sc
	base.CoreConfig = &baseCfg
	points := make([]SweepPoint, len(taus))
	for i, tau := range taus {
		vcfg := cfg
		vcfg.Tau = tau
		vsc := sc
		vsc.CoreConfig = &vcfg
		points[i] = SweepPoint{
			Scenario: vsc,
			Mutate:   func(c *core.Controller) { c.ForceTauFired() },
			DivergesAt: func(recs []core.TickRecord) int {
				for j := range recs {
					rec := &recs[j]
					if rec.Control {
						break
					}
					// The variant timer's state at this tick, from the
					// recorded tick time and the scheduling tie rules. A
					// non-positive τ is treated as fired from the start,
					// matching the controller's construction-time rule.
					fired := tau <= 0 || tau < rec.At || (tau == rec.At && j > 0)
					if establishes(rec, vcfg.Kappa, fired) != rec.Established {
						return j
					}
					if rec.Established {
						break
					}
				}
				return -1
			},
		}
	}
	return base, points
}

// SafetySweep builds the sweep family for the EIB hysteresis safety
// factor. The base runs the scenario's own factor; variants share its
// prefix through establishment (Table.Best ignores the factor) and
// diverge at the first path-usage decision the variant table would make
// differently.
func SafetySweep(sc Scenario, safeties []float64) (Scenario, []SweepPoint) {
	ccfg := coreConfigOf(sc)
	ecfg := eib.DefaultConfig()
	if sc.EIBConfig != nil {
		ecfg = *sc.EIBConfig
	}
	// The controller's table is direction-specific; replicate the
	// per-connection Uplink override to replay its decisions.
	_, uplink := sc.Work.(workload.FileUpload)
	points := make([]SweepPoint, len(safeties))
	for i, s := range safeties {
		vcfg := ecfg
		vcfg.SafetyFactor = s
		vsc := sc
		vscCfg := vcfg
		vsc.EIBConfig = &vscCfg
		tblCfg := vcfg
		tblCfg.Uplink = uplink
		points[i] = SweepPoint{
			Scenario: vsc,
			Mutate: func(c *core.Controller) {
				c.SetTable(eib.GenerateCached(sc.Device, tblCfg))
			},
			DivergesAt: func(recs []core.TickRecord) int {
				tbl := eib.GenerateCached(sc.Device, tblCfg)
				for j := range recs {
					rec := &recs[j]
					if !rec.Control {
						continue
					}
					next := tbl.Decide(rec.Current, rec.Wifi, rec.LTE)
					// Replay Controller.enforceMinRate on the recorded
					// backlog.
					if ccfg.MinRate > 0 && rec.Backlog > 0 {
						agg := units.BitRate(0)
						if next.UseWiFi {
							agg += rec.Wifi
						}
						if next.UseLTE {
							agg += rec.LTE
						}
						if agg < ccfg.MinRate {
							next = energy.Both
						}
					}
					if next != rec.Next {
						return j
					}
				}
				return -1
			},
		}
	}
	return sc, points
}
