package scenario

import (
	"reflect"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/sim"
	"repro/internal/simrng"
	"repro/internal/units"
	"repro/internal/workload"
)

// countingPools swaps the package pools for counting ones so the tests
// can assert that error paths return every pooled object. GC is disabled
// for the duration: sync.Pool may legitimately drop items at a GC, which
// would make the counts meaningless.
func countingPools(t *testing.T) (states, cks *atomic.Int64) {
	t.Helper()
	oldState, oldCk := statePool, forkCkPool
	oldGC := debug.SetGCPercent(-1)
	states, cks = new(atomic.Int64), new(atomic.Int64)
	statePool = &sync.Pool{New: func() any { states.Add(1); return new(RunState) }}
	forkCkPool = &sync.Pool{New: func() any { cks.Add(1); return new(forkCheckpoint) }}
	t.Cleanup(func() {
		statePool, forkCkPool = oldState, oldCk
		debug.SetGCPercent(oldGC)
	})
	return states, cks
}

// TestForkPointPanicContained injects a panic into each sweep point's
// Mutate in turn and asserts the three error-path guarantees: the panic
// still surfaces from RunSweep, sibling points produce results
// bit-identical to fresh unforked runs (the shared base run is not
// poisoned), and neither the pooled RunState nor the fork checkpoint —
// the owner of the pooled sim.Checkpoint — leaks across failures.
func TestForkPointPanicContained(t *testing.T) {
	states, cks := countingPools(t)

	mk := func() (Scenario, []SweepPoint) {
		return mkSweep(0, 4, 4.5, 256*units.KB, false)
	}
	base, refPoints := mk()
	opt := Opts{Seed: 0}
	if !forkEligible(base, EMPTCP, opt) {
		t.Fatal("sweep unexpectedly ineligible")
	}
	// Fresh-state reference results, bypassing pools and cache entirely.
	want := make([]Result, len(refPoints))
	for i := range refPoints {
		want[i] = new(RunState).runOne(refPoints[i].Scenario, EMPTCP, opt)
		normNaN(&want[i])
	}

	for sab := range refPoints {
		_, runs0 := ForkStats()
		cache := NewRunCache()
		base, points := mk()
		origMutate := points[sab].Mutate
		var mutated atomic.Bool
		points[sab].Mutate = func(c *core.Controller) {
			mutated.Store(true)
			panic("injected mid-point")
		}

		var got []Result
		pv := func() (pv any) {
			defer func() { pv = recover() }()
			got = RunSweep(base, points, EMPTCP, Opts{Seed: 0, Cache: cache})
			return nil
		}()
		_, runs1 := ForkStats()

		if !mutated.Load() {
			// This point never diverges from the base, so its Mutate (and
			// the injection) never runs; the sweep must simply succeed.
			if pv != nil {
				t.Fatalf("point %d: unexpected panic %v", sab, pv)
			}
			continue
		}
		if pv == nil {
			t.Fatalf("point %d: injected panic did not surface", sab)
		}
		if pv != "injected mid-point" {
			t.Fatalf("point %d: panic value %v", sab, pv)
		}
		if got != nil {
			t.Fatalf("point %d: RunSweep returned results despite panicking", sab)
		}
		if runs1 <= runs0 {
			t.Fatalf("point %d: fork path did not execute", sab)
		}

		// Sibling results were computed and cached during the panicking
		// sweep; fetching them through the same cache must not
		// re-simulate and must be bit-identical to fresh runs.
		_, misses0 := cache.Stats()
		for i := range refPoints {
			if i == sab {
				continue
			}
			res := Run(refPoints[i].Scenario, EMPTCP, Opts{Seed: 0, Cache: cache})
			normNaN(&res)
			if !reflect.DeepEqual(res, want[i]) {
				t.Errorf("point %d (sabotaged %d): sibling result differs from fresh run\nwant: %+v\ngot:  %+v",
					i, sab, want[i], res)
			}
		}
		if _, misses1 := cache.Stats(); misses1 != misses0 {
			t.Errorf("sabotaged %d: sibling lookups re-simulated (%d new misses) — base result was poisoned",
				sab, misses1-misses0)
		}

		// The sabotaged point's own cache entry is poisoned (a panicking
		// run is a bug, not a transient) ...
		repanic := func() (pv any) {
			defer func() { pv = recover() }()
			Run(refPoints[sab].Scenario, EMPTCP, Opts{Seed: 0, Cache: cache})
			return nil
		}()
		if repanic != "injected mid-point" {
			t.Errorf("sabotaged %d: poisoned entry re-panicked with %v", sab, repanic)
		}
		// ... but without the cache the point simulates normally.
		clean := Run(refPoints[sab].Scenario, EMPTCP, Opts{Seed: 0})
		normNaN(&clean)
		if !reflect.DeepEqual(clean, want[sab]) {
			t.Errorf("sabotaged %d: uncached rerun differs from fresh run", sab)
		}
		points[sab].Mutate = origMutate
	}

	// Every sweep above (plus the cache-probe runs) must have recycled
	// the same pooled objects: failures may not drain the pools. Under
	// -race sync.Pool drops Puts at random, so only the bit-identity
	// assertions above are meaningful there.
	if raceEnabled {
		return
	}
	if n := states.Load(); n > 2 {
		t.Errorf("RunState pool allocated %d states across panicking sweeps, want ≤ 2", n)
	}
	if n := cks.Load(); n > 2 {
		t.Errorf("fork checkpoint pool allocated %d checkpoints across panicking sweeps, want ≤ 2", n)
	}
}

// TestRunPooledPanicReturnsState pins the runPooled error path: a run
// that panics mid-launch must still return its RunState to the pool, and
// the recycled state must keep producing bit-identical results.
func TestRunPooledPanicReturnsState(t *testing.T) {
	states, _ := countingPools(t)

	good := StaticLab(s3(), 4, 4.5, workload.FileDownload{Size: 64 * units.KB})
	ref := new(RunState).runOne(good, EMPTCP, Opts{Seed: 5})
	normNaN(&ref)

	bad := good
	bad.WiFi = func(*sim.Engine, *simrng.Source) link.Process { panic("launch failure") }

	for i := 0; i < 8; i++ {
		pv := func() (pv any) {
			defer func() { pv = recover() }()
			Run(bad, EMPTCP, Opts{Seed: int64(i)})
			return nil
		}()
		if pv != "launch failure" {
			t.Fatalf("iteration %d: panic %v", i, pv)
		}
		// A healthy run on the recycled (mid-launch-abandoned) state.
		res := Run(good, EMPTCP, Opts{Seed: 5})
		normNaN(&res)
		if !reflect.DeepEqual(res, ref) {
			t.Fatalf("iteration %d: pooled run after panic differs from fresh-state run", i)
		}
	}
	if n := states.Load(); !raceEnabled && n > 2 {
		t.Errorf("pool allocated %d states across %d panicking runs, want ≤ 2 (states leaked)", n, 8)
	}
}
