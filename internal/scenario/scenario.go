// Package scenario assembles complete experiments: a device (energy
// model + radios), two wireless links with time-varying bandwidth, an
// application workload, and one of the protocols under test. It is the
// simulator's equivalent of the paper's testbed — the Android phone, the
// lab AP whose bandwidth the authors modulate, and the wired MPTCP server.
//
// A Run drives the discrete-event engine, meters per-interface throughput
// into the energy accountant every 100 ms (the power-monitor role), and
// returns the quantities the paper's figures plot: total energy, download
// time, downloaded bytes, per-byte energy, and optional time-series
// traces.
package scenario

import (
	"fmt"
	"math"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/eib"
	"repro/internal/energy"
	"repro/internal/link"
	"repro/internal/mptcp"
	"repro/internal/sim"
	"repro/internal/simrng"
	"repro/internal/stats"
	"repro/internal/tcp"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

// Protocol selects the transport strategy under test.
type Protocol int

// The protocols the paper compares.
const (
	// TCPWiFi is single-path TCP over the WiFi interface.
	TCPWiFi Protocol = iota
	// TCPLTE is single-path TCP over the LTE interface.
	TCPLTE
	// MPTCP is standard full-MPTCP over both interfaces with LIA.
	MPTCP
	// EMPTCP is the paper's energy-aware MPTCP.
	EMPTCP
	// WiFiFirst is MPTCP with the cellular subflow in backup mode,
	// activated only on WiFi disassociation (Raiciu et al., §4.6).
	WiFiFirst
	// MDP is the Markov-decision-process scheduler of Pluntke et al.,
	// generated offline and simulated (§4.6).
	MDP
	// SinglePath is MPTCP's Single-Path mode (Paasch et al., §2.1/§6):
	// one subflow at a time, with a new subflow established over the
	// other interface only after the active interface goes down. With
	// WiFi as the primary it avoids the cellular fixed overhead entirely
	// while WiFi is associated — and shares WiFi-First's inability to
	// react to throughput collapse without disassociation.
	SinglePath
)

// String names the protocol as the paper's figures do.
func (p Protocol) String() string {
	switch p {
	case TCPWiFi:
		return "TCP over WiFi"
	case TCPLTE:
		return "TCP over LTE"
	case MPTCP:
		return "MPTCP"
	case EMPTCP:
		return "eMPTCP"
	case WiFiFirst:
		return "MPTCP w/ WiFi First"
	case MDP:
		return "MDP scheduler"
	case SinglePath:
		return "Single-Path mode"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// AllProtocols lists every implemented protocol.
var AllProtocols = []Protocol{TCPWiFi, TCPLTE, MPTCP, EMPTCP, WiFiFirst, MDP, SinglePath}

// Scenario describes one experimental environment.
type Scenario struct {
	Name   string
	Device *energy.DeviceProfile
	// WiFi and LTE build the links' bandwidth processes on the engine.
	// WiFi may return a *link.MobileWiFi to expose association events.
	WiFi func(eng *sim.Engine, src *simrng.Source) link.Process
	LTE  func(eng *sim.Engine, src *simrng.Source) link.Process
	// WiFiRTT and LTERTT are the paths' base RTTs in seconds.
	WiFiRTT float64
	LTERTT  float64
	// Work is the application workload.
	Work workload.Workload
	// Horizon, when positive, cuts the run off after that many seconds
	// (the mobility experiments measure a fixed 250 s window).
	Horizon float64
	// CoreConfig, when non-nil, overrides eMPTCP's controller parameters
	// (κ, τ, predictor smoothing, the MinRate extension). Nil uses the
	// paper's defaults.
	CoreConfig *core.Config
	// EIBConfig, when non-nil, overrides the energy-information-base
	// generation parameters (grid, hysteresis safety factor). The Uplink
	// direction is still forced per connection. Nil uses eib.DefaultConfig.
	EIBConfig *eib.Config
	// AppPower is a constant application power draw (browser rendering,
	// video decode) charged while the session is active — the component
	// the paper's §5.4 web measurements include. Zero by default.
	AppPower units.Power

	// linkSig is a canonical description of how WiFi and LTE were
	// constructed, set only by this package's library constructors. The
	// link builders are funcs and cannot be digested; the signature
	// stands in for them in the run-cache key. Custom scenarios built
	// outside the library leave it empty and are never cached.
	linkSig string
}

// Opts carries per-run options.
type Opts struct {
	// Seed drives all randomness in the run.
	Seed int64
	// Trace records energy and throughput time series.
	Trace bool
	// TraceStep is the trace sampling period (default 1 s).
	TraceStep float64
	// Recorder, when non-nil, receives structured trace events from the
	// whole stack (kernel, TCP, MPTCP, radios, controller). Recorders
	// implementing trace.Sampler additionally get periodic Sample calls
	// on their own grid. One recorder must serve exactly one run.
	Recorder trace.Recorder
	// Cache, when non-nil, memoizes results across runs: a repeated
	// (scenario, protocol, seed, options) combination returns the cached
	// Result instead of re-simulating. Only library scenarios are
	// eligible (see Scenario.linkSig); runs with a Recorder always
	// execute, since the recorder observes events in-line. Cached
	// results are shared — callers must treat trace pointers as
	// read-only, which every consumer in this repository does.
	Cache *RunCache
}

// Result is what one run measures.
type Result struct {
	Protocol  Protocol
	Completed bool
	// CompletionTime is when the workload finished (download time); NaN
	// if it did not complete within the horizon.
	CompletionTime float64
	// Elapsed is the simulated time covered (completion or horizon).
	Elapsed float64
	// Energy is the total energy consumed, including cellular tails.
	Energy units.Energy
	// ByIface breaks the radio energy out per interface.
	ByIface [energy.NumInterfaces]units.Energy
	// BaseEnergy is the device-base component.
	BaseEnergy units.Energy
	// Downloaded is the total bytes delivered to the application.
	Downloaded units.ByteSize
	// Uploaded is the total bytes pushed from the device.
	Uploaded units.ByteSize
	// JPerByte is Energy / (Downloaded + Uploaded).
	JPerByte float64
	// BatteryPct is the energy expressed as a percentage of the device's
	// battery capacity.
	BatteryPct float64
	// Switches counts eMPTCP path-set changes (0 for other protocols).
	Switches int
	// LTEUsed reports whether the LTE radio was ever activated.
	LTEUsed bool
	// EnergyTrace and ThroughputTrace are present when Opts.Trace is set.
	EnergyTrace     *stats.TimeSeries
	ThroughputTrace [energy.NumInterfaces]*stats.TimeSeries
	// Decisions is eMPTCP's recorded path-set history (Trace runs only).
	Decisions []core.Decision
}

// meterInterval is the power-monitor sampling period.
const meterInterval = 0.1

// defaultHorizon bounds runs whose workload never completes.
const defaultHorizon = 14400

// run wires one protocol into one scenario.
type run struct {
	sc    Scenario
	proto Protocol
	opt   Opts

	eng   *sim.Engine
	src   *simrng.Source
	acct  *energy.Accountant
	arena *tcp.Arena

	wifiProc link.Process
	lteProc  link.Process
	wifiPath *tcp.Path
	ltePath  *tcp.Path

	delivered   [energy.NumInterfaces]units.ByteSize
	meterLast   [energy.NumInterfaces]units.ByteSize
	uplinked    [energy.NumInterfaces]units.ByteSize
	meterLastUp [energy.NumInterfaces]units.ByteSize
	lteTouched  bool

	probe func(core.TickRecord)

	conns     []*mptcp.Connection
	ctls      []*core.Controller
	mdpPol    *baseline.MDPPolicy
	wifiAssoc associationSource
	wfRules   []*wfState
	complete  float64

	energyTrace *stats.TimeSeries
	thrTrace    [energy.NumInterfaces]*stats.TimeSeries
}

// wfState tracks one WiFi-First connection's backup bookkeeping.
type wfState struct {
	rule *baseline.WiFiFirst
	lte  *tcp.Subflow
}

// associationSource is implemented by WiFi processes that expose
// association events (link.MobileWiFi, link.MultiAPWiFi); the WiFi-First
// and Single-Path baselines key off them.
type associationSource interface {
	Associated() bool
	OnAssociationChange(func(bool))
}

// Run executes one scenario under one protocol and returns its Result.
// Run state (engine, accountant, subflow arena, scratch buffers) is drawn
// from a process-wide pool and reused between runs; a pooled run is
// bit-identical to a fresh-state one. With Opts.Cache set, cache-eligible
// runs (see Opts.Cache) are memoized under a content digest of their
// inputs and simulate at most once per cache.
func Run(sc Scenario, proto Protocol, opt Opts) Result {
	if opt.Cache != nil {
		if k, ok := cacheKey(sc, proto, opt); ok {
			return opt.Cache.Do(k, func() Result { return runPooled(sc, proto, opt) })
		}
	}
	return runPooled(sc, proto, opt)
}

func runPooled(sc Scenario, proto Protocol, opt Opts) Result {
	st := statePool.Get().(*RunState)
	// Deferred so a panicking run still returns its state to the pool:
	// reset rebuilds every piece from scratch, so a state abandoned
	// mid-run is as reusable as a clean one, and the pool does not
	// drain one slot per failure (the allocation mirror of PR 6's
	// round-record leak).
	defer statePool.Put(st)
	return st.runOne(sc, proto, opt)
}

// runOne executes one run on this state's reused allocations.
func (st *RunState) runOne(sc Scenario, proto Protocol, opt Opts) Result {
	r := st.launch(sc, proto, opt, nil)
	r.eng.Run()
	return r.collect()
}

// launch assembles a run up to (but not including) driving the engine:
// links, paths, the protocol wiring, the power-monitor ticker, and the
// workload are all in place, with the horizon set, so the caller can run
// the engine in stages (the fork executor pauses at divergence barriers).
// probe, when non-nil, is attached to every eMPTCP controller the run
// creates; probed execution is bit-identical to unprobed.
func (st *RunState) launch(sc Scenario, proto Protocol, opt Opts, probe func(core.TickRecord)) *run {
	if sc.Device == nil || sc.WiFi == nil || sc.LTE == nil || sc.Work == nil {
		panic("scenario: incomplete scenario")
	}
	if opt.TraceStep <= 0 {
		opt.TraceStep = 1
	}
	r := st.reset(sc, proto, opt)
	r.probe = probe
	r.acct.SetExtraBase(sc.AppPower)
	r.acct.SetSessionActive(true)
	if opt.Recorder != nil {
		r.eng.SetRecorder(opt.Recorder)
		r.acct.SetRecorder(opt.Recorder)
		if s, ok := opt.Recorder.(trace.Sampler); ok {
			if every := s.SampleEvery(); every > 0 {
				r.eng.Tick(every, func() { s.Sample(r.eng.Now()) })
			}
		}
	}

	r.wifiProc = sc.WiFi(r.eng, r.src.Split(0xaa))
	r.lteProc = sc.LTE(r.eng, r.src.Split(0xbb))
	if m, ok := r.wifiProc.(associationSource); ok {
		r.wifiAssoc = m
	}
	r.wifiPath = &tcp.Path{Name: "wifi", Capacity: r.wifiProc, BaseRTT: sc.WiFiRTT}
	r.ltePath = &tcp.Path{Name: "lte", Capacity: r.lteProc, BaseRTT: sc.LTERTT}

	if proto == MDP {
		r.mdpPol = baseline.GenerateMDP(baseline.DefaultMDPConfig(sc.Device))
	}

	// The power monitor: meter throughput into the accountant.
	r.eng.Tick(meterInterval, r.flushMeter)

	// Launch the workload.
	done := func(at float64) {
		r.complete = at
		r.eng.Stop()
	}
	sc.Work.Launch(r.eng, r.src.Split(0xcc), r.open, done)

	horizon := sc.Horizon
	if horizon <= 0 {
		horizon = defaultHorizon
	}
	r.eng.Horizon = horizon
	return r
}

// flushMeter advances the accountant to now with the throughput observed
// since the last flush.
func (r *run) flushMeter() {
	now := r.eng.Now()
	dt := now - r.acct.Now()
	if dt <= 0 {
		return
	}
	var thr energy.Throughputs
	for i := 0; i < energy.NumInterfaces; i++ {
		deltaDown := r.delivered[i] - r.meterLast[i]
		r.meterLast[i] = r.delivered[i]
		deltaUp := r.uplinked[i] - r.meterLastUp[i]
		r.meterLastUp[i] = r.uplinked[i]
		if deltaDown <= 0 && deltaUp <= 0 {
			continue
		}
		if deltaDown > 0 {
			thr.Down[i] = units.BitRate(deltaDown.Bits() / dt)
		}
		if deltaUp > 0 {
			thr.Up[i] = units.BitRate(deltaUp.Bits() / dt)
		}
		// Data observed on a radio that demoted to idle (e.g. WiFi after
		// a long HTTP idle gap) wakes it; promotion skew is bounded by
		// one meter interval.
		if r.acct.Radio(energy.Interface(i)).State() == energy.Idle {
			r.acct.Radio(energy.Interface(i)).Activate(r.acct.Now())
		}
	}
	// Optional weak-signal model: feed the WiFi link's current quality
	// (capacity over nominal) to the radio before integrating.
	if nom := r.sc.Device.Radios[energy.WiFi].WeakSignalNominal; nom > 0 {
		r.acct.Radio(energy.WiFi).SetQuality(float64(r.wifiProc.Rate()) / float64(nom))
	}
	r.acct.Advance(now, thr)
	if r.energyTrace != nil {
		r.energyTrace.Add(now, r.acct.Total().Joules())
		for i := range r.thrTrace {
			r.thrTrace[i].Add(now, (thr.Down[i] + thr.Up[i]).Mbit())
		}
	}
}

// radioControl implements core.RadioControl for eMPTCP.
type radioControl struct{ r *run }

func (rc radioControl) Activate(iface energy.Interface) float64 {
	rc.r.flushMeter()
	// A radio-state change alters dwell accounting and (via promotion
	// delay) upcoming subflow behaviour: stop any open round batch at its
	// next boundary.
	for _, c := range rc.r.conns {
		for _, sf := range c.Subflows() {
			sf.InvalidateBatch()
		}
	}
	if iface == energy.LTE {
		rc.r.lteTouched = true
	}
	readyAt := rc.r.acct.Radio(iface).Activate(rc.r.eng.Now())
	return math.Max(0, readyAt-rc.r.eng.Now())
}

// connAdapter exposes protocol-managed transfers as a workload.Conn.
// Downloads and uploads ride separate MPTCP connections (each metered to
// the matching direction of the energy model), created lazily.
type connAdapter struct {
	r    *run
	down *mptcp.Connection
	up   *mptcp.Connection
}

func (a *connAdapter) Get(size units.ByteSize, onComplete func(at float64)) {
	if a.down == nil {
		a.down = a.r.openConn(false)
	}
	a.down.Download(size, onComplete)
}

func (a *connAdapter) Put(size units.ByteSize, onComplete func(at float64)) {
	if a.up == nil {
		a.up = a.r.openConn(true)
	}
	a.up.Download(size, onComplete)
}

// open creates one protocol-managed connection handle.
func (r *run) open() workload.Conn { return &connAdapter{r: r} }

// openConn wires one MPTCP connection for the protocol under test.
// Uplink connections meter their bytes into the uplink throughput vector,
// whose per-Mbps radio power is far higher on cellular.
func (r *run) openConn(uplink bool) *mptcp.Connection {
	opts := mptcp.DefaultOptions()
	opts.Arena = r.arena
	if r.proto == TCPWiFi || r.proto == TCPLTE {
		opts.Coupling = mptcp.Uncoupled
	}
	conn := mptcp.New(r.eng, r.src.Split(uint64(len(r.conns))+0xd0), opts)
	conn.OnDelivered = func(sf *tcp.Subflow, iface energy.Interface, n units.ByteSize) {
		if iface >= 0 && int(iface) < energy.NumInterfaces {
			if uplink {
				r.uplinked[iface] += n
			} else {
				r.delivered[iface] += n
			}
		}
	}
	r.conns = append(r.conns, conn)
	rc := radioControl{r}

	switch r.proto {
	case TCPWiFi:
		rc.Activate(energy.WiFi)
		conn.AddSubflow("wifi", energy.WiFi, r.wifiPath, nil, 0)

	case TCPLTE:
		delay := rc.Activate(energy.LTE)
		conn.AddSubflow("lte", energy.LTE, r.ltePath, nil, delay)

	case MPTCP:
		rc.Activate(energy.WiFi)
		conn.AddSubflow("wifi", energy.WiFi, r.wifiPath, nil, 0)
		delay := rc.Activate(energy.LTE)
		conn.AddSubflow("lte", energy.LTE, r.ltePath, nil, delay)

	case EMPTCP:
		rc.Activate(energy.WiFi)
		wifiSF := conn.AddSubflow("wifi", energy.WiFi, r.wifiPath, nil, 0)
		// Upload connections decide from the uplink table: cellular
		// transmit power shifts every threshold.
		eibCfg := eib.DefaultConfig()
		if r.sc.EIBConfig != nil {
			eibCfg = *r.sc.EIBConfig
		}
		eibCfg.Uplink = uplink
		table := eib.GenerateCached(r.sc.Device, eibCfg)
		lteCfg := tcp.DefaultConfig()
		lteCfg.DisableIdleCwndReset = true // §3.6 fast-reuse on resumed subflows
		coreCfg := core.DefaultConfig()
		if r.sc.CoreConfig != nil {
			coreCfg = *r.sc.CoreConfig
		}
		ctl := core.New(r.eng, coreCfg, table, conn, wifiSF, rc,
			func(extraDelay float64) *tcp.Subflow {
				return conn.AddSubflow("lte", energy.LTE, r.ltePath, &lteCfg, extraDelay)
			})
		ctl.Record = r.opt.Trace
		ctl.Probe = r.probe
		r.ctls = append(r.ctls, ctl)

	case WiFiFirst:
		rc.Activate(energy.WiFi)
		conn.AddSubflow("wifi", energy.WiFi, r.wifiPath, nil, 0)
		// "It also needlessly activates the cellular interface at
		// connection establishment" (§4.6).
		delay := rc.Activate(energy.LTE)
		lte := conn.AddSubflow("lte", energy.LTE, r.ltePath, nil, delay)
		associated := r.wifiAssoc == nil || r.wifiAssoc.Associated()
		st := &wfState{rule: baseline.NewWiFiFirst(associated), lte: lte}
		r.wfRules = append(r.wfRules, st)
		if associated {
			conn.SetBackup(lte, true)
		}
		if r.wifiAssoc != nil {
			r.wifiAssoc.OnAssociationChange(func(assoc bool) {
				if st.rule.OnAssociation(assoc) {
					d := rc.Activate(energy.LTE)
					r.eng.After(d, func() {
						if st.rule.UseCellular() {
							conn.SetBackup(st.lte, false)
						}
					})
				} else {
					conn.SetBackup(st.lte, true)
				}
			})
		}

	case MDP:
		rc.Activate(energy.WiFi)
		wifiSF := conn.AddSubflow("wifi", energy.WiFi, r.wifiPath, nil, 0)
		var lteSF *tcp.Subflow
		r.eng.Tick(r.mdpPol.Epoch(), func() {
			switch r.mdpPol.Decide(wifiSF.Throughput()) {
			case energy.WiFiOnly:
				if lteSF != nil {
					conn.SetBackup(lteSF, true)
				}
				conn.SetBackup(wifiSF, false)
			case energy.LTEOnly:
				if lteSF == nil {
					d := rc.Activate(energy.LTE)
					lteSF = conn.AddSubflow("lte", energy.LTE, r.ltePath, nil, d)
				} else {
					d := rc.Activate(energy.LTE)
					sf := lteSF
					r.eng.After(d, func() { conn.SetBackup(sf, false) })
				}
				wifiSF.Suspend()
			}
		})

	case SinglePath:
		rc.Activate(energy.WiFi)
		wifiSF := conn.AddSubflow("wifi", energy.WiFi, r.wifiPath, nil, 0)
		var lteSF *tcp.Subflow
		if r.wifiAssoc != nil {
			r.wifiAssoc.OnAssociationChange(func(assoc bool) {
				if !assoc {
					// One path at a time: the interface going down is
					// the only trigger for a new subflow, established
					// on demand (no pre-paid cellular activation).
					wifiSF.Suspend()
					d := rc.Activate(energy.LTE)
					if lteSF == nil {
						lteSF = conn.AddSubflow("lte", energy.LTE, r.ltePath, nil, d)
					} else {
						sf := lteSF
						r.eng.After(d, func() { conn.SetBackup(sf, false) })
					}
					return
				}
				// WiFi is the primary interface: return to it as soon
				// as it is available again, dropping the cellular path.
				rc.Activate(energy.WiFi)
				if lteSF != nil {
					conn.SetBackup(lteSF, true)
				}
				conn.SetBackup(wifiSF, false)
			})
		}

	default:
		panic(fmt.Sprintf("scenario: unimplemented protocol %v", r.proto))
	}
	return conn
}

// collect finalizes accounting and builds the Result.
func (r *run) collect() Result {
	r.flushMeter()
	completed := !math.IsNaN(r.complete)
	if completed {
		// A power monitor keeps recording through the cellular tail; the
		// fixed cost after the last byte belongs to the transfer.
		r.acct.Drain()
	}
	res := Result{
		Protocol:       r.proto,
		Completed:      completed,
		CompletionTime: r.complete,
		Elapsed:        r.eng.Now(),
		Energy:         r.acct.Total(),
		BaseEnergy:     r.acct.BaseEnergy(),
		Switches:       0,
		LTEUsed:        r.lteTouched || r.acct.InterfaceEnergy(energy.LTE) > 0,
	}
	// Traces are cloned out of the pooled scratch buffers: the Result
	// outlives this run slot's reuse.
	if r.energyTrace != nil {
		res.EnergyTrace = r.energyTrace.Clone()
	}
	for i := 0; i < energy.NumInterfaces; i++ {
		res.ByIface[i] = r.acct.InterfaceEnergy(energy.Interface(i))
		res.Downloaded += r.delivered[i]
		res.Uploaded += r.uplinked[i]
		if r.thrTrace[i] != nil {
			res.ThroughputTrace[i] = r.thrTrace[i].Clone()
		}
	}
	if moved := res.Downloaded + res.Uploaded; moved > 0 {
		res.JPerByte = res.Energy.PerByte(moved)
	} else {
		res.JPerByte = math.Inf(1)
	}
	res.BatteryPct = r.sc.Device.BatteryFraction(res.Energy) * 100
	for _, ctl := range r.ctls {
		res.Switches += ctl.Switches
		res.Decisions = append(res.Decisions, ctl.Decisions...)
	}
	return res
}
