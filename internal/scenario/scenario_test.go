package scenario

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/units"
	"repro/internal/workload"
)

func s3() *energy.DeviceProfile { return energy.GalaxyS3() }

func runOne(t *testing.T, sc Scenario, p Protocol, seed int64) Result {
	t.Helper()
	return Run(sc, p, Opts{Seed: seed})
}

// §4.2, Figure 5: static good WiFi — eMPTCP behaves like TCP over WiFi
// (never opens LTE) and beats MPTCP on energy.
func TestStaticGoodWiFi(t *testing.T) {
	sc := StaticLab(s3(), 12, 9, workload.FileDownload{Size: 32 * units.MB})
	em := runOne(t, sc, EMPTCP, 1)
	mp := runOne(t, sc, MPTCP, 1)
	tw := runOne(t, sc, TCPWiFi, 1)
	for _, r := range []Result{em, mp, tw} {
		if !r.Completed {
			t.Fatalf("%v did not complete", r.Protocol)
		}
	}
	if em.LTEUsed {
		t.Error("eMPTCP used LTE under good static WiFi")
	}
	if !mp.LTEUsed {
		t.Error("MPTCP should always use LTE")
	}
	if em.Energy >= mp.Energy {
		t.Errorf("eMPTCP energy %v not below MPTCP %v", em.Energy, mp.Energy)
	}
	// eMPTCP ≈ TCP over WiFi in both energy and time (within 15%).
	if rel := float64(em.Energy) / float64(tw.Energy); rel > 1.15 || rel < 0.85 {
		t.Errorf("eMPTCP/TCP-WiFi energy ratio = %.2f, want ≈ 1", rel)
	}
	if rel := em.CompletionTime / tw.CompletionTime; rel > 1.15 || rel < 0.85 {
		t.Errorf("eMPTCP/TCP-WiFi time ratio = %.2f, want ≈ 1", rel)
	}
	// MPTCP is faster (it aggregates) but less efficient.
	if mp.CompletionTime >= tw.CompletionTime {
		t.Error("MPTCP should finish before TCP over WiFi")
	}
}

// §4.2, Figure 6: static bad WiFi — eMPTCP behaves like MPTCP (uses both
// paths after the startup delay) and crushes TCP over WiFi on time.
func TestStaticBadWiFi(t *testing.T) {
	sc := StaticLab(s3(), 0.8, 9, workload.FileDownload{Size: 32 * units.MB})
	em := runOne(t, sc, EMPTCP, 2)
	mp := runOne(t, sc, MPTCP, 2)
	tw := runOne(t, sc, TCPWiFi, 2)
	if !em.LTEUsed {
		t.Fatal("eMPTCP did not open LTE under bad WiFi")
	}
	// eMPTCP ≈ MPTCP: within 25% on energy and time (startup delay
	// accounts for the gap).
	if rel := float64(em.Energy) / float64(mp.Energy); rel > 1.25 || rel < 0.75 {
		t.Errorf("eMPTCP/MPTCP energy ratio = %.2f, want ≈ 1", rel)
	}
	if rel := em.CompletionTime / mp.CompletionTime; rel > 1.3 || rel < 0.8 {
		t.Errorf("eMPTCP/MPTCP time ratio = %.2f, want ≈ 1", rel)
	}
	// TCP over WiFi takes several times longer.
	if tw.CompletionTime < 3*mp.CompletionTime {
		t.Errorf("TCP-WiFi %.0fs vs MPTCP %.0fs: want ≥3x slower on 0.8 vs 9.8 Mbps",
			tw.CompletionTime, mp.CompletionTime)
	}
}

// §4.3, Figures 7–8: random bandwidth — eMPTCP saves energy vs MPTCP at
// some download-time cost, and is far faster than TCP over WiFi.
func TestRandomBandwidth(t *testing.T) {
	size := workload.FileDownload{Size: 64 * units.MB}
	var emE, mpE, twE, emT, mpT, twT float64
	const runs = 3
	for seed := int64(0); seed < runs; seed++ {
		em := runOne(t, RandomBandwidth(s3(), size), EMPTCP, seed)
		mp := runOne(t, RandomBandwidth(s3(), size), MPTCP, seed)
		tw := runOne(t, RandomBandwidth(s3(), size), TCPWiFi, seed)
		if !em.Completed || !mp.Completed || !tw.Completed {
			t.Fatal("a run did not complete")
		}
		emE += float64(em.Energy)
		mpE += float64(mp.Energy)
		twE += float64(tw.Energy)
		emT += em.CompletionTime
		mpT += mp.CompletionTime
		twT += tw.CompletionTime
	}
	if emE >= mpE {
		t.Errorf("eMPTCP energy %.0f not below MPTCP %.0f", emE/runs, mpE/runs)
	}
	if emT <= mpT {
		t.Errorf("eMPTCP time %.0f should exceed MPTCP %.0f (it declines LTE when inefficient)", emT/runs, mpT/runs)
	}
	if emT >= twT {
		t.Errorf("eMPTCP time %.0f should beat TCP-WiFi %.0f", emT/runs, twT/runs)
	}
}

// §4.5, Figures 12–13: mobility — per-byte energy: TCP-WiFi < eMPTCP <
// MPTCP; downloaded amount: TCP-WiFi < eMPTCP < MPTCP.
func TestMobility(t *testing.T) {
	em := runOne(t, Mobility(s3()), EMPTCP, 3)
	mp := runOne(t, Mobility(s3()), MPTCP, 3)
	tw := runOne(t, Mobility(s3()), TCPWiFi, 3)
	for _, r := range []Result{em, mp, tw} {
		if r.Completed {
			t.Fatalf("%v: bulk workload should not complete in 250 s", r.Protocol)
		}
		if r.Elapsed != MobilityDuration {
			t.Fatalf("%v: elapsed %v, want %v", r.Protocol, r.Elapsed, MobilityDuration)
		}
	}
	if !(em.JPerByte < mp.JPerByte) {
		t.Errorf("eMPTCP J/B (%.3g) should beat MPTCP (%.3g)", em.JPerByte, mp.JPerByte)
	}
	if !(tw.JPerByte < em.JPerByte) {
		t.Errorf("TCP-WiFi J/B (%.3g) should beat eMPTCP (%.3g) on this route", tw.JPerByte, em.JPerByte)
	}
	if !(em.Downloaded > tw.Downloaded) {
		t.Errorf("eMPTCP downloaded %v, should exceed TCP-WiFi %v", em.Downloaded, tw.Downloaded)
	}
	if !(mp.Downloaded > em.Downloaded) {
		t.Errorf("MPTCP downloaded %v, should exceed eMPTCP %v", mp.Downloaded, em.Downloaded)
	}
}

// §4.6: MPTCP with WiFi First degenerates to TCP over WiFi while the
// association holds (static scenario), but pays the LTE activation cost.
func TestWiFiFirstStaticDegenerates(t *testing.T) {
	sc := StaticLab(s3(), 0.8, 9, workload.FileDownload{Size: 4 * units.MB})
	wf := runOne(t, sc, WiFiFirst, 4)
	tw := runOne(t, sc, TCPWiFi, 4)
	if !wf.Completed {
		t.Fatal("WiFi-First run did not complete")
	}
	// Same download time as TCP over WiFi (same single path in use)...
	if rel := wf.CompletionTime / tw.CompletionTime; rel > 1.1 || rel < 0.9 {
		t.Errorf("WiFi-First/TCP-WiFi time ratio = %.2f, want ≈ 1", rel)
	}
	// ...but strictly more energy: the needless LTE activation.
	if wf.Energy <= tw.Energy {
		t.Errorf("WiFi-First energy %v should exceed TCP-WiFi %v", wf.Energy, tw.Energy)
	}
	if !wf.LTEUsed {
		t.Error("WiFi-First should have activated the LTE radio at establishment")
	}
}

// §4.6: on the mobility route WiFi-First only uses LTE after
// disassociation, so it downloads less than eMPTCP, which reacts to
// throughput rather than association.
func TestWiFiFirstMobility(t *testing.T) {
	wf := runOne(t, Mobility(s3()), WiFiFirst, 5)
	em := runOne(t, Mobility(s3()), EMPTCP, 5)
	if wf.Downloaded >= em.Downloaded {
		t.Errorf("WiFi-First downloaded %v, eMPTCP %v — eMPTCP should win by using LTE during bad-but-associated WiFi",
			wf.Downloaded, em.Downloaded)
	}
}

// §4.6: the MDP scheduler behaves like TCP over WiFi.
func TestMDPDegeneratesToTCPWiFi(t *testing.T) {
	sc := StaticLab(s3(), 5, 9, workload.FileDownload{Size: 8 * units.MB})
	md := runOne(t, sc, MDP, 6)
	tw := runOne(t, sc, TCPWiFi, 6)
	if !md.Completed {
		t.Fatal("MDP run did not complete")
	}
	if md.LTEUsed {
		t.Error("MDP scheduler activated LTE under the LTE energy model")
	}
	if rel := float64(md.Energy) / float64(tw.Energy); rel > 1.1 || rel < 0.9 {
		t.Errorf("MDP/TCP-WiFi energy ratio = %.2f, want ≈ 1", rel)
	}
}

// §5.2, Figure 15: small files (256 KB) — eMPTCP saves most of MPTCP's
// energy with statistically similar download times.
func TestSmallFileWild(t *testing.T) {
	sc := Wild(s3(), Good, Good, WDC, workload.FileDownload{Size: 256 * units.KB})
	em := runOne(t, sc, EMPTCP, 7)
	mp := runOne(t, sc, MPTCP, 7)
	if em.LTEUsed {
		t.Error("eMPTCP opened LTE for a 256 KB download")
	}
	if got := float64(em.Energy) / float64(mp.Energy); got > 0.4 {
		t.Errorf("eMPTCP used %.0f%% of MPTCP's energy on a small file; paper reports 10–25%%", got*100)
	}
	if em.CompletionTime > mp.CompletionTime*2 {
		t.Errorf("eMPTCP time %.2f vs MPTCP %.2f: want similar", em.CompletionTime, mp.CompletionTime)
	}
}

// §5.3, Figure 16 Good-WiFi categories: eMPTCP uses roughly half of
// MPTCP's energy on 16 MB downloads.
func TestLargeFileWildGoodWiFi(t *testing.T) {
	for _, lteQ := range []Quality{Bad, Good} {
		sc := Wild(s3(), Good, lteQ, WDC, workload.FileDownload{Size: 16 * units.MB})
		em := runOne(t, sc, EMPTCP, 8)
		mp := runOne(t, sc, MPTCP, 8)
		rel := float64(em.Energy) / float64(mp.Energy)
		if rel > 0.75 {
			t.Errorf("Good WiFi/%v LTE: eMPTCP at %.0f%% of MPTCP energy, want ≈ 50%%", lteQ, rel*100)
		}
	}
}

// §5.3 Bad WiFi & Good LTE: eMPTCP ≈ MPTCP energy, slightly slower; TCP
// over WiFi far worse.
func TestLargeFileWildBadWiFiGoodLTE(t *testing.T) {
	sc := Wild(s3(), Bad, Good, WDC, workload.FileDownload{Size: 16 * units.MB})
	em := runOne(t, sc, EMPTCP, 9)
	mp := runOne(t, sc, MPTCP, 9)
	tw := runOne(t, sc, TCPWiFi, 9)
	if rel := float64(em.Energy) / float64(mp.Energy); rel > 1.3 || rel < 0.6 {
		t.Errorf("eMPTCP/MPTCP energy = %.2f, want ≈ 1", rel)
	}
	if em.CompletionTime < mp.CompletionTime {
		t.Error("eMPTCP should be slightly slower than MPTCP (delayed establishment)")
	}
	if tw.CompletionTime < 2*mp.CompletionTime {
		t.Errorf("TCP-WiFi (%.0fs) should be much slower than MPTCP (%.0fs)", tw.CompletionTime, mp.CompletionTime)
	}
}

// §5.4, Figure 17: web browsing — eMPTCP never opens LTE, saving a large
// fraction of MPTCP's energy at similar latency.
func TestWebBrowsing(t *testing.T) {
	em := runOne(t, WebBrowsing(s3()), EMPTCP, 10)
	mp := runOne(t, WebBrowsing(s3()), MPTCP, 10)
	if !em.Completed || !mp.Completed {
		t.Fatal("page load did not complete")
	}
	if em.LTEUsed {
		t.Error("eMPTCP opened LTE for web browsing")
	}
	if !mp.LTEUsed {
		t.Error("MPTCP should open LTE on all six connections")
	}
	if rel := float64(mp.Energy) / float64(em.Energy); rel < 1.3 {
		t.Errorf("MPTCP should use ≥30%% more energy than eMPTCP; got %.0f%% more", (rel-1)*100)
	}
	if rel := em.CompletionTime / mp.CompletionTime; rel > 1.5 {
		t.Errorf("eMPTCP latency %.2fx MPTCP's, want similar", rel)
	}
}

func TestTraceCollection(t *testing.T) {
	sc := RandomBandwidth(s3(), workload.FileDownload{Size: 16 * units.MB})
	r := Run(sc, EMPTCP, Opts{Seed: 11, Trace: true})
	if r.EnergyTrace == nil || r.EnergyTrace.Len() == 0 {
		t.Fatal("no energy trace")
	}
	// Cumulative energy must be nondecreasing.
	last := 0.0
	for _, v := range r.EnergyTrace.V {
		if v < last {
			t.Fatal("energy trace decreased")
		}
		last = v
	}
	for i := range r.ThroughputTrace {
		if r.ThroughputTrace[i] == nil {
			t.Fatalf("missing throughput trace for %v", energy.Interface(i))
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	sc := RandomBandwidth(s3(), workload.FileDownload{Size: 16 * units.MB})
	a := Run(sc, EMPTCP, Opts{Seed: 12})
	b := Run(sc, EMPTCP, Opts{Seed: 12})
	if a.Energy != b.Energy || a.CompletionTime != b.CompletionTime {
		t.Errorf("same-seed runs differ: %v/%v vs %v/%v", a.Energy, a.CompletionTime, b.Energy, b.CompletionTime)
	}
	c := Run(sc, EMPTCP, Opts{Seed: 13})
	if a.Energy == c.Energy && a.CompletionTime == c.CompletionTime {
		t.Error("different seeds produced identical results")
	}
}

func TestTCPLTEProtocol(t *testing.T) {
	sc := StaticLab(s3(), 5, 9, workload.FileDownload{Size: 8 * units.MB})
	lt := runOne(t, sc, TCPLTE, 14)
	if !lt.Completed {
		t.Fatal("TCP-LTE did not complete")
	}
	if lt.ByIface[energy.WiFi] > 0.2 {
		t.Errorf("TCP-LTE consumed WiFi energy: %v", lt.ByIface[energy.WiFi])
	}
	if lt.ByIface[energy.LTE] <= 0 {
		t.Error("TCP-LTE consumed no LTE energy")
	}
	// Promotion delays the first byte.
	ideal := units.MbpsRate(9).TimeToSend(8 * units.MB).Seconds()
	if lt.CompletionTime < ideal {
		t.Errorf("completion %.2f s below the no-overhead ideal %.2f s", lt.CompletionTime, ideal)
	}
}

func TestCategorize(t *testing.T) {
	if Categorize(units.MbpsRate(10)) != Good || Categorize(units.MbpsRate(3)) != Bad {
		t.Error("categorization against the 8 Mbps threshold is wrong")
	}
	if Categorize(QualityThreshold) != Good {
		t.Error("threshold itself should be Good (≥)")
	}
}

func TestProtocolStrings(t *testing.T) {
	names := map[Protocol]string{
		TCPWiFi: "TCP over WiFi", TCPLTE: "TCP over LTE", MPTCP: "MPTCP",
		EMPTCP: "eMPTCP", WiFiFirst: "MPTCP w/ WiFi First", MDP: "MDP scheduler",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
}

func TestIncompleteScenarioPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("incomplete scenario did not panic")
		}
	}()
	Run(Scenario{}, MPTCP, Opts{})
}

func TestEnergyDecomposition(t *testing.T) {
	sc := StaticLab(s3(), 5, 9, workload.FileDownload{Size: 8 * units.MB})
	r := runOne(t, sc, MPTCP, 15)
	var sum units.Energy = r.BaseEnergy
	for _, e := range r.ByIface {
		sum += e
	}
	if math.Abs(float64(r.Energy-sum)) > 1e-6 {
		t.Errorf("Energy %v != base+interfaces %v", r.Energy, sum)
	}
}

func TestJPerByteConsistency(t *testing.T) {
	sc := StaticLab(s3(), 5, 9, workload.FileDownload{Size: 8 * units.MB})
	r := runOne(t, sc, MPTCP, 16)
	want := float64(r.Energy) / float64(r.Downloaded)
	if math.Abs(r.JPerByte-want) > 1e-12 {
		t.Errorf("JPerByte %v != Energy/Downloaded %v", r.JPerByte, want)
	}
}

// §2.1/§6: Single-Path mode. On static WiFi (no disassociation) it is
// byte-for-byte TCP over WiFi and — unlike WiFi-First — never touches the
// LTE radio.
func TestSinglePathStatic(t *testing.T) {
	sc := StaticLab(s3(), 0.8, 9, workload.FileDownload{Size: 4 * units.MB})
	sp := runOne(t, sc, SinglePath, 21)
	tw := runOne(t, sc, TCPWiFi, 21)
	if sp.LTEUsed {
		t.Error("Single-Path mode activated LTE without a disassociation")
	}
	if sp.Energy != tw.Energy || sp.CompletionTime != tw.CompletionTime {
		t.Errorf("Single-Path (%v, %.1fs) should equal TCP/WiFi (%v, %.1fs) on static WiFi",
			sp.Energy, sp.CompletionTime, tw.Energy, tw.CompletionTime)
	}
}

// On the mobility route, disassociation triggers the LTE subflow and the
// mode stays there; it downloads more than TCP/WiFi but less than eMPTCP,
// which also exploits bad-but-associated periods.
func TestSinglePathMobility(t *testing.T) {
	sp := runOne(t, Mobility(s3()), SinglePath, 22)
	tw := runOne(t, Mobility(s3()), TCPWiFi, 22)
	em := runOne(t, Mobility(s3()), EMPTCP, 22)
	if !sp.LTEUsed {
		t.Fatal("route disassociates; Single-Path should have switched to LTE")
	}
	if sp.Downloaded <= tw.Downloaded {
		t.Errorf("Single-Path downloaded %v, should exceed TCP/WiFi %v", sp.Downloaded, tw.Downloaded)
	}
	if em.Downloaded <= sp.Downloaded {
		t.Errorf("eMPTCP downloaded %v, should exceed Single-Path %v (reacts to throughput, not association)",
			em.Downloaded, sp.Downloaded)
	}
}

// Upload support (§7 future work): uplink bytes are metered to the uplink
// power coefficients, which are far higher per Mbps — especially on LTE.
func TestUploadEnergyExceedsDownload(t *testing.T) {
	up := runOne(t, StaticLab(s3(), 6, 4.5, workload.FileUpload{Size: 8 * units.MB}), TCPLTE, 30)
	down := runOne(t, StaticLab(s3(), 6, 4.5, workload.FileDownload{Size: 8 * units.MB}), TCPLTE, 30)
	if !up.Completed || !down.Completed {
		t.Fatal("a transfer did not complete")
	}
	if up.Uploaded != 8*units.MB {
		t.Errorf("uploaded %v, want 8 MB", up.Uploaded)
	}
	if up.Downloaded != 0 {
		t.Errorf("upload run downloaded %v", up.Downloaded)
	}
	if float64(up.Energy) < float64(down.Energy)*1.15 {
		t.Errorf("LTE upload (%v) should cost well above download (%v): α_up ≫ α_down", up.Energy, down.Energy)
	}
}

func TestUploadEMPTCPKeepsLTEDown(t *testing.T) {
	r := runOne(t, StaticLab(s3(), 12, 4.5, workload.FileUpload{Size: 8 * units.MB}), EMPTCP, 31)
	if !r.Completed {
		t.Fatal("upload did not complete")
	}
	if r.LTEUsed {
		t.Error("eMPTCP opened LTE for an upload over good WiFi")
	}
	if r.JPerByte <= 0 || math.IsInf(r.JPerByte, 1) {
		t.Errorf("JPerByte = %v for an upload-only run", r.JPerByte)
	}
}

// Streaming (§7 future work): the paced idle gaps keep MPTCP's LTE radio
// in its tail indefinitely, so eMPTCP — which never opens LTE over good
// WiFi — saves a large constant power.
func TestStreamingEnergy(t *testing.T) {
	w := workload.DefaultStreaming()
	em := runOne(t, StaticLab(s3(), 12, 4.5, w), EMPTCP, 32)
	mp := runOne(t, StaticLab(s3(), 12, 4.5, w), MPTCP, 32)
	tw := runOne(t, StaticLab(s3(), 12, 4.5, w), TCPWiFi, 32)
	for _, r := range []Result{em, mp, tw} {
		if !r.Completed {
			t.Fatalf("%v stream did not complete", r.Protocol)
		}
		// Pacing: completion close to the playout duration.
		if r.CompletionTime < w.Duration()*0.8 || r.CompletionTime > w.Duration()*1.3 {
			t.Errorf("%v stream completed at %.0f s, playout %.0f", r.Protocol, r.CompletionTime, w.Duration())
		}
	}
	if em.LTEUsed {
		t.Error("eMPTCP opened LTE for streaming over good WiFi")
	}
	if float64(em.Energy) > 0.75*float64(mp.Energy) {
		t.Errorf("streaming: eMPTCP %v should be well below MPTCP %v (tail drain)", em.Energy, mp.Energy)
	}
	if rel := float64(em.Energy) / float64(tw.Energy); rel > 1.1 || rel < 0.9 {
		t.Errorf("streaming: eMPTCP/TCP-WiFi energy = %.2f, want ≈ 1", rel)
	}
}

// The MinRate extension (§7 direction): with a rate floor at the video
// bitrate, eMPTCP keeps LTE up through slow-WiFi streaming instead of
// starving playout for per-byte efficiency.
func TestStreamingWithMinRateFloor(t *testing.T) {
	w := workload.DefaultStreaming() // 4 Mbps bitrate
	base := StaticLab(s3(), 3, 4.5, w)

	plain := runOne(t, base, EMPTCP, 33)

	floored := base
	cfg := core.DefaultConfig()
	cfg.MinRate = units.MbpsRate(4.2)
	floored.CoreConfig = &cfg
	rate := runOne(t, floored, EMPTCP, 33)

	if !plain.Completed || !rate.Completed {
		t.Fatal("a stream did not complete")
	}
	// Without the floor the stream runs far past playout; with it,
	// completion lands near the playout duration.
	if plain.CompletionTime < w.Duration()*1.3 {
		t.Fatalf("precondition: plain eMPTCP at %.0f s should lag playout %.0f s", plain.CompletionTime, w.Duration())
	}
	if rate.CompletionTime > w.Duration()*1.15 {
		t.Errorf("rate-floored eMPTCP at %.0f s, want ≈ playout %.0f s", rate.CompletionTime, w.Duration())
	}
	// The floor costs energy; that is the explicit trade.
	if rate.Energy <= plain.Energy {
		t.Errorf("rate floor should cost energy: %v vs %v", rate.Energy, plain.Energy)
	}
}

// Multi-AP roaming (extension toward Croitoru et al., §6): with the
// excursions covered by extra APs, every protocol downloads more, and
// eMPTCP needs LTE for less of the route.
func TestMobilityMultiAP(t *testing.T) {
	for _, p := range []Protocol{EMPTCP, TCPWiFi} {
		single := runOne(t, Mobility(s3()), p, 50)
		multi := runOne(t, MobilityMultiAP(s3()), p, 50)
		if multi.Downloaded <= single.Downloaded {
			t.Errorf("%v: multi-AP downloaded %v, single-AP %v — coverage should help", p, multi.Downloaded, single.Downloaded)
		}
		if p == EMPTCP && multi.ByIface[energy.LTE] >= single.ByIface[energy.LTE] {
			t.Errorf("eMPTCP LTE energy with multi-AP (%v) should be below single-AP (%v)",
				multi.ByIface[energy.LTE], single.ByIface[energy.LTE])
		}
	}
	// Handovers drop the association, so WiFi-First now reacts on this
	// route even between full-range excursions.
	wf := runOne(t, MobilityMultiAP(s3()), WiFiFirst, 50)
	if !wf.LTEUsed {
		t.Error("WiFi-First never used LTE despite handover disassociations")
	}
}

func TestBatteryPct(t *testing.T) {
	r := runOne(t, StaticLab(s3(), 12, 4.5, workload.FileDownload{Size: 64 * units.MB}), MPTCP, 60)
	want := float64(r.Energy) / float64(s3().BatteryCapacity) * 100
	if math.Abs(r.BatteryPct-want) > 1e-9 {
		t.Errorf("BatteryPct = %v, want %v", r.BatteryPct, want)
	}
	if r.BatteryPct <= 0 || r.BatteryPct > 5 {
		t.Errorf("a 64 MB download at %v should cost a fraction of a percent to a few percent, got %v%%",
			r.Energy, r.BatteryPct)
	}
}

// The MDP protocol's cellular branch: with a synthetic device whose
// cellular radio is far cheaper than WiFi, the generated policy selects
// LTE-only at every rate, exercising the on-demand establishment path.
func TestMDPCellularBranch(t *testing.T) {
	d := s3()
	d.Radios[energy.LTE].Base = units.MilliwattPower(50)
	d.Radios[energy.LTE].PerMbpsDown = units.MilliwattPower(5)
	d.Radios[energy.LTE].PromoDur = 0.26
	sc := StaticLab(d, 5, 8, workload.FileDownload{Size: 4 * units.MB})
	r := runOne(t, sc, MDP, 61)
	if !r.Completed {
		t.Fatal("MDP run did not complete")
	}
	if !r.LTEUsed {
		t.Error("cheap-cellular MDP policy never used LTE")
	}
	if r.ByIface[energy.LTE] <= 0 {
		t.Error("no LTE energy despite LTE-only policy")
	}
}

// With a browser-like application power draw, the Figure 17 energy ratio
// compresses toward the paper's ~160% (EXPERIMENTS.md D2): the app power
// is protocol-independent and dilutes the network-level gap.
func TestWebBrowsingWithAppPower(t *testing.T) {
	plain := WebBrowsing(s3())
	withApp := WebBrowsing(s3())
	withApp.AppPower = units.MilliwattPower(1500)

	ratio := func(sc Scenario) float64 {
		mp := runOne(t, sc, MPTCP, 62)
		em := runOne(t, sc, EMPTCP, 62)
		return float64(mp.Energy) / float64(em.Energy)
	}
	bare := ratio(plain)
	diluted := ratio(withApp)
	if diluted >= bare {
		t.Errorf("app power should dilute the ratio: %v vs %v", diluted, bare)
	}
	if diluted < 1.05 {
		t.Errorf("diluted ratio %v: MPTCP should still cost more", diluted)
	}
	// Toward the paper's ~1.6 rather than the bare ~13x. Full convergence
	// would need the paper's 6–10 s page durations (rendering time our
	// model does not simulate), over which the same wattage integrates to
	// a much larger protocol-independent constant.
	if diluted > bare/1.5 {
		t.Errorf("diluted ratio %v did not move meaningfully below bare %v", diluted, bare)
	}
}

// eMPTCP uploads decide from the uplink EIB: at a WiFi rate where a
// download would open LTE, an upload stays WiFi-only because cellular
// transmit power makes LTE bytes far more expensive.
func TestUploadUsesUplinkEIB(t *testing.T) {
	// At 2.6 Mbps WiFi with ~4.5 Mbps LTE, the measured WiFi throughput
	// (~2.1) sits below the download table's WiFi-only threshold (~2.6 at
	// the initial 5 Mbps LTE assumption) but above the upload table's
	// (~1.6): the same link conditions give opposite decisions by
	// direction. A calm predictor keeps the AIMD troughs from straddling
	// the upload threshold; both runs share it.
	coreCfg := core.DefaultConfig()
	coreCfg.PredictorAlpha = 0.3
	coreCfg.PredictorBeta = 0.05
	mk := func(w workload.Workload) Scenario {
		sc := StaticLab(s3(), 2.6, 4.5, w)
		sc.CoreConfig = &coreCfg
		return sc
	}
	up := runOne(t, mk(workload.FileUpload{Size: 8 * units.MB}), EMPTCP, 63)
	down := runOne(t, mk(workload.FileDownload{Size: 8 * units.MB}), EMPTCP, 63)
	if !up.Completed || !down.Completed {
		t.Fatal("a transfer did not complete")
	}
	if !down.LTEUsed {
		t.Error("download at 2.6 Mbps WiFi should open LTE (Both region)")
	}
	if up.LTEUsed {
		t.Error("upload at 2.6 Mbps WiFi should stay WiFi-only (uplink table)")
	}
}
