package scenario

import (
	"crypto/sha256"
	"fmt"

	"repro/internal/runcache"
)

// RunCache memoizes Results across experiments. Sharing one cache
// between all the tables of a suite lets overlapping grids — shared
// baselines, repeated ablation arms — simulate each distinct run once.
type RunCache = runcache.Cache[Result]

// NewRunCache returns an empty run cache.
func NewRunCache() *RunCache { return runcache.New[Result]() }

// cacheKey digests everything a run's outcome depends on: the scenario's
// construction (device profile contents, link signature, RTTs, horizon,
// workload, controller overrides, app power), the protocol, and the
// run options (seed, tracing). It reports ok=false when the run is not
// cache-eligible: the scenario was built outside this package's library
// (no link signature, so the link-builder funcs are opaque), or a
// Recorder observes the run's events in-line.
//
// Everything digested is a value: DeviceProfile, core.Config, and the
// workload types are plain data structs, so %+v prints their full
// contents and two scenarios digest equal iff a run cannot tell them
// apart. The per-run RNG is rebuilt from Seed, so equal digests imply
// bit-identical results.
// CacheKey exposes the run-content digest to persistence layers outside
// this package — the campaign engine keys its disk cache with it, so an
// on-disk result is exactly as trustworthy as an in-process cached one:
// equal digests imply bit-identical results.
func CacheKey(sc Scenario, proto Protocol, opt Opts) (runcache.Key, bool) {
	return cacheKey(sc, proto, opt)
}

func cacheKey(sc Scenario, proto Protocol, opt Opts) (runcache.Key, bool) {
	if sc.linkSig == "" || opt.Recorder != nil {
		return runcache.Key{}, false
	}
	if opt.TraceStep <= 0 {
		opt.TraceStep = 1 // mirror runOne's default so both spellings share a key
	}
	h := sha256.New()
	fmt.Fprintf(h, "links|%s\n", sc.linkSig)
	fmt.Fprintf(h, "name|%s\n", sc.Name)
	fmt.Fprintf(h, "device|%+v\n", *sc.Device)
	fmt.Fprintf(h, "paths|%v|%v|%v|%v\n", sc.WiFiRTT, sc.LTERTT, sc.Horizon, sc.AppPower)
	if sc.CoreConfig != nil {
		fmt.Fprintf(h, "core|%+v\n", *sc.CoreConfig)
	}
	if sc.EIBConfig != nil {
		fmt.Fprintf(h, "eib|%+v\n", *sc.EIBConfig)
	}
	fmt.Fprintf(h, "work|%T|%+v\n", sc.Work, sc.Work)
	fmt.Fprintf(h, "run|%d|%d|%t|%v\n", proto, opt.Seed, opt.Trace, opt.TraceStep)
	var k runcache.Key
	h.Sum(k[:0])
	return k, true
}
