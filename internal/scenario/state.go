package scenario

import (
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/sim"
	"repro/internal/simrng"
	"repro/internal/stats"
	"repro/internal/tcp"
)

// RunState owns the reusable allocations of one run slot: the event
// engine (node arena, heap, free list), the energy accountant and its
// radios, the subflow arena, the run bookkeeping struct, and the trace
// scratch buffers. Run draws states from a process-wide sync.Pool so the
// repeated seeded runs of an experiment grid stop paying the per-run
// allocation constant.
//
// Determinism: every reset restores exactly the state a fresh allocation
// would start with — the engine's event order depends only on (time,
// sequence) pairs, never node indices; radios and subflows are zeroed;
// RNG streams are rebuilt from the seed — so a pooled run is
// bit-identical to a fresh one (TestPooledRunsIdentical). Results never
// alias pooled memory: time-series scratch is cloned out in collect.
type RunState struct {
	eng      *sim.Engine
	acct     *energy.Accountant
	arena    tcp.Arena
	rngArena simrng.Arena
	r        run

	energyScratch stats.TimeSeries
	thrScratch    [energy.NumInterfaces]stats.TimeSeries

	// tickRecs is the fork executor's probe scratch: the base run's
	// controller tick records, reused across sweep trees.
	tickRecs []core.TickRecord
}

// statePool is a pointer so the leak-regression tests can swap in a
// counting pool (sync.Pool values cannot be reassigned once used).
var statePool = &sync.Pool{New: func() any { return new(RunState) }}

// reset rebuilds the run bookkeeping for one (scenario, protocol, opts)
// triple on the state's reused engine, accountant, and arena.
func (st *RunState) reset(sc Scenario, proto Protocol, opt Opts) *run {
	if st.eng == nil {
		st.eng = sim.New()
	} else {
		st.eng.Reset()
	}
	if st.acct == nil {
		st.acct = energy.NewAccountant(sc.Device)
	} else {
		st.acct.Reset(sc.Device)
	}
	st.arena.Reset()
	st.rngArena.Reset()
	r := &st.r
	*r = run{
		sc:       sc,
		proto:    proto,
		opt:      opt,
		complete: math.NaN(),
		eng:      st.eng,
		src:      st.rngArena.New(opt.Seed),
		acct:     st.acct,
		arena:    &st.arena,
		conns:    r.conns[:0],
		ctls:     r.ctls[:0],
		wfRules:  r.wfRules[:0],
	}
	if opt.Trace {
		st.energyScratch.Reset()
		r.energyTrace = &st.energyScratch
		for i := range r.thrTrace {
			st.thrScratch[i].Reset()
			r.thrTrace[i] = &st.thrScratch[i]
		}
	}
	return r
}
