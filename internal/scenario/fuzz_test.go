package scenario

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/energy"
	"repro/internal/units"
	"repro/internal/workload"
)

// The fuzz suite runs randomized protocol × scenario × seed combinations
// and checks structural invariants that must hold no matter what: runs
// terminate, energy is finite and decomposes, byte accounting balances,
// completion implies delivery.

func checkInvariants(t *testing.T, sc Scenario, r Result, work workload.Workload) bool {
	t.Helper()
	ok := true
	fail := func(format string, args ...any) {
		t.Errorf(format, args...)
		ok = false
	}
	if r.Energy < 0 || math.IsNaN(float64(r.Energy)) || math.IsInf(float64(r.Energy), 0) {
		fail("%v/%s: energy = %v", r.Protocol, sc.Name, r.Energy)
	}
	var sum units.Energy = r.BaseEnergy
	for _, e := range r.ByIface {
		if e < 0 {
			fail("%v/%s: negative interface energy %v", r.Protocol, sc.Name, e)
		}
		sum += e
	}
	if math.Abs(float64(r.Energy-sum)) > 1e-6 {
		fail("%v/%s: energy %v != decomposition %v", r.Protocol, sc.Name, r.Energy, sum)
	}
	if r.Downloaded < 0 || r.Uploaded < 0 {
		fail("%v/%s: negative byte counters", r.Protocol, sc.Name)
	}
	if r.Completed {
		if total := work.TotalBytes(); total > 0 {
			moved := r.Downloaded + r.Uploaded
			if diff := float64(moved - total); diff < -1 || diff > 1 {
				fail("%v/%s: completed with %v of %v moved", r.Protocol, sc.Name, moved, total)
			}
		}
		if math.IsNaN(r.CompletionTime) || r.CompletionTime < 0 {
			fail("%v/%s: completed at %v", r.Protocol, sc.Name, r.CompletionTime)
		}
	}
	if r.Elapsed < 0 {
		fail("%v/%s: elapsed %v", r.Protocol, sc.Name, r.Elapsed)
	}
	if !r.LTEUsed && r.ByIface[energy.LTE] > 0 {
		fail("%v/%s: LTE energy %v without LTEUsed", r.Protocol, sc.Name, r.ByIface[energy.LTE])
	}
	return ok
}

func TestFuzzInvariants(t *testing.T) {
	type seedCase struct {
		ProtoRaw uint8
		ScRaw    uint8
		SizeKB   uint16
		Seed     int64
	}
	f := func(c seedCase) bool {
		proto := AllProtocols[int(c.ProtoRaw)%len(AllProtocols)]
		size := units.ByteSize(c.SizeKB%4096+16) * units.KB
		var sc Scenario
		var work workload.Workload = workload.FileDownload{Size: size}
		switch c.ScRaw % 5 {
		case 0:
			sc = StaticLab(s3(), float64(c.ScRaw%20)+0.5, 4.5, work)
		case 1:
			sc = RandomBandwidth(s3(), work)
		case 2:
			sc = BackgroundTraffic(s3(), int(c.ScRaw%4), 0.05, 0.03, work)
		case 3:
			sc = Mobility(s3())
			work = workload.Bulk{}
		default:
			work = workload.FileUpload{Size: size}
			sc = StaticLab(s3(), float64(c.ScRaw%20)+0.5, 4.5, work)
		}
		// Cap runtime: tiny bandwidths with big files take long simulated
		// (not wall) time; bound the horizon.
		if sc.Horizon == 0 {
			sc.Horizon = 3600
		}
		r := Run(sc, proto, Opts{Seed: c.Seed})
		return checkInvariants(t, sc, r, work)
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Capacity collapse mid-transfer must never wedge a run: the engine always
// reaches the horizon or completion, and the accountant never goes
// negative.
func TestFailureInjectionWiFiDeath(t *testing.T) {
	for _, proto := range AllProtocols {
		sc := Mobility(s3()) // WiFi dies and revives repeatedly on the route
		r := Run(sc, proto, Opts{Seed: 99})
		if r.Elapsed != MobilityDuration {
			t.Errorf("%v: run ended at %v, want full horizon", proto, r.Elapsed)
		}
		if r.Downloaded <= 0 {
			t.Errorf("%v: nothing downloaded despite usable periods", proto)
		}
	}
}

// Zero-capacity WiFi from the start: single-path WiFi must simply make no
// progress (not crash), and multipath protocols must ride LTE.
func TestFailureInjectionDeadWiFi(t *testing.T) {
	work := workload.FileDownload{Size: 2 * units.MB}
	sc := StaticLab(s3(), 0, 4.5, work)
	sc.Horizon = 120

	tw := Run(sc, TCPWiFi, Opts{Seed: 5})
	if tw.Completed {
		t.Error("TCP over dead WiFi completed")
	}
	if tw.Downloaded != 0 {
		t.Errorf("TCP over dead WiFi moved %v", tw.Downloaded)
	}

	mp := Run(sc, MPTCP, Opts{Seed: 5})
	if !mp.Completed {
		t.Error("MPTCP with live LTE did not complete despite dead WiFi")
	}

	em := Run(sc, EMPTCP, Opts{Seed: 5})
	if !em.Completed {
		t.Error("eMPTCP did not fall back to LTE on dead WiFi (τ rule)")
	}
	if !em.LTEUsed {
		t.Error("eMPTCP completed without LTE on a dead WiFi link?")
	}
}
