package ptcp

import (
	"math"
	"sync"

	"repro/internal/sim"
	"repro/internal/units"
)

// Coupling selects the congestion-avoidance coupling across subflows.
type Coupling int

const (
	// Uncoupled runs independent Reno on every subflow.
	Uncoupled Coupling = iota
	// LIA applies RFC 6356's linked-increases algorithm: the per-ACK
	// increase on subflow i is min(alpha/cwnd_total, 1/cwnd_i), with
	// alpha recomputed from live windows and RTTs — the packet-granular
	// counterpart of internal/mptcp's per-round coupled increase.
	LIA
)

// MPConfig parameterizes a packet-level MPTCP connection.
type MPConfig struct {
	// Config applies to every subflow.
	Config
	// Coupling selects Uncoupled or LIA congestion avoidance.
	Coupling Coupling
}

// DefaultMPConfig couples DefaultConfig subflows with LIA, matching
// internal/mptcp's defaults.
func DefaultMPConfig() MPConfig {
	return MPConfig{Config: DefaultConfig(), Coupling: LIA}
}

// MPResult reports a finished (or horizon-cut) multipath transfer.
type MPResult struct {
	// Completed reports whether every byte reached the connection-level
	// in-order delivery point.
	Completed bool
	// FinishedAt is when the last byte was delivered in order.
	FinishedAt float64
	// Delivered counts bytes delivered in order at the connection level.
	Delivered units.ByteSize
	// Reordered counts segments that arrived above the in-order point and
	// had to wait in the connection-level reorder buffer.
	Reordered int
	// MaxReorderDepth is the peak reorder-buffer occupancy in segments —
	// the receive-buffer pressure a DSS implementation would see.
	MaxReorderDepth int
	// Retransmits, FastRecoveries, Timeouts, and Packets aggregate the
	// per-subflow counters.
	Retransmits    int
	FastRecoveries int
	Timeouts       int
	Packets        int
	// Subflows holds per-subflow detail: loss/retransmission counters and
	// Delivered (the in-order bytes that subflow carried). Completed and
	// FinishedAt are connection-level notions and stay zero here.
	Subflows []Result
}

// mpSubflow is one sender plus its connection bookkeeping: establishment
// state for the scheduler and the count of segments it carried to the
// in-order point.
type mpSubflow struct {
	sender
	c           *conn
	established bool
	segsCarried int
	carriedLast bool   // carried the final (possibly short) segment
	startFn     func() // pre-bound handshake completion, created once
}

// start completes the subflow's handshake and opens its pipe.
func (sf *mpSubflow) start() {
	sf.established = true
	sf.send()
}

// conn is a packet-level MPTCP connection: the shared data pool, the
// per-packet min-RTT scheduler, and the connection-level reorder buffer
// tracking DSS-style in-order delivery.
type conn struct {
	eng       *sim.Engine
	cfg       MPConfig
	totalSegs int
	subs      []*mpSubflow
	active    int // subflows in use this run (subs is pooled and may be longer)

	nextAssign int     // next connection segment not yet bound to a subflow
	inOrder    int     // connection-level in-order delivery point
	rcv        bitring // delivered segments above inOrder
	buffered   int     // current reorder-buffer occupancy
	reordered  int
	maxDepth   int

	done       bool
	finishedAt float64
}

// next implements sink: it is the per-packet scheduler. Data goes to the
// lowest-RTT established subflow with window space first — if that is not
// the asker, the faster subflow is filled immediately and the asker only
// gets a segment once every faster window is full. This is the
// packet-granular counterpart of internal/mptcp's min-RTT scheduler
// (which defers a whole round while a faster subflow has room).
func (c *conn) next(s *sender) int {
	if c.done || c.nextAssign >= c.totalSegs {
		return -1
	}
	for {
		best := c.bestAvailable()
		if best == nil || &best.sender == s {
			break
		}
		// A faster subflow has window space: fill it first. Its send loop
		// re-enters next and terminates here (it is then the best
		// available itself), assigning at least one segment, so this
		// loop makes progress while data remains.
		best.send()
		if c.done || c.nextAssign >= c.totalSegs {
			return -1
		}
	}
	seq := c.nextAssign
	c.nextAssign++
	return seq
}

// bestAvailable returns the established subflow with window space that has
// the lowest smoothed RTT (ties to the earlier subflow), or nil.
func (c *conn) bestAvailable() *mpSubflow {
	var best *mpSubflow
	for _, sf := range c.subs[:c.active] {
		if !sf.established || sf.inFlightCount >= int(sf.cwnd) {
			continue
		}
		if best == nil || sf.srtt < best.srtt {
			best = sf
		}
	}
	return best
}

// advanced implements sink: one segment reached a subflow's cumulative ACK
// point, i.e. the receiver holds it. Deliver it to the connection-level
// reorder buffer and advance the DSS in-order point.
func (c *conn) advanced(s *sender, connSeq int) {
	sf := (*mpSubflow)(nil)
	for _, cand := range c.subs[:c.active] {
		if &cand.sender == s {
			sf = cand
			break
		}
	}
	sf.segsCarried++
	if connSeq == c.totalSegs-1 {
		sf.carriedLast = true
	}
	if c.done {
		return
	}
	switch {
	case connSeq == c.inOrder:
		c.inOrder++
		for c.buffered > 0 && c.rcv.get(c.inOrder) {
			c.rcv.clear(c.inOrder)
			c.inOrder++
			c.buffered--
		}
		if c.inOrder >= c.totalSegs {
			c.done = true
			c.finishedAt = c.eng.Now()
			c.eng.Stop()
		}
	case connSeq > c.inOrder:
		// Out-of-order arrival: park it. Each connection segment is
		// assigned to exactly one subflow and advanced once, so the slot
		// is always fresh.
		c.ensureRcvCap(connSeq)
		c.rcv.set(connSeq)
		c.buffered++
		c.reordered++
		if c.buffered > c.maxDepth {
			c.maxDepth = c.buffered
		}
	}
}

// ensureRcvCap grows the reorder bitset until connSeq fits above the
// in-order point; live bits are confined to [inOrder, nextAssign).
func (c *conn) ensureRcvCap(connSeq int) {
	bits := c.rcv.capBits()
	if connSeq-c.inOrder < bits {
		return
	}
	for connSeq-c.inOrder >= bits {
		bits <<= 1
	}
	c.rcv.grow(bits, c.inOrder, c.nextAssign)
}

// finished implements sink: completion is a connection-level notion
// (the in-order point), latched in advanced; a done connection stops
// every subflow's processing.
func (c *conn) finished(*sender) bool { return c.done }

// caIncrease implements sink: plain Reno when uncoupled, RFC 6356 LIA
// otherwise. alpha is recomputed from the live windows and smoothed RTTs
// of established subflows, exactly as internal/mptcp's IncreasePerRTT
// does per round — here applied per ACK as min(alpha/cwnd_total,
// 1/cwnd_i).
func (c *conn) caIncrease(s *sender) float64 {
	if c.cfg.Coupling == Uncoupled {
		return 1 / s.cwnd
	}
	var total, sum, best float64
	for _, sf := range c.subs[:c.active] {
		if !sf.established || sf.srtt <= 0 {
			continue
		}
		total += sf.cwnd
		sum += sf.cwnd / sf.srtt
		if v := sf.cwnd / (sf.srtt * sf.srtt); v > best {
			best = v
		}
	}
	if total <= 0 || sum <= 0 {
		return 1 / s.cwnd
	}
	inc := total * best / (sum * sum) / total // alpha / cwnd_total
	if o := 1 / s.cwnd; o < inc {
		inc = o
	}
	return inc
}

var connPool = sync.Pool{New: func() any { return new(conn) }}

// RunMPTCP transfers size bytes over links — one subflow per link — and
// returns the connection-level result. Each subflow completes a 2·OWD
// handshake on its own path before sending (the shortest-RTT subflow
// starts first, as a SYN on every path at t=0 would). The engine's
// Horizon (if set) bounds the run. Connection state is pooled: repeated
// runs allocate nothing in steady state.
func RunMPTCP(eng *sim.Engine, cfg MPConfig, links []Link, size units.ByteSize) MPResult {
	if len(links) == 0 {
		panic("ptcp: RunMPTCP needs at least one link")
	}
	if cfg.MSS <= 0 || cfg.InitialWindow <= 0 {
		panic("ptcp: invalid configuration")
	}
	for _, l := range links {
		if l.Rate <= 0 || l.QueuePackets <= 0 {
			panic("ptcp: invalid configuration")
		}
	}
	c := connPool.Get().(*conn)
	c.eng = eng
	c.cfg = cfg
	c.totalSegs = int(math.Ceil(float64(size) / float64(cfg.MSS)))
	for len(c.subs) < len(links) {
		sf := &mpSubflow{}
		sf.startFn = sf.start
		c.subs = append(c.subs, sf)
	}
	c.active = len(links)
	c.nextAssign, c.inOrder = 0, 0
	c.rcv.init(initialWindowBits)
	c.buffered, c.reordered, c.maxDepth = 0, 0, 0
	c.done = false
	c.finishedAt = 0

	for i, l := range links {
		sf := c.subs[i]
		sf.c = c
		sf.established = false
		sf.segsCarried = 0
		sf.carriedLast = false
		sf.sender.reset(eng, cfg.Config, l, c, true)
		eng.Schedule(l.OneWayDelay+l.OneWayDelay, sf.startFn)
	}
	eng.Run()

	res := MPResult{
		Completed:       c.done || c.inOrder >= c.totalSegs, // empty transfers never enter advanced
		FinishedAt:      c.finishedAt,
		Reordered:       c.reordered,
		MaxReorderDepth: c.maxDepth,
		Subflows:        make([]Result, c.active),
	}
	res.Delivered = units.ByteSize(c.inOrder) * cfg.MSS
	if res.Delivered > size {
		res.Delivered = size
	}
	lastShort := units.ByteSize(c.totalSegs)*cfg.MSS - size // 0 for MSS-aligned sizes
	for i, sf := range c.subs[:c.active] {
		r := &res.Subflows[i]
		*r = sf.res
		r.Delivered = units.ByteSize(sf.segsCarried) * cfg.MSS
		if sf.carriedLast {
			r.Delivered -= lastShort
		}
		res.Retransmits += r.Retransmits
		res.FastRecoveries += r.FastRecoveries
		res.Timeouts += r.Timeouts
		res.Packets += r.Packets
	}
	connPool.Put(c)
	return res
}
