// Package ptcp is a packet-granularity TCP and MPTCP reference model:
// flows over fixed-rate bottlenecks with drop-tail queues, simulated packet
// by packet — data transmissions, queueing, propagation, ACK clocking,
// duplicate-ACK fast retransmit, and retransmission timeouts. RunMPTCP adds
// multiple subflows under one connection: a per-packet min-RTT scheduler, a
// connection-level reorder buffer with DSS-style in-order delivery
// tracking, and RFC 6356 LIA coupling, mirroring internal/mptcp's fluid
// semantics at packet granularity.
//
// The experiment harness's paper tables do not run on this model (a 256 MB
// download is ~180 000 packets; the fluid-round model in internal/tcp is
// 3–4 orders of magnitude cheaper). Its job is validation: the xval
// experiment family and the cross-model tests check that the fluid
// approximation delivers the same goodput and completion times the packet
// model does, which is what DESIGN.md §4.1 promises and §4.15 quantifies.
//
// The kernel is allocation-free in steady state (DESIGN.md §4.15): segment
// state lives in sliding-window ring bitsets instead of maps; the
// bottleneck FIFO's pending ACKs live in one flat ring walked by a single
// pre-bound event per link under the sim batch-window contract (the
// drop-tail queue serializes segments, so ACKs arrive in transmit order at
// times computed at transmit — one event can chase the whole stream
// inline); the RTO is a lazily re-armed deadline that never cancels
// through the event heap; and flow state is pooled across runs.
package ptcp

import (
	"math"
	"sync"

	"repro/internal/sim"
	"repro/internal/units"
)

// Config carries the sender's TCP parameters.
type Config struct {
	// MSS is the segment size.
	MSS units.ByteSize
	// InitialWindow is the initial congestion window in segments.
	InitialWindow float64
	// MaxWindow caps the window (receive window), in segments.
	MaxWindow float64
	// MinRTO floors the retransmission timeout, in seconds.
	MinRTO float64
}

// DefaultConfig matches internal/tcp's defaults.
func DefaultConfig() Config {
	return Config{MSS: 1460, InitialWindow: 10, MaxWindow: 1024, MinRTO: 1.0}
}

// Link is a bottleneck path: a fixed service rate, a drop-tail queue,
// and symmetric propagation delay.
type Link struct {
	// Rate is the bottleneck service rate.
	Rate units.BitRate
	// OneWayDelay is the propagation delay each way, in seconds.
	OneWayDelay float64
	// QueuePackets is the drop-tail queue capacity in packets.
	QueuePackets int
}

// Result reports a finished (or horizon-cut) transfer.
type Result struct {
	// Completed reports whether every byte was acknowledged.
	Completed bool
	// FinishedAt is when the last byte was acknowledged.
	FinishedAt float64
	// Delivered counts acknowledged bytes.
	Delivered units.ByteSize
	// Retransmits counts retransmitted segments (every resent copy,
	// go-back-N resends after a timeout included).
	Retransmits int
	// FastRecoveries counts triple-dupACK events.
	FastRecoveries int
	// Timeouts counts RTO firings.
	Timeouts int
	// Packets counts data transmissions (including retransmits).
	Packets int
}

// sink lets a connection layer steer a sender: hand out data, observe
// cumulative delivery, and choose the per-ACK congestion-avoidance
// increase. The single-flow Run and the MPTCP connection are the two
// implementations.
type sink interface {
	// next returns the connection-level segment to bind to the sender's
	// next new subflow sequence number, or -1 when no data is available.
	next(s *sender) int
	// advanced reports the sender's cumulative ACK point passing one
	// segment, identified by its connection-level number.
	advanced(s *sender, connSeq int)
	// finished reports (and latches) transfer completion; a true return
	// stops ACK processing before window growth, matching the scalar
	// model's completion check.
	finished(s *sender) bool
	// caIncrease returns the congestion-avoidance window increase for one
	// ACK: 1/cwnd for plain Reno, the RFC 6356 coupled increase for LIA.
	caIncrease(s *sender) float64
}

// initialWindowBits sizes the ring bitsets at reset; ensureCap doubles
// them if a window ever spans more (MaxWindow 1024 plus the acked span
// fits comfortably in 4096).
const initialWindowBits = 4096

// pipeSeg is one accepted segment in flight through the bottleneck FIFO:
// its ACK arrival time (computed exactly at transmit, with the same float
// operations the scalar model used) and the transmission instant the RTT
// sample is measured from.
type pipeSeg struct {
	ackAt float64
	sent  float64
	seq   int32
}

// sender is one SACK-Reno sender over one Link: the scalar prototype's
// flow state machine with the maps replaced by ring bitsets, the
// per-packet ACK closures replaced by the pipe ring, and the data source
// abstracted behind a sink so MPTCP subflows can share it.
type sender struct {
	eng  *sim.Engine
	cfg  Config
	link Link
	snk  sink
	txT  float64 // serialization time of one segment at the bottleneck

	nextSeq     int // next subflow sequence to (re)send
	highestAck  int // cumulative ACK point (segments fully acked)
	maxSent     int // one past the highest sequence ever transmitted
	cwnd        float64
	ssthresh    float64
	dupAcks     int
	inRecovery  bool
	recoverSeq  int // recovery ends when this segment is acked
	rtxCursor   int // scan position for the next hole
	queueFreeAt float64

	// Live bits are confined to [flightLo, maxSent). acked and rtx bits
	// stay within [highestAck, maxSent) — the advance loop clears their
	// slots as it passes so seq+capBits can reuse them — but inFlight
	// bits can dip below the cumulative point: go-back-N resends
	// already-acked segments, and when the acked run then advances
	// highestAck past them their copies are still in the network. Those
	// stale bits are cleared by their own (late, duplicate) ACKs or by
	// the next timeout; staleFlight counts them, and flightLo snaps back
	// up to highestAck whenever it hits zero.
	inFlight      bitring // unacked segments currently in the network
	acked         bitring // segments delivered and acknowledged
	rtx           bitring // holes already retransmitted this recovery
	inFlightCount int
	flightLo      int // no set inFlight bit lives below this (≤ highestAck)
	staleFlight   int // set inFlight bits below highestAck
	dseq          []int32 // subflow seq → connection seq (MPTCP only); same mask as the rings

	// The pipe: pending ACKs of accepted segments, in arrival order (the
	// drop-tail queue is a FIFO, so arrival order is transmit order and
	// every arrival time is known at transmit). One scheduled event walks
	// it, continuing inline when the next arrival is provably the
	// engine's next dispatch.
	pipe      []pipeSeg // power-of-two ring
	pipeHead  int
	pipeLen   int
	pipeArmed bool   // a heap event for the pipe is pending
	pipeFn    func() // pre-bound pipeFire, created once per sender

	srtt   float64
	rttvar float64 // RFC 6298 smoothed RTT variance

	// The RTO is a logical deadline, not a per-ACK cancel/re-arm: every
	// send moves rtoAt, and the one pending event chases it, firing for
	// real only when it lands on (or past) the deadline. The heap is
	// touched again only when the deadline moves earlier than the pending
	// event (rto() can shrink while srtt converges) — rare, so per-ACK
	// re-arming costs no heap traffic. +Inf disarms.
	rtoAt    float64
	rtoEv    sim.Event
	rtoEvAt  float64 // fire time of the pending event
	rtoArmed bool    // a heap event for the RTO is pending
	rtoFn    func()  // pre-bound rtoEvent, created once per sender

	res Result
}

// reset readies a pooled sender for a fresh transfer on eng.
func (s *sender) reset(eng *sim.Engine, cfg Config, link Link, snk sink, withDSeq bool) {
	s.eng = eng
	s.cfg = cfg
	s.link = link
	s.snk = snk
	s.txT = cfg.MSS.Bits() / float64(link.Rate)
	s.nextSeq, s.highestAck, s.maxSent = 0, 0, 0
	s.cwnd = cfg.InitialWindow
	s.ssthresh = cfg.MaxWindow
	s.dupAcks = 0
	s.inRecovery = false
	s.recoverSeq, s.rtxCursor = 0, 0
	s.queueFreeAt = 0
	s.inFlight.init(initialWindowBits)
	s.acked.init(initialWindowBits)
	s.rtx.init(initialWindowBits)
	s.inFlightCount = 0
	s.flightLo, s.staleFlight = 0, 0
	if withDSeq {
		// Values need no clearing: a slot is written at assignment before
		// it can be read by the advance loop.
		if cap(s.dseq) >= initialWindowBits {
			s.dseq = s.dseq[:initialWindowBits]
		} else {
			s.dseq = make([]int32, initialWindowBits)
		}
	} else {
		s.dseq = nil
	}
	if s.pipe == nil {
		s.pipe = make([]pipeSeg, 256)
	}
	s.pipeHead, s.pipeLen = 0, 0
	s.pipeArmed = false
	if s.pipeFn == nil {
		s.pipeFn = s.pipeFire
		s.rtoFn = s.rtoEvent
	}
	s.srtt = 2 * link.OneWayDelay
	s.rttvar = s.srtt / 2
	s.rtoAt = math.Inf(1)
	s.rtoEv = sim.Event{}
	s.rtoEvAt = 0
	s.rtoArmed = false
	s.res = Result{}
}

// ensureCap grows the rings (and the dseq map, if present) until seq fits
// in the live window span [flightLo, maxSent). New transmits (seq ==
// maxSent) push the top; go-back-N resends below flightLo push the
// bottom.
func (s *sender) ensureCap(seq int) {
	lo, hi := s.flightLo, s.maxSent
	if seq < lo {
		lo = seq
	}
	if seq >= hi {
		hi = seq + 1
	}
	bits := s.acked.capBits()
	if hi-lo <= bits {
		return
	}
	for hi-lo > bits {
		bits <<= 1
	}
	s.inFlight.grow(bits, s.flightLo, s.maxSent)
	s.acked.grow(bits, s.flightLo, s.maxSent)
	s.rtx.grow(bits, s.flightLo, s.maxSent)
	if s.dseq != nil {
		old := s.dseq
		oldMask := len(old) - 1
		s.dseq = make([]int32, bits)
		for q := s.flightLo; q < s.maxSent; q++ {
			s.dseq[q&(bits-1)] = old[q&oldMask]
		}
	}
}

// rto returns the current retransmission timeout per RFC 6298:
// srtt + 4·rttvar, floored at MinRTO.
func (s *sender) rto() float64 {
	return math.Max(s.cfg.MinRTO, s.srtt+4*s.rttvar)
}

// send transmits as many segments as the window allows: first any
// go-back-N resends below maxSent, then new data pulled from the sink.
func (s *sender) send() {
	for s.inFlightCount < int(s.cwnd) {
		seq := s.nextSeq
		if seq >= s.maxSent {
			c := s.snk.next(s)
			if c < 0 {
				break
			}
			s.ensureCap(seq)
			if s.dseq != nil {
				s.dseq[seq&s.acked.mask] = int32(c)
			}
		}
		s.transmit(seq)
		s.nextSeq++
	}
	s.armRTO()
}

// transmit puts one segment into the bottleneck queue. The segment counts
// against the window whether or not the queue drops it — the sender cannot
// observe a drop until duplicate ACKs or a timeout reveal it. An accepted
// segment's ACK arrival time is fully determined here; the segment joins
// the pipe ring and the pipe's single event walks it in arrival order.
func (s *sender) transmit(seq int) {
	now := s.eng.Now()
	s.res.Packets++
	if seq < s.maxSent {
		s.res.Retransmits++ // every resent copy counts
	} else {
		s.maxSent = seq + 1
	}
	if seq < s.flightLo {
		// A go-back-N resend below every live bit: widen the span
		// downward (the slot is provably clear below flightLo).
		s.ensureCap(seq)
		s.flightLo = seq
	}
	if !s.inFlight.get(seq) {
		s.inFlight.set(seq)
		s.inFlightCount++
		if seq < s.highestAck {
			s.staleFlight++
		}
	}
	start := math.Max(now, s.queueFreeAt)
	queued := (start - now) / s.txT
	if int(queued) >= s.link.QueuePackets {
		// Drop-tail: the segment is lost; recovery via dupACKs or RTO.
		return
	}
	depart := start + s.txT
	s.queueFreeAt = depart
	arrive := depart + s.link.OneWayDelay
	s.pushPipe(pipeSeg{ackAt: arrive + s.link.OneWayDelay, sent: now, seq: int32(seq)})
}

// pushPipe appends a pending ACK behind the pipe and makes sure the pipe
// event is armed. Arrival times are strictly increasing along the ring
// (the FIFO serializes departures), so an armed event — always at the
// head's arrival — never needs rescheduling on append.
func (s *sender) pushPipe(g pipeSeg) {
	if s.pipeLen == len(s.pipe) {
		old := s.pipe
		np := make([]pipeSeg, 2*len(old))
		for i := 0; i < s.pipeLen; i++ {
			np[i] = old[(s.pipeHead+i)&(len(old)-1)]
		}
		s.pipe = np
		s.pipeHead = 0
	}
	s.pipe[(s.pipeHead+s.pipeLen)&(len(s.pipe)-1)] = g
	s.pipeLen++
	if !s.pipeArmed {
		s.pipeArmed = true
		s.eng.Schedule(g.ackAt, s.pipeFn)
	}
}

// pipeFire delivers the ACK at the pipe's head, then chases the stream:
// the next arrival continues inline when it is provably the engine's next
// dispatch (sim batch-window contract) and re-enters the heap — with
// exact arrival-time bits via DeferAt — otherwise.
func (s *sender) pipeFire() {
	for {
		head := s.pipe[s.pipeHead]
		s.pipeHead = (s.pipeHead + 1) & (len(s.pipe) - 1)
		s.pipeLen--
		s.onAck(int(head.seq), s.eng.Now()-head.sent)
		if s.pipeLen == 0 {
			s.pipeArmed = false
			return
		}
		d := s.eng.DeferAt(s.pipe[s.pipeHead].ackAt)
		if !s.eng.TryFireInline(d) {
			s.eng.CommitDeferred(d, s.pipeFn)
			return
		}
	}
}

// onAck processes the receiver's cumulative ACK for a delivered segment.
// The RTT estimators update on every sample (stale ones included, as the
// scalar model did). Stale ACKs — sequences the cumulative point already
// passed — still clear the segment's inFlight bit: go-back-N resends
// already-acked segments, so their (duplicate) ACKs are the only thing
// that releases those copies' window space before the next timeout. The
// scalar model's acked[seq] write on the stale path is skipped — it is
// write-only there (nothing ever reads acked below highestAck), and the
// ring slot may already belong to seq+capBits.
func (s *sender) onAck(seq int, rttSample float64) {
	d := s.srtt - rttSample
	if d < 0 {
		d = -d
	}
	s.rttvar = 0.75*s.rttvar + 0.25*d
	s.srtt = 0.875*s.srtt + 0.125*rttSample

	if seq >= s.flightLo && s.inFlight.get(seq) {
		s.inFlight.clear(seq)
		s.inFlightCount--
		if seq < s.highestAck {
			s.staleFlight--
		}
	}
	if seq < s.highestAck {
		if s.staleFlight == 0 {
			s.flightLo = s.highestAck
		}
		return // stale
	}
	s.acked.set(seq)
	// Advance the cumulative point over every delivered segment, clearing
	// acked and rtx slots behind it for reuse. A passed segment's inFlight
	// bit is usually clear (acked is only ever set by that segment's own
	// onAck, which clears inFlight first) — but a go-back-N resend can
	// have re-set it, in which case the copy is still in the network and
	// the bit goes stale rather than away.
	advanced := false
	for s.acked.get(s.highestAck) {
		h := s.highestAck
		conn := h
		if s.dseq != nil {
			conn = int(s.dseq[h&s.acked.mask])
		}
		s.acked.clear(h)
		s.rtx.clear(h)
		if s.inFlight.get(h) {
			s.staleFlight++
		}
		s.highestAck = h + 1
		advanced = true
		s.snk.advanced(s, conn)
	}
	if s.staleFlight == 0 {
		s.flightLo = s.highestAck
	}
	if !advanced {
		// Delivery beyond a hole: the receiver emits a duplicate
		// cumulative ACK.
		s.onDupAck()
		return
	}
	s.dupAcks = 0
	if s.inRecovery {
		if s.highestAck >= s.recoverSeq {
			// Full ACK: leave recovery and deflate the window.
			s.inRecovery = false
			s.cwnd = s.ssthresh
		} else {
			// Partial ACK: more holes remain; keep the SACK-style
			// retransmission clock running.
			s.retransmitNextHole()
		}
	}
	if s.snk.finished(s) {
		return
	}
	// Window growth per ACK.
	if !s.inRecovery {
		if s.cwnd < s.ssthresh {
			s.cwnd++ // slow start: +1 per ACK
		} else {
			s.cwnd += s.snk.caIncrease(s)
		}
		s.cwnd = math.Min(s.cwnd, s.cfg.MaxWindow)
	}
	s.send()
}

// onDupAck counts duplicate ACKs; the third triggers fast retransmit.
// During recovery every returning ACK signals a departure from the
// network, clocking out one retransmission of the next known hole —
// SACK-style loss recovery, which (unlike plain NewReno's one hole per
// RTT) survives the mass drops of a slow-start overshoot without
// degenerating to timeouts.
func (s *sender) onDupAck() {
	s.dupAcks++
	switch {
	case s.dupAcks == 3 && !s.inRecovery:
		s.res.FastRecoveries++
		s.inRecovery = true
		s.recoverSeq = s.nextSeq
		s.ssthresh = math.Max(s.cwnd/2, 2)
		s.cwnd = s.ssthresh
		// Start the episode with a clean rtx set. Slots below highestAck
		// were cleared by the advance loop; stale bits from the previous
		// episode can only live in [highestAck, maxSent).
		for q := s.highestAck; q < s.maxSent; q++ {
			s.rtx.clear(q)
		}
		s.rtxCursor = s.highestAck
		s.retransmitNextHole()
	case s.inRecovery:
		s.retransmitNextHole()
	}
	s.armRTO()
}

// retransmitNextHole resends the lowest hole not yet retransmitted in this
// recovery episode; with no hole left it lets new data flow instead.
func (s *sender) retransmitNextHole() {
	if s.rtxCursor < s.highestAck {
		s.rtxCursor = s.highestAck
	}
	for s.rtxCursor < s.recoverSeq {
		seq := s.rtxCursor
		s.rtxCursor++
		if !s.acked.get(seq) && !s.rtx.get(seq) {
			s.rtx.set(seq)
			s.transmit(seq) // counted as a retransmit there (seq < maxSent)
			return
		}
	}
	s.send()
}

// armRTO moves the retransmission deadline. With nothing outstanding
// (every transmitted segment acked) the deadline disarms; the next
// transmit re-arms it. The heap event is scheduled at most once per
// chase — never cancelled — so per-ACK re-arming costs no heap traffic.
func (s *sender) armRTO() {
	if s.highestAck >= s.maxSent {
		s.rtoAt = math.Inf(1)
		return
	}
	s.rtoAt = s.eng.Now() + s.rto()
	if !s.rtoArmed || s.rtoAt < s.rtoEvAt {
		// Unarmed, or the deadline moved ahead of the pending event:
		// that event would fire late, so replace it.
		s.rtoEv.Cancel()
		s.rtoEv = s.eng.Schedule(s.rtoAt, s.rtoFn)
		s.rtoEvAt = s.rtoAt
		s.rtoArmed = true
	}
}

// rtoEvent chases the logical deadline: if ACKs moved it later since this
// event was scheduled, re-schedule at the current deadline; only an event
// that lands on the live deadline is a real timeout.
func (s *sender) rtoEvent() {
	s.rtoArmed = false
	if s.rtoAt > s.eng.Now() || (s.pipeArmed && s.pipe[s.pipeHead].ackAt <= s.eng.Now()) {
		// Deadline moved later — or an ACK shares this very timestamp.
		// The scalar model re-arms its timer after every burst, so its
		// timeout event is always the youngest in the heap and loses
		// (time, seq) ties to any pending ACK; yield likewise by
		// re-entering the heap behind the pipe's event.
		if !math.IsInf(s.rtoAt, 1) {
			s.rtoEv = s.eng.Schedule(s.rtoAt, s.rtoFn)
			s.rtoEvAt = s.rtoAt
			s.rtoArmed = true
		}
		return
	}
	s.onRTO()
}

// onRTO retransmits from the cumulative point after a timeout and
// collapses the window. Each resent segment is counted by transmit.
func (s *sender) onRTO() {
	if s.highestAck >= s.maxSent {
		return
	}
	s.res.Timeouts++
	s.ssthresh = math.Max(s.cwnd/2, 2)
	s.cwnd = 1
	s.inRecovery = false
	s.dupAcks = 0
	// Everything in the network is presumed lost — the scalar model wipes
	// its whole inFlight map, stale copies below the cumulative point
	// included. Live bits span [flightLo, maxSent).
	for q := s.flightLo; q < s.maxSent; q++ {
		s.inFlight.clear(q)
	}
	s.inFlightCount = 0
	s.staleFlight = 0
	s.flightLo = s.highestAck
	s.nextSeq = s.highestAck
	s.send()
}

// flow is a single-flow transfer: the sender with an identity data source.
type flow struct {
	sender
	totalSegs int
}

// next hands out segments 0..totalSegs-1 in order; connection sequence and
// subflow sequence coincide.
func (f *flow) next(s *sender) int {
	if s.nextSeq >= f.totalSegs {
		return -1
	}
	return s.nextSeq
}

func (f *flow) advanced(*sender, int) {}

func (f *flow) finished(s *sender) bool {
	if s.highestAck < f.totalSegs {
		return false
	}
	s.res.FinishedAt = s.eng.Now()
	s.rtoAt = math.Inf(1)
	s.eng.Stop()
	return true
}

func (f *flow) caIncrease(s *sender) float64 { return 1 / s.cwnd }

var flowPool = sync.Pool{New: func() any { return new(flow) }}

// Run transfers size bytes over the link and returns the result. The
// engine's Horizon (if set) bounds the run. Flow state is pooled: repeated
// runs (fresh or Reset engines) allocate nothing in steady state.
func Run(eng *sim.Engine, cfg Config, link Link, size units.ByteSize) Result {
	if cfg.MSS <= 0 || cfg.InitialWindow <= 0 || link.Rate <= 0 || link.QueuePackets <= 0 {
		panic("ptcp: invalid configuration")
	}
	f := flowPool.Get().(*flow)
	f.totalSegs = int(math.Ceil(float64(size) / float64(cfg.MSS)))
	f.sender.reset(eng, cfg, link, f, false)
	f.send()
	eng.Run()
	res := f.res
	res.Completed = f.highestAck >= f.totalSegs
	res.Delivered = units.ByteSize(f.highestAck) * cfg.MSS
	if res.Delivered > size {
		res.Delivered = size
	}
	flowPool.Put(f)
	return res
}
