// Package ptcp is a packet-granularity TCP Reno reference model: one flow
// over a fixed-rate bottleneck with a drop-tail queue, simulated packet by
// packet — data transmissions, queueing, propagation, ACK clocking,
// duplicate-ACK fast retransmit, and retransmission timeouts.
//
// The experiment harness does not run on this model (a 256 MB download is
// ~180 000 packets; the fluid-round model in internal/tcp is 3–4 orders of
// magnitude cheaper). Its job is validation: the cross-model tests and the
// BenchmarkAblationFluidVsPacket bench check that the fluid approximation
// delivers the same goodput and completion times the packet model does,
// which is what DESIGN.md §4.1 promises.
package ptcp

import (
	"math"

	"repro/internal/sim"
	"repro/internal/units"
)

// Config carries the sender's TCP parameters.
type Config struct {
	// MSS is the segment size.
	MSS units.ByteSize
	// InitialWindow is the initial congestion window in segments.
	InitialWindow float64
	// MaxWindow caps the window (receive window), in segments.
	MaxWindow float64
	// MinRTO floors the retransmission timeout, in seconds.
	MinRTO float64
}

// DefaultConfig matches internal/tcp's defaults.
func DefaultConfig() Config {
	return Config{MSS: 1460, InitialWindow: 10, MaxWindow: 1024, MinRTO: 1.0}
}

// Link is the bottleneck path: a fixed service rate, a drop-tail queue,
// and symmetric propagation delay.
type Link struct {
	// Rate is the bottleneck service rate.
	Rate units.BitRate
	// OneWayDelay is the propagation delay each way, in seconds.
	OneWayDelay float64
	// QueuePackets is the drop-tail queue capacity in packets.
	QueuePackets int
}

// Result reports a finished (or horizon-cut) transfer.
type Result struct {
	// Completed reports whether every byte was acknowledged.
	Completed bool
	// FinishedAt is when the last byte was acknowledged.
	FinishedAt float64
	// Delivered counts acknowledged bytes.
	Delivered units.ByteSize
	// Retransmits counts retransmitted segments.
	Retransmits int
	// FastRecoveries counts triple-dupACK events.
	FastRecoveries int
	// Timeouts counts RTO firings.
	Timeouts int
	// Packets counts data transmissions (including retransmits).
	Packets int
}

// flow is the sender state machine.
type flow struct {
	eng  *sim.Engine
	cfg  Config
	link Link

	totalSegs   int // segments in the transfer
	nextSeq     int // next new segment to send
	highestAck  int // cumulative ACK point (segments fully acked)
	cwnd        float64
	ssthresh    float64
	dupAcks     int
	inRecovery  bool
	recoverSeq  int          // recovery ends when this segment is acked
	rtx         map[int]bool // holes already retransmitted this recovery
	rtxCursor   int          // scan position for the next hole
	queueFreeAt float64
	inFlight    map[int]bool // unacked segments currently in the network
	acked       map[int]bool // segments delivered and acknowledged
	rtoEv       sim.Event
	srtt        float64
	res         Result
}

// Run transfers size bytes over the link and returns the result. The
// engine's Horizon (if set) bounds the run.
func Run(eng *sim.Engine, cfg Config, link Link, size units.ByteSize) Result {
	if cfg.MSS <= 0 || cfg.InitialWindow <= 0 || link.Rate <= 0 || link.QueuePackets <= 0 {
		panic("ptcp: invalid configuration")
	}
	f := &flow{
		eng:       eng,
		cfg:       cfg,
		link:      link,
		totalSegs: int(math.Ceil(float64(size) / float64(cfg.MSS))),
		cwnd:      cfg.InitialWindow,
		ssthresh:  cfg.MaxWindow,
		inFlight:  map[int]bool{},
		acked:     map[int]bool{},
		srtt:      2 * link.OneWayDelay,
	}
	f.send()
	eng.Run()
	f.res.Completed = f.highestAck >= f.totalSegs
	f.res.Delivered = units.ByteSize(f.highestAck) * cfg.MSS
	if f.res.Delivered > size {
		f.res.Delivered = size
	}
	return f.res
}

// txTime is the serialization time of one segment at the bottleneck.
func (f *flow) txTime() float64 {
	return f.cfg.MSS.Bits() / float64(f.link.Rate)
}

// rto returns the current retransmission timeout.
func (f *flow) rto() float64 {
	return math.Max(f.cfg.MinRTO, 2*f.srtt)
}

// send transmits as many segments as the window allows.
func (f *flow) send() {
	for len(f.inFlight) < int(f.cwnd) && f.nextSeq < f.totalSegs {
		f.transmit(f.nextSeq)
		f.nextSeq++
	}
	f.armRTO()
}

// transmit puts one segment into the bottleneck queue. The segment counts
// against the window whether or not the queue drops it — the sender cannot
// observe a drop until duplicate ACKs or a timeout reveal it.
func (f *flow) transmit(seq int) {
	now := f.eng.Now()
	f.res.Packets++
	f.inFlight[seq] = true
	start := math.Max(now, f.queueFreeAt)
	queued := (start - now) / f.txTime()
	if int(queued) >= f.link.QueuePackets {
		// Drop-tail: the segment is lost; recovery via dupACKs or RTO.
		return
	}
	depart := start + f.txTime()
	f.queueFreeAt = depart
	arrive := depart + f.link.OneWayDelay
	ackAt := arrive + f.link.OneWayDelay
	f.eng.Schedule(ackAt, func() { f.onAck(seq, ackAt-now) })
}

// onAck processes the receiver's cumulative ACK for a delivered segment.
func (f *flow) onAck(seq int, rttSample float64) {
	delete(f.inFlight, seq)
	f.acked[seq] = true
	f.srtt = 0.875*f.srtt + 0.125*rttSample

	if seq < f.highestAck {
		return // stale
	}
	// Advance the cumulative point over every delivered segment.
	advanced := false
	for f.highestAck < f.totalSegs && f.acked[f.highestAck] {
		f.highestAck++
		advanced = true
	}
	if !advanced {
		// Delivery beyond a hole: the receiver emits a duplicate
		// cumulative ACK.
		f.onDupAck()
		return
	}
	f.dupAcks = 0
	if f.inRecovery {
		if f.highestAck >= f.recoverSeq {
			// Full ACK: leave recovery and deflate the window.
			f.inRecovery = false
			f.cwnd = f.ssthresh
		} else {
			// Partial ACK: more holes remain; keep the SACK-style
			// retransmission clock running.
			f.retransmitNextHole()
		}
	}
	if f.highestAck >= f.totalSegs {
		f.res.FinishedAt = f.eng.Now()
		f.rtoEv.Cancel()
		f.eng.Stop()
		return
	}
	// Window growth per ACK.
	if !f.inRecovery {
		if f.cwnd < f.ssthresh {
			f.cwnd++ // slow start: +1 per ACK
		} else {
			f.cwnd += 1 / f.cwnd // congestion avoidance
		}
		f.cwnd = math.Min(f.cwnd, f.cfg.MaxWindow)
	}
	f.send()
}

// onDupAck counts duplicate ACKs; the third triggers fast retransmit.
// During recovery every returning ACK signals a departure from the
// network, clocking out one retransmission of the next known hole —
// SACK-style loss recovery, which (unlike plain NewReno's one hole per
// RTT) survives the mass drops of a slow-start overshoot without
// degenerating to timeouts.
func (f *flow) onDupAck() {
	f.dupAcks++
	switch {
	case f.dupAcks == 3 && !f.inRecovery:
		f.res.FastRecoveries++
		f.inRecovery = true
		f.recoverSeq = f.nextSeq
		f.ssthresh = math.Max(f.cwnd/2, 2)
		f.cwnd = f.ssthresh
		f.rtx = map[int]bool{}
		f.rtxCursor = f.highestAck
		f.retransmitNextHole()
	case f.inRecovery:
		f.retransmitNextHole()
	}
	f.armRTO()
}

// retransmitNextHole resends the lowest hole not yet retransmitted in this
// recovery episode; with no hole left it lets new data flow instead.
func (f *flow) retransmitNextHole() {
	if f.rtxCursor < f.highestAck {
		f.rtxCursor = f.highestAck
	}
	for f.rtxCursor < f.recoverSeq {
		seq := f.rtxCursor
		f.rtxCursor++
		if !f.acked[seq] && !f.rtx[seq] {
			f.rtx[seq] = true
			f.res.Retransmits++
			f.transmit(seq)
			return
		}
	}
	f.send()
}

// armRTO (re)schedules the retransmission timer.
func (f *flow) armRTO() {
	f.rtoEv.Cancel()
	if f.highestAck >= f.totalSegs {
		return
	}
	f.rtoEv = f.eng.After(f.rto(), f.onRTO)
}

// onRTO retransmits the missing segment after a timeout and collapses the
// window.
func (f *flow) onRTO() {
	if f.highestAck >= f.totalSegs {
		return
	}
	f.res.Timeouts++
	f.ssthresh = math.Max(f.cwnd/2, 2)
	f.cwnd = 1
	f.inRecovery = false
	f.dupAcks = 0
	// Everything unacked is presumed lost.
	f.inFlight = map[int]bool{}
	f.nextSeq = f.highestAck
	f.res.Retransmits++
	f.send()
}
